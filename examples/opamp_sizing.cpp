/// \file opamp_sizing.cpp
/// \brief Sizes the paper's two-stage operational amplifier (§IV-A) with
/// asynchronous EasyBO and reports the found design like a sizing flow
/// would: device geometries, bias currents, compensation network, and the
/// measured GAIN / UGF / PM.

#include <cstdio>

#include "common/format.h"
#include "core/easybo.h"

int main() {
  using namespace easybo;

  const auto bench = circuit::make_opamp_benchmark();
  Problem problem{
      bench.name,
      bench.bounds,
      bench.fom,
      [&bench](const linalg::Vec& x) { return bench.sim_time(x); },
  };

  BoConfig config;
  config.mode = bo::Mode::AsyncBatch;
  config.acq = bo::AcqKind::EasyBo;
  config.penalize = true;
  config.batch = 10;
  config.init_points = bench.init_points;
  config.max_sims = bench.max_sims;  // the paper's 150-simulation budget
  config.seed = 7;

  std::printf("sizing the two-stage Miller op-amp (10 variables, %zu "
              "simulations, %zu workers)...\n",
              config.max_sims, config.batch);
  Optimizer optimizer(problem, config);
  const auto result = optimizer.optimize();

  const auto perf = circuit::evaluate_opamp(result.best_x);
  static const char* kNames[] = {"W1,2 [um]", "L1,2 [um]", "W3,4 [um]",
                                 "L3,4 [um]", "W6 [um]",   "L6 [um]",
                                 "Itail [A]", "I2 [A]",    "Cc [F]",
                                 "Rz [ohm]"};
  std::printf("\nbest design (FOM %.2f):\n", result.best_y);
  for (std::size_t j = 0; j < result.best_x.size(); ++j) {
    std::printf("  %-10s = %.4g\n", kNames[j], result.best_x[j]);
  }
  std::printf("\nmeasured performance:\n");
  std::printf("  gain          = %.1f dB\n", perf.gain_db);
  std::printf("  UGF           = %.1f MHz\n", perf.ugf_hz / 1e6);
  std::printf("  phase margin  = %.1f deg\n", perf.pm_deg);
  std::printf("\nHSPICE-equivalent wall-clock (virtual): %s, pool "
              "utilization %.0f%%\n",
              format_duration(result.makespan).c_str(),
              100.0 * result.utilization(config.batch));
  return 0;
}
