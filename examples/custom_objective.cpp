/// \file custom_objective.cpp
/// \brief Using EasyBO on your own objective, two ways:
///   1. composing a weighted FOM from separate metrics (paper Eq. 1);
///   2. running with REAL threads (optimize_parallel) when the objective
///      is genuinely expensive — here a deliberately slow callable.
///
/// optimize_parallel runs the same BoEngine as optimize(), just through
/// sched::ThreadExecutor instead of the virtual-time executor: any batch
/// mode/acquisition works, times are wall-clock, and an objective that
/// throws aborts the run with that exception (no hang).
///
/// The toy "circuit" is an RC low-pass filter evaluated on the built-in
/// MNA simulator: we trade bandwidth against component cost.

#include <chrono>
#include <cstdio>
#include <thread>

#include "core/easybo.h"
#include "spice/measure.h"
#include "spice/mna.h"

namespace {

/// Metric 1: -3 dB bandwidth of an RC low-pass, in MHz (computed with the
/// library's MNA AC simulator — x = {R in kohm, C in nF}).
double bandwidth_mhz(const easybo::linalg::Vec& x) {
  easybo::spice::Circuit ckt;
  const auto in = ckt.node("in");
  const auto out = ckt.node("out");
  ckt.add_voltage_source(in, easybo::spice::kGround, 1.0);
  ckt.add_resistor(in, out, x[0] * 1e3);
  ckt.add_capacitor(out, easybo::spice::kGround, x[1] * 1e-9);
  // -3 dB frequency of the single pole: 1/(2 pi R C); measure it from the
  // sweep like a real flow would instead of trusting the formula.
  const auto freqs = easybo::spice::log_frequency_grid(1e2, 1e9, 20);
  const auto sweep = easybo::spice::sweep_ac(ckt, freqs, out);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    if (sweep.points[i].magnitude_db() < -3.0) {
      return sweep.points[i].freq_hz / 1e6;
    }
  }
  return freqs.back() / 1e6;
}

/// Metric 2: negative component "cost" (small R and C are cheap).
double neg_cost(const easybo::linalg::Vec& x) { return -(x[0] + 2.0 * x[1]); }

}  // namespace

int main() {
  using namespace easybo;

  // --- 1. Weighted FOM composition (Eq. 1). ---
  opt::Bounds bounds{{0.1, 0.1}, {100.0, 100.0}};  // R in kohm, C in nF
  auto fom = make_weighted_fom({bandwidth_mhz, neg_cost}, {1.0, 0.05});

  Problem problem{"rc-filter", bounds, fom, nullptr};
  BoConfig config;
  config.batch = 4;
  config.init_points = 10;
  config.max_sims = 40;
  config.seed = 3;

  Optimizer optimizer(problem, config);
  const auto result = optimizer.optimize();
  std::printf("weighted-FOM optimum: R = %.2f kohm, C = %.2f nF, FOM = "
              "%.2f (bandwidth %.1f MHz)\n",
              result.best_x[0], result.best_x[1], result.best_y,
              bandwidth_mhz(result.best_x));

  // --- 2. Real-threads execution for expensive objectives. ---
  Problem slow = problem;
  slow.objective = [fom](const linalg::Vec& x) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return fom(x);
  };
  Optimizer parallel(slow, config);

  const auto t0 = std::chrono::steady_clock::now();
  const auto preal = parallel.optimize_parallel(4);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  std::printf("real-threads run: 40 x 20 ms evaluations on 4 workers in "
              "%.2f s wall (sequential would need %.2f s); best FOM %.2f\n",
              wall, 40 * 0.020, preal.best_y);
  return 0;
}
