/// \file easybo_cli.cpp
/// \brief Command-line front end: run any algorithm of the paper's roster
/// on any built-in benchmark without writing code.
///
/// Usage:
///   easybo_cli [--problem opamp|classe|branin|ackley|hartmann6]
///              [--algo easybo|easybo-a|easybo-s|easybo-sp|pbo|phcbo|
///                      bucb|lp|ei|lcb|de|pso|sa|random]
///              [--batch N] [--sims N] [--init N] [--seed N]
///              [--lambda X] [--kernel se|matern52] [--csv]
///              [--gp-backend exact|rff] [--rff-features M]
///              [--rff-train-subset N] [--pin-hallucinated-mean]
///              [--metrics-json FILE] [--metrics-csv FILE]
///              [--on-failure abort|discard|penalize] [--eval-timeout S]
///              [--eval-retries N] [--fail-quantile Q]
///              [--inject-throw-every N] [--inject-nan-every N]
///              [--inject-slow-every N] [--inject-sleep-ms MS]
///              [--checkpoint PATH] [--checkpoint-every N]
///              [--resume PATH] [--stream FILE]
///              [--adapt-refit-cadence] [--adapt-refit-budget R]
///
/// Prints the best result, virtual wall-clock and (with --csv) the
/// per-evaluation trace as CSV on stdout for external plotting.
/// --metrics-json / --metrics-csv export the engine-room observability
/// report (src/obs: per-phase timers, Cholesky refactor/extend counters,
/// per-worker busy/idle, per-eval outcomes); FILE "-" writes to stdout.
/// The --on-failure / --eval-* flags configure the fault-tolerant
/// evaluation pipeline and the --inject-* flags add deterministic faults
/// for studying it (docs/failure-model.md; EXPERIMENTS.md "fault
/// injection" recipe). --checkpoint journals every evaluation to
/// PATH.journal and snapshots engine state to PATH.snapshot; --resume
/// continues a killed run from those files (docs/checkpoint-format.md).
/// --stream FILE emits live "easybo.stream.v1" JSONL telemetry frames to
/// FILE while the run is in flight (docs/telemetry.md; tail it with
/// scripts/obs_tail.py). --adapt-refit-cadence lets measured refit/eval
/// cost stretch the hyper-refit schedule mid-run (proposals are then
/// machine-dependent; see docs/boconfig-reference.md).
/// SIGINT/SIGTERM stop the run gracefully: in-flight evaluations drain,
/// a final snapshot is written, and the process exits 5. A second signal
/// kills immediately (the journal keeps completed work safe either way).
/// BO algorithms only.
///
/// Exit codes (see README.md):
///   0  success
///   1  runtime or I/O error (metrics file unwritable, internal error)
///   2  bad arguments
///   3  an evaluation failure aborted the run (--on-failure abort)
///   4  checkpoint/journal corrupt or mismatched on --resume
///   5  interrupted by SIGINT/SIGTERM (checkpoint saved when journaling)

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "circuit/fault_injection.h"
#include "common/format.h"
#include "core/easybo.h"
#include "io/journal.h"
#include "obs/stream.h"

namespace {

using namespace easybo;

struct CliOptions {
  std::string problem = "opamp";
  std::string algo = "easybo";
  std::size_t batch = 5;
  std::size_t sims = 0;  // 0: benchmark default
  std::size_t init = 20;
  std::uint64_t seed = 1;
  double lambda = 6.0;
  std::string kernel = "se";
  std::string gp_backend = "exact";
  std::size_t rff_features = 128;
  std::size_t rff_train_subset = 512;
  bool pin_hallucinated_mean = false;
  bool csv = false;
  std::string metrics_json;  // empty: off; "-": stdout
  std::string metrics_csv;   // empty: off; "-": stdout
  std::string on_failure = "abort";
  double eval_timeout = 0.0;
  std::size_t eval_retries = 0;
  double fail_quantile = 0.0;
  circuit::FaultPlan faults;  // --inject-*: all channels off by default
  std::string checkpoint;     // empty: no journaling
  std::size_t checkpoint_every = 1;
  std::string resume;         // empty: fresh run
  std::string stream;         // empty: no live telemetry stream
  bool adapt_refit_cadence = false;
  double adapt_refit_budget = 0.1;
};

// Set by the SIGINT/SIGTERM handler; polled by the engine at loop
// boundaries (BoEngine::set_stop_token).
std::atomic<bool> g_stop{false};

extern "C" void on_signal(int sig) {
  g_stop.store(true);
  // A second signal means "now": fall back to the default disposition so
  // it terminates the process. Completed evaluations are already fsync'd
  // in the journal, so even the hard kill loses nothing durable.
  std::signal(sig, SIG_DFL);
}

/// Writes \p text to \p path, or to stdout when path is "-".
bool write_text(const std::string& path, const std::string& text) {
  if (path == "-") {
    std::fputs(text.c_str(), stdout);
    std::fputc('\n', stdout);
    return true;
  }
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << text << '\n';
  return true;
}

[[noreturn]] void usage_and_exit() {
  std::fprintf(
      stderr,
      "usage: easybo_cli [--problem opamp|classe|branin|ackley|hartmann6]\n"
      "                  [--algo easybo|easybo-a|easybo-s|easybo-sp|pbo|\n"
      "                          phcbo|bucb|lp|ei|lcb|de|pso|sa|random]\n"
      "                  [--batch N] [--sims N] [--init N] [--seed N]\n"
      "                  [--lambda X] [--kernel se|matern52] [--csv]\n"
      "                  [--gp-backend exact|rff] [--rff-features M]\n"
      "                  [--rff-train-subset N] [--pin-hallucinated-mean]\n"
      "                  [--metrics-json FILE] [--metrics-csv FILE]\n"
      "                  [--on-failure abort|discard|penalize]\n"
      "                  [--eval-timeout S] [--eval-retries N]\n"
      "                  [--fail-quantile Q] [--inject-throw-every N]\n"
      "                  [--inject-nan-every N] [--inject-slow-every N]\n"
      "                  [--inject-sleep-ms MS] [--checkpoint PATH]\n"
      "                  [--checkpoint-every N] [--resume PATH]\n"
      "                  [--stream FILE] [--adapt-refit-cadence]\n"
      "                  [--adapt-refit-budget R]\n");
  std::exit(2);
}

CliOptions parse(int argc, char** argv) {
  CliOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage_and_exit();
      return argv[++i];
    };
    // A flag fed "banana" where a number belongs is a usage error (exit
    // 2), not an uncaught std::invalid_argument.
    auto next_size = [&]() -> std::size_t {
      const std::string s = next();
      try {
        return std::stoul(s);
      } catch (const std::exception&) {
        std::fprintf(stderr, "%s: expected a number, got '%s'\n",
                     arg.c_str(), s.c_str());
        usage_and_exit();
      }
    };
    auto next_u64 = [&]() -> std::uint64_t {
      const std::string s = next();
      try {
        return std::stoull(s);
      } catch (const std::exception&) {
        std::fprintf(stderr, "%s: expected a number, got '%s'\n",
                     arg.c_str(), s.c_str());
        usage_and_exit();
      }
    };
    auto next_double = [&]() -> double {
      const std::string s = next();
      try {
        return std::stod(s);
      } catch (const std::exception&) {
        std::fprintf(stderr, "%s: expected a number, got '%s'\n",
                     arg.c_str(), s.c_str());
        usage_and_exit();
      }
    };
    if (arg == "--problem") opt.problem = next();
    else if (arg == "--algo") opt.algo = next();
    else if (arg == "--batch") opt.batch = next_size();
    else if (arg == "--sims") opt.sims = next_size();
    else if (arg == "--init") opt.init = next_size();
    else if (arg == "--seed") opt.seed = next_u64();
    else if (arg == "--lambda") opt.lambda = next_double();
    else if (arg == "--kernel") opt.kernel = next();
    else if (arg == "--gp-backend") opt.gp_backend = next();
    else if (arg == "--rff-features") opt.rff_features = next_size();
    else if (arg == "--rff-train-subset")
      opt.rff_train_subset = next_size();
    else if (arg == "--pin-hallucinated-mean")
      opt.pin_hallucinated_mean = true;
    else if (arg == "--csv") opt.csv = true;
    else if (arg == "--metrics-json") opt.metrics_json = next();
    else if (arg == "--metrics-csv") opt.metrics_csv = next();
    else if (arg == "--on-failure") opt.on_failure = next();
    else if (arg == "--eval-timeout") opt.eval_timeout = next_double();
    else if (arg == "--eval-retries") opt.eval_retries = next_size();
    else if (arg == "--fail-quantile") opt.fail_quantile = next_double();
    else if (arg == "--inject-throw-every")
      opt.faults.throw_every = next_size();
    else if (arg == "--inject-nan-every")
      opt.faults.nan_every = next_size();
    else if (arg == "--inject-slow-every")
      opt.faults.slow_every = next_size();
    else if (arg == "--inject-sleep-ms")
      opt.faults.sleep_seconds = next_double() / 1000.0;
    else if (arg == "--checkpoint") opt.checkpoint = next();
    else if (arg == "--checkpoint-every")
      opt.checkpoint_every = next_size();
    else if (arg == "--resume") opt.resume = next();
    else if (arg == "--stream") opt.stream = next();
    else if (arg == "--adapt-refit-cadence") opt.adapt_refit_cadence = true;
    else if (arg == "--adapt-refit-budget")
      opt.adapt_refit_budget = next_double();
    else if (arg == "--help" || arg == "-h") usage_and_exit();
    else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      usage_and_exit();
    }
  }
  if (!opt.resume.empty() && !opt.checkpoint.empty() &&
      opt.resume != opt.checkpoint) {
    std::fprintf(stderr,
                 "--resume and --checkpoint name different paths; a "
                 "resumed run keeps journaling to the files it resumes "
                 "from, so pass only --resume\n");
    usage_and_exit();
  }
  return opt;
}

struct ProblemBundle {
  opt::Bounds bounds;
  opt::Objective fn;
  std::function<double(const linalg::Vec&)> sim_time;
  std::size_t default_sims;
};

ProblemBundle make_problem(const std::string& name) {
  if (name == "opamp") {
    auto b = circuit::make_opamp_benchmark();
    return {b.bounds, b.fom,
            [b](const linalg::Vec& x) { return b.sim_time(x); },
            b.max_sims};
  }
  if (name == "classe") {
    auto b = circuit::make_classe_benchmark();
    return {b.bounds, b.fom,
            [b](const linalg::Vec& x) { return b.sim_time(x); },
            b.max_sims};
  }
  circuit::TestFunction tf;
  if (name == "branin") tf = circuit::branin();
  else if (name == "ackley") tf = circuit::ackley(5);
  else if (name == "hartmann6") tf = circuit::hartmann6();
  else {
    std::fprintf(stderr, "unknown problem: %s\n", name.c_str());
    usage_and_exit();
  }
  return {tf.bounds, tf.fn, nullptr, 100};
}

int run_classic(const CliOptions& cli, const ProblemBundle& problem,
                std::size_t sims) {
  Rng rng(cli.seed);
  easybo::opt::OptResult result;
  if (cli.algo == "de") {
    easybo::opt::DeOptions o;
    o.max_evals = sims;
    result = easybo::opt::de_maximize(problem.fn, problem.bounds, rng, o);
  } else if (cli.algo == "pso") {
    easybo::opt::PsoOptions o;
    o.max_evals = sims;
    result = easybo::opt::pso_maximize(problem.fn, problem.bounds, rng, o);
  } else if (cli.algo == "sa") {
    easybo::opt::SaOptions o;
    o.max_evals = sims;
    result = easybo::opt::sa_maximize(problem.fn, problem.bounds, rng, o);
  } else {
    result = easybo::opt::random_search_maximize(problem.fn, problem.bounds,
                                                 rng, sims);
  }
  std::printf("best = %.6g after %zu evaluations\n", result.best_y,
              result.num_evals);
  std::printf("x =");
  for (double v : result.best_x) std::printf(" %.6g", v);
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions cli = parse(argc, argv);
  const ProblemBundle problem = make_problem(cli.problem);
  const std::size_t sims = cli.sims ? cli.sims : problem.default_sims;

  if (cli.algo == "de" || cli.algo == "pso" || cli.algo == "sa" ||
      cli.algo == "random") {
    return run_classic(cli, problem, sims);
  }

  bo::BoConfig config;
  config.batch = cli.batch;
  config.init_points = cli.init;
  config.max_sims = sims;
  config.seed = cli.seed;
  config.lambda = cli.lambda;
  config.kernel = cli.kernel;
  config.gp_backend = cli.gp_backend;
  config.rff_features = cli.rff_features;
  config.rff_train_subset = cli.rff_train_subset;
  config.pin_hallucinated_mean = cli.pin_hallucinated_mean;

  if (cli.algo == "easybo") {
    config.mode = bo::Mode::AsyncBatch;
    config.acq = bo::AcqKind::EasyBo;
    config.penalize = true;
  } else if (cli.algo == "easybo-a") {
    config.mode = bo::Mode::AsyncBatch;
    config.acq = bo::AcqKind::EasyBo;
    config.penalize = false;
  } else if (cli.algo == "easybo-s") {
    config.mode = bo::Mode::SyncBatch;
    config.acq = bo::AcqKind::EasyBo;
    config.penalize = false;
  } else if (cli.algo == "easybo-sp") {
    config.mode = bo::Mode::SyncBatch;
    config.acq = bo::AcqKind::EasyBo;
    config.penalize = true;
  } else if (cli.algo == "pbo") {
    config.mode = bo::Mode::SyncBatch;
    config.acq = bo::AcqKind::Pbo;
  } else if (cli.algo == "phcbo") {
    config.mode = bo::Mode::SyncBatch;
    config.acq = bo::AcqKind::Phcbo;
  } else if (cli.algo == "bucb") {
    config.mode = bo::Mode::AsyncBatch;
    config.acq = bo::AcqKind::Bucb;
  } else if (cli.algo == "lp") {
    config.mode = bo::Mode::AsyncBatch;
    config.acq = bo::AcqKind::Lp;
  } else if (cli.algo == "ei") {
    config.mode = bo::Mode::Sequential;
    config.acq = bo::AcqKind::Ei;
    config.batch = 1;
  } else if (cli.algo == "lcb") {
    config.mode = bo::Mode::Sequential;
    config.acq = bo::AcqKind::Lcb;
    config.batch = 1;
  } else {
    std::fprintf(stderr, "unknown algorithm: %s\n", cli.algo.c_str());
    usage_and_exit();
  }

  if (cli.on_failure == "abort") {
    config.on_eval_failure = bo::EvalFailurePolicy::Abort;
  } else if (cli.on_failure == "discard") {
    config.on_eval_failure = bo::EvalFailurePolicy::Discard;
  } else if (cli.on_failure == "penalize") {
    config.on_eval_failure = bo::EvalFailurePolicy::Penalize;
  } else {
    std::fprintf(stderr, "unknown failure policy: %s\n",
                 cli.on_failure.c_str());
    usage_and_exit();
  }
  config.eval_timeout = cli.eval_timeout;
  config.eval_max_retries = cli.eval_retries;
  config.eval_failure_quantile = cli.fail_quantile;

  config.checkpoint_path = cli.resume.empty() ? cli.checkpoint : cli.resume;
  config.checkpoint_every = cli.checkpoint_every;
  config.adapt_refit_cadence = cli.adapt_refit_cadence;
  config.adapt_refit_budget = cli.adapt_refit_budget;

  const bool injecting = cli.faults.throw_every > 0 ||
                         cli.faults.nan_every > 0 ||
                         cli.faults.slow_every > 0;
  // Fault studies always want the failure counters and per-eval log.
  config.collect_metrics = !cli.metrics_json.empty() ||
                           !cli.metrics_csv.empty() || injecting ||
                           config.on_eval_failure !=
                               bo::EvalFailurePolicy::Abort;

  opt::Objective fn = problem.fn;
  std::function<double(const linalg::Vec&)> sim_time = problem.sim_time;
  circuit::FaultInjector injector(cli.faults);
  if (injecting || cli.faults.sleep_seconds > 0.0) {
    fn = injector.wrap(std::move(fn));
    if (cli.faults.slow_every > 0) {
      if (!sim_time) sim_time = [](const linalg::Vec&) { return 1.0; };
      sim_time = injector.wrap_sim_time(std::move(sim_time));
    }
  }

  // Every validated field comes from a flag, so a bad combination is a
  // usage error (exit 2), not an aborted run (exit 3).
  try {
    config.validate();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "easybo_cli: %s\n", e.what());
    return 2;
  }

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);

  bo::BoResult result;
  // Declared before the engine scope so frames can still flush while the
  // run is torn down; closed explicitly right after the run so the bye
  // frame is on disk before the metrics files are written.
  std::unique_ptr<obs::StreamSink> stream;
  try {
    bo::BoEngine engine(config, problem.bounds, fn, sim_time);
    engine.set_stop_token(&g_stop);
    if (!cli.stream.empty()) {
      obs::StreamOptions sopts;
      sopts.source = "cli:" + cli.problem + ":" + config.label();
      // Forward to whatever the engine installed for itself (the
      // collect_metrics recorder, or nothing) so one run streams live
      // AND assembles the post-hoc report.
      try {
        stream = std::make_unique<obs::StreamSink>(cli.stream, sopts,
                                                   engine.trace());
      } catch (const std::exception& e) {
        // An unopenable stream file is an environment error, not an
        // aborted optimization.
        std::fprintf(stderr, "easybo_cli: %s\n", e.what());
        return 1;
      }
      engine.set_trace(stream.get());
    }
    result = cli.resume.empty() ? engine.run() : engine.resume(cli.resume);
    if (stream != nullptr) stream->close();
  } catch (const io::CheckpointError& e) {
    std::fprintf(stderr, "resume failed: %s\n", e.what());
    return 4;
  } catch (const std::exception& e) {
    // The Abort policy (the default) rethrows evaluation failures.
    std::fprintf(stderr, "run aborted: %s\n", e.what());
    return config.on_eval_failure == bo::EvalFailurePolicy::Abort ? 3 : 1;
  }

  if (!result.resume_note.empty()) {
    std::fprintf(stderr, "%s\n", result.resume_note.c_str());
  }
  if (result.orphaned_workers > 0) {
    std::fprintf(stderr,
                 "warning: %zu worker(s) orphaned by evaluation timeouts "
                 "still hold hung objectives (docs/failure-model.md); the "
                 "pool ran under-strength from their first timeout on\n",
                 result.orphaned_workers);
  }

  if (!cli.metrics_json.empty() &&
      !write_text(cli.metrics_json, result.metrics.to_json())) {
    return 1;
  }
  if (!cli.metrics_csv.empty() &&
      !write_text(cli.metrics_csv, result.metrics.to_csv())) {
    return 1;
  }

  std::printf("%s on %s: best = %.6g, %zu sims, wall-clock %s, "
              "utilization %.0f%%\n",
              config.label().c_str(), cli.problem.c_str(), result.best_y,
              result.num_evals(),
              easybo::format_duration(result.makespan).c_str(),
              100.0 * result.utilization(config.mode == bo::Mode::Sequential
                                             ? 1
                                             : config.batch));
  std::printf("x =");
  for (double v : result.best_x) std::printf(" %.6g", v);
  std::printf("\n");

  const auto& m = result.metrics;
  if (m.counter("eval.failures") > 0 || injecting) {
    std::printf("failures: %llu (%llu exception, %llu non-finite, "
                "%llu timeout), %llu retries; policy %s: %llu discarded, "
                "%llu penalized\n",
                (unsigned long long)m.counter("eval.failures"),
                (unsigned long long)m.counter("eval.exceptions"),
                (unsigned long long)m.counter("eval.nonfinite"),
                (unsigned long long)m.counter("eval.timeouts"),
                (unsigned long long)m.counter("eval.retries"),
                bo::to_string(config.on_eval_failure),
                (unsigned long long)m.counter("eval.discarded"),
                (unsigned long long)m.counter("eval.penalized"));
  }

  if (cli.csv) {
    std::printf("\neval,start,finish,worker,is_init,failed,y,best_so_far\n");
    double best = 0.0;
    bool have_best = false;
    for (std::size_t i = 0; i < result.evals.size(); ++i) {
      const auto& e = result.evals[i];
      if (!e.failed) {
        best = have_best ? std::max(best, e.y) : e.y;
        have_best = true;
      }
      std::printf("%zu,%.3f,%.3f,%zu,%d,%d,%.6g,%.6g\n", i, e.start,
                  e.finish, e.worker, e.is_init ? 1 : 0, e.failed ? 1 : 0,
                  e.y, have_best ? best : 0.0);
    }
  }
  if (result.interrupted) {
    std::fprintf(stderr, "interrupted after %zu evaluations%s\n",
                 result.num_evals(),
                 config.checkpoint_path.empty()
                     ? ""
                     : "; state saved, continue with --resume");
    return 5;
  }
  return 0;
}
