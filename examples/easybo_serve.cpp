/// \file easybo_serve.cpp
/// \brief Session server: many concurrent named BO sessions, one process.
///
/// Usage:
///   easybo_serve --state-dir DIR [--max-live N] [--port P]
///
/// Speaks the line protocol of docs/service-protocol.md — one request
/// line in, one reply line out:
///
///   NEW <name> <config-json>
///   SUGGEST <name>
///   OBSERVE <name> <tag> <y>
///   OBSERVE <name> <tag> fail <status> [detail...]
///   STATUS <name>
///   CLOSE <name>
///
/// By default requests are read from stdin and replies written to stdout
/// (one process per client: run it under a supervisor, or drive it from
/// a coprocess/FIFO). With --port it instead listens on 127.0.0.1:P and
/// serves TCP clients one connection at a time — sessions are durable
/// after every reply, so sequential client turns lose nothing.
///
/// Every session keeps its state under DIR (<name>.config, <name>.journal,
/// <name>.snapshot) and survives eviction, CLOSE and process death: any
/// later command naming it resumes from those files, bit-identically.
///
/// Exit codes:
///   0  clean shutdown (stdin EOF, or SIGINT/SIGTERM while listening)
///   1  runtime error (state directory unusable, socket failure)
///   2  bad arguments

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "serve/host.h"

#ifdef __unix__
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

struct ServeOptions {
  std::string state_dir;
  std::size_t max_live = 64;
  int port = -1;  // -1: stdin/stdout
};

int usage() {
  std::fprintf(stderr,
               "usage: easybo_serve --state-dir DIR [--max-live N] "
               "[--port P]\n");
  return 2;
}

bool parse_args(int argc, char** argv, ServeOptions& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--state-dir") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.state_dir = v;
    } else if (arg == "--max-live") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.max_live = static_cast<std::size_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--port") {
      const char* v = value();
      if (v == nullptr) return false;
      opt.port = static_cast<int>(std::strtol(v, nullptr, 10));
    } else {
      return false;
    }
  }
  return !opt.state_dir.empty() && opt.max_live > 0;
}

int serve_stdio(easybo::serve::SessionHost& host) {
  std::string line;
  while (!g_stop && std::getline(std::cin, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::cout << host.handle_line(line) << "\n" << std::flush;
  }
  return 0;
}

#ifdef __unix__
int serve_tcp(easybo::serve::SessionHost& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("easybo_serve: socket");
    return 1;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 16) < 0) {
    std::perror("easybo_serve: bind/listen");
    ::close(fd);
    return 1;
  }
  std::fprintf(stderr, "easybo_serve: listening on 127.0.0.1:%d\n", port);
  while (!g_stop) {
    const int client = ::accept(fd, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;  // signal: re-check g_stop
      std::perror("easybo_serve: accept");
      ::close(fd);
      return 1;
    }
    // One connection at a time: every session mutation is durable before
    // its reply, so interleaving across connections adds nothing but
    // nondeterminism.
    std::string buffer;
    char chunk[4096];
    for (;;) {
      const ssize_t n = ::read(client, chunk, sizeof chunk);
      if (n <= 0) break;
      buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t eol;
      while ((eol = buffer.find('\n')) != std::string::npos) {
        std::string line = buffer.substr(0, eol);
        buffer.erase(0, eol + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty()) continue;
        const std::string reply = host.handle_line(line) + "\n";
        std::size_t sent = 0;
        while (sent < reply.size()) {
          const ssize_t w =
              ::write(client, reply.data() + sent, reply.size() - sent);
          if (w <= 0) break;
          sent += static_cast<std::size_t>(w);
        }
      }
    }
    ::close(client);
  }
  ::close(fd);
  return 0;
}
#endif

}  // namespace

int main(int argc, char** argv) {
  ServeOptions opt;
  if (!parse_args(argc, argv, opt)) return usage();
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  try {
    easybo::serve::SessionHost host(opt.state_dir, opt.max_live);
    if (opt.port < 0) return serve_stdio(host);
#ifdef __unix__
    return serve_tcp(host, opt.port);
#else
    std::fprintf(stderr, "easybo_serve: --port needs POSIX sockets\n");
    return 2;
#endif
  } catch (const std::exception& e) {
    std::fprintf(stderr, "easybo_serve: %s\n", e.what());
    return 1;
  }
}
