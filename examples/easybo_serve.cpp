/// \file easybo_serve.cpp
/// \brief Session server: many concurrent named BO sessions, one process.
///
/// Usage:
///   easybo_serve --state-dir DIR [--max-live N] [--port P]
///                [--max-clients N] [--max-inflight N] [--idle-timeout S]
///                [--serve-workers N] [--queue-capacity N]
///                [--request-deadline-ms N] [--queue-wait-ms N]
///                [--watchdog-grace-ms N]
///                [--stream FILE]
///                [--inject-enospc-every N] [--inject-eio-every N]
///                [--inject-short-write-every N]
///                [--inject-torn-rename-every N] [--inject-fs-max N]
///                [--inject-sleep-ms N] [--inject-sleep-session NAME]
///                [--inject-sleep-hang]
///
/// --serve-workers N > 0 switches SUGGEST/OBSERVE onto a bounded worker
/// pool with per-request deadlines (docs/service-protocol.md
/// § Deadlines): connection threads parse and enqueue; workers execute;
/// a request that exceeds --request-deadline-ms is cut at a safe
/// checkpoint with its session state rolled back ("ERR deadline ...;
/// retry"), one that sat queued past --queue-wait-ms is shed unrun, and
/// one that ignores cancellation past --watchdog-grace-ms trips the
/// watchdog and quarantines only its own session. With the default
/// --serve-workers 0 every command runs on its connection thread with no
/// deadline, exactly as before.
///
/// --inject-sleep-ms arms the debug slowdown seam on the session named
/// by --inject-sleep-session: its SUGGESTs sleep that long while holding
/// the session lock (cooperatively — a deadline cuts the sleep — unless
/// --inject-sleep-hang makes it ignore cancellation, the watchdog
/// rehearsal). Testing only, like the --inject-* storage faults.
///
/// --stream FILE emits live "easybo.stream.v1" JSONL telemetry
/// (docs/telemetry.md) for every hosted session: serve.* counters, core
/// counters and wall SUGGEST-to-OBSERVE turnaround spans. Tail it with
/// scripts/obs_tail.py; the bare STATUS health JSON additionally carries
/// the stream's online statistics under "stream".
///
/// Speaks the line protocol of docs/service-protocol.md — one request
/// line in, one reply line out:
///
///   NEW <name> <config-json>
///   SUGGEST <name>
///   OBSERVE <name> <tag> <y>
///   OBSERVE <name> <tag> fail <status> [detail...]
///   STATUS <name>
///   STATUS
///   CLOSE <name>
///
/// By default requests are read from stdin and replies written to stdout
/// (one process per client: run it under a supervisor, or drive it from
/// a coprocess/FIFO). With --port it listens on 127.0.0.1:P and serves
/// many TCP clients at once, one thread per connection — the host
/// serializes commands per session and runs different sessions in
/// parallel (src/serve/host.h). Connections idle past --idle-timeout
/// seconds are dropped; connections beyond --max-clients and requests
/// beyond --max-inflight get an immediate "ERR busy".
///
/// The --inject-* flags arm the io/fs_fault.h seam so that operators and
/// the chaos harness (scripts/serve_chaos.sh) can rehearse storage
/// failure: every Nth eligible filesystem operation inside the
/// checkpoint layer fails with the named fault. They exist for testing;
/// see docs/failure-model.md for what each failure does to a session.
///
/// Every session keeps its state under DIR (<name>.config, <name>.journal,
/// <name>.snapshot and the rotated <name>.snapshot.old) and survives
/// eviction, CLOSE and process death: any later command naming it
/// resumes from those files, bit-identically.
///
/// Exit codes:
///   0  clean shutdown (stdin EOF, or SIGINT/SIGTERM)
///   1  runtime error (state directory unusable, socket failure)
///   2  bad arguments (the offending flag is named on stderr)

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "io/fs_fault.h"
#include "obs/stream.h"
#include "serve/host.h"
#include "serve/tcp_server.h"

#ifdef __unix__
#include <poll.h>
#include <unistd.h>
#else
#include <iostream>
#endif

#include <chrono>
#include <thread>

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

/// SIGINT/SIGTERM must interrupt blocking reads, not just flip a flag
/// nobody looks at: std::signal on glibc installs SA_RESTART, which
/// makes the kernel transparently restart blocked read/accept calls, so
/// a server waiting on a quiet socket would never notice the signal.
/// sigaction without SA_RESTART makes those calls fail with EINTR, and
/// every blocking point here re-checks g_stop on EINTR.
void install_signal_handlers() {
#ifdef __unix__
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately not SA_RESTART
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
#else
  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
#endif
}

struct ServeOptions {
  std::string state_dir;
  std::size_t max_live = 64;
  int port = -1;  // -1: stdin/stdout
  std::size_t max_clients = 64;
  std::size_t max_inflight = 256;
  double idle_timeout_s = 300.0;
  std::size_t serve_workers = 0;
  std::size_t queue_capacity = 64;
  double request_deadline_s = 2.0;
  double queue_wait_s = 1.0;
  double watchdog_grace_s = 2.0;
  std::string stream;  // empty: no live telemetry
  easybo::io::FsFaultPlan fault_plan;
  bool inject_faults = false;
  double inject_sleep_s = 0.0;
  std::string inject_sleep_session;
  bool inject_sleep_hang = false;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: easybo_serve --state-dir DIR [--max-live N] [--port P]\n"
      "                    [--max-clients N] [--max-inflight N]\n"
      "                    [--idle-timeout SECONDS] [--stream FILE]\n"
      "                    [--serve-workers N] [--queue-capacity N]\n"
      "                    [--request-deadline-ms N] [--queue-wait-ms N]\n"
      "                    [--watchdog-grace-ms N]\n"
      "                    [--inject-enospc-every N] [--inject-eio-every N]\n"
      "                    [--inject-short-write-every N]\n"
      "                    [--inject-torn-rename-every N] "
      "[--inject-fs-max N]\n"
      "                    [--inject-sleep-ms N] "
      "[--inject-sleep-session NAME] [--inject-sleep-hang]\n");
  return 2;
}

[[noreturn]] void bad_flag(const std::string& flag, const char* value,
                           const char* expected) {
  std::fprintf(stderr, "easybo_serve: %s: expected %s, got \"%s\"\n",
               flag.c_str(), expected, value == nullptr ? "" : value);
  std::exit(2);
}

/// Strict unsigned parse: the whole token must be digits (no trailing
/// garbage, no sign, no empty string). Exits 2 naming \p flag otherwise.
std::size_t parse_count(const std::string& flag, const char* value,
                        std::size_t min_value) {
  if (value == nullptr || *value == '\0') {
    bad_flag(flag, value, "a positive integer");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value, &end, 10);
  if (*end != '\0' || errno == ERANGE || value[0] == '-' ||
      v < min_value) {
    bad_flag(flag, value, "a positive integer");
  }
  return static_cast<std::size_t>(v);
}

int parse_port(const std::string& flag, const char* value) {
  if (value == nullptr || *value == '\0') {
    bad_flag(flag, value, "a port in 1..65535");
  }
  errno = 0;
  char* end = nullptr;
  const long v = std::strtol(value, &end, 10);
  if (*end != '\0' || errno == ERANGE || v < 1 || v > 65535) {
    bad_flag(flag, value, "a port in 1..65535");
  }
  return static_cast<int>(v);
}

double parse_seconds(const std::string& flag, const char* value) {
  if (value == nullptr || *value == '\0') {
    bad_flag(flag, value, "a non-negative number of seconds");
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(value, &end);
  if (*end != '\0' || errno == ERANGE || !(v >= 0.0)) {
    bad_flag(flag, value, "a non-negative number of seconds");
  }
  return v;
}

/// Millisecond flags: a non-negative integer (0 disables the knob),
/// returned as seconds for HostLimits.
double parse_millis(const std::string& flag, const char* value) {
  if (value == nullptr || *value == '\0') {
    bad_flag(flag, value, "a non-negative integer of milliseconds");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value, &end, 10);
  if (*end != '\0' || errno == ERANGE || value[0] == '-') {
    bad_flag(flag, value, "a non-negative integer of milliseconds");
  }
  return static_cast<double>(v) / 1000.0;
}

bool parse_args(int argc, char** argv, ServeOptions& opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--state-dir") {
      const char* v = value();
      if (v == nullptr || *v == '\0') {
        bad_flag(arg, v, "a directory path");
      }
      opt.state_dir = v;
    } else if (arg == "--max-live") {
      opt.max_live = parse_count(arg, value(), 1);
    } else if (arg == "--port") {
      opt.port = parse_port(arg, value());
    } else if (arg == "--max-clients") {
      opt.max_clients = parse_count(arg, value(), 1);
    } else if (arg == "--max-inflight") {
      opt.max_inflight = parse_count(arg, value(), 1);
    } else if (arg == "--idle-timeout") {
      opt.idle_timeout_s = parse_seconds(arg, value());
    } else if (arg == "--serve-workers") {
      opt.serve_workers = parse_count(arg, value(), 0);
    } else if (arg == "--queue-capacity") {
      opt.queue_capacity = parse_count(arg, value(), 1);
    } else if (arg == "--request-deadline-ms") {
      opt.request_deadline_s = parse_millis(arg, value());
    } else if (arg == "--queue-wait-ms") {
      opt.queue_wait_s = parse_millis(arg, value());
    } else if (arg == "--watchdog-grace-ms") {
      opt.watchdog_grace_s = parse_millis(arg, value());
    } else if (arg == "--inject-sleep-ms") {
      opt.inject_sleep_s = parse_millis(arg, value());
    } else if (arg == "--inject-sleep-session") {
      const char* v = value();
      if (v == nullptr || *v == '\0') {
        bad_flag(arg, v, "a session name");
      }
      opt.inject_sleep_session = v;
    } else if (arg == "--inject-sleep-hang") {
      opt.inject_sleep_hang = true;
    } else if (arg == "--stream") {
      const char* v = value();
      if (v == nullptr || *v == '\0') {
        bad_flag(arg, v, "a file path");
      }
      opt.stream = v;
    } else if (arg == "--inject-enospc-every") {
      opt.fault_plan.enospc_every = parse_count(arg, value(), 1);
      opt.inject_faults = true;
    } else if (arg == "--inject-eio-every") {
      opt.fault_plan.eio_every = parse_count(arg, value(), 1);
      opt.inject_faults = true;
    } else if (arg == "--inject-short-write-every") {
      opt.fault_plan.short_write_every = parse_count(arg, value(), 1);
      opt.inject_faults = true;
    } else if (arg == "--inject-torn-rename-every") {
      opt.fault_plan.torn_rename_every = parse_count(arg, value(), 1);
      opt.inject_faults = true;
    } else if (arg == "--inject-fs-max") {
      opt.fault_plan.max_faults = parse_count(arg, value(), 0);
    } else {
      std::fprintf(stderr, "easybo_serve: unknown flag \"%s\"\n",
                   arg.c_str());
      return false;
    }
  }
  if (opt.state_dir.empty()) {
    std::fprintf(stderr, "easybo_serve: --state-dir is required\n");
    return false;
  }
  if (opt.inject_sleep_s > 0.0 && opt.inject_sleep_session.empty()) {
    std::fprintf(stderr,
                 "easybo_serve: --inject-sleep-ms requires "
                 "--inject-sleep-session\n");
    return false;
  }
  return true;
}

#ifdef __unix__
/// stdin loop that stays interruptible: poll + read with a 200 ms tick,
/// so SIGTERM (EINTR or the next tick) ends the loop promptly instead of
/// waiting for the next complete line. std::getline would block in a
/// restarted read with the signal flag set and no one checking it.
int serve_stdio(easybo::serve::SessionHost& host) {
  std::string buffer;
  char chunk[4096];
  while (!g_stop) {
    pollfd pfd{STDIN_FILENO, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;  // signal: re-check g_stop
      return 1;
    }
    if (ready == 0) continue;
    const ssize_t n = ::read(STDIN_FILENO, chunk, sizeof chunk);
    if (n == 0) break;  // EOF: clean shutdown
    if (n < 0) {
      if (errno == EINTR) continue;
      return 1;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t eol = 0;
    while (!g_stop && (eol = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, eol);
      buffer.erase(0, eol + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      std::fputs((host.handle_line(line) + "\n").c_str(), stdout);
      std::fflush(stdout);
    }
  }
  return 0;
}
#else
int serve_stdio(easybo::serve::SessionHost& host) {
  std::string line;
  while (!g_stop && std::getline(std::cin, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    std::cout << host.handle_line(line) << "\n" << std::flush;
  }
  return 0;
}
#endif

}  // namespace

int main(int argc, char** argv) {
  ServeOptions opt;
  if (!parse_args(argc, argv, opt)) return usage();
  install_signal_handlers();
  // Installed for the whole process lifetime — function-local static so
  // the injector outlives every thread that might consult it.
  if (opt.inject_faults) {
    static easybo::io::FsFaultInjector injector(opt.fault_plan);
    easybo::io::install_fs_faults(&injector);
    std::fprintf(stderr, "easybo_serve: storage fault injection armed\n");
  }
  try {
    easybo::serve::HostLimits limits;
    limits.max_inflight = opt.max_inflight;
    limits.serve_workers = opt.serve_workers;
    limits.queue_capacity = opt.queue_capacity;
    limits.request_deadline_s = opt.request_deadline_s;
    limits.queue_wait_s = opt.queue_wait_s;
    limits.watchdog_grace_s = opt.watchdog_grace_s;
    easybo::serve::SessionHost host(opt.state_dir, opt.max_live, limits);
    if (opt.inject_sleep_s > 0.0) {
      easybo::serve::SessionHost::DebugSlowdown slow;
      slow.session = opt.inject_sleep_session;
      slow.sleep_s = opt.inject_sleep_s;
      slow.ignore_stop = opt.inject_sleep_hang;
      host.set_debug_slowdown(slow);
      std::fprintf(stderr,
                   "easybo_serve: injecting %.0fms SUGGEST slowdown on "
                   "session %s%s\n",
                   opt.inject_sleep_s * 1000.0,
                   opt.inject_sleep_session.c_str(),
                   opt.inject_sleep_hang ? " (ignoring cancellation)" : "");
    }
    if (opt.serve_workers > 0) {
      std::fprintf(stderr,
                   "easybo_serve: worker pool enabled (%zu workers, "
                   "deadline %.0fms)\n",
                   opt.serve_workers, opt.request_deadline_s * 1000.0);
    }
    // The stream outlives the host's serving life inside this scope;
    // wired before any traffic so every session inherits it.
    std::unique_ptr<easybo::obs::StreamSink> stream;
    if (!opt.stream.empty()) {
      easybo::obs::StreamOptions sopts;
      sopts.source = "serve:" + opt.state_dir;
      stream = std::make_unique<easybo::obs::StreamSink>(opt.stream, sopts);
      host.set_trace(stream.get());
      host.set_stream(stream.get());
      std::fprintf(stderr, "easybo_serve: streaming telemetry to %s\n",
                   opt.stream.c_str());
    }
    if (opt.port < 0) {
      const int rc = serve_stdio(host);
      if (stream != nullptr) stream->close();
      return rc;
    }
    easybo::serve::TcpOptions tcp;
    tcp.port = opt.port;
    tcp.max_clients = opt.max_clients;
    tcp.idle_timeout_s = opt.idle_timeout_s;
    tcp.max_line_bytes = host.limits().max_line_bytes;
    easybo::serve::TcpServer server(host, tcp);
    server.start();
    std::fprintf(stderr, "easybo_serve: listening on 127.0.0.1:%d\n",
                 server.port());
    while (!g_stop) {
      // sleep_for returns early on EINTR (no SA_RESTART), so shutdown is
      // prompt; the tick only bounds the quiet-system latency.
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    server.stop();
    if (stream != nullptr) stream->close();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "easybo_serve: %s\n", e.what());
    return 1;
  }
}
