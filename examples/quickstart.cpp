/// \file quickstart.cpp
/// \brief Minimal end-to-end use of the EasyBO public API.
///
/// Optimizes the 6-D Hartmann function (a standard BO benchmark) with
/// asynchronous batch EasyBO and prints the result. This is the program
/// from the README's quickstart section.

#include <cstdio>

#include "core/easybo.h"

int main() {
  // 1. Describe the problem: a box-bounded maximization. Any callable
  //    double(const std::vector<double>&) works — plug in your simulator.
  const auto hartmann = easybo::circuit::hartmann6();
  easybo::Problem problem{
      /*name=*/"hartmann6",
      /*bounds=*/hartmann.bounds,
      /*objective=*/hartmann.fn,
      /*sim_time=*/nullptr,  // default: 1 virtual second per evaluation
  };

  // 2. Configure the optimizer. Defaults are the paper's EasyBO:
  //    asynchronous batch, randomized-weight UCB (Eq. 8), hallucination
  //    penalization (Eq. 9).
  easybo::BoConfig config;
  config.batch = 5;        // number of parallel workers
  config.init_points = 20; // random initial design
  config.max_sims = 120;   // total evaluation budget
  config.seed = 42;

  // 3. Run.
  easybo::Optimizer optimizer(problem, config);
  const easybo::BoResult result = optimizer.optimize();

  // 4. Inspect.
  std::printf("best value : %.5f (global optimum %.5f)\n", result.best_y,
              hartmann.max_value);
  std::printf("best point :");
  for (double v : result.best_x) std::printf(" %.4f", v);
  std::printf("\nevaluations: %zu, virtual makespan: %.0f s, pool "
              "utilization: %.0f%%\n",
              result.num_evals(), result.makespan,
              100.0 * result.utilization(config.batch));
  return 0;
}
