/// \file classe_pa.cpp
/// \brief Sizes the class-E power amplifier (§IV-B) and demonstrates the
/// point of asynchronous batching: the same 200-simulation budget is run
/// sequentially, synchronously (B = 10) and asynchronously (B = 10), and
/// the three virtual wall-clocks are compared. The class-E transient
/// simulation times vary a lot between design points, which is exactly
/// where the asynchronous policy pays off.

#include <cstdio>

#include "common/format.h"
#include "core/easybo.h"

int main() {
  using namespace easybo;

  const auto bench = circuit::make_classe_benchmark();
  Problem problem{
      bench.name,
      bench.bounds,
      bench.fom,
      [&bench](const linalg::Vec& x) { return bench.sim_time(x); },
  };

  auto run = [&](bo::Mode mode, std::size_t batch, const char* label) {
    BoConfig config;
    config.mode = mode;
    config.acq = bo::AcqKind::EasyBo;
    config.penalize = mode != bo::Mode::Sequential;
    config.batch = batch;
    config.init_points = 20;
    config.max_sims = 200;
    config.seed = 11;
    Optimizer optimizer(problem, config);
    const auto result = optimizer.optimize();
    const auto perf = circuit::evaluate_classe(result.best_x);
    std::printf("%-18s FOM %.2f (PAE %.0f%%, Pout %.2f W)  wall-clock %s"
                "  utilization %.0f%%\n",
                label, result.best_y, 100.0 * perf.pae, perf.pout_w,
                format_duration(result.makespan).c_str(),
                100.0 * result.utilization(
                            mode == bo::Mode::Sequential ? 1 : batch));
    return result.makespan;
  };

  std::printf("class-E PA sizing, 200 simulations each:\n\n");
  const double seq = run(bo::Mode::Sequential, 1, "sequential");
  const double sync = run(bo::Mode::SyncBatch, 10, "sync batch (B=10)");
  const double async = run(bo::Mode::AsyncBatch, 10, "async batch (B=10)");

  std::printf("\nasync saves %.1f%% vs sync at the same budget; %.1fx "
              "faster than sequential\n",
              100.0 * (1.0 - async / sync), seq / async);
  return 0;
}
