/// \file constrained_sizing.cpp
/// \brief Constrained op-amp sizing — the paper's "future work" extension
/// in action.
///
/// Instead of folding every metric into one weighted FOM (Eq. 10), a
/// designer usually wants: maximize bandwidth SUBJECT TO gain and phase-
/// margin specs. This example maximizes UGF with
///     gain >= 70 dB   and   PM >= 60 deg
/// using feasibility-weighted asynchronous EasyBO (bo/constrained.h).

#include <cstdio>

#include "bo/constrained.h"
#include "circuit/benchmark.h"
#include "circuit/opamp.h"
#include "common/format.h"

int main() {
  using namespace easybo;

  const auto bench = circuit::make_opamp_benchmark();

  // Objective: UGF in MHz (maximize).
  auto ugf_mhz = [](const linalg::Vec& x) {
    const auto p = circuit::evaluate_opamp(x);
    return p.stable ? p.ugf_hz / 1e6 : 0.0;
  };
  // Constraints, expressed as g(x) >= 0.
  std::vector<bo::Constraint> constraints = {
      {"gain >= 70 dB",
       [](const linalg::Vec& x) {
         return circuit::evaluate_opamp(x).gain_db - 70.0;
       }},
      {"PM >= 60 deg",
       [](const linalg::Vec& x) {
         const auto p = circuit::evaluate_opamp(x);
         return (p.stable ? p.pm_deg : -180.0) - 60.0;
       }},
  };

  bo::BoConfig config;
  config.mode = bo::Mode::AsyncBatch;
  config.acq = bo::AcqKind::EasyBo;
  config.penalize = true;
  config.batch = 8;
  config.init_points = 20;
  config.max_sims = 120;
  config.seed = 5;

  std::printf("maximize UGF s.t. gain >= 70 dB, PM >= 60 deg "
              "(%zu simulations, %zu workers)...\n\n",
              config.max_sims, config.batch);
  const auto result = bo::run_constrained_bo(
      config, bench.bounds, ugf_mhz, constraints,
      [&bench](const linalg::Vec& x) { return bench.sim_time(x); });

  const auto perf = circuit::evaluate_opamp(result.best_x);
  std::printf("feasible solution found: %s (%zu of %zu evaluations "
              "feasible)\n",
              result.found_feasible ? "yes" : "NO", result.num_feasible,
              result.num_evals());
  std::printf("  UGF  = %.1f MHz (objective)\n", perf.ugf_hz / 1e6);
  std::printf("  gain = %.1f dB  (slack %+.1f)\n", perf.gain_db,
              result.best_constraints[0]);
  std::printf("  PM   = %.1f deg (slack %+.1f)\n", perf.pm_deg,
              result.best_constraints[1]);
  std::printf("virtual wall-clock: %s\n",
              format_duration(result.makespan).c_str());
  return 0;
}
