/// \file test_rff.cpp
/// \brief Random-Fourier-feature GP backend: determinism, convergence to
/// the exact GP as M grows, incremental-vs-scratch bit-parity, fixed rng
/// consumption, and the engine plumbing — config validation, proxy
/// training, and the checkpoint fingerprint's backend-swap refusal.

#include "gp/rff.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>

#include "bo/checkpoint.h"
#include "bo/engine.h"
#include "circuit/testfunc.h"
#include "common/error.h"
#include "common/rng.h"
#include "gp/gp.h"
#include "gp/kernel.h"
#include "io/journal.h"
#include "obs/recording.h"

namespace easybo {
namespace {

using gp::GpRegressor;
using gp::RffRegressor;
using gp::SquaredExponentialArd;
using gp::Vec;

constexpr std::uint64_t kFeatureSeed = 0x52FFB0C4D5E6F7A8ULL;

/// Smooth 2-d test function on the unit square.
double f(const Vec& x) {
  return std::sin(3.0 * x[0]) * std::cos(2.0 * x[1]) + 0.5 * x[0];
}

std::vector<Vec> make_inputs(std::size_t n, Rng& rng) {
  std::vector<Vec> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) xs.push_back(rng.uniform_vector(2));
  return xs;
}

Vec targets(const std::vector<Vec>& xs) {
  Vec ys(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) ys[i] = f(xs[i]);
  return ys;
}

RffRegressor make_rff(std::size_t m) {
  return RffRegressor(easybo::gp::make_kernel("se", 2), 1e-6, m,
                      kFeatureSeed);
}

TEST(Rff, FitPredictIsDeterministic) {
  Rng rng(11);
  const auto xs = make_inputs(40, rng);
  const Vec ys = targets(xs);

  RffRegressor a = make_rff(64);
  RffRegressor b = make_rff(64);
  a.set_data(xs, ys);
  b.set_data(xs, ys);
  a.fit();
  b.fit();

  Rng probe(7);
  for (int i = 0; i < 20; ++i) {
    const Vec x = probe.uniform_vector(2);
    const auto pa = a.predict(x);
    const auto pb = b.predict(x);
    EXPECT_EQ(pa.mean, pb.mean);
    EXPECT_EQ(pa.var, pb.var);
  }
  EXPECT_EQ(a.log_marginal_likelihood(), b.log_marginal_likelihood());
}

TEST(Rff, RejectsNonSeKernels) {
  EXPECT_THROW(RffRegressor(easybo::gp::make_kernel("matern52", 2), 1e-6, 32,
                            kFeatureSeed),
               InvalidArgument);
}

TEST(Rff, GradientTrainingIsExplicitlyUnsupported) {
  RffRegressor rff = make_rff(16);
  EXPECT_FALSE(rff.supports_lml_gradient());
  Rng rng(1);
  const auto xs = make_inputs(5, rng);
  rff.set_data(xs, targets(xs));
  rff.fit();
  EXPECT_THROW(rff.lml_gradient(), InvalidArgument);
  // And the trainer routes it away rather than crashing mid-descent.
  Rng trng(2);
  EXPECT_THROW(gp::train_mle(rff, trng, {}), InvalidArgument);
}

/// Mean |phi(x)^T phi(x') - k(x, x')| over random pairs.
double feature_error(std::size_t m) {
  RffRegressor rff = make_rff(m);
  // A token fit builds the feature map for the current hyperparameters.
  rff.set_data({{0.5, 0.5}}, {0.0});
  rff.fit();
  const SquaredExponentialArd kernel(1.0, Vec{1.0, 1.0});
  Rng rng(13);
  double err = 0.0;
  const int pairs = 200;
  for (int i = 0; i < pairs; ++i) {
    const Vec x = rng.uniform_vector(2);
    const Vec y = rng.uniform_vector(2);
    const Vec px = rff.features(x);
    const Vec py = rff.features(y);
    err += std::abs(linalg::dot(px, py) - kernel(x, y));
  }
  return err / pairs;
}

// Monte-Carlo spectral approximation: error decays roughly as 1/sqrt(M).
TEST(Rff, FeatureMapApproximatesTheKernel) {
  const double e64 = feature_error(64);
  const double e1024 = feature_error(1024);
  EXPECT_LT(e1024, e64);
  EXPECT_LT(e1024, 0.05);
}

/// RMSE between RFF and exact-GP posterior means over a probe grid, with
/// both models at identical hyperparameters.
double posterior_gap(std::size_t m, const std::vector<Vec>& xs,
                     const Vec& ys, const GpRegressor& exact) {
  RffRegressor rff = make_rff(m);
  rff.set_log_hyperparams(exact.log_hyperparams());
  rff.set_data(xs, ys);
  rff.fit();
  Rng probe(17);
  double acc = 0.0;
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    const Vec x = probe.uniform_vector(2);
    const double d = rff.predict(x).mean - exact.predict(x).mean;
    acc += d * d;
  }
  return std::sqrt(acc / n);
}

TEST(Rff, PosteriorConvergesToExactGpAsFeaturesGrow) {
  Rng rng(19);
  const auto xs = make_inputs(30, rng);
  const Vec ys = targets(xs);
  GpRegressor exact(easybo::gp::make_kernel("se", 2), 1e-6);
  exact.set_data(xs, ys);
  exact.fit();

  const double g16 = posterior_gap(16, xs, ys, exact);
  const double g128 = posterior_gap(128, xs, ys, exact);
  const double g1024 = posterior_gap(1024, xs, ys, exact);
  EXPECT_LT(g128, g16);
  EXPECT_LT(g1024, g128);
  EXPECT_LT(g1024, 0.05);
}

// The incremental absorb (appended rows into the feature Gram) must be
// bit-identical to a from-scratch rebuild — snapshot/resume equivalence
// depends on it.
TEST(Rff, IncrementalAbsorbMatchesScratchBitwise) {
  Rng rng(23);
  const auto xs = make_inputs(25, rng);
  const Vec ys = targets(xs);

  RffRegressor inc = make_rff(64);
  obs::RecordingSink sink;
  inc.set_trace(&sink);
  inc.set_data({xs.begin(), xs.begin() + 20}, {ys.begin(), ys.begin() + 20});
  inc.fit();
  ASSERT_EQ(sink.counter("gp.rff_refactor"), 1u);
  for (std::size_t i = 20; i < 25; ++i) inc.add_point(xs[i], ys[i]);
  inc.fit();
  EXPECT_EQ(sink.counter("gp.rff_extend"), 5u);
  EXPECT_EQ(sink.counter("gp.rff_refactor"), 1u);  // no rebuild

  RffRegressor scratch = make_rff(64);
  scratch.set_data(xs, ys);
  scratch.fit();

  Rng probe(29);
  for (int i = 0; i < 20; ++i) {
    const Vec x = probe.uniform_vector(2);
    EXPECT_EQ(inc.predict(x).mean, scratch.predict(x).mean);
    EXPECT_EQ(inc.predict(x).var, scratch.predict(x).var);
  }
  EXPECT_EQ(inc.log_marginal_likelihood(),
            scratch.log_marginal_likelihood());
}

// Changing hyperparameters re-SCALES the frozen spectral draws rather than
// redrawing them: the model stays a deterministic function of (seed, data,
// hyperparameters) and a round trip restores the exact posterior.
TEST(Rff, HyperparameterRoundTripRestoresPosterior) {
  Rng rng(31);
  const auto xs = make_inputs(20, rng);
  const Vec ys = targets(xs);
  RffRegressor rff = make_rff(64);
  rff.set_data(xs, ys);
  // Enter through the log-space setter so "restore" replays the exact
  // same exp() calls (exp(log(x)) is not an identity at the last ulp).
  const Vec lp = {0.0, std::log(0.4), std::log(0.3), std::log(1e-6)};
  rff.set_log_hyperparams(lp);
  rff.fit();
  const Vec x = {0.3, 0.6};
  const auto before = rff.predict(x);

  Vec moved = lp;
  moved[1] += 0.7;
  rff.set_log_hyperparams(moved);
  rff.fit();
  EXPECT_NE(rff.predict(x).mean, before.mean);

  rff.set_log_hyperparams(lp);
  rff.fit();
  EXPECT_EQ(rff.predict(x).mean, before.mean);
  EXPECT_EQ(rff.predict(x).var, before.var);
}

// Weight-space sampling consumes exactly 2M normals no matter how many
// candidates are evaluated — the property that keeps proposal streams
// aligned across candidate-set sizes.
TEST(Rff, SamplePosteriorConsumesFixedDrawCount) {
  Rng rng(37);
  const auto xs = make_inputs(15, rng);
  RffRegressor rff = make_rff(32);
  rff.set_data(xs, targets(xs));
  rff.fit();

  Rng ra(5), rb(5);
  (void)rff.sample_posterior(make_inputs(3, rng), ra);
  (void)rff.sample_posterior(make_inputs(9, rng), rb);
  EXPECT_EQ(ra.normal(), rb.normal());
}

// Joint coherence: one weight draw induces a consistent function, so two
// evaluations of the SAME sample at the same point agree.
TEST(Rff, SampleIsAConsistentFunction) {
  Rng rng(41);
  const auto xs = make_inputs(15, rng);
  RffRegressor rff = make_rff(32);
  rff.set_data(xs, targets(xs));
  rff.fit();

  const Vec x = {0.25, 0.75};
  Rng ra(9);
  const Vec fa = rff.sample_posterior({x, x}, ra);
  EXPECT_EQ(fa[0], fa[1]);
}

TEST(Rff, HallucinateShrinksVarianceAtPendingPoints) {
  Rng rng(43);
  const auto xs = make_inputs(20, rng);
  RffRegressor rff = make_rff(128);
  rff.set_data(xs, targets(xs));
  rff.fit();

  const Vec pend = {0.9, 0.9};
  const double var_before = rff.predict(pend).var;

  obs::RecordingSink sink;
  rff.set_trace(&sink);
  const auto overlay = rff.hallucinate({pend}, /*pin_mean=*/true);
  EXPECT_EQ(sink.counter("gp.hallucinate"), 1u);
  EXPECT_EQ(overlay->num_points(), 21u);
  EXPECT_LT(overlay->predict(pend).var, var_before);
  // A pseudo observation placed AT the predictive mean leaves the mean
  // field unchanged (its residual is zero), so only the variance moves.
  EXPECT_NEAR(overlay->predict(pend).mean, rff.predict(pend).mean, 1e-6);
}

// ---------------------------------------------------------------------------
// BoConfig plumbing
// ---------------------------------------------------------------------------

TEST(RffConfig, ValidatesBackendCombinations) {
  bo::BoConfig c;
  c.gp_backend = "rff";
  EXPECT_NO_THROW(c.validate());
  c.kernel = "matern52";
  EXPECT_THROW(c.validate(), InvalidArgument);
  c.kernel = "se";
  c.rff_features = 2;
  EXPECT_THROW(c.validate(), InvalidArgument);
  c.rff_features = 128;
  c.rff_train_subset = 1;
  EXPECT_THROW(c.validate(), InvalidArgument);
  c.rff_train_subset = 512;
  c.gp_backend = "cholesky";  // not a backend
  EXPECT_THROW(c.validate(), InvalidArgument);
}

TEST(RffConfig, BackendChangesTheFingerprint) {
  const auto tf = circuit::branin();
  bo::BoConfig exact_cfg;
  bo::BoConfig rff_cfg;
  rff_cfg.gp_backend = "rff";
  EXPECT_NE(bo::config_fingerprint(exact_cfg, tf.bounds),
            bo::config_fingerprint(rff_cfg, tf.bounds));
  // So do the approximation knobs that shape the proposal stream.
  bo::BoConfig more_features = rff_cfg;
  more_features.rff_features = 256;
  EXPECT_NE(bo::config_fingerprint(rff_cfg, tf.bounds),
            bo::config_fingerprint(more_features, tf.bounds));
  bo::BoConfig pinned;
  pinned.pin_hallucinated_mean = true;
  EXPECT_NE(bo::config_fingerprint(bo::BoConfig{}, tf.bounds),
            bo::config_fingerprint(pinned, tf.bounds));
  // hallucinate_overlay is stream-invariant: deliberately NOT part of it.
  bo::BoConfig copy_path;
  copy_path.hallucinate_overlay = false;
  EXPECT_EQ(bo::config_fingerprint(bo::BoConfig{}, tf.bounds),
            bo::config_fingerprint(copy_path, tf.bounds));
}

// ---------------------------------------------------------------------------
// Engine level
// ---------------------------------------------------------------------------

bo::BoConfig rff_engine_cfg(std::uint64_t seed) {
  bo::BoConfig c;
  c.mode = bo::Mode::AsyncBatch;
  c.acq = bo::AcqKind::EasyBo;
  c.penalize = true;
  c.batch = 4;
  c.init_points = 10;
  c.max_sims = 40;
  c.seed = seed;
  c.gp_backend = "rff";
  c.rff_features = 128;
  c.acq_opt.sobol_candidates = 128;
  c.acq_opt.random_candidates = 64;
  c.acq_opt.refine_evals = 60;
  c.trainer.max_iters = 20;
  c.trainer.restarts = 1;
  return c;
}

TEST(RffEngine, SolvesBraninThroughProxyTraining) {
  const auto tf = circuit::branin();
  bo::BoConfig cfg = rff_engine_cfg(3);
  cfg.collect_metrics = true;
  const auto r = bo::BoEngine(cfg, tf.bounds, tf.fn).run();
  EXPECT_EQ(r.num_evals(), cfg.max_sims);
  // The approximate posterior still optimizes the easy 2-d landscape.
  EXPECT_NEAR(r.best_y, tf.max_value, 0.3);
  // Hyperparameters were trained through the exact-GP proxy (the backend
  // has no gradient), and proposals hallucinated without exact factors.
  EXPECT_GT(r.metrics.counter("bo.proxy_train"), 0u);
  EXPECT_GT(r.metrics.counter("gp.hallucinate"), 0u);
  EXPECT_EQ(r.metrics.counter("gp.chol_extend"), 0u);
}

TEST(RffEngine, ReproducibleForFixedSeed) {
  const auto tf = circuit::branin();
  const auto a = bo::BoEngine(rff_engine_cfg(5), tf.bounds, tf.fn).run();
  const auto b = bo::BoEngine(rff_engine_cfg(5), tf.bounds, tf.fn).run();
  ASSERT_EQ(a.num_evals(), b.num_evals());
  for (std::size_t i = 0; i < a.num_evals(); ++i) {
    EXPECT_EQ(a.evals[i].x, b.evals[i].x) << "eval " << i;
  }
  EXPECT_DOUBLE_EQ(a.best_y, b.best_y);
}

// Swapping the GP backend mid-run would silently change every proposal
// after the swap: the checkpoint fingerprint must refuse the resume.
TEST(RffEngine, ResumeRefusesABackendSwap) {
  const auto tf = circuit::branin();
  bo::BoConfig cfg = rff_engine_cfg(7);
  cfg.gp_backend = "exact";  // run (and checkpoint) on the exact backend
  cfg.max_sims = 20;
  cfg.checkpoint_path = ::testing::TempDir() + "easybo_rff_swap";
  std::remove(bo::journal_file(cfg.checkpoint_path).c_str());
  std::remove(bo::snapshot_file(cfg.checkpoint_path).c_str());
  (void)bo::BoEngine(cfg, tf.bounds, tf.fn).run();

  bo::BoConfig swapped = cfg;
  swapped.gp_backend = "rff";
  bo::BoEngine engine(swapped, tf.bounds, tf.fn);
  try {
    engine.resume(cfg.checkpoint_path);
    FAIL() << "resume was expected to refuse the backend swap";
  } catch (const io::CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("checkpoint config mismatch"),
              std::string::npos)
        << "message: " << e.what();
  }
}

}  // namespace
}  // namespace easybo
