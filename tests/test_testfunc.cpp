// Tests for the synthetic benchmark functions: known optima and bounds.

#include "circuit/testfunc.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace easybo::circuit {
namespace {

TEST(Branin, KnownOptima) {
  const auto f = branin();
  // All three global minimizers of Branin evaluate to ~0.397887.
  EXPECT_NEAR(f.fn({-M_PI, 12.275}), -0.397887, 1e-5);
  EXPECT_NEAR(f.fn({M_PI, 2.275}), -0.397887, 1e-5);
  EXPECT_NEAR(f.fn({9.42478, 2.475}), -0.397887, 1e-5);
  EXPECT_NEAR(f.fn(f.max_location), f.max_value, 1e-5);
}

TEST(Ackley, OptimumAtOrigin) {
  for (std::size_t d : {1u, 3u, 10u}) {
    const auto f = ackley(d);
    EXPECT_NEAR(f.fn(linalg::Vec(d, 0.0)), 0.0, 1e-9);
    EXPECT_LT(f.fn(linalg::Vec(d, 5.0)), -5.0);
  }
}

TEST(Rosenbrock, OptimumAtOnes) {
  const auto f = rosenbrock(4);
  EXPECT_NEAR(f.fn(linalg::Vec(4, 1.0)), 0.0, 1e-12);
  EXPECT_LT(f.fn(linalg::Vec(4, 0.0)), -1.0);
  EXPECT_THROW(rosenbrock(1), InvalidArgument);
}

TEST(Hartmann6, KnownMaximum) {
  const auto f = hartmann6();
  EXPECT_NEAR(f.fn(f.max_location), 3.32237, 1e-4);
  // Any random point must not beat the documented maximum.
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LE(f.fn(rng.uniform_vector(6)), f.max_value + 1e-6);
  }
}

TEST(Levy, OptimumAtOnes) {
  const auto f = levy(5);
  EXPECT_NEAR(f.fn(linalg::Vec(5, 1.0)), 0.0, 1e-12);
  EXPECT_LT(f.fn(linalg::Vec(5, -5.0)), -1.0);
}

TEST(Sphere, OptimumAtOrigin) {
  const auto f = sphere(3);
  EXPECT_DOUBLE_EQ(f.fn({0.0, 0.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(f.fn({1.0, 2.0, 2.0}), -9.0);
}

TEST(AllFunctions, OptimaInsideBounds) {
  for (const auto& f :
       {branin(), ackley(3), rosenbrock(3), hartmann6(), levy(3),
        sphere(3)}) {
    f.bounds.validate();
    if (!f.max_location.empty()) {
      EXPECT_TRUE(linalg::inside_box(f.max_location, f.bounds.lower,
                                     f.bounds.upper))
          << f.name;
      // The documented optimum is a local max: random perturbed points in
      // the neighborhood should not beat it materially.
      Rng rng(7);
      for (int i = 0; i < 50; ++i) {
        auto x = f.max_location;
        for (auto& v : x) v += rng.normal(0.0, 0.01);
        x = linalg::clamp_to_box(std::move(x), f.bounds.lower,
                                 f.bounds.upper);
        EXPECT_LE(f.fn(x), f.max_value + 1e-3) << f.name;
      }
    }
  }
}

}  // namespace
}  // namespace easybo::circuit
