// Tests for the execution seam: the VirtualExecutor and ThreadExecutor
// must present the same contract to the BO engine — idle accounting,
// FIFO-serialized completions on one worker, worker exceptions delivered
// to the SAME call site (wait_next) on both backends, and per-worker
// busy accounting for the observability layer.

#include "sched/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "common/error.h"

namespace easybo::sched {
namespace {

TEST(VirtualExecutor, DeliversValuesWithSchedulerTiming) {
  VirtualExecutor exec(2);
  EXPECT_EQ(exec.num_workers(), 2u);
  EXPECT_TRUE(exec.has_idle_worker());

  exec.submit(0, [] { return 10.0; }, 4.0);
  exec.submit(1, [] { return 20.0; }, 2.0);
  EXPECT_FALSE(exec.has_idle_worker());

  const auto first = exec.wait_next();  // shorter job finishes first
  EXPECT_EQ(first.tag, 1u);
  EXPECT_DOUBLE_EQ(first.value, 20.0);
  EXPECT_DOUBLE_EQ(first.finish, 2.0);
  const auto second = exec.wait_next();
  EXPECT_EQ(second.tag, 0u);
  EXPECT_DOUBLE_EQ(second.value, 10.0);
  EXPECT_DOUBLE_EQ(exec.now(), 4.0);
  EXPECT_DOUBLE_EQ(exec.total_busy_time(), 6.0);
}

TEST(VirtualExecutor, WaitAllIsABarrier) {
  VirtualExecutor exec(3);
  exec.submit(0, [] { return 1.0; }, 1.0);
  exec.submit(1, [] { return 2.0; }, 3.0);
  const auto done = exec.wait_all();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(exec.num_running(), 0u);
  EXPECT_DOUBLE_EQ(exec.now(), 3.0);
}

TEST(ThreadExecutor, RunsWorkOnWorkersAndRecordsWallTime) {
  ThreadExecutor exec(2);
  EXPECT_EQ(exec.num_workers(), 2u);
  exec.submit(3, [] {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    return 7.0;
  }, 1.0);
  exec.submit(4, [] { return 9.0; }, 1.0);
  EXPECT_FALSE(exec.has_idle_worker());

  double sum = 0.0;
  for (int i = 0; i < 2; ++i) {
    const auto c = exec.wait_next();
    EXPECT_TRUE(c.tag == 3u || c.tag == 4u);
    EXPECT_LT(c.worker, 2u);
    EXPECT_LE(c.start, c.finish);
    EXPECT_LE(c.finish, exec.now() + 1e-9);
    sum += c.value;
  }
  EXPECT_DOUBLE_EQ(sum, 16.0);
  EXPECT_TRUE(exec.has_idle_worker());
  EXPECT_GT(exec.total_busy_time(), 0.0);
}

TEST(ThreadExecutor, SingleWorkerCompletesFifo) {
  ThreadExecutor exec(1);
  for (std::size_t round = 0; round < 8; ++round) {
    exec.submit(round, [round] { return static_cast<double>(round); }, 1.0);
    const auto c = exec.wait_next();
    EXPECT_EQ(c.tag, round);
    EXPECT_DOUBLE_EQ(c.value, static_cast<double>(round));
  }
}

TEST(ThreadExecutor, WorkerExceptionReachesTheWaiter) {
  // A throwing work item must not hang wait_next (the pre-seam real
  // threads loop dropped the future and deadlocked) and must surface the
  // original exception type.
  ThreadExecutor exec(2);
  exec.submit(0, []() -> double { throw std::runtime_error("boom"); }, 1.0);
  EXPECT_THROW(exec.wait_next(), std::runtime_error);
  EXPECT_EQ(exec.num_running(), 0u);

  // The executor stays usable after a failed job.
  exec.submit(1, [] { return 5.0; }, 1.0);
  EXPECT_DOUBLE_EQ(exec.wait_next().value, 5.0);
}

TEST(Executors, ExceptionsSurfaceAtWaitNextOnBothBackends) {
  // Regression: VirtualExecutor used to run the work eagerly inside
  // submit(), so a throwing objective escaped from submit() there but
  // from wait_next() on real threads — engine error handling could not be
  // backend-agnostic. Both backends must now deliver the exception at
  // wait_next(), with the original type, and stay usable afterwards.
  VirtualExecutor virt(2);
  EXPECT_NO_THROW(virt.submit(
      0, []() -> double { throw std::runtime_error("virtual boom"); }, 1.0));
  EXPECT_THROW(virt.wait_next(), std::runtime_error);
  virt.submit(1, [] { return 5.0; }, 1.0);
  EXPECT_DOUBLE_EQ(virt.wait_next().value, 5.0);

  ThreadExecutor threads(2);
  EXPECT_NO_THROW(threads.submit(
      0, []() -> double { throw std::runtime_error("thread boom"); }, 1.0));
  EXPECT_THROW(threads.wait_next(), std::runtime_error);
  threads.submit(1, [] { return 5.0; }, 1.0);
  EXPECT_DOUBLE_EQ(threads.wait_next().value, 5.0);
}

TEST(VirtualExecutor, FailedJobStillAdvancesTheClock) {
  // The failed evaluation occupied its worker for the full duration; the
  // schedule (and every later completion's timing) must reflect that.
  VirtualExecutor exec(1);
  exec.submit(0, []() -> double { throw std::runtime_error("boom"); }, 3.0);
  EXPECT_THROW(exec.wait_next(), std::runtime_error);
  exec.submit(1, [] { return 1.0; }, 2.0);
  const auto c = exec.wait_next();
  EXPECT_DOUBLE_EQ(c.start, 3.0);
  EXPECT_DOUBLE_EQ(c.finish, 5.0);
}

TEST(VirtualExecutor, PerWorkerBusyMatchesSubmittedDurations) {
  VirtualExecutor exec(2);
  exec.submit(0, [] { return 1.0; }, 4.0);  // worker 0
  exec.submit(1, [] { return 2.0; }, 2.0);  // worker 1
  exec.wait_all();
  const auto busy = exec.per_worker_busy();
  ASSERT_EQ(busy.size(), 2u);
  EXPECT_DOUBLE_EQ(busy[0] + busy[1], 6.0);
  EXPECT_DOUBLE_EQ(exec.total_busy_time(), 6.0);
}

TEST(ThreadExecutor, PerWorkerBusySumsToTotal) {
  ThreadExecutor exec(2);
  for (std::size_t tag = 0; tag < 4; ++tag) {
    exec.submit(tag, [] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      return 1.0;
    }, 1.0);
    if (tag % 2 == 1) {
      exec.wait_next();
      exec.wait_next();
    }
  }
  const auto busy = exec.per_worker_busy();
  ASSERT_EQ(busy.size(), 2u);
  double sum = 0.0;
  for (double b : busy) {
    EXPECT_GE(b, 0.0);
    sum += b;
  }
  EXPECT_NEAR(sum, exec.total_busy_time(), 1e-9);
  EXPECT_GT(sum, 0.0);
}

TEST(ThreadExecutor, AbandonedWorkIsJoinedOnDestruction) {
  std::atomic<int> finished{0};
  {
    ThreadExecutor exec(2);
    exec.submit(0, [&finished] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ++finished;
      return 0.0;
    }, 1.0);
    exec.submit(1, [&finished] {
      ++finished;
      return 0.0;
    }, 1.0);
    // Destroyed with jobs in flight (the run aborted) — must join cleanly.
  }
  EXPECT_EQ(finished.load(), 2);
}

TEST(Executors, ReportTheirClockDiscipline) {
  VirtualExecutor v(1);
  EXPECT_FALSE(v.wall_clock());
  ThreadExecutor t(1);
  EXPECT_TRUE(t.wall_clock());
}

TEST(VirtualExecutor, TryWaitNextNeverTimesOut) {
  VirtualExecutor exec(1);
  exec.submit(7, [] { return 5.0; }, 3.0);
  // Virtual completions are always computable: a zero budget still
  // delivers.
  const auto c = exec.try_wait_next(0.0);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->tag, 7u);
  EXPECT_DOUBLE_EQ(c->value, 5.0);
}

TEST(ThreadExecutor, TryWaitNextDeliversAndTimesOut) {
  ThreadExecutor exec(1);
  std::atomic<bool> release{false};
  exec.submit(3, [&release] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return 8.0;
  }, 1.0);

  // Still hung: the bounded wait gives up...
  EXPECT_FALSE(exec.try_wait_next(0.01).has_value());
  EXPECT_EQ(exec.num_running(), 1u);

  // ...and delivers once the work finishes.
  release.store(true);
  const auto c = exec.try_wait_next(5.0);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->tag, 3u);
  EXPECT_DOUBLE_EQ(c->value, 8.0);
  EXPECT_EQ(exec.num_running(), 0u);
}

TEST(ThreadExecutor, TryWaitNextRethrowsWorkerExceptions) {
  ThreadExecutor exec(1);
  exec.submit(0, []() -> double { throw std::runtime_error("worker"); },
              1.0);
  EXPECT_THROW(
      {
        while (!exec.try_wait_next(0.05).has_value()) {
        }
      },
      std::runtime_error);
}

TEST(Executors, RejectMisuse) {
  VirtualExecutor v(1);
  EXPECT_THROW(v.wait_next(), InvalidArgument);
  v.submit(0, [] { return 0.0; }, 1.0);
  EXPECT_THROW(v.submit(1, [] { return 0.0; }, 1.0), InvalidArgument);

  ThreadExecutor t(1);
  EXPECT_THROW(t.wait_next(), InvalidArgument);
  t.submit(0, [] { return 0.0; }, 1.0);
  EXPECT_THROW(t.submit(1, [] { return 0.0; }, 1.0), InvalidArgument);
  t.wait_next();
}

}  // namespace
}  // namespace easybo::sched
