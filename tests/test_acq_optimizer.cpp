// Tests for the shared acquisition maximizer (screening + Nelder-Mead
// refinement over the unit cube).

#include "acq/acq_optimizer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace easybo::acq {
namespace {

/// Ad-hoc acquisition wrapping a plain callable.
class LambdaAcq final : public AcquisitionFn {
 public:
  explicit LambdaAcq(std::function<double(const linalg::Vec&)> fn)
      : fn_(std::move(fn)) {}
  double operator()(const linalg::Vec& x) const override { return fn_(x); }

 private:
  std::function<double(const linalg::Vec&)> fn_;
};

TEST(AcqOptimizer, FindsInteriorPeak) {
  // Smooth unimodal bump centered at (0.3, 0.7).
  LambdaAcq fn([](const linalg::Vec& x) {
    const double dx = x[0] - 0.3, dy = x[1] - 0.7;
    return std::exp(-20.0 * (dx * dx + dy * dy));
  });
  Rng rng(1);
  const auto r = maximize_acquisition(fn, 2, rng);
  EXPECT_NEAR(r.best_x[0], 0.3, 0.02);
  EXPECT_NEAR(r.best_x[1], 0.7, 0.02);
  EXPECT_GT(r.best_value, 0.99);
}

TEST(AcqOptimizer, FindsBoundaryPeak) {
  // Monotone function maximized at the corner (1, 1, 1).
  LambdaAcq fn([](const linalg::Vec& x) { return x[0] + x[1] + x[2]; });
  Rng rng(2);
  const auto r = maximize_acquisition(fn, 3, rng);
  EXPECT_GT(r.best_value, 2.9);
}

TEST(AcqOptimizer, StaysInsideUnitCube) {
  LambdaAcq fn([](const linalg::Vec& x) { return x[0]; });
  Rng rng(3);
  const auto r = maximize_acquisition(fn, 4, rng);
  for (double v : r.best_x) {
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(AcqOptimizer, AnchorRescuesNarrowPeak) {
  // A needle at a known location that random screening will almost surely
  // miss — the anchor (e.g. the incumbent in BO) must save it.
  const linalg::Vec needle = {0.123456, 0.654321, 0.333333, 0.777777,
                              0.111111};
  LambdaAcq fn([&needle](const linalg::Vec& x) {
    return std::exp(-5e4 * linalg::dist_sq(x, needle));
  });
  Rng rng(4);
  AcqOptOptions opt;
  opt.jitter_scale = 0.002;
  const auto with_anchor =
      maximize_acquisition(fn, 5, rng, {needle}, opt);
  EXPECT_GT(with_anchor.best_value, 0.5);
}

TEST(AcqOptimizer, CountsEvaluations) {
  LambdaAcq fn([](const linalg::Vec& x) { return x[0]; });
  Rng rng(5);
  AcqOptOptions opt;
  opt.sobol_candidates = 32;
  opt.random_candidates = 16;
  opt.refine_top_k = 1;
  opt.refine_evals = 50;
  const auto r = maximize_acquisition(fn, 2, rng, {}, opt);
  EXPECT_GE(r.num_evals, 48u + 10u);           // screening + some NM evals
  EXPECT_LE(r.num_evals, 48u + 50u);
}

TEST(AcqOptimizer, RefinementBeatsScreeningOnly) {
  LambdaAcq fn([](const linalg::Vec& x) {
    const double dx = x[0] - 0.511111;
    return -dx * dx;
  });
  AcqOptOptions no_refine;
  no_refine.refine_evals = 0;
  no_refine.sobol_candidates = 64;
  no_refine.random_candidates = 0;
  no_refine.anchor_jitter = 0;
  AcqOptOptions with_refine = no_refine;
  with_refine.refine_evals = 150;
  with_refine.refine_top_k = 1;

  Rng r1(6), r2(6);
  const auto coarse = maximize_acquisition(fn, 1, r1, {}, no_refine);
  const auto fine = maximize_acquisition(fn, 1, r2, {}, with_refine);
  EXPECT_GE(fine.best_value, coarse.best_value);
  EXPECT_NEAR(fine.best_x[0], 0.511111, 1e-3);
}

TEST(AcqOptimizer, HighDimensionFallsBackToRandomScreening) {
  // dim > Sobol table limit (21) must still work.
  LambdaAcq fn([](const linalg::Vec& x) { return x[0]; });
  Rng rng(7);
  const auto r = maximize_acquisition(fn, 25, rng);
  EXPECT_EQ(r.best_x.size(), 25u);
  EXPECT_GT(r.best_value, 0.8);
}

TEST(AcqOptimizer, RejectsBadArguments) {
  LambdaAcq fn([](const linalg::Vec&) { return 0.0; });
  Rng rng(8);
  EXPECT_THROW(maximize_acquisition(fn, 0, rng), InvalidArgument);
  AcqOptOptions opt;
  opt.sobol_candidates = 0;
  opt.random_candidates = 0;
  EXPECT_THROW(maximize_acquisition(fn, 2, rng, {}, opt), InvalidArgument);
  EXPECT_THROW(maximize_acquisition(fn, 2, rng, {{0.5}}, AcqOptOptions{}),
               InvalidArgument);  // anchor dim mismatch
}

}  // namespace
}  // namespace easybo::acq
