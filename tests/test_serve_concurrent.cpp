// Concurrency tests for the thread-safe SessionHost: parallel clients on
// disjoint sessions reproduce the exact single-threaded proposal streams
// (the tentpole guarantee: different sessions never block each other,
// the same session never interleaves), a single session hammered from
// many threads stays coherent, overload shedding kicks in at the
// in-flight cap while the health probe keeps answering.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "io/fs_fault.h"
#include "io/json.h"
#include "obs/recording.h"
#include "serve/host.h"
#include "serve/session_config.h"

namespace easybo::serve {
namespace {

using linalg::Vec;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "easybo_conc_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string quick_config_json(std::uint64_t seed) {
  bo::BoConfig cfg;
  cfg.mode = bo::Mode::Sequential;
  cfg.acq = bo::AcqKind::EasyBo;
  cfg.penalize = true;
  cfg.batch = 1;
  cfg.init_points = 3;
  cfg.max_sims = 6;
  cfg.seed = seed;
  cfg.on_eval_failure = bo::EvalFailurePolicy::Discard;
  cfg.acq_opt.sobol_candidates = 32;
  cfg.acq_opt.random_candidates = 16;
  cfg.acq_opt.refine_evals = 15;
  cfg.trainer.max_iters = 8;
  cfg.trainer.restarts = 1;
  opt::Bounds bounds;
  bounds.lower = {0.0, 0.0};
  bounds.upper = {1.0, 1.0};
  return session_config_json(cfg, bounds);
}

double objective_of(const Vec& x) {
  double s = 0.0;
  for (const double v : x) s += std::sin(3.0 * v) + v * v;
  return s;
}

struct Suggested {
  std::size_t tag = 0;
  Vec x;
};

Suggested parse_suggest_reply(const std::string& reply) {
  EXPECT_EQ(reply.rfind("OK ", 0), 0u) << reply;
  const io::JsonValue j = io::parse_json(reply.substr(3));
  Suggested s;
  s.tag = static_cast<std::size_t>(j.at("tag").as_double());
  for (const auto& v : j.at("x").as_array()) s.x.push_back(v.as_double());
  return s;
}

std::vector<Vec> drive_to_exhaustion(SessionHost& host,
                                     const std::string& name) {
  std::vector<Vec> xs;
  for (;;) {
    const std::string reply = host.handle_line("SUGGEST " + name);
    if (reply.rfind("ERR ", 0) == 0) {
      EXPECT_NE(reply.find("budget exhausted"), std::string::npos) << reply;
      break;
    }
    const Suggested s = parse_suggest_reply(reply);
    xs.push_back(s.x);
    const std::string ob = host.handle_line(
        "OBSERVE " + name + " " + std::to_string(s.tag) + " " +
        io::json_number(objective_of(s.x)));
    EXPECT_EQ(ob.rfind("OK ", 0), 0u) << ob;
  }
  return xs;
}

TEST(ServeConcurrent, DisjointSessionsInParallelMatchSerialStreams) {
  // Reference streams, one session at a time on a single-threaded host.
  const int kThreads = 4;
  const int kPerThread = 3;
  std::vector<std::string> names;
  std::vector<std::string> configs;
  std::vector<std::vector<Vec>> expected;
  {
    const std::string dir = fresh_dir("serial_ref");
    SessionHost host(dir, 4);
    for (int i = 0; i < kThreads * kPerThread; ++i) {
      names.push_back("sess" + std::to_string(i));
      configs.push_back(quick_config_json(1000 + i));
      EXPECT_EQ(host.handle_line("NEW " + names[i] + " " + configs[i])
                    .rfind("OK ", 0),
                0u);
      expected.push_back(drive_to_exhaustion(host, names[i]));
      EXPECT_FALSE(expected.back().empty());
    }
  }

  // Same sessions, driven from kThreads threads at once, with max_live
  // far below the session count so eviction/resume churns concurrently.
  const std::string dir = fresh_dir("parallel");
  SessionHost host(dir, 4);
  std::vector<std::vector<std::vector<Vec>>> got(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int k = 0; k < kPerThread; ++k) {
        const int i = t * kPerThread + k;
        const std::string created =
            host.handle_line("NEW " + names[i] + " " + configs[i]);
        EXPECT_EQ(created.rfind("OK ", 0), 0u) << created;
        got[t].push_back(drive_to_exhaustion(host, names[i]));
      }
    });
  }
  for (auto& th : threads) th.join();

  for (int t = 0; t < kThreads; ++t) {
    for (int k = 0; k < kPerThread; ++k) {
      const int i = t * kPerThread + k;
      SCOPED_TRACE(names[i]);
      ASSERT_EQ(got[t][k].size(), expected[i].size());
      for (std::size_t p = 0; p < expected[i].size(); ++p) {
        EXPECT_EQ(got[t][k][p], expected[i][p]) << "proposal " << p;
      }
    }
  }
  // Eviction skips busy sessions, so the live set may sit above
  // max_live by at most the number of commands that were in flight when
  // the last trim ran — never unboundedly.
  EXPECT_LE(host.live_count(), host.max_live() + kThreads);
  EXPECT_EQ(host.quarantined_count(), 0u);
}

TEST(ServeConcurrent, OneSessionHammeredFromManyThreadsStaysCoherent) {
  const std::string dir = fresh_dir("hammer");
  SessionHost host(dir, 4);
  const std::string config = quick_config_json(55);
  ASSERT_EQ(host.handle_line("NEW h " + config).rfind("OK ", 0), 0u);

  // Each thread races SUGGEST→OBSERVE against the others. The per-slot
  // lock serializes each command; protocol ERRs (budget, nothing
  // pending) are expected — lost updates, interleaved replies, or a
  // wedged host are not.
  std::atomic<int> exhausted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int spin = 0; spin < 300; ++spin) {
        const std::string reply = host.handle_line("SUGGEST h");
        if (reply.rfind("OK ", 0) == 0) {
          const Suggested s = parse_suggest_reply(reply);
          host.handle_line("OBSERVE h " + std::to_string(s.tag) + " " +
                           io::json_number(objective_of(s.x)));
          continue;
        }
        if (reply.find("budget exhausted") != std::string::npos) {
          exhausted.fetch_add(1);
          return;
        }
        std::this_thread::yield();
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GT(exhausted.load(), 0);

  const std::string status = host.handle_line("STATUS h");
  ASSERT_EQ(status.rfind("OK ", 0), 0u) << status;
  const io::JsonValue j = io::parse_json(status.substr(3));
  EXPECT_EQ(j.at("observed").as_double(), 6.0) << status;
  // And the files round-trip: a fresh host sees the same terminal state.
  SessionHost reopened(dir, 4);
  const std::string status2 = reopened.handle_line("STATUS h");
  ASSERT_EQ(status2.rfind("OK ", 0), 0u);
  EXPECT_EQ(io::parse_json(status2.substr(3)).at("observed").as_double(),
            6.0);
}

TEST(ServeConcurrent, InflightCapShedsWhileHealthProbeStillAnswers) {
  const std::string dir = fresh_dir("shed");
  HostLimits limits;
  limits.max_inflight = 1;
  SessionHost host(dir, 4, limits);
  const std::string config = quick_config_json(77);
  ASSERT_EQ(host.handle_line("NEW slow " + config).rfind("OK ", 0), 0u);

  // Stall every storage operation so the worker thread's SUGGEST dwells
  // inside the host long enough for the main thread to collide with it
  // deterministically (the injector's stall channel, not sleeps in the
  // test, controls the overlap).
  io::FsFaultPlan plan;
  plan.stall_every = 1;
  plan.stall_seconds = 0.15;
  io::ScopedFsFaults faults(plan);

  std::string worker_reply;
  std::thread worker([&] {
    worker_reply = host.handle_line("SUGGEST slow");
  });
  // Wait until the worker's request is inside handle_line.
  for (int spin = 0; spin < 2000; ++spin) {
    const std::string health = host.handle_line("STATUS");
    ASSERT_EQ(health.rfind("OK ", 0), 0u);
    if (health.find("\"inflight\":1") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const std::string shed = host.handle_line("SUGGEST slow");
  EXPECT_EQ(shed.rfind("ERR busy", 0), 0u) << shed;
  EXPECT_GE(host.shed_count(), 1u);
  // The health probe is exempt from shedding even at the cap.
  EXPECT_EQ(host.handle_line("STATUS").rfind("OK ", 0), 0u);
  worker.join();
  EXPECT_EQ(worker_reply.rfind("OK ", 0), 0u) << worker_reply;

  // Shed requests left no mark on the session: the stream continues.
  const std::string status = host.handle_line("STATUS slow");
  EXPECT_EQ(status.rfind("OK ", 0), 0u);
}

TEST(ServeConcurrent, CountersMirrorToTheTraceSink) {
  const std::string dir = fresh_dir("trace");
  HostLimits limits;
  limits.max_inflight = 1;
  SessionHost host(dir, 4, limits);
  obs::RecordingSink sink;
  host.set_trace(&sink);
  const std::string config = quick_config_json(88);
  ASSERT_EQ(host.handle_line("NEW t " + config).rfind("OK ", 0), 0u);
  const Suggested s = parse_suggest_reply(host.handle_line("SUGGEST t"));
  {
    io::FsFaultPlan plan;
    plan.eio_every = 1;
    plan.max_faults = 1;
    io::ScopedFsFaults faults(plan);
    const std::string reply =
        host.handle_line("OBSERVE t " + std::to_string(s.tag) + " 1.0");
    EXPECT_EQ(reply.rfind("ERR storage", 0), 0u) << reply;
  }
  EXPECT_EQ(sink.counter("serve.quarantined"), 1u);
  EXPECT_GE(sink.counter("serve.io_faults"), 1u);
  host.set_trace(nullptr);
}

}  // namespace
}  // namespace easybo::serve
