// Tests for the acquisition functions: UCB/EI/PI values, the EasyBO
// weight distribution (Fig. 2), the pBO weight grid, the pHCBO high-
// coverage penalty (Eq. 6), and the hallucination-penalized weighted UCB
// (Eq. 9).

#include "acq/acquisition.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/error.h"
#include "common/stats.h"
#include "gp/gp.h"

namespace easybo::acq {
namespace {

using gp::GpRegressor;
using gp::SquaredExponentialArd;

GpRegressor make_model() {
  GpRegressor gp(std::make_unique<SquaredExponentialArd>(1.0, Vec{0.25}),
                 1e-8);
  gp.set_data({{0.1}, {0.5}, {0.9}}, {0.0, 1.0, -0.5});
  gp.fit();
  return gp;
}

TEST(NormalHelpers, PdfCdfKnownValues) {
  EXPECT_NEAR(norm_pdf(0.0), 0.3989422804, 1e-9);
  EXPECT_NEAR(norm_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(norm_cdf(1.6448536), 0.95, 1e-6);
  EXPECT_NEAR(norm_cdf(-1.6448536), 0.05, 1e-6);
}

TEST(Ucb, CombinesMeanAndUncertainty) {
  const auto gp = make_model();
  Ucb ucb(&gp, 2.0);
  const Vec x = {0.3};
  const auto p = gp.predict(x);
  EXPECT_NEAR(ucb(x), p.mean + 2.0 * p.stddev(), 1e-12);
}

TEST(Ucb, KappaZeroIsPureMean) {
  const auto gp = make_model();
  Ucb ucb(&gp, 0.0);
  const Vec x = {0.37};
  EXPECT_NEAR(ucb(x), gp.predict(x).mean, 1e-12);
}

TEST(Ucb, RejectsNegativeKappaAndNullModel) {
  const auto gp = make_model();
  EXPECT_THROW(Ucb(&gp, -1.0), InvalidArgument);
  EXPECT_THROW(Ucb(nullptr, 1.0), InvalidArgument);
}

TEST(Ei, IsNonNegativeEverywhere) {
  const auto gp = make_model();
  Ei ei(&gp, /*best_y=*/1.0);
  for (double x = -0.2; x <= 1.2; x += 0.01) {
    EXPECT_GE(ei({x}), 0.0) << "at x=" << x;
  }
}

TEST(Ei, ZeroAtConfidentlyWorsePoint) {
  const auto gp = make_model();
  Ei ei(&gp, /*best_y=*/1.0);
  // x = 0.9 is a training point with y = -0.5 and near-zero variance.
  EXPECT_LT(ei({0.9}), 1e-6);
}

TEST(Ei, MatchesClosedFormOnHandValues) {
  const auto gp = make_model();
  const Vec x = {0.31};
  const auto p = gp.predict(x);
  const double best = 0.4;
  const double z = (p.mean - best) / p.stddev();
  const double expected =
      (p.mean - best) * norm_cdf(z) + p.stddev() * norm_pdf(z);
  Ei ei(&gp, best);
  EXPECT_NEAR(ei(x), expected, 1e-12);
}

TEST(Pi, IsAProbability) {
  const auto gp = make_model();
  Pi pi(&gp, 0.5);
  for (double x = -0.2; x <= 1.2; x += 0.01) {
    const double v = pi({x});
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(Pi, HighWhereMeanBeatsIncumbent) {
  const auto gp = make_model();
  Pi pi(&gp, 0.0);
  EXPECT_GT(pi({0.5}), 0.95);  // training point with y=1 > incumbent 0
}

TEST(WeightedUcb, EndpointsAreMeanAndSigma) {
  const auto gp = make_model();
  const Vec x = {0.33};
  const auto p = gp.predict(x);
  WeightedUcb pure_mean(&gp, &gp, 0.0);
  WeightedUcb pure_sigma(&gp, &gp, 1.0);
  EXPECT_NEAR(pure_mean(x), p.mean, 1e-12);
  EXPECT_NEAR(pure_sigma(x), p.stddev(), 1e-12);
}

TEST(WeightedUcb, RejectsOutOfRangeWeight) {
  const auto gp = make_model();
  EXPECT_THROW(WeightedUcb(&gp, &gp, -0.1), InvalidArgument);
  EXPECT_THROW(WeightedUcb(&gp, &gp, 1.1), InvalidArgument);
}

TEST(WeightedUcb, Eq9UsesHallucinatedSigmaButObservedMean) {
  // The penalized acquisition (Eq. 9) must take mu from the observed-data
  // model and sigma-hat from the augmented model.
  const auto gp = make_model();
  const Vec pending = {0.3};
  const auto aug = gp.with_hallucinated({pending});
  WeightedUcb eq9(&gp, &aug, 0.5);
  const double expected =
      0.5 * gp.predict(pending).mean + 0.5 * aug.predict(pending).stddev();
  EXPECT_NEAR(eq9(pending), expected, 1e-12);
  // And it is strictly smaller than the unpenalized value at the busy
  // point (that is the whole point of the scheme).
  WeightedUcb eq8(&gp, &gp, 0.5);
  EXPECT_LT(eq9(pending), eq8(pending));
}

// ---------------------------------------------------------------------------
// EasyBO weight sampling (Fig. 2 property)
// ---------------------------------------------------------------------------

TEST(EasyBoWeight, RangeIsZeroToLambdaOverLambdaPlusOne) {
  Rng rng(1);
  const double lambda = 6.0;
  const double wmax = lambda / (lambda + 1.0);
  for (int i = 0; i < 5000; ++i) {
    const double w = sample_easybo_weight(rng, lambda);
    EXPECT_GE(w, 0.0);
    EXPECT_LE(w, wmax);
  }
}

TEST(EasyBoWeight, DensityIncreasesTowardOne) {
  // Fig. 2: the induced density of w rises toward 1. Count samples in the
  // three thirds of [0, 6/7]: strictly increasing occupancy.
  Rng rng(2);
  const double wmax = 6.0 / 7.0;
  int lo = 0, mid = 0, hi = 0;
  for (int i = 0; i < 30000; ++i) {
    const double w = sample_easybo_weight(rng, 6.0);
    if (w < wmax / 3) ++lo;
    else if (w < 2 * wmax / 3) ++mid;
    else ++hi;
  }
  EXPECT_LT(lo, mid);
  EXPECT_LT(mid, hi);
}

TEST(EasyBoWeight, MedianMatchesTheory) {
  // kappa ~ U[0,6] -> median kappa = 3 -> median w = 3/4.
  Rng rng(3);
  std::vector<double> ws;
  for (int i = 0; i < 20000; ++i) ws.push_back(sample_easybo_weight(rng, 6.0));
  EXPECT_NEAR(median_of(std::move(ws)), 0.75, 0.01);
}

TEST(EasyBoWeight, RejectsNonPositiveLambda) {
  Rng rng(1);
  EXPECT_THROW(sample_easybo_weight(rng, 0.0), InvalidArgument);
}

TEST(PboWeightGrid, MatchesPaperPattern) {
  // Paper §IV: w_i = (i-1)/(B-1); for B=5 -> (0, .25, .5, .75, 1).
  const Vec w5 = pbo_weight_grid(5);
  ASSERT_EQ(w5.size(), 5u);
  EXPECT_DOUBLE_EQ(w5[0], 0.0);
  EXPECT_DOUBLE_EQ(w5[1], 0.25);
  EXPECT_DOUBLE_EQ(w5[4], 1.0);
  EXPECT_DOUBLE_EQ(pbo_weight_grid(1)[0], 0.5);
}

// ---------------------------------------------------------------------------
// pHCBO high-coverage penalty (Eq. 6)
// ---------------------------------------------------------------------------

TEST(HcPenalty, ZeroWithoutHistory) {
  HighCoveragePenalty pen(0.1, 1.0);
  EXPECT_DOUBLE_EQ(pen({0.5, 0.5}), 0.0);
}

TEST(HcPenalty, HugeInsideRadiusTinyOutside) {
  HighCoveragePenalty pen(0.1, 1.0);
  pen.record({0.5, 0.5});
  // Inside the d-ball: astronomically large.
  EXPECT_GT(pen({0.52, 0.5}), 1e10);
  // Several radii away: essentially zero extra (exp(tiny) ~ 1 * N_HC, and
  // the (d/dist)^10 exponent collapses fast).
  EXPECT_LT(pen({0.9, 0.9}), 1.01);
}

TEST(HcPenalty, KeepsOnlyLastFivePoints) {
  HighCoveragePenalty pen(0.1, 1.0);
  for (int i = 0; i < 8; ++i) {
    pen.record({0.1 * i, 0.0});
  }
  EXPECT_EQ(pen.history_size(), 5u);
  // The first recorded point (0,0) fell out of the window: the penalty
  // right on it is only driven by the remaining (distant) points.
  EXPECT_LT(pen({0.0, 0.0}), 2.0);
}

TEST(HcPenalty, NoOverflowAtExactHistoryPoint) {
  HighCoveragePenalty pen(0.1, 1.0);
  pen.record({0.3});
  const double v = pen({0.3});
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_GT(v, 1e100);
}

TEST(Phcbo, PenaltySuppressesRevisits) {
  const auto gp = make_model();
  HighCoveragePenalty pen(0.15, 1.0);
  PhcboAcquisition acq(&gp, 0.5, &pen);
  WeightedUcb base(&gp, &gp, 0.5);
  const Vec x = {0.42};
  EXPECT_NEAR(acq(x), base(x), 1e-9);  // no history yet
  pen.record(x);
  EXPECT_LT(acq(x), base(x) - 1.0);  // massively penalized now
}

// ---------------------------------------------------------------------------
// Local penalization (extension baseline)
// ---------------------------------------------------------------------------

TEST(LocalPenalization, SuppressesBusyNeighborhoodOnly) {
  const auto gp = make_model();
  Ei base(&gp, 0.2);
  const Vec busy = {0.3};
  LocalPenalization lp(&base, &gp, {busy}, /*lipschitz=*/5.0,
                       /*best_y=*/1.0);
  LocalPenalization lp_empty(&base, &gp, {}, 5.0, 1.0);
  // With no busy points the hammer product is empty: positive transform of
  // the base acquisition, same argmax ordering.
  EXPECT_GT(lp_empty({0.45}), lp_empty({0.9}));
  // Busy point suppressed relative to the unpenalized version.
  EXPECT_LT(lp(busy) / std::max(lp_empty(busy), 1e-12), 0.9);
}

TEST(EstimateLipschitz, PositiveAndScalesWithFunction) {
  Rng rng(9);
  const auto gp = make_model();
  const double l = estimate_lipschitz(gp, rng, 128);
  EXPECT_GT(l, 0.0);
  EXPECT_THROW(estimate_lipschitz(gp, rng, 1), InvalidArgument);
}

}  // namespace
}  // namespace easybo::acq
