// Tests for bo/config.h: labels in the paper's style and validation rules.

#include "bo/config.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace easybo::bo {
namespace {

BoConfig base() {
  BoConfig c;
  c.init_points = 20;
  c.max_sims = 150;
  return c;
}

TEST(BoConfig, PaperLabels) {
  BoConfig c = base();

  c.mode = Mode::Sequential;
  c.acq = AcqKind::Ei;
  EXPECT_EQ(c.label(), "EI");
  c.acq = AcqKind::Lcb;
  EXPECT_EQ(c.label(), "LCB");
  c.acq = AcqKind::EasyBo;
  EXPECT_EQ(c.label(), "EasyBO");

  c.batch = 5;
  c.mode = Mode::SyncBatch;
  c.acq = AcqKind::Pbo;
  EXPECT_EQ(c.label(), "pBO-5");
  c.acq = AcqKind::Phcbo;
  EXPECT_EQ(c.label(), "pHCBO-5");
  c.acq = AcqKind::EasyBo;
  c.penalize = false;
  EXPECT_EQ(c.label(), "EasyBO-S-5");
  c.penalize = true;
  EXPECT_EQ(c.label(), "EasyBO-SP-5");

  c.mode = Mode::AsyncBatch;
  c.batch = 10;
  c.penalize = false;
  EXPECT_EQ(c.label(), "EasyBO-A-10");
  c.penalize = true;
  EXPECT_EQ(c.label(), "EasyBO-10");
}

TEST(BoConfig, ToStringHelpers) {
  EXPECT_STREQ(to_string(Mode::Sequential), "sequential");
  EXPECT_STREQ(to_string(Mode::SyncBatch), "sync");
  EXPECT_STREQ(to_string(Mode::AsyncBatch), "async");
  EXPECT_STREQ(to_string(AcqKind::EasyBo), "EasyBO");
  EXPECT_STREQ(to_string(AcqKind::Pbo), "pBO");
}

TEST(BoConfig, DefaultIsValid) {
  BoConfig c = base();
  EXPECT_NO_THROW(c.validate());
}

TEST(BoConfig, BudgetMustExceedInit) {
  BoConfig c = base();
  c.max_sims = 20;
  EXPECT_THROW(c.validate(), InvalidArgument);
}

TEST(BoConfig, BatchModesNeedBatchOfTwo) {
  BoConfig c = base();
  c.mode = Mode::SyncBatch;
  c.acq = AcqKind::EasyBo;
  c.batch = 1;
  EXPECT_THROW(c.validate(), InvalidArgument);
}

TEST(BoConfig, PboIsBatchOnly) {
  BoConfig c = base();
  c.acq = AcqKind::Pbo;
  c.mode = Mode::Sequential;
  EXPECT_THROW(c.validate(), InvalidArgument);
  // Sync or async: the weight grid spans the batch slots either way
  // (async uses slot 0 unless async_slot_rotation spreads it by tag).
  c.mode = Mode::SyncBatch;
  EXPECT_NO_THROW(c.validate());
  c.mode = Mode::AsyncBatch;
  EXPECT_NO_THROW(c.validate());
}

TEST(BoConfig, EiLcbAreSequentialOnly) {
  BoConfig c = base();
  c.acq = AcqKind::Ei;
  c.mode = Mode::SyncBatch;
  EXPECT_THROW(c.validate(), InvalidArgument);
  c.mode = Mode::Sequential;
  EXPECT_NO_THROW(c.validate());
}

TEST(BoConfig, LambdaMustBePositive) {
  BoConfig c = base();
  c.mode = Mode::Sequential;
  c.lambda = 0.0;
  EXPECT_THROW(c.validate(), InvalidArgument);
}

TEST(BoConfig, FailurePolicyNames) {
  EXPECT_STREQ(to_string(EvalFailurePolicy::Abort), "abort");
  EXPECT_STREQ(to_string(EvalFailurePolicy::Discard), "discard");
  EXPECT_STREQ(to_string(EvalFailurePolicy::Penalize), "penalize");
}

TEST(BoConfig, ValidatesFaultToleranceKnobs) {
  BoConfig c = base();
  c.eval_timeout = -1.0;
  EXPECT_THROW(c.validate(), InvalidArgument);

  c = base();
  c.eval_backoff_factor = 0.5;
  EXPECT_THROW(c.validate(), InvalidArgument);

  c = base();
  c.eval_backoff_jitter = 2.0;
  EXPECT_THROW(c.validate(), InvalidArgument);

  c = base();
  c.eval_failure_quantile = 1.5;
  EXPECT_THROW(c.validate(), InvalidArgument);

  c = base();
  c.on_eval_failure = EvalFailurePolicy::Penalize;
  c.eval_timeout = 3.0;
  c.eval_max_retries = 2;
  EXPECT_NO_THROW(c.validate());
}

}  // namespace
}  // namespace easybo::bo
