// Tests for the MNA AC simulator against hand-computable circuits:
// dividers, RC poles, controlled sources, and the measurement block
// (gain / UGF / phase margin).

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/error.h"
#include "spice/measure.h"
#include "spice/mna.h"
#include "spice/netlist.h"

namespace easybo::spice {
namespace {

TEST(Netlist, NodeNamingAndGround) {
  Circuit c;
  EXPECT_EQ(c.node("0"), kGround);
  EXPECT_EQ(c.node("gnd"), kGround);
  const auto a = c.node("a");
  EXPECT_EQ(c.node("a"), a);  // idempotent
  const auto b = c.node("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(c.num_nodes(), 3u);
  const auto internal = c.internal_node();
  EXPECT_EQ(internal, 3u);
}

TEST(Netlist, RejectsBadElements) {
  Circuit c;
  const auto a = c.node("a");
  EXPECT_THROW(c.add_resistor(a, kGround, 0.0), InvalidArgument);
  EXPECT_THROW(c.add_resistor(a, 99, 1.0), InvalidArgument);
  EXPECT_THROW(c.add_inductor(a, kGround, -1e-9), InvalidArgument);
}

TEST(SolveAc, ResistiveDivider) {
  Circuit c;
  const auto in = c.node("in");
  const auto mid = c.node("mid");
  c.add_voltage_source(in, kGround, 1.0);
  c.add_resistor(in, mid, 3e3);
  c.add_resistor(mid, kGround, 1e3);
  const auto sol = solve_ac(c, 1e3);
  EXPECT_NEAR(std::abs(sol.v(mid)), 0.25, 1e-12);
  EXPECT_NEAR(std::abs(sol.v(in)), 1.0, 1e-12);
}

TEST(SolveAc, VoltageSourceBranchCurrent) {
  Circuit c;
  const auto in = c.node("in");
  c.add_voltage_source(in, kGround, 10.0);
  c.add_resistor(in, kGround, 2.0);
  const auto sol = solve_ac(c, 0.0);
  ASSERT_EQ(sol.branch_current.size(), 1u);
  // Current through the source: 5 A (sign: branch current flows p -> n
  // through the source, i.e. out of the + terminal through the circuit).
  EXPECT_NEAR(std::abs(sol.branch_current[0]), 5.0, 1e-12);
}

TEST(SolveAc, RcLowPassPole) {
  // R = 1k, C = 1uF -> fc = 1/(2 pi RC) ~ 159.15 Hz.
  Circuit c;
  const auto in = c.node("in");
  const auto out = c.node("out");
  c.add_voltage_source(in, kGround, 1.0);
  c.add_resistor(in, out, 1e3);
  c.add_capacitor(out, kGround, 1e-6);
  const double fc = 1.0 / (2.0 * std::numbers::pi * 1e3 * 1e-6);

  // At fc: magnitude 1/sqrt(2), phase -45 deg.
  const auto sol = solve_ac(c, fc);
  EXPECT_NEAR(std::abs(sol.v(out)), 1.0 / std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(std::arg(sol.v(out)) * 180.0 / std::numbers::pi, -45.0, 1e-6);

  // A decade above: ~ -20 dB.
  const auto sol10 = solve_ac(c, 10.0 * fc);
  EXPECT_NEAR(20.0 * std::log10(std::abs(sol10.v(out))), -20.04, 0.05);
}

TEST(SolveAc, VccsAmplifierGain) {
  // Common-source stage: gm = 2 mS into RL = 5 kOhm -> |gain| = 10.
  Circuit c;
  const auto in = c.node("in");
  const auto out = c.node("out");
  c.add_voltage_source(in, kGround, 1.0);
  c.add_vccs(out, kGround, in, kGround, 2e-3);
  c.add_resistor(out, kGround, 5e3);
  const auto sol = solve_ac(c, 1.0);
  EXPECT_NEAR(std::abs(sol.v(out)), 10.0, 1e-9);
  // Inverting: current pulled OUT of the output node for positive vin.
  EXPECT_NEAR(sol.v(out).real(), -10.0, 1e-9);
}

TEST(SolveAc, VcvsIdealGainBlock) {
  Circuit c;
  const auto in = c.node("in");
  const auto out = c.node("out");
  c.add_voltage_source(in, kGround, 1.0);
  c.add_vcvs(out, kGround, in, kGround, 7.5);
  c.add_resistor(out, kGround, 1e3);  // load does not affect ideal VCVS
  const auto sol = solve_ac(c, 10.0);
  EXPECT_NEAR(sol.v(out).real(), 7.5, 1e-9);
}

TEST(SolveAc, CurrentSourceIntoResistor) {
  Circuit c;
  const auto out = c.node("out");
  c.add_current_source(out, kGround, 2e-3);
  c.add_resistor(out, kGround, 1e3);
  const auto sol = solve_ac(c, 0.0);
  EXPECT_NEAR(sol.v(out).real(), 2.0, 1e-12);
}

TEST(SolveAc, InductorImpedance) {
  // L = 1 mH at f where wL = 100 ohm, driven by 1 V through 100 ohm:
  // |v_out| = 1/sqrt(2).
  Circuit c;
  const auto in = c.node("in");
  const auto out = c.node("out");
  c.add_voltage_source(in, kGround, 1.0);
  c.add_resistor(in, out, 100.0);
  c.add_inductor(out, kGround, 1e-3);
  const double f = 100.0 / (2.0 * std::numbers::pi * 1e-3);
  const auto sol = solve_ac(c, f);
  EXPECT_NEAR(std::abs(sol.v(out)), 1.0 / std::sqrt(2.0), 1e-9);
  EXPECT_THROW(solve_ac(c, 0.0), InvalidArgument);  // L needs f > 0
}

TEST(SolveAc, FloatingNodeIsSingular) {
  Circuit c;
  c.node("floating");
  EXPECT_THROW(solve_ac(c, 1.0), NumericalError);
}

TEST(LogFrequencyGrid, SpansAndOrders) {
  const auto f = log_frequency_grid(10.0, 1e6, 10);
  EXPECT_DOUBLE_EQ(f.front(), 10.0);
  EXPECT_DOUBLE_EQ(f.back(), 1e6);
  EXPECT_EQ(f.size(), 51u);  // 5 decades * 10 + 1
  for (std::size_t i = 1; i < f.size(); ++i) EXPECT_GT(f[i], f[i - 1]);
  EXPECT_THROW(log_frequency_grid(0.0, 1e3, 10), InvalidArgument);
  EXPECT_THROW(log_frequency_grid(1e3, 1e2, 10), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Measurements on a synthetic single-pole amplifier
// ---------------------------------------------------------------------------

AcSweep single_pole_amp(double a0, double fp, double f_lo, double f_hi) {
  // H(f) = a0 / (1 + j f/fp), computed analytically.
  AcSweep sweep;
  for (double f : log_frequency_grid(f_lo, f_hi, 40)) {
    const Complex h = a0 / Complex(1.0, f / fp);
    sweep.points.push_back({f, h});
  }
  return sweep;
}

TEST(Measure, SinglePoleGainUgfPm) {
  // a0 = 1000 (60 dB), pole at 1 kHz -> UGF ~ a0 * fp = 1 MHz, PM ~ 90 deg.
  const auto sweep = single_pole_amp(1000.0, 1e3, 10.0, 1e8);
  const auto m = measure_open_loop(sweep);
  EXPECT_NEAR(m.dc_gain_db, 60.0, 0.01);
  ASSERT_TRUE(m.has_ugf);
  EXPECT_NEAR(m.ugf_hz / 1e6, 1.0, 0.01);
  EXPECT_NEAR(m.phase_margin_deg, 90.0, 0.5);
}

TEST(Measure, TwoPolePhaseMargin) {
  // Second pole exactly at the UGF adds 45 deg of phase: PM ~ 45 deg.
  AcSweep sweep;
  const double a0 = 1000.0, fp1 = 1e3, fp2 = 1e6;
  for (double f : log_frequency_grid(10.0, 1e8, 60)) {
    const Complex h =
        a0 / (Complex(1.0, f / fp1) * Complex(1.0, f / fp2));
    sweep.points.push_back({f, h});
  }
  const auto m = measure_open_loop(sweep);
  ASSERT_TRUE(m.has_ugf);
  // Exact: |H(u)| = 1 -> a0^2 = (1+(u/fp1)^2)(1+(u/fp2)^2); PM follows
  // from the two-pole phase at that crossing.
  const double u = m.ugf_hz;
  EXPECT_NEAR(a0 * a0,
              (1 + std::pow(u / fp1, 2)) * (1 + std::pow(u / fp2, 2)),
              0.05 * a0 * a0);
  const double expected_pm =
      180.0 - (std::atan(u / fp1) + std::atan(u / fp2)) * 180.0 /
                  std::numbers::pi;
  EXPECT_NEAR(m.phase_margin_deg, expected_pm, 1.0);
}

TEST(Measure, InvertingAmpSamePm) {
  // Multiply H by -1 (DC phase 180): PM relative to DC must not change.
  const auto sweep = single_pole_amp(1000.0, 1e3, 10.0, 1e8);
  AcSweep inverted = sweep;
  for (auto& p : inverted.points) p.value = -p.value;
  const auto m1 = measure_open_loop(sweep);
  const auto m2 = measure_open_loop(inverted);
  EXPECT_NEAR(m1.phase_margin_deg, m2.phase_margin_deg, 1e-6);
  EXPECT_NEAR(m1.ugf_hz, m2.ugf_hz, 1e-6);
}

TEST(Measure, NoUgfWhenGainBelowUnity) {
  const auto sweep = single_pole_amp(0.5, 1e3, 10.0, 1e6);
  const auto m = measure_open_loop(sweep);
  EXPECT_FALSE(m.has_ugf);
  EXPECT_DOUBLE_EQ(m.ugf_hz, 0.0);
  EXPECT_FALSE(unity_gain_frequency(sweep).has_value());
}

TEST(Measure, UnwrapRemovesJumps) {
  // Three-pole response sweeps phase through -270: raw phase wraps, the
  // unwrapped series must be monotone (no +360 jumps).
  AcSweep sweep;
  for (double f : log_frequency_grid(1.0, 1e9, 30)) {
    Complex h = 1e5 / (Complex(1.0, f / 1e2) * Complex(1.0, f / 1e4) *
                       Complex(1.0, f / 1e6));
    sweep.points.push_back({f, h});
  }
  const auto phase = unwrapped_phase_deg(sweep);
  for (std::size_t i = 1; i < phase.size(); ++i) {
    EXPECT_LT(phase[i], phase[i - 1] + 1.0);  // monotonically falling
  }
  EXPECT_NEAR(phase.back(), -270.0, 5.0);
}

TEST(Measure, RejectsDegenerateSweeps) {
  AcSweep empty;
  EXPECT_THROW(dc_gain_db(empty), InvalidArgument);
  AcSweep one;
  one.points.push_back({1.0, Complex(1.0, 0.0)});
  EXPECT_THROW(measure_open_loop(one), InvalidArgument);
}

TEST(AcPoint, DbAndPhaseHelpers) {
  AcPoint p{1.0, Complex(0.0, 10.0)};
  EXPECT_NEAR(p.magnitude_db(), 20.0, 1e-12);
  EXPECT_NEAR(p.phase_deg(), 90.0, 1e-12);
}

}  // namespace
}  // namespace easybo::spice
