// Unit and property tests for linalg/lu.h (real and complex LU with
// partial pivoting) — the solver under the MNA circuit simulator.

#include "linalg/lu.h"

#include <gtest/gtest.h>

#include <complex>

#include "common/rng.h"

namespace easybo::linalg {
namespace {

using C = std::complex<double>;

TEST(LuReal, SolvesKnownSystem) {
  // [2 1; 1 3] x = [3; 5] -> x = [0.8, 1.4].
  LuReal lu({2, 1, 1, 3}, 2);
  const auto x = lu.solve({3, 5});
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(LuReal, PivotsOnZeroDiagonal) {
  // Leading zero forces a row swap; without pivoting this would divide by 0.
  LuReal lu({0, 1, 1, 0}, 2);
  const auto x = lu.solve({2, 3});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  EXPECT_EQ(lu.swap_count(), 1);
}

TEST(LuReal, DeterminantKnown) {
  LuReal lu({1, 2, 3, 4}, 2);
  EXPECT_NEAR(lu.determinant(), -2.0, 1e-12);
}

TEST(LuReal, SingularThrows) {
  EXPECT_THROW(LuReal({1, 2, 2, 4}, 2), NumericalError);
}

TEST(LuReal, SizeMismatchThrows) {
  EXPECT_THROW(LuReal({1, 2, 3}, 2), InvalidArgument);
  LuReal lu({1, 0, 0, 1}, 2);
  EXPECT_THROW(lu.solve({1.0}), InvalidArgument);
}

TEST(LuComplex, SolvesComplexSystem) {
  // (1+j) x = (2) -> x = 2/(1+j) = 1 - j.
  LuComplex lu({C(1, 1)}, 1);
  const auto x = lu.solve({C(2, 0)});
  EXPECT_NEAR(x[0].real(), 1.0, 1e-12);
  EXPECT_NEAR(x[0].imag(), -1.0, 1e-12);
}

TEST(LuComplex, DeterminantOfDiagonal) {
  LuComplex lu({C(0, 1), C(0, 0), C(0, 0), C(0, 1)}, 2);
  const C det = lu.determinant();
  EXPECT_NEAR(det.real(), -1.0, 1e-12);  // j * j = -1
  EXPECT_NEAR(det.imag(), 0.0, 1e-12);
}

class LuSweep : public ::testing::TestWithParam<int> {};

TEST_P(LuSweep, RandomRealRoundTrip) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 7);
  std::vector<double> a(static_cast<std::size_t>(n * n));
  for (auto& v : a) v = rng.normal();
  // Diagonal dominance guarantees non-singularity.
  for (int i = 0; i < n; ++i) {
    a[static_cast<std::size_t>(i * n + i)] += static_cast<double>(2 * n);
  }
  std::vector<double> rhs(static_cast<std::size_t>(n));
  for (auto& v : rhs) v = rng.normal();

  const std::vector<double> a_copy = a;
  LuReal lu(std::move(a), static_cast<std::size_t>(n));
  const auto x = lu.solve(rhs);
  for (int i = 0; i < n; ++i) {
    double acc = 0;
    for (int j = 0; j < n; ++j) {
      acc += a_copy[static_cast<std::size_t>(i * n + j)] *
             x[static_cast<std::size_t>(j)];
    }
    EXPECT_NEAR(acc, rhs[static_cast<std::size_t>(i)], 1e-8);
  }
}

TEST_P(LuSweep, RandomComplexRoundTrip) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n) * 13);
  std::vector<C> a(static_cast<std::size_t>(n * n));
  for (auto& v : a) v = C(rng.normal(), rng.normal());
  for (int i = 0; i < n; ++i) {
    a[static_cast<std::size_t>(i * n + i)] += C(2.0 * n, 0);
  }
  std::vector<C> rhs(static_cast<std::size_t>(n));
  for (auto& v : rhs) v = C(rng.normal(), rng.normal());

  const std::vector<C> a_copy = a;
  LuComplex lu(std::move(a), static_cast<std::size_t>(n));
  const auto x = lu.solve(rhs);
  for (int i = 0; i < n; ++i) {
    C acc(0, 0);
    for (int j = 0; j < n; ++j) {
      acc += a_copy[static_cast<std::size_t>(i * n + j)] *
             x[static_cast<std::size_t>(j)];
    }
    EXPECT_NEAR(std::abs(acc - rhs[static_cast<std::size_t>(i)]), 0.0, 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuSweep, ::testing::Values(1, 2, 4, 9, 25));

}  // namespace
}  // namespace easybo::linalg
