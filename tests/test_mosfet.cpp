// Tests for the square-law MOSFET small-signal model.

#include "circuit/mosfet.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace easybo::circuit {
namespace {

TEST(Mosfet, GmMatchesSquareLaw) {
  // gm = sqrt(2 kp (W/L) Id) with kp = 170u.
  const auto ss = mos_small_signal(MosType::Nmos, 10.0, 1.0, 100e-6);
  EXPECT_NEAR(ss.gm, std::sqrt(2.0 * 170e-6 * 10.0 * 100e-6), 1e-12);
}

TEST(Mosfet, GmVovIdentity) {
  // Square law: gm = 2 Id / Vov.
  const auto ss = mos_small_signal(MosType::Nmos, 20.0, 0.5, 200e-6);
  EXPECT_NEAR(ss.gm, 2.0 * 200e-6 / ss.vov, 1e-9);
}

TEST(Mosfet, GmScalesWithSqrtCurrent) {
  const auto a = mos_small_signal(MosType::Nmos, 10.0, 1.0, 100e-6);
  const auto b = mos_small_signal(MosType::Nmos, 10.0, 1.0, 400e-6);
  EXPECT_NEAR(b.gm / a.gm, 2.0, 1e-9);
}

TEST(Mosfet, LongerChannelHigherRo) {
  const auto short_l = mos_small_signal(MosType::Nmos, 10.0, 0.18, 100e-6);
  const auto long_l = mos_small_signal(MosType::Nmos, 10.0, 1.8, 100e-6);
  EXPECT_GT(long_l.ro, 9.0 * short_l.ro);
  EXPECT_NEAR(short_l.ro * short_l.gds, 1.0, 1e-12);
}

TEST(Mosfet, PmosSlowerThanNmos) {
  const auto n = mos_small_signal(MosType::Nmos, 10.0, 1.0, 100e-6);
  const auto p = mos_small_signal(MosType::Pmos, 10.0, 1.0, 100e-6);
  EXPECT_GT(n.gm, p.gm);  // kp_n > kp_p at equal geometry and current
}

TEST(Mosfet, CapacitancesScaleWithGeometry) {
  const auto small = mos_small_signal(MosType::Nmos, 5.0, 0.5, 50e-6);
  const auto wide = mos_small_signal(MosType::Nmos, 50.0, 0.5, 50e-6);
  EXPECT_NEAR(wide.cgd / small.cgd, 10.0, 1e-9);
  EXPECT_NEAR(wide.cdb / small.cdb, 10.0, 1e-9);
  EXPECT_GT(wide.cgs, 9.0 * small.cgs);
  EXPECT_GT(small.cgs, small.cgd);  // Cgs dominated by the channel term
}

TEST(Mosfet, RejectsNonPhysicalInputs) {
  EXPECT_THROW(mos_small_signal(MosType::Nmos, 0.0, 1.0, 1e-6),
               InvalidArgument);
  EXPECT_THROW(mos_small_signal(MosType::Nmos, 1.0, -1.0, 1e-6),
               InvalidArgument);
  EXPECT_THROW(mos_small_signal(MosType::Nmos, 1.0, 1.0, 0.0),
               InvalidArgument);
}

TEST(MosProcess, ProcessConstantsSane) {
  const auto n = MosProcess::nmos_180();
  const auto p = MosProcess::pmos_180();
  EXPECT_GT(n.kp, p.kp);
  EXPECT_GT(n.vth, 0.2);
  EXPECT_LT(n.vth, 0.8);
  EXPECT_GT(n.cox, 0.0);
}

}  // namespace
}  // namespace easybo::circuit
