// Tests for the crash-safe run subsystem (bo/checkpoint + io/journal +
// the engine's resume path): CRC-framed JSONL round trips, the 50-seed
// snapshot/RNG serialization regression, corruption handling (torn tail
// tolerated, interior damage and config mismatches refused with the
// documented messages), and the headline guarantee — a run killed at an
// arbitrary evaluation and resumed produces the same proposal sequence
// as the uninterrupted run, on both executor backends.

#include "bo/checkpoint.h"

#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "bo/engine.h"
#include "circuit/testfunc.h"
#include "common/rng.h"
#include "io/journal.h"

namespace easybo::bo {
namespace {

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// Small, fast engine configuration shared by the run-level tests.
BoConfig quick(Mode mode, std::size_t batch, std::uint64_t seed) {
  BoConfig c;
  c.mode = mode;
  c.acq = AcqKind::EasyBo;
  c.penalize = true;
  c.batch = batch;
  c.init_points = 8;
  c.max_sims = 24;
  c.seed = seed;
  c.acq_opt.sobol_candidates = 64;
  c.acq_opt.random_candidates = 32;
  c.acq_opt.refine_evals = 30;
  c.trainer.max_iters = 10;
  c.trainer.restarts = 1;
  return c;
}

/// Varying virtual durations so async completions genuinely interleave.
double varied_sim_time(const Vec& x) {
  return 0.6 + 0.05 * std::abs(x[0]);
}

/// Checkpoint base under the test temp dir, with any files from a
/// previous run of the same test removed.
std::string fresh_base(const std::string& name) {
  const std::string base = ::testing::TempDir() + "easybo_ckpt_" + name;
  std::remove(journal_file(base).c_str());
  std::remove(snapshot_file(base).c_str());
  return base;
}

/// The equivalence the subsystem promises: identical proposal sequence,
/// outcomes and virtual times. Worker attribution is deliberately NOT
/// compared — a resumed run re-submits in-flight work to a fresh idle
/// pool, which may hand out different (equally idle) worker ids without
/// affecting any proposal (docs/checkpoint-format.md).
void expect_same_run(const BoResult& a, const BoResult& b) {
  ASSERT_EQ(a.num_evals(), b.num_evals());
  for (std::size_t i = 0; i < a.num_evals(); ++i) {
    EXPECT_EQ(a.evals[i].x, b.evals[i].x) << "eval " << i;
    EXPECT_DOUBLE_EQ(a.evals[i].y, b.evals[i].y) << "eval " << i;
    EXPECT_DOUBLE_EQ(a.evals[i].start, b.evals[i].start) << "eval " << i;
    EXPECT_DOUBLE_EQ(a.evals[i].finish, b.evals[i].finish) << "eval " << i;
    EXPECT_EQ(a.evals[i].is_init, b.evals[i].is_init) << "eval " << i;
    EXPECT_EQ(a.evals[i].failed, b.evals[i].failed) << "eval " << i;
  }
  EXPECT_EQ(a.best_x, b.best_x);
  EXPECT_DOUBLE_EQ(a.best_y, b.best_y);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  EXPECT_NEAR(a.total_sim_time, b.total_sim_time, 1e-9);
}

/// Runs \p cfg journaled under \p base in a forked child whose objective
/// calls std::_Exit on its \p kill_at_call-th invocation — a SIGKILL
/// stand-in landing at an arbitrary point mid-run, with whatever journal
/// and snapshot exist at that instant left behind for the parent.
void run_and_kill(const BoConfig& cfg, const circuit::TestFunction& tf,
                  const std::string& base, int kill_at_call) {
  const pid_t pid = fork();
  ASSERT_NE(pid, -1) << "fork failed";
  if (pid == 0) {
    int calls = 0;
    auto lethal = [&calls, &tf, kill_at_call](const Vec& x) -> double {
      if (++calls == kill_at_call) std::_Exit(0);
      return tf.fn(x);
    };
    BoConfig child_cfg = cfg;
    child_cfg.checkpoint_path = base;
    try {
      BoEngine engine(child_cfg, tf.bounds, lethal, varied_sim_time);
      engine.run();
    } catch (...) {
      std::_Exit(9);
    }
    std::_Exit(7);  // ran to completion: the kill point never hit
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0) << "child was expected to die mid-run";
}

// ---------------------------------------------------------------------------
// CRC framing and journal file reading
// ---------------------------------------------------------------------------

TEST(JournalFraming, RoundTripAndCorruptionDetection) {
  const std::string payload = R"({"k":"v","n":1})";
  const std::string line = io::frame_line(payload);
  ASSERT_GE(line.size(), 10u);
  EXPECT_EQ(line[8], ' ');

  std::string back;
  ASSERT_TRUE(io::unframe_line(line, back));
  EXPECT_EQ(back, payload);

  // Any single flipped byte — checksum or payload — fails verification.
  for (const std::size_t pos : {std::size_t{0}, std::size_t{11}}) {
    std::string damaged = line;
    damaged[pos] = damaged[pos] == 'x' ? 'y' : 'x';
    EXPECT_FALSE(io::unframe_line(damaged, back)) << "pos " << pos;
  }
  EXPECT_FALSE(io::unframe_line("short", back));
}

TEST(JournalFraming, TornTailIsToleratedInteriorDamageIsNot) {
  const std::string path = ::testing::TempDir() + "easybo_torn.journal";
  const std::string a = io::frame_line("alpha") + "\n";
  const std::string b = io::frame_line("beta") + "\n";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << a << b << "deadbeef {\"trunc";  // crash mid-append: no newline
  }
  const io::JournalReadResult r = io::read_journal(path);
  ASSERT_EQ(r.payloads.size(), 2u);
  EXPECT_EQ(r.payloads[0], "alpha");
  EXPECT_EQ(r.payloads[1], "beta");
  EXPECT_TRUE(r.torn_tail);
  EXPECT_EQ(r.valid_bytes, a.size() + b.size());

  // The same damage in the interior is not a torn tail: refuse loudly.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << a << "deadbeef {\"corrupt\"}\n" << b;
  }
  try {
    io::read_journal(path);
    FAIL() << "interior corruption must throw";
  } catch (const io::CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("journal corrupted: line 2"),
              std::string::npos)
        << e.what();
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Serialization round trips
// ---------------------------------------------------------------------------

TEST(JournalRecordJson, RoundTripsEveryField) {
  JournalRecord rec;
  rec.index = 17;
  rec.tag = 23;
  rec.status = "exception";
  rec.action = "penalized";
  rec.attempts = 3;
  rec.worker = 2;
  rec.start = 1.2500000000000004;  // not representable in few digits
  rec.finish = 3.7000000000000011;
  rec.is_init = true;
  rec.x = {0.125, 0.98765432109876543, 1.0};
  rec.y = std::numeric_limits<double>::quiet_NaN();
  rec.error = "simulator said \"no\"\\core dumped";

  const JournalRecord back = JournalRecord::parse(rec.to_payload());
  EXPECT_EQ(back.index, rec.index);
  EXPECT_EQ(back.tag, rec.tag);
  EXPECT_EQ(back.status, rec.status);
  EXPECT_EQ(back.action, rec.action);
  EXPECT_EQ(back.attempts, rec.attempts);
  EXPECT_EQ(back.worker, rec.worker);
  EXPECT_EQ(back.start, rec.start);    // bit-identical, not just near
  EXPECT_EQ(back.finish, rec.finish);
  EXPECT_EQ(back.is_init, rec.is_init);
  EXPECT_EQ(back.x, rec.x);
  EXPECT_TRUE(std::isnan(back.y));     // NaN travels as JSON null
  EXPECT_EQ(back.error, rec.error);

  rec.y = -123.456789012345678;
  rec.error.clear();
  const JournalRecord ok = JournalRecord::parse(rec.to_payload());
  EXPECT_EQ(ok.y, rec.y);
  EXPECT_TRUE(ok.error.empty());
}

TEST(JournalHeaderJson, RoundTripsAndRejectsForeignSchemas) {
  JournalHeader h;
  h.schema = "easybo.journal.v1";
  h.config_hash = 0xDEADBEEFCAFEF00Dull;  // needs full 64-bit fidelity
  h.seed = 0xFFFFFFFFFFFFFFFFull;
  const JournalHeader back = JournalHeader::parse(h.to_payload());
  EXPECT_EQ(back.config_hash, h.config_hash);
  EXPECT_EQ(back.seed, h.seed);

  EXPECT_THROW(JournalHeader::parse(R"({"schema":"easybo.journal.v9"})"),
               io::CheckpointError);
  EXPECT_THROW(BoCheckpoint::parse(h.to_payload()), io::CheckpointError);
}

TEST(BoCheckpointJson, RoundTripsBitIdenticalAcross50Seeds) {
  // The snapshot is the run's full durable state; any field that fails
  // to round-trip bit-identically silently forks the proposal stream on
  // resume. Fuzz the whole struct from 50 seeds.
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Rng fuzz(seed);
    auto rvec = [&fuzz](std::size_t n) {
      Vec v(n);
      for (double& e : v) e = fuzz.normal() * 1e3;
      return v;
    };

    BoCheckpoint snap;
    snap.config_hash = fuzz();
    snap.journal_count = seed * 3;
    snap.now = fuzz.normal() * 100.0;
    snap.busy = fuzz.uniform() * 500.0;
    snap.init_done = seed % 2 == 0;
    snap.issued = seed + 5;
    Rng prop_stream(seed * 7 + 1);
    for (std::uint64_t i = 0; i < seed % 5; ++i) (void)prop_stream.normal();
    snap.rng = prop_stream.save();
    Rng jitter_stream(seed * 13 + 2);
    snap.sup_rng = jitter_stream.save();
    const std::size_t n_obs = 1 + seed % 4;
    for (std::size_t i = 0; i < n_obs; ++i) snap.obs_x.push_back(rvec(3));
    snap.obs_y = rvec(n_obs);
    for (std::size_t i = 0; i < n_obs; ++i) {
      snap.obs_is_init.push_back(fuzz.uniform() < 0.5);
    }
    if (seed % 3 == 0) snap.failed_x.push_back(rvec(3));
    for (std::size_t i = 0; i < n_obs + 2; ++i) {
      snap.prop_x.push_back(rvec(3));
      snap.prop_init.push_back(i < 2);
      snap.prop_submit.push_back(fuzz.uniform() * 50.0);
      snap.prop_duration.push_back(fuzz.uniform() + 0.1);
    }
    snap.pending = {n_obs, n_obs + 1};
    if (seed % 4 == 0) {
      snap.hc_histories.push_back({rvec(3), rvec(3)});
      snap.hc_histories.push_back({});
    }
    if (seed % 5 == 0) {
      snap.hedge_gains = rvec(3);
      snap.hedge_nominees = {rvec(3), rvec(3), rvec(3)};
    }
    snap.next_hyper_refit = seed + 10;
    snap.hyper_refits = seed / 3;
    snap.gp_log_hyperparams = seed % 2 == 0 ? rvec(4) : Vec{};

    const BoCheckpoint back = BoCheckpoint::parse(snap.to_payload());
    EXPECT_EQ(back.config_hash, snap.config_hash);
    EXPECT_EQ(back.journal_count, snap.journal_count);
    EXPECT_EQ(back.now, snap.now);
    EXPECT_EQ(back.busy, snap.busy);
    EXPECT_EQ(back.init_done, snap.init_done);
    EXPECT_EQ(back.issued, snap.issued);
    EXPECT_EQ(back.rng, snap.rng);
    EXPECT_EQ(back.sup_rng, snap.sup_rng);
    EXPECT_EQ(back.obs_x, snap.obs_x);
    EXPECT_EQ(back.obs_y, snap.obs_y);
    EXPECT_EQ(back.obs_is_init, snap.obs_is_init);
    EXPECT_EQ(back.failed_x, snap.failed_x);
    EXPECT_EQ(back.prop_x, snap.prop_x);
    EXPECT_EQ(back.prop_init, snap.prop_init);
    EXPECT_EQ(back.prop_submit, snap.prop_submit);
    EXPECT_EQ(back.prop_duration, snap.prop_duration);
    EXPECT_EQ(back.pending, snap.pending);
    EXPECT_EQ(back.hc_histories, snap.hc_histories);
    EXPECT_EQ(back.hedge_gains, snap.hedge_gains);
    EXPECT_EQ(back.hedge_nominees, snap.hedge_nominees);
    EXPECT_EQ(back.next_hyper_refit, snap.next_hyper_refit);
    EXPECT_EQ(back.hyper_refits, snap.hyper_refits);
    EXPECT_EQ(back.gp_log_hyperparams, snap.gp_log_hyperparams);

    // The restored RNG continues the stream bit for bit.
    Rng restored(1);
    restored.load(back.rng);
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(restored(), prop_stream()) << "seed " << seed;
    }
  }
}

TEST(ConfigFingerprint, SeparatesStreamsIgnoresDurabilityKnobs) {
  const auto tf = easybo::circuit::branin();
  const BoConfig base_cfg = quick(Mode::AsyncBatch, 4, 11);
  const std::uint64_t fp = config_fingerprint(base_cfg, tf.bounds);
  EXPECT_EQ(fp, config_fingerprint(base_cfg, tf.bounds));  // stable

  BoConfig other = base_cfg;
  other.seed = 12;
  EXPECT_NE(config_fingerprint(other, tf.bounds), fp);
  other = base_cfg;
  other.batch = 5;
  EXPECT_NE(config_fingerprint(other, tf.bounds), fp);
  other = base_cfg;
  other.lambda += 0.5;
  EXPECT_NE(config_fingerprint(other, tf.bounds), fp);

  opt::Bounds shifted = tf.bounds;
  shifted.upper[0] += 1.0;
  EXPECT_NE(config_fingerprint(base_cfg, shifted), fp);

  // Durability and observability knobs never shape proposals.
  other = base_cfg;
  other.checkpoint_path = "/somewhere/else";
  other.checkpoint_every = 9;
  other.collect_metrics = true;
  EXPECT_EQ(config_fingerprint(other, tf.bounds), fp);
}

// ---------------------------------------------------------------------------
// Run-level guarantees
// ---------------------------------------------------------------------------

TEST(Checkpointing, JournalingItselfChangesNothing) {
  const auto tf = easybo::circuit::branin();
  const BoConfig plain = quick(Mode::AsyncBatch, 4, 21);
  const BoResult ref =
      BoEngine(plain, tf.bounds, tf.fn, varied_sim_time).run();

  BoConfig journaled = plain;
  journaled.checkpoint_path = fresh_base("noop");
  const BoResult r =
      BoEngine(journaled, tf.bounds, tf.fn, varied_sim_time).run();
  expect_same_run(ref, r);
  // Here even worker ids must match: nothing was re-submitted.
  for (std::size_t i = 0; i < ref.num_evals(); ++i) {
    EXPECT_EQ(ref.evals[i].worker, r.evals[i].worker);
  }
  EXPECT_TRUE(io::file_exists(journal_file(journaled.checkpoint_path)));
  EXPECT_TRUE(io::file_exists(snapshot_file(journaled.checkpoint_path)));
}

TEST(Checkpointing, KillAndResumeMatchesUninterruptedAsync) {
  const auto tf = easybo::circuit::branin();
  const BoConfig cfg = quick(Mode::AsyncBatch, 4, 11);
  const BoResult ref =
      BoEngine(cfg, tf.bounds, tf.fn, varied_sim_time).run();

  for (const int kill_at : {3, 9, 17}) {
    const std::string base =
        fresh_base("kill_async_" + std::to_string(kill_at));
    run_and_kill(cfg, tf, base, kill_at);
    BoEngine engine(cfg, tf.bounds, tf.fn, varied_sim_time);
    const BoResult r = engine.resume(base);
    expect_same_run(ref, r);
    EXPECT_FALSE(r.resume_note.empty());
    EXPECT_FALSE(r.interrupted);
  }
}

TEST(Checkpointing, KillAndResumeMatchesUninterruptedSyncAndSequential) {
  const auto tf = easybo::circuit::branin();
  struct Case {
    Mode mode;
    std::size_t batch;
    int kill_at;
  };
  for (const Case c : {Case{Mode::SyncBatch, 4, 13},
                       Case{Mode::Sequential, 1, 12}}) {
    const BoConfig cfg = quick(c.mode, c.batch, 31);
    const BoResult ref =
        BoEngine(cfg, tf.bounds, tf.fn, varied_sim_time).run();
    const std::string base =
        fresh_base("kill_mode_" + std::to_string(int(c.mode)));
    run_and_kill(cfg, tf, base, c.kill_at);
    BoEngine engine(cfg, tf.bounds, tf.fn, varied_sim_time);
    expect_same_run(ref, engine.resume(base));
  }
}

TEST(Checkpointing, KillAndResumeWithSparseSnapshots) {
  // checkpoint_every > 1: the kill lands several journal lines past the
  // last snapshot, so resume must replay a real tail through the loop.
  const auto tf = easybo::circuit::branin();
  BoConfig cfg = quick(Mode::AsyncBatch, 4, 41);
  cfg.checkpoint_every = 5;
  const BoResult ref =
      BoEngine(cfg, tf.bounds, tf.fn, varied_sim_time).run();
  const std::string base = fresh_base("kill_sparse");
  run_and_kill(cfg, tf, base, 14);
  BoEngine engine(cfg, tf.bounds, tf.fn, varied_sim_time);
  expect_same_run(ref, engine.resume(base));
}

TEST(Checkpointing, KillAndResumeOnThreadExecutorSequential) {
  // The other executor backend. Sequential keeps the wall-clock
  // completion order deterministic; wall times are loose on resume, so
  // compare the proposal/outcome sequence only.
  const auto tf = easybo::circuit::branin();
  const BoConfig cfg = quick(Mode::Sequential, 1, 51);

  sched::ThreadExecutor ref_exec(1);
  BoEngine ref_engine(cfg, tf.bounds, tf.fn, nullptr);
  const BoResult ref = ref_engine.run(ref_exec);

  const std::string base = fresh_base("kill_threads");
  const pid_t pid = fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    int calls = 0;
    auto lethal = [&calls, &tf](const Vec& x) -> double {
      if (++calls == 10) std::_Exit(0);
      return tf.fn(x);
    };
    BoConfig child_cfg = cfg;
    child_cfg.checkpoint_path = base;
    try {
      sched::ThreadExecutor exec(1);
      BoEngine engine(child_cfg, tf.bounds, lethal, nullptr);
      engine.run(exec);
    } catch (...) {
      std::_Exit(9);
    }
    std::_Exit(7);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0);

  sched::ThreadExecutor exec(1);
  BoEngine engine(cfg, tf.bounds, tf.fn, nullptr);
  const BoResult r = engine.resume(base, exec);
  ASSERT_EQ(r.num_evals(), ref.num_evals());
  for (std::size_t i = 0; i < ref.num_evals(); ++i) {
    EXPECT_EQ(r.evals[i].x, ref.evals[i].x) << "eval " << i;
    EXPECT_DOUBLE_EQ(r.evals[i].y, ref.evals[i].y) << "eval " << i;
  }
  EXPECT_EQ(r.best_x, ref.best_x);
  EXPECT_DOUBLE_EQ(r.best_y, ref.best_y);
}

TEST(Checkpointing, GracefulStopDrainsSavesAndResumes) {
  // A graceful stop is a deliberate deviation from the uninterrupted
  // schedule: the engine stops issuing new work and drains what's in
  // flight, so the resumed run is NOT a bit-replica of the never-stopped
  // run (that guarantee belongs to kill -9, where the pending set is
  // restored with its original submit times — the KillAndResume tests
  // above). What graceful stop + resume must deliver instead: nothing
  // drained is lost, the resumed run extends the partial run exactly,
  // finishes the budget, and the whole stop-then-resume pipeline is
  // deterministic end to end.
  const auto tf = easybo::circuit::branin();
  const BoConfig cfg = quick(Mode::AsyncBatch, 4, 61);

  auto stop_then_resume = [&](const std::string& base) -> BoResult {
    std::atomic<bool> stop{false};
    std::atomic<int> calls{0};
    auto counting = [&](const Vec& x) -> double {
      if (++calls == 12) stop.store(true);
      return tf.fn(x);
    };
    BoConfig journaled = cfg;
    journaled.checkpoint_path = base;
    BoEngine first(journaled, tf.bounds, counting, varied_sim_time);
    first.set_stop_token(&stop);
    const BoResult partial = first.run();
    EXPECT_TRUE(partial.interrupted);
    EXPECT_LT(partial.num_evals(), cfg.max_sims);
    EXPECT_GE(partial.num_evals(), 12u);  // in-flight work was drained

    BoEngine second(cfg, tf.bounds, tf.fn, varied_sim_time);
    const BoResult full = second.resume(base);
    EXPECT_FALSE(full.interrupted);
    EXPECT_EQ(full.num_evals(), cfg.max_sims);
    // Every drained eval survived, in order, bit-identical.
    const std::size_t prefix =
        std::min(full.num_evals(), partial.num_evals());
    for (std::size_t i = 0; i < prefix; ++i) {
      EXPECT_EQ(full.evals[i].x, partial.evals[i].x) << "eval " << i;
      EXPECT_DOUBLE_EQ(full.evals[i].y, partial.evals[i].y) << "eval " << i;
      EXPECT_DOUBLE_EQ(full.evals[i].start, partial.evals[i].start);
      EXPECT_DOUBLE_EQ(full.evals[i].finish, partial.evals[i].finish);
    }
    return full;
  };

  const BoResult a = stop_then_resume(fresh_base("graceful_a"));
  const BoResult b = stop_then_resume(fresh_base("graceful_b"));
  expect_same_run(a, b);  // the pipeline itself is deterministic
}

TEST(Checkpointing, ResumeOfCompletedRunIsIdempotent) {
  const auto tf = easybo::circuit::branin();
  BoConfig cfg = quick(Mode::SyncBatch, 4, 71);
  cfg.checkpoint_path = fresh_base("idempotent");
  const BoResult ref =
      BoEngine(cfg, tf.bounds, tf.fn, varied_sim_time).run();

  BoEngine engine(cfg, tf.bounds, tf.fn, varied_sim_time);
  const BoResult r = engine.resume(cfg.checkpoint_path);
  expect_same_run(ref, r);
  EXPECT_FALSE(r.interrupted);
}

TEST(Checkpointing, ResumeToleratesATornJournalTail) {
  const auto tf = easybo::circuit::branin();
  BoConfig cfg = quick(Mode::AsyncBatch, 4, 81);
  cfg.checkpoint_path = fresh_base("torn");
  const BoResult ref =
      BoEngine(cfg, tf.bounds, tf.fn, varied_sim_time).run();

  // A crash mid-append leaves a half-written final line; resume must
  // truncate it away and carry on without losing any completed eval.
  {
    std::ofstream out(journal_file(cfg.checkpoint_path),
                      std::ios::binary | std::ios::app);
    out << "deadbeef {\"index\":99,\"half";
  }
  BoEngine engine(cfg, tf.bounds, tf.fn, varied_sim_time);
  const BoResult r = engine.resume(cfg.checkpoint_path);
  expect_same_run(ref, r);
  // The reopened journal was truncated back to intact lines.
  const auto journal = io::read_journal(journal_file(cfg.checkpoint_path));
  EXPECT_FALSE(journal.torn_tail);
  EXPECT_EQ(journal.payloads.size(), 1 + cfg.max_sims);  // header + evals
}

// ---------------------------------------------------------------------------
// Refusal paths (golden messages documented in docs/checkpoint-format.md)
// ---------------------------------------------------------------------------

/// Expects resume() to throw a CheckpointError mentioning \p needle.
void expect_resume_error(const BoConfig& cfg,
                         const circuit::TestFunction& tf,
                         const std::string& base,
                         const std::string& needle) {
  BoEngine engine(cfg, tf.bounds, tf.fn, varied_sim_time);
  try {
    engine.resume(base);
    FAIL() << "resume was expected to refuse";
  } catch (const io::CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message: " << e.what();
  }
}

TEST(ResumeRefusal, MissingJournal) {
  const auto tf = easybo::circuit::branin();
  const BoConfig cfg = quick(Mode::AsyncBatch, 4, 91);
  expect_resume_error(cfg, tf, fresh_base("missing"),
                      "cannot resume: no journal at");
}

TEST(ResumeRefusal, ConfigMismatch) {
  const auto tf = easybo::circuit::branin();
  BoConfig cfg = quick(Mode::AsyncBatch, 4, 101);
  cfg.checkpoint_path = fresh_base("mismatch");
  (void)BoEngine(cfg, tf.bounds, tf.fn, varied_sim_time).run();

  BoConfig other = cfg;
  other.seed = 102;  // a different proposal stream
  expect_resume_error(other, tf, cfg.checkpoint_path,
                      "checkpoint config mismatch");
}

TEST(ResumeRefusal, InteriorJournalCorruption) {
  const auto tf = easybo::circuit::branin();
  BoConfig cfg = quick(Mode::AsyncBatch, 4, 111);
  cfg.checkpoint_path = fresh_base("interior");
  (void)BoEngine(cfg, tf.bounds, tf.fn, varied_sim_time).run();

  // Flip one payload byte in an interior line: a bad disk, not a torn
  // tail. The checksum catches it and resume refuses.
  const std::string path = journal_file(cfg.checkpoint_path);
  std::string content = io::read_file(path);
  const std::size_t second_line = content.find('\n') + 1;
  const std::size_t victim = second_line + 12;
  ASSERT_LT(victim, content.size());
  content[victim] = content[victim] == '0' ? '1' : '0';
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
  }
  expect_resume_error(cfg, tf, cfg.checkpoint_path, "journal corrupted");
}

TEST(ResumeRefusal, SnapshotFromADifferentRun) {
  const auto tf = easybo::circuit::branin();
  BoConfig cfg = quick(Mode::AsyncBatch, 4, 121);
  cfg.checkpoint_path = fresh_base("foreign_snap");
  (void)BoEngine(cfg, tf.bounds, tf.fn, varied_sim_time).run();

  // Truncate the journal to fewer records than the final snapshot has
  // absorbed: the snapshot is now "ahead" of the journal, which can only
  // happen when the files are not from the same run.
  const std::string path = journal_file(cfg.checkpoint_path);
  const std::string content = io::read_file(path);
  std::size_t pos = 0;
  for (int lines = 0; lines < 4; ++lines) pos = content.find('\n', pos) + 1;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content.substr(0, pos);
  }
  expect_resume_error(cfg, tf, cfg.checkpoint_path,
                      "do not belong to the same run");
}

}  // namespace
}  // namespace easybo::bo
