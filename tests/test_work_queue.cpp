// serve::WorkQueue: bounded admission, queued-time reporting, the
// Completed/Queued/Running abandonment classification the deadline
// watchdog depends on, and drain-on-destroy (a no-deadline submitter is
// never stranded). The queue moves opaque closures; everything
// protocol-shaped lives in SessionHost and is tested in
// test_serve_deadline.cpp.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "serve/work_queue.h"

namespace easybo::serve {
namespace {

using namespace std::chrono_literals;

/// A manually released latch so tests control exactly when a task
/// finishes — no sleeps guessing at scheduler timing.
class Gate {
 public:
  void open() {
    {
      std::lock_guard<std::mutex> lk(m_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void wait() {
    std::unique_lock<std::mutex> lk(m_);
    cv_.wait(lk, [this] { return open_; });
  }

 private:
  std::mutex m_;
  std::condition_variable cv_;
  bool open_ = false;
};

TEST(WorkQueue, ExecutesTasksAndDeliversReplies) {
  WorkQueueOptions opt;
  opt.workers = 2;
  opt.capacity = 8;
  WorkQueue q(opt);
  EXPECT_EQ(q.workers(), 2u);

  std::vector<std::shared_ptr<WorkQueue::Task>> tasks;
  for (int i = 0; i < 6; ++i) {
    auto task = q.submit(
        [i](const common::StopToken&, double) {
          return "reply-" + std::to_string(i);
        },
        common::StopToken{});
    ASSERT_NE(task, nullptr);
    tasks.push_back(task);
  }
  for (int i = 0; i < 6; ++i) {
    tasks[static_cast<std::size_t>(i)]->wait();
    EXPECT_EQ(tasks[static_cast<std::size_t>(i)]->take_reply(),
              "reply-" + std::to_string(i));
  }
}

TEST(WorkQueue, ReportsQueuedSecondsAndPassesTheToken) {
  WorkQueueOptions opt;
  opt.workers = 1;
  WorkQueue q(opt);

  Gate release;
  auto blocker = q.submit(
      [&release](const common::StopToken&, double) {
        release.wait();
        return std::string("done");
      },
      common::StopToken{});
  ASSERT_NE(blocker, nullptr);

  std::atomic<bool> fired{false};
  double queued = -1.0;
  bool token_fired = false;
  auto probe = q.submit(
      [&](const common::StopToken& stop, double queued_seconds) {
        queued = queued_seconds;
        token_fired = stop.stop_requested();
        return std::string("probe");
      },
      common::StopToken::from_flag(&fired));
  ASSERT_NE(probe, nullptr);

  fired.store(true);  // fires while the probe is still queued
  std::this_thread::sleep_for(20ms);
  release.open();
  probe->wait();
  EXPECT_EQ(probe->take_reply(), "probe");
  // It sat behind the blocker for at least the sleep above.
  EXPECT_GE(queued, 0.015);
  // The token reached the closure and reflects the flag.
  EXPECT_TRUE(token_fired);
  blocker->wait();
}

TEST(WorkQueue, RefusesBeyondCapacity) {
  WorkQueueOptions opt;
  opt.workers = 1;
  opt.capacity = 2;
  WorkQueue q(opt);

  Gate release;
  auto blocker = q.submit(
      [&release](const common::StopToken&, double) {
        release.wait();
        return std::string("b");
      },
      common::StopToken{});
  ASSERT_NE(blocker, nullptr);
  // Wait until the blocker is EXECUTING (depth back to 0) so the
  // capacity math below is exact, not racy.
  while (q.depth() != 0) std::this_thread::sleep_for(1ms);

  auto q1 = q.submit(
      [](const common::StopToken&, double) { return std::string("1"); },
      common::StopToken{});
  auto q2 = q.submit(
      [](const common::StopToken&, double) { return std::string("2"); },
      common::StopToken{});
  ASSERT_NE(q1, nullptr);
  ASSERT_NE(q2, nullptr);
  EXPECT_EQ(q.depth(), 2u);
  // Third concurrent enqueue exceeds capacity: refused, nothing queued.
  auto q3 = q.submit(
      [](const common::StopToken&, double) { return std::string("3"); },
      common::StopToken{});
  EXPECT_EQ(q3, nullptr);
  EXPECT_EQ(q.depth(), 2u);

  release.open();
  q1->wait();
  q2->wait();
  EXPECT_EQ(q1->take_reply(), "1");
  EXPECT_EQ(q2->take_reply(), "2");
}

TEST(WorkQueue, AbandonClassifiesCompletedQueuedAndRunning) {
  WorkQueueOptions opt;
  opt.workers = 1;
  WorkQueue q(opt);

  // Completed: the task already holds its reply.
  auto done = q.submit(
      [](const common::StopToken&, double) { return std::string("d"); },
      common::StopToken{});
  ASSERT_NE(done, nullptr);
  done->wait();
  EXPECT_EQ(done->abandon(), WorkQueue::Abandon::Completed);
  EXPECT_EQ(done->take_reply(), "d");

  // Running vs Queued: block the single worker, queue one more behind.
  Gate entered_gate;
  Gate release;
  std::atomic<bool> second_ran{false};
  auto running = q.submit(
      [&](const common::StopToken&, double) {
        entered_gate.open();
        release.wait();
        return std::string("r");
      },
      common::StopToken{});
  ASSERT_NE(running, nullptr);
  entered_gate.wait();
  std::atomic<int> abandoned_done_calls{0};
  auto queued = q.submit(
      [&](const common::StopToken&, double) {
        second_ran.store(true);
        return std::string("q");
      },
      common::StopToken{}, [&] { abandoned_done_calls.fetch_add(1); });
  ASSERT_NE(queued, nullptr);

  EXPECT_EQ(running->abandon(), WorkQueue::Abandon::Running);
  EXPECT_EQ(queued->abandon(), WorkQueue::Abandon::Queued);

  release.open();
  // The abandoned-while-queued task is discarded unrun; its
  // on_abandoned_done hook does NOT run (nothing was executing).
  running->wait();
  while (q.depth() != 0) std::this_thread::sleep_for(1ms);
  EXPECT_FALSE(second_ran.load());
  EXPECT_EQ(abandoned_done_calls.load(), 0);
}

TEST(WorkQueue, AbandonedWhileRunningInvokesTheCallbackOnCompletion) {
  WorkQueueOptions opt;
  opt.workers = 1;
  WorkQueue q(opt);

  Gate entered_gate;
  Gate release;
  Gate callback_ran;
  std::atomic<int> calls{0};
  auto task = q.submit(
      [&](const common::StopToken&, double) {
        entered_gate.open();
        release.wait();
        return std::string("late");
      },
      common::StopToken{},
      [&] {
        calls.fetch_add(1);
        callback_ran.open();
      });
  ASSERT_NE(task, nullptr);
  entered_gate.wait();
  EXPECT_EQ(task->abandon(), WorkQueue::Abandon::Running);
  EXPECT_EQ(calls.load(), 0);  // not before the closure returns
  release.open();
  callback_ran.wait();
  EXPECT_EQ(calls.load(), 1);
}

TEST(WorkQueue, ClosureThrowBecomesAnErrReply) {
  WorkQueueOptions opt;
  opt.workers = 1;
  WorkQueue q(opt);
  auto task = q.submit(
      [](const common::StopToken&, double) -> std::string {
        throw std::runtime_error("boom");
      },
      common::StopToken{});
  ASSERT_NE(task, nullptr);
  task->wait();
  EXPECT_EQ(task->take_reply(), "ERR boom");
}

TEST(WorkQueue, DestructorDrainsQueuedTasks) {
  // A no-deadline submitter blocked in wait() is released only by a
  // published reply, so shutdown must drain the queue, not drop it.
  std::vector<std::shared_ptr<WorkQueue::Task>> tasks;
  std::atomic<int> ran{0};
  {
    WorkQueueOptions opt;
    opt.workers = 1;
    opt.capacity = 16;
    WorkQueue q(opt);
    Gate entered_gate;
    Gate release;
    tasks.push_back(q.submit(
        [&](const common::StopToken&, double) {
          entered_gate.open();
          release.wait();
          ran.fetch_add(1);
          return std::string("0");
        },
        common::StopToken{}));
    entered_gate.wait();
    for (int i = 1; i < 5; ++i) {
      tasks.push_back(q.submit(
          [&ran, i](const common::StopToken&, double) {
            ran.fetch_add(1);
            return std::to_string(i);
          },
          common::StopToken{}));
      ASSERT_NE(tasks.back(), nullptr);
    }
    release.open();
    // ~WorkQueue runs here with tasks still queued.
  }
  EXPECT_EQ(ran.load(), 5);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    tasks[i]->wait();  // returns immediately: all replies were published
    EXPECT_EQ(tasks[i]->take_reply(), std::to_string(i));
  }
}

TEST(WorkQueue, SubmitAfterShutdownIsRefused) {
  // Exercised through a second queue whose workers are already gone is
  // impossible from outside (the destructor blocks), so pin the
  // validation contract instead: bad options throw.
  WorkQueueOptions bad;
  bad.workers = 0;
  EXPECT_THROW(WorkQueue{bad}, Error);
  WorkQueueOptions bad2;
  bad2.capacity = 0;
  EXPECT_THROW(WorkQueue{bad2}, Error);
}

}  // namespace
}  // namespace easybo::serve
