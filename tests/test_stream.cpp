// Tests for the live telemetry layer (obs/stream, obs/online_stats) and
// the adaptive refit cadence it feeds: CEMA matches its closed form and
// P-squared tracks true quantiles; the StreamSink's drop-oldest
// backpressure accounts for every event exactly (enqueued == emitted +
// dropped, seq gaps == drops, "obs.stream_dropped" forwarded); many
// producers against a live drainer stay race-free (the TSan CI job covers
// this); the JSONL tail is well-formed hello..bye; streaming is
// behaviorally inert (a seeded engine run proposes bit-identically with
// the sink on or off — the ISSUE's determinism bar); and
// adaptive_refit_gap() plus the AskTellCore wiring behind
// adapt_refit_cadence stretch the refit schedule without touching the
// default path.

#include "obs/stream.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bo/ask_tell.h"
#include "bo/engine.h"
#include "circuit/testfunc.h"
#include "common/error.h"
#include "common/rng.h"
#include "obs/online_stats.h"
#include "obs/recording.h"

namespace easybo::obs {
namespace {

std::string temp_stream(const std::string& name) {
  return ::testing::TempDir() + "easybo_stream_" + name + ".jsonl";
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Minimal field scrape for the one-line frames this sink emits; no JSON
/// parser in the test keeps the format assertions honest about the bytes.
bool frame_is(const std::string& line, const std::string& type) {
  return line.find("\"type\":\"" + type + "\"") != std::string::npos;
}

std::uint64_t u64_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  EXPECT_NE(pos, std::string::npos) << key << " in " << line;
  return std::stoull(line.substr(pos + needle.size()));
}

// --- online statistics ----------------------------------------------------

TEST(Cema, MatchesClosedFormAndIsUnbiasedAtEveryN) {
  const double alpha = 0.3;
  Cema cema(alpha);
  double biased = 0.0;
  const std::vector<double> xs = {4.0, 2.0, 7.0, 7.0, 1.0, 3.5};
  for (std::size_t n = 0; n < xs.size(); ++n) {
    cema.add(xs[n]);
    biased = (1.0 - alpha) * biased + alpha * xs[n];
    const double correction =
        1.0 - std::pow(1.0 - alpha, static_cast<double>(n + 1));
    EXPECT_NEAR(cema.value(), biased / correction, 1e-12);
  }
  EXPECT_EQ(cema.count(), xs.size());
}

TEST(Cema, FirstSampleIsExactAndConstantInputIsFixed) {
  Cema cema(0.05);
  EXPECT_EQ(cema.value(), 0.0);  // before any sample
  cema.add(42.0);
  // value_1 = alpha*x / (1 - (1-alpha)): x up to the rounding of the
  // correction term itself — the corrected EMA has no warm-up bias.
  EXPECT_NEAR(cema.value(), 42.0, 1e-9);
  for (int i = 0; i < 200; ++i) cema.add(42.0);
  EXPECT_NEAR(cema.value(), 42.0, 1e-9);
}

TEST(Cema, TracksAStepChange) {
  Cema cema(0.2);
  for (int i = 0; i < 50; ++i) cema.add(1.0);
  for (int i = 0; i < 50; ++i) cema.add(10.0);
  EXPECT_GT(cema.value(), 9.0);  // converged most of the way to the step
  EXPECT_LT(cema.value(), 10.0 + 1e-9);
}

TEST(P2Quantile, ExactForFirstFiveSamples) {
  P2Quantile p50(0.5);
  p50.add(9.0);
  EXPECT_DOUBLE_EQ(p50.value(), 9.0);
  p50.add(1.0);
  p50.add(5.0);
  // Exact sample median of {1, 5, 9}.
  EXPECT_DOUBLE_EQ(p50.value(), 5.0);
}

TEST(P2Quantile, ConvergesOnUniformSamples) {
  // A deterministic LCG-shuffled sweep of [0, 1): the P-squared estimate
  // of p50/p90 must land near the true quantiles.
  P2Quantile p50(0.5);
  P2Quantile p90(0.9);
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform();
    p50.add(x);
    p90.add(x);
  }
  EXPECT_NEAR(p50.value(), 0.5, 0.05);
  EXPECT_NEAR(p90.value(), 0.9, 0.05);
}

TEST(OnlineStat, JsonCarriesEveryField) {
  OnlineStat s;
  s.add(2.0);
  s.add(4.0);
  const std::string j = s.json();
  EXPECT_NE(j.find("\"count\":2"), std::string::npos) << j;
  EXPECT_NE(j.find("\"total\":6"), std::string::npos) << j;
  EXPECT_NE(j.find("\"last\":4"), std::string::npos) << j;
  EXPECT_NE(j.find("\"cema\":"), std::string::npos) << j;
  EXPECT_NE(j.find("\"p50\":"), std::string::npos) << j;
  EXPECT_NE(j.find("\"p90\":"), std::string::npos) << j;
}

// --- stream sink ----------------------------------------------------------

TEST(StreamSink, EmitsWellFormedHelloFramesBye) {
  const std::string path = temp_stream("basic");
  {
    StreamOptions o;
    o.source = "unit-test";
    StreamSink sink(path, o);
    sink.add_counter("bo.hyper_refit", 2);
    sink.add_time(Phase::ModelFit, 0.25);
  }  // destructor closes
  const auto lines = read_lines(path);
  ASSERT_GE(lines.size(), 4u);
  EXPECT_NE(lines.front().find("\"stream\":\"easybo.stream.v1\""),
            std::string::npos);
  EXPECT_NE(lines.front().find("\"source\":\"unit-test\""),
            std::string::npos);
  EXPECT_TRUE(frame_is(lines.back(), "bye"));
  EXPECT_EQ(u64_field(lines.back(), "events"), 2u);
  EXPECT_EQ(u64_field(lines.back(), "dropped_total"), 0u);
  bool saw_counter = false;
  bool saw_span = false;
  for (const auto& line : lines) {
    if (frame_is(line, "counter")) {
      saw_counter = true;
      EXPECT_NE(line.find("\"name\":\"bo.hyper_refit\""), std::string::npos);
      EXPECT_EQ(u64_field(line, "delta"), 2u);
    }
    if (frame_is(line, "span")) {
      saw_span = true;
      EXPECT_NE(line.find("\"phase\":\"model_fit\""), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_span);
  std::remove(path.c_str());
}

TEST(StreamSink, ThrowsWhenThePathCannotBeOpened) {
  EXPECT_THROW(
      StreamSink("/nonexistent-dir-for-sure/stream.jsonl", StreamOptions{}),
      Error);
}

TEST(StreamSink, ForcedBackpressureDropsOldestWithExactAccounting) {
  const std::string path = temp_stream("backpressure");
  RecordingSink rec;
  {
    StreamOptions o;
    o.queue_capacity = 8;
    o.manual_drain = true;  // no drainer: the queue MUST overflow
    StreamSink sink(path, o, &rec);
    for (int i = 0; i < 100; ++i) {
      sink.add_counter("tick", static_cast<std::uint64_t>(i));
    }
    sink.drain_now();
    const StreamStats stats = sink.stats();
    EXPECT_EQ(stats.enqueued, 100u);
    EXPECT_EQ(stats.dropped, 92u);  // capacity 8 survives of 100, exactly
    EXPECT_EQ(stats.emitted, 8u);
    sink.close();
    const StreamStats end = sink.stats();
    EXPECT_EQ(end.enqueued, end.emitted + end.dropped);
  }
  // Drop-oldest: the surviving events are the LAST 8 (seq 92..99), and the
  // seq gap in the tail is the drop count made visible to consumers.
  std::vector<std::uint64_t> seqs;
  std::uint64_t drop_frame_total = 0;
  for (const auto& line : read_lines(path)) {
    if (frame_is(line, "counter")) seqs.push_back(u64_field(line, "seq"));
    if (frame_is(line, "drop")) {
      drop_frame_total = u64_field(line, "dropped_total");
    }
  }
  ASSERT_EQ(seqs.size(), 8u);
  for (std::size_t i = 0; i < seqs.size(); ++i) {
    EXPECT_EQ(seqs[i], 92u + i);
  }
  EXPECT_EQ(drop_frame_total, 92u);
  // The loss is mirrored onto the forwarded sink for the post-hoc report.
  EXPECT_EQ(rec.counter("obs.stream_dropped"), 92u);
  // The forwarded sink saw every event regardless of queue drops: the
  // stream degrades, the record does not.
  EXPECT_EQ(rec.counter("tick"), 99u * 100u / 2u);
  std::remove(path.c_str());
}

TEST(StreamSink, ManyProducersOneDrainerLosesNothingWhenSized) {
  const std::string path = temp_stream("producers");
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  {
    StreamOptions o;
    o.queue_capacity = kProducers * kPerProducer + 16;  // no overflow
    o.drain_interval_s = 0.001;
    StreamSink sink(path, o);
    std::vector<std::thread> producers;
    std::atomic<bool> go{false};
    producers.reserve(kProducers);
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&sink, &go, p] {
        while (!go.load()) std::this_thread::yield();
        for (int i = 0; i < kPerProducer; ++i) {
          if (i % 2 == 0) {
            sink.add_counter("producer.tick", 1);
          } else {
            sink.add_time(Phase::ObjectiveEval, 0.001 * (p + 1));
          }
        }
      });
    }
    go.store(true);
    for (auto& t : producers) t.join();
    sink.close();
    const StreamStats stats = sink.stats();
    EXPECT_EQ(stats.enqueued, static_cast<std::uint64_t>(kProducers) *
                                  kPerProducer);
    EXPECT_EQ(stats.dropped, 0u);
    EXPECT_EQ(stats.emitted, stats.enqueued);
    // The drainer folded every ObjectiveEval span into the online stats.
    EXPECT_EQ(stats.eval_latency.count(),
              static_cast<std::uint64_t>(kProducers) * (kPerProducer / 2));
  }
  // Seqs in the tail are strictly increasing with no gap (nothing dropped).
  std::uint64_t expect_seq = 0;
  for (const auto& line : read_lines(path)) {
    if (!frame_is(line, "counter") && !frame_is(line, "span")) continue;
    EXPECT_EQ(u64_field(line, "seq"), expect_seq);
    ++expect_seq;
  }
  EXPECT_EQ(expect_seq, static_cast<std::uint64_t>(kProducers) *
                            kPerProducer);
  std::remove(path.c_str());
}

TEST(StreamSink, OnlineStatsTrackTheContractedNames) {
  const std::string path = temp_stream("stats");
  StreamOptions o;
  o.manual_drain = true;
  StreamSink sink(path, o);
  sink.add_time(Phase::ObjectiveEval, 2.0);
  sink.add_time(Phase::ObjectiveEval, 4.0);
  sink.add_time(Phase::ModelFit, 100.0);         // not eval latency
  sink.add_counter("acq.inner_evals", 640);
  sink.add_counter("eval.retries", 3);
  sink.add_counter("bo.hyper_refit", 1);         // not tracked
  sink.drain_now();
  const StreamStats stats = sink.stats();
  EXPECT_EQ(stats.eval_latency.count(), 2u);
  EXPECT_DOUBLE_EQ(stats.eval_latency.total(), 6.0);
  EXPECT_EQ(stats.acq_inner_evals.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.acq_inner_evals.last(), 640.0);
  EXPECT_EQ(stats.eval_retries.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.eval_retries.total(), 3.0);
  const std::string j = sink.stats_json();
  EXPECT_NE(j.find("\"eval_latency\":{\"count\":2"), std::string::npos) << j;
  sink.close();
  std::remove(path.c_str());
}

TEST(StreamSink, RecordingSinkIsFoundThroughTheForwardChain) {
  const std::string path = temp_stream("chain");
  RecordingSink rec;
  StreamSink sink(path, StreamOptions{}, &rec);
  EXPECT_EQ(sink.recording_sink(), &rec);
  StreamSink unforwarded(path + ".2", StreamOptions{});
  EXPECT_EQ(unforwarded.recording_sink(), nullptr);
  sink.close();
  unforwarded.close();
  std::remove(path.c_str());
  std::remove((path + ".2").c_str());
}

// --- determinism: streaming must never shape the run ----------------------

std::vector<double> run_best_trace(obs::TraceSink* sink) {
  circuit::TestFunction tf = circuit::branin();
  bo::BoConfig cfg;
  cfg.mode = bo::Mode::AsyncBatch;
  cfg.acq = bo::AcqKind::EasyBo;
  cfg.penalize = true;
  cfg.batch = 3;
  cfg.init_points = 6;
  cfg.max_sims = 16;
  cfg.seed = 11;
  cfg.acq_opt.sobol_candidates = 64;
  cfg.acq_opt.random_candidates = 32;
  cfg.acq_opt.refine_evals = 20;
  cfg.trainer.max_iters = 8;
  cfg.trainer.restarts = 1;
  bo::BoEngine engine(cfg, tf.bounds, tf.fn, nullptr);
  if (sink != nullptr) engine.set_trace(sink);
  const bo::BoResult result = engine.run();
  std::vector<double> ys;
  ys.reserve(result.evals.size());
  for (const auto& e : result.evals) ys.push_back(e.y);
  ys.push_back(result.best_y);
  return ys;
}

TEST(StreamSink, SeededRunIsBitIdenticalWithStreamingEnabled) {
  const std::vector<double> null_sink = run_best_trace(nullptr);
  const std::string path = temp_stream("determinism");
  std::vector<double> streamed;
  {
    StreamSink sink(path, StreamOptions{});
    streamed = run_best_trace(&sink);
  }
  ASSERT_EQ(null_sink.size(), streamed.size());
  for (std::size_t i = 0; i < null_sink.size(); ++i) {
    // Bit-identical, not approximately equal: the sink must not perturb
    // one RNG draw or reorder one floating-point operation.
    EXPECT_EQ(null_sink[i], streamed[i]) << "eval " << i;
  }
  const auto lines = read_lines(path);
  ASSERT_FALSE(lines.empty());
  EXPECT_TRUE(frame_is(lines.back(), "bye"));
  EXPECT_EQ(u64_field(lines.back(), "dropped_total"), 0u);
  std::remove(path.c_str());
}

// --- adaptive refit cadence -----------------------------------------------

TEST(AdaptiveRefitGap, AmortizesRefitCostOverEvalCost) {
  // refit 1 s, evals 1 s, budget 10% -> wait 10 observations.
  EXPECT_EQ(bo::adaptive_refit_gap(1.0, 1.0, 0.1, 5), 10u);
  // Cheap refit relative to evals: clamped up to refit_every.
  EXPECT_EQ(bo::adaptive_refit_gap(0.001, 10.0, 0.1, 5), 5u);
  // Expensive refit: stretched, then clamped at 64x refit_every.
  EXPECT_EQ(bo::adaptive_refit_gap(100.0, 0.01, 0.1, 5), 320u);
  // Fractional gaps round up (ceil), never down to over-refit.
  EXPECT_EQ(bo::adaptive_refit_gap(1.05, 1.0, 0.1, 5), 11u);
}

TEST(AdaptiveRefitGap, DegenerateEstimatesHitTheClamps) {
  // No eval cost signal (0 s evals) -> the cap, not a divide-by-zero.
  EXPECT_EQ(bo::adaptive_refit_gap(1.0, 0.0, 0.1, 5), 320u);
  EXPECT_EQ(bo::adaptive_refit_gap(1.0, -1.0, 0.1, 5), 320u);
  // Zero-cost refit -> the floor.
  EXPECT_EQ(bo::adaptive_refit_gap(0.0, 1.0, 0.1, 5), 5u);
  // refit_every 0 still yields a progressing schedule.
  EXPECT_GE(bo::adaptive_refit_gap(1.0, 1.0, 0.1, 0), 1u);
}

TEST(AdaptRefitCadence, OffByDefaultAndAbsentFromTheFingerprint) {
  bo::BoConfig cfg;
  EXPECT_FALSE(cfg.adapt_refit_cadence);
  circuit::TestFunction tf = circuit::branin();
  bo::BoConfig on = cfg;
  on.adapt_refit_cadence = true;
  on.adapt_refit_budget = 0.5;
  // Fingerprint-neutral: flipping the knob must not strand checkpoints.
  EXPECT_EQ(bo::config_fingerprint(cfg, tf.bounds),
            bo::config_fingerprint(on, tf.bounds));
}

TEST(AdaptRefitCadence, BudgetMustBePositive) {
  bo::BoConfig cfg;
  cfg.adapt_refit_budget = 0.0;
  EXPECT_THROW(cfg.validate(), Error);
  cfg.adapt_refit_budget = -0.1;
  EXPECT_THROW(cfg.validate(), Error);
}

TEST(AdaptRefitCadence, StretchesTheScheduleWhenRefitsDominate) {
  // Hand-drive an AskTellCore with the knob on. Observed outcomes carry
  // zero-width [start, finish) windows, so the eval CEMA never gets a
  // sample and the first adaptive refit falls back to n + refit_every;
  // feeding real durations then engages adaptive_refit_gap. Either way
  // the schedule must keep progressing and counting refits.
  circuit::TestFunction tf = circuit::branin();
  bo::BoConfig cfg;
  cfg.mode = bo::Mode::Sequential;
  cfg.acq = bo::AcqKind::Ei;
  cfg.batch = 1;
  cfg.init_points = 4;
  cfg.max_sims = 12;
  cfg.seed = 3;
  cfg.refit_every = 2;
  cfg.adapt_refit_cadence = true;
  cfg.adapt_refit_budget = 0.1;
  cfg.acq_opt.sobol_candidates = 32;
  cfg.acq_opt.random_candidates = 16;
  cfg.acq_opt.refine_evals = 10;
  cfg.trainer.max_iters = 5;
  cfg.trainer.restarts = 1;
  RecordingSink rec;
  bo::AskTellCore core(cfg, tf.bounds);
  core.set_trace(&rec);
  double now = 0.0;
  while (core.num_observations() < cfg.max_sims) {
    const bo::Suggestion s = core.suggest(now);
    bo::Outcome o;
    o.status = sched::EvalStatus::Ok;
    o.value = tf.fn(s.x);
    o.start = now;
    o.finish = now + 1.0;  // 1 virtual second per eval feeds the CEMA
    core.observe(s.tag, o);
    now += 1.0;
  }
  EXPECT_GT(core.hyper_refits(), 0u);
  // Adaptive rescheduling fired at least once after the CEMAs warmed up.
  EXPECT_GT(rec.counter("bo.adapt_refit"), 0u);
  EXPECT_EQ(rec.counter("bo.hyper_refit"), core.hyper_refits());
}

}  // namespace
}  // namespace easybo::obs
