// Unit and property tests for the GP stack: kernels (values + analytic
// gradients vs finite differences), posterior correctness (paper Eq. 2),
// the hallucinated posterior (penalization scheme, §III-C), normalizers.

#include "gp/gp.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/error.h"
#include "common/rng.h"
#include "gp/normalizer.h"
#include "linalg/cholesky.h"

namespace easybo::gp {
namespace {

std::vector<Vec> random_points(std::size_t n, std::size_t d, Rng& rng) {
  std::vector<Vec> xs(n, Vec(d));
  for (auto& x : xs) {
    for (auto& v : x) v = rng.uniform();
  }
  return xs;
}

// ---------------------------------------------------------------------------
// Kernels
// ---------------------------------------------------------------------------

TEST(SeArd, ValueAtZeroDistanceIsSignalVariance) {
  SquaredExponentialArd k(2.5, {0.7, 0.3});
  EXPECT_DOUBLE_EQ(k({0.1, 0.2}, {0.1, 0.2}), 2.5);
}

TEST(SeArd, KnownValue) {
  SquaredExponentialArd k(1.0, {1.0});
  EXPECT_NEAR(k({0.0}, {1.0}), std::exp(-0.5), 1e-12);
  EXPECT_NEAR(k({0.0}, {2.0}), std::exp(-2.0), 1e-12);
}

TEST(SeArd, LengthscaleAnisotropy) {
  SquaredExponentialArd k(1.0, {0.1, 10.0});
  // Same step is far along the short-lengthscale axis, near along the long.
  EXPECT_LT(k({0, 0}, {0.5, 0}), k({0, 0}, {0, 0.5}));
}

TEST(SeArd, LogParamRoundTrip) {
  SquaredExponentialArd k(3.0, {0.5, 2.0});
  const Vec lp = k.log_params();
  SquaredExponentialArd k2(2);
  k2.set_log_params(lp);
  EXPECT_NEAR(k2.signal_variance(), 3.0, 1e-12);
  EXPECT_NEAR(k2.lengthscales()[0], 0.5, 1e-12);
  EXPECT_NEAR(k2.lengthscales()[1], 2.0, 1e-12);
}

TEST(SeArd, RejectsBadParams) {
  EXPECT_THROW(SquaredExponentialArd(-1.0, {1.0}), InvalidArgument);
  EXPECT_THROW(SquaredExponentialArd(1.0, {0.0}), InvalidArgument);
  SquaredExponentialArd k(2);
  EXPECT_THROW(k.set_log_params({0.0}), InvalidArgument);
}

TEST(Matern52, ValueAtZeroDistanceIsSignalVariance) {
  Matern52Ard k(1.7, {0.4, 0.9, 1.1});
  Vec p = {0.3, 0.1, 0.8};
  EXPECT_NEAR(k(p, p), 1.7, 1e-12);
}

TEST(Matern52, DecaysSlowerThanSeFar) {
  SquaredExponentialArd se(1.0, {1.0});
  Matern52Ard m(1.0, {1.0});
  EXPECT_GT(m({0.0}, {3.0}), se({0.0}, {3.0}));
}

// Gradient check: analytic gram_gradients vs central finite differences.
class KernelGradientCheck
    : public ::testing::TestWithParam<const char*> {};

TEST_P(KernelGradientCheck, MatchesFiniteDifferences) {
  Rng rng(99);
  auto kernel = make_kernel(GetParam(), 3);
  Vec lp = kernel->log_params();
  lp[0] = std::log(1.7);
  lp[1] = std::log(0.4);
  lp[2] = std::log(0.9);
  lp[3] = std::log(1.3);
  kernel->set_log_params(lp);

  const auto xs = random_points(6, 3, rng);
  const auto grads = kernel->gram_gradients(xs);
  ASSERT_EQ(grads.size(), kernel->num_params());

  const double h = 1e-6;
  for (std::size_t p = 0; p < kernel->num_params(); ++p) {
    Vec lp_plus = lp, lp_minus = lp;
    lp_plus[p] += h;
    lp_minus[p] -= h;
    kernel->set_log_params(lp_plus);
    const auto k_plus = kernel->gram(xs);
    kernel->set_log_params(lp_minus);
    const auto k_minus = kernel->gram(xs);
    kernel->set_log_params(lp);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      for (std::size_t j = 0; j < xs.size(); ++j) {
        const double fd = (k_plus(i, j) - k_minus(i, j)) / (2 * h);
        EXPECT_NEAR(grads[p](i, j), fd, 1e-5)
            << "param " << p << " entry (" << i << "," << j << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Kernels, KernelGradientCheck,
                         ::testing::Values("se", "matern52"));

TEST(KernelFactory, KnownNamesAndErrors) {
  EXPECT_EQ(make_kernel("se", 2)->name(), "SE-ARD");
  EXPECT_EQ(make_kernel("matern52", 2)->name(), "Matern52-ARD");
  EXPECT_THROW(make_kernel("linear", 2), InvalidArgument);
}

TEST(Kernel, GramIsSymmetricPsd) {
  Rng rng(5);
  for (const char* name : {"se", "matern52"}) {
    auto kernel = make_kernel(name, 4);
    const auto xs = random_points(20, 4, rng);
    auto k = kernel->gram(xs);
    // Symmetry.
    for (std::size_t i = 0; i < 20; ++i) {
      for (std::size_t j = 0; j < 20; ++j) {
        EXPECT_DOUBLE_EQ(k(i, j), k(j, i));
      }
    }
    // PSD: Cholesky with tiny jitter must succeed.
    k.add_diagonal(1e-10);
    EXPECT_NO_THROW(linalg::Cholesky{k});
  }
}

// ---------------------------------------------------------------------------
// GpRegressor posterior (Eq. 2)
// ---------------------------------------------------------------------------

GpRegressor make_fitted_1d() {
  auto kernel = std::make_unique<SquaredExponentialArd>(1.0, Vec{0.3});
  GpRegressor gp(std::move(kernel), 1e-8);
  gp.set_data({{0.1}, {0.4}, {0.7}, {0.9}}, {0.5, -0.2, 0.3, 0.8});
  gp.fit();
  return gp;
}

TEST(GpRegressor, InterpolatesTrainingDataAtLowNoise) {
  const auto gp = make_fitted_1d();
  for (std::size_t i = 0; i < gp.num_points(); ++i) {
    const auto p = gp.predict(gp.inputs()[i]);
    EXPECT_NEAR(p.mean, gp.targets()[i], 1e-3);
    EXPECT_LT(p.var, 1e-4);
  }
}

TEST(GpRegressor, RevertsToPriorFarFromData) {
  const auto gp = make_fitted_1d();
  const auto p = gp.predict({100.0});
  // Far away: mean -> empirical mean of y, var -> signal variance.
  const double ymean = (0.5 - 0.2 + 0.3 + 0.8) / 4.0;
  EXPECT_NEAR(p.mean, ymean, 1e-6);
  EXPECT_NEAR(p.var, 1.0, 1e-6);
}

TEST(GpRegressor, VarianceIsNonNegativeEverywhere) {
  const auto gp = make_fitted_1d();
  for (double x = -1.0; x <= 2.0; x += 0.01) {
    EXPECT_GE(gp.predict({x}).var, 0.0);
  }
}

TEST(GpRegressor, ObservationVarAddsNoise) {
  auto kernel = std::make_unique<SquaredExponentialArd>(1.0, Vec{0.3});
  GpRegressor gp(std::move(kernel), 0.01);
  gp.set_data({{0.5}}, {1.0});
  gp.fit();
  const auto p = gp.predict({0.5});
  EXPECT_NEAR(gp.predict_observation_var({0.5}), p.var + 0.01, 1e-12);
}

TEST(GpRegressor, PosteriorMatchesDirectEq2) {
  // Independent computation of Eq. 2 with explicit matrix algebra.
  Rng rng(3);
  const auto xs = random_points(8, 2, rng);
  Vec ys(8);
  for (std::size_t i = 0; i < 8; ++i) ys[i] = rng.normal();
  const double noise = 0.01;

  SquaredExponentialArd kernel(1.3, {0.4, 0.6});
  auto gp_kernel = std::make_unique<SquaredExponentialArd>(kernel);
  GpRegressor gp(std::move(gp_kernel), noise);
  gp.set_data(xs, ys);
  gp.fit();

  // Direct: mu = m + k* K^{-1} (y - m), var = k** - k* K^{-1} k*^T.
  double m = 0;
  for (double y : ys) m += y;
  m /= 8.0;
  auto kmat = kernel.gram(xs);
  kmat.add_diagonal(noise);
  linalg::Cholesky chol(kmat);
  Vec centered(8);
  for (std::size_t i = 0; i < 8; ++i) centered[i] = ys[i] - m;
  const Vec alpha = chol.solve(centered);

  const Vec xstar = {0.3, 0.7};
  const Vec kstar = kernel.cross(xstar, xs);
  const double mu = m + linalg::dot(kstar, alpha);
  const double var =
      kernel(xstar, xstar) - linalg::dot(kstar, chol.solve(kstar));

  const auto p = gp.predict(xstar);
  EXPECT_NEAR(p.mean, mu, 1e-9);
  EXPECT_NEAR(p.var, var, 1e-9);
}

TEST(GpRegressor, LmlGradientMatchesFiniteDifferences) {
  Rng rng(17);
  const auto xs = random_points(10, 2, rng);
  Vec ys(10);
  for (auto& y : ys) y = rng.normal();

  GpRegressor gp(std::make_unique<SquaredExponentialArd>(2), 1e-3);
  gp.set_data(xs, ys);
  gp.fit();
  const Vec lp = gp.log_hyperparams();
  const Vec grad = gp.lml_gradient();
  ASSERT_EQ(grad.size(), lp.size());

  const double h = 1e-6;
  for (std::size_t p = 0; p < lp.size(); ++p) {
    Vec plus = lp, minus = lp;
    plus[p] += h;
    minus[p] -= h;
    gp.set_log_hyperparams(plus);
    gp.fit();
    const double lml_plus = gp.log_marginal_likelihood();
    gp.set_log_hyperparams(minus);
    gp.fit();
    const double lml_minus = gp.log_marginal_likelihood();
    gp.set_log_hyperparams(lp);
    gp.fit();
    const double fd = (lml_plus - lml_minus) / (2 * h);
    // Relative tolerance: gradients here are O(100).
    EXPECT_NEAR(grad[p], fd, 1e-5 * std::max(1.0, std::abs(fd)))
        << "hyperparameter " << p;
  }
}

TEST(GpRegressor, AddPointInvalidatesFit) {
  auto gp = make_fitted_1d();
  EXPECT_TRUE(gp.fitted());
  gp.add_point({0.5}, 0.0);
  EXPECT_FALSE(gp.fitted());
  EXPECT_THROW(gp.predict({0.5}), InvalidArgument);
}

TEST(GpRegressor, CopyIsDeep) {
  auto gp = make_fitted_1d();
  GpRegressor copy(gp);
  copy.add_point({0.2}, 5.0);
  copy.fit();
  // Original unaffected.
  EXPECT_EQ(gp.num_points(), 4u);
  EXPECT_EQ(copy.num_points(), 5u);
}

// ---------------------------------------------------------------------------
// Hallucinated posterior — the EasyBO penalization scheme (§III-C)
// ---------------------------------------------------------------------------

TEST(Hallucination, ShrinksVarianceNearPendingPoint) {
  const auto gp = make_fitted_1d();
  const Vec pending_point = {0.25};
  const auto aug = gp.with_hallucinated({pending_point});

  // sigma-hat near the pending point collapses (this is what prevents
  // redundant queries in the busy region)...
  EXPECT_LT(aug.predict(pending_point).stddev(),
            0.2 * gp.predict(pending_point).stddev());
  // ...while the predictive MEAN is (nearly) unchanged there, because the
  // pseudo-observation equals the current predictive mean.
  EXPECT_NEAR(aug.predict(pending_point).mean,
              gp.predict(pending_point).mean, 1e-4);
}

TEST(Hallucination, VarianceNeverIncreases) {
  // Conditioning on more (pseudo-)data cannot increase GP variance.
  const auto gp = make_fitted_1d();
  const auto aug = gp.with_hallucinated({{0.25}, {0.55}});
  for (double x = 0.0; x <= 1.0; x += 0.05) {
    EXPECT_LE(aug.predict({x}).var, gp.predict({x}).var + 1e-9);
  }
}

TEST(Hallucination, FarAwayUnaffected) {
  const auto gp = make_fitted_1d();
  const auto aug = gp.with_hallucinated({{0.25}});
  // Several lengthscales away, the pseudo point has negligible influence.
  EXPECT_NEAR(aug.predict({3.0}).var, gp.predict({3.0}).var, 1e-3);
}

TEST(Hallucination, RequiresFittedModel) {
  GpRegressor gp(std::make_unique<SquaredExponentialArd>(1), 1e-6);
  gp.set_data({{0.0}}, {0.0});
  EXPECT_THROW(gp.with_hallucinated({{0.5}}), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Normalizers
// ---------------------------------------------------------------------------

TEST(BoxNormalizer, RoundTrip) {
  BoxNormalizer box({-2.0, 10.0}, {2.0, 30.0});
  const Vec x = {1.0, 15.0};
  const Vec u = box.to_unit(x);
  EXPECT_NEAR(u[0], 0.75, 1e-12);
  EXPECT_NEAR(u[1], 0.25, 1e-12);
  const Vec back = box.from_unit(u);
  EXPECT_NEAR(back[0], x[0], 1e-12);
  EXPECT_NEAR(back[1], x[1], 1e-12);
}

TEST(BoxNormalizer, RejectsDegenerateBounds) {
  EXPECT_THROW(BoxNormalizer({0.0}, {0.0}), InvalidArgument);
  EXPECT_THROW(BoxNormalizer({0.0, 1.0}, {1.0}), InvalidArgument);
}

TEST(ZScore, StandardizesSample) {
  ZScore z;
  z.refit({2.0, 4.0, 6.0});
  EXPECT_NEAR(z.mean(), 4.0, 1e-12);
  EXPECT_NEAR(z.transform(4.0), 0.0, 1e-12);
  EXPECT_NEAR(z.inverse(z.transform(6.0)), 6.0, 1e-12);
  EXPECT_NEAR(z.inverse_stddev(1.0), z.scale(), 1e-12);
}

TEST(ZScore, DegenerateSampleFallsBackToUnitScale) {
  ZScore z;
  z.refit({5.0, 5.0, 5.0});
  EXPECT_DOUBLE_EQ(z.scale(), 1.0);
  EXPECT_DOUBLE_EQ(z.transform(6.0), 1.0);
}

TEST(ZScore, EmptySampleIsIdentity) {
  ZScore z;
  z.refit({});
  EXPECT_DOUBLE_EQ(z.transform(3.0), 3.0);
}

}  // namespace
}  // namespace easybo::gp
