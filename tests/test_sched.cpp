// Tests for the virtual-time scheduler: event ordering, utilization
// accounting, and the synchronous-vs-asynchronous policy comparison that
// underlies the paper's Fig. 1 and all wall-clock columns.

#include "sched/event_sim.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace easybo::sched {
namespace {

TEST(VirtualScheduler, SingleJobLifecycle) {
  VirtualScheduler s(2);
  EXPECT_EQ(s.num_workers(), 2u);
  EXPECT_TRUE(s.has_idle_worker());
  EXPECT_DOUBLE_EQ(s.now(), 0.0);

  s.submit(/*tag=*/7, /*duration=*/5.0);
  EXPECT_EQ(s.num_running(), 1u);
  const auto job = s.wait_next();
  EXPECT_EQ(job.tag, 7u);
  EXPECT_DOUBLE_EQ(job.start, 0.0);
  EXPECT_DOUBLE_EQ(job.finish, 5.0);
  EXPECT_DOUBLE_EQ(s.now(), 5.0);
  EXPECT_EQ(s.num_idle(), 2u);
}

TEST(VirtualScheduler, CompletionsInFinishOrder) {
  VirtualScheduler s(3);
  s.submit(0, 9.0);
  s.submit(1, 3.0);
  s.submit(2, 6.0);
  EXPECT_EQ(s.wait_next().tag, 1u);
  EXPECT_EQ(s.wait_next().tag, 2u);
  EXPECT_EQ(s.wait_next().tag, 0u);
  EXPECT_DOUBLE_EQ(s.now(), 9.0);
}

TEST(VirtualScheduler, AsyncReuseOfFreedWorker) {
  VirtualScheduler s(2);
  s.submit(0, 4.0);
  s.submit(1, 10.0);
  const auto first = s.wait_next();  // tag 0 at t=4
  EXPECT_EQ(first.tag, 0u);
  s.submit(2, 2.0);  // starts at t=4 on the freed worker
  const auto second = s.wait_next();
  EXPECT_EQ(second.tag, 2u);
  EXPECT_DOUBLE_EQ(second.start, 4.0);
  EXPECT_DOUBLE_EQ(second.finish, 6.0);
}

TEST(VirtualScheduler, EqualFinishTimesCompleteFifo) {
  // Equal-duration jobs (the norm under a constant sim_time) tie on
  // finish time; completion must follow submission order, not the heap's
  // internal order.
  VirtualScheduler s(4);
  for (std::size_t tag = 0; tag < 4; ++tag) s.submit(tag, 2.0);
  for (std::size_t tag = 0; tag < 4; ++tag) {
    EXPECT_EQ(s.wait_next().tag, tag);
  }
  // Also across a refill: freed workers keep FIFO order within the tie.
  for (std::size_t tag = 10; tag < 14; ++tag) s.submit(tag, 1.0);
  for (std::size_t tag = 10; tag < 14; ++tag) {
    EXPECT_EQ(s.wait_next().tag, tag);
  }
}

TEST(VirtualScheduler, RejectsMisuse) {
  VirtualScheduler s(1);
  EXPECT_THROW(s.wait_next(), InvalidArgument);  // nothing running
  s.submit(0, 1.0);
  EXPECT_THROW(s.submit(1, 1.0), InvalidArgument);  // no idle worker
  EXPECT_THROW(VirtualScheduler(0), InvalidArgument);
  VirtualScheduler s2(1);
  EXPECT_THROW(s2.submit(0, 0.0), InvalidArgument);  // non-positive duration
}

TEST(VirtualScheduler, WaitAllIsABarrier) {
  VirtualScheduler s(3);
  s.submit(0, 1.0);
  s.submit(1, 7.0);
  s.submit(2, 3.0);
  const auto done = s.wait_all();
  EXPECT_EQ(done.size(), 3u);
  EXPECT_DOUBLE_EQ(s.now(), 7.0);
  EXPECT_EQ(s.num_idle(), 3u);
}

TEST(VirtualScheduler, BusyTimeAndUtilization) {
  VirtualScheduler s(2);
  s.submit(0, 4.0);
  s.submit(1, 8.0);
  s.wait_all();
  EXPECT_DOUBLE_EQ(s.total_busy_time(), 12.0);
  // 12 busy seconds over 2 workers * 8s horizon.
  EXPECT_DOUBLE_EQ(s.utilization(), 0.75);
}

TEST(VirtualScheduler, TraceRecordsEverySubmission) {
  VirtualScheduler s(2);
  s.submit(10, 1.0);
  s.submit(11, 2.0);
  s.wait_all();
  s.submit(12, 3.0);
  ASSERT_EQ(s.trace().size(), 3u);
  EXPECT_EQ(s.trace()[0].tag, 10u);
  EXPECT_DOUBLE_EQ(s.trace()[2].start, 2.0);
}

TEST(VirtualScheduler, WorkersNeverOverlap) {
  // Property: on each worker, job intervals are disjoint.
  Rng rng(1);
  VirtualScheduler s(4);
  std::size_t issued = 0;
  while (issued < 100 || s.num_running() > 0) {
    while (s.has_idle_worker() && issued < 100) {
      s.submit(issued++, rng.uniform(0.5, 10.0));
    }
    if (s.num_running() > 0) s.wait_next();
  }
  auto trace = s.trace();
  std::sort(trace.begin(), trace.end(),
            [](const JobRecord& a, const JobRecord& b) {
              return a.worker == b.worker ? a.start < b.start
                                          : a.worker < b.worker;
            });
  for (std::size_t i = 1; i < trace.size(); ++i) {
    if (trace[i].worker == trace[i - 1].worker) {
      EXPECT_GE(trace[i].start, trace[i - 1].finish - 1e-12);
    }
  }
}

// ---------------------------------------------------------------------------
// compare_policies — the Fig. 1 story
// ---------------------------------------------------------------------------

TEST(ComparePolicies, Fig1Example) {
  // Batch of 3 workers; heterogeneous durations make the sync schedule
  // wait for stragglers every batch.
  const std::vector<double> durations = {5, 1, 1, 5, 1, 1, 5, 1, 1};
  const auto cmp = compare_policies(durations, 3);
  // Sync: 3 batches, each dominated by the 5s job -> 15s.
  EXPECT_DOUBLE_EQ(cmp.sync_makespan, 15.0);
  // Async: total work 21s over 3 workers; the greedy schedule packs the
  // short jobs behind the long ones.
  EXPECT_LT(cmp.async_makespan, cmp.sync_makespan);
  EXPECT_GT(cmp.async_utilization, cmp.sync_utilization);
}

TEST(ComparePolicies, UniformDurationsShowNoGap) {
  const std::vector<double> durations(12, 2.0);
  const auto cmp = compare_policies(durations, 4);
  EXPECT_DOUBLE_EQ(cmp.sync_makespan, cmp.async_makespan);
  EXPECT_DOUBLE_EQ(cmp.sync_utilization, 1.0);
  EXPECT_DOUBLE_EQ(cmp.async_utilization, 1.0);
}

TEST(ComparePolicies, AsyncNeverSlower) {
  // Property over random workloads: async makespan <= sync makespan, and
  // both respect the trivial lower bounds.
  Rng rng(2);
  for (int rep = 0; rep < 25; ++rep) {
    const std::size_t n = 10 + rng.index(40);
    const std::size_t workers = 2 + rng.index(6);
    std::vector<double> durations(n);
    double total = 0.0, longest = 0.0;
    for (auto& d : durations) {
      d = rng.uniform(0.1, 20.0);
      total += d;
      longest = std::max(longest, d);
    }
    const auto cmp = compare_policies(durations, workers);
    EXPECT_LE(cmp.async_makespan, cmp.sync_makespan + 1e-9);
    EXPECT_GE(cmp.async_makespan,
              std::max(longest, total / static_cast<double>(workers)) -
                  1e-9);
    EXPECT_LE(cmp.async_utilization, 1.0 + 1e-12);
  }
}

TEST(ComparePolicies, GapGrowsWithBatchSizeOnSkewedWork) {
  // The paper: "the time reduction effect will deteriorate quickly" for
  // sync as B grows. With heavy-tailed durations, the relative async
  // saving should be larger at B=15 than at B=5.
  Rng rng(3);
  std::vector<double> durations(300);
  for (auto& d : durations) d = std::exp(rng.normal(0.0, 0.6));
  const auto b5 = compare_policies(durations, 5);
  const auto b15 = compare_policies(durations, 15);
  const double saving5 = 1.0 - b5.async_makespan / b5.sync_makespan;
  const double saving15 = 1.0 - b15.async_makespan / b15.sync_makespan;
  EXPECT_GT(saving15, saving5);
}

}  // namespace
}  // namespace easybo::sched
