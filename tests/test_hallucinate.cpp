/// \file test_hallucinate.cpp
/// \brief The zero-copy hallucination overlay (gp::GpRegressor::
/// hallucinate): bit-parity with the historical deep-copy path
/// (with_hallucinated) on healthy, jittered and degenerate bases, mean
/// pinning, honest counters, and the engine-level guarantee that flipping
/// BoConfig::hallucinate_overlay does not move a single proposal.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "bo/engine.h"
#include "circuit/testfunc.h"
#include "common/rng.h"
#include "gp/gp.h"
#include "gp/kernel.h"
#include "obs/recording.h"

namespace easybo {
namespace {

using gp::GpRegressor;
using gp::SquaredExponentialArd;
using gp::Vec;

GpRegressor fitted_gp(std::size_t n, double noise, Rng& rng) {
  GpRegressor gp(std::make_unique<SquaredExponentialArd>(1.0, Vec{0.3, 0.4}),
                 noise);
  std::vector<Vec> xs(n);
  Vec ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = {rng.uniform(), rng.uniform()};
    ys[i] = std::sin(4.0 * xs[i][0]) + xs[i][1] * xs[i][1] + 0.1 * rng.normal();
  }
  gp.set_data(std::move(xs), std::move(ys));
  gp.fit();
  return gp;
}

std::vector<Vec> make_pending(std::size_t k, Rng& rng) {
  std::vector<Vec> pending(k);
  for (auto& p : pending) p = {rng.uniform(), rng.uniform()};
  return pending;
}

// The property everything else rests on: for every batch size and both
// mean conventions, the overlay serves the EXACT posterior the deep copy
// serves — same bits, not merely close.
TEST(HallucinateOverlay, BitIdenticalToDeepCopy) {
  for (const std::size_t k : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
    for (const bool pin : {false, true}) {
      Rng rng(41);
      const GpRegressor gp = fitted_gp(15, 1e-6, rng);
      const auto pending = make_pending(k, rng);

      const GpRegressor deep = gp.with_hallucinated(pending, pin);
      const auto overlay = gp.hallucinate(pending, pin);

      EXPECT_EQ(overlay->num_points(), deep.num_points());
      EXPECT_EQ(overlay->dim(), deep.dim());
      EXPECT_EQ(overlay->noise_variance(), deep.noise_variance());
      EXPECT_TRUE(overlay->fitted());

      Rng probe(42);
      for (int i = 0; i < 25; ++i) {
        const Vec x = {probe.uniform(), probe.uniform()};
        const auto pd = deep.predict(x);
        const auto po = overlay->predict(x);
        EXPECT_EQ(po.mean, pd.mean) << "k=" << k << " pin=" << pin;
        EXPECT_EQ(po.var, pd.var) << "k=" << k << " pin=" << pin;
        EXPECT_EQ(overlay->predict_observation_var(x),
                  deep.predict_observation_var(x));
      }
    }
  }
}

// Thompson draws go through the same joint-sampling routine: identical
// values from an identical number of rng consumptions.
TEST(HallucinateOverlay, SamplePosteriorBitIdentical) {
  Rng rng(43);
  const GpRegressor gp = fitted_gp(12, 1e-6, rng);
  const auto pending = make_pending(4, rng);
  const auto candidates = make_pending(6, rng);

  const GpRegressor deep = gp.with_hallucinated(pending);
  const auto overlay = gp.hallucinate(pending, /*pin_mean=*/false);

  Rng ra(99), rb(99);
  const Vec fd = deep.sample_posterior(candidates, ra);
  const Vec fo = overlay->sample_posterior(candidates, rb);
  ASSERT_EQ(fd.size(), fo.size());
  for (std::size_t i = 0; i < fd.size(); ++i) EXPECT_EQ(fo[i], fd[i]);
  // Both consumed the same number of draws: the streams stay aligned.
  EXPECT_EQ(ra.normal(), rb.normal());
}

// A base factor that needed escalated jitter: the overlay must bake the
// same jitter into its appended diagonals (the companion of the
// incremental-fit regression in test_gp_incremental.cpp).
TEST(HallucinateOverlay, BitIdenticalOnJitteredBase) {
  Rng rng(44);
  GpRegressor gp(std::make_unique<SquaredExponentialArd>(1.0, Vec{0.3, 0.3}),
                 1e-16);
  std::vector<Vec> xs(10);
  Vec ys(10);
  for (std::size_t i = 0; i < 10; ++i) {
    xs[i] = {0.3 + 1e-12 * rng.uniform(), 0.7 + 1e-12 * rng.uniform()};
    ys[i] = rng.normal();
  }
  gp.set_data(std::move(xs), std::move(ys));
  gp.fit();
  ASSERT_GT(gp.factor().jitter_used(), 0.0)
      << "setup failed to force jitter escalation";

  const std::vector<Vec> pending = {{0.9, 0.1}, {0.1, 0.9}};
  const GpRegressor deep = gp.with_hallucinated(pending);
  const auto overlay = gp.hallucinate(pending, /*pin_mean=*/false);
  Rng probe(45);
  for (int i = 0; i < 20; ++i) {
    const Vec x = {probe.uniform(), probe.uniform()};
    EXPECT_EQ(overlay->predict(x).mean, deep.predict(x).mean);
    EXPECT_EQ(overlay->predict(x).var, deep.predict(x).var);
  }
}

// When extension is impossible (duplicated pending points, no noise
// slack), the overlay falls back to one full factorization — the same
// escape hatch the deep copy takes — and says so in the counters.
TEST(HallucinateOverlay, FallbackBitIdenticalAndCounted) {
  Rng rng(46);
  GpRegressor gp = fitted_gp(10, 1e-16, rng);
  // The same point three times: the hallucinated covariance collapses.
  const Vec dup = {0.5, 0.5};
  const std::vector<Vec> pending = {dup, dup, dup};

  obs::RecordingSink sink;
  gp.set_trace(&sink);
  const auto overlay = gp.hallucinate(pending, /*pin_mean=*/false);
  EXPECT_EQ(sink.counter("gp.hallucinate"), 1u);
  EXPECT_EQ(sink.counter("gp.hallucinate_fallback"), 1u);
  EXPECT_EQ(sink.counter("gp.chol_refactor"), 1u);
  EXPECT_EQ(sink.counter("gp.chol_extend"), 0u);
  EXPECT_GE(sink.counter("gp.chol_extend_abandoned"), 1u);

  gp.set_trace(nullptr);
  const GpRegressor deep = gp.with_hallucinated(pending);
  Rng probe(47);
  for (int i = 0; i < 20; ++i) {
    const Vec x = {probe.uniform(), probe.uniform()};
    EXPECT_EQ(overlay->predict(x).mean, deep.predict(x).mean);
    EXPECT_EQ(overlay->predict(x).var, deep.predict(x).var);
  }
}

// The healthy path reports one hallucination and k extended rows, and
// never touches the base model's factor.
TEST(HallucinateOverlay, CountsRowsAndLeavesBaseUntouched) {
  Rng rng(48);
  GpRegressor gp = fitted_gp(12, 1e-6, rng);
  const auto pending = make_pending(4, rng);

  const Vec x_probe = {0.42, 0.58};
  const auto before = gp.predict(x_probe);

  obs::RecordingSink sink;
  gp.set_trace(&sink);
  const auto overlay = gp.hallucinate(pending, /*pin_mean=*/false);
  EXPECT_EQ(sink.counter("gp.hallucinate"), 1u);
  EXPECT_EQ(sink.counter("gp.chol_extend"), 4u);
  EXPECT_EQ(sink.counter("gp.hallucinate_fallback"), 0u);
  EXPECT_EQ(sink.counter("gp.chol_refactor"), 0u);

  const auto after = gp.predict(x_probe);
  EXPECT_EQ(after.mean, before.mean);
  EXPECT_EQ(after.var, before.var);
  EXPECT_EQ(gp.num_points(), 12u);
}

// pin_mean = true keeps the base empirical mean instead of recomputing it
// over data + pseudo targets; both conventions must match their deep-copy
// twin, and they must genuinely differ from each other.
TEST(HallucinateOverlay, MeanPinningMatchesDeepCopyAndMatters) {
  Rng rng(49);
  const GpRegressor gp = fitted_gp(10, 1e-6, rng);
  // A far-out pending point whose predictive mean reverts toward the
  // prior: recomputing the empirical mean over pseudo targets moves it.
  const std::vector<Vec> pending = {{0.99, 0.01}};

  const auto pinned = gp.hallucinate(pending, /*pin_mean=*/true);
  const auto unpinned = gp.hallucinate(pending, /*pin_mean=*/false);
  const GpRegressor deep_pinned = gp.with_hallucinated(pending, true);

  const Vec x = {0.2, 0.8};
  EXPECT_EQ(pinned->predict(x).mean, deep_pinned.predict(x).mean);
  EXPECT_EQ(pinned->predict(x).var, deep_pinned.predict(x).var);
  EXPECT_NE(pinned->predict(x).mean, unpinned->predict(x).mean);
}

// ---------------------------------------------------------------------------
// Engine level: the overlay is a pure implementation swap
// ---------------------------------------------------------------------------

bo::BoConfig engine_cfg(bo::Mode mode, std::uint64_t seed) {
  bo::BoConfig c;
  c.mode = mode;
  c.acq = bo::AcqKind::EasyBo;
  c.penalize = true;
  c.batch = mode == bo::Mode::Sequential ? 1 : 4;
  c.init_points = 8;
  c.max_sims = 24;
  c.seed = seed;
  c.acq_opt.sobol_candidates = 64;
  c.acq_opt.random_candidates = 32;
  c.acq_opt.refine_evals = 30;
  c.trainer.max_iters = 10;
  c.trainer.restarts = 1;
  return c;
}

// hallucinate_overlay is documented as stream-invariant (and therefore
// absent from the checkpoint fingerprint): flipping it must reproduce
// every evaluation bit for bit in every batch mode.
TEST(HallucinateEngine, OverlayFlagNeverMovesAProposal) {
  const auto tf = circuit::branin();
  for (const auto mode :
       {bo::Mode::Sequential, bo::Mode::SyncBatch, bo::Mode::AsyncBatch}) {
    bo::BoConfig with_overlay = engine_cfg(mode, 7);
    with_overlay.hallucinate_overlay = true;
    bo::BoConfig with_copy = engine_cfg(mode, 7);
    with_copy.hallucinate_overlay = false;

    const auto a = bo::BoEngine(with_overlay, tf.bounds, tf.fn).run();
    const auto b = bo::BoEngine(with_copy, tf.bounds, tf.fn).run();
    ASSERT_EQ(a.num_evals(), b.num_evals());
    for (std::size_t i = 0; i < a.num_evals(); ++i) {
      EXPECT_EQ(a.evals[i].x, b.evals[i].x)
          << "mode " << static_cast<int>(mode) << " eval " << i;
      EXPECT_DOUBLE_EQ(a.evals[i].y, b.evals[i].y);
    }
    EXPECT_EQ(a.best_x, b.best_x);
    EXPECT_DOUBLE_EQ(a.best_y, b.best_y);
  }
}

// The BUCB path hallucinates too; cover it in the busiest mode.
TEST(HallucinateEngine, OverlayFlagIsStreamInvariantForBucb) {
  const auto tf = circuit::branin();
  bo::BoConfig with_overlay = engine_cfg(bo::Mode::AsyncBatch, 11);
  with_overlay.acq = bo::AcqKind::Bucb;
  with_overlay.hallucinate_overlay = true;
  bo::BoConfig with_copy = with_overlay;
  with_copy.hallucinate_overlay = false;

  const auto a = bo::BoEngine(with_overlay, tf.bounds, tf.fn).run();
  const auto b = bo::BoEngine(with_copy, tf.bounds, tf.fn).run();
  ASSERT_EQ(a.num_evals(), b.num_evals());
  for (std::size_t i = 0; i < a.num_evals(); ++i) {
    EXPECT_EQ(a.evals[i].x, b.evals[i].x) << "eval " << i;
  }
}

// Proposals under penalization book k factor-row extensions per
// hallucination on the metrics channel — the honest accounting the
// engine's capacity planning reads.
TEST(HallucinateEngine, MetricsReportHallucinations) {
  const auto tf = circuit::branin();
  bo::BoConfig cfg = engine_cfg(bo::Mode::AsyncBatch, 13);
  cfg.collect_metrics = true;
  const auto r = bo::BoEngine(cfg, tf.bounds, tf.fn).run();
  EXPECT_GT(r.metrics.counter("gp.hallucinate"), 0u);
}

}  // namespace
}  // namespace easybo
