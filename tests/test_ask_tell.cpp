// Tests for the ask/tell core (bo/ask_tell): hand-driven suggest/observe
// schedules reproduce BoEngine::run bit for bit across Sequential/Sync/
// Async modes and Virtual/Thread executors; out-of-order observes are
// deterministic; a mid-stream snapshot/restore cut (including mid-batch
// in sync mode, where the deferred-update flag must survive) continues
// identically; the tag-keyed pending set keeps coincidentally equal
// pending points distinct; and the async weight-slot rotation flag is
// off by default, fingerprinted, and spreads pHCBO penalty histories
// across slots when enabled.

#include "bo/ask_tell.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "bo/engine.h"
#include "circuit/testfunc.h"
#include "common/error.h"
#include "common/rng.h"
#include "sched/executor.h"

namespace easybo::bo {
namespace {

BoConfig quick(Mode mode, std::size_t batch, std::uint64_t seed) {
  BoConfig c;
  c.mode = mode;
  c.acq = AcqKind::EasyBo;
  c.penalize = true;
  c.batch = batch;
  c.init_points = 6;
  c.max_sims = 18;
  c.seed = seed;
  c.acq_opt.sobol_candidates = 64;
  c.acq_opt.random_candidates = 32;
  c.acq_opt.refine_evals = 30;
  c.trainer.max_iters = 10;
  c.trainer.restarts = 1;
  return c;
}

/// Distinct virtual durations so async completions genuinely interleave.
double varied_sim_time(const Vec& x) {
  return 0.6 + 0.05 * std::abs(x[0]);
}

/// A worker-pool emulation around AskTellCore that re-enacts BoEngine's
/// pump schedules by hand: greedy init fill, then the per-mode loop, with
/// completions delivered in finish-time order exactly as a
/// VirtualExecutor would. Everything BoEngine adds on top of the core —
/// and nothing else — lives here, so an eval-for-eval match against
/// BoEngine::run proves the extraction moved state without changing it.
class HandDriver {
 public:
  HandDriver(const BoConfig& cfg, const opt::Bounds& bounds,
             std::function<double(const Vec&)> objective,
             std::size_t workers)
      : core_(cfg, bounds, varied_sim_time),
        objective_(std::move(objective)),
        workers_(workers) {}

  AskTellCore& core() { return core_; }

  void run() {
    const BoConfig& cfg = core_.config();
    while (core_.num_observations() < cfg.init_points) {
      while (fly_.size() < workers_ && core_.issued() < cfg.max_sims &&
             core_.num_observations() + fly_.size() < cfg.init_points) {
        submit();
      }
      if (fly_.empty()) break;
      observe_earliest();
    }
    core_.finish_init();
    switch (cfg.mode) {
      case Mode::Sequential:
        while (core_.issued() < cfg.max_sims) {
          submit();
          observe_earliest();
        }
        break;
      case Mode::SyncBatch:
        while (core_.issued() < cfg.max_sims) {
          const std::size_t k = std::min(
              {cfg.batch, cfg.max_sims - core_.issued(), workers_});
          for (std::size_t i = 0; i < k; ++i) submit();
          while (!fly_.empty()) observe_earliest();
        }
        break;
      case Mode::AsyncBatch:
        while (fly_.size() < workers_ && core_.issued() < cfg.max_sims) {
          submit();
        }
        while (!fly_.empty()) {
          observe_earliest();
          if (core_.issued() < cfg.max_sims) submit();
        }
        break;
    }
  }

 private:
  struct Job {
    std::size_t tag = 0;
    double start = 0.0;
    double finish = 0.0;
    double value = 0.0;
  };

  void submit() {
    const Suggestion s = core_.suggest(now_);
    Job j;
    j.tag = s.tag;
    j.start = now_;
    j.finish = now_ + s.duration;
    j.value = objective_(s.x);
    fly_.push_back(j);
  }

  void observe_earliest() {
    const auto it =
        std::min_element(fly_.begin(), fly_.end(),
                         [](const Job& a, const Job& b) {
                           return a.finish < b.finish;
                         });
    const Job j = *it;
    fly_.erase(it);
    now_ = j.finish;
    Outcome o;
    o.value = j.value;
    o.start = j.start;
    o.finish = j.finish;
    core_.observe(j.tag, o);
  }

  AskTellCore core_;
  std::function<double(const Vec&)> objective_;
  std::size_t workers_;
  double now_ = 0.0;
  std::vector<Job> fly_;
};

/// Bit-identical evaluation streams: same points, same values, same
/// init/BO split, in the same completion order.
void expect_same_evals(const std::vector<EvalRecord>& hand,
                       const std::vector<EvalRecord>& engine) {
  ASSERT_EQ(hand.size(), engine.size());
  for (std::size_t i = 0; i < hand.size(); ++i) {
    EXPECT_EQ(hand[i].x, engine[i].x) << "eval " << i;
    EXPECT_DOUBLE_EQ(hand[i].y, engine[i].y) << "eval " << i;
    EXPECT_EQ(hand[i].is_init, engine[i].is_init) << "eval " << i;
  }
}

Outcome ok_outcome(double y) {
  Outcome o;
  o.value = y;
  return o;
}

Outcome failed_outcome() {
  Outcome o;
  o.status = sched::EvalStatus::Exception;
  o.value = std::numeric_limits<double>::quiet_NaN();
  o.error = "synthetic failure";
  return o;
}

// ---------------------------------------------------------------------------
// Parity: hand-driven core vs BoEngine::run, per mode and executor
// ---------------------------------------------------------------------------

TEST(AskTellParity, SequentialMatchesEngineOnBothExecutors) {
  const auto tf = circuit::sphere(2);
  const auto cfg = quick(Mode::Sequential, 1, 101);

  HandDriver hand(cfg, tf.bounds, tf.fn, 1);
  hand.run();

  BoEngine virt_engine(cfg, tf.bounds, tf.fn, varied_sim_time);
  const BoResult virt = virt_engine.run();
  expect_same_evals(hand.core().evals(), virt.evals);

  BoEngine real_engine(cfg, tf.bounds, tf.fn, varied_sim_time);
  sched::ThreadExecutor real_exec(1);
  const BoResult real = real_engine.run(real_exec);
  expect_same_evals(hand.core().evals(), real.evals);
}

TEST(AskTellParity, SyncBatchMatchesEngineOnBothExecutors) {
  const auto tf = circuit::sphere(2);
  const auto cfg = quick(Mode::SyncBatch, 3, 202);

  HandDriver hand(cfg, tf.bounds, tf.fn, cfg.batch);
  hand.run();

  BoEngine virt_engine(cfg, tf.bounds, tf.fn, varied_sim_time);
  const BoResult virt = virt_engine.run();
  expect_same_evals(hand.core().evals(), virt.evals);

  // One real thread serializes completions, which shrinks the sync batch
  // to k=1 on both sides: the hand driver must be given the same pool.
  HandDriver serial_hand(cfg, tf.bounds, tf.fn, 1);
  serial_hand.run();
  BoEngine real_engine(cfg, tf.bounds, tf.fn, varied_sim_time);
  sched::ThreadExecutor real_exec(1);
  const BoResult real = real_engine.run(real_exec);
  expect_same_evals(serial_hand.core().evals(), real.evals);
}

TEST(AskTellParity, AsyncBatchMatchesEngineOnBothExecutors) {
  const auto tf = circuit::sphere(2);
  const auto cfg = quick(Mode::AsyncBatch, 3, 303);

  HandDriver hand(cfg, tf.bounds, tf.fn, cfg.batch);
  hand.run();

  BoEngine virt_engine(cfg, tf.bounds, tf.fn, varied_sim_time);
  const BoResult virt = virt_engine.run();
  expect_same_evals(hand.core().evals(), virt.evals);

  HandDriver serial_hand(cfg, tf.bounds, tf.fn, 1);
  serial_hand.run();
  BoEngine real_engine(cfg, tf.bounds, tf.fn, varied_sim_time);
  sched::ThreadExecutor real_exec(1);
  const BoResult real = real_engine.run(real_exec);
  expect_same_evals(serial_hand.core().evals(), real.evals);
}

// ---------------------------------------------------------------------------
// Observe ordering and the suggest/observe contract
// ---------------------------------------------------------------------------

TEST(AskTellCoreTest, OutOfOrderObservesAreAcceptedAndDeterministic) {
  const auto tf = circuit::sphere(2);
  auto cfg = quick(Mode::AsyncBatch, 4, 7);
  cfg.init_points = 4;
  cfg.max_sims = 12;

  // The same scrambled delivery twice must give the same stream.
  auto drive = [&](AskTellCore& core) {
    std::vector<Vec> suggested;
    auto batch = [&](const std::vector<std::size_t>& order) {
      std::vector<Suggestion> s;
      for (std::size_t i = 0; i < order.size(); ++i) {
        s.push_back(core.suggest());
        suggested.push_back(s.back().x);
      }
      for (const std::size_t idx : order) {
        core.observe(s[idx].tag, ok_outcome(tf.fn(s[idx].x)));
      }
    };
    batch({3, 1, 0, 2});  // the whole init design, scrambled
    core.finish_init();
    batch({1, 3, 2, 0});
    batch({2, 0, 3, 1});
    return suggested;
  };

  AskTellCore a(cfg, tf.bounds);
  AskTellCore b(cfg, tf.bounds);
  const std::vector<Vec> xa = drive(a);
  const std::vector<Vec> xb = drive(b);
  ASSERT_EQ(xa.size(), 12u);
  for (std::size_t i = 0; i < xa.size(); ++i) {
    EXPECT_EQ(xa[i], xb[i]) << "suggestion " << i;
  }
  EXPECT_TRUE(a.pending_tags().empty());
}

TEST(AskTellCoreTest, ObserveRejectsUnknownAndNonPendingTags) {
  const auto tf = circuit::sphere(2);
  auto cfg = quick(Mode::Sequential, 1, 9);
  cfg.init_points = 2;
  AskTellCore core(cfg, tf.bounds);

  EXPECT_THROW(core.observe(0, ok_outcome(1.0)), Error);  // never suggested

  const Suggestion s = core.suggest();
  core.observe(s.tag, ok_outcome(1.0));
  EXPECT_THROW(core.observe(s.tag, ok_outcome(1.0)), Error);  // not pending
}

TEST(AskTellCoreTest, SuggestGuardsBudgetAndInFlightInitDesign) {
  const auto tf = circuit::sphere(2);
  auto cfg = quick(Mode::AsyncBatch, 2, 11);
  cfg.init_points = 2;
  cfg.max_sims = 3;
  AskTellCore core(cfg, tf.bounds);

  const Suggestion s0 = core.suggest();
  const Suggestion s1 = core.suggest();
  // The whole initial design is in flight: a BO proposal has no model.
  EXPECT_THROW(core.suggest(), Error);

  core.observe(s0.tag, ok_outcome(1.0));
  core.observe(s1.tag, ok_outcome(2.0));
  core.suggest();  // issued == max_sims
  EXPECT_THROW(core.suggest(), Error);  // budget exhausted
}

// ---------------------------------------------------------------------------
// Pending-set identity (the value-equality erase bug)
// ---------------------------------------------------------------------------

TEST(AskTellCoreTest, CoincidentallyEqualPendingPointsStayDistinct) {
  const auto tf = circuit::sphere(2);
  auto cfg = quick(Mode::AsyncBatch, 2, 13);
  cfg.init_points = 2;
  AskTellCore seed_core(cfg, tf.bounds);
  seed_core.suggest();
  seed_core.suggest();

  // Forge the situation the old Vec-equality erase got wrong: two
  // pending proposals at the exact same point.
  BoCheckpoint snap = seed_core.make_snapshot(0.0, 0.0, Rng(0).save());
  ASSERT_EQ(snap.prop_x.size(), 2u);
  snap.prop_x[1] = snap.prop_x[0];

  AskTellCore core(cfg, tf.bounds);
  core.restore_snapshot(snap, "forged");
  ASSERT_EQ(core.pending_tags().size(), 2u);
  EXPECT_EQ(core.proposal(0), core.proposal(1));

  // Observing tag 1 must retire exactly tag 1 — not whichever entry
  // happens to compare equal first.
  core.observe(1, ok_outcome(1.0));
  EXPECT_EQ(core.pending_tags().count(0), 1u);
  EXPECT_EQ(core.pending_tags().count(1), 0u);
  EXPECT_THROW(core.observe(1, ok_outcome(1.0)), Error);
  core.observe(0, ok_outcome(2.0));
  EXPECT_TRUE(core.pending_tags().empty());
  EXPECT_EQ(core.num_observations(), 2u);
}

// ---------------------------------------------------------------------------
// Mid-stream snapshot/restore (including mid-batch sync_dirty)
// ---------------------------------------------------------------------------

TEST(AskTellCoreTest, MidBatchSnapshotRestoreContinuesIdentically) {
  const auto tf = circuit::sphere(2);
  auto cfg = quick(Mode::SyncBatch, 4, 17);
  cfg.init_points = 4;
  cfg.max_sims = 16;
  cfg.on_eval_failure = EvalFailurePolicy::Discard;

  AskTellCore a(cfg, tf.bounds);
  for (std::size_t i = 0; i < 4; ++i) {
    const Suggestion s = a.suggest();
    a.observe(s.tag, ok_outcome(tf.fn(s.x)));
  }
  a.finish_init();
  std::vector<Suggestion> batch;
  for (std::size_t i = 0; i < 4; ++i) batch.push_back(a.suggest());
  a.observe(batch[0].tag, ok_outcome(tf.fn(batch[0].x)));
  a.observe(batch[1].tag, ok_outcome(tf.fn(batch[1].x)));

  // Cut mid-batch: two observations absorbed (sync's deferred-update
  // flag is set), two still pending.
  const BoCheckpoint snap = a.make_snapshot(0.0, 0.0, Rng(0).save());
  EXPECT_TRUE(snap.sync_dirty);
  ASSERT_EQ(snap.pending.size(), 2u);

  AskTellCore b(cfg, tf.bounds);
  b.restore_snapshot(snap, "midbatch");

  // Finish the batch identically on both sides. Both remaining outcomes
  // are discarded failures (changed=false): only a restored sync_dirty
  // makes side B run the barrier model update side A runs.
  for (AskTellCore* core : {&a, &b}) {
    core->observe(batch[2].tag, failed_outcome());
    core->observe(batch[3].tag, failed_outcome());
  }
  for (std::size_t i = 0; i < 4; ++i) {
    const Suggestion sa = a.suggest();
    const Suggestion sb = b.suggest();
    EXPECT_EQ(sa.unit_x, sb.unit_x) << "post-restore suggestion " << i;
    EXPECT_EQ(sa.tag, sb.tag);
  }
}

TEST(BoCheckpointJson, SyncDirtyRoundTripsAndDefaultsFalse) {
  BoCheckpoint snap;
  snap.rng = Rng(1).save();
  snap.sup_rng = Rng(2).save();
  snap.sync_dirty = true;
  const std::string payload = snap.to_payload();
  EXPECT_TRUE(BoCheckpoint::parse(payload).sync_dirty);

  // Files written before the field existed: absent means false.
  std::string legacy = payload;
  const std::string field = "\"sync_dirty\":true,";
  const std::size_t pos = legacy.find(field);
  ASSERT_NE(pos, std::string::npos);
  legacy.erase(pos, field.size());
  EXPECT_FALSE(BoCheckpoint::parse(legacy).sync_dirty);
}

// ---------------------------------------------------------------------------
// Async weight-slot rotation (the always-slot-0 bug, behind its flag)
// ---------------------------------------------------------------------------

TEST(AsyncSlotRotation, OffByDefaultAndFingerprinted) {
  BoConfig cfg;
  EXPECT_FALSE(cfg.async_slot_rotation);
  cfg.batch = 4;
  EXPECT_EQ(async_proposal_slot(cfg, 0), 0u);
  EXPECT_EQ(async_proposal_slot(cfg, 7), 0u);  // historical: always slot 0
  cfg.async_slot_rotation = true;
  EXPECT_EQ(async_proposal_slot(cfg, 7), 3u);
  EXPECT_EQ(async_proposal_slot(cfg, 8), 0u);

  // The flag shapes the proposal stream, so it must split the
  // checkpoint-compatibility fingerprint.
  opt::Bounds bounds;
  bounds.lower = {0.0, 0.0};
  bounds.upper = {1.0, 1.0};
  BoConfig off = cfg;
  off.async_slot_rotation = false;
  EXPECT_NE(config_fingerprint(cfg, bounds),
            config_fingerprint(off, bounds));
}

TEST(AsyncSlotRotation, SpreadsPhcboPenaltyHistoriesAcrossSlots) {
  const auto tf = circuit::sphere(2);
  auto base = quick(Mode::AsyncBatch, 3, 23);
  base.acq = AcqKind::Phcbo;
  base.init_points = 6;
  base.max_sims = 15;

  auto slot_loads = [&](bool rotate) {
    auto cfg = base;
    cfg.async_slot_rotation = rotate;
    HandDriver hand(cfg, tf.bounds, tf.fn, cfg.batch);
    hand.run();
    const BoCheckpoint snap =
        hand.core().make_snapshot(0.0, 0.0, Rng(0).save());
    std::vector<std::size_t> loads;
    for (const auto& history : snap.hc_histories) {
      loads.push_back(history.size());
    }
    return loads;
  };

  // Historical behaviour: every async proposal lands in slot 0.
  const auto off = slot_loads(false);
  ASSERT_EQ(off.size(), 3u);
  EXPECT_GT(off[0], 0u);
  EXPECT_EQ(off[1], 0u);
  EXPECT_EQ(off[2], 0u);

  // Rotation: tags spread over the whole per-slot grid.
  const auto on = slot_loads(true);
  ASSERT_EQ(on.size(), 3u);
  EXPECT_GT(on[0], 0u);
  EXPECT_GT(on[1], 0u);
  EXPECT_GT(on[2], 0u);
}

}  // namespace
}  // namespace easybo::bo
