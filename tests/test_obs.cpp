// Tests for the observability layer (src/obs): ScopedTimer / counter
// accounting against null and recording sinks, report assembly, merging,
// and the JSON/CSV export schemas that the CLI and benches emit.

#include "obs/metrics.h"
#include "obs/recording.h"
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace easybo::obs {
namespace {

TEST(TraceSink, NullSinkAcceptsEverything) {
  // The helpers must be safe on nullptr (the production default) and on
  // the explicit NullSink object, and change nothing observable.
  count(nullptr, "gp.chol_extend");
  count(nullptr, "gp.chol_extend", 7);
  { ScopedTimer span(nullptr, Phase::ModelFit); }
  ScopedTimer early(nullptr, Phase::AcqMaximize);
  early.stop();
  early.stop();  // idempotent

  NullSink& sink = NullSink::instance();
  sink.add_time(Phase::HyperRefit, 1.0);
  sink.add_counter("anything", 3);
  { ScopedTimer span(&sink, Phase::InitDesign); }
}

TEST(TraceSink, PhaseNamesAreStableSnakeCase) {
  // These strings are the JSON/CSV keys; renaming one breaks consumers.
  EXPECT_STREQ(to_string(Phase::InitDesign), "init_design");
  EXPECT_STREQ(to_string(Phase::ModelFit), "model_fit");
  EXPECT_STREQ(to_string(Phase::HyperRefit), "hyper_refit");
  EXPECT_STREQ(to_string(Phase::AcqMaximize), "acq_maximize");
  EXPECT_STREQ(to_string(Phase::ObjectiveEval), "objective_eval");
  EXPECT_STREQ(to_string(Phase::ExecutorWait), "executor_wait");
}

TEST(RecordingSink, AccumulatesCountersAndSpans) {
  RecordingSink sink;
  EXPECT_EQ(sink.counter("gp.chol_extend"), 0u);

  count(&sink, "gp.chol_extend");
  count(&sink, "gp.chol_extend", 4);
  count(&sink, "bo.dedup_nudge");
  EXPECT_EQ(sink.counter("gp.chol_extend"), 5u);
  EXPECT_EQ(sink.counter("bo.dedup_nudge"), 1u);
  EXPECT_EQ(sink.counter("never.fired"), 0u);

  { ScopedTimer span(&sink, Phase::ModelFit); }
  { ScopedTimer span(&sink, Phase::ModelFit); }
  EXPECT_EQ(sink.spans(Phase::ModelFit), 2u);
  EXPECT_GE(sink.seconds(Phase::ModelFit), 0.0);
  EXPECT_EQ(sink.spans(Phase::AcqMaximize), 0u);

  sink.add_time(Phase::ObjectiveEval, 2.5);
  sink.add_time(Phase::ObjectiveEval, 1.5);
  EXPECT_DOUBLE_EQ(sink.seconds(Phase::ObjectiveEval), 4.0);
  EXPECT_EQ(sink.spans(Phase::ObjectiveEval), 2u);
}

TEST(RecordingSink, StopEndsTheSpanEarlyAndOnce) {
  RecordingSink sink;
  {
    ScopedTimer span(&sink, Phase::HyperRefit);
    span.stop();
    span.stop();  // second stop is a no-op
  }                // destructor must not double-report
  EXPECT_EQ(sink.spans(Phase::HyperRefit), 1u);
}

TEST(RecordingSink, ResetForgetsEverything) {
  RecordingSink sink;
  count(&sink, "x", 3);
  sink.add_time(Phase::ModelFit, 1.0);
  sink.reset();
  EXPECT_EQ(sink.counter("x"), 0u);
  EXPECT_DOUBLE_EQ(sink.seconds(Phase::ModelFit), 0.0);
  EXPECT_TRUE(sink.report().counters.empty());
}

TEST(RecordingSink, ConcurrentRecordingIsSafe) {
  // Executor workers and the proposer may record at once; run a burst of
  // writers so the TSan CI job can prove the locking (and the plain job
  // at least the arithmetic: totals must not lose increments).
  RecordingSink sink;
  constexpr int kThreads = 4;
  constexpr int kIters = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sink] {
      for (int i = 0; i < kIters; ++i) {
        count(&sink, "shared.counter");
        sink.add_time(Phase::ObjectiveEval, 0.001);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(sink.counter("shared.counter"),
            static_cast<std::uint64_t>(kThreads) * kIters);
  EXPECT_EQ(sink.spans(Phase::ObjectiveEval),
            static_cast<std::uint64_t>(kThreads) * kIters);
}

TEST(RecordingSink, ReportListsAllPhasesAndSortedCounters) {
  RecordingSink sink;
  count(&sink, "zeta", 2);
  count(&sink, "alpha", 1);
  sink.add_time(Phase::AcqMaximize, 0.5);

  const MetricsReport report = sink.report();
  // Every phase appears, declaration order, zeros included.
  ASSERT_EQ(report.phases.size(), kNumPhases);
  EXPECT_EQ(report.phases.front().name, "init_design");
  EXPECT_EQ(report.phases.back().name, "checkpoint");
  EXPECT_DOUBLE_EQ(report.phase_seconds("acq_maximize"), 0.5);
  EXPECT_DOUBLE_EQ(report.phase_seconds("model_fit"), 0.0);
  // Counters sorted by name.
  ASSERT_EQ(report.counters.size(), 2u);
  EXPECT_EQ(report.counters[0].name, "alpha");
  EXPECT_EQ(report.counters[1].name, "zeta");
  EXPECT_EQ(report.counter("zeta"), 2u);
  EXPECT_EQ(report.counter("missing"), 0u);
}

TEST(MetricsReport, MergeSumsByNameAndSlot) {
  RecordingSink a;
  count(&a, "gp.chol_extend", 3);
  a.add_time(Phase::ModelFit, 1.0);
  RecordingSink b;
  count(&b, "gp.chol_extend", 4);
  count(&b, "bo.hyper_refit", 1);
  b.add_time(Phase::ModelFit, 2.0);

  MetricsReport merged = a.report();
  merged.makespan_seconds = 10.0;
  MetricsReport other = b.report();
  other.makespan_seconds = 5.0;
  other.workers.push_back({0, 4.0, 1.0});
  merged.merge(other);

  EXPECT_EQ(merged.counter("gp.chol_extend"), 7u);
  EXPECT_EQ(merged.counter("bo.hyper_refit"), 1u);
  EXPECT_DOUBLE_EQ(merged.phase_seconds("model_fit"), 3.0);
  EXPECT_DOUBLE_EQ(merged.makespan_seconds, 15.0);
  ASSERT_EQ(merged.workers.size(), 1u);
  EXPECT_DOUBLE_EQ(merged.workers[0].busy_seconds, 4.0);
}

// The JSON golden-schema test: consumers (plot scripts, the next perf PR)
// key on these exact strings. A deliberate schema change must update this
// test and the schema comment in obs/metrics.h together.
TEST(MetricsReport, JsonMatchesTheDocumentedSchema) {
  MetricsReport report;
  report.makespan_seconds = 12.5;
  report.phases.push_back({"model_fit", 1.5, 3});
  report.counters.push_back({"gp.chol_extend", 42});
  report.workers.push_back({0, 10.0, 2.5});
  report.evals.push_back({0, "timeout", "discarded", 2, 3, 1.0, 4.5});

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"schema\":\"easybo.metrics.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"makespan_seconds\":12.5"), std::string::npos);
  EXPECT_NE(json.find("\"model_fit\":{\"seconds\":1.5,\"spans\":3}"),
            std::string::npos);
  EXPECT_NE(json.find("\"gp.chol_extend\":42"), std::string::npos);
  EXPECT_NE(json.find("\"worker\":0"), std::string::npos);
  EXPECT_NE(json.find("\"busy_seconds\":10"), std::string::npos);
  EXPECT_NE(json.find("\"idle_seconds\":2.5"), std::string::npos);
  EXPECT_NE(
      json.find("{\"index\":0,\"status\":\"timeout\",\"action\":"
                "\"discarded\",\"attempts\":2,\"worker\":3,\"start\":1,"
                "\"finish\":4.5}"),
      std::string::npos);
  // Top-level sections present in order.
  const auto p_schema = json.find("\"schema\"");
  const auto p_phases = json.find("\"phases\"");
  const auto p_counters = json.find("\"counters\"");
  const auto p_workers = json.find("\"workers\"");
  const auto p_evals = json.find("\"evals\"");
  ASSERT_NE(p_phases, std::string::npos);
  ASSERT_NE(p_counters, std::string::npos);
  ASSERT_NE(p_workers, std::string::npos);
  ASSERT_NE(p_evals, std::string::npos);
  EXPECT_LT(p_schema, p_phases);
  EXPECT_LT(p_phases, p_counters);
  EXPECT_LT(p_counters, p_workers);
  EXPECT_LT(p_workers, p_evals);
  // Balanced braces, no trailing garbage.
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

TEST(MetricsReport, MergeConcatenatesAndReindexesEvalLogs) {
  MetricsReport a;
  a.evals.push_back({0, "ok", "observed", 1, 0, 0.0, 1.0});
  a.evals.push_back({1, "exception", "discarded", 3, 1, 1.0, 2.0});
  MetricsReport b;
  b.evals.push_back({0, "ok", "observed", 1, 0, 0.0, 1.5});

  EXPECT_FALSE(b.empty());  // an eval log alone counts as content
  a.merge(b);
  ASSERT_EQ(a.evals.size(), 3u);
  EXPECT_EQ(a.evals[2].index, 2u);  // re-indexed, not duplicated
  EXPECT_EQ(a.evals[2].status, "ok");
  EXPECT_DOUBLE_EQ(a.evals[2].finish, 1.5);
}

TEST(MetricsReport, CsvRowsCoverEveryDatum) {
  MetricsReport report;
  report.makespan_seconds = 7.0;
  report.phases.push_back({"acq_maximize", 0.25, 5});
  report.counters.push_back({"bo.dedup_nudge", 2});
  report.workers.push_back({1, 6.0, 1.0});

  const std::string csv = report.to_csv();
  EXPECT_EQ(csv.rfind("section,name,value", 0), 0u);  // header first
  EXPECT_NE(csv.find("phase_seconds,acq_maximize,0.25"), std::string::npos);
  EXPECT_NE(csv.find("phase_spans,acq_maximize,5"), std::string::npos);
  EXPECT_NE(csv.find("counter,bo.dedup_nudge,2"), std::string::npos);
  EXPECT_NE(csv.find("worker_busy,1,6"), std::string::npos);
  EXPECT_NE(csv.find("worker_idle,1,1"), std::string::npos);
  EXPECT_NE(csv.find("makespan_seconds,,7"), std::string::npos);
}

TEST(MetricsReport, JsonEscapesCounterNames) {
  MetricsReport report;
  report.counters.push_back({"weird\"name\\x", 1});
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"weird\\\"name\\\\x\":1"), std::string::npos);
}

}  // namespace
}  // namespace easybo::obs
