// Tests for the O(n^2) incremental fit path: Cholesky::extend and the
// GpRegressor append-then-fit fast path must agree exactly with full
// refactorization.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "common/error.h"
#include "common/rng.h"
#include "gp/gp.h"
#include "linalg/cholesky.h"
#include "obs/recording.h"

namespace easybo {
namespace {

using gp::GpRegressor;
using gp::SquaredExponentialArd;
using gp::Vec;
using linalg::Cholesky;
using linalg::Matrix;

Matrix random_spd(std::size_t n, Rng& rng) {
  Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.normal();
  }
  Matrix a = linalg::gram(b);
  a.add_diagonal(static_cast<double>(n));
  return a;
}

TEST(CholeskyExtend, MatchesFullFactorization) {
  Rng rng(1);
  const std::size_t n = 12;
  const Matrix a = random_spd(n + 1, rng);

  // Factor the leading n x n block, then extend with the last column.
  Matrix leading(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) leading(i, j) = a(i, j);
  }
  Cholesky incremental(leading);
  Vec column(n + 1);
  for (std::size_t i = 0; i <= n; ++i) column[i] = a(i, n);
  ASSERT_TRUE(incremental.extend(column));

  const Cholesky full(a);
  EXPECT_TRUE(incremental.factor().approx_equal(full.factor(), 1e-9));
  EXPECT_NEAR(incremental.log_det(), full.log_det(), 1e-9);

  // Solves agree too.
  Vec rhs(n + 1);
  for (auto& v : rhs) v = rng.normal();
  const Vec xi = incremental.solve(rhs);
  const Vec xf = full.solve(rhs);
  for (std::size_t i = 0; i <= n; ++i) EXPECT_NEAR(xi[i], xf[i], 1e-8);
}

TEST(CholeskyExtend, RepeatedExtensionsFromScalar) {
  Rng rng(2);
  const std::size_t n = 20;
  const Matrix a = random_spd(n, rng);
  Matrix first(1, 1);
  first(0, 0) = a(0, 0);
  Cholesky chol(first);
  for (std::size_t k = 1; k < n; ++k) {
    Vec column(k + 1);
    for (std::size_t i = 0; i <= k; ++i) column[i] = a(i, k);
    ASSERT_TRUE(chol.extend(column)) << "at size " << k;
  }
  EXPECT_TRUE(chol.factor().approx_equal(Cholesky(a).factor(), 1e-8));
}

TEST(CholeskyExtend, RefusesIndefiniteExtension) {
  Matrix a = {{1.0}};
  Cholesky chol(a);
  // Extending with a column making the matrix singular/indefinite:
  // [[1, 1], [1, 1]] has determinant 0.
  EXPECT_FALSE(chol.extend({1.0, 1.0}));
  // Factor unchanged after the refusal.
  EXPECT_EQ(chol.size(), 1u);
  EXPECT_DOUBLE_EQ(chol.factor()(0, 0), 1.0);
}

TEST(CholeskyExtend, RejectsWrongColumnSize) {
  Matrix a = {{2.0}};
  Cholesky chol(a);
  EXPECT_THROW(chol.extend({1.0}), InvalidArgument);
}

using linalg::CholeskyExt;

TEST(CholeskyExtView, MatchesInPlaceExtension) {
  Rng rng(21);
  const std::size_t n = 10, k = 3;
  const Matrix a = random_spd(n + k, rng);
  Matrix leading(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) leading(i, j) = a(i, j);
  }
  const Cholesky base(leading);

  // Reference: the owning factor grown column by column.
  Cholesky owned = base;
  CholeskyExt view(&base);
  for (std::size_t c = n; c < n + k; ++c) {
    Vec column(c + 1);
    for (std::size_t i = 0; i <= c; ++i) column[i] = a(i, c);
    ASSERT_TRUE(owned.extend(column));
    ASSERT_TRUE(view.extend(column));
  }
  ASSERT_EQ(view.size(), n + k);
  EXPECT_EQ(view.appended(), k);
  EXPECT_EQ(view.base_size(), n);

  // The view replays the monolithic factor's arithmetic exactly: solves
  // and the log-determinant are bit-identical, not merely close.
  Vec rhs(n + k);
  for (auto& v : rhs) v = rng.normal();
  const Vec xo = owned.solve(rhs);
  const Vec xv = view.solve(rhs);
  for (std::size_t i = 0; i < n + k; ++i) EXPECT_EQ(xv[i], xo[i]);
  const Vec zo = owned.solve_lower(rhs);
  const Vec zv = view.solve_lower(rhs);
  for (std::size_t i = 0; i < n + k; ++i) EXPECT_EQ(zv[i], zo[i]);
  EXPECT_EQ(view.log_det(), owned.log_det());
}

TEST(CholeskyExtView, RefusesIndefiniteExtensionAndKeepsState) {
  Matrix a = {{1.0}};
  const Cholesky base(a);
  CholeskyExt view(&base);
  ASSERT_TRUE(view.extend({0.5, 2.0}));
  // [[1, .5, 1], [.5, 2, ...], [1, ..., 1]] with the last column chosen to
  // destroy positive definiteness.
  EXPECT_FALSE(view.extend({1.0, 0.5, 0.25}));
  // The failed extension left both the view and the base untouched.
  EXPECT_EQ(view.size(), 2u);
  EXPECT_EQ(base.size(), 1u);
  EXPECT_DOUBLE_EQ(base.factor()(0, 0), 1.0);
}

GpRegressor make_gp(std::size_t n, Rng& rng) {
  GpRegressor gp(std::make_unique<SquaredExponentialArd>(1.0, Vec{0.3, 0.4}),
                 1e-4);
  std::vector<Vec> xs(n);
  Vec ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = {rng.uniform(), rng.uniform()};
    ys[i] = rng.normal();
  }
  gp.set_data(std::move(xs), std::move(ys));
  gp.fit();
  return gp;
}

TEST(GpIncrementalFit, AppendOnePointMatchesFullRefit) {
  Rng rng(3);
  auto incremental = make_gp(15, rng);
  GpRegressor full(incremental);

  const Vec x_new = {0.33, 0.77};
  incremental.add_point(x_new, 1.5);
  incremental.fit();  // extend path

  // Force the full path on the copy by resetting the data wholesale in a
  // different order (prefix mismatch -> refactor).
  auto xs = incremental.inputs();
  auto ys = incremental.targets();
  std::swap(xs[0], xs[1]);
  std::swap(ys[0], ys[1]);
  full.set_data(xs, ys);
  full.fit();

  for (int i = 0; i < 20; ++i) {
    const Vec probe = {rng.uniform(), rng.uniform()};
    const auto pi = incremental.predict(probe);
    const auto pf = full.predict(probe);
    EXPECT_NEAR(pi.mean, pf.mean, 1e-8);
    EXPECT_NEAR(pi.var, pf.var, 1e-8);
  }
  EXPECT_NEAR(incremental.log_marginal_likelihood(),
              full.log_marginal_likelihood(), 1e-8);
}

TEST(GpIncrementalFit, ManyAppendsStayConsistent) {
  Rng rng(4);
  auto gp = make_gp(5, rng);
  for (int k = 0; k < 25; ++k) {
    gp.add_point({rng.uniform(), rng.uniform()}, rng.normal());
    gp.fit();
  }
  // Reference: identical data refit from scratch.
  GpRegressor fresh(std::make_unique<SquaredExponentialArd>(
                        1.0, Vec{0.3, 0.4}),
                    1e-4);
  fresh.set_data(gp.inputs(), gp.targets());
  fresh.fit();
  const Vec probe = {0.5, 0.5};
  EXPECT_NEAR(gp.predict(probe).mean, fresh.predict(probe).mean, 1e-7);
  EXPECT_NEAR(gp.predict(probe).var, fresh.predict(probe).var, 1e-7);
}

TEST(GpIncrementalFit, HyperparameterChangeForcesRefactor) {
  Rng rng(5);
  auto gp = make_gp(10, rng);
  auto lp = gp.log_hyperparams();
  lp[1] += 0.5;  // change a lengthscale
  gp.set_log_hyperparams(lp);
  gp.add_point({0.5, 0.5}, 0.0);
  gp.fit();  // must NOT reuse the stale factor
  // Verify against a fresh model with the same hyperparameters.
  GpRegressor fresh(std::make_unique<SquaredExponentialArd>(2), 1e-4);
  fresh.set_data(gp.inputs(), gp.targets());
  fresh.set_log_hyperparams(lp);
  fresh.fit();
  const Vec probe = {0.2, 0.9};
  EXPECT_NEAR(gp.predict(probe).mean, fresh.predict(probe).mean, 1e-9);
  EXPECT_NEAR(gp.predict(probe).var, fresh.predict(probe).var, 1e-9);
}

TEST(GpIncrementalFit, NearDuplicatePointFallsBackGracefully) {
  Rng rng(6);
  auto gp = make_gp(10, rng);
  const Vec existing = gp.inputs().front();
  gp.add_point(existing, gp.targets().front());  // exact duplicate
  EXPECT_NO_THROW(gp.fit());  // falls back to the jittered full factor
  EXPECT_TRUE(gp.fitted());
  EXPECT_TRUE(std::isfinite(gp.predict(existing).mean));
}

// Regression: when the base factor needed escalated jitter, the appended
// diagonals must carry that same jitter. Without it the incremental path
// factors a DIFFERENT matrix than the one the base rows encode — K +
// (noise + j) I on the old block but K + noise I on new rows — and
// predictions silently drift from any full refit by O(jitter).
TEST(GpIncrementalFit, JitteredBaseExtendMatchesEscalatedRefactor) {
  Rng rng(31);
  // Coincident cluster at kernel resolution with noise below double
  // epsilon: the Gram is the exact all-ones matrix, so the first
  // factorization must escalate jitter.
  const std::size_t n = 12;
  std::vector<Vec> xs(n);
  Vec ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = {0.4 + 1e-12 * rng.uniform(), 0.6 + 1e-12 * rng.uniform()};
    ys[i] = rng.normal();
  }
  const double noise = 1e-16;
  GpRegressor gp(std::make_unique<SquaredExponentialArd>(1.0, Vec{0.3, 0.3}),
                 noise);
  gp.set_data(xs, ys);
  gp.fit();
  const double j = gp.factor().jitter_used();
  ASSERT_GT(j, 0.0) << "setup failed to force jitter escalation";

  // Append a well-separated point: the extension itself succeeds.
  easybo::obs::RecordingSink sink;
  gp.set_trace(&sink);
  gp.add_point({0.9, 0.1}, 0.5);
  gp.fit();
  ASSERT_EQ(sink.counter("gp.chol_extend"), 1u);
  ASSERT_EQ(sink.counter("gp.chol_refactor"), 0u);

  // The factor must encode ONE consistent matrix, K + (noise + j) I over
  // all 13 points: reconstruct L L^T and compare entry by entry. The
  // pre-fix behavior left the appended diagonal short by exactly j —
  // orders of magnitude outside this tolerance.
  const SquaredExponentialArd kernel(1.0, Vec{0.3, 0.3});
  const auto& l = gp.factor().factor();
  const auto& all = gp.inputs();
  for (std::size_t i = 0; i < all.size(); ++i) {
    for (std::size_t k = 0; k <= i; ++k) {
      double a_ik = 0.0;
      for (std::size_t t = 0; t <= k; ++t) a_ik += l(i, t) * l(k, t);
      const double expected =
          kernel(all[i], all[k]) + (i == k ? noise + j : 0.0);
      EXPECT_NEAR(a_ik, expected, 1e-2 * j) << "entry " << i << "," << k;
    }
  }
}

// Mid-loop extension failures are work, not progress: the rows extended
// before the failure are discarded by the refactor and reported under
// their own counter so "gp.chol_extend" keeps meaning rows SERVED by the
// fast path.
TEST(GpIncrementalFit, AbandonedExtensionRowsAreCountedSeparately) {
  Rng rng(33);
  // Noise below double precision epsilon: repeated exact duplicates leave
  // no numerical slack, so the extension chain must fail part-way.
  GpRegressor gp(std::make_unique<SquaredExponentialArd>(1.0, Vec{0.3, 0.4}),
                 1e-16);
  std::vector<Vec> xs(8);
  Vec ys(8);
  for (std::size_t i = 0; i < 8; ++i) {
    xs[i] = {rng.uniform(), rng.uniform()};
    ys[i] = rng.normal();
  }
  gp.set_data(std::move(xs), std::move(ys));
  gp.fit();

  easybo::obs::RecordingSink sink;
  gp.set_trace(&sink);
  // One good point (extends fine), then exact duplicates of a fresh point
  // until the covariance collapses and the extension is refused.
  gp.add_point({0.25, 0.75}, 0.1);
  for (int r = 0; r < 3; ++r) gp.add_point({0.5, 0.5}, 0.0);
  gp.fit();
  EXPECT_EQ(sink.counter("gp.chol_extend"), 0u);
  EXPECT_GE(sink.counter("gp.chol_extend_abandoned"), 1u);
  EXPECT_EQ(sink.counter("gp.chol_refactor"), 1u);
  EXPECT_TRUE(gp.fitted());
}

TEST(GpIncrementalFit, FittedReflectsPendingAppends) {
  Rng rng(7);
  auto gp = make_gp(8, rng);
  EXPECT_TRUE(gp.fitted());
  gp.add_point({0.1, 0.1}, 0.0);
  EXPECT_FALSE(gp.fitted());  // factor no longer covers all points
  gp.fit();
  EXPECT_TRUE(gp.fitted());
}

}  // namespace
}  // namespace easybo
