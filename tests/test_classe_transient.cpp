// Tests for the transient class-E simulator: energy conservation,
// steady-state behaviour, the ZVS sweet spot, and agreement with the
// classic class-E design equations and the analytic benchmark model.

#include "circuit/classe_transient.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/error.h"

namespace easybo::circuit {
namespace {

/// Sokal-tuned parameters at 900 MHz for a given loaded R: C1 =
/// 0.1836/(w R), series resonator tuned so its residual reactance is
/// X = 1.1525 R above resonance.
ClassETransientParams sokal_design(double r, double vdd, double ron) {
  ClassETransientParams p;
  p.vdd = vdd;
  p.ron = ron;
  p.r_load = r;
  p.freq = 900e6;
  const double w = 2.0 * std::numbers::pi * p.freq;
  p.c1 = 0.1836 / (w * r);
  // High-Q resonator: pick L0 for Q ~ 8, then set C0 so that
  // w L0 - 1/(w C0) = 1.1525 R.
  p.l0 = 8.0 * r / w;
  const double x_l0 = w * p.l0;
  p.c0 = 1.0 / (w * (x_l0 - 1.1525 * r));
  p.lc = 30.0 * r / w * 10.0;  // big choke
  p.duty = 0.5;
  return p;
}

TEST(ClassETransient, ConvergesToSteadyState) {
  const auto r = simulate_classe_transient(sokal_design(1.5, 2.5, 0.05));
  EXPECT_TRUE(r.converged);
  EXPECT_GT(r.cycles_run, 1u);
  EXPECT_LT(r.cycles_run, 200u);
}

TEST(ClassETransient, NearIdealSwitchIsNearLossless) {
  // With a tiny Ron, the only loss is conduction: drain efficiency should
  // be well above 90% at the Sokal tuning.
  const auto r = simulate_classe_transient(sokal_design(1.5, 2.5, 0.01));
  ASSERT_TRUE(r.converged);
  EXPECT_GT(r.drain_eff, 0.90);
  EXPECT_LE(r.drain_eff, 1.0 + 1e-9);
}

TEST(ClassETransient, OutputPowerNearSokalPrediction) {
  // Pout ~ 0.5768 Vdd^2 / R for the nominal design.
  const double vdd = 2.5, r_load = 1.5;
  const auto r = simulate_classe_transient(sokal_design(r_load, vdd, 0.01));
  ASSERT_TRUE(r.converged);
  const double predicted = 0.5768 * vdd * vdd / r_load;
  EXPECT_NEAR(r.p_out, predicted, 0.35 * predicted);
}

TEST(ClassETransient, PeakSwitchVoltageNear3p56Vdd) {
  const double vdd = 2.0;
  const auto r = simulate_classe_transient(sokal_design(1.5, vdd, 0.01));
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.v_switch_peak, 3.56 * vdd, 0.8 * vdd);
}

TEST(ClassETransient, ZvsNearZeroAtSokalTuning) {
  const double vdd = 2.5;
  const auto tuned = simulate_classe_transient(sokal_design(1.5, vdd, 0.02));
  ASSERT_TRUE(tuned.converged);
  // Turn-on voltage small relative to the peak (~3.56 Vdd).
  EXPECT_LT(tuned.v_switch_at_on, 0.35 * vdd);
}

TEST(ClassETransient, DetuningBreaksZvsAndEfficiency) {
  auto detuned = sokal_design(1.5, 2.5, 0.02);
  detuned.c1 *= 3.0;  // badly over-shunted
  const auto bad = simulate_classe_transient(detuned);
  const auto good = simulate_classe_transient(sokal_design(1.5, 2.5, 0.02));
  ASSERT_TRUE(bad.converged && good.converged);
  EXPECT_LT(bad.drain_eff, good.drain_eff);
}

TEST(ClassETransient, BiggerRonLowersEfficiency) {
  const auto crisp = simulate_classe_transient(sokal_design(1.5, 2.5, 0.02));
  const auto mushy = simulate_classe_transient(sokal_design(1.5, 2.5, 0.6));
  ASSERT_TRUE(crisp.converged && mushy.converged);
  EXPECT_GT(crisp.drain_eff, mushy.drain_eff + 0.1);
}

TEST(ClassETransient, EnergyBalanceHolds) {
  // In steady state, everything the supply delivers goes to the load or
  // the switch: p_out <= p_dc always (passivity).
  for (double ron : {0.02, 0.2, 0.5}) {
    const auto r = simulate_classe_transient(sokal_design(1.5, 2.5, ron));
    ASSERT_TRUE(r.converged);
    EXPECT_GT(r.p_dc, 0.0);
    EXPECT_LE(r.p_out, r.p_dc * (1.0 + 1e-6)) << "ron=" << ron;
  }
}

TEST(ClassETransient, StiffOnPhaseIsStable) {
  // Ron*C1 far below the step size: the trapezoidal integrator must not
  // blow up (an explicit RK would).
  auto p = sokal_design(1.5, 2.5, 0.005);
  p.c1 = 1e-12;
  p.steps_per_cycle = 64;
  const auto r = simulate_classe_transient(p);
  EXPECT_TRUE(std::isfinite(r.p_out));
  EXPECT_TRUE(std::isfinite(r.p_dc));
  EXPECT_LE(r.p_out, r.p_dc + 1e-6);
}

TEST(ClassETransient, ResolutionConvergence) {
  // Doubling the step resolution should barely change the measured power.
  auto lo = sokal_design(1.5, 2.5, 0.05);
  lo.steps_per_cycle = 256;
  auto hi = lo;
  hi.steps_per_cycle = 1024;
  const auto rl = simulate_classe_transient(lo);
  const auto rh = simulate_classe_transient(hi);
  ASSERT_TRUE(rl.converged && rh.converged);
  EXPECT_NEAR(rl.p_out, rh.p_out, 0.05 * rh.p_out);
  EXPECT_NEAR(rl.drain_eff, rh.drain_eff, 0.05);
}

TEST(ClassETransient, RejectsNonPhysicalParameters) {
  ClassETransientParams p;
  p.vdd = 0.0;
  EXPECT_THROW(simulate_classe_transient(p), InvalidArgument);
  p = ClassETransientParams{};
  p.duty = 1.0;
  EXPECT_THROW(simulate_classe_transient(p), InvalidArgument);
  p = ClassETransientParams{};
  p.steps_per_cycle = 4;
  EXPECT_THROW(simulate_classe_transient(p), InvalidArgument);
}

TEST(ClassETransient, DeterministicResults) {
  const auto a = simulate_classe_transient(sokal_design(1.5, 2.5, 0.1));
  const auto b = simulate_classe_transient(sokal_design(1.5, 2.5, 0.1));
  EXPECT_DOUBLE_EQ(a.p_out, b.p_out);
  EXPECT_DOUBLE_EQ(a.p_dc, b.p_dc);
}

}  // namespace
}  // namespace easybo::circuit
