// Tests for the class-E PA benchmark: physical sanity, tuning behaviour
// (the ZVS ridge), and whole-box robustness.

#include "circuit/classe.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/error.h"
#include "common/rng.h"

namespace easybo::circuit {
namespace {

// A deliberately decent design: moderate R transformation, shunt/reactance
// near the Sokal optimum, 50% effective duty.
Vec decent_design() {
  //      w    wd   vg   vb   duty vdd  c1    l0   c0    lm   cm    lc
  return {5.0, 0.4, 1.6, 0.9, 0.5, 2.2, 25.0, 2.0, 40.0, 1.0, 30.0, 80.0};
}

TEST(ClassE, PhysicalRanges) {
  const auto p = evaluate_classe(decent_design());
  EXPECT_GT(p.pout_w, 0.0);
  EXPECT_LT(p.pout_w, 20.0);
  EXPECT_LT(p.pae, 1.0);
  EXPECT_GT(p.pae, -1.0);
  EXPECT_LE(p.drain_eff, 1.0);
  EXPECT_GE(p.drain_eff, 0.0);
  EXPECT_GT(p.r_loaded, 0.0);
  EXPECT_LT(p.r_loaded, kClassELoadOhm + 1.0);
}

TEST(ClassE, FomMatchesDefinition) {
  const auto p = evaluate_classe(decent_design());
  EXPECT_NEAR(p.fom, 3.0 * p.pae + p.pout_w, 1e-12);
  EXPECT_NEAR(classe_fom(decent_design()), p.fom, 1e-12);
}

TEST(ClassE, PaeNeverExceedsDrainEfficiency) {
  // PAE subtracts the drive power: it must be below drain efficiency.
  Rng rng(1);
  const auto b = classe_bounds();
  for (int i = 0; i < 200; ++i) {
    Vec x(b.dim());
    for (std::size_t j = 0; j < x.size(); ++j) {
      x[j] = rng.uniform(b.lower[j], b.upper[j]);
    }
    const auto p = evaluate_classe(x);
    EXPECT_LE(p.pae, p.drain_eff + 1e-9);
  }
}

TEST(ClassE, HigherSupplyMoreOutputPowerBelowBreakdown) {
  auto x = decent_design();
  x[5] = 1.5;
  const auto low = evaluate_classe(x);
  x[5] = 2.2;  // still below the soft-breakdown knee
  const auto high = evaluate_classe(x);
  EXPECT_GT(high.pout_w, low.pout_w);
}

TEST(ClassE, BreakdownPenaltyKicksInAtHighVdd) {
  // Drain efficiency must fall when 3.56*Vdd crosses the knee.
  auto x = decent_design();
  x[5] = 2.2;
  const auto safe = evaluate_classe(x);
  x[5] = 3.0;
  const auto stressed = evaluate_classe(x);
  EXPECT_LT(stressed.drain_eff, safe.drain_eff);
}

TEST(ClassE, DutyCyclePenaltySymmetricAroundOptimum) {
  // With vb at the neutral 0.9 V, duty 0.5 is optimal and deviations hurt.
  auto x = decent_design();
  x[3] = 0.9;
  x[4] = 0.5;
  const auto tuned = evaluate_classe(x);
  x[4] = 0.65;
  const auto high = evaluate_classe(x);
  x[4] = 0.35;
  const auto low = evaluate_classe(x);
  EXPECT_GT(tuned.drain_eff, high.drain_eff);
  EXPECT_GT(tuned.drain_eff, low.drain_eff);
}

TEST(ClassE, BiasShiftCompensatesDutyOffset) {
  // duty=0.56 with vb=0.5 gives duty_eff = 0.5 — the interaction the
  // optimizer exploits. It must beat duty=0.56 at neutral bias.
  auto x = decent_design();
  x[4] = 0.56;
  x[3] = 0.5;  // duty_eff = 0.56 + 0.15*(0.5-0.9) = 0.5
  const auto compensated = evaluate_classe(x);
  x[3] = 0.9;  // duty_eff = 0.56
  const auto off = evaluate_classe(x);
  EXPECT_GT(compensated.drain_eff, off.drain_eff);
}

TEST(ClassE, ShuntCapDetuningHurts) {
  auto x = decent_design();
  const auto base = evaluate_classe(x);
  x[6] = 0.1;  // way under the ZVS optimum
  const auto detuned = evaluate_classe(x);
  EXPECT_GT(base.drain_eff, detuned.drain_eff);
}

TEST(ClassE, BiggerChokeNeverHurts) {
  auto x = decent_design();
  x[11] = 10.0;
  const auto small = evaluate_classe(x);
  x[11] = 100.0;
  const auto big = evaluate_classe(x);
  EXPECT_GE(big.drain_eff, small.drain_eff);
}

TEST(ClassE, UndersizedDriverCostsEfficiency) {
  auto x = decent_design();
  x[1] = 0.02;  // tiny driver for a 5 mm switch
  const auto weak = evaluate_classe(x);
  x[1] = 0.5;
  const auto strong = evaluate_classe(x);
  EXPECT_GT(strong.drain_eff, weak.drain_eff);
}

TEST(ClassE, MatchingNetworkTransformsDown) {
  // Larger Cm -> larger Q -> smaller transformed R.
  auto x = decent_design();
  x[10] = 10.0;
  const auto mild = evaluate_classe(x);
  x[10] = 45.0;
  const auto strong = evaluate_classe(x);
  EXPECT_LT(strong.r_loaded, mild.r_loaded);
}

TEST(ClassE, WholeBoxEvaluatesFinite) {
  Rng rng(2);
  const auto b = classe_bounds();
  ASSERT_EQ(b.dim(), kClassEDim);
  for (int i = 0; i < 500; ++i) {
    Vec x(b.dim());
    for (std::size_t j = 0; j < x.size(); ++j) {
      x[j] = rng.uniform(b.lower[j], b.upper[j]);
    }
    const auto p = evaluate_classe(x);
    EXPECT_TRUE(std::isfinite(p.fom));
    EXPECT_TRUE(std::isfinite(p.pae));
    EXPECT_TRUE(std::isfinite(p.pout_w));
  }
}

TEST(ClassE, DeterministicEvaluation) {
  const auto a = evaluate_classe(decent_design());
  const auto b = evaluate_classe(decent_design());
  EXPECT_DOUBLE_EQ(a.fom, b.fom);
}

TEST(ClassE, RejectsWrongDimension) {
  EXPECT_THROW(evaluate_classe({1.0}), InvalidArgument);
}

}  // namespace
}  // namespace easybo::circuit
