// Tests for the storage fault-injection seam (src/io/fs_fault.h) and for
// the journal/snapshot primitives' behaviour under it: deterministic
// every-Nth schedules, channel precedence, the fault budget, the path
// filter — and the load-bearing guarantee that a failed journal append
// rolls the file back to exactly its pre-append bytes.

#include "io/fs_fault.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <filesystem>
#include <string>

#include "io/journal.h"

namespace easybo::io {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "easybo_fsfault_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

TEST(FsFault, NoInjectorMeansNoAction) {
  ASSERT_EQ(installed_fs_faults(), nullptr);
  const FsFaultAction a = fs_fault_check(FsOp::Write, "whatever");
  EXPECT_EQ(a.err, 0);
  EXPECT_FALSE(a.short_write);
  EXPECT_FALSE(a.torn_rename);
  EXPECT_EQ(a.stall_seconds, 0.0);
}

TEST(FsFault, EveryNthFsyncFailsWithEnospc) {
  FsFaultPlan plan;
  plan.enospc_every = 2;
  FsFaultInjector inj(plan);
  // The enospc channel counts only fsyncs; interleaved writes are
  // invisible to it.
  EXPECT_EQ(inj.check(FsOp::Fsync, "f").err, 0);
  EXPECT_EQ(inj.check(FsOp::Write, "f").err, 0);
  EXPECT_EQ(inj.check(FsOp::Write, "f").err, 0);
  EXPECT_EQ(inj.check(FsOp::Fsync, "f").err, ENOSPC);
  EXPECT_EQ(inj.check(FsOp::Fsync, "f").err, 0);
  EXPECT_EQ(inj.check(FsOp::Fsync, "f").err, ENOSPC);
  EXPECT_EQ(inj.faults(), 2u);
}

TEST(FsFault, MaxFaultsCapsInjectionThenLetsOperationsProceed) {
  FsFaultPlan plan;
  plan.eio_every = 1;
  plan.max_faults = 2;
  FsFaultInjector inj(plan);
  EXPECT_EQ(inj.check(FsOp::Read, "f").err, EIO);
  EXPECT_EQ(inj.check(FsOp::Open, "f").err, EIO);
  EXPECT_EQ(inj.check(FsOp::Write, "f").err, 0);
  EXPECT_EQ(inj.check(FsOp::Fsync, "f").err, 0);
  EXPECT_EQ(inj.faults(), 2u);
}

TEST(FsFault, PathFilterMakesOtherFilesIneligibleAndUncounted) {
  FsFaultPlan plan;
  plan.eio_every = 2;
  plan.path_contains = "alpha";
  FsFaultInjector inj(plan);
  // Non-matching paths neither fault nor advance the schedule.
  EXPECT_EQ(inj.check(FsOp::Write, "/state/beta.journal").err, 0);
  EXPECT_EQ(inj.check(FsOp::Write, "/state/alpha.journal").err, 0);
  EXPECT_EQ(inj.check(FsOp::Write, "/state/beta.journal").err, 0);
  EXPECT_EQ(inj.check(FsOp::Write, "/state/alpha.journal").err, EIO);
  EXPECT_EQ(inj.ops(), 2u);
}

TEST(FsFault, TornRenamePrecedesEioOnTheSameOperation) {
  FsFaultPlan plan;
  plan.eio_every = 1;
  plan.torn_rename_every = 1;
  FsFaultInjector inj(plan);
  const FsFaultAction a = inj.check(FsOp::Rename, "f");
  EXPECT_TRUE(a.torn_rename);
  EXPECT_EQ(a.err, EIO);
  // One operation, one fault — precedence picks a channel, not a stack.
  EXPECT_EQ(inj.faults(), 1u);
}

TEST(FsFault, ScopedInstallRestoresThePreviousInjector) {
  ASSERT_EQ(installed_fs_faults(), nullptr);
  {
    ScopedFsFaults outer(FsFaultPlan{});
    EXPECT_EQ(installed_fs_faults(), &outer.injector());
    {
      ScopedFsFaults inner(FsFaultPlan{});
      EXPECT_EQ(installed_fs_faults(), &inner.injector());
    }
    EXPECT_EQ(installed_fs_faults(), &outer.injector());
  }
  EXPECT_EQ(installed_fs_faults(), nullptr);
}

TEST(FsFault, FailedAppendLeavesTheJournalBitIdentical) {
  const std::string dir = fresh_dir("append_rollback");
  const std::string path = dir + "/j.journal";
  JournalWriter w;
  w.open(path);
  w.append("alpha");
  w.append("beta");
  const std::string before = read_file(path);

  // Channel per failure mode; every one must leave the file untouched.
  struct Case {
    const char* name;
    FsFaultPlan plan;
  };
  FsFaultPlan enospc;
  enospc.enospc_every = 1;
  FsFaultPlan eio;
  eio.eio_every = 1;
  FsFaultPlan shortw;
  shortw.short_write_every = 1;
  for (const Case& c : {Case{"enospc", enospc}, Case{"eio", eio},
                        Case{"short_write", shortw}}) {
    SCOPED_TRACE(c.name);
    {
      ScopedFsFaults faults(c.plan);
      EXPECT_THROW(w.append("gamma"), CheckpointError);
    }
    EXPECT_EQ(read_file(path), before);
    // The writer is still usable and the reader still sees two intact
    // records with no torn tail.
    const JournalReadResult r = read_journal(path);
    EXPECT_EQ(r.payloads.size(), 2u);
    EXPECT_FALSE(r.torn_tail);
  }
  // After the faults clear, appends continue from the rolled-back end.
  w.append("gamma");
  const JournalReadResult r = read_journal(path);
  ASSERT_EQ(r.payloads.size(), 3u);
  EXPECT_EQ(r.payloads[2], "gamma");
  EXPECT_FALSE(r.torn_tail);
}

TEST(FsFault, TornRenameLeavesAHalfWrittenDestinationAndThrows) {
  const std::string dir = fresh_dir("torn_rename");
  const std::string path = dir + "/file.snapshot";
  atomic_write_file(path, frame_line("the old complete content") + "\n");
  const std::string next = frame_line(std::string(200, 'x')) + "\n";
  {
    FsFaultPlan plan;
    plan.torn_rename_every = 1;
    ScopedFsFaults faults(plan);
    EXPECT_THROW(atomic_write_file(path, next), CheckpointError);
  }
  // The destination is a truncated prefix of the NEW content — the
  // non-atomic-replace disaster the snapshot fallback exists for.
  const std::string after = read_file(path);
  EXPECT_EQ(after, next.substr(0, next.size() / 2));
  const JournalReadResult r = read_journal(path);
  EXPECT_TRUE(r.payloads.empty());
  EXPECT_TRUE(r.torn_tail);
}

TEST(FsFault, EnospcOnSnapshotWriteLeavesTheOldSnapshotInPlace) {
  const std::string dir = fresh_dir("enospc_snapshot");
  const std::string path = dir + "/file.snapshot";
  const std::string old_content = frame_line("old") + "\n";
  atomic_write_file(path, old_content);
  {
    FsFaultPlan plan;
    plan.enospc_every = 1;
    ScopedFsFaults faults(plan);
    EXPECT_THROW(atomic_write_file(path, frame_line("new") + "\n"),
                 CheckpointError);
  }
  // The fsync of the tmp file failed before any rename: the destination
  // still holds the old complete version.
  EXPECT_EQ(read_file(path), old_content);
}

TEST(FsFault, TryRenameRotatesAndReportsMissingSource) {
  const std::string dir = fresh_dir("try_rename");
  const std::string a = dir + "/a";
  const std::string b = dir + "/b";
  EXPECT_FALSE(try_rename_file(a, b));  // nothing to rotate yet
  atomic_write_file(a, "payload");
  EXPECT_TRUE(try_rename_file(a, b));
  EXPECT_FALSE(file_exists(a));
  EXPECT_EQ(read_file(b), "payload");
}

}  // namespace
}  // namespace easybo::io
