// Deadline-bounded serving: cooperative cancellation parity (a cut
// suggest consumed nothing — seeded sweeps with injected cuts + retries
// reproduce the uninterrupted proposal stream bit-identically, in both
// session modes and across a host restart), the worker pool's
// workers=0-vs-pooled equivalence, deadline cuts and rollback through
// the host, queue-wait shedding, the watchdog + quarantine ladder for
// requests that ignore cancellation, the STATUS try-lock busy fast path
// and the serve.* counter mirroring.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/stop_token.h"
#include "io/json.h"
#include "obs/recording.h"
#include "serve/host.h"
#include "serve/session.h"
#include "serve/session_config.h"

namespace easybo::serve {
namespace {

using linalg::Vec;
using namespace std::chrono_literals;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "easybo_deadline_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string config_json(std::uint64_t seed, bo::Mode mode,
                        std::size_t batch) {
  bo::BoConfig cfg;
  cfg.mode = mode;
  cfg.acq = bo::AcqKind::EasyBo;
  cfg.penalize = true;
  cfg.batch = batch;
  cfg.init_points = 3;
  cfg.max_sims = 7;
  cfg.seed = seed;
  cfg.on_eval_failure = bo::EvalFailurePolicy::Discard;
  cfg.acq_opt.sobol_candidates = 32;
  cfg.acq_opt.random_candidates = 16;
  cfg.acq_opt.refine_evals = 15;
  cfg.trainer.max_iters = 8;
  cfg.trainer.restarts = 1;
  opt::Bounds bounds;
  bounds.lower = {0.0, 0.0};
  bounds.upper = {1.0, 1.0};
  return session_config_json(cfg, bounds);
}

double objective_of(const Vec& x) {
  double s = 0.0;
  for (const double v : x) s += std::sin(3.0 * v) + v * v;
  return s;
}

struct Suggested {
  std::size_t tag = 0;
  Vec x;
};

Suggested parse_suggest_reply(const std::string& reply) {
  EXPECT_EQ(reply.rfind("OK ", 0), 0u) << reply;
  const io::JsonValue j = io::parse_json(reply.substr(3));
  Suggested s;
  s.tag = static_cast<std::size_t>(j.at("tag").as_double());
  for (const auto& v : j.at("x").as_array()) s.x.push_back(v.as_double());
  return s;
}

std::vector<Vec> drive_to_exhaustion(SessionHost& host,
                                     const std::string& name) {
  std::vector<Vec> xs;
  for (;;) {
    const std::string reply = host.handle_line("SUGGEST " + name);
    if (reply.rfind("ERR ", 0) == 0) {
      EXPECT_NE(reply.find("budget exhausted"), std::string::npos) << reply;
      break;
    }
    const Suggested s = parse_suggest_reply(reply);
    xs.push_back(s.x);
    const std::string ob = host.handle_line(
        "OBSERVE " + name + " " + std::to_string(s.tag) + " " +
        io::json_number(objective_of(s.x)));
    EXPECT_EQ(ob.rfind("OK ", 0), 0u) << ob;
  }
  return xs;
}

/// The uninterrupted reference stream, straight through Session.
std::vector<Vec> reference_stream(const std::string& cfg,
                                  const std::string& dir) {
  auto s = Session::create("ref", parse_session_config(cfg), dir + "/ref");
  std::vector<Vec> xs;
  for (;;) {
    bo::Suggestion sg;
    try {
      sg = s->suggest();
    } catch (const Error&) {
      break;  // budget exhausted
    }
    xs.push_back(sg.x);
    s->observe_ok(sg.tag, objective_of(sg.x));
  }
  return xs;
}

/// Drives the same config while injecting deterministic cuts: each
/// suggest first runs under an after_polls(c) token; when the token
/// fires, the dirty session object is DISCARDED (the rollback the serve
/// layer performs), the session is resumed from its files, and the
/// suggest retried uninterrupted. Returns the proposal stream and the
/// number of cuts actually taken.
std::vector<Vec> cut_and_retry_stream(const std::string& cfg,
                                      const std::string& dir,
                                      std::size_t* cuts_out) {
  const std::string base = dir + "/cut";
  auto s = Session::create("cut", parse_session_config(cfg), base);
  std::vector<Vec> xs;
  std::size_t cuts = 0;
  // Deterministic cut points: 0 cuts at admission, small values cut the
  // init-phase and early model math, larger ones land mid-training or
  // mid-screening; values the computation outlives simply don't fire
  // (polling consumes no RNG, so a survived token changes nothing).
  const std::uint64_t cycle[] = {0, 1, 3, 7, 2, 30, 0, 5, 12, 1};
  std::size_t ci = 0;
  for (;;) {
    const common::StopToken token =
        common::StopToken::after_polls(cycle[ci++ % 10]);
    bo::Suggestion sg;
    try {
      sg = s->suggest(&token);
    } catch (const common::Cancelled&) {
      // The serve layer's rollback: drop the dirty object, resume from
      // the files (which never saw the cut suggest), retry clean.
      ++cuts;
      s.reset();
      s = Session::resume("cut", parse_session_config(cfg), base);
      try {
        sg = s->suggest();
      } catch (const Error&) {
        break;  // the retry found the budget exhausted
      }
    } catch (const Error&) {
      break;  // budget exhausted
    }
    xs.push_back(sg.x);
    s->observe_ok(sg.tag, objective_of(sg.x));
  }
  *cuts_out = cuts;
  return xs;
}

void expect_same_stream(const std::vector<Vec>& got,
                        const std::vector<Vec>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "proposal " << i << " diverged";
  }
}

TEST(ServeDeadline, CutSuggestsConsumeNothingSequentialMode) {
  const std::string dir = fresh_dir("parity_seq");
  const std::string cfg = config_json(4242, bo::Mode::Sequential, 1);
  const std::vector<Vec> want = reference_stream(cfg, dir);
  ASSERT_GE(want.size(), 5u);
  std::size_t cuts = 0;
  const std::vector<Vec> got = cut_and_retry_stream(cfg, dir, &cuts);
  // The cycle starts with an admission cut, so at least the first
  // suggest plus some mid-computation ones were rolled back.
  EXPECT_GE(cuts, 2u);
  expect_same_stream(got, want);
}

TEST(ServeDeadline, CutSuggestsConsumeNothingAsyncBatchMode) {
  const std::string dir = fresh_dir("parity_async");
  const std::string cfg = config_json(777, bo::Mode::AsyncBatch, 2);
  const std::vector<Vec> want = reference_stream(cfg, dir);
  ASSERT_GE(want.size(), 5u);
  std::size_t cuts = 0;
  const std::vector<Vec> got = cut_and_retry_stream(cfg, dir, &cuts);
  EXPECT_GE(cuts, 2u);
  expect_same_stream(got, want);
}

TEST(ServeDeadline, PooledHostReproducesDirectHostStreams) {
  // workers=0 (direct) and a pooled host with a generous deadline must
  // produce bit-identical streams: the pool only moves WHERE a command
  // runs, never what it computes.
  const std::string cfg = config_json(99, bo::Mode::Sequential, 1);
  std::vector<Vec> direct;
  {
    SessionHost host(fresh_dir("pool_direct"), 4);
    ASSERT_EQ(host.handle_line("NEW a " + cfg).rfind("OK ", 0), 0u);
    direct = drive_to_exhaustion(host, "a");
    ASSERT_FALSE(direct.empty());
  }
  HostLimits limits;
  limits.serve_workers = 2;
  limits.request_deadline_s = 60.0;  // generous: sanitizers are slow
  limits.queue_wait_s = 0.0;         // never shed in this test
  SessionHost pooled(fresh_dir("pool_pooled"), 4, limits);
  ASSERT_EQ(pooled.handle_line("NEW a " + cfg).rfind("OK ", 0), 0u);
  expect_same_stream(drive_to_exhaustion(pooled, "a"), direct);
  EXPECT_EQ(pooled.deadline_cut_count(), 0u);
  EXPECT_EQ(pooled.queue_shed_count(), 0u);
  EXPECT_EQ(pooled.watchdog_trip_count(), 0u);
}

TEST(ServeDeadline, DeadlineCutRollsBackAndSurvivesRestart) {
  const std::string cfg = config_json(1234, bo::Mode::Sequential, 1);
  // Reference: the first proposal of an undisturbed host.
  Vec first_x;
  {
    SessionHost ref(fresh_dir("cutref"), 4);
    ASSERT_EQ(ref.handle_line("NEW s " + cfg).rfind("OK ", 0), 0u);
    first_x = parse_suggest_reply(ref.handle_line("SUGGEST s")).x;
  }

  const std::string dir = fresh_dir("cut");
  HostLimits limits;
  limits.serve_workers = 2;
  limits.request_deadline_s = 0.15;
  limits.watchdog_grace_s = 10.0;  // cooperative cut, not a watchdog trip
  limits.queue_wait_s = 0.0;
  obs::RecordingSink sink;
  {
    SessionHost host(dir, 4, limits);
    host.set_trace(&sink);
    ASSERT_EQ(host.handle_line("NEW s " + cfg).rfind("OK ", 0), 0u);
    SessionHost::DebugSlowdown slow;
    slow.session = "s";
    slow.sleep_s = 5.0;  // cooperative: the token cuts it at ~150ms
    host.set_debug_slowdown(slow);
    const std::string reply = host.handle_line("SUGGEST s");
    EXPECT_EQ(reply.rfind("ERR deadline s", 0), 0u) << reply;
    EXPECT_NE(reply.find("retry"), std::string::npos) << reply;
    EXPECT_EQ(host.deadline_cut_count(), 1u);
    EXPECT_EQ(host.watchdog_trip_count(), 0u);
    EXPECT_EQ(sink.counter("serve.deadline_cut"), 1u);
    EXPECT_FALSE(host.is_quarantined("s"));
    // Retry on the same host, slowdown cleared: identical first proposal
    // — the cut consumed nothing.
    host.set_debug_slowdown({});
    const Suggested retried = parse_suggest_reply(host.handle_line("SUGGEST s"));
    EXPECT_EQ(retried.tag, 0u);
    EXPECT_EQ(retried.x, first_x);
    host.set_trace(nullptr);
  }
  // And a cut survives process death too (restart analogue): nothing of
  // it ever reached the files.
  std::filesystem::remove_all(dir);
  {
    SessionHost host(dir, 4, limits);
    ASSERT_EQ(host.handle_line("NEW s " + cfg).rfind("OK ", 0), 0u);
    SessionHost::DebugSlowdown slow;
    slow.session = "s";
    slow.sleep_s = 5.0;
    host.set_debug_slowdown(slow);
    EXPECT_EQ(host.handle_line("SUGGEST s").rfind("ERR deadline", 0), 0u);
  }
  SessionHost reopened(dir, 4, limits);
  const Suggested after = parse_suggest_reply(reopened.handle_line("SUGGEST s"));
  EXPECT_EQ(after.tag, 0u);
  EXPECT_EQ(after.x, first_x);
}

TEST(ServeDeadline, WatchdogQuarantinesOnlyTheRunawaySession) {
  const std::string cfg = config_json(31, bo::Mode::Sequential, 1);
  HostLimits limits;
  limits.serve_workers = 2;
  limits.request_deadline_s = 0.1;
  limits.watchdog_grace_s = 0.1;
  limits.queue_wait_s = 0.0;
  obs::RecordingSink sink;
  SessionHost host(fresh_dir("watchdog"), 4, limits);
  host.set_trace(&sink);
  ASSERT_EQ(host.handle_line("NEW stuck " + cfg).rfind("OK ", 0), 0u);
  ASSERT_EQ(host.handle_line("NEW fine " + config_json(32, bo::Mode::Sequential, 1))
                .rfind("OK ", 0),
            0u);

  SessionHost::DebugSlowdown slow;
  slow.session = "stuck";
  slow.sleep_s = 0.6;
  slow.ignore_stop = true;  // no safe checkpoints: the watchdog case
  host.set_debug_slowdown(slow);

  const std::string reply = host.handle_line("SUGGEST stuck");
  EXPECT_EQ(reply.rfind("ERR deadline stuck", 0), 0u) << reply;
  EXPECT_NE(reply.find("watchdog"), std::string::npos) << reply;
  EXPECT_EQ(host.watchdog_trip_count(), 1u);
  EXPECT_EQ(sink.counter("serve.watchdog_trips"), 1u);

  // While the runaway still executes, commands on its session refuse
  // fast (poisoned or, once the quarantine lands, quarantined) — they
  // never queue behind its lock.
  const std::string while_stuck = host.handle_line("SUGGEST stuck");
  EXPECT_EQ(while_stuck.rfind("ERR ", 0), 0u) << while_stuck;

  // The OTHER session is entirely unaffected throughout.
  EXPECT_EQ(host.handle_line("SUGGEST fine").rfind("OK ", 0), 0u);

  // Once the runaway computation returns, the quarantine lands (and the
  // pre-commit token gate means it committed nothing).
  bool quarantined = false;
  for (int spin = 0; spin < 2000 && !quarantined; ++spin) {
    quarantined = host.is_quarantined("stuck");
    if (!quarantined) std::this_thread::sleep_for(5ms);
  }
  EXPECT_TRUE(quarantined);
  EXPECT_EQ(host.quarantined_count(), 1u);
  const std::string q = host.handle_line("SUGGEST stuck");
  EXPECT_EQ(q.rfind("ERR quarantined stuck", 0), 0u) << q;

  // CLOSE clears the quarantine; the rolled-back session then serves its
  // very first proposal — the runaway consumed nothing.
  host.set_debug_slowdown({});
  EXPECT_EQ(host.handle_line("CLOSE stuck").rfind("OK ", 0), 0u);
  const Suggested s = parse_suggest_reply(host.handle_line("SUGGEST stuck"));
  EXPECT_EQ(s.tag, 0u);
  host.set_trace(nullptr);
}

TEST(ServeDeadline, QueueWaitCapShedsStaleRequests) {
  const std::string cfg_a = config_json(61, bo::Mode::Sequential, 1);
  const std::string cfg_b = config_json(62, bo::Mode::Sequential, 1);
  HostLimits limits;
  limits.serve_workers = 1;  // one worker serializes the two sessions
  limits.request_deadline_s = 0.0;  // no deadline: isolate the wait cap
  limits.queue_wait_s = 0.05;
  SessionHost host(fresh_dir("waitcap"), 4, limits);
  ASSERT_EQ(host.handle_line("NEW a " + cfg_a).rfind("OK ", 0), 0u);
  ASSERT_EQ(host.handle_line("NEW b " + cfg_b).rfind("OK ", 0), 0u);

  SessionHost::DebugSlowdown slow;
  slow.session = "a";
  slow.sleep_s = 0.3;  // cooperative, but no deadline: runs to completion
  host.set_debug_slowdown(slow);

  std::string slow_reply;
  std::thread slow_client([&] { slow_reply = host.handle_line("SUGGEST a"); });
  // Wait until the slow SUGGEST occupies the single worker.
  for (int spin = 0; spin < 2000; ++spin) {
    if (host.handle_line("STATUS").find("\"inflight\":1") !=
        std::string::npos) {
      break;
    }
    std::this_thread::sleep_for(1ms);
  }
  // b's request sits queued behind a's 300ms sleep — far past the 50ms
  // cap — and is shed at dequeue without touching the session.
  const std::string shed = host.handle_line("SUGGEST b");
  EXPECT_EQ(shed.rfind("ERR busy", 0), 0u) << shed;
  EXPECT_NE(shed.find("queue-wait cap"), std::string::npos) << shed;
  EXPECT_GE(host.queue_shed_count(), 1u);
  slow_client.join();
  EXPECT_EQ(slow_reply.rfind("OK ", 0), 0u) << slow_reply;

  // The shed left no mark: b's stream starts at tag 0.
  host.set_debug_slowdown({});
  EXPECT_EQ(parse_suggest_reply(host.handle_line("SUGGEST b")).tag, 0u);
}

TEST(ServeDeadline, StatusBusyFastPathServesCachedSummary) {
  const std::string cfg = config_json(71, bo::Mode::Sequential, 1);
  SessionHost host(fresh_dir("statusbusy"), 4);  // direct mode
  ASSERT_EQ(host.handle_line("NEW s " + cfg).rfind("OK ", 0), 0u);
  // Populate the cache with one completed command.
  ASSERT_EQ(host.handle_line("STATUS s").rfind("OK ", 0), 0u);

  SessionHost::DebugSlowdown slow;
  slow.session = "s";
  slow.sleep_s = 0.4;
  host.set_debug_slowdown(slow);
  std::string suggest_reply;
  std::thread client([&] { suggest_reply = host.handle_line("SUGGEST s"); });

  // While the SUGGEST holds the slot lock, STATUS answers immediately
  // from the cache instead of queueing behind the model math.
  bool saw_busy = false;
  for (int spin = 0; spin < 2000 && !saw_busy; ++spin) {
    const std::string status = host.handle_line("STATUS s");
    ASSERT_EQ(status.rfind("OK ", 0), 0u) << status;
    const io::JsonValue j = io::parse_json(status.substr(3));
    if (j.find("busy") != nullptr && j.at("busy").as_bool()) {
      saw_busy = true;
      // The cached summary is the full status object of the last
      // completed command.
      ASSERT_TRUE(j.find("last") != nullptr);
      EXPECT_EQ(j.at("last").at("name").as_string(), "s");
    } else {
      std::this_thread::sleep_for(1ms);
    }
  }
  EXPECT_TRUE(saw_busy);
  client.join();
  EXPECT_EQ(suggest_reply.rfind("OK ", 0), 0u) << suggest_reply;
  // Uncontended again: the normal status object, no "busy" marker.
  const std::string status = host.handle_line("STATUS s");
  EXPECT_EQ(io::parse_json(status.substr(3)).find("busy"), nullptr);
}

TEST(ServeDeadline, HealthPlaneCarriesPoolGaugesAndCounters) {
  const std::string cfg = config_json(81, bo::Mode::Sequential, 1);
  HostLimits limits;
  limits.serve_workers = 2;
  limits.request_deadline_s = 0.1;
  limits.watchdog_grace_s = 10.0;
  SessionHost host(fresh_dir("health"), 4, limits);
  ASSERT_EQ(host.handle_line("NEW s " + cfg).rfind("OK ", 0), 0u);
  SessionHost::DebugSlowdown slow;
  slow.session = "s";
  slow.sleep_s = 5.0;
  host.set_debug_slowdown(slow);
  ASSERT_EQ(host.handle_line("SUGGEST s").rfind("ERR deadline", 0), 0u);
  host.set_debug_slowdown({});

  const std::string health = host.handle_line("STATUS");
  ASSERT_EQ(health.rfind("OK ", 0), 0u);
  const io::JsonValue j = io::parse_json(health.substr(3));
  EXPECT_EQ(j.at("workers").as_double(), 2.0);
  EXPECT_EQ(j.at("queue_depth").as_double(), 0.0);
  EXPECT_EQ(j.at("deadline_cut").as_double(), 1.0);
  EXPECT_EQ(j.at("queue_shed").as_double(), 0.0);
  EXPECT_EQ(j.at("watchdog_trips").as_double(), 0.0);
  EXPECT_GE(j.at("retry_hint_ms").as_double(), 25.0);
  EXPECT_LE(j.at("retry_hint_ms").as_double(), 30000.0);
  // The online stats objects are present and counted the cut request.
  EXPECT_GE(j.at("queue_wait").at("count").as_double(), 1.0);
  EXPECT_GE(j.at("exec").at("count").as_double(), 1.0);
  // Health ints and accessors agree (the obs_tail --check-health
  // contract reconciles these against the stream counters).
  EXPECT_EQ(j.at("deadline_cut").as_double(),
            static_cast<double>(host.deadline_cut_count()));
}

TEST(ServeDeadline, DirectModeHealthOmitsPoolStatsButKeepsCounters) {
  SessionHost host(fresh_dir("health_direct"), 4);
  const std::string health = host.handle_line("STATUS");
  ASSERT_EQ(health.rfind("OK ", 0), 0u);
  const io::JsonValue j = io::parse_json(health.substr(3));
  EXPECT_EQ(j.at("workers").as_double(), 0.0);
  EXPECT_EQ(j.at("deadline_cut").as_double(), 0.0);
  EXPECT_EQ(j.at("queue_shed").as_double(), 0.0);
  EXPECT_EQ(j.at("watchdog_trips").as_double(), 0.0);
  EXPECT_EQ(j.find("queue_wait"), nullptr);
  EXPECT_EQ(j.find("exec"), nullptr);
}

}  // namespace
}  // namespace easybo::serve
