// Tests for constrained asynchronous EasyBO (bo/constrained.h) and the
// BUCB / LP extension acquisitions in the engine.

#include "bo/constrained.h"

#include <gtest/gtest.h>

#include <cmath>

#include "bo/engine.h"
#include "circuit/testfunc.h"
#include "common/error.h"

namespace easybo::bo {
namespace {

BoConfig quick_config(std::uint64_t seed) {
  BoConfig c;
  c.mode = Mode::AsyncBatch;
  c.acq = AcqKind::EasyBo;
  c.penalize = true;
  c.batch = 4;
  c.init_points = 12;
  c.max_sims = 60;
  c.seed = seed;
  c.acq_opt.sobol_candidates = 128;
  c.acq_opt.random_candidates = 64;
  c.acq_opt.refine_evals = 60;
  c.trainer.max_iters = 20;
  c.trainer.restarts = 1;
  return c;
}

// Maximize x+y on [0,1]^2 subject to x + y <= 1 (feasible optimum: the
// x+y=1 line, value 1).
TEST(ConstrainedBo, FindsConstrainedOptimumOnSimplex) {
  opt::Bounds bounds{{0.0, 0.0}, {1.0, 1.0}};
  auto objective = [](const linalg::Vec& x) { return x[0] + x[1]; };
  std::vector<Constraint> cons = {
      {"sum<=1", [](const linalg::Vec& x) { return 1.0 - x[0] - x[1]; }}};

  const auto r = run_constrained_bo(quick_config(1), bounds, objective, cons);
  ASSERT_TRUE(r.found_feasible);
  EXPECT_GT(r.best_y, 0.9);
  EXPECT_LE(r.best_y, 1.0 + 1e-9);
  EXPECT_GE(r.best_constraints[0], 0.0);
}

TEST(ConstrainedBo, BestIsActuallyFeasible) {
  // Unconstrained optimum of the sphere is at 0, but we require x0 >= 1:
  // the feasible optimum sits on the constraint boundary.
  opt::Bounds bounds{{-3.0, -3.0}, {3.0, 3.0}};
  auto objective = [](const linalg::Vec& x) {
    return -(x[0] * x[0] + x[1] * x[1]);
  };
  std::vector<Constraint> cons = {
      {"x0>=1", [](const linalg::Vec& x) { return x[0] - 1.0; }}};

  const auto r = run_constrained_bo(quick_config(2), bounds, objective, cons);
  ASSERT_TRUE(r.found_feasible);
  EXPECT_GE(r.best_x[0], 1.0 - 1e-9);
  // Feasible optimum is -1 (at x = (1, 0)).
  EXPECT_GT(r.best_y, -1.6);
}

TEST(ConstrainedBo, MultipleConstraintsAllRespected) {
  opt::Bounds bounds{{0.0, 0.0}, {2.0, 2.0}};
  auto objective = [](const linalg::Vec& x) { return x[0] * x[1]; };
  std::vector<Constraint> cons = {
      {"x0<=1.5", [](const linalg::Vec& x) { return 1.5 - x[0]; }},
      {"x1<=1.0", [](const linalg::Vec& x) { return 1.0 - x[1]; }},
  };
  const auto r = run_constrained_bo(quick_config(3), bounds, objective, cons);
  ASSERT_TRUE(r.found_feasible);
  EXPECT_LE(r.best_x[0], 1.5 + 1e-9);
  EXPECT_LE(r.best_x[1], 1.0 + 1e-9);
  EXPECT_GT(r.best_y, 1.0);  // feasible max is 1.5
}

TEST(ConstrainedBo, ReportsInfeasibleWhenNothingSatisfies) {
  opt::Bounds bounds{{0.0}, {1.0}};
  auto objective = [](const linalg::Vec& x) { return x[0]; };
  // Impossible constraint.
  std::vector<Constraint> cons = {
      {"impossible", [](const linalg::Vec&) { return -1.0; }}};
  auto cfg = quick_config(4);
  cfg.max_sims = 30;
  const auto r = run_constrained_bo(cfg, bounds, objective, cons);
  EXPECT_FALSE(r.found_feasible);
  EXPECT_EQ(r.num_feasible, 0u);
  EXPECT_EQ(r.num_evals(), 30u);
}

TEST(ConstrainedBo, SequentialModeWorks) {
  opt::Bounds bounds{{0.0, 0.0}, {1.0, 1.0}};
  auto objective = [](const linalg::Vec& x) { return x[0] + x[1]; };
  std::vector<Constraint> cons = {
      {"sum<=1", [](const linalg::Vec& x) { return 1.0 - x[0] - x[1]; }}};
  auto cfg = quick_config(5);
  cfg.mode = Mode::Sequential;
  cfg.batch = 1;
  const auto r = run_constrained_bo(cfg, bounds, objective, cons);
  EXPECT_TRUE(r.found_feasible);
  EXPECT_GT(r.best_y, 0.85);
}

TEST(ConstrainedBo, RejectsBadSetups) {
  opt::Bounds bounds{{0.0}, {1.0}};
  auto objective = [](const linalg::Vec& x) { return x[0]; };
  std::vector<Constraint> cons = {
      {"ok", [](const linalg::Vec&) { return 1.0; }}};

  EXPECT_THROW(run_constrained_bo(quick_config(6), bounds, objective, {}),
               InvalidArgument);
  auto sync = quick_config(7);
  sync.mode = Mode::SyncBatch;
  EXPECT_THROW(run_constrained_bo(sync, bounds, objective, cons),
               InvalidArgument);
  std::vector<Constraint> null_con = {{"null", nullptr}};
  EXPECT_THROW(
      run_constrained_bo(quick_config(8), bounds, objective, null_con),
      InvalidArgument);
}

TEST(ConstrainedBo, DeterministicForFixedSeed) {
  opt::Bounds bounds{{0.0, 0.0}, {1.0, 1.0}};
  auto objective = [](const linalg::Vec& x) { return x[0] + x[1]; };
  std::vector<Constraint> cons = {
      {"sum<=1", [](const linalg::Vec& x) { return 1.0 - x[0] - x[1]; }}};
  const auto a = run_constrained_bo(quick_config(9), bounds, objective, cons);
  const auto b = run_constrained_bo(quick_config(9), bounds, objective, cons);
  EXPECT_DOUBLE_EQ(a.best_y, b.best_y);
  EXPECT_EQ(a.num_feasible, b.num_feasible);
}

// ---------------------------------------------------------------------------
// BUCB / LP extension acquisitions through the engine
// ---------------------------------------------------------------------------

TEST(ExtensionAcq, BucbRunsInBothBatchModes) {
  const auto tf = easybo::circuit::sphere(2);
  for (Mode mode : {Mode::SyncBatch, Mode::AsyncBatch}) {
    auto cfg = quick_config(10);
    cfg.acq = AcqKind::Bucb;
    cfg.mode = mode;
    const auto r = run_bo(cfg, tf.bounds, tf.fn);
    EXPECT_EQ(r.num_evals(), cfg.max_sims);
    EXPECT_GT(r.best_y, -1.0) << to_string(mode);
  }
}

TEST(ExtensionAcq, LpRunsAndConverges) {
  const auto tf = easybo::circuit::sphere(2);
  auto cfg = quick_config(11);
  cfg.acq = AcqKind::Lp;
  cfg.mode = Mode::AsyncBatch;
  const auto r = run_bo(cfg, tf.bounds, tf.fn);
  EXPECT_EQ(r.num_evals(), cfg.max_sims);
  EXPECT_GT(r.best_y, -1.0);
}

TEST(ExtensionAcq, LabelsAndValidation) {
  auto cfg = quick_config(12);
  cfg.acq = AcqKind::Bucb;
  cfg.mode = Mode::AsyncBatch;
  cfg.batch = 7;
  EXPECT_EQ(cfg.label(), "BUCB-7");
  cfg.acq = AcqKind::Lp;
  EXPECT_EQ(cfg.label(), "LP-7");
  cfg.mode = Mode::Sequential;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
}

}  // namespace
}  // namespace easybo::bo
