// Tests for the session host (src/serve): wire-config round trips that
// preserve the checkpoint fingerprint, the line protocol's happy path
// and error replies, and the headline guarantee — a session driven over
// the protocol reproduces the bit-identical proposal sequence of a
// standalone seeded BoEngine::run, surviving LRU eviction, explicit
// CLOSE, host restart, and a config swapped out from under it (refused).

#include "serve/host.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "bo/engine.h"
#include "circuit/testfunc.h"
#include "common/error.h"
#include "io/journal.h"
#include "io/json.h"
#include "serve/session_config.h"

namespace easybo::serve {
namespace {

using linalg::Vec;

/// Fresh per-test state directory under the gtest temp dir.
std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "easybo_serve_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Small sequential session config as its wire JSON. Sequential keeps the
/// observe order trivially identical between a protocol client and a
/// standalone engine, so proposal parity is exact.
std::string quick_config_json(std::uint64_t seed) {
  bo::BoConfig cfg;
  cfg.mode = bo::Mode::Sequential;
  cfg.acq = bo::AcqKind::EasyBo;
  cfg.penalize = true;
  cfg.batch = 1;
  cfg.init_points = 4;
  cfg.max_sims = 10;
  cfg.seed = seed;
  cfg.on_eval_failure = bo::EvalFailurePolicy::Discard;
  cfg.acq_opt.sobol_candidates = 64;
  cfg.acq_opt.random_candidates = 32;
  cfg.acq_opt.refine_evals = 30;
  cfg.trainer.max_iters = 10;
  cfg.trainer.restarts = 1;
  opt::Bounds bounds;
  bounds.lower = {0.0, 0.0};
  bounds.upper = {1.0, 1.0};
  return session_config_json(cfg, bounds);
}

/// The proposal sequence a standalone engine produces for the same wire
/// config — the parity reference. Round-trips the JSON through the same
/// parser the host uses so both sides run the identical BoConfig.
std::vector<Vec> standalone_proposals(const std::string& config_json,
                                      const opt::Objective& objective) {
  SessionSpec spec = parse_session_config(config_json);
  bo::BoEngine engine(spec.config, spec.bounds, objective);
  const bo::BoResult result = engine.run();
  std::vector<Vec> xs;
  xs.reserve(result.evals.size());
  for (const auto& e : result.evals) xs.push_back(e.x);
  return xs;
}

struct WireSuggestion {
  std::size_t tag = 0;
  Vec x;
};

/// Parses "OK {\"tag\":N,\"x\":[...]}".
WireSuggestion parse_suggest_reply(const std::string& reply) {
  EXPECT_EQ(reply.rfind("OK ", 0), 0u) << reply;
  const io::JsonValue j = io::parse_json(reply.substr(3));
  WireSuggestion s;
  s.tag = static_cast<std::size_t>(j.at("tag").as_double());
  for (const auto& v : j.at("x").as_array()) s.x.push_back(v.as_double());
  return s;
}

/// Drives one session to budget exhaustion over the protocol: SUGGEST,
/// evaluate client-side, OBSERVE; returns the proposal sequence.
std::vector<Vec> drive_to_exhaustion(SessionHost& host,
                                     const std::string& name,
                                     const opt::Objective& objective) {
  std::vector<Vec> xs;
  for (;;) {
    const std::string reply = host.handle_line("SUGGEST " + name);
    if (reply.rfind("ERR ", 0) == 0) {
      EXPECT_NE(reply.find("budget exhausted"), std::string::npos) << reply;
      break;
    }
    const WireSuggestion s = parse_suggest_reply(reply);
    xs.push_back(s.x);
    const std::string ob = host.handle_line(
        "OBSERVE " + name + " " + std::to_string(s.tag) + " " +
        io::json_number(objective(s.x)));
    EXPECT_EQ(ob.rfind("OK ", 0), 0u) << ob;
  }
  return xs;
}

void expect_same_proposals(const std::vector<Vec>& a,
                           const std::vector<Vec>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "proposal " << i;
  }
}

// ---------------------------------------------------------------------------
// Wire config
// ---------------------------------------------------------------------------

TEST(SessionConfig, RoundTripPreservesTheCheckpointFingerprint) {
  bo::BoConfig cfg;
  cfg.mode = bo::Mode::AsyncBatch;
  cfg.acq = bo::AcqKind::Phcbo;
  cfg.penalize = true;
  cfg.batch = 5;
  cfg.init_points = 12;
  cfg.max_sims = 77;
  cfg.seed = 0xDEADBEEFCAFEBABEull;  // above 2^53: needs the string path
  cfg.lambda = 4.5;
  cfg.lcb_kappa = 2.25;
  cfg.hc_d = 0.3;
  cfg.hc_n = 7.0;
  cfg.kernel = "matern52";
  cfg.refit_every = 3;
  cfg.async_slot_rotation = true;
  cfg.on_eval_failure = bo::EvalFailurePolicy::Penalize;
  cfg.eval_failure_quantile = 0.25;
  opt::Bounds bounds;
  bounds.lower = {-1.0, 0.5, 2.0};
  bounds.upper = {1.0, 1.5, 8.0};

  const SessionSpec back =
      parse_session_config(session_config_json(cfg, bounds));
  EXPECT_EQ(bo::config_fingerprint(cfg, bounds),
            bo::config_fingerprint(back.config, back.bounds));
  EXPECT_EQ(back.config.seed, cfg.seed);
  EXPECT_EQ(back.bounds.lower, bounds.lower);
  EXPECT_EQ(back.bounds.upper, bounds.upper);
}

TEST(SessionConfig, RejectsUnknownKeysAbortPolicyAndContradictions) {
  EXPECT_THROW(parse_session_config("{\"dim\":2,\"bacth\":3}"), Error);
  EXPECT_THROW(
      parse_session_config("{\"dim\":2,\"on_eval_failure\":\"abort\"}"),
      Error);
  EXPECT_THROW(
      parse_session_config("{\"dim\":3,\"lower\":[0,0],\"upper\":[1,1]}"),
      Error);
  EXPECT_THROW(parse_session_config("{\"dim\":0}"), Error);

  // Sessions have no abort channel, so the default policy is discard.
  const SessionSpec spec = parse_session_config("{\"dim\":2}");
  EXPECT_EQ(spec.config.on_eval_failure, bo::EvalFailurePolicy::Discard);
}

// ---------------------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------------------

TEST(SessionHostTest, ProtocolHappyPathAndErrorReplies) {
  SessionHost host(fresh_dir("protocol"), 4);

  EXPECT_EQ(host.handle_line("NEW s1 " + quick_config_json(5)),
            "OK created s1");
  const WireSuggestion s0 =
      parse_suggest_reply(host.handle_line("SUGGEST s1"));
  EXPECT_EQ(s0.tag, 0u);
  EXPECT_EQ(s0.x.size(), 2u);

  EXPECT_EQ(host.handle_line("OBSERVE s1 0 1.25"),
            "OK {\"action\":\"observed\"}");
  // The tag-keyed pending set makes a double observe a loud wire error.
  const std::string twice = host.handle_line("OBSERVE s1 0 1.25");
  EXPECT_NE(twice.find("ERR observe: evaluation 0 is not pending"),
            std::string::npos)
      << twice;

  const std::string status = host.handle_line("STATUS s1");
  ASSERT_EQ(status.rfind("OK ", 0), 0u);
  const io::JsonValue j = io::parse_json(status.substr(3));
  EXPECT_EQ(j.at("issued").as_double(), 1.0);
  EXPECT_EQ(j.at("observed").as_double(), 1.0);
  EXPECT_EQ(j.at("name").as_string(), "s1");

  // Failed evaluations cross the wire as replies, not aborts.
  const WireSuggestion s1 =
      parse_suggest_reply(host.handle_line("SUGGEST s1"));
  EXPECT_EQ(host.handle_line("OBSERVE s1 " + std::to_string(s1.tag) +
                             " fail timeout spice hung"),
            "OK {\"action\":\"discarded\"}");

  // Error replies, not crashes:
  EXPECT_EQ(host.handle_line("SUGGEST nosuch").rfind("ERR ", 0), 0u);
  EXPECT_EQ(host.handle_line("NEW bad/name {\"dim\":2}").rfind("ERR ", 0),
            0u);
  EXPECT_EQ(host.handle_line("OBSERVE s1 notanumber 1.0").rfind("ERR ", 0),
            0u);
  EXPECT_EQ(host.handle_line("FROB s1").rfind("ERR ", 0), 0u);
  EXPECT_EQ(host.handle_line("NEW s2 {\"dim\":2,\"bogus\":1}").rfind(
                "ERR session config: unknown key", 0),
            0u);

  EXPECT_EQ(host.handle_line("CLOSE s1"), "OK closed s1");
  EXPECT_FALSE(host.is_live("s1"));
  // Closed is not gone: the files resume on demand.
  EXPECT_EQ(host.handle_line("STATUS s1").rfind("OK ", 0), 0u);
}

// ---------------------------------------------------------------------------
// Parity with standalone BoEngine runs
// ---------------------------------------------------------------------------

TEST(SessionHostTest, SessionReproducesStandaloneEngineBitForBit) {
  const auto tf = circuit::sphere(2);
  const std::string config = quick_config_json(42);
  SessionHost host(fresh_dir("parity"), 4);
  ASSERT_EQ(host.handle_line("NEW run " + config), "OK created run");

  expect_same_proposals(drive_to_exhaustion(host, "run", tf.fn),
                        standalone_proposals(config, tf.fn));
}

TEST(SessionHostTest, LruEvictionPreservesEveryInterleavedStream) {
  const auto tf = circuit::sphere(2);
  constexpr std::size_t kSessions = 4;
  // max_live=2 with 4 round-robin sessions: every single turn of every
  // session beyond the first two runs against an evicted-and-resumed
  // object.
  SessionHost host(fresh_dir("evict"), 2);

  std::vector<std::string> configs;
  for (std::size_t i = 0; i < kSessions; ++i) {
    configs.push_back(quick_config_json(100 + i));
    const std::string name = "s" + std::to_string(i);
    ASSERT_EQ(host.handle_line("NEW " + name + " " + configs[i]),
              "OK created " + name);
  }

  std::vector<std::vector<Vec>> xs(kSessions);
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t i = 0; i < kSessions; ++i) {
      const std::string name = "s" + std::to_string(i);
      const std::string reply = host.handle_line("SUGGEST " + name);
      if (reply.rfind("ERR ", 0) == 0) continue;
      progressed = true;
      const WireSuggestion s = parse_suggest_reply(reply);
      xs[i].push_back(s.x);
      ASSERT_EQ(host.handle_line("OBSERVE " + name + " " +
                                 std::to_string(s.tag) + " " +
                                 io::json_number(tf.fn(s.x)))
                    .rfind("OK ", 0),
                0u);
    }
  }
  EXPECT_LE(host.live_count(), 2u);
  for (std::size_t i = 0; i < kSessions; ++i) {
    expect_same_proposals(xs[i], standalone_proposals(configs[i], tf.fn));
  }
}

TEST(SessionHostTest, HostRestartResumesMidRunBitForBit) {
  const auto tf = circuit::sphere(2);
  const std::string dir = fresh_dir("restart");
  const std::string config = quick_config_json(77);

  std::vector<Vec> xs;
  {
    SessionHost host(dir, 4);
    ASSERT_EQ(host.handle_line("NEW run " + config), "OK created run");
    for (int i = 0; i < 6; ++i) {
      const WireSuggestion s =
          parse_suggest_reply(host.handle_line("SUGGEST run"));
      xs.push_back(s.x);
      ASSERT_EQ(host.handle_line("OBSERVE run " + std::to_string(s.tag) +
                                 " " + io::json_number(tf.fn(s.x)))
                    .rfind("OK ", 0),
                0u);
    }
    // Host dies here; every mutation was already durable.
  }

  SessionHost reborn(dir, 4);
  const std::vector<Vec> rest = drive_to_exhaustion(reborn, "run", tf.fn);
  xs.insert(xs.end(), rest.begin(), rest.end());
  expect_same_proposals(xs, standalone_proposals(config, tf.fn));
}

TEST(SessionHostTest, ResumeRefusesASwappedConfig) {
  const auto tf = circuit::sphere(2);
  const std::string dir = fresh_dir("swapped");
  {
    SessionHost host(dir, 4);
    ASSERT_EQ(host.handle_line("NEW run " + quick_config_json(1)),
              "OK created run");
    const WireSuggestion s =
        parse_suggest_reply(host.handle_line("SUGGEST run"));
    ASSERT_EQ(host.handle_line("OBSERVE run " + std::to_string(s.tag) +
                               " " + io::json_number(tf.fn(s.x)))
                  .rfind("OK ", 0),
              0u);
  }
  // A different seed is a different proposal stream; resuming the old
  // journal under it would splice the two.
  io::atomic_write_file(dir + "/run.config", quick_config_json(2));
  SessionHost host(dir, 4);
  const std::string reply = host.handle_line("SUGGEST run");
  EXPECT_EQ(reply.rfind("ERR checkpoint config mismatch", 0), 0u) << reply;
}

TEST(SessionHostTest, NewIsIdempotentAndNeverRestartsAStream) {
  const auto tf = circuit::sphere(2);
  SessionHost host(fresh_dir("idempotent"), 4);
  const std::string config = quick_config_json(9);
  ASSERT_EQ(host.handle_line("NEW run " + config), "OK created run");
  const WireSuggestion first =
      parse_suggest_reply(host.handle_line("SUGGEST run"));

  // A reconnecting client re-sends NEW (even with a different config):
  // the running session and its issued tag survive.
  EXPECT_EQ(host.handle_line("NEW run " + quick_config_json(10)),
            "OK resumed run");
  const std::string status = host.handle_line("STATUS run");
  const io::JsonValue j = io::parse_json(status.substr(3));
  EXPECT_EQ(j.at("issued").as_double(), 1.0);
  EXPECT_EQ(host.handle_line("OBSERVE run " + std::to_string(first.tag) +
                             " 1.0"),
            "OK {\"action\":\"observed\"}");
}

}  // namespace
}  // namespace easybo::serve
