// Table-driven protocol fuzz/abuse suite for SessionHost::handle_line.
// Every malformed input must produce exactly one reply line starting
// "ERR " — and must leave the host's durable state bit-identical: we
// hash every file in the state directory before and after each input,
// and re-check STATUS for the one live session.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "io/json.h"
#include "serve/host.h"
#include "serve/session_config.h"

namespace easybo::serve {
namespace {

using linalg::Vec;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "easybo_fuzz_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string quick_config_json(std::uint64_t seed) {
  bo::BoConfig cfg;
  cfg.mode = bo::Mode::Sequential;
  cfg.acq = bo::AcqKind::EasyBo;
  cfg.penalize = true;
  cfg.batch = 1;
  cfg.init_points = 3;
  cfg.max_sims = 6;
  cfg.seed = seed;
  cfg.on_eval_failure = bo::EvalFailurePolicy::Discard;
  cfg.acq_opt.sobol_candidates = 32;
  cfg.acq_opt.random_candidates = 16;
  cfg.acq_opt.refine_evals = 15;
  cfg.trainer.max_iters = 8;
  cfg.trainer.restarts = 1;
  opt::Bounds bounds;
  bounds.lower = {0.0, 0.0};
  bounds.upper = {1.0, 1.0};
  return session_config_json(cfg, bounds);
}

std::map<std::string, std::string> dir_contents(const std::string& dir) {
  std::map<std::string, std::string> out;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    out.emplace(entry.path().string(), std::move(bytes));
  }
  return out;
}

struct FuzzCase {
  std::string label;
  std::string input;
};

std::vector<FuzzCase> fuzz_corpus(std::size_t max_line_bytes) {
  std::vector<FuzzCase> cases = {
      {"empty line", ""},
      {"whitespace only", "   "},
      {"unknown verb", "FROB s"},
      {"lowercase verb", "suggest s"},
      {"verb glued to name", "SUGGESTs"},
      {"NEW without name", "NEW"},
      {"NEW without config", "NEW fresh"},
      {"NEW with truncated json", "NEW fresh {\"mode\":"},
      {"NEW with non-object config", "NEW fresh 42"},
      {"NEW with unknown config key", "NEW fresh {\"bogus\":1}"},
      {"NEW with path-traversal name", "NEW ../../etc/passwd {}"},
      {"NEW with absolute-path name", "NEW /tmp/x {}"},
      {"NEW with dot name", "NEW . {}"},
      {"NEW with leading dash", "NEW -rf {}"},
      {"NEW with non-ascii name", "NEW caf\xc3\xa9 {}"},
      {"NEW with raw latin1 name", "NEW caf\xe9 {}"},
      {"NEW with overlong name",
       "NEW " + std::string(300, 'a') + " {}"},
      {"SUGGEST without name", "SUGGEST"},
      {"SUGGEST unknown session", "SUGGEST nosuch"},
      {"SUGGEST trailing garbage", "SUGGEST s extra"},
      {"OBSERVE truncated at name", "OBSERVE s"},
      {"OBSERVE truncated at tag", "OBSERVE s 0"},
      {"OBSERVE non-numeric tag", "OBSERVE s abc 1.0"},
      {"OBSERVE negative tag", "OBSERVE s -1 1.0"},
      {"OBSERVE non-pending tag", "OBSERVE s 999 1.0"},
      {"OBSERVE non-numeric value", "OBSERVE s 0 bogus"},
      {"OBSERVE positive infinity", "OBSERVE s 0 inf"},
      {"OBSERVE negative infinity", "OBSERVE s 0 -inf"},
      {"OBSERVE nan", "OBSERVE s 0 nan"},
      {"OBSERVE overflowing literal", "OBSERVE s 0 1e999"},
      {"OBSERVE trailing garbage", "OBSERVE s 0 1.0 extra"},
      {"OBSERVE unknown failure status", "OBSERVE s 0 fail bogus"},
      {"STATUS unknown session", "STATUS nosuch"},
      {"STATUS invalid name", "STATUS ../oops"},
      {"CLOSE unknown session", "CLOSE nosuch"},
      {"embedded NUL", std::string("STATUS s\0", 9)},
      {"leading NUL", std::string("\0STATUS", 7)},
      {"control byte in name", "STATUS s\x01"},
      {"bell and backspace soup", "NEW \x07\x08 {}"},
      {"escape sequence injection", "STATUS \x1b[31mred\x1b[0m"},
      {"oversized line", std::string(max_line_bytes + 1, 'A')},
      {"oversized observe",
       "OBSERVE s 0 " + std::string(max_line_bytes, '9')},
  };
  return cases;
}

TEST(ServeFuzz, EveryMalformedInputGetsOneErrAndChangesNothing) {
  const std::string dir = fresh_dir("corpus");
  HostLimits limits;
  limits.max_line_bytes = 1u << 16;
  SessionHost host(dir, 4, limits);

  // One live session with an in-flight suggestion and one observation,
  // so OBSERVE-shaped garbage has real state to threaten.
  ASSERT_EQ(host.handle_line("NEW s " + quick_config_json(7)).rfind("OK ", 0),
            0u);
  const std::string first = host.handle_line("SUGGEST s");
  ASSERT_EQ(first.rfind("OK ", 0), 0u);
  {
    const io::JsonValue j = io::parse_json(first.substr(3));
    const auto tag = static_cast<std::size_t>(j.at("tag").as_double());
    ASSERT_EQ(host.handle_line("OBSERVE s " + std::to_string(tag) + " 0.25")
                  .rfind("OK ", 0),
              0u);
  }
  const std::string suggested = host.handle_line("SUGGEST s");
  ASSERT_EQ(suggested.rfind("OK ", 0), 0u);

  const auto disk_before = dir_contents(dir);
  const std::string status_before = host.handle_line("STATUS s");
  ASSERT_EQ(status_before.rfind("OK ", 0), 0u);

  for (const FuzzCase& c : fuzz_corpus(limits.max_line_bytes)) {
    SCOPED_TRACE(c.label);
    const std::string reply = host.handle_line(c.input);
    // Exactly one ERR line: correct prefix, no embedded newlines, and
    // nothing echoed back raw (control bytes must not reach the reply).
    EXPECT_EQ(reply.rfind("ERR ", 0), 0u) << reply;
    EXPECT_EQ(reply.find('\n'), std::string::npos) << reply;
    for (const char ch : reply) {
      EXPECT_GE(static_cast<unsigned char>(ch), 0x20u)
          << "control byte in reply: " << reply;
    }
    // Durable state is bit-identical and the live session is untouched.
    EXPECT_EQ(dir_contents(dir), disk_before);
    EXPECT_EQ(host.handle_line("STATUS s"), status_before);
    EXPECT_EQ(host.quarantined_count(), 0u);
  }

  // The session is still fully operational: the pending suggestion can
  // be observed and the stream continues.
  const io::JsonValue j = io::parse_json(suggested.substr(3));
  const auto tag = static_cast<std::size_t>(j.at("tag").as_double());
  EXPECT_EQ(host.handle_line("OBSERVE s " + std::to_string(tag) + " 0.5")
                .rfind("OK ", 0),
            0u);
  EXPECT_EQ(host.handle_line("SUGGEST s").rfind("OK ", 0), 0u);
}

TEST(ServeFuzz, MalformedNewNeverCreatesStateOnDisk) {
  const std::string dir = fresh_dir("no_side_effects");
  SessionHost host(dir, 4);
  // The state dir is created lazily; garbage NEWs must not populate it.
  for (const char* line : {"NEW", "NEW bad/name {}", "NEW x", "NEW x nope",
                           "NEW x {\"unknown\":true}"}) {
    SCOPED_TRACE(line);
    EXPECT_EQ(host.handle_line(line).rfind("ERR ", 0), 0u);
  }
  EXPECT_EQ(host.live_count(), 0u);
  if (std::filesystem::exists(dir)) {
    EXPECT_EQ(dir_contents(dir), (std::map<std::string, std::string>{}));
  }
}

TEST(ServeFuzz, RepeatedAbuseDoesNotGrowTheSessionTable) {
  const std::string dir = fresh_dir("table_bound");
  SessionHost host(dir, 4);
  for (int i = 0; i < 200; ++i) {
    const std::string name = "ghost" + std::to_string(i);
    EXPECT_EQ(host.handle_line("SUGGEST " + name).rfind("ERR ", 0), 0u);
    EXPECT_EQ(host.handle_line("STATUS " + name).rfind("ERR ", 0), 0u);
  }
  // Probes for sessions that never existed must not leak table entries.
  EXPECT_EQ(host.live_count(), 0u);
}

}  // namespace
}  // namespace easybo::serve
