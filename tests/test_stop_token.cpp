// common::StopToken semantics: the three sources (external flag, wall
// deadline, deterministic poll countdown), check() throwing Cancelled
// with the checkpoint name, and the default token never firing. These
// are the primitives the serve layer's deadline cuts stand on, so their
// edge cases (countdown of zero, repeated polls after firing) are pinned
// here.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>

#include "common/stop_token.h"

namespace easybo::common {
namespace {

TEST(StopToken, DefaultNeverFires) {
  StopToken t;
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(t.stop_requested());
  EXPECT_NO_THROW(t.check("anything"));
  EXPECT_FALSE(t.has_deadline());
}

TEST(StopToken, FlagSourceTracksTheAtomic) {
  std::atomic<bool> flag{false};
  StopToken t = StopToken::from_flag(&flag);
  EXPECT_FALSE(t.stop_requested());
  flag.store(true);
  EXPECT_TRUE(t.stop_requested());
  flag.store(false);
  // The flag is live, not latched: graceful-stop seams may be re-armed.
  EXPECT_FALSE(t.stop_requested());
}

TEST(StopToken, NullFlagNeverFires) {
  StopToken t = StopToken::from_flag(nullptr);
  EXPECT_FALSE(t.stop_requested());
}

TEST(StopToken, DeadlineSourceFiresAtTheDeadline) {
  const auto now = std::chrono::steady_clock::now();
  StopToken future = StopToken::after_deadline(now + std::chrono::hours(1));
  EXPECT_FALSE(future.stop_requested());
  EXPECT_TRUE(future.has_deadline());
  EXPECT_EQ(future.deadline(), now + std::chrono::hours(1));

  StopToken past = StopToken::after_deadline(now - std::chrono::seconds(1));
  EXPECT_TRUE(past.stop_requested());
  EXPECT_THROW(past.check("x"), Cancelled);
}

TEST(StopToken, CountdownFiresOnTheNthPollAndStaysFired) {
  StopToken t = StopToken::after_polls(3);
  EXPECT_FALSE(t.stop_requested());
  EXPECT_FALSE(t.stop_requested());
  EXPECT_FALSE(t.stop_requested());
  EXPECT_TRUE(t.stop_requested());
  // Latched: once fired, every later poll fires too (a computation that
  // ignored one checkpoint must still be caught at the next).
  EXPECT_TRUE(t.stop_requested());
  EXPECT_TRUE(t.stop_requested());
}

TEST(StopToken, CountdownOfZeroFiresImmediately) {
  StopToken t = StopToken::after_polls(0);
  EXPECT_TRUE(t.stop_requested());
}

TEST(StopToken, CheckNamesTheCheckpoint) {
  StopToken t = StopToken::after_polls(0);
  try {
    t.check("acquisition screening");
    FAIL() << "check() did not throw";
  } catch (const Cancelled& e) {
    EXPECT_STREQ(e.what(), "cancelled during acquisition screening");
  }
  // Cancelled is an easybo::Error, so generic catch sites keep working.
  try {
    t.check("x");
    FAIL() << "check() did not throw";
  } catch (const Error&) {
  }
}

TEST(StopToken, CheckDoesNotCountAgainstAnUnfiredCountdown) {
  // check() polls exactly once per call — no double counting.
  StopToken t = StopToken::after_polls(2);
  EXPECT_NO_THROW(t.check("a"));
  EXPECT_NO_THROW(t.check("b"));
  EXPECT_THROW(t.check("c"), Cancelled);
}

}  // namespace
}  // namespace easybo::common
