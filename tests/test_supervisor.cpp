// Tests for the fault-tolerant evaluation supervisor: outcome
// classification (ok / exception / timeout / non-finite), per-attempt
// deadlines on both executor backends (virtual cut vs wall watchdog +
// worker abandonment), capped exponential backoff with deterministic
// jitter, and the pass-through guarantee of the default config.

#include "sched/supervisor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <thread>

#include "common/error.h"

namespace easybo::sched {
namespace {

// ---------------------------------------------------------------------------
// backoff_delay
// ---------------------------------------------------------------------------

SupervisorConfig no_jitter() {
  SupervisorConfig cfg;
  cfg.backoff_init = 0.5;
  cfg.backoff_factor = 2.0;
  cfg.backoff_max = 3.0;
  cfg.backoff_jitter = 0.0;
  return cfg;
}

TEST(BackoffDelay, ExponentialThenCapped) {
  const SupervisorConfig cfg = no_jitter();
  Rng rng(1);
  EXPECT_DOUBLE_EQ(backoff_delay(cfg, 1, rng), 0.5);
  EXPECT_DOUBLE_EQ(backoff_delay(cfg, 2, rng), 1.0);
  EXPECT_DOUBLE_EQ(backoff_delay(cfg, 3, rng), 2.0);
  EXPECT_DOUBLE_EQ(backoff_delay(cfg, 4, rng), 3.0);  // capped
  EXPECT_DOUBLE_EQ(backoff_delay(cfg, 50, rng), 3.0);
}

TEST(BackoffDelay, JitterStaysWithinFractionAndIsDeterministic) {
  SupervisorConfig cfg = no_jitter();
  cfg.backoff_jitter = 0.2;
  Rng rng_a(7);
  Rng rng_b(7);
  for (std::size_t retry = 1; retry <= 6; ++retry) {
    const double nominal =
        std::min(cfg.backoff_max,
                 cfg.backoff_init * std::pow(cfg.backoff_factor,
                                             double(retry - 1)));
    const double d = backoff_delay(cfg, retry, rng_a);
    EXPECT_GE(d, nominal * 0.8);
    EXPECT_LE(d, nominal * 1.2);
    EXPECT_DOUBLE_EQ(d, backoff_delay(cfg, retry, rng_b));  // same stream
  }
}

TEST(BackoffDelay, RetriesAreOneBased) {
  const SupervisorConfig cfg = no_jitter();
  Rng rng(1);
  EXPECT_THROW(backoff_delay(cfg, 0, rng), InvalidArgument);
}

TEST(SupervisorConfigValidate, RejectsBadKnobs) {
  SupervisorConfig cfg;
  cfg.backoff_factor = 0.5;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg = SupervisorConfig{};
  cfg.backoff_jitter = 1.5;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg = SupervisorConfig{};
  cfg.backoff_init = -1.0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Pass-through behavior (default config)
// ---------------------------------------------------------------------------

TEST(EvalSupervisor, PassThroughMatchesRawExecutorOnVirtualTime) {
  VirtualExecutor raw(2);
  raw.submit(0, [] { return 10.0; }, 4.0);
  raw.submit(1, [] { return 20.0; }, 2.0);
  const auto raw_first = raw.wait_next();
  const auto raw_second = raw.wait_next();

  VirtualExecutor exec(2);
  EvalSupervisor sup(exec, SupervisorConfig{});
  sup.submit(0, [] { return 10.0; }, 4.0);
  sup.submit(1, [] { return 20.0; }, 2.0);
  const auto first = sup.wait_next();
  const auto second = sup.wait_next();

  EXPECT_TRUE(first.ok());
  EXPECT_EQ(first.attempts, 1u);
  EXPECT_EQ(first.completion.tag, raw_first.tag);
  EXPECT_DOUBLE_EQ(first.completion.value, raw_first.value);
  EXPECT_DOUBLE_EQ(first.completion.start, raw_first.start);
  EXPECT_DOUBLE_EQ(first.completion.finish, raw_first.finish);
  EXPECT_EQ(second.completion.tag, raw_second.tag);
  EXPECT_DOUBLE_EQ(second.completion.finish, raw_second.finish);
  EXPECT_DOUBLE_EQ(exec.now(), raw.now());
}

TEST(EvalSupervisor, PassThroughDeliversValuesOnThreads) {
  ThreadExecutor exec(2);
  EvalSupervisor sup(exec, SupervisorConfig{});
  sup.submit(3, [] { return 7.0; }, 1.0);
  sup.submit(4, [] { return 9.0; }, 1.0);
  const auto a = sup.wait_next();
  const auto b = sup.wait_next();
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a.completion.value + b.completion.value, 16.0);
  EXPECT_EQ(sup.num_running(), 0u);
}

TEST(EvalSupervisor, WaitNextWithNothingRunningThrows) {
  VirtualExecutor exec(1);
  EvalSupervisor sup(exec, SupervisorConfig{});
  EXPECT_THROW(sup.wait_next(), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Exception and non-finite classification + retries
// ---------------------------------------------------------------------------

TEST(EvalSupervisor, ClassifiesExceptionWithoutRethrowing) {
  VirtualExecutor exec(1);
  EvalSupervisor sup(exec, SupervisorConfig{});
  sup.submit(5, []() -> double { throw std::runtime_error("boom"); }, 1.0);
  const auto out = sup.wait_next();
  EXPECT_EQ(out.status, EvalStatus::Exception);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.attempts, 1u);
  EXPECT_EQ(out.error, "boom");
  ASSERT_TRUE(out.exception != nullptr);
  EXPECT_THROW(std::rethrow_exception(out.exception), std::runtime_error);
}

TEST(EvalSupervisor, ClassifiesNonFiniteValues) {
  VirtualExecutor exec(1);
  EvalSupervisor sup(exec, SupervisorConfig{});
  sup.submit(0, [] { return std::numeric_limits<double>::quiet_NaN(); },
             1.0);
  EXPECT_EQ(sup.wait_next().status, EvalStatus::NonFinite);
  sup.submit(1, [] { return std::numeric_limits<double>::infinity(); },
             1.0);
  EXPECT_EQ(sup.wait_next().status, EvalStatus::NonFinite);
}

TEST(EvalSupervisor, TransientFailureRecoversWithinRetryBudget) {
  for (const bool threads : {false, true}) {
    std::unique_ptr<Executor> exec;
    if (threads) exec = std::make_unique<ThreadExecutor>(1);
    else exec = std::make_unique<VirtualExecutor>(1);

    SupervisorConfig cfg;
    cfg.max_retries = 3;
    cfg.backoff_init = threads ? 1e-4 : 0.5;  // keep wall tests fast
    auto attempts = std::make_shared<std::atomic<int>>(0);
    EvalSupervisor sup(*exec, cfg);
    sup.submit(9,
               [attempts]() -> double {
                 if (attempts->fetch_add(1) < 2) {
                   throw std::runtime_error("flaky");
                 }
                 return 42.0;
               },
               1.0);
    const auto out = sup.wait_next();
    EXPECT_TRUE(out.ok()) << (threads ? "threads" : "virtual");
    EXPECT_DOUBLE_EQ(out.completion.value, 42.0);
    EXPECT_EQ(out.completion.tag, 9u);
    EXPECT_EQ(out.attempts, 3u);  // 2 failures + 1 success
  }
}

TEST(EvalSupervisor, RetryExhaustionReportsLastFailure) {
  VirtualExecutor exec(1);
  SupervisorConfig cfg;
  cfg.max_retries = 2;
  EvalSupervisor sup(exec, cfg);
  auto attempts = std::make_shared<std::atomic<int>>(0);
  sup.submit(1,
             [attempts]() -> double {
               attempts->fetch_add(1);
               throw std::runtime_error("always");
             },
             1.0);
  const auto out = sup.wait_next();
  EXPECT_EQ(out.status, EvalStatus::Exception);
  EXPECT_EQ(out.attempts, 3u);  // 1 + 2 retries, every one made
  EXPECT_EQ(attempts->load(), 3);
  EXPECT_EQ(out.error, "always");
}

TEST(EvalSupervisor, RetryBackoffOccupiesVirtualTime) {
  VirtualExecutor exec(1);
  SupervisorConfig cfg;
  cfg.max_retries = 1;
  cfg.backoff_init = 0.5;
  cfg.backoff_jitter = 0.0;
  EvalSupervisor sup(exec, cfg);
  auto attempts = std::make_shared<std::atomic<int>>(0);
  sup.submit(0,
             [attempts]() -> double {
               if (attempts->fetch_add(1) == 0) {
                 throw std::runtime_error("once");
               }
               return 1.0;
             },
             2.0);
  const auto out = sup.wait_next();
  EXPECT_TRUE(out.ok());
  // attempt (2s) + backoff (0.5s) + retry (2s); start is the FIRST start.
  EXPECT_DOUBLE_EQ(out.completion.start, 0.0);
  EXPECT_DOUBLE_EQ(out.completion.finish, 4.5);
}

// ---------------------------------------------------------------------------
// Deadlines
// ---------------------------------------------------------------------------

TEST(EvalSupervisor, VirtualTimeoutCutsTheJobAtItsDeadline) {
  VirtualExecutor exec(2);
  SupervisorConfig cfg;
  cfg.timeout = 3.0;
  EvalSupervisor sup(exec, cfg);
  sup.submit(0, [] { return 1.0; }, 10.0);  // would run way past deadline
  sup.submit(1, [] { return 2.0; }, 1.0);

  const auto fast = sup.wait_next();
  EXPECT_TRUE(fast.ok());
  EXPECT_EQ(fast.completion.tag, 1u);

  const auto slow = sup.wait_next();
  EXPECT_EQ(slow.status, EvalStatus::Timeout);
  EXPECT_EQ(slow.completion.tag, 0u);
  // The worker was occupied until exactly the deadline, not 10s.
  EXPECT_DOUBLE_EQ(slow.completion.finish, 3.0);
  EXPECT_DOUBLE_EQ(exec.now(), 3.0);
}

TEST(EvalSupervisor, VirtualTimeoutCanRetryWhenAsked) {
  VirtualExecutor exec(1);
  SupervisorConfig cfg;
  cfg.timeout = 3.0;
  cfg.retry_timeouts = true;
  cfg.max_retries = 1;
  cfg.backoff_init = 1.0;
  cfg.backoff_jitter = 0.0;
  EvalSupervisor sup(exec, cfg);
  sup.submit(0, [] { return 1.0; }, 10.0);  // deterministic straggler
  const auto out = sup.wait_next();
  // Still too slow on the retry: cut again, reported after both attempts.
  EXPECT_EQ(out.status, EvalStatus::Timeout);
  EXPECT_EQ(out.attempts, 2u);
  // cut attempt (3s) + backoff (1s) + cut retry (3s)
  EXPECT_DOUBLE_EQ(out.completion.finish, 7.0);
}

TEST(EvalSupervisor, WallWatchdogAbandonsHungWorker) {
  ThreadExecutor exec(2);
  SupervisorConfig cfg;
  cfg.timeout = 0.05;
  EvalSupervisor sup(exec, cfg);

  std::atomic<bool> release{false};
  sup.submit(0,
             [&release]() -> double {
               while (!release.load()) {
                 std::this_thread::sleep_for(std::chrono::milliseconds(1));
               }
               return 1.0;
             },
             1.0);
  sup.submit(1, [] { return 2.0; }, 1.0);

  SupervisedCompletion timed_out;
  SupervisedCompletion good;
  for (int i = 0; i < 2; ++i) {
    auto out = sup.wait_next();
    if (out.status == EvalStatus::Timeout) timed_out = out;
    else good = out;
  }
  EXPECT_EQ(timed_out.status, EvalStatus::Timeout);
  EXPECT_EQ(timed_out.completion.tag, 0u);
  // The worker id is unknown for an abandoned job: sentinel num_workers().
  EXPECT_EQ(timed_out.completion.worker, exec.num_workers());
  EXPECT_TRUE(good.ok());
  EXPECT_EQ(good.completion.tag, 1u);
  EXPECT_EQ(sup.num_running(), 0u);
  // The abandoned worker is visible as an orphan (feeds the engine's
  // "sched.orphaned_workers" counter and the CLI warning).
  EXPECT_EQ(sup.orphans(), 1u);

  // Unhang the objective; the stale completion must be swallowed, the
  // slot rejoining the pool without a visible completion.
  release.store(true);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  sup.submit(2, [] { return 3.0; }, 1.0);
  const auto after = sup.wait_next();
  EXPECT_TRUE(after.ok());
  EXPECT_EQ(after.completion.tag, 2u);
  // Swallowing the stale completion reclaims the orphan.
  EXPECT_EQ(sup.orphans(), 0u);
}

TEST(EvalSupervisor, OrphansStartAtZeroOnVirtualTime) {
  VirtualExecutor exec(2);
  EvalSupervisor sup(exec, SupervisorConfig{});
  EXPECT_EQ(sup.orphans(), 0u);
  sup.submit(0, [] { return 1.0; }, 1.0);
  (void)sup.wait_next();
  // Virtual-time timeouts cut the job, they never abandon a worker.
  EXPECT_EQ(sup.orphans(), 0u);
}

// ---------------------------------------------------------------------------
// wait_all
// ---------------------------------------------------------------------------

TEST(EvalSupervisor, WaitAllDrainsMixedOutcomes) {
  VirtualExecutor exec(3);
  SupervisorConfig cfg;
  cfg.timeout = 5.0;
  EvalSupervisor sup(exec, cfg);
  sup.submit(0, [] { return 1.0; }, 1.0);
  sup.submit(1, []() -> double { throw std::runtime_error("x"); }, 2.0);
  sup.submit(2, [] { return 3.0; }, 99.0);  // timeout

  const auto done = sup.wait_all();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(sup.num_running(), 0u);
  int ok = 0, exception = 0, timeout = 0;
  for (const auto& d : done) {
    ok += d.ok();
    exception += d.status == EvalStatus::Exception;
    timeout += d.status == EvalStatus::Timeout;
  }
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(exception, 1);
  EXPECT_EQ(timeout, 1);
}

TEST(EvalStatusToString, StableNames) {
  EXPECT_STREQ(to_string(EvalStatus::Ok), "ok");
  EXPECT_STREQ(to_string(EvalStatus::Exception), "exception");
  EXPECT_STREQ(to_string(EvalStatus::Timeout), "timeout");
  EXPECT_STREQ(to_string(EvalStatus::NonFinite), "non_finite");
}

}  // namespace
}  // namespace easybo::sched
