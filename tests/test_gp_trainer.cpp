// Tests for gp/trainer.h: MLE training improves the marginal likelihood,
// respects its box constraints, and recovers known structure.

#include "gp/trainer.h"

#include <gtest/gtest.h>

#include "gp/gp.h"

#include <cmath>
#include <memory>

#include "common/error.h"
#include "obs/recording.h"

namespace easybo::gp {
namespace {

std::vector<Vec> grid_1d(std::size_t n) {
  std::vector<Vec> xs;
  for (std::size_t i = 0; i < n; ++i) {
    xs.push_back({static_cast<double>(i) / static_cast<double>(n - 1)});
  }
  return xs;
}

TEST(Trainer, ImprovesLogMarginalLikelihood) {
  Rng rng(1);
  const auto xs = grid_1d(20);
  Vec ys(20);
  for (std::size_t i = 0; i < 20; ++i) {
    ys[i] = std::sin(6.0 * xs[i][0]) + 0.05 * rng.normal();
  }
  GpRegressor gp(std::make_unique<SquaredExponentialArd>(1), 1e-2);
  gp.set_data(xs, ys);
  gp.fit();
  const double before = gp.log_marginal_likelihood();

  const auto result = train_mle(gp, rng);
  EXPECT_GE(result.log_marginal_likelihood, before - 1e-9);
  EXPECT_GT(result.iterations, 0);
  EXPECT_TRUE(gp.fitted());
}

TEST(Trainer, WarmStartCannotRegress) {
  // If the current parameters are already excellent, training must not
  // return anything worse (warm start is always a candidate).
  Rng rng(2);
  const auto xs = grid_1d(15);
  Vec ys(15);
  for (std::size_t i = 0; i < 15; ++i) ys[i] = std::sin(5.0 * xs[i][0]);

  GpRegressor gp(std::make_unique<SquaredExponentialArd>(1), 1e-4);
  gp.set_data(xs, ys);
  auto first = train_mle(gp, rng);
  auto second = train_mle(gp, rng);
  EXPECT_GE(second.log_marginal_likelihood,
            first.log_marginal_likelihood - 1e-6);
}

TEST(Trainer, RespectsNoiseBounds) {
  Rng rng(3);
  const auto xs = grid_1d(10);
  Vec ys(10);
  for (std::size_t i = 0; i < 10; ++i) ys[i] = xs[i][0];
  GpRegressor gp(std::make_unique<SquaredExponentialArd>(1), 1e-4);
  gp.set_data(xs, ys);
  TrainerOptions opt;
  train_mle(gp, rng, opt);
  EXPECT_GE(gp.noise_variance(), std::exp(opt.log_noise_min) * 0.99);
  EXPECT_LE(gp.noise_variance(), std::exp(opt.log_noise_max) * 1.01);
}

TEST(Trainer, LearnsShortLengthscaleForWigglyData) {
  // A fast-oscillating function needs a lengthscale well below 1; a nearly
  // linear function tolerates a long one. Train both, compare.
  Rng rng(4);
  const auto xs = grid_1d(30);
  Vec wiggly(30), smooth(30);
  for (std::size_t i = 0; i < 30; ++i) {
    wiggly[i] = std::sin(25.0 * xs[i][0]);
    smooth[i] = 2.0 * xs[i][0];
  }

  auto train_lengthscale = [&](const Vec& ys) {
    GpRegressor gp(std::make_unique<SquaredExponentialArd>(1), 1e-4);
    gp.set_data(xs, ys);
    TrainerOptions opt;
    opt.max_iters = 80;
    opt.restarts = 3;
    train_mle(gp, rng, opt);
    return std::exp(gp.kernel().log_params()[1]);
  };

  EXPECT_LT(train_lengthscale(wiggly), train_lengthscale(smooth));
}

TEST(Trainer, TrainedModelPredictsHeldOutData) {
  Rng rng(5);
  std::vector<Vec> xs;
  Vec ys;
  for (int i = 0; i < 40; ++i) {
    const double x = rng.uniform();
    xs.push_back({x});
    ys.push_back(std::sin(8.0 * x));
  }
  GpRegressor gp(std::make_unique<SquaredExponentialArd>(1), 1e-3);
  gp.set_data(xs, ys);
  TrainerOptions opt;
  opt.restarts = 3;
  opt.max_iters = 60;
  train_mle(gp, rng, opt);

  double mse = 0.0;
  for (int i = 0; i < 50; ++i) {
    const double x = 0.02 * i + 0.01;
    const double err = gp.predict({x}).mean - std::sin(8.0 * x);
    mse += err * err;
  }
  mse /= 50.0;
  EXPECT_LT(mse, 0.01);
}

TEST(Trainer, RejectsEmptyModelAndBadOptions) {
  Rng rng(6);
  GpRegressor gp(std::make_unique<SquaredExponentialArd>(1), 1e-3);
  EXPECT_THROW(train_mle(gp, rng), InvalidArgument);

  gp.set_data({{0.5}}, {1.0});
  TrainerOptions opt;
  opt.max_iters = 0;
  EXPECT_THROW(train_mle(gp, rng, opt), InvalidArgument);
}

// Regression: the warm start's baseline fit is evaluated ONCE and handed
// to the descent, not recomputed. Observable as exactly two covariance
// factorizations when a huge gradient tolerance stops the descent before
// its first step: the baseline evaluation plus the final refit at the
// winner. The pre-fix code refitted the identical warm-start covariance a
// third time.
TEST(Trainer, WarmStartEvaluatesTheBaselineOnce) {
  Rng rng(8);
  const auto xs = grid_1d(12);
  Vec ys(12);
  for (std::size_t i = 0; i < 12; ++i) ys[i] = std::sin(5.0 * xs[i][0]);
  GpRegressor gp(std::make_unique<SquaredExponentialArd>(1), 1e-3);
  gp.set_data(xs, ys);
  gp.fit();

  easybo::obs::RecordingSink sink;
  gp.set_trace(&sink);
  TrainerOptions opt;
  opt.max_iters = 1;
  opt.restarts = 0;
  opt.tol = 1e18;  // the gradient check trips immediately
  train_mle(gp, rng, opt);
  EXPECT_EQ(sink.counter("gp.chol_refactor"), 2u);
}

TEST(Trainer, WorksWithMatern) {
  Rng rng(7);
  const auto xs = grid_1d(15);
  Vec ys(15);
  for (std::size_t i = 0; i < 15; ++i) ys[i] = std::cos(4.0 * xs[i][0]);
  GpRegressor gp(std::make_unique<Matern52Ard>(1), 1e-3);
  gp.set_data(xs, ys);
  gp.fit();
  const double before = gp.log_marginal_likelihood();
  const auto result = train_mle(gp, rng);
  EXPECT_GE(result.log_marginal_likelihood, before - 1e-9);
}

}  // namespace
}  // namespace easybo::gp
