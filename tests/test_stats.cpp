// Unit tests for common/stats.h.

#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace easybo {
namespace {

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs = {1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_EQ(rs.count(), 5u);
  EXPECT_DOUBLE_EQ(rs.mean(), 6.2);
  // Sample variance with n-1 denominator.
  double var = 0.0;
  for (double x : xs) var += (x - 6.2) * (x - 6.2);
  var /= 4.0;
  EXPECT_NEAR(rs.variance(), var, 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rs.max(), 16.0);
}

TEST(RunningStats, SinglePointHasZeroVariance) {
  RunningStats rs;
  rs.add(3.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  EXPECT_DOUBLE_EQ(rs.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 3.0);
  EXPECT_DOUBLE_EQ(rs.max(), 3.0);
}

TEST(RunningStats, EmptyThrows) {
  RunningStats rs;
  EXPECT_THROW(rs.mean(), InvalidArgument);
  EXPECT_THROW(rs.min(), InvalidArgument);
  EXPECT_THROW(rs.max(), InvalidArgument);
}

TEST(RunningStats, NumericallyStableOnLargeOffset) {
  // Welford should not lose the variance of small deviations around a
  // large mean.
  RunningStats rs;
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) rs.add(1e9 + rng.normal());
  EXPECT_NEAR(rs.stddev(), 1.0, 0.05);
}

TEST(Summary, BestWorstConvention) {
  // The paper maximizes FOM: Best = max, Worst = min.
  const auto s = summarize({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(s.best, 3.0);
  EXPECT_DOUBLE_EQ(s.worst, 1.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.0);
  EXPECT_EQ(s.n, 3u);
}

TEST(Summary, EmptyThrows) {
  EXPECT_THROW(summarize({}), InvalidArgument);
  EXPECT_THROW(mean_of({}), InvalidArgument);
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(median_of({5.0, 1.0, 3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median_of({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Quantile, Endpoints) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile_of(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_of(xs, 1.0), 4.0);
}

TEST(Quantile, Interpolates) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile_of(xs, 0.25), 2.5);
}

TEST(Quantile, RejectsOutOfRangeLevel) {
  EXPECT_THROW(quantile_of({1.0}, -0.1), InvalidArgument);
  EXPECT_THROW(quantile_of({1.0}, 1.1), InvalidArgument);
}

TEST(StddevOf, MatchesRunningStats) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats rs;
  for (double x : xs) rs.add(x);
  EXPECT_NEAR(stddev_of(xs), rs.stddev(), 1e-12);
}

}  // namespace
}  // namespace easybo
