// Socket-level tests for the TCP transport (src/serve/tcp_server.h):
// request/reply over a real connection, concurrent clients, the idle
// timeout, the wire line cap, the connection cap, and prompt clean
// shutdown. A tiny blocking test client keeps the transport honest —
// no shortcuts through SessionHost::handle_line.

#include "serve/tcp_server.h"

#include <gtest/gtest.h>

#ifdef __unix__

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "serve/session_config.h"

namespace easybo::serve {
namespace {

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "easybo_tcp_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string quick_config_json(std::uint64_t seed) {
  bo::BoConfig cfg;
  cfg.mode = bo::Mode::Sequential;
  cfg.acq = bo::AcqKind::EasyBo;
  cfg.penalize = true;
  cfg.batch = 1;
  cfg.init_points = 2;
  cfg.max_sims = 4;
  cfg.seed = seed;
  cfg.on_eval_failure = bo::EvalFailurePolicy::Discard;
  cfg.acq_opt.sobol_candidates = 16;
  cfg.acq_opt.random_candidates = 8;
  cfg.acq_opt.refine_evals = 10;
  cfg.trainer.max_iters = 5;
  cfg.trainer.restarts = 1;
  opt::Bounds bounds;
  bounds.lower = {0.0};
  bounds.upper = {1.0};
  return session_config_json(cfg, bounds);
}

/// Minimal blocking line client. recv_line() reads until '\n' or EOF
/// (returning what arrived); everything fails the test loudly via the
/// returned empty/partial data rather than hanging (10 s socket
/// timeouts).
class LineClient {
 public:
  explicit LineClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    timeval tv{};
    tv.tv_sec = 10;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    connected_ = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                           sizeof(addr)) == 0;
    EXPECT_TRUE(connected_);
  }
  ~LineClient() { close(); }
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  bool connected() const { return connected_; }

  void send_raw(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (n <= 0) break;
      off += static_cast<std::size_t>(n);
    }
  }

  /// One reply line, newline stripped; "" on timeout or EOF.
  std::string recv_line() {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        return line;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return "";
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  std::string request(const std::string& line) {
    send_raw(line + "\n");
    return recv_line();
  }

  /// True when the peer terminates the connection within the timeout —
  /// either a clean FIN (recv 0) or an RST (ECONNRESET, which the kernel
  /// sends when the server closes with our unread bytes still queued).
  bool peer_closed() {
    for (;;) {
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n == 0) return true;
      if (n < 0) return errno == ECONNRESET;
    }
  }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

TEST(TcpServer, ServesRequestsAndResolvesAnEphemeralPort) {
  SessionHost host(fresh_dir("basic"), 4);
  TcpServer server(host, TcpOptions{});
  server.start();
  ASSERT_TRUE(server.running());
  ASSERT_GT(server.port(), 0);

  LineClient client(server.port());
  const std::string health = client.request("STATUS");
  EXPECT_EQ(health.rfind("OK {", 0), 0u) << health;
  EXPECT_EQ(client.request("NEW a " + quick_config_json(3)), "OK created a");
  EXPECT_EQ(client.request("SUGGEST a").rfind("OK ", 0), 0u);
  EXPECT_EQ(client.request("NONSENSE").rfind("ERR ", 0), 0u);
  // Lines arriving with CRLF endings work the same.
  client.send_raw("STATUS a\r\n");
  EXPECT_EQ(client.recv_line().rfind("OK ", 0), 0u);

  server.stop();
  EXPECT_FALSE(server.running());
  EXPECT_GE(server.stats().accepted, 1u);
}

TEST(TcpServer, ConcurrentConnectionsEachGetTheirOwnReplies) {
  SessionHost host(fresh_dir("concurrent"), 8);
  TcpServer server(host, TcpOptions{});
  server.start();

  const int kClients = 4;
  std::vector<std::thread> threads;
  std::vector<int> failures(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      LineClient client(server.port());
      const std::string name = "conn" + std::to_string(c);
      if (client.request("NEW " + name + " " + quick_config_json(10 + c)) !=
          "OK created " + name) {
        ++failures[c];
      }
      for (int r = 0; r < 3; ++r) {
        const std::string reply = client.request("STATUS " + name);
        // Replies must belong to this connection's session — a crossed
        // wire would answer with another conn's name.
        if (reply.rfind("OK ", 0) != 0 ||
            reply.find("\"" + name + "\"") == std::string::npos) {
          ++failures[c];
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], 0) << "client " << c;
  }
  server.stop();
  EXPECT_GE(server.stats().accepted, static_cast<std::size_t>(kClients));
  EXPECT_EQ(server.stats().active, 0u);
}

TEST(TcpServer, IdleConnectionsAreToldAndDisconnected) {
  SessionHost host(fresh_dir("idle"), 4);
  TcpOptions options;
  options.idle_timeout_s = 0.3;
  TcpServer server(host, options);
  server.start();

  LineClient client(server.port());
  // The connection works, then goes quiet past the timeout.
  EXPECT_EQ(client.request("STATUS").rfind("OK ", 0), 0u);
  const std::string notice = client.recv_line();
  EXPECT_EQ(notice.rfind("ERR idle timeout", 0), 0u) << notice;
  EXPECT_TRUE(client.peer_closed());
  server.stop();
  EXPECT_GE(server.stats().timed_out, 1u);
}

TEST(TcpServer, SlowInFlightRequestDoesNotEatTheIdleBudget) {
  // The idle clock measures CLIENT silence. A SUGGEST that executes
  // longer than the idle timeout must not get the connection cut right
  // after its reply: the clock restarts when the reply is written, not
  // when the request arrived.
  SessionHost host(fresh_dir("slow_inflight"), 4);
  TcpOptions options;
  options.idle_timeout_s = 0.4;
  TcpServer server(host, options);
  server.start();

  LineClient client(server.port());
  ASSERT_EQ(client.request("NEW a " + quick_config_json(7)), "OK created a");

  // Make the next SUGGEST take twice the idle timeout (direct-dispatch
  // mode: no deadline token, so the injected sleep runs to completion).
  SessionHost::DebugSlowdown slow;
  slow.session = "a";
  slow.sleep_s = 0.8;
  host.set_debug_slowdown(slow);
  EXPECT_EQ(client.request("SUGGEST a").rfind("OK ", 0), 0u);

  // A fresh idle budget started with that reply: a follow-up inside the
  // window still works and the connection was never timed out.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_EQ(client.request("STATUS a").rfind("OK ", 0), 0u);
  server.stop();
  EXPECT_EQ(server.stats().timed_out, 0u);
}

TEST(TcpServer, UnframedFloodIsCutOffAtTheLineCap) {
  SessionHost host(fresh_dir("flood"), 4);
  TcpOptions options;
  options.max_line_bytes = 1024;
  TcpServer server(host, options);
  server.start();

  LineClient client(server.port());
  client.send_raw(std::string(8 * 1024, 'A'));  // no newline, ever
  const std::string notice = client.recv_line();
  EXPECT_EQ(notice.rfind("ERR request line exceeds", 0), 0u) << notice;
  EXPECT_TRUE(client.peer_closed());
  server.stop();
  EXPECT_GE(server.stats().oversized, 1u);

  // A framed request under the cap on a fresh connection still works.
  TcpServer server2(host, options);
  server2.start();
  LineClient ok_client(server2.port());
  EXPECT_EQ(ok_client.request("STATUS").rfind("OK ", 0), 0u);
  server2.stop();
}

TEST(TcpServer, ConnectionsBeyondTheCapAreRejectedAtTheDoor) {
  SessionHost host(fresh_dir("cap"), 4);
  TcpOptions options;
  options.max_clients = 1;
  TcpServer server(host, options);
  server.start();

  LineClient first(server.port());
  // Make sure the first connection is fully registered before the
  // second arrives (the accept loop counts it when it accepts).
  ASSERT_EQ(first.request("STATUS").rfind("OK ", 0), 0u);

  LineClient second(server.port());
  const std::string notice = second.recv_line();
  EXPECT_EQ(notice.rfind("ERR busy (connection limit", 0), 0u) << notice;
  EXPECT_TRUE(second.peer_closed());
  // The first connection is unaffected.
  EXPECT_EQ(first.request("STATUS").rfind("OK ", 0), 0u);

  // Freeing the slot lets the next client in.
  first.close();
  for (int spin = 0; spin < 100; ++spin) {
    if (server.stats().active == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  LineClient third(server.port());
  EXPECT_EQ(third.request("STATUS").rfind("OK ", 0), 0u);

  server.stop();
  EXPECT_GE(server.stats().rejected, 1u);
}

TEST(TcpServer, StopIsPromptAndIdempotentWithAClientConnected) {
  SessionHost host(fresh_dir("stop"), 4);
  TcpServer server(host, TcpOptions{});
  server.start();
  LineClient client(server.port());
  ASSERT_EQ(client.request("STATUS").rfind("OK ", 0), 0u);

  const auto t0 = std::chrono::steady_clock::now();
  server.stop();
  server.stop();  // idempotent
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  // One ~200 ms poll tick for the accept loop plus one for the
  // connection thread, with generous slack for a loaded machine.
  EXPECT_LT(seconds, 5.0);
  EXPECT_FALSE(server.running());
  EXPECT_TRUE(client.peer_closed());
}

TEST(TcpServer, ClientDisconnectLeavesTheServerServing) {
  SessionHost host(fresh_dir("disconnect"), 4);
  TcpServer server(host, TcpOptions{});
  server.start();
  {
    LineClient ephemeral(server.port());
    // Drop the connection mid-protocol without a goodbye.
    ephemeral.send_raw("STATUS");
  }
  LineClient client(server.port());
  EXPECT_EQ(client.request("STATUS").rfind("OK ", 0), 0u);
  server.stop();
}

}  // namespace
}  // namespace easybo::serve

#else  // !__unix__

TEST(TcpServer, SkippedOnThisPlatform) { GTEST_SKIP(); }

#endif
