// Integration tests: miniature versions of the paper's experiments wired
// end-to-end through the real circuit benchmarks, checking the qualitative
// SHAPE of the paper's findings at test-sized budgets.

#include <gtest/gtest.h>

#include <cmath>

#include "bo/engine.h"
#include "circuit/benchmark.h"
#include "common/rng.h"
#include "opt/random_search.h"

namespace easybo {
namespace {

bo::BoConfig mini(bo::Mode mode, bo::AcqKind acq, bool penalize,
                  std::size_t batch, std::uint64_t seed) {
  bo::BoConfig c;
  c.mode = mode;
  c.acq = acq;
  c.penalize = penalize;
  c.batch = batch;
  c.init_points = 12;
  c.max_sims = 50;
  c.seed = seed;
  c.acq_opt.sobol_candidates = 128;
  c.acq_opt.random_candidates = 64;
  c.acq_opt.refine_evals = 60;
  c.trainer.max_iters = 20;
  c.trainer.restarts = 1;
  return c;
}

TEST(Integration, EasyBoBeatsRandomSearchOnOpamp) {
  const auto bench = circuit::make_opamp_benchmark();
  double bo_sum = 0.0, rs_sum = 0.0;
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto cfg = mini(bo::Mode::AsyncBatch, bo::AcqKind::EasyBo, true, 5,
                          seed);
    bo_sum += bo::run_bo(cfg, bench.bounds, bench.fom).best_y;
    Rng rng(seed);
    rs_sum += opt::random_search_maximize(bench.fom, bench.bounds, rng, 50)
                  .best_y;
  }
  EXPECT_GT(bo_sum / 3.0, rs_sum / 3.0);
}

TEST(Integration, AsyncSavesWallClockOnOpamp) {
  // Fixed #sims: the async issue policy must finish sooner than the sync
  // barrier policy (the paper's central claim, Table I time column).
  const auto bench = circuit::make_opamp_benchmark();
  auto sim = [&bench](const linalg::Vec& x) { return bench.sim_time(x); };

  double sync_time = 0.0, async_time = 0.0;
  for (std::uint64_t seed : {1u, 2u}) {
    sync_time += bo::run_bo(mini(bo::Mode::SyncBatch, bo::AcqKind::EasyBo,
                                 true, 5, seed),
                            bench.bounds, bench.fom, sim)
                     .makespan;
    async_time += bo::run_bo(mini(bo::Mode::AsyncBatch, bo::AcqKind::EasyBo,
                                  true, 5, seed),
                             bench.bounds, bench.fom, sim)
                      .makespan;
  }
  EXPECT_LT(async_time, sync_time);
}

TEST(Integration, AsyncSavingLargerOnClasseThanOpamp) {
  // The class-E sim-time model has a much larger CV, so the relative async
  // saving must be larger there (paper: 9-14% op-amp vs 27-40% class-E).
  auto relative_saving = [](const circuit::SizingBenchmark& bench,
                            std::uint64_t seed) {
    auto sim = [&bench](const linalg::Vec& x) { return bench.sim_time(x); };
    const double sync =
        bo::run_bo(mini(bo::Mode::SyncBatch, bo::AcqKind::EasyBo, true, 8,
                        seed),
                   bench.bounds, bench.fom, sim)
            .makespan;
    const double async =
        bo::run_bo(mini(bo::Mode::AsyncBatch, bo::AcqKind::EasyBo, true, 8,
                        seed),
                   bench.bounds, bench.fom, sim)
            .makespan;
    return 1.0 - async / sync;
  };

  const double opamp_saving =
      relative_saving(circuit::make_opamp_benchmark(), 5);
  const double classe_saving =
      relative_saving(circuit::make_classe_benchmark(), 5);
  EXPECT_GT(classe_saving, opamp_saving);
}

TEST(Integration, PenalizedBatchMoreRobustThanUnpenalized) {
  // EasyBO vs EasyBO-S on the op-amp: across seeds, the penalized
  // asynchronous variant should have the better WORST case (the paper's
  // Table I story: EasyBO-S worst 456 vs EasyBO worst 688).
  const auto bench = circuit::make_opamp_benchmark();
  double worst_pen = 1e300, worst_unpen = 1e300;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto pen = bo::run_bo(
        mini(bo::Mode::AsyncBatch, bo::AcqKind::EasyBo, true, 6, seed),
        bench.bounds, bench.fom);
    const auto unpen = bo::run_bo(
        mini(bo::Mode::SyncBatch, bo::AcqKind::EasyBo, false, 6, seed),
        bench.bounds, bench.fom);
    worst_pen = std::min(worst_pen, pen.best_y);
    worst_unpen = std::min(worst_unpen, unpen.best_y);
  }
  // Allow a small epsilon: at mini budgets the gap can be narrow.
  EXPECT_GT(worst_pen, worst_unpen - 10.0);
}

TEST(Integration, ClasseEndToEnd) {
  const auto bench = circuit::make_classe_benchmark();
  auto sim = [&bench](const linalg::Vec& x) { return bench.sim_time(x); };
  const auto r = bo::run_bo(
      mini(bo::Mode::AsyncBatch, bo::AcqKind::EasyBo, true, 5, 9),
      bench.bounds, bench.fom, sim);
  EXPECT_EQ(r.num_evals(), 50u);
  // 50 sims on the class-E landscape should comfortably beat FOM 0
  // (random sampling hovers near -2.8).
  EXPECT_GT(r.best_y, 0.0);
  EXPECT_GT(r.utilization(5), 0.5);
}

}  // namespace
}  // namespace easybo
