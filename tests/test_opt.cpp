// Tests for the classical optimizers: Nelder-Mead, DE, PSO, SA, random
// search. Shared invariants (bounds respected, monotone history, observer
// calls) are checked per algorithm via a parameterized suite.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "circuit/testfunc.h"
#include "common/error.h"
#include "common/rng.h"
#include "opt/de.h"
#include "opt/nelder_mead.h"
#include "opt/pso.h"
#include "opt/random_search.h"
#include "opt/sa.h"

namespace easybo::opt {
namespace {

TEST(NelderMead, SolvesQuadraticBowl) {
  const Bounds b{{-5, -5}, {5, 5}};
  auto fn = [](const Vec& x) {
    return -((x[0] - 1.5) * (x[0] - 1.5) + (x[1] + 2.0) * (x[1] + 2.0));
  };
  NelderMeadOptions opt;
  opt.max_evals = 400;
  const auto r = nelder_mead_maximize(fn, b, {0.0, 0.0}, opt);
  EXPECT_NEAR(r.best_x[0], 1.5, 1e-3);
  EXPECT_NEAR(r.best_x[1], -2.0, 1e-3);
}

TEST(NelderMead, RespectsBoxWhenOptimumOutside) {
  const Bounds b{{0, 0}, {1, 1}};
  auto fn = [](const Vec& x) { return x[0] + x[1]; };  // optimum at corner
  const auto r = nelder_mead_maximize(fn, b, {0.5, 0.5});
  EXPECT_LE(r.best_x[0], 1.0);
  EXPECT_LE(r.best_x[1], 1.0);
  EXPECT_GT(r.best_y, 1.9);
}

TEST(NelderMead, HonorsEvaluationBudget) {
  const Bounds b{{-1}, {1}};
  std::size_t calls = 0;
  auto fn = [&calls](const Vec& x) {
    ++calls;
    return -x[0] * x[0];
  };
  NelderMeadOptions opt;
  opt.max_evals = 30;
  const auto r = nelder_mead_maximize(fn, b, {0.9}, opt);
  EXPECT_LE(calls, 31u);  // shrink step may finish one past the check
  EXPECT_EQ(r.num_evals, calls);
}

TEST(NelderMead, RejectsTinyBudget) {
  const Bounds b{{-1, -1}, {1, 1}};
  auto fn = [](const Vec&) { return 0.0; };
  NelderMeadOptions opt;
  opt.max_evals = 2;
  EXPECT_THROW(nelder_mead_maximize(fn, b, {0, 0}, opt), InvalidArgument);
}

TEST(De, SolvesSphere5d) {
  Rng rng(1);
  const auto tf = circuit::sphere(5);
  DeOptions opt;
  opt.max_evals = 4000;
  const auto r = de_maximize(tf.fn, tf.bounds, rng, opt);
  EXPECT_GT(r.best_y, -1e-3);
}

TEST(De, SolvesBranin) {
  Rng rng(2);
  const auto tf = circuit::branin();
  DeOptions opt;
  opt.max_evals = 3000;
  const auto r = de_maximize(tf.fn, tf.bounds, rng, opt);
  EXPECT_NEAR(r.best_y, tf.max_value, 1e-2);
}

TEST(De, RandStrategyAlsoConverges) {
  Rng rng(3);
  const auto tf = circuit::sphere(3);
  DeOptions opt;
  opt.max_evals = 4000;
  opt.strategy = DeStrategy::Rand1Bin;
  const auto r = de_maximize(tf.fn, tf.bounds, rng, opt);
  EXPECT_GT(r.best_y, -1e-2);
}

TEST(De, RejectsBadOptions) {
  Rng rng(1);
  const auto tf = circuit::sphere(2);
  DeOptions opt;
  opt.population = 3;
  EXPECT_THROW(de_maximize(tf.fn, tf.bounds, rng, opt), InvalidArgument);
  opt.population = 50;
  opt.max_evals = 10;
  EXPECT_THROW(de_maximize(tf.fn, tf.bounds, rng, opt), InvalidArgument);
}

TEST(Pso, SolvesSphere4d) {
  Rng rng(4);
  const auto tf = circuit::sphere(4);
  PsoOptions opt;
  opt.max_evals = 4000;
  const auto r = pso_maximize(tf.fn, tf.bounds, rng, opt);
  EXPECT_GT(r.best_y, -1e-3);
}

TEST(Sa, ImprovesOnSphere) {
  Rng rng(5);
  const auto tf = circuit::sphere(3);
  SaOptions opt;
  opt.max_evals = 4000;
  const auto r = sa_maximize(tf.fn, tf.bounds, rng, opt);
  EXPECT_GT(r.best_y, -0.5);
}

TEST(RandomSearch, BaselineOnSphere) {
  Rng rng(6);
  const auto tf = circuit::sphere(2);
  const auto r = random_search_maximize(tf.fn, tf.bounds, rng, 2000);
  EXPECT_GT(r.best_y, -0.5);
  EXPECT_EQ(r.num_evals, 2000u);
}

// ---------------------------------------------------------------------------
// Shared invariants, parameterized over all optimizers
// ---------------------------------------------------------------------------

using Runner = std::function<OptResult(const Objective&, const Bounds&, Rng&,
                                       std::size_t, const EvalObserver&)>;

struct NamedRunner {
  const char* name;
  Runner run;
};

class OptimizerInvariants : public ::testing::TestWithParam<NamedRunner> {};

TEST_P(OptimizerInvariants, BoundsRespectedAndHistoryMonotone) {
  Rng rng(7);
  const Bounds b{{-2.0, 0.5}, {3.0, 1.5}};
  std::size_t observed = 0;
  bool in_bounds = true;
  EvalObserver obs = [&](const Vec& x, double, std::size_t) {
    ++observed;
    in_bounds &= linalg::inside_box(x, b.lower, b.upper);
  };
  auto fn = [](const Vec& x) { return -(x[0] * x[0] + x[1] * x[1]); };
  const auto r = GetParam().run(fn, b, rng, 500, obs);

  EXPECT_TRUE(in_bounds);
  EXPECT_EQ(observed, r.num_evals);
  EXPECT_EQ(r.history.size(), r.num_evals);
  for (std::size_t i = 1; i < r.history.size(); ++i) {
    EXPECT_GE(r.history[i], r.history[i - 1]);
  }
  EXPECT_DOUBLE_EQ(r.history.back(), r.best_y);
  EXPECT_TRUE(linalg::inside_box(r.best_x, b.lower, b.upper));
}

TEST_P(OptimizerInvariants, DeterministicForFixedSeed) {
  const Bounds b{{-1.0}, {2.0}};
  auto fn = [](const Vec& x) { return std::sin(3.0 * x[0]); };
  Rng r1(42), r2(42);
  const auto a = GetParam().run(fn, b, r1, 300, nullptr);
  const auto c = GetParam().run(fn, b, r2, 300, nullptr);
  EXPECT_DOUBLE_EQ(a.best_y, c.best_y);
  EXPECT_EQ(a.best_x, c.best_x);
}

INSTANTIATE_TEST_SUITE_P(
    All, OptimizerInvariants,
    ::testing::Values(
        NamedRunner{"de",
                    [](const Objective& f, const Bounds& b, Rng& rng,
                       std::size_t evals, const EvalObserver& obs) {
                      DeOptions o;
                      o.max_evals = evals;
                      o.population = 20;
                      return de_maximize(f, b, rng, o, obs);
                    }},
        NamedRunner{"pso",
                    [](const Objective& f, const Bounds& b, Rng& rng,
                       std::size_t evals, const EvalObserver& obs) {
                      PsoOptions o;
                      o.max_evals = evals;
                      o.swarm = 20;
                      return pso_maximize(f, b, rng, o, obs);
                    }},
        NamedRunner{"sa",
                    [](const Objective& f, const Bounds& b, Rng& rng,
                       std::size_t evals, const EvalObserver& obs) {
                      SaOptions o;
                      o.max_evals = evals;
                      return sa_maximize(f, b, rng, o, obs);
                    }},
        NamedRunner{"random",
                    [](const Objective& f, const Bounds& b, Rng& rng,
                       std::size_t evals, const EvalObserver& obs) {
                      return random_search_maximize(f, b, rng, evals, obs);
                    }}),
    [](const ::testing::TestParamInfo<NamedRunner>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace easybo::opt
