// Tests for the deterministic simulation-time model and the calibrated
// benchmark bundles.

#include "circuit/sim_time_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/benchmark.h"
#include "circuit/classe.h"
#include "circuit/opamp.h"
#include "common/error.h"
#include "common/rng.h"
#include "common/stats.h"

namespace easybo::circuit {
namespace {

opt::Bounds unit_box(std::size_t d) {
  return {Vec(d, 0.0), Vec(d, 1.0)};
}

TEST(SimTimeModel, DeterministicPerDesignPoint) {
  SimTimeModel m(10.0, 0.5, 0.3, unit_box(3), 42);
  const Vec x = {0.1, 0.7, 0.4};
  EXPECT_DOUBLE_EQ(m(x), m(x));
}

TEST(SimTimeModel, DifferentPointsDifferentTimes) {
  SimTimeModel m(10.0, 0.5, 0.3, unit_box(3), 42);
  EXPECT_NE(m({0.1, 0.2, 0.3}), m({0.9, 0.8, 0.7}));
}

TEST(SimTimeModel, AlwaysPositive) {
  SimTimeModel m(10.0, 0.8, 0.5, unit_box(4), 7);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(m(rng.uniform_vector(4)), 0.0);
  }
}

TEST(SimTimeModel, MeanNearBaseWithoutSpread) {
  SimTimeModel m(20.0, 0.0, 0.0, unit_box(2), 1);
  Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(m(rng.uniform_vector(2)), 20.0);
  }
}

TEST(SimTimeModel, CoordinateSpanMovesSystematically) {
  // With pure coordinate dependence (sigma = 0), the all-lower corner must
  // be faster than the all-upper corner by the configured span.
  SimTimeModel m(10.0, 0.8, 0.0, unit_box(3), 5);
  const double fast = m({0.0, 0.0, 0.0});
  const double slow = m({1.0, 1.0, 1.0});
  EXPECT_NEAR(slow - fast, 0.8 * 10.0, 1e-9);
  EXPECT_NEAR(0.5 * (slow + fast), 10.0, 1e-9);
}

TEST(SimTimeModel, SigmaControlsCoefficientOfVariation) {
  Rng rng(3);
  auto cv_for_sigma = [&](double sigma) {
    SimTimeModel m(10.0, 0.0, sigma, unit_box(5), 11);
    RunningStats rs;
    for (int i = 0; i < 3000; ++i) rs.add(m(rng.uniform_vector(5)));
    return rs.stddev() / rs.mean();
  };
  const double cv_small = cv_for_sigma(0.1);
  const double cv_large = cv_for_sigma(0.5);
  EXPECT_NEAR(cv_small, 0.1, 0.02);
  EXPECT_GT(cv_large, 3.0 * cv_small);
}

TEST(SimTimeModel, RejectsBadParameters) {
  EXPECT_THROW(SimTimeModel(0.0, 0.1, 0.1, unit_box(2), 1), InvalidArgument);
  EXPECT_THROW(SimTimeModel(1.0, -0.1, 0.1, unit_box(2), 1),
               InvalidArgument);
  EXPECT_THROW(SimTimeModel(1.0, 0.1, -0.1, unit_box(2), 1),
               InvalidArgument);
  SimTimeModel m(1.0, 0.1, 0.1, unit_box(2), 1);
  EXPECT_THROW(m({0.5}), InvalidArgument);  // dim mismatch
}

TEST(HashNormal, DeterministicAndRoughlyStandard) {
  const Vec x = {0.3, 0.5};
  EXPECT_DOUBLE_EQ(hash_normal(x, 1), hash_normal(x, 1));
  EXPECT_NE(hash_normal(x, 1), hash_normal(x, 2));

  Rng rng(4);
  RunningStats rs;
  for (int i = 0; i < 5000; ++i) {
    rs.add(hash_normal(rng.uniform_vector(3), 9));
  }
  EXPECT_NEAR(rs.mean(), 0.0, 0.05);
  EXPECT_NEAR(rs.stddev(), 1.0, 0.05);
}

// ---------------------------------------------------------------------------
// Calibrated benchmark bundles
// ---------------------------------------------------------------------------

TEST(Benchmarks, OpampCalibration) {
  const auto b = make_opamp_benchmark();
  EXPECT_EQ(b.name, "opamp");
  EXPECT_EQ(b.bounds.dim(), kOpAmpDim);
  EXPECT_EQ(b.max_sims, 150u);
  EXPECT_EQ(b.de_sims, 20000u);

  // Mean sequential sim time ~ paper scale (1h36m for 150 sims ~ 39 s),
  // with a modest CV (paper reports only ~9-14% async savings here).
  Rng rng(5);
  RunningStats rs;
  for (int i = 0; i < 2000; ++i) {
    Vec x(b.bounds.dim());
    for (std::size_t j = 0; j < x.size(); ++j) {
      x[j] = rng.uniform(b.bounds.lower[j], b.bounds.upper[j]);
    }
    rs.add(b.sim_time(x));
  }
  EXPECT_NEAR(rs.mean(), 38.7, 8.0);
  const double cv = rs.stddev() / rs.mean();
  EXPECT_GT(cv, 0.05);
  EXPECT_LT(cv, 0.25);
}

TEST(Benchmarks, ClasseCalibration) {
  const auto b = make_classe_benchmark();
  EXPECT_EQ(b.name, "classe");
  EXPECT_EQ(b.bounds.dim(), kClassEDim);
  EXPECT_EQ(b.max_sims, 450u);
  EXPECT_EQ(b.de_sims, 15000u);

  Rng rng(6);
  RunningStats rs;
  for (int i = 0; i < 2000; ++i) {
    Vec x(b.bounds.dim());
    for (std::size_t j = 0; j < x.size(); ++j) {
      x[j] = rng.uniform(b.bounds.lower[j], b.bounds.upper[j]);
    }
    rs.add(b.sim_time(x));
  }
  EXPECT_NEAR(rs.mean(), 52.7, 12.0);
  // Large CV: this is what produces the paper's big async savings here.
  const double cv = rs.stddev() / rs.mean();
  EXPECT_GT(cv, 0.3);
}

TEST(Benchmarks, ObjectivesAreCallable) {
  const auto opamp = make_opamp_benchmark();
  Vec mid(opamp.bounds.dim());
  for (std::size_t j = 0; j < mid.size(); ++j) {
    mid[j] = 0.5 * (opamp.bounds.lower[j] + opamp.bounds.upper[j]);
  }
  EXPECT_TRUE(std::isfinite(opamp.fom(mid)));

  const auto classe = make_classe_benchmark();
  Vec mid2(classe.bounds.dim());
  for (std::size_t j = 0; j < mid2.size(); ++j) {
    mid2[j] = 0.5 * (classe.bounds.lower[j] + classe.bounds.upper[j]);
  }
  EXPECT_TRUE(std::isfinite(classe.fom(mid2)));
}

}  // namespace
}  // namespace easybo::circuit
