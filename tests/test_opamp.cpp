// Tests for the op-amp benchmark: measured metrics behave like a two-stage
// Miller op-amp should, the FOM matches its definition, and the whole box
// evaluates without throwing.

#include "circuit/opamp.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "common/sampling.h"

namespace easybo::circuit {
namespace {

Vec nominal_design() {
  //      w12  l12  w34  l34  w6    l6   itail  i2    cc      rz
  return {40.0, 0.5, 30.0, 0.5, 100.0, 0.3, 100e-6, 500e-6, 2e-12, 500.0};
}

TEST(OpAmp, NominalDesignIsReasonable) {
  const auto p = evaluate_opamp(nominal_design());
  EXPECT_TRUE(p.stable);
  EXPECT_GT(p.gain_db, 40.0);
  EXPECT_LT(p.gain_db, 120.0);
  EXPECT_GT(p.ugf_hz, 1e6);
  EXPECT_LT(p.ugf_hz, 10e9);
}

TEST(OpAmp, FomMatchesDefinition) {
  const auto p = evaluate_opamp(nominal_design());
  ASSERT_TRUE(p.stable);
  EXPECT_NEAR(p.fom,
              1.2 * p.gain_db + 10.0 * (p.ugf_hz / 1e8) +
                  1.6 * std::min(p.pm_deg, 90.0),
              1e-9);
  EXPECT_NEAR(opamp_fom(nominal_design()), p.fom, 1e-12);
}

TEST(OpAmp, MoreMillerCapLowersUgf) {
  // UGF ~ gm1 / (2 pi Cc): doubling Cc should cut UGF roughly in half.
  auto x = nominal_design();
  const auto base = evaluate_opamp(x);
  x[8] *= 2.0;
  const auto heavy = evaluate_opamp(x);
  ASSERT_TRUE(base.stable && heavy.stable);
  EXPECT_LT(heavy.ugf_hz, base.ugf_hz);
  EXPECT_NEAR(heavy.ugf_hz / base.ugf_hz, 0.5, 0.15);
}

TEST(OpAmp, MoreTailCurrentRaisesUgf) {
  auto x = nominal_design();
  const auto base = evaluate_opamp(x);
  x[6] *= 4.0;  // gm1 ~ sqrt(Id): UGF should roughly double
  const auto hot = evaluate_opamp(x);
  ASSERT_TRUE(base.stable && hot.stable);
  EXPECT_NEAR(hot.ugf_hz / base.ugf_hz, 2.0, 0.4);
}

TEST(OpAmp, LongerChannelsRaiseGain) {
  auto x = nominal_design();
  const auto base = evaluate_opamp(x);
  x[1] = 2.0;  // l12
  x[3] = 2.0;  // l34
  const auto longer = evaluate_opamp(x);
  EXPECT_GT(longer.gain_db, base.gain_db + 6.0);
}

TEST(OpAmp, MillerCompensationImprovesPhaseMargin) {
  auto x = nominal_design();
  x[8] = 0.2e-12;  // minimal Cc
  const auto under = evaluate_opamp(x);
  x[8] = 4e-12;
  const auto over = evaluate_opamp(x);
  ASSERT_TRUE(under.stable && over.stable);
  EXPECT_GT(over.pm_deg, under.pm_deg);
}

TEST(OpAmp, BoundsHaveDocumentedShape) {
  const auto b = opamp_bounds();
  ASSERT_EQ(b.dim(), kOpAmpDim);
  b.validate();
  EXPECT_DOUBLE_EQ(b.lower[1], 0.18);  // minimum channel length, 180 nm
}

TEST(OpAmp, WholeBoxEvaluatesFinite) {
  // Property sweep: every in-box design returns a finite FOM, no throws.
  Rng rng(1);
  const auto b = opamp_bounds();
  for (int i = 0; i < 300; ++i) {
    Vec x(b.dim());
    for (std::size_t j = 0; j < x.size(); ++j) {
      x[j] = rng.uniform(b.lower[j], b.upper[j]);
    }
    const auto p = evaluate_opamp(x);
    EXPECT_TRUE(std::isfinite(p.fom));
    EXPECT_TRUE(std::isfinite(p.gain_db));
  }
}

TEST(OpAmp, CornersEvaluateFinite) {
  const auto b = opamp_bounds();
  for (int corner = 0; corner < (1 << 10); corner += 73) {  // sparse sample
    Vec x(b.dim());
    for (std::size_t j = 0; j < x.size(); ++j) {
      x[j] = ((corner >> j) & 1) ? b.upper[j] : b.lower[j];
    }
    EXPECT_TRUE(std::isfinite(evaluate_opamp(x).fom));
  }
}

TEST(OpAmp, DeterministicEvaluation) {
  const auto a = evaluate_opamp(nominal_design());
  const auto b = evaluate_opamp(nominal_design());
  EXPECT_DOUBLE_EQ(a.fom, b.fom);
  EXPECT_DOUBLE_EQ(a.ugf_hz, b.ugf_hz);
}

TEST(OpAmp, RejectsWrongDimension) {
  EXPECT_THROW(evaluate_opamp({1.0, 2.0}), InvalidArgument);
}

}  // namespace
}  // namespace easybo::circuit
