// Tests for the fixed-size thread pool backing real-threads execution.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "common/error.h"

namespace easybo {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(2);
  auto f1 = pool.submit([] { return 21 * 2; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, RunsManyTasksExactlyOnce) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  futures.reserve(200);
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(1);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, WaitIdleBlocksUntilDrained) {
  ThreadPool pool(2);
  std::atomic<int> finished{0};
  for (int i = 0; i < 6; ++i) {
    pool.submit([&finished] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ++finished;
    });
  }
  pool.wait_idle();
  EXPECT_EQ(finished.load(), 6);
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> finished{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 10; ++i) {
      pool.submit([&finished] {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        ++finished;
      });
    }
  }  // destructor joins
  EXPECT_EQ(finished.load(), 10);
}

TEST(ThreadPool, RejectsZeroWorkers) {
  EXPECT_THROW(ThreadPool(0), InvalidArgument);
}

TEST(ThreadPool, SizeReportsWorkerCount) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

}  // namespace
}  // namespace easybo
