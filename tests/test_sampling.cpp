// Unit and property tests for common/sampling.h: Latin hypercube
// stratification, Sobol sequence structure, box scaling.

#include "common/sampling.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.h"

namespace easybo {
namespace {

TEST(LatinHypercube, PointsInUnitCube) {
  Rng rng(1);
  const auto s = latin_hypercube(40, 5, rng);
  EXPECT_EQ(s.n, 40u);
  EXPECT_EQ(s.dim, 5u);
  for (double v : s.points) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(LatinHypercube, EveryProjectionIsStratified) {
  Rng rng(2);
  const std::size_t n = 25;
  const auto s = latin_hypercube(n, 4, rng);
  // In every dimension, each of the n bins [k/n, (k+1)/n) holds exactly one
  // point — the defining LHS property.
  for (std::size_t j = 0; j < s.dim; ++j) {
    std::vector<int> bin_count(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      const auto bin = static_cast<std::size_t>(s.at(i, j) *
                                                static_cast<double>(n));
      ASSERT_LT(bin, n);
      ++bin_count[bin];
    }
    for (int c : bin_count) EXPECT_EQ(c, 1);
  }
}

TEST(LatinHypercube, RejectsZeroSize) {
  Rng rng(1);
  EXPECT_THROW(latin_hypercube(0, 3, rng), InvalidArgument);
  EXPECT_THROW(latin_hypercube(3, 0, rng), InvalidArgument);
}

TEST(MaximinLatinHypercube, NotWorseThanSingleDraw) {
  // The maximin variant restarts and keeps the best min-distance design;
  // statistically its min pairwise distance should beat a single LHS draw.
  auto min_dist = [](const UnitSample& s) {
    double best = 1e300;
    for (std::size_t a = 0; a < s.n; ++a) {
      for (std::size_t b = a + 1; b < s.n; ++b) {
        double d2 = 0;
        for (std::size_t j = 0; j < s.dim; ++j) {
          const double d = s.at(a, j) - s.at(b, j);
          d2 += d * d;
        }
        best = std::min(best, d2);
      }
    }
    return best;
  };
  double wins = 0;
  for (unsigned seed = 0; seed < 10; ++seed) {
    Rng r1(seed), r2(seed + 1000);
    const auto plain = latin_hypercube(20, 3, r1);
    const auto maximin = maximin_latin_hypercube(20, 3, r2, 16);
    if (min_dist(maximin) >= min_dist(plain)) ++wins;
  }
  EXPECT_GE(wins, 8);
}

TEST(Sobol, FirstVanDerCorputValues) {
  // Dimension 1 with skip=0 is the van der Corput sequence in Gray-code
  // order: 0, 1/2, 3/4, 1/4, 3/8, ... (each 2^k block covers the same
  // points as the natural order, permuted).
  SobolSequence sobol(1, /*skip=*/0);
  EXPECT_DOUBLE_EQ(sobol.next()[0], 0.0);
  EXPECT_DOUBLE_EQ(sobol.next()[0], 0.5);
  EXPECT_DOUBLE_EQ(sobol.next()[0], 0.75);
  EXPECT_DOUBLE_EQ(sobol.next()[0], 0.25);
  EXPECT_DOUBLE_EQ(sobol.next()[0], 0.375);
}

TEST(Sobol, SkipsOriginByDefault) {
  SobolSequence sobol(4);
  const auto p = sobol.next();
  bool all_zero = true;
  for (double v : p) all_zero &= (v == 0.0);
  EXPECT_FALSE(all_zero);
}

TEST(Sobol, PointsInUnitCube) {
  SobolSequence sobol(8);
  for (int i = 0; i < 500; ++i) {
    for (double v : sobol.next()) {
      EXPECT_GE(v, 0.0);
      EXPECT_LT(v, 1.0);
    }
  }
}

TEST(Sobol, BalancedInPowersOfTwo) {
  // With skip=0, the first 2^k Sobol points put exactly 2^(k-1) points in
  // each half [0, 0.5) / [0.5, 1) of every dimension.
  for (std::size_t dim : {2u, 5u, 12u, 21u}) {
    SobolSequence sobol(dim, /*skip=*/0);
    const auto s = sobol.take(64);
    for (std::size_t j = 0; j < dim; ++j) {
      int low = 0;
      for (std::size_t i = 0; i < s.n; ++i) low += (s.at(i, j) < 0.5);
      EXPECT_EQ(low, 32) << "dim=" << dim << " coord=" << j;
    }
  }
}

TEST(Sobol, DistinctPoints) {
  SobolSequence sobol(3);
  std::set<std::vector<double>> seen;
  for (int i = 0; i < 200; ++i) seen.insert(sobol.next());
  EXPECT_EQ(seen.size(), 200u);
}

TEST(Sobol, RejectsUnsupportedDimension) {
  EXPECT_THROW(SobolSequence(0), InvalidArgument);
  EXPECT_THROW(SobolSequence(22), InvalidArgument);
}

TEST(Sobol, TakeShape) {
  SobolSequence sobol(6);
  const auto s = sobol.take(33);
  EXPECT_EQ(s.n, 33u);
  EXPECT_EQ(s.dim, 6u);
  EXPECT_EQ(s.points.size(), 33u * 6u);
}

TEST(ScaleToBox, MapsEndpoints) {
  const std::vector<double> lo = {-1.0, 10.0};
  const std::vector<double> hi = {1.0, 20.0};
  const auto a = scale_to_box({0.0, 0.0}, lo, hi);
  EXPECT_DOUBLE_EQ(a[0], -1.0);
  EXPECT_DOUBLE_EQ(a[1], 10.0);
  const auto b = scale_to_box({1.0, 0.5}, lo, hi);
  EXPECT_DOUBLE_EQ(b[0], 1.0);
  EXPECT_DOUBLE_EQ(b[1], 15.0);
}

TEST(ScaleToBox, RejectsMismatchedSizes) {
  EXPECT_THROW(scale_to_box({0.5}, {0.0, 0.0}, {1.0, 1.0}), InvalidArgument);
}

TEST(RandomDesign, ShapeAndRange) {
  Rng rng(5);
  const auto s = random_design(30, 7, rng);
  EXPECT_EQ(s.points.size(), 210u);
  for (double v : s.points) {
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(UnitSample, RowExtraction) {
  Rng rng(6);
  const auto s = random_design(4, 3, rng);
  const auto r = s.row(2);
  EXPECT_EQ(r.size(), 3u);
  EXPECT_DOUBLE_EQ(r[0], s.at(2, 0));
  EXPECT_THROW(s.row(4), InvalidArgument);
}

// Parameterized: the LHS property holds across sizes and dimensions.
class LhsSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LhsSweep, OnePointPerBin) {
  const auto [n, dim] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 100 + dim));
  const auto s = latin_hypercube(static_cast<std::size_t>(n),
                                 static_cast<std::size_t>(dim), rng);
  for (std::size_t j = 0; j < s.dim; ++j) {
    std::set<std::size_t> bins;
    for (std::size_t i = 0; i < s.n; ++i) {
      bins.insert(static_cast<std::size_t>(s.at(i, j) *
                                           static_cast<double>(n)));
    }
    EXPECT_EQ(bins.size(), static_cast<std::size_t>(n));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, LhsSweep,
                         ::testing::Combine(::testing::Values(2, 10, 33, 100),
                                            ::testing::Values(1, 3, 10)));

}  // namespace
}  // namespace easybo
