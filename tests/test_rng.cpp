// Unit tests for common/rng.h: determinism, distribution sanity,
// permutation/sampling correctness.

#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.h"
#include "common/stats.h"

namespace easybo {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMomentsMatch) {
  Rng rng(11);
  RunningStats rs;
  for (int i = 0; i < 50000; ++i) rs.add(rng.uniform());
  EXPECT_NEAR(rs.mean(), 0.5, 0.01);
  EXPECT_NEAR(rs.stddev(), std::sqrt(1.0 / 12.0), 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformRejectsInvertedBounds) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform(2.0, 1.0), InvalidArgument);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(17);
  RunningStats rs;
  for (int i = 0; i < 50000; ++i) rs.add(rng.normal());
  EXPECT_NEAR(rs.mean(), 0.0, 0.02);
  EXPECT_NEAR(rs.stddev(), 1.0, 0.02);
}

TEST(Rng, NormalScaledMoments) {
  Rng rng(19);
  RunningStats rs;
  for (int i = 0; i < 50000; ++i) rs.add(rng.normal(5.0, 2.0));
  EXPECT_NEAR(rs.mean(), 5.0, 0.05);
  EXPECT_NEAR(rs.stddev(), 2.0, 0.05);
}

TEST(Rng, IndexStaysInRange) {
  Rng rng(23);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 7000; ++i) ++counts[rng.index(7)];
  for (int c : counts) EXPECT_GT(c, 700);  // roughly uniform (expected 1000)
}

TEST(Rng, IndexZeroThrows) {
  Rng rng(1);
  EXPECT_THROW(rng.index(0), InvalidArgument);
}

TEST(Rng, IntegerInclusiveBounds) {
  Rng rng(29);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.integer(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, PermutationIsValid) {
  Rng rng(37);
  const auto p = rng.permutation(50);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, PermutationIsShuffled) {
  Rng rng(41);
  const auto p = rng.permutation(100);
  std::size_t fixed = 0;
  for (std::size_t i = 0; i < p.size(); ++i) fixed += (p[i] == i);
  EXPECT_LT(fixed, 15u);  // expected ~1 fixed point
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(43);
  const auto s = rng.sample_without_replacement(20, 10);
  std::set<std::size_t> seen(s.begin(), s.end());
  EXPECT_EQ(seen.size(), 10u);
  for (auto v : s) EXPECT_LT(v, 20u);
}

TEST(Rng, SampleWithoutReplacementFullPopulation) {
  Rng rng(47);
  const auto s = rng.sample_without_replacement(5, 5);
  std::set<std::size_t> seen(s.begin(), s.end());
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
  Rng rng(1);
  EXPECT_THROW(rng.sample_without_replacement(3, 4), InvalidArgument);
}

TEST(Rng, SpawnGivesIndependentStream) {
  Rng parent(53);
  Rng child = parent.spawn();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, SpawnIsDeterministic) {
  Rng a(59), b(59);
  Rng ca = a.spawn(), cb = b.spawn();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(ca(), cb());
}

TEST(Rng, UniformVectorLength) {
  Rng rng(61);
  EXPECT_EQ(rng.uniform_vector(17).size(), 17u);
}

TEST(Rng, SaveLoadRoundTripsTheRemainingStream) {
  // Checkpoint/resume serializes RngState; the restored generator must
  // continue the stream bit for bit across every distribution, including
  // the Box-Muller normal cache. 50 seeds, interrupted mid-cache.
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Rng original(seed);
    // Warm up unevenly so some seeds carry a cached normal at save time.
    for (std::uint64_t i = 0; i < seed % 7; ++i) (void)original();
    if (seed % 2 == 1) (void)original.normal();

    const RngState state = original.save();
    Rng restored(seed + 999);  // any seed; load() overwrites everything
    restored.load(state);
    EXPECT_EQ(restored.save(), state);

    for (int i = 0; i < 20; ++i) {
      EXPECT_EQ(original(), restored()) << "seed " << seed;
      EXPECT_EQ(original.normal(), restored.normal()) << "seed " << seed;
      EXPECT_EQ(original.uniform(), restored.uniform()) << "seed " << seed;
    }
  }
}

TEST(Rng, LoadRejectsAllZeroEngineState) {
  Rng rng(1);
  RngState dead;  // all-zero words: xoshiro's absorbing state
  EXPECT_THROW(rng.load(dead), InvalidArgument);
}

TEST(Rng, SplitMix64KnownValue) {
  // Reference value from the splitmix64 reference implementation.
  std::uint64_t s = 0;
  const std::uint64_t v = splitmix64(s);
  EXPECT_EQ(s, 0x9E3779B97F4A7C15ull);
  EXPECT_NE(v, 0ull);
}

}  // namespace
}  // namespace easybo
