// Unit and property tests for linalg: vector helpers, Matrix algebra,
// Cholesky factorization with jitter.

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "linalg/cholesky.h"
#include "linalg/matrix.h"
#include "linalg/vec.h"

namespace easybo::linalg {
namespace {

TEST(Vec, DotAndNorm) {
  EXPECT_DOUBLE_EQ(dot({1, 2, 3}, {4, 5, 6}), 32.0);
  EXPECT_DOUBLE_EQ(norm2({3, 4}), 5.0);
  EXPECT_THROW(dot({1}, {1, 2}), InvalidArgument);
}

TEST(Vec, Distances) {
  EXPECT_DOUBLE_EQ(dist_sq({0, 0}, {3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(dist({0, 0}, {3, 4}), 5.0);
}

TEST(Vec, AxpyAndArithmetic) {
  Vec y = {1, 1};
  axpy(2.0, {3, 4}, y);
  EXPECT_DOUBLE_EQ(y[0], 7.0);
  EXPECT_DOUBLE_EQ(y[1], 9.0);
  const Vec s = add({1, 2}, {3, 4});
  EXPECT_DOUBLE_EQ(s[1], 6.0);
  const Vec d = sub({1, 2}, {3, 4});
  EXPECT_DOUBLE_EQ(d[0], -2.0);
  const Vec sc = scale(0.5, {2, 4});
  EXPECT_DOUBLE_EQ(sc[1], 2.0);
  EXPECT_DOUBLE_EQ(sum({1, 2, 3}), 6.0);
}

TEST(Vec, ArgExtrema) {
  EXPECT_EQ(argmax({1.0, 5.0, 3.0}), 1u);
  EXPECT_EQ(argmin({1.0, 5.0, 3.0}), 0u);
  EXPECT_THROW(argmax({}), InvalidArgument);
}

TEST(Vec, BoxHelpers) {
  const Vec lo = {0, 0}, hi = {1, 1};
  const Vec c = clamp_to_box({-0.5, 1.5}, lo, hi);
  EXPECT_DOUBLE_EQ(c[0], 0.0);
  EXPECT_DOUBLE_EQ(c[1], 1.0);
  EXPECT_TRUE(inside_box({0.5, 0.5}, lo, hi));
  EXPECT_FALSE(inside_box({1.5, 0.5}, lo, hi));
}

TEST(Matrix, ConstructionAndAccess) {
  Matrix m = {{1, 2}, {3, 4}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 2.0);
  EXPECT_THROW(m.at(2, 0), InvalidArgument);
  EXPECT_THROW(Matrix({{1, 2}, {3}}), InvalidArgument);
}

TEST(Matrix, IdentityAndFromRows) {
  const auto i3 = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(i3(1, 1), 1.0);
  EXPECT_DOUBLE_EQ(i3(0, 2), 0.0);
  const auto m = Matrix::from_rows({{1, 2}, {3, 4}});
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(Matrix, MultiplyKnown) {
  Matrix a = {{1, 2}, {3, 4}};
  Matrix b = {{5, 6}, {7, 8}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MatVec) {
  Matrix a = {{1, 2}, {3, 4}};
  const Vec y = a * Vec{1, 1};
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
  const Vec bad = {1, 2, 3};
  EXPECT_THROW(a * bad, InvalidArgument);
}

TEST(Matrix, TransposeRoundTrip) {
  Matrix a = {{1, 2, 3}, {4, 5, 6}};
  const Matrix t = a.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_TRUE(t.transposed().approx_equal(a, 0.0));
}

TEST(Matrix, TransposeTimesMatchesExplicit) {
  Matrix a = {{1, 2}, {3, 4}, {5, 6}};
  const Vec x = {1, -1, 2};
  const Vec via_helper = transpose_times(a, x);
  const Vec via_explicit = a.transposed() * x;
  EXPECT_DOUBLE_EQ(via_helper[0], via_explicit[0]);
  EXPECT_DOUBLE_EQ(via_helper[1], via_explicit[1]);
}

TEST(Matrix, GramMatchesExplicit) {
  Matrix a = {{1, 2}, {3, 4}, {5, 6}};
  const Matrix g = gram(a);
  EXPECT_TRUE(g.approx_equal(a.transposed() * a, 1e-12));
}

TEST(Matrix, DiagonalAndNorms) {
  Matrix a = {{1, 2}, {3, 4}};
  a.add_diagonal(10.0);
  EXPECT_DOUBLE_EQ(a(0, 0), 11.0);
  EXPECT_DOUBLE_EQ(a(1, 1), 14.0);
  EXPECT_DOUBLE_EQ(a.max_abs(), 14.0);
  EXPECT_NEAR(a.frobenius_norm(),
              std::sqrt(11. * 11 + 2 * 2 + 3 * 3 + 14 * 14), 1e-12);
}

TEST(Matrix, Symmetrize) {
  Matrix a = {{1, 2}, {4, 3}};
  a.symmetrize();
  EXPECT_DOUBLE_EQ(a(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 3.0);
}

TEST(Cholesky, FactorsKnownMatrix) {
  // A = L L^T with L = [[2,0],[1,3]] -> A = [[4,2],[2,10]].
  Matrix a = {{4, 2}, {2, 10}};
  Cholesky chol(a);
  EXPECT_NEAR(chol.factor()(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(chol.factor()(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(chol.factor()(1, 1), 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(chol.jitter_used(), 0.0);
}

TEST(Cholesky, SolveMatchesDirect) {
  Matrix a = {{4, 2}, {2, 10}};
  const Vec rhs = {6.0, 24.0};
  const Vec x = Cholesky(a).solve(rhs);
  // Verify A x = b.
  EXPECT_NEAR(4 * x[0] + 2 * x[1], 6.0, 1e-10);
  EXPECT_NEAR(2 * x[0] + 10 * x[1], 24.0, 1e-10);
}

TEST(Cholesky, LogDetKnown) {
  Matrix a = {{4, 2}, {2, 10}};  // det = 36
  EXPECT_NEAR(Cholesky(a).log_det(), std::log(36.0), 1e-10);
}

TEST(Cholesky, InverseTimesOriginalIsIdentity) {
  Matrix a = {{5, 1, 0}, {1, 4, 1}, {0, 1, 3}};
  const Matrix inv = Cholesky(a).inverse();
  EXPECT_TRUE((a * inv).approx_equal(Matrix::identity(3), 1e-9));
}

TEST(Cholesky, JitterRecoversSingularMatrix) {
  // Rank-1 PSD matrix: classic hallucination-duplicate scenario.
  Matrix a = {{1, 1}, {1, 1}};
  Cholesky chol(a);
  EXPECT_GT(chol.jitter_used(), 0.0);
  // The factor reconstructs A up to the added jitter.
  const Matrix l = chol.factor();
  Matrix recon(2, 2);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      double v = 0;
      for (std::size_t k = 0; k < 2; ++k) v += l(i, k) * l(j, k);
      recon(i, j) = v;
    }
  }
  EXPECT_TRUE(recon.approx_equal(a, 1e-3));
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
  Matrix a = {{1, 0}, {0, -5}};
  EXPECT_THROW(Cholesky(a, 1e-10, 3), NumericalError);
}

TEST(Cholesky, RejectsNonSquare) {
  Matrix a(2, 3);
  EXPECT_THROW(Cholesky{a}, InvalidArgument);
}

// Property test: random SPD matrices factor and solve accurately.
class CholeskySweep : public ::testing::TestWithParam<int> {};

TEST_P(CholeskySweep, RandomSpdRoundTrip) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(n));
  // SPD via B^T B + n*I.
  Matrix b(static_cast<std::size_t>(n), static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < b.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) b(i, j) = rng.normal();
  }
  Matrix a = gram(b);
  a.add_diagonal(static_cast<double>(n));

  Cholesky chol(a);
  Vec rhs(static_cast<std::size_t>(n));
  for (auto& v : rhs) v = rng.normal();
  const Vec x = chol.solve(rhs);
  const Vec back = a * x;
  for (std::size_t i = 0; i < rhs.size(); ++i) {
    EXPECT_NEAR(back[i], rhs[i], 1e-7 * a.max_abs());
  }
  // solve_lower consistency: ||L^{-1} r||^2 == r^T A^{-1} r.
  const Vec z = chol.solve_lower(rhs);
  EXPECT_NEAR(dot(z, z), dot(rhs, chol.solve(rhs)), 1e-6 * dot(rhs, rhs));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySweep,
                         ::testing::Values(1, 2, 5, 16, 64, 128));

}  // namespace
}  // namespace easybo::linalg
