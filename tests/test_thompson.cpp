// Tests for Thompson sampling and the GP-Hedge portfolio (acq/thompson.h)
// plus their engine integration (AcqKind::Ts / AcqKind::Hedge).

#include "acq/thompson.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "bo/engine.h"
#include "circuit/testfunc.h"
#include "common/error.h"

namespace easybo::acq {
namespace {

using gp::GpRegressor;
using gp::SquaredExponentialArd;

GpRegressor make_model() {
  GpRegressor gp(std::make_unique<SquaredExponentialArd>(1.0, Vec{0.2}),
                 1e-6);
  gp.set_data({{0.1}, {0.3}, {0.5}, {0.7}, {0.9}},
              {0.0, 0.5, 1.0, 0.4, -0.2});
  gp.fit();
  return gp;
}

TEST(ThompsonSampling, PrefersHighMeanRegions) {
  const auto gp = make_model();
  Rng rng(1);
  // Candidates at the training points: x = 0.5 (y = 1.0) should win most
  // draws since its posterior is tight around the highest value.
  const std::vector<Vec> candidates = {{0.1}, {0.3}, {0.5}, {0.7}, {0.9}};
  std::map<std::size_t, int> wins;
  for (int i = 0; i < 200; ++i) {
    ++wins[thompson_sample_argmax(gp, candidates, rng)];
  }
  EXPECT_GT(wins[2], 150);  // index of x = 0.5
}

TEST(ThompsonSampling, ExploresUncertainRegions) {
  const auto gp = make_model();
  Rng rng(2);
  // A far-away candidate has prior variance 1 ~ the data range: it must
  // win a non-trivial share of draws even though its mean is only the
  // prior mean.
  const std::vector<Vec> candidates = {{0.5}, {5.0}};
  int exploratory = 0;
  for (int i = 0; i < 400; ++i) {
    exploratory += thompson_sample_argmax(gp, candidates, rng) == 1;
  }
  EXPECT_GT(exploratory, 40);
  EXPECT_LT(exploratory, 360);
}

TEST(ThompsonSampling, DrawsAreRandomized) {
  const auto gp = make_model();
  Rng rng(3);
  const std::vector<Vec> candidates = {{0.45}, {0.5}, {0.55}, {2.0}};
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 100; ++i) {
    ++counts[thompson_sample_argmax(gp, candidates, rng)];
  }
  EXPECT_GE(counts.size(), 2u);  // not a deterministic argmax
}

TEST(ThompsonSampling, RejectsBadInput) {
  const auto gp = make_model();
  Rng rng(4);
  EXPECT_THROW(thompson_sample_argmax(gp, {}, rng), InvalidArgument);
}

TEST(HedgePortfolio, UniformBeforeAnyReward) {
  HedgePortfolio hedge(1.0);
  Rng rng(5);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 3000; ++i) ++counts[hedge.choose(rng)];
  for (std::size_t m = 0; m < HedgePortfolio::kMembers; ++m) {
    EXPECT_GT(counts[m], 800);
  }
}

TEST(HedgePortfolio, RewardShiftsProbabilityMass) {
  HedgePortfolio hedge(1.0);
  Rng rng(6);
  for (int i = 0; i < 5; ++i) hedge.reward({2.0, 0.0, 0.0});
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 2000; ++i) ++counts[hedge.choose(rng)];
  EXPECT_GT(counts[0], counts[1] * 5);
  EXPECT_GT(counts[0], counts[2] * 5);
}

TEST(HedgePortfolio, GainsStayBounded) {
  HedgePortfolio hedge(1.0);
  for (int i = 0; i < 1000; ++i) hedge.reward({1.0, 0.5, 0.2});
  for (double g : hedge.gains()) EXPECT_LE(g, 51.0);
}

TEST(HedgePortfolio, RejectsBadInput) {
  EXPECT_THROW(HedgePortfolio(0.0), InvalidArgument);
  HedgePortfolio hedge(1.0);
  EXPECT_THROW(hedge.reward({1.0}), InvalidArgument);
}

// ---------------------------------------------------------------------------
// Engine integration
// ---------------------------------------------------------------------------

bo::BoConfig quick(bo::AcqKind acq, bo::Mode mode, std::uint64_t seed) {
  bo::BoConfig c;
  c.mode = mode;
  c.acq = acq;
  c.penalize = true;
  c.batch = 4;
  c.init_points = 10;
  c.max_sims = 40;
  c.seed = seed;
  c.acq_opt.sobol_candidates = 96;
  c.acq_opt.random_candidates = 32;
  c.acq_opt.refine_evals = 50;
  c.ts_candidates = 96;
  c.trainer.max_iters = 15;
  c.trainer.restarts = 1;
  return c;
}

TEST(EngineIntegration, ThompsonConvergesOnSphere) {
  const auto tf = easybo::circuit::sphere(2);
  for (bo::Mode mode :
       {bo::Mode::Sequential, bo::Mode::SyncBatch, bo::Mode::AsyncBatch}) {
    auto cfg = quick(bo::AcqKind::Ts, mode, 7);
    if (mode == bo::Mode::Sequential) cfg.batch = 1;
    const auto r = bo::run_bo(cfg, tf.bounds, tf.fn);
    EXPECT_EQ(r.num_evals(), cfg.max_sims);
    EXPECT_GT(r.best_y, -3.0) << bo::to_string(mode);
  }
}

TEST(EngineIntegration, HedgeConvergesOnSphere) {
  const auto tf = easybo::circuit::sphere(2);
  auto cfg = quick(bo::AcqKind::Hedge, bo::Mode::AsyncBatch, 8);
  const auto r = bo::run_bo(cfg, tf.bounds, tf.fn);
  EXPECT_EQ(r.num_evals(), cfg.max_sims);
  EXPECT_GT(r.best_y, -2.0);
}

TEST(EngineIntegration, LabelsForNewKinds) {
  auto cfg = quick(bo::AcqKind::Ts, bo::Mode::AsyncBatch, 9);
  cfg.batch = 6;
  EXPECT_EQ(cfg.label(), "TS-6");
  cfg.acq = bo::AcqKind::Hedge;
  EXPECT_EQ(cfg.label(), "Hedge-6");
}

}  // namespace
}  // namespace easybo::acq
