// Tests for the BO engine: convergence across all algorithm
// configurations, scheduling/accounting invariants, reproducibility, and
// the algorithm-level properties the paper claims (batch diversity under
// penalization, async never slower than sync at equal budgets).

#include "bo/engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "circuit/fault_injection.h"
#include "circuit/testfunc.h"
#include "common/error.h"
#include "common/rng.h"

namespace easybo::bo {
namespace {

/// Small-budget config for fast tests.
BoConfig quick(Mode mode, AcqKind acq, bool penalize, std::size_t batch,
               std::uint64_t seed) {
  BoConfig c;
  c.mode = mode;
  c.acq = acq;
  c.penalize = penalize;
  c.batch = batch;
  c.init_points = 10;
  c.max_sims = 40;
  c.seed = seed;
  // Slim the inner loops: the landscape below is 2-D and easy.
  c.acq_opt.sobol_candidates = 128;
  c.acq_opt.random_candidates = 64;
  c.acq_opt.refine_evals = 60;
  c.trainer.max_iters = 20;
  c.trainer.restarts = 1;
  return c;
}

TEST(BoEngine, SequentialEasyBoSolvesBranin) {
  const auto tf = easybo::circuit::branin();
  auto cfg = quick(Mode::Sequential, AcqKind::EasyBo, false, 1, 1);
  cfg.max_sims = 60;
  const auto r = run_bo(cfg, tf.bounds, tf.fn);
  EXPECT_NEAR(r.best_y, tf.max_value, 0.05);
}

TEST(BoEngine, EiAndLcbAlsoConverge) {
  const auto tf = easybo::circuit::branin();
  for (AcqKind acq : {AcqKind::Ei, AcqKind::Lcb}) {
    auto cfg = quick(Mode::Sequential, acq, false, 1, 2);
    cfg.max_sims = 60;
    const auto r = run_bo(cfg, tf.bounds, tf.fn);
    EXPECT_NEAR(r.best_y, tf.max_value, 0.2)
        << "acq=" << to_string(acq);
  }
}

// All batch algorithm configurations converge reasonably on an easy
// landscape and satisfy the structural invariants.
struct AlgoCase {
  const char* name;
  Mode mode;
  AcqKind acq;
  bool penalize;
};

class BatchAlgos : public ::testing::TestWithParam<AlgoCase> {};

TEST_P(BatchAlgos, RunsAndSatisfiesInvariants) {
  const auto& p = GetParam();
  const auto tf = easybo::circuit::sphere(2);
  const auto cfg = quick(p.mode, p.acq, p.penalize, 4, 3);
  const auto r = run_bo(cfg, tf.bounds, tf.fn);

  // Budget exactly honored.
  EXPECT_EQ(r.num_evals(), cfg.max_sims);
  // Init points flagged.
  std::size_t inits = 0;
  for (const auto& e : r.evals) inits += e.is_init;
  EXPECT_EQ(inits, cfg.init_points);
  // Times sane: starts < finishes <= makespan; worker ids in range.
  for (const auto& e : r.evals) {
    EXPECT_LT(e.start, e.finish);
    EXPECT_LE(e.finish, r.makespan + 1e-9);
    EXPECT_LT(e.worker, cfg.batch);
  }
  // Accounting: total sim time = sum of durations; utilization in (0, 1].
  double total = 0.0;
  for (const auto& e : r.evals) total += e.finish - e.start;
  EXPECT_NEAR(total, r.total_sim_time, 1e-6);
  EXPECT_GT(r.utilization(cfg.batch), 0.0);
  EXPECT_LE(r.utilization(cfg.batch), 1.0 + 1e-12);
  // best_y consistent with the evals.
  double best = r.evals.front().y;
  for (const auto& e : r.evals) best = std::max(best, e.y);
  EXPECT_DOUBLE_EQ(best, r.best_y);
  // Converged decently on the easy sphere.
  EXPECT_GT(r.best_y, -1.0);
}

TEST_P(BatchAlgos, ReproducibleForFixedSeed) {
  const auto& p = GetParam();
  const auto tf = easybo::circuit::sphere(2);
  const auto cfg = quick(p.mode, p.acq, p.penalize, 4, 7);
  const auto a = run_bo(cfg, tf.bounds, tf.fn);
  const auto b = run_bo(cfg, tf.bounds, tf.fn);
  EXPECT_DOUBLE_EQ(a.best_y, b.best_y);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  ASSERT_EQ(a.num_evals(), b.num_evals());
  for (std::size_t i = 0; i < a.num_evals(); ++i) {
    EXPECT_EQ(a.evals[i].x, b.evals[i].x);
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, BatchAlgos,
    ::testing::Values(AlgoCase{"pBO", Mode::SyncBatch, AcqKind::Pbo, false},
                      AlgoCase{"pHCBO", Mode::SyncBatch, AcqKind::Phcbo,
                               false},
                      AlgoCase{"EasyBO_S", Mode::SyncBatch, AcqKind::EasyBo,
                               false},
                      AlgoCase{"EasyBO_SP", Mode::SyncBatch,
                               AcqKind::EasyBo, true},
                      AlgoCase{"EasyBO_A", Mode::AsyncBatch,
                               AcqKind::EasyBo, false},
                      AlgoCase{"EasyBO", Mode::AsyncBatch, AcqKind::EasyBo,
                               true}),
    [](const ::testing::TestParamInfo<AlgoCase>& info) {
      return info.param.name;
    });

TEST(BoEngine, AsyncMakespanNeverExceedsSyncAtEqualBudget) {
  // The paper's core scheduling claim, on a heterogeneous sim-time model.
  const auto tf = easybo::circuit::sphere(3);
  auto sim = [](const linalg::Vec& x) {
    return 1.0 + 5.0 * std::abs(std::sin(40.0 * x[0]));
  };
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    auto sync_cfg = quick(Mode::SyncBatch, AcqKind::EasyBo, true, 5, seed);
    auto async_cfg = quick(Mode::AsyncBatch, AcqKind::EasyBo, true, 5, seed);
    const auto sync = run_bo(sync_cfg, tf.bounds, tf.fn, sim);
    const auto async = run_bo(async_cfg, tf.bounds, tf.fn, sim);
    // Not an exact theorem per-seed (different proposals -> different
    // durations), but utilization must structurally favor async.
    EXPECT_GT(async.utilization(5), sync.utilization(5) - 0.02)
        << "seed " << seed;
  }
}

TEST(BoEngine, PenalizationKeepsBatchDiverse) {
  // EasyBO-SP vs EasyBO-S: within each synchronous batch, the penalized
  // variant must keep query points separated. We measure the minimum
  // intra-batch distance across the run.
  const auto tf = easybo::circuit::sphere(2);

  auto min_intra_batch_dist = [&](bool penalize) {
    auto cfg = quick(Mode::SyncBatch, AcqKind::EasyBo, penalize, 5, 11);
    cfg.max_sims = 35;
    const auto r = run_bo(cfg, tf.bounds, tf.fn);
    // Batches start after the 10 init points, in groups of 5 by start time.
    double min_dist = 1e300;
    for (std::size_t b = cfg.init_points; b + 5 <= r.num_evals(); b += 5) {
      for (std::size_t i = b; i < b + 5; ++i) {
        for (std::size_t j = i + 1; j < b + 5; ++j) {
          min_dist = std::min(
              min_dist, easybo::linalg::dist(r.evals[i].x, r.evals[j].x));
        }
      }
    }
    return min_dist;
  };

  EXPECT_GT(min_intra_batch_dist(true), 1e-6);
}

TEST(BoEngine, SequentialForcesOneWorker) {
  const auto tf = easybo::circuit::sphere(2);
  auto cfg = quick(Mode::Sequential, AcqKind::EasyBo, false, 1, 5);
  const auto r = run_bo(cfg, tf.bounds, tf.fn);
  for (const auto& e : r.evals) EXPECT_EQ(e.worker, 0u);
  // Sequential: no two evaluations overlap in time.
  for (std::size_t i = 1; i < r.num_evals(); ++i) {
    EXPECT_GE(r.evals[i].start, r.evals[i - 1].finish - 1e-9);
  }
  EXPECT_NEAR(r.utilization(1), 1.0, 1e-9);
}

TEST(BoEngine, BestVsTimeSeriesIsMonotone) {
  const auto tf = easybo::circuit::sphere(2);
  const auto cfg = quick(Mode::AsyncBatch, AcqKind::EasyBo, true, 4, 6);
  const auto r = run_bo(cfg, tf.bounds, tf.fn);
  const auto series = r.best_vs_time();
  ASSERT_EQ(series.size(), r.num_evals());
  for (std::size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].first, series[i - 1].first);
    EXPECT_GE(series[i].second, series[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(series.back().second, r.best_y);

  const auto by_evals = r.best_vs_evals();
  EXPECT_EQ(by_evals.size(), r.num_evals());
  EXPECT_DOUBLE_EQ(by_evals.back(), r.best_y);
}

TEST(BoEngine, TimeToTargetSemantics) {
  const auto tf = easybo::circuit::sphere(1);
  const auto cfg = quick(Mode::Sequential, AcqKind::EasyBo, false, 1, 8);
  const auto r = run_bo(cfg, tf.bounds, tf.fn);
  // A target below the first observation is reached at the first finish.
  const auto series = r.best_vs_time();
  EXPECT_DOUBLE_EQ(r.time_to_target(series.front().second),
                   series.front().first);
  // An unreachable target reports failure.
  EXPECT_LT(r.time_to_target(1e9), 0.0);
}

TEST(BoEngine, RunIsSingleUse) {
  const auto tf = easybo::circuit::sphere(1);
  BoEngine engine(quick(Mode::Sequential, AcqKind::EasyBo, false, 1, 9),
                  tf.bounds, tf.fn);
  engine.run();
  EXPECT_THROW(engine.run(), InvalidArgument);
}

TEST(BoEngine, RejectsNullObjective) {
  const auto tf = easybo::circuit::sphere(1);
  EXPECT_THROW(BoEngine(quick(Mode::Sequential, AcqKind::EasyBo, false, 1, 1),
                        tf.bounds, nullptr),
               InvalidArgument);
}

TEST(BoEngine, MaternKernelOptionWorks) {
  const auto tf = easybo::circuit::sphere(2);
  auto cfg = quick(Mode::Sequential, AcqKind::EasyBo, false, 1, 10);
  cfg.kernel = "matern52";
  const auto r = run_bo(cfg, tf.bounds, tf.fn);
  EXPECT_GT(r.best_y, -2.0);
}

TEST(BoEngine, VirtualAndRealExecutorsProposeIdentically) {
  // The executor seam guarantees one algorithm, two backends: with a
  // deterministic objective and serialized completions (one worker on
  // each side), the virtual-time run and the real-threads run must make
  // exactly the same proposals for the same seed.
  const auto tf = easybo::circuit::sphere(2);
  auto cfg = quick(Mode::AsyncBatch, AcqKind::EasyBo, true, 4, 21);
  cfg.init_points = 6;
  cfg.max_sims = 18;

  BoEngine virt_engine(cfg, tf.bounds, tf.fn);
  sched::VirtualExecutor virt_exec(1);
  const auto virt = virt_engine.run(virt_exec);

  BoEngine real_engine(cfg, tf.bounds, tf.fn);
  sched::ThreadExecutor real_exec(1);
  const auto real = real_engine.run(real_exec);

  ASSERT_EQ(virt.num_evals(), real.num_evals());
  for (std::size_t i = 0; i < virt.num_evals(); ++i) {
    EXPECT_EQ(virt.evals[i].x, real.evals[i].x) << "eval " << i;
    EXPECT_DOUBLE_EQ(virt.evals[i].y, real.evals[i].y) << "eval " << i;
  }
  EXPECT_DOUBLE_EQ(virt.best_y, real.best_y);
  EXPECT_EQ(virt.best_x, real.best_x);
  EXPECT_EQ(virt.hyper_refits, real.hyper_refits);
}

TEST(BoEngine, NoDuplicateQueryPointsUnderPenalization) {
  // The dedup guard + hallucination should prevent exact duplicates.
  const auto tf = easybo::circuit::sphere(2);
  const auto cfg = quick(Mode::AsyncBatch, AcqKind::EasyBo, true, 4, 12);
  const auto r = run_bo(cfg, tf.bounds, tf.fn);
  std::set<std::vector<double>> seen;
  for (const auto& e : r.evals) seen.insert(e.x);
  EXPECT_EQ(seen.size(), r.num_evals());
}

TEST(DedupProposal, LeavesNonCollidingPointsAndTheirRngAlone) {
  Rng rng(3);
  const std::vector<linalg::Vec> observed = {{0.2, 0.2}};
  const linalg::Vec x = {0.7, 0.7};
  Rng reference(3);
  const auto out = dedup_proposal(x, observed, {}, rng);
  EXPECT_EQ(out, x);
  // No collision -> no RNG draws: later proposals stay seed-identical.
  EXPECT_DOUBLE_EQ(rng.uniform(), reference.uniform());
}

TEST(DedupProposal, ClearsBoundaryDuplicatesForEverySeed) {
  // Regression: the old single clamped Gaussian nudge could land right
  // back on a duplicate sitting on the unit-cube boundary — from the
  // corner {1,1}, any nudge with two non-negative draws clamps back to
  // {1,1} (~25% of seeds). The retry + uniform-resample fallback must
  // clear every seed.
  const linalg::Vec corner = {1.0, 1.0};
  const std::vector<linalg::Vec> observed = {corner};
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Rng rng(seed);
    const auto out = dedup_proposal(corner, observed, {}, rng);
    EXPECT_GT(linalg::dist_sq(out, corner), 1e-12) << "seed " << seed;
    for (double v : out) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(DedupProposal, ChecksPendingPointsAndCountsNudges) {
  obs::RecordingSink sink;
  Rng rng(4);
  const linalg::Vec x = {0.5, 0.5};
  const std::vector<linalg::Vec> pending = {x};
  const auto out = dedup_proposal(x, {}, pending, rng, &sink);
  EXPECT_GT(linalg::dist_sq(out, x), 1e-12);
  EXPECT_GE(sink.counter("bo.dedup_nudge"), 1u);
}

TEST(BoEngine, MetricsCollectionIsBehaviorallyInert) {
  // Flipping collect_metrics must not change a single proposal: the
  // instrumentation draws no RNG and takes no branch that depends on it.
  const auto tf = easybo::circuit::sphere(2);
  auto cfg = quick(Mode::AsyncBatch, AcqKind::EasyBo, true, 4, 17);
  cfg.collect_metrics = false;
  const auto plain = run_bo(cfg, tf.bounds, tf.fn);
  cfg.collect_metrics = true;
  const auto traced = run_bo(cfg, tf.bounds, tf.fn);

  EXPECT_TRUE(plain.metrics.empty());
  EXPECT_FALSE(traced.metrics.empty());
  ASSERT_EQ(plain.num_evals(), traced.num_evals());
  for (std::size_t i = 0; i < plain.num_evals(); ++i) {
    EXPECT_EQ(plain.evals[i].x, traced.evals[i].x) << "eval " << i;
  }
  EXPECT_DOUBLE_EQ(plain.best_y, traced.best_y);
  EXPECT_DOUBLE_EQ(plain.makespan, traced.makespan);
}

TEST(BoEngine, MetricsReportAccountsTheRun) {
  // Sequential run with the refit schedule pushed past the horizon: one
  // forced MLE training after the init design, then every later update is
  // exactly one incremental Cholesky extend. This pins the engine-level
  // counter totals to the run structure.
  const auto tf = easybo::circuit::sphere(2);
  auto cfg = quick(Mode::Sequential, AcqKind::EasyBo, false, 1, 23);
  cfg.refit_every = 1000;
  cfg.collect_metrics = true;
  const auto r = run_bo(cfg, tf.bounds, tf.fn);
  const auto& m = r.metrics;
  const std::uint64_t proposals = cfg.max_sims - cfg.init_points;

  EXPECT_EQ(m.counter("bo.hyper_refit"), r.hyper_refits);
  EXPECT_EQ(r.hyper_refits, 1u);
  EXPECT_EQ(m.counter("bo.proposals.EasyBO"), proposals);
  EXPECT_EQ(m.counter("gp.chol_extend"), proposals);
  EXPECT_GE(m.counter("gp.chol_refactor"), 1u);  // inside train_mle
  EXPECT_GT(m.counter("acq.inner_evals"), 0u);

  // Phase accounting: the init design ran once, the MLE training once,
  // one acquisition maximization per proposal, and the executor clock
  // booked every evaluation (1 virtual second each by default).
  EXPECT_EQ(m.phases[static_cast<std::size_t>(obs::Phase::InitDesign)].spans,
            1u);
  EXPECT_EQ(m.phases[static_cast<std::size_t>(obs::Phase::HyperRefit)].spans,
            1u);
  EXPECT_EQ(
      m.phases[static_cast<std::size_t>(obs::Phase::AcqMaximize)].spans,
      proposals);
  EXPECT_DOUBLE_EQ(m.phase_seconds("objective_eval"),
                   static_cast<double>(cfg.max_sims));
  EXPECT_GT(m.phase_seconds("model_fit"), 0.0);

  // Worker stats grafted from the executor: one worker, fully busy.
  ASSERT_EQ(m.workers.size(), 1u);
  EXPECT_DOUBLE_EQ(m.workers[0].busy_seconds,
                   static_cast<double>(cfg.max_sims));
  EXPECT_NEAR(m.workers[0].idle_seconds, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(m.makespan_seconds, r.makespan);
}

TEST(BoEngine, ExternalRecordingSinkPopulatesMetricsToo) {
  // set_trace with a caller-owned RecordingSink is the composable variant
  // of collect_metrics; the engine must fill BoResult::metrics from it.
  const auto tf = easybo::circuit::sphere(2);
  auto cfg = quick(Mode::Sequential, AcqKind::EasyBo, false, 1, 29);
  BoEngine engine(cfg, tf.bounds, tf.fn);
  obs::RecordingSink sink;
  engine.set_trace(&sink);
  const auto r = engine.run();
  EXPECT_FALSE(r.metrics.empty());
  EXPECT_EQ(sink.counter("bo.hyper_refit"), r.hyper_refits);
  EXPECT_EQ(r.metrics.counter("bo.hyper_refit"), r.hyper_refits);
}

// ---------------------------------------------------------------------------
// Fault-tolerant evaluation pipeline (docs/failure-model.md)
// ---------------------------------------------------------------------------

/// Objective that throws on the given (1-based) call numbers.
opt::Objective throw_on_calls(opt::Objective base, std::size_t every) {
  auto calls = std::make_shared<std::atomic<std::size_t>>(0);
  return [base = std::move(base), calls, every](const Vec& x) -> double {
    if (calls->fetch_add(1) % every == every - 1) {
      throw std::runtime_error("simulator crashed");
    }
    return base(x);
  };
}

TEST(FaultPolicy, AbortPreservesThrowingBehaviorOnBothBackends) {
  // Regression for the pre-supervision contract: with the default Abort
  // policy, the objective's own exception must still surface out of
  // run(), on both executor backends (DESIGN.md §5.0 parity).
  const auto tf = easybo::circuit::sphere(2);
  auto cfg = quick(Mode::AsyncBatch, AcqKind::EasyBo, true, 3, 5);
  cfg.init_points = 6;
  cfg.max_sims = 20;
  ASSERT_EQ(cfg.on_eval_failure, EvalFailurePolicy::Abort);

  {
    BoEngine engine(cfg, tf.bounds, throw_on_calls(tf.fn, 7));
    sched::VirtualExecutor exec(3);
    EXPECT_THROW(engine.run(exec), std::runtime_error);
  }
  {
    BoEngine engine(cfg, tf.bounds, throw_on_calls(tf.fn, 7));
    sched::ThreadExecutor exec(3);
    EXPECT_THROW(engine.run(exec), std::runtime_error);
  }
}

TEST(FaultPolicy, NonAbortPoliciesWithCleanObjectiveMatchAbortRun) {
  // The budget clock changed from observations to issued evaluations;
  // with no failures the two must coincide, so Discard/Penalize runs of a
  // clean objective must reproduce the Abort run eval for eval.
  const auto tf = easybo::circuit::sphere(2);
  auto cfg = quick(Mode::AsyncBatch, AcqKind::EasyBo, true, 3, 11);
  cfg.init_points = 6;
  cfg.max_sims = 20;
  const auto reference = run_bo(cfg, tf.bounds, tf.fn);

  for (const auto policy :
       {EvalFailurePolicy::Discard, EvalFailurePolicy::Penalize}) {
    auto c = cfg;
    c.on_eval_failure = policy;
    const auto r = run_bo(c, tf.bounds, tf.fn);
    ASSERT_EQ(r.num_evals(), reference.num_evals());
    for (std::size_t i = 0; i < r.num_evals(); ++i) {
      EXPECT_EQ(r.evals[i].x, reference.evals[i].x) << "eval " << i;
    }
    EXPECT_DOUBLE_EQ(r.best_y, reference.best_y);
  }
}

TEST(FaultPolicy, DiscardCompletesFullBudgetAndNeverReproposesFailures) {
  const auto tf = easybo::circuit::sphere(2);
  auto cfg = quick(Mode::AsyncBatch, AcqKind::EasyBo, true, 3, 13);
  cfg.init_points = 8;
  cfg.max_sims = 30;
  cfg.on_eval_failure = EvalFailurePolicy::Discard;
  cfg.collect_metrics = true;

  easybo::circuit::FaultPlan plan;
  plan.throw_every = 5;
  easybo::circuit::FaultInjector injector(plan);
  const auto r = run_bo(cfg, tf.bounds, injector.wrap(tf.fn));

  // Full budget consumed despite the failures — one record per issued
  // evaluation, failed ones flagged with NaN y and their status.
  ASSERT_EQ(r.num_evals(), cfg.max_sims);
  std::size_t failed = 0;
  std::set<std::vector<double>> seen;
  for (const auto& e : r.evals) {
    seen.insert(e.x);
    if (e.failed) {
      ++failed;
      EXPECT_TRUE(std::isnan(e.y));
      EXPECT_EQ(e.failure, "exception");
    }
  }
  EXPECT_EQ(failed, injector.faults_injected());
  EXPECT_EQ(failed, cfg.max_sims / plan.throw_every);
  // Failed locations must never be re-proposed verbatim.
  EXPECT_EQ(seen.size(), r.num_evals());

  // Metrics agree with the record-level view.
  EXPECT_EQ(r.metrics.counter("eval.failures"), failed);
  EXPECT_EQ(r.metrics.counter("eval.discarded"), failed);
  EXPECT_EQ(r.metrics.counter("eval.exceptions"), failed);
  EXPECT_EQ(r.metrics.counter("eval.penalized"), 0u);
  EXPECT_EQ(r.metrics.counter("eval.retries"), 0u);
  ASSERT_EQ(r.metrics.evals.size(), r.num_evals());
  std::size_t log_discarded = 0;
  for (const auto& e : r.metrics.evals) {
    log_discarded += e.action == "discarded";
  }
  EXPECT_EQ(log_discarded, failed);

  // The convergence series only tracks real observations.
  EXPECT_EQ(r.best_vs_evals().size(), r.num_evals() - failed);
  for (const auto& [t, best] : r.best_vs_time()) {
    EXPECT_TRUE(std::isfinite(best));
  }
}

TEST(FaultPolicy, PenalizeAbsorbsFailuresAsPseudoObservations) {
  const auto tf = easybo::circuit::sphere(2);
  auto cfg = quick(Mode::AsyncBatch, AcqKind::EasyBo, true, 3, 17);
  cfg.init_points = 8;
  cfg.max_sims = 30;
  cfg.on_eval_failure = EvalFailurePolicy::Penalize;
  cfg.eval_failure_quantile = 0.0;  // worst observed
  cfg.collect_metrics = true;

  const auto r = run_bo(cfg, tf.bounds, throw_on_calls(tf.fn, 6));

  ASSERT_EQ(r.num_evals(), cfg.max_sims);
  std::size_t penalized = 0;
  double min_ok = std::numeric_limits<double>::infinity();
  for (const auto& e : r.evals) {
    if (!e.failed) min_ok = std::min(min_ok, e.y);
  }
  for (const auto& e : r.evals) {
    if (e.failed) {
      ++penalized;
      // The pseudo-observation anchors at the worst REAL observation so
      // far; it can never beat the incumbent.
      EXPECT_TRUE(std::isfinite(e.y));
      EXPECT_LE(e.y, r.best_y);
      EXPECT_GE(e.y, min_ok);
    }
  }
  EXPECT_GT(penalized, 0u);
  EXPECT_EQ(r.metrics.counter("eval.penalized"), penalized);
  EXPECT_EQ(r.metrics.counter("eval.failures"), penalized);
  EXPECT_TRUE(std::isfinite(r.best_y));
}

TEST(FaultPolicy, RetriesRecoverTransientFailuresWithoutPolicyAction) {
  // Every 5th call crashes but the crash is per-call, not per-point, so
  // one retry always recovers. No eval may reach the failure policy.
  const auto tf = easybo::circuit::sphere(2);
  auto cfg = quick(Mode::AsyncBatch, AcqKind::EasyBo, true, 3, 19);
  cfg.init_points = 6;
  cfg.max_sims = 20;
  cfg.on_eval_failure = EvalFailurePolicy::Discard;
  cfg.eval_max_retries = 2;
  cfg.collect_metrics = true;

  easybo::circuit::FaultPlan plan;
  plan.throw_every = 5;
  easybo::circuit::FaultInjector injector(plan);
  const auto r = run_bo(cfg, tf.bounds, injector.wrap(tf.fn));

  ASSERT_EQ(r.num_evals(), cfg.max_sims);
  EXPECT_EQ(r.metrics.counter("eval.failures"), 0u);
  EXPECT_GT(r.metrics.counter("eval.retries"), 0u);
  EXPECT_EQ(r.metrics.counter("eval.retries"),
            r.metrics.counter("eval.exceptions"));
  std::size_t retried = 0;
  for (const auto& e : r.evals) {
    EXPECT_FALSE(e.failed);
    retried += e.attempts > 1;
  }
  EXPECT_EQ(retried, r.metrics.counter("eval.retries"));
}

TEST(FaultPolicy, NonFiniteValuesAreFailuresNotObservations) {
  const auto tf = easybo::circuit::sphere(2);
  auto cfg = quick(Mode::AsyncBatch, AcqKind::EasyBo, true, 3, 23);
  cfg.init_points = 6;
  cfg.max_sims = 20;
  cfg.on_eval_failure = EvalFailurePolicy::Discard;
  cfg.collect_metrics = true;

  easybo::circuit::FaultPlan plan;
  plan.nan_every = 6;
  easybo::circuit::FaultInjector injector(plan);
  const auto r = run_bo(cfg, tf.bounds, injector.wrap(tf.fn));

  ASSERT_EQ(r.num_evals(), cfg.max_sims);
  EXPECT_GT(r.metrics.counter("eval.nonfinite"), 0u);
  EXPECT_EQ(r.metrics.counter("eval.nonfinite"),
            r.metrics.counter("eval.failures"));
  for (const auto& e : r.evals) {
    if (e.failed) EXPECT_EQ(e.failure, "non_finite");
  }
  EXPECT_TRUE(std::isfinite(r.best_y));
}

TEST(FaultPolicy, VirtualTimeoutsAreCutAtTheDeadline) {
  // Every 4th simulation takes 100x its nominal (1s) virtual duration;
  // with a 2s deadline those must come back as timeouts cut at 2s.
  const auto tf = easybo::circuit::sphere(2);
  auto cfg = quick(Mode::AsyncBatch, AcqKind::EasyBo, true, 3, 27);
  cfg.init_points = 6;
  cfg.max_sims = 20;
  cfg.on_eval_failure = EvalFailurePolicy::Discard;
  cfg.eval_timeout = 2.0;
  cfg.collect_metrics = true;

  easybo::circuit::FaultPlan plan;
  plan.slow_every = 4;
  easybo::circuit::FaultInjector injector(plan);
  BoEngine engine(cfg, tf.bounds, tf.fn,
                  injector.wrap_sim_time([](const Vec&) { return 1.0; }));
  const auto r = engine.run();

  ASSERT_EQ(r.num_evals(), cfg.max_sims);
  const std::size_t expected = cfg.max_sims / plan.slow_every;
  EXPECT_EQ(r.metrics.counter("eval.timeouts"), expected);
  std::size_t timed_out = 0;
  for (const auto& e : r.evals) {
    if (e.failed) {
      ++timed_out;
      EXPECT_EQ(e.failure, "timeout");
      // Cut at the deadline: occupied the worker for exactly 2s.
      EXPECT_DOUBLE_EQ(e.finish - e.start, cfg.eval_timeout);
    }
  }
  EXPECT_EQ(timed_out, expected);
}

TEST(FaultPolicy, AllInitFailuresAbortWithDescriptiveError) {
  const auto tf = easybo::circuit::sphere(2);
  auto cfg = quick(Mode::AsyncBatch, AcqKind::EasyBo, true, 3, 31);
  cfg.init_points = 6;
  cfg.max_sims = 20;
  cfg.on_eval_failure = EvalFailurePolicy::Discard;
  const auto always_throw = [](const Vec&) -> double {
    throw std::runtime_error("dead simulator");
  };
  BoEngine engine(cfg, tf.bounds, always_throw);
  EXPECT_THROW(engine.run(), Error);
}

TEST(FaultPolicy, FaultPipelineWorksOnRealThreadsToo) {
  // The same discard run on a ThreadExecutor: full budget, matching
  // counters, no exception escaping — backend parity for failures.
  const auto tf = easybo::circuit::sphere(2);
  auto cfg = quick(Mode::AsyncBatch, AcqKind::EasyBo, true, 2, 37);
  cfg.init_points = 6;
  cfg.max_sims = 20;
  cfg.on_eval_failure = EvalFailurePolicy::Discard;
  cfg.collect_metrics = true;

  easybo::circuit::FaultPlan plan;
  plan.throw_every = 5;
  easybo::circuit::FaultInjector injector(plan);
  BoEngine engine(cfg, tf.bounds, injector.wrap(tf.fn));
  sched::ThreadExecutor exec(2);
  const auto r = engine.run(exec);

  ASSERT_EQ(r.num_evals(), cfg.max_sims);
  EXPECT_EQ(r.metrics.counter("eval.failures"),
            injector.faults_injected());
  EXPECT_EQ(r.metrics.counter("eval.discarded"),
            injector.faults_injected());
  EXPECT_TRUE(std::isfinite(r.best_y));
}

TEST(FaultInjector, CountsAndChannelsAreDeterministic) {
  easybo::circuit::FaultPlan plan;
  plan.throw_every = 3;
  plan.nan_every = 4;
  easybo::circuit::FaultInjector injector(plan);
  const auto fn =
      injector.wrap([](const Vec&) { return 1.0; });
  const Vec x{0.5};
  std::size_t throws = 0, nans = 0, ok = 0;
  for (int i = 1; i <= 12; ++i) {
    try {
      const double y = fn(x);
      if (std::isnan(y)) ++nans;
      else ++ok;
    } catch (const std::runtime_error&) {
      ++throws;
    }
  }
  EXPECT_EQ(throws, 4u);  // calls 3, 6, 9, 12
  EXPECT_EQ(nans, 2u);    // calls 4, 8 (12 hits throw first: precedence)
  EXPECT_EQ(ok, 6u);
  EXPECT_EQ(injector.calls(), 12u);
  EXPECT_EQ(injector.faults_injected(), 6u);
}

}  // namespace
}  // namespace easybo::bo
