// Unit tests for common/format.h: the paper-style duration format and the
// ASCII table renderer.

#include "common/format.h"

#include <gtest/gtest.h>

#include "common/error.h"

namespace easybo {
namespace {

TEST(FormatDuration, PaperStyleExamples) {
  // Values mirroring the paper's Table I time column style.
  EXPECT_EQ(format_duration(216.0 * 3600 + 40 * 60 + 51), "216h40m51s");
  EXPECT_EQ(format_duration(21 * 60 + 19), "21m19s");
  EXPECT_EQ(format_duration(42.0), "42s");
  EXPECT_EQ(format_duration(0.0), "0s");
}

TEST(FormatDuration, RoundsSubSecond) {
  EXPECT_EQ(format_duration(59.6), "1m0s");
  EXPECT_EQ(format_duration(0.4), "0s");
}

TEST(FormatDuration, NegativeClampsToZero) {
  EXPECT_EQ(format_duration(-5.0), "0s");
}

TEST(ParseDuration, RoundTripsFormat) {
  for (double secs : {0.0, 42.0, 1279.0, 780051.0, 3600.0, 61.0}) {
    EXPECT_DOUBLE_EQ(parse_duration(format_duration(secs)), secs);
  }
}

TEST(ParseDuration, PartialFields) {
  EXPECT_DOUBLE_EQ(parse_duration("2h"), 7200.0);
  EXPECT_DOUBLE_EQ(parse_duration("90m"), 5400.0);
  EXPECT_DOUBLE_EQ(parse_duration("1.5h"), 5400.0);
}

TEST(ParseDuration, RejectsGarbage) {
  EXPECT_THROW(parse_duration(""), InvalidArgument);
  EXPECT_THROW(parse_duration("12"), InvalidArgument);
  EXPECT_THROW(parse_duration("5x"), InvalidArgument);
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(3.14159, 0), "3");
  EXPECT_EQ(format_double(-0.5, 1), "-0.5");
}

TEST(AsciiTable, RendersAlignedColumns) {
  AsciiTable t({"Algo", "Best"});
  t.add_row({"EasyBO-5", "690.36"});
  t.add_row({"pBO", "690.35"});
  const std::string s = t.str();
  EXPECT_NE(s.find("| Algo     | Best   |"), std::string::npos);
  EXPECT_NE(s.find("| EasyBO-5 | 690.36 |"), std::string::npos);
  EXPECT_NE(s.find("|----------|--------|"), std::string::npos);
}

TEST(AsciiTable, CsvOutput) {
  AsciiTable t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(AsciiTable, RejectsRaggedRow) {
  AsciiTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), InvalidArgument);
}

TEST(AsciiTable, RejectsEmptyHeader) {
  EXPECT_THROW(AsciiTable({}), InvalidArgument);
}

}  // namespace
}  // namespace easybo
