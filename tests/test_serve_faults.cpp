// Storage-fault matrix for the session host (ISSUE: chaos-tested
// recovery). For every fault channel (ENOSPC, EIO, short write, torn
// rename) injected at many different operation indices, a session driven
// to budget exhaustion must end with the bit-identical proposal stream
// of an unfaulted control host: each injected fault either fails the
// request cleanly (ERR, on-disk state intact — the command retries after
// CLOSE clears the quarantine) or is absorbed (committed observe with a
// stale snapshot, swallowed rotation fault) — never a half-written
// snapshot accepted on resume, never a divergent stream.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include "io/fs_fault.h"
#include "io/journal.h"
#include "io/json.h"
#include "serve/host.h"
#include "serve/session_config.h"

namespace easybo::serve {
namespace {

using linalg::Vec;

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "easybo_faults_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string quick_config_json(std::uint64_t seed) {
  bo::BoConfig cfg;
  cfg.mode = bo::Mode::Sequential;
  cfg.acq = bo::AcqKind::EasyBo;
  cfg.penalize = true;
  cfg.batch = 1;
  cfg.init_points = 3;
  cfg.max_sims = 7;
  cfg.seed = seed;
  cfg.on_eval_failure = bo::EvalFailurePolicy::Discard;
  cfg.acq_opt.sobol_candidates = 32;
  cfg.acq_opt.random_candidates = 16;
  cfg.acq_opt.refine_evals = 15;
  cfg.trainer.max_iters = 8;
  cfg.trainer.restarts = 1;
  opt::Bounds bounds;
  bounds.lower = {0.0, 0.0};
  bounds.upper = {1.0, 1.0};
  return session_config_json(cfg, bounds);
}

double objective_of(const Vec& x) {
  double s = 0.0;
  for (const double v : x) s += std::sin(3.0 * v) + v * v;
  return s;
}

struct Suggested {
  std::size_t tag = 0;
  Vec x;
};

Suggested parse_suggest_reply(const std::string& reply) {
  EXPECT_EQ(reply.rfind("OK ", 0), 0u) << reply;
  const io::JsonValue j = io::parse_json(reply.substr(3));
  Suggested s;
  s.tag = static_cast<std::size_t>(j.at("tag").as_double());
  for (const auto& v : j.at("x").as_array()) s.x.push_back(v.as_double());
  return s;
}

bool is_protocol_error(const std::string& reply) {
  // Replies that are a *correct answer*, not a storage failure: the
  // budget ran out. Everything else starting with ERR is treated as a
  // fault to recover from.
  return reply.find("budget exhausted") != std::string::npos;
}

/// Sends one command, recovering from storage faults the way an operator
/// (or a retrying client) would: a quarantined session is CLOSEd to
/// clear the quarantine, then the command is retried. With the fault
/// budget capped at one, a bounded number of retries must always reach a
/// non-storage reply; anything else is a recovery bug.
std::string send_recovering(SessionHost& host, const std::string& name,
                            const std::string& line) {
  for (int attempt = 0; attempt < 6; ++attempt) {
    const std::string reply = host.handle_line(line);
    if (reply.rfind("ERR ", 0) != 0 || is_protocol_error(reply)) {
      return reply;
    }
    if (reply.rfind("ERR quarantined", 0) == 0 ||
        reply.rfind("ERR storage", 0) == 0) {
      const std::string closed = host.handle_line("CLOSE " + name);
      EXPECT_EQ(closed.rfind("OK ", 0), 0u) << closed;
    }
    // Plain storage ERRs (a failed NEW or resume) retry as-is.
  }
  ADD_FAILURE() << "no recovery after repeated retries for: " << line;
  return "ERR unrecoverable";
}

/// Drives one session to exhaustion with fault recovery; returns the
/// accepted proposal stream.
std::vector<Vec> drive_recovering(SessionHost& host, const std::string& name,
                                  const std::string& config_json) {
  const std::string created =
      send_recovering(host, name, "NEW " + name + " " + config_json);
  EXPECT_EQ(created.rfind("OK ", 0), 0u) << created;
  std::vector<Vec> xs;
  for (;;) {
    const std::string reply =
        send_recovering(host, name, "SUGGEST " + name);
    if (reply.rfind("ERR ", 0) == 0) {
      EXPECT_TRUE(is_protocol_error(reply)) << reply;
      break;
    }
    const Suggested s = parse_suggest_reply(reply);
    const std::string ob = send_recovering(
        host, name,
        "OBSERVE " + name + " " + std::to_string(s.tag) + " " +
            io::json_number(objective_of(s.x)));
    EXPECT_EQ(ob.rfind("OK ", 0), 0u) << ob;
    // Count a proposal only once its observe was accepted — a SUGGEST
    // rolled back by quarantine re-issues the same tag on retry.
    xs.push_back(s.x);
  }
  return xs;
}

void expect_same_proposals(const std::vector<Vec>& a,
                           const std::vector<Vec>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "proposal " << i;
  }
}

std::vector<Vec> control_stream(const std::string& channel_name,
                                const std::string& config_json) {
  // Unique per channel: ctest runs the sweep tests as separate parallel
  // processes, which must not share a control directory.
  const std::string dir = fresh_dir("control_" + channel_name);
  SessionHost host(dir, 4);
  return drive_recovering(host, "ctl", config_json);
}

/// The matrix: one injected fault per run (max_faults = 1), swept across
/// operation indices, per channel. Every run must converge to the
/// control stream.
void sweep_channel(const char* channel_name,
                   void (*arm)(io::FsFaultPlan&, std::size_t)) {
  const std::string config = quick_config_json(101);
  const std::vector<Vec> expected = control_stream(channel_name, config);
  ASSERT_FALSE(expected.empty());
  // Indices chosen to land the single fault in create, early suggests,
  // journal appends and late snapshots alike.
  for (const std::size_t every : {1u, 2u, 3u, 5u, 9u, 17u, 33u}) {
    SCOPED_TRACE(std::string(channel_name) + " every=" +
                 std::to_string(every));
    const std::string dir =
        fresh_dir(std::string(channel_name) + "_" + std::to_string(every));
    SessionHost host(dir, 4);
    io::FsFaultPlan plan;
    arm(plan, every);
    plan.max_faults = 1;
    std::vector<Vec> got;
    {
      io::ScopedFsFaults faults(plan);
      got = drive_recovering(host, "s", config);
    }
    expect_same_proposals(got, expected);
    // And a fresh host over the surviving files resumes to the same
    // exhausted session.
    SessionHost reopened(dir, 4);
    const std::string status = reopened.handle_line("STATUS s");
    ASSERT_EQ(status.rfind("OK ", 0), 0u) << status;
    const io::JsonValue j = io::parse_json(status.substr(3));
    EXPECT_EQ(j.at("observed").as_double(), 7.0) << status;
    EXPECT_EQ(reopened.handle_line("SUGGEST s").rfind("ERR ", 0), 0u);
  }
}

TEST(ServeFaultMatrix, EnospcSweep) {
  sweep_channel("enospc", [](io::FsFaultPlan& p, std::size_t every) {
    p.enospc_every = every;
  });
}

TEST(ServeFaultMatrix, EioSweep) {
  sweep_channel("eio", [](io::FsFaultPlan& p, std::size_t every) {
    p.eio_every = every;
  });
}

TEST(ServeFaultMatrix, ShortWriteSweep) {
  sweep_channel("short_write", [](io::FsFaultPlan& p, std::size_t every) {
    p.short_write_every = every;
  });
}

TEST(ServeFaultMatrix, TornRenameSweep) {
  sweep_channel("torn_rename", [](io::FsFaultPlan& p, std::size_t every) {
    p.torn_rename_every = every;
  });
}

// ---------------------------------------------------------------------------
// Targeted failure-path anatomy
// ---------------------------------------------------------------------------

TEST(ServeFaults, ObserveJournalFaultQuarantinesWithStateRolledBack) {
  const std::string dir = fresh_dir("observe_quarantine");
  SessionHost host(dir, 4);
  const std::string config = quick_config_json(7);
  ASSERT_EQ(host.handle_line("NEW q " + config).rfind("OK ", 0), 0u);
  const Suggested s = parse_suggest_reply(host.handle_line("SUGGEST q"));

  std::string reply;
  {
    // First eligible op of OBSERVE is the journal append's write.
    io::FsFaultPlan plan;
    plan.eio_every = 1;
    plan.max_faults = 1;
    io::ScopedFsFaults faults(plan);
    reply = host.handle_line("OBSERVE q " + std::to_string(s.tag) + " 1.0");
  }
  EXPECT_EQ(reply.rfind("ERR storage q:", 0), 0u) << reply;
  EXPECT_NE(reply.find("quarantined"), std::string::npos) << reply;
  EXPECT_TRUE(host.is_quarantined("q"));
  EXPECT_FALSE(host.is_live("q"));
  EXPECT_GE(host.io_fault_count(), 1u);

  // Quarantine refuses work but serves STATUS from memory, and the
  // health plane reports degraded storage.
  EXPECT_EQ(host.handle_line("SUGGEST q").rfind("ERR quarantined q:", 0),
            0u);
  EXPECT_EQ(host.handle_line("NEW q " + config).rfind("ERR quarantined", 0),
            0u);
  const std::string st = host.handle_line("STATUS q");
  EXPECT_NE(st.find("\"quarantined\":true"), std::string::npos) << st;
  EXPECT_NE(host.handle_line("STATUS").find("\"storage\":\"degraded\""),
            std::string::npos);

  // CLOSE clears the quarantine; the resumed session still has the tag
  // pending (the failed observe really was rolled back) and accepts it.
  EXPECT_EQ(host.handle_line("CLOSE q").rfind("OK ", 0), 0u);
  EXPECT_FALSE(host.is_quarantined("q"));
  const std::string st2 = host.handle_line("STATUS q");
  EXPECT_NE(st2.find("\"pending\":[" + std::to_string(s.tag) + "]"),
            std::string::npos)
      << st2;
  EXPECT_EQ(host.handle_line("OBSERVE q " + std::to_string(s.tag) + " 1.0")
                .rfind("OK ", 0),
            0u);
  EXPECT_NE(host.handle_line("STATUS").find("\"storage\":\"ok\""),
            std::string::npos);
}

TEST(ServeFaults, ObserveSnapshotFaultIsCommittedAndRepliesOk) {
  const std::string dir = fresh_dir("observe_committed");
  SessionHost host(dir, 4);
  const std::string config = quick_config_json(8);
  ASSERT_EQ(host.handle_line("NEW c " + config).rfind("OK ", 0), 0u);
  const Suggested s = parse_suggest_reply(host.handle_line("SUGGEST c"));

  std::string reply;
  {
    // Fsync #1 of OBSERVE is the journal append (succeeds), fsync #2 is
    // the snapshot tmp file — the fault lands there.
    io::FsFaultPlan plan;
    plan.enospc_every = 2;
    plan.max_faults = 1;
    io::ScopedFsFaults faults(plan);
    reply = host.handle_line("OBSERVE c " + std::to_string(s.tag) + " 2.0");
  }
  // Journal-first: the observe is durable, so the reply is OK and the
  // session is NOT quarantined — only the health counter moves.
  EXPECT_EQ(reply.rfind("OK ", 0), 0u) << reply;
  EXPECT_FALSE(host.is_quarantined("c"));
  EXPECT_GE(host.io_fault_count(), 1u);

  // A restart resumes from the stale snapshot plus the journal tail to
  // the exact post-observe state.
  SessionHost reopened(dir, 4);
  const std::string st = reopened.handle_line("STATUS c");
  ASSERT_EQ(st.rfind("OK ", 0), 0u) << st;
  const io::JsonValue j = io::parse_json(st.substr(3));
  EXPECT_EQ(j.at("observed").as_double(), 1.0) << st;
  EXPECT_EQ(j.at("pending").as_array().size(), 0u) << st;
}

TEST(ServeFaults, BothSnapshotGenerationsDamagedRefusesLoudly) {
  const std::string dir = fresh_dir("both_damaged");
  const std::string config = quick_config_json(9);
  {
    SessionHost host(dir, 4);
    ASSERT_EQ(host.handle_line("NEW d " + config).rfind("OK ", 0), 0u);
    const Suggested s = parse_suggest_reply(host.handle_line("SUGGEST d"));
    ASSERT_EQ(host.handle_line("OBSERVE d " + std::to_string(s.tag) + " 1.0")
                  .rfind("OK ", 0),
              0u);
    // A second mutation so the rotated .old generation exists.
    parse_suggest_reply(host.handle_line("SUGGEST d"));
  }
  // Vandalize both generations down to a torn half-line.
  for (const char* suffix : {".snapshot", ".snapshot.old"}) {
    const std::string path = dir + "/d" + suffix;
    ASSERT_TRUE(io::file_exists(path)) << path;
    const std::string content = io::read_file(path);
    io::atomic_write_file(path, content.substr(0, content.size() / 2));
  }
  SessionHost host(dir, 4);
  const std::string reply = host.handle_line("SUGGEST d");
  EXPECT_EQ(reply.rfind("ERR ", 0), 0u) << reply;
  EXPECT_NE(reply.find("cannot resume session"), std::string::npos) << reply;
  // The journal held real records, so the host must NOT silently
  // recreate a fresh session over them.
  EXPECT_FALSE(host.is_live("d"));
}

TEST(ServeFaults, MissingSnapshotsWithEmptyJournalRecreatePristine) {
  const std::string dir = fresh_dir("create_crash");
  const std::string config = quick_config_json(10);
  Suggested first;
  {
    SessionHost host(dir, 4);
    ASSERT_EQ(host.handle_line("NEW p " + config).rfind("OK ", 0), 0u);
    // Suggests journal nothing, so the journal stays header-only.
    first = parse_suggest_reply(host.handle_line("SUGGEST p"));
  }
  std::filesystem::remove(dir + "/p.snapshot");
  std::filesystem::remove(dir + "/p.snapshot.old");
  SessionHost host(dir, 4);
  // Nothing observable was lost (no observe was ever journaled): the
  // host resumes to the pristine session whose first suggest is
  // bit-identical to the original.
  const std::string reply = host.handle_line("SUGGEST p");
  ASSERT_EQ(reply.rfind("OK ", 0), 0u) << reply;
  const Suggested again = parse_suggest_reply(reply);
  EXPECT_EQ(again.tag, first.tag);
  EXPECT_EQ(again.x, first.x);
}

TEST(ServeFaults, ConfigWithoutJournalRecreatesOnNextCommand) {
  const std::string dir = fresh_dir("config_only");
  const std::string config = quick_config_json(11);
  std::filesystem::create_directories(dir);
  // The on-disk signature of a NEW that crashed right after persisting
  // the config: no journal, no snapshot.
  io::atomic_write_file(dir + "/r.config", config);
  SessionHost host(dir, 4);
  const std::string reply = host.handle_line("SUGGEST r");
  EXPECT_EQ(reply.rfind("OK ", 0), 0u) << reply;
  // And the files are complete now: a restart resumes normally.
  SessionHost reopened(dir, 4);
  EXPECT_EQ(reopened.handle_line("STATUS r").rfind("OK ", 0), 0u);
}

TEST(ServeFaults, FaultDuringNewIsRetryableWithoutQuarantine) {
  const std::string dir = fresh_dir("new_retry");
  SessionHost host(dir, 4);
  const std::string config = quick_config_json(12);
  std::string reply;
  {
    io::FsFaultPlan plan;
    plan.eio_every = 1;
    plan.max_faults = 1;
    io::ScopedFsFaults faults(plan);
    reply = host.handle_line("NEW n " + config);
  }
  EXPECT_EQ(reply.rfind("ERR ", 0), 0u) << reply;
  EXPECT_FALSE(host.is_quarantined("n"));
  // The retry completes the creation from whatever subset survived.
  const std::string retry = host.handle_line("NEW n " + config);
  EXPECT_EQ(retry.rfind("OK ", 0), 0u) << retry;
  EXPECT_EQ(host.handle_line("SUGGEST n").rfind("OK ", 0), 0u);
}

}  // namespace
}  // namespace easybo::serve
