// Tests for the public facade: Problem, weighted FOM composition, the
// Optimizer wrapper, and the real-threads parallel runner.

#include "core/optimizer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>

#include "circuit/testfunc.h"
#include "common/error.h"
#include "core/problem.h"

namespace easybo {
namespace {

Problem sphere_problem() {
  const auto tf = circuit::sphere(2);
  return Problem{"sphere", tf.bounds, tf.fn, nullptr};
}

BoConfig quick_config() {
  BoConfig c;
  c.mode = bo::Mode::AsyncBatch;
  c.acq = bo::AcqKind::EasyBo;
  c.penalize = true;
  c.batch = 3;
  c.init_points = 8;
  c.max_sims = 24;
  c.seed = 2;
  c.acq_opt.sobol_candidates = 64;
  c.acq_opt.random_candidates = 32;
  c.acq_opt.refine_evals = 40;
  c.trainer.max_iters = 15;
  c.trainer.restarts = 1;
  return c;
}

TEST(Problem, ValidatesEagerly) {
  Problem p = sphere_problem();
  EXPECT_NO_THROW(p.validate());
  p.objective = nullptr;
  EXPECT_THROW(p.validate(), InvalidArgument);
  p = sphere_problem();
  p.bounds.lower[0] = p.bounds.upper[0];
  EXPECT_THROW(p.validate(), InvalidArgument);
}

TEST(WeightedFom, MatchesPaperEq1) {
  // FOM = 1.2 f1 + 10 f2 (Eq. 1 style composition).
  auto f1 = [](const linalg::Vec& x) { return x[0]; };
  auto f2 = [](const linalg::Vec& x) { return x[1]; };
  const auto fom = make_weighted_fom({f1, f2}, {1.2, 10.0});
  EXPECT_NEAR(fom({2.0, 3.0}), 1.2 * 2.0 + 10.0 * 3.0, 1e-12);
}

TEST(WeightedFom, RejectsBadComposition) {
  auto f = [](const linalg::Vec&) { return 0.0; };
  EXPECT_THROW(make_weighted_fom({}, {}), InvalidArgument);
  EXPECT_THROW(make_weighted_fom({f}, {1.0, 2.0}), InvalidArgument);
  EXPECT_THROW(make_weighted_fom({nullptr}, {1.0}), InvalidArgument);
}

TEST(Optimizer, RunsVirtualTime) {
  Optimizer opt(sphere_problem(), quick_config());
  const auto r = opt.optimize();
  EXPECT_EQ(r.num_evals(), 24u);
  EXPECT_GT(r.best_y, -3.0);
  // Null sim_time -> every evaluation costs 1 virtual second.
  for (const auto& e : r.evals) {
    EXPECT_NEAR(e.finish - e.start, 1.0, 1e-12);
  }
}

TEST(Optimizer, ConstructionValidates) {
  auto cfg = quick_config();
  cfg.max_sims = 4;  // below init_points
  EXPECT_THROW(Optimizer(sphere_problem(), cfg), InvalidArgument);
}

TEST(OptimizeParallel, RunsWithRealThreads) {
  // Objective sleeps a few ms so evaluations genuinely overlap.
  Problem p = sphere_problem();
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  auto base = p.objective;
  p.objective = [&, base](const linalg::Vec& x) {
    const int now = ++concurrent;
    int expected = peak.load();
    while (now > expected && !peak.compare_exchange_weak(expected, now)) {
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
    --concurrent;
    return base(x);
  };

  Optimizer opt(p, quick_config());
  const auto r = opt.optimize_parallel(3);
  EXPECT_EQ(r.num_evals(), 24u);
  EXPECT_GT(r.makespan, 0.0);
  EXPECT_GT(r.best_y, -3.0);
  // With 3 workers and a 3 ms objective, some overlap must have occurred.
  EXPECT_GE(peak.load(), 2);
  // Worker slots within range; start/finish ordered.
  for (const auto& e : r.evals) {
    EXPECT_LT(e.worker, 3u);
    EXPECT_LE(e.start, e.finish);
  }
}

TEST(OptimizeParallel, RequiresBatchMode) {
  auto cfg = quick_config();
  cfg.mode = bo::Mode::Sequential;
  Optimizer seq(sphere_problem(), cfg);
  EXPECT_THROW(seq.optimize_parallel(2), InvalidArgument);

  Optimizer ok(sphere_problem(), quick_config());
  EXPECT_THROW(ok.optimize_parallel(0), InvalidArgument);
}

TEST(OptimizeParallel, RunsFullAcquisitionRoster) {
  // Pre-seam, the hand-rolled real-threads loop supported only async
  // EasyBO; through the shared engine every batch configuration runs on
  // real threads too.
  struct Case {
    bo::Mode mode;
    bo::AcqKind acq;
  };
  for (const Case& c : {Case{bo::Mode::AsyncBatch, bo::AcqKind::Ts},
                        Case{bo::Mode::AsyncBatch, bo::AcqKind::Bucb},
                        Case{bo::Mode::SyncBatch, bo::AcqKind::EasyBo}}) {
    auto cfg = quick_config();
    cfg.mode = c.mode;
    cfg.acq = c.acq;
    Optimizer opt(sphere_problem(), cfg);
    const auto r = opt.optimize_parallel(2);
    EXPECT_EQ(r.num_evals(), 24u) << bo::to_string(c.acq);
    for (const auto& e : r.evals) EXPECT_LT(e.worker, 2u);
  }
}

TEST(OptimizeParallel, ThrowingObjectiveAbortsRunWithThatException) {
  // Regression: the pre-seam loop discarded the worker future, so a
  // throwing objective never produced a completion and the proposer
  // blocked forever. Now the exception must surface to the caller.
  Problem p = sphere_problem();
  std::atomic<int> calls{0};
  auto base = p.objective;
  p.objective = [&calls, base](const linalg::Vec& x) {
    if (++calls == 5) throw std::runtime_error("simulator crashed");
    return base(x);
  };
  Optimizer opt(p, quick_config());
  EXPECT_THROW(opt.optimize_parallel(3), std::runtime_error);
}

TEST(OptimizeParallel, DiscardPolicySurvivesThrowingObjective) {
  // Same crashing objective as above, but with the fault-tolerant policy
  // switched on: the run must complete its full budget on real threads
  // with the crashes recorded as failed evals instead of aborting.
  Problem p = sphere_problem();
  std::atomic<int> calls{0};
  auto base = p.objective;
  p.objective = [&calls, base](const linalg::Vec& x) {
    if (++calls % 5 == 0) throw std::runtime_error("simulator crashed");
    return base(x);
  };
  auto cfg = quick_config();
  cfg.on_eval_failure = bo::EvalFailurePolicy::Discard;
  Optimizer opt(p, cfg);
  const auto r = opt.optimize_parallel(3);
  EXPECT_EQ(r.num_evals(), cfg.max_sims);
  std::size_t failed = 0;
  for (const auto& e : r.evals) failed += e.failed;
  EXPECT_EQ(failed, cfg.max_sims / 5);
  EXPECT_TRUE(std::isfinite(r.best_y));
}

TEST(OptimizeParallel, ConstantObjectiveWithTightBoundsCompletes) {
  // Regression: the pre-seam loop skipped proposal dedup, so a constant
  // objective (every acquisition maximizer lands on the same point in a
  // tiny box) pushed duplicate rows into the Gram matrix until the
  // Cholesky jitter escalation gave up. The shared engine nudges
  // duplicates, so the run must finish without NumericalError.
  Problem p;
  p.name = "flat";
  p.bounds = opt::Bounds{{0.0, 0.0}, {1e-4, 1e-4}};
  p.objective = [](const linalg::Vec&) { return 1.0; };
  Optimizer opt(p, quick_config());
  const auto r = opt.optimize_parallel(2);
  EXPECT_EQ(r.num_evals(), 24u);
  EXPECT_DOUBLE_EQ(r.best_y, 1.0);
}

TEST(OptimizeParallel, FindsSameQualityAsVirtual) {
  Optimizer opt(sphere_problem(), quick_config());
  const auto virt = opt.optimize();
  const auto real = opt.optimize_parallel(2);
  // Different schedules, same machinery: both should be in the same
  // quality regime on an easy problem.
  EXPECT_GT(real.best_y, virt.best_y - 2.0);
}

}  // namespace
}  // namespace easybo
