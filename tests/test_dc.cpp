// Tests for the nonlinear DC operating-point solver (spice/dc.h):
// linear sanity, MOSFET bias points against square-law hand calculations,
// current mirrors, and Newton robustness from a cold start.

#include "spice/dc.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.h"

namespace easybo::spice {
namespace {

using circuit::MosProcess;
using circuit::MosType;

TEST(DcSolver, ResistiveDividerLinearCheck) {
  DcCircuit c;
  const auto vdd = c.node("vdd");
  const auto mid = c.node("mid");
  c.add_vsource(vdd, kGround, 1.8);
  c.add_resistor(vdd, mid, 30e3);
  c.add_resistor(mid, kGround, 10e3);
  const auto sol = solve_dc(c);
  ASSERT_TRUE(sol.converged);
  EXPECT_NEAR(sol.v(mid), 0.45, 1e-4);  // gmin leak ~ 3e-6 V
  EXPECT_NEAR(sol.v(vdd), 1.8, 1e-9);
}

TEST(DcSolver, CurrentSourceIntoResistor) {
  DcCircuit c;
  const auto out = c.node("out");
  c.add_isource(out, kGround, 1e-3);
  c.add_resistor(out, kGround, 2e3);
  const auto sol = solve_dc(c);
  ASSERT_TRUE(sol.converged);
  EXPECT_NEAR(sol.v(out), 2.0, 1e-4);  // gmin leak
}

TEST(DcSolver, DiodeConnectedNmosBiasPoint) {
  // Force 100 uA into a diode-connected NMOS (W/L = 10): the square law
  // predicts vgs = vth + sqrt(2 Id / (kp W/L)) (lambda small at vds = vgs).
  DcCircuit c;
  const auto d = c.node("d");
  c.add_isource(d, kGround, 100e-6);
  c.add_mosfet(MosType::Nmos, d, d, kGround, 10.0, 1.0);
  const auto sol = solve_dc(c);
  ASSERT_TRUE(sol.converged);

  const auto proc = MosProcess::nmos_180();
  const double vov = std::sqrt(2.0 * 100e-6 / (proc.kp * 10.0));
  EXPECT_NEAR(sol.v(d), proc.vth + vov, 0.03);  // lambda shifts it slightly
  ASSERT_EQ(sol.drain_current.size(), 1u);
  EXPECT_NEAR(sol.drain_current[0], 100e-6, 2e-6);
}

TEST(DcSolver, CommonSourceOperatingPoint) {
  // NMOS with vgs = 0.8 V, RD = 5 kOhm from 1.8 V. Saturation current
  // Id ~ kp/2 (W/L) vov^2 (1 + lam vds); solve consistency numerically and
  // check KVL: v(out) = vdd - Id * RD.
  DcCircuit c;
  const auto vdd = c.node("vdd");
  const auto gate = c.node("gate");
  const auto out = c.node("out");
  c.add_vsource(vdd, kGround, 1.8);
  c.add_vsource(gate, kGround, 0.8);
  c.add_resistor(vdd, out, 5e3);
  c.add_mosfet(MosType::Nmos, out, gate, kGround, 20.0, 1.0);
  const auto sol = solve_dc(c);
  ASSERT_TRUE(sol.converged);

  const double id = sol.drain_current[0];
  EXPECT_NEAR(sol.v(out), 1.8 - id * 5e3, 1e-4);  // KVL (gmin leak)
  // Ballpark of the square law (vov = 0.35 V, beta = 3.4 mA/V^2).
  const auto proc = MosProcess::nmos_180();
  const double beta = proc.kp * 20.0;
  const double ballpark = 0.5 * beta * 0.35 * 0.35;
  EXPECT_NEAR(id, ballpark, 0.4 * ballpark);
  // Device must actually be saturated at this bias.
  EXPECT_GT(sol.v(out), 0.35);
}

TEST(DcSolver, NmosCurrentMirrorCopiesCurrent) {
  // Classic mirror: reference branch (diode-connected M1) carries 50 uA;
  // M2 (same geometry) drives a load held at a saturating voltage.
  DcCircuit c;
  const auto ref = c.node("ref");
  const auto out = c.node("out");
  c.add_isource(ref, kGround, 50e-6);
  c.add_mosfet(MosType::Nmos, ref, ref, kGround, 10.0, 1.0);
  c.add_mosfet(MosType::Nmos, out, ref, kGround, 10.0, 1.0);
  c.add_vsource(out, kGround, 1.0);  // keeps M2 in saturation
  const auto sol = solve_dc(c);
  ASSERT_TRUE(sol.converged);
  // Mirror ratio 1:1 up to channel-length modulation (vds differ).
  EXPECT_NEAR(sol.drain_current[1], 50e-6, 6e-6);
}

TEST(DcSolver, MirrorRatioScalesWithWidth) {
  DcCircuit c;
  const auto ref = c.node("ref");
  const auto out = c.node("out");
  c.add_isource(ref, kGround, 50e-6);
  c.add_mosfet(MosType::Nmos, ref, ref, kGround, 10.0, 1.0);
  c.add_mosfet(MosType::Nmos, out, ref, kGround, 40.0, 1.0);  // 4x wider
  c.add_vsource(out, kGround, 1.0);
  const auto sol = solve_dc(c);
  ASSERT_TRUE(sol.converged);
  EXPECT_NEAR(sol.drain_current[1] / sol.drain_current[0], 4.0, 0.5);
}

TEST(DcSolver, PmosSourceFollowerPolarity) {
  // PMOS with source at VDD, gate at VDD-1.0, drain to ground through R:
  // conducts with |vgs| = 1.0 > vth.
  DcCircuit c;
  const auto vdd = c.node("vdd");
  const auto gate = c.node("gate");
  const auto out = c.node("out");
  c.add_vsource(vdd, kGround, 1.8);
  c.add_vsource(gate, kGround, 0.8);
  c.add_mosfet(MosType::Pmos, out, gate, vdd, 20.0, 1.0);
  c.add_resistor(out, kGround, 5e3);
  const auto sol = solve_dc(c);
  ASSERT_TRUE(sol.converged);
  EXPECT_GT(sol.v(out), 0.2);   // current flows, pulls the output up
  EXPECT_LT(sol.v(out), 1.8);
  // PMOS drain current flows OUT of the drain node (negative by our
  // into-drain convention).
  EXPECT_LT(sol.drain_current[0], 0.0);
}

TEST(DcSolver, CutoffDeviceConductsNothing) {
  DcCircuit c;
  const auto vdd = c.node("vdd");
  const auto out = c.node("out");
  c.add_vsource(vdd, kGround, 1.8);
  c.add_resistor(vdd, out, 10e3);
  // Gate grounded: vgs = 0 < vth -> cutoff; output pulled to VDD.
  c.add_mosfet(MosType::Nmos, out, kGround, kGround, 10.0, 1.0);
  const auto sol = solve_dc(c);
  ASSERT_TRUE(sol.converged);
  EXPECT_NEAR(sol.v(out), 1.8, 1e-3);
  EXPECT_NEAR(sol.drain_current[0], 0.0, 1e-9);
}

TEST(DcSolver, ReversedDrainSourceHandled) {
  // Wire the "drain" to ground and pull the "source" node high: the
  // device operates with vds < 0 and the solver must swap terminals, not
  // diverge. The pass device conducts, pulling vx close to ground.
  DcCircuit c;
  const auto vdd = c.node("vdd");
  const auto x = c.node("x");
  c.add_vsource(vdd, kGround, 1.8);
  c.add_resistor(vdd, x, 10e3);
  c.add_mosfet(MosType::Nmos, kGround, vdd, x, 10.0, 1.0);
  const auto sol = solve_dc(c);
  ASSERT_TRUE(sol.converged);
  EXPECT_LT(sol.v(x), 0.3);
}

TEST(DcSolver, ConvergesFromColdStartOnStackedStages) {
  // Two cascaded common-source stages: a multi-device nonlinear system.
  DcCircuit c;
  const auto vdd = c.node("vdd");
  const auto bias = c.node("bias");
  const auto mid = c.node("mid");
  const auto out = c.node("out");
  c.add_vsource(vdd, kGround, 1.8);
  c.add_vsource(bias, kGround, 0.75);
  c.add_resistor(vdd, mid, 8e3);
  c.add_mosfet(MosType::Nmos, mid, bias, kGround, 15.0, 0.5);
  c.add_resistor(vdd, out, 8e3);
  c.add_mosfet(MosType::Nmos, out, mid, kGround, 15.0, 0.5);
  const auto sol = solve_dc(c);
  ASSERT_TRUE(sol.converged);
  EXPECT_LT(sol.iterations, 150u);
  for (NodeId k = 1; k < c.num_nodes(); ++k) {
    EXPECT_GE(sol.v(k), -0.1);
    EXPECT_LE(sol.v(k), 1.9);
  }
}

TEST(DcSolver, RejectsBadInput) {
  DcCircuit c;
  EXPECT_THROW(solve_dc(c), InvalidArgument);  // no nodes
  const auto a = c.node("a");
  EXPECT_THROW(c.add_resistor(a, 99, 1e3), InvalidArgument);
  EXPECT_THROW(c.add_mosfet(MosType::Nmos, a, a, a, 0.0, 1.0),
               InvalidArgument);
  DcOptions bad;
  bad.max_iters = 0;
  c.add_resistor(a, kGround, 1e3);
  c.add_vsource(a, kGround, 1.0);
  EXPECT_THROW(solve_dc(c, bad), InvalidArgument);
}

}  // namespace
}  // namespace easybo::spice
