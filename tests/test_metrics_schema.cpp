// Golden-file pin of the "easybo.metrics.v1" exports (obs/metrics):
// a hand-built deterministic MetricsReport must serialize byte-for-byte
// to tests/golden/metrics_v1.{json,csv}. Any schema drift — a renamed
// key, a reordered section, a changed number format — fails here with a
// readable first-difference diff instead of silently breaking every
// downstream consumer (scripts/plot_metrics.py, scripts/obs_tail.py
// --check-counters, operator dashboards). docs/metrics-schema.md is the
// prose contract; this test is the executable one.
//
// Regenerating after an INTENTIONAL schema change:
//   EASYBO_REGEN_GOLDEN=1 ./test_metrics_schema
// then review the diff of tests/golden/ like any other API change, and
// bump the additive-change note in docs/metrics-schema.md.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "bo/engine.h"
#include "circuit/testfunc.h"
#include "obs/trace.h"

#ifndef EASYBO_TESTS_GOLDEN_DIR
#error "EASYBO_TESTS_GOLDEN_DIR must point at tests/golden"
#endif

namespace easybo::obs {
namespace {

std::string golden_path(const std::string& file) {
  return std::string(EASYBO_TESTS_GOLDEN_DIR) + "/" + file;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file " << path
                         << " (regenerate with EASYBO_REGEN_GOLDEN=1)";
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Byte-for-byte comparison with a human-readable first-difference
/// excerpt, so a schema break reads as "here is where the formats
/// diverge", not as a thousand-character string inequality.
void expect_matches_golden(const std::string& actual,
                           const std::string& file) {
  const std::string path = golden_path(file);
  if (std::getenv("EASYBO_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot regenerate " << path;
    out << actual;
    GTEST_SKIP() << "regenerated " << path;
  }
  const std::string expected = read_file(path);
  if (actual == expected) return;
  std::size_t pos = 0;
  const std::size_t limit = std::min(actual.size(), expected.size());
  while (pos < limit && actual[pos] == expected[pos]) ++pos;
  const std::size_t from = pos < 40 ? 0 : pos - 40;
  auto excerpt = [&](const std::string& s) {
    return s.substr(from, std::min<std::size_t>(100, s.size() - from));
  };
  FAIL() << "schema drift against " << file << " at byte " << pos
         << "\n  golden: ..." << excerpt(expected)
         << "\n  actual: ..." << excerpt(actual)
         << "\nIf this change is intentional, regenerate with "
            "EASYBO_REGEN_GOLDEN=1 and update docs/metrics-schema.md.";
}

/// A fully-populated report with hand-picked values that exercise the
/// number formatting (integers, shortest-round-trip doubles, values
/// needing all 17 significant digits) and every section of the schema.
MetricsReport pinned_report() {
  MetricsReport r;
  r.makespan_seconds = 123.456;
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    PhaseStat ps;
    ps.name = to_string(static_cast<Phase>(p));
    ps.seconds = 0.125 * static_cast<double>(p);  // exact in binary
    ps.spans = 2 * p;
    r.phases.push_back(ps);
  }
  r.counters = {{"bo.hyper_refit", 7},
                {"bo.proposals.EasyBO", 40},
                {"eval.retries", 3},
                {"gp.chol_extend", 33},
                {"obs.stream_dropped", 0}};
  r.workers = {{0, 100.0, 23.456}, {1, 99.5, 23.956}};
  EvalLogEntry ok;
  ok.index = 0;
  ok.status = "ok";
  ok.action = "observed";
  ok.attempts = 1;
  ok.worker = 0;
  ok.start = 0.0;
  ok.finish = 0.1;  // NOT exactly representable: pins the %.17g format
  r.evals.push_back(ok);
  EvalLogEntry failed;
  failed.index = 1;
  failed.status = "timeout";
  failed.action = "penalized";
  failed.attempts = 3;
  failed.worker = 1;
  failed.start = 0.5;
  failed.finish = 30.5;
  r.evals.push_back(failed);
  return r;
}

TEST(MetricsSchema, JsonExportMatchesGoldenByteForByte) {
  expect_matches_golden(pinned_report().to_json() + "\n",
                        "metrics_v1.json");
}

TEST(MetricsSchema, CsvExportMatchesGoldenByteForByte) {
  expect_matches_golden(pinned_report().to_csv(), "metrics_v1.csv");
}

TEST(MetricsSchema, SeededRunExportIsStructurallySound) {
  // A real engine run's export must carry the schema tag first, every
  // phase key (present even at zero), sorted counters and a coherent
  // per-eval log — the properties obs_tail.py and plot_metrics.py lean
  // on without defensive checks.
  circuit::TestFunction tf = circuit::branin();
  bo::BoConfig cfg;
  cfg.mode = bo::Mode::AsyncBatch;
  cfg.acq = bo::AcqKind::EasyBo;
  cfg.penalize = true;
  cfg.batch = 3;
  cfg.init_points = 5;
  cfg.max_sims = 12;
  cfg.seed = 5;
  cfg.collect_metrics = true;
  cfg.acq_opt.sobol_candidates = 32;
  cfg.acq_opt.random_candidates = 16;
  cfg.acq_opt.refine_evals = 10;
  cfg.trainer.max_iters = 5;
  cfg.trainer.restarts = 1;
  bo::BoEngine engine(cfg, tf.bounds, tf.fn, nullptr);
  const bo::BoResult result = engine.run();
  const std::string json = result.metrics.to_json();

  EXPECT_EQ(json.rfind("{\"schema\":\"easybo.metrics.v1\"", 0), 0u) << json;
  for (std::size_t p = 0; p < kNumPhases; ++p) {
    const std::string key =
        std::string("\"") + to_string(static_cast<Phase>(p)) + "\":{";
    EXPECT_NE(json.find(key), std::string::npos)
        << "phase key missing: " << key;
  }
  ASSERT_FALSE(result.metrics.counters.empty());
  EXPECT_TRUE(std::is_sorted(
      result.metrics.counters.begin(), result.metrics.counters.end(),
      [](const CounterStat& a, const CounterStat& b) {
        return a.name < b.name;
      }));
  EXPECT_EQ(result.metrics.evals.size(), cfg.max_sims);
  EXPECT_GT(result.metrics.makespan_seconds, 0.0);
}

}  // namespace
}  // namespace easybo::obs
