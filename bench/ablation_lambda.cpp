/// \file ablation_lambda.cpp
/// \brief Ablations of the EasyBO design choices (beyond the paper's
/// tables, motivated by its §III discussion):
///
///   (a) lambda sweep for the kappa ~ U[0, lambda] weight sampling —
///       the paper fixes lambda = 6 "to prevent too much exploration";
///   (b) nonlinear weight map w = kappa/(kappa+1) vs uniform w ~ U[0,1]
///       (the Fig. 2 argument) at fixed batch size;
///   (c) penalization on/off in async mode (EasyBO vs EasyBO-A).
///
/// Run on the op-amp benchmark with the paper's budget.
/// Environment: EASYBO_RUNS (default 3), EASYBO_SIMS (default 150).

#include <cstdio>

#include "harness.h"

int main() {
  using namespace easybo;
  using namespace easybo::bench;

  const auto circuit_bench = circuit::make_opamp_benchmark();
  const std::size_t runs = env_size("EASYBO_RUNS", 3);
  const std::size_t sims = env_size("EASYBO_SIMS", circuit_bench.max_sims);

  auto base = [&] {
    bo::BoConfig c;
    c.mode = bo::Mode::AsyncBatch;
    c.acq = bo::AcqKind::EasyBo;
    c.penalize = true;
    c.batch = 10;
    c.init_points = circuit_bench.init_points;
    c.max_sims = sims;
    apply_bench_budgets(c);
    return c;
  };

  std::printf(
      "=== Ablation (op-amp, B = 10, %zu runs, %zu sims) ===\n\n", runs,
      sims);

  std::printf("(a) lambda sweep, kappa ~ U[0, lambda] (paper: lambda = 6; "
              "max w = lambda/(lambda+1)):\n");
  {
    AsciiTable table({"lambda", "Best", "Worst", "Mean", "Std", "Time"});
    for (double lambda : {0.5, 1.0, 2.0, 4.0, 6.0, 9.0, 12.0}) {
      auto c = base();
      c.lambda = lambda;
      auto stats = run_bo_repeated(circuit_bench, c, runs);
      stats.label = format_double(lambda, 1);
      add_table_row(table, stats, 2);
      std::fflush(stdout);
    }
    std::printf("%s\n", table.str().c_str());
  }

  std::printf("(b) weight map: w = kappa/(kappa+1) vs uniform w ~ U[0,1]:\n");
  {
    AsciiTable table({"weights", "Best", "Worst", "Mean", "Std", "Time"});
    auto nonlinear = base();
    auto stats = run_bo_repeated(circuit_bench, nonlinear, runs);
    stats.label = "kappa-map";
    add_table_row(table, stats, 2);

    auto uniform = base();
    uniform.uniform_w = true;
    auto ustats = run_bo_repeated(circuit_bench, uniform, runs);
    ustats.label = "uniform-w";
    add_table_row(table, ustats, 2);
    std::printf("%s\n", table.str().c_str());
  }

  std::printf("(c) hallucination penalization on/off (async, B = 10):\n");
  {
    AsciiTable table({"penalize", "Best", "Worst", "Mean", "Std", "Time"});
    auto on = base();
    auto on_stats = run_bo_repeated(circuit_bench, on, runs);
    on_stats.label = "on (EasyBO)";
    add_table_row(table, on_stats, 2);

    auto off = base();
    off.penalize = false;
    auto off_stats = run_bo_repeated(circuit_bench, off, runs);
    off_stats.label = "off (EasyBO-A)";
    add_table_row(table, off_stats, 2);
    std::printf("%s\n", table.str().c_str());
  }
  return 0;
}
