/// \file fault_policies.cpp
/// \brief Failure-policy study (beyond the paper): what does a flaky
/// simulator farm cost, and which BoConfig::on_eval_failure policy
/// recovers most of the clean-run quality?
///
/// Async EasyBO (B = 5) on the op-amp benchmark, with roughly 10% of
/// simulator calls crashing (FaultInjector, every 10th call throws),
/// compared against the clean run under the default Abort policy:
///
///   clean/abort     no faults injected — the reference quality
///   faulty/discard  failed points dropped (budget still consumed)
///   faulty/penalize failed points absorbed at the worst observed FOM
///   + each faulty policy with 2 retries (the crash is deterministic per
///     call slot, not per point, so a retry usually succeeds)
///
/// Environment: EASYBO_RUNS (default 3), EASYBO_SIMS (default 150).

#include <cstdio>
#include <vector>

#include "circuit/fault_injection.h"
#include "harness.h"

int main() {
  using namespace easybo;
  using namespace easybo::bench;

  const auto circuit_bench = circuit::make_opamp_benchmark();
  const std::size_t runs = env_size("EASYBO_RUNS", 3);
  const std::size_t sims = env_size("EASYBO_SIMS", circuit_bench.max_sims);

  auto base = [&] {
    bo::BoConfig c;
    c.mode = bo::Mode::AsyncBatch;
    c.acq = bo::AcqKind::EasyBo;
    c.penalize = true;
    c.batch = 5;
    c.init_points = circuit_bench.init_points;
    c.max_sims = sims;
    c.collect_metrics = true;
    apply_bench_budgets(c);
    return c;
  };

  struct Case {
    const char* label;
    bool inject;
    bo::EvalFailurePolicy policy;
    std::size_t retries;
  };
  const std::vector<Case> cases = {
      {"clean/abort", false, bo::EvalFailurePolicy::Abort, 0},
      {"faulty/discard", true, bo::EvalFailurePolicy::Discard, 0},
      {"faulty/penalize", true, bo::EvalFailurePolicy::Penalize, 0},
      {"faulty/discard+r2", true, bo::EvalFailurePolicy::Discard, 2},
      {"faulty/penalize+r2", true, bo::EvalFailurePolicy::Penalize, 2},
  };

  std::printf(
      "=== Failure policies (op-amp, async B = 5, every 10th sim call "
      "crashes, %zu runs, %zu sims) ===\n\n",
      runs, sims);

  AsciiTable table({"Case", "Best", "Worst", "Mean", "Std", "Failures",
                    "Retries", "Time"});
  for (const auto& kase : cases) {
    auto config = base();
    config.on_eval_failure = kase.policy;
    config.eval_max_retries = kase.retries;

    std::vector<double> best;
    obs::MetricsReport merged;
    double makespan = 0.0;
    for (std::size_t r = 0; r < runs; ++r) {
      config.seed = 1000 + r;
      circuit::FaultPlan plan;
      if (kase.inject) plan.throw_every = 10;
      circuit::FaultInjector injector(plan);
      const opt::Objective fn = kase.inject
                                    ? injector.wrap(circuit_bench.fom)
                                    : circuit_bench.fom;
      bo::BoEngine engine(config, circuit_bench.bounds, fn,
                          [&](const linalg::Vec& x) {
                            return circuit_bench.sim_time(x);
                          });
      const auto result = engine.run();
      best.push_back(result.best_y);
      makespan += result.makespan;
      merged.merge(result.metrics);
    }

    const Summary s = summarize(best);
    table.add_row({kase.label, format_double(s.best, 2),
                   format_double(s.worst, 2), format_double(s.mean, 2),
                   format_double(s.stddev, 2),
                   std::to_string(merged.counter("eval.failures")),
                   std::to_string(merged.counter("eval.retries")),
                   format_duration(makespan / double(runs))});
    std::fflush(stdout);
  }
  std::printf("%s\n", table.str().c_str());
  std::printf(
      "Failures/Retries are totals over the %zu runs. See "
      "docs/failure-model.md for the policy semantics and EXPERIMENTS.md "
      "for the CLI recipe.\n",
      runs);
  return 0;
}
