/// \file fig2_acquisition.cpp
/// \brief Reproduces Fig. 2: how the weighted-UCB maximizer moves with w,
/// and the sampling density of EasyBO's w = kappa/(kappa+1), kappa ~
/// U[0, 6].
///
/// The paper's observation (§III-B): on a trained 1-D GP the maximizer of
/// alpha(x, w) = (1-w) mu + w sigma barely moves for small w (mu
/// dominates: all small-w acquisitions pick the same point) and shifts
/// rapidly for w near 1 — hence uniform w (pBO) wastes batch slots and the
/// sampling density should increase toward w = 1, which the kappa map
/// provides.

#include <cstdio>
#include <memory>
#include <vector>

#include "acq/acq_optimizer.h"
#include "acq/acquisition.h"
#include "common/rng.h"
#include "gp/gp.h"

int main() {
  using namespace easybo;
  using gp::Vec;

  std::printf("=== Fig. 2: weighted-UCB maximizer vs w; density of w ===\n\n");

  // 1-D toy GP over [0,1] with a clear exploit peak (around x ~ 0.31) and
  // an unexplored region (x > 0.75) where sigma is large.
  gp::GpRegressor model(
      std::make_unique<gp::SquaredExponentialArd>(1.0, Vec{0.12}), 1e-6);
  model.set_data({{0.05}, {0.2}, {0.31}, {0.45}, {0.6}, {0.72}},
                 {0.1, 0.7, 1.0, 0.55, 0.2, 0.05});
  model.fit();

  std::printf("argmax_x [(1-w) mu(x) + w sigma(x)] over x in [0, 1]:\n");
  std::printf("  %-6s %-10s %-12s\n", "w", "x*", "alpha(x*,w)");
  Rng rng(1);
  double prev_x = -1.0;
  for (double w = 0.0; w <= 1.0001; w += 0.05) {
    const acq::WeightedUcb fn(&model, &model, std::min(w, 1.0));
    acq::AcqOptOptions opt;
    opt.sobol_candidates = 512;
    opt.refine_evals = 150;
    const auto best = acq::maximize_acquisition(fn, 1, rng, {}, opt);
    const double moved = prev_x < 0.0 ? 0.0 : best.best_x[0] - prev_x;
    prev_x = best.best_x[0];
    std::printf("  %-6.2f %-10.4f %-12.4f %s\n", w, best.best_x[0],
                best.best_value,
                std::abs(moved) > 0.02 ? "<- moved" : "");
  }

  std::printf(
      "\nSampling density of w (EasyBO: kappa ~ U[0,6], w = kappa/(kappa+1)"
      " -> w in [0, 6/7], rising toward 1):\n");
  constexpr int kBins = 12;
  constexpr int kSamples = 200000;
  std::vector<int> histogram(kBins, 0);
  Rng wrng(7);
  for (int i = 0; i < kSamples; ++i) {
    const double w = acq::sample_easybo_weight(wrng, 6.0);
    const int bin = std::min(static_cast<int>(w * kBins), kBins - 1);
    ++histogram[bin];
  }
  for (int b = 0; b < kBins; ++b) {
    const double lo = static_cast<double>(b) / kBins;
    const double hi = static_cast<double>(b + 1) / kBins;
    const int bar = histogram[b] / 1500;
    std::printf("  w in [%.2f, %.2f): %6d |%s\n", lo, hi, histogram[b],
                std::string(static_cast<std::size_t>(bar), '#').c_str());
  }
  std::printf(
      "\n(uniform w, as in pBO, would put ~%d samples in every bin)\n",
      kSamples / kBins);
  return 0;
}
