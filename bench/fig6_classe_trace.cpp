/// \file fig6_classe_trace.cpp
/// \brief Reproduces Fig. 6: class-E best-FOM-so-far vs simulation
/// wall-clock for B = 15, and the headline 7.35x speed-up claim.
///
/// Same layout as fig4_opamp_trace on the class-E benchmark. The paper's
/// headline: at matched final quality, EasyBO-15 cuts 80.0% / 86.4% of
/// simulation time vs pBO-15 / pHCBO-15, i.e. up to 7.35x speed-up.
///
/// Environment: EASYBO_RUNS (default 3), EASYBO_SIMS (default 450).

#include <algorithm>
#include <cstdio>

#include "harness.h"

namespace {

using easybo::bench::AlgoStats;

double mean_best_at(const AlgoStats& stats, double t) {
  double sum = 0.0;
  for (const auto& run : stats.runs) {
    double best = 0.0;
    bool seen = false;
    for (const auto& [time, value] : run.best_vs_time()) {
      if (time > t) break;
      best = value;
      seen = true;
    }
    sum += seen ? best : run.best_vs_time().front().second;
  }
  return sum / static_cast<double>(stats.runs.size());
}

double mean_time_to(const AlgoStats& stats, double target) {
  double sum = 0.0;
  for (const auto& run : stats.runs) {
    const double t = run.time_to_target(target);
    sum += t >= 0.0 ? t : run.makespan;
  }
  return sum / static_cast<double>(stats.runs.size());
}

}  // namespace

int main() {
  using namespace easybo;
  using namespace easybo::bench;

  const auto circuit_bench = circuit::make_classe_benchmark();
  const std::size_t runs = env_size("EASYBO_RUNS", 3);
  const std::size_t sims = env_size("EASYBO_SIMS", circuit_bench.max_sims);

  std::printf(
      "=== Fig. 6: class-E best FOM vs wall-clock, B = 15 (%zu runs, %zu "
      "sims) ===\n\n",
      runs, sims);

  auto make = [&](bo::Mode mode, bo::AcqKind acq, bool penalize) {
    bo::BoConfig c;
    c.mode = mode;
    c.acq = acq;
    c.penalize = penalize;
    c.batch = 15;
    c.init_points = circuit_bench.init_points;
    c.max_sims = sims;
    apply_bench_budgets(c);
    return c;
  };

  const auto pbo = run_bo_repeated(
      circuit_bench, make(bo::Mode::SyncBatch, bo::AcqKind::Pbo, false),
      runs);
  const auto phcbo = run_bo_repeated(
      circuit_bench, make(bo::Mode::SyncBatch, bo::AcqKind::Phcbo, false),
      runs);
  const auto easybo = run_bo_repeated(
      circuit_bench, make(bo::Mode::AsyncBatch, bo::AcqKind::EasyBo, true),
      runs);

  double horizon = 0.0;
  for (const auto* s : {&pbo, &phcbo, &easybo}) {
    horizon = std::max(horizon, s->mean_makespan);
  }

  std::printf("%-10s %-12s %-12s %-12s\n", "time", "pBO-15", "pHCBO-15",
              "EasyBO-15");
  constexpr int kPoints = 20;
  for (int i = 1; i <= kPoints; ++i) {
    const double t = horizon * i / kPoints;
    std::printf("%-10s %-12.2f %-12.2f %-12.2f\n",
                format_duration(t).c_str(), mean_best_at(pbo, t),
                mean_best_at(phcbo, t), mean_best_at(easybo, t));
  }

  std::printf(
      "\nTime for EasyBO-15 to match the competitors' final mean FOM "
      "(paper: 80.0%% / 86.4%% reduction = up to 7.35x speed-up):\n");
  for (const auto* other : {&pbo, &phcbo}) {
    const double target = other->fom.mean;
    const double t_easybo = mean_time_to(easybo, target);
    const double t_other = other->mean_makespan;
    const double speedup = t_easybo > 0.0 ? t_other / t_easybo : 0.0;
    std::printf("  vs %-9s: target FOM %.2f, EasyBO %s vs %s  (%.1f%% "
                "reduction, %.2fx speed-up)\n",
                other->label.c_str(), target,
                format_duration(t_easybo).c_str(),
                format_duration(t_other).c_str(),
                100.0 * (1.0 - t_easybo / t_other), speedup);
  }
  return 0;
}
