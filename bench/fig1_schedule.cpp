/// \file fig1_schedule.cpp
/// \brief Reproduces Fig. 1: the asynchronous-vs-synchronous schedule
/// illustration for batch size 3.
///
/// The paper's figure shows per-worker timelines where the synchronous
/// policy leaves workers idle at every batch barrier while the async
/// policy backfills. We render both schedules as ASCII Gantt charts from
/// the same set of job durations, plus utilization/makespan numbers, and
/// repeat the comparison with op-amp- and class-E-like duration
/// distributions.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/format.h"
#include "common/rng.h"
#include "sched/event_sim.h"

namespace {

using easybo::sched::JobRecord;
using easybo::sched::PolicyComparison;

/// Renders one schedule as per-worker ASCII timelines; each job is drawn
/// as its tag repeated over its duration (1 column per time unit).
void draw_gantt(const std::vector<JobRecord>& trace, std::size_t workers,
                double makespan, double unit) {
  const auto width = static_cast<std::size_t>(std::ceil(makespan / unit));
  std::vector<std::string> lanes(workers, std::string(width, '.'));
  for (const auto& job : trace) {
    const auto from = static_cast<std::size_t>(job.start / unit);
    const auto to = std::max(
        from + 1, static_cast<std::size_t>(std::ceil(job.finish / unit)));
    const char symbol =
        static_cast<char>((job.tag < 10 ? '0' : 'a' - 10) +
                          static_cast<char>(job.tag % 36));
    for (std::size_t c = from; c < to && c < width; ++c) {
      lanes[job.worker][c] = symbol;
    }
  }
  for (std::size_t w = 0; w < workers; ++w) {
    std::printf("  worker %zu |%s|\n", w, lanes[w].c_str());
  }
}

void compare_and_print(const char* title,
                       const std::vector<double>& durations,
                       std::size_t workers, double unit) {
  const auto cmp = easybo::sched::compare_policies(durations, workers);
  std::printf("--- %s (%zu jobs, %zu workers) ---\n", title,
              durations.size(), workers);
  std::printf("synchronous  (makespan %s, utilization %.0f%%):\n",
              easybo::format_duration(cmp.sync_makespan).c_str(),
              100.0 * cmp.sync_utilization);
  draw_gantt(cmp.sync_trace, workers, cmp.sync_makespan, unit);
  std::printf("asynchronous (makespan %s, utilization %.0f%%):\n",
              easybo::format_duration(cmp.async_makespan).c_str(),
              100.0 * cmp.async_utilization);
  draw_gantt(cmp.async_trace, workers, cmp.async_makespan, unit);
  std::printf("async saves %.1f%% of wall-clock at the same #sims\n\n",
              100.0 * (1.0 - cmp.async_makespan / cmp.sync_makespan));
}

}  // namespace

int main() {
  std::printf(
      "=== Fig. 1: asynchronous vs synchronous batch execution ===\n\n");

  // The didactic B=3 example of the figure: mixed short/long simulations.
  compare_and_print("Fig. 1 illustration, B = 3",
                    {5, 2, 3, 1, 6, 2, 4, 2, 3}, 3, 1.0);

  // Op-amp-like durations: mean ~39 s, small spread.
  {
    easybo::Rng rng(1);
    std::vector<double> durations(30);
    for (auto& d : durations) d = 36.0 * std::exp(0.12 * rng.normal());
    compare_and_print("op-amp-like durations (CV ~ 12%), B = 5", durations,
                      5, 10.0);
  }

  // Class-E-like durations: mean ~53 s, large spread -> big async win.
  {
    easybo::Rng rng(2);
    std::vector<double> durations(45);
    for (auto& d : durations) d = 44.0 * std::exp(0.40 * rng.normal());
    compare_and_print("class-E-like durations (CV ~ 45%), B = 15",
                      durations, 15, 10.0);
  }
  return 0;
}
