/// \file micro_gp.cpp
/// \brief google-benchmark micro-benchmarks of the computational kernels:
/// Cholesky factorization, GP fit/predict, LML gradient, acquisition
/// maximization, MNA solves and the circuit evaluations. These quantify
/// the modeling overhead that the paper's footnote 1 excludes from its
/// reported times. Also measures the src/obs instrumentation itself
/// (null-sink spans must be free, recording spans cheap).
///
/// Unless the caller passes its own --benchmark_out, results additionally
/// go to BENCH_micro_gp.json in google-benchmark's JSON format.

#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "acq/acq_optimizer.h"
#include "acq/acquisition.h"
#include "circuit/classe.h"
#include "circuit/opamp.h"
#include "common/rng.h"
#include "gp/gp.h"
#include "gp/rff.h"
#include "linalg/cholesky.h"
#include "obs/recording.h"
#include "obs/stream.h"
#include "obs/trace.h"

namespace {

using easybo::Rng;
using easybo::gp::GpRegressor;
using easybo::gp::SquaredExponentialArd;
using easybo::gp::Vec;
using easybo::linalg::Matrix;

Matrix random_spd(std::size_t n, Rng& rng) {
  Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.normal();
  }
  Matrix a = easybo::linalg::gram(b);
  a.add_diagonal(static_cast<double>(n));
  return a;
}

GpRegressor fitted_gp(std::size_t n, std::size_t d, Rng& rng) {
  std::vector<Vec> xs(n, Vec(d));
  Vec ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& v : xs[i]) v = rng.uniform();
    ys[i] = rng.normal();
  }
  GpRegressor gp(std::make_unique<SquaredExponentialArd>(d), 1e-4);
  gp.set_data(std::move(xs), std::move(ys));
  gp.fit();
  return gp;
}

void BM_Cholesky(benchmark::State& state) {
  Rng rng(1);
  const auto a = random_spd(static_cast<std::size_t>(state.range(0)), rng);
  for (auto _ : state) {
    easybo::linalg::Cholesky chol(a);
    benchmark::DoNotOptimize(chol.log_det());
  }
}
BENCHMARK(BM_Cholesky)->Arg(32)->Arg(128)->Arg(256)->Arg(512);

void BM_GpFit(benchmark::State& state) {
  Rng rng(2);
  auto gp = fitted_gp(static_cast<std::size_t>(state.range(0)), 10, rng);
  for (auto _ : state) {
    gp.fit();
    benchmark::DoNotOptimize(gp.log_marginal_likelihood());
  }
}
BENCHMARK(BM_GpFit)->Arg(50)->Arg(150)->Arg(450);

void BM_GpPredict(benchmark::State& state) {
  Rng rng(3);
  const auto gp = fitted_gp(static_cast<std::size_t>(state.range(0)), 10,
                            rng);
  const Vec x = rng.uniform_vector(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gp.predict(x).mean);
  }
}
BENCHMARK(BM_GpPredict)->Arg(50)->Arg(150)->Arg(450);

void BM_GpLmlGradient(benchmark::State& state) {
  Rng rng(4);
  const auto gp = fitted_gp(static_cast<std::size_t>(state.range(0)), 10,
                            rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gp.lml_gradient());
  }
}
BENCHMARK(BM_GpLmlGradient)->Arg(50)->Arg(150);

void BM_Hallucinate(benchmark::State& state) {
  Rng rng(5);
  const auto gp = fitted_gp(static_cast<std::size_t>(state.range(0)), 10,
                            rng);
  std::vector<Vec> pending(14, Vec(10));
  for (auto& p : pending) p = rng.uniform_vector(10);
  for (auto _ : state) {
    const auto aug = gp.with_hallucinated(pending);
    benchmark::DoNotOptimize(aug.num_points());
  }
}
BENCHMARK(BM_Hallucinate)->Arg(150)->Arg(450);

// --- GP hot-path n-sweep: backend x fit / hallucination path ---------------
//
// The matrix behind docs/boconfig-reference.md's backend guidance and the
// CI trend check (scripts/bench_gp_trend.py). Within-run ratios are the
// contract — they hold on any machine:
//   * BM_HallucinateOverlay must beat BM_HallucinateDeepCopy >= 5x at
//     n = 2048, k = 8 (the penalized-proposal hot path), and
//   * BM_RffFitFull at n = 4096 must beat BM_GpFitFull at n = 1024.

easybo::gp::RffRegressor fitted_rff(std::size_t n, std::size_t d,
                                    std::size_t m, Rng& rng) {
  std::vector<Vec> xs(n, Vec(d));
  Vec ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (auto& v : xs[i]) v = rng.uniform();
    ys[i] = rng.normal();
  }
  easybo::gp::RffRegressor rff(
      std::make_unique<SquaredExponentialArd>(d), 1e-4, m, 0x9E3779B97F4A7C15ULL);
  rff.set_data(std::move(xs), std::move(ys));
  rff.fit();
  return rff;
}

/// Alternates between two hyperparameter vectors one ulp-scale apart so
/// every iteration pays the FULL from-scratch fit on either backend (a
/// same-valued set would let the approximate backend keep its feature
/// Gram).
template <typename Model>
void full_fit_loop(benchmark::State& state, Model& model) {
  const Vec lp0 = model.log_hyperparams();
  Vec lp1 = lp0;
  lp1[1] += 1e-9;
  bool flip = false;
  for (auto _ : state) {
    model.set_log_hyperparams(flip ? lp1 : lp0);
    flip = !flip;
    model.fit();
    benchmark::DoNotOptimize(model.log_marginal_likelihood());
  }
}

void BM_GpFitFull(benchmark::State& state) {
  Rng rng(11);
  auto gp = fitted_gp(static_cast<std::size_t>(state.range(0)), 10, rng);
  full_fit_loop(state, gp);
}
BENCHMARK(BM_GpFitFull)->Arg(256)->Arg(1024)->Unit(benchmark::kMillisecond);

void BM_RffFitFull(benchmark::State& state) {
  Rng rng(12);
  auto rff = fitted_rff(static_cast<std::size_t>(state.range(0)), 10, 128,
                        rng);
  full_fit_loop(state, rff);
}
BENCHMARK(BM_RffFitFull)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

std::vector<Vec> pending_batch(std::size_t k, Rng& rng) {
  std::vector<Vec> pending(k);
  for (auto& p : pending) p = rng.uniform_vector(10);
  return pending;
}

// The historical penalization path: copy the whole model (inputs, targets,
// n x n factor), then extend the copy.
void BM_HallucinateDeepCopy(benchmark::State& state) {
  Rng rng(13);
  const auto gp = fitted_gp(static_cast<std::size_t>(state.range(0)), 10,
                            rng);
  const auto pending = pending_batch(8, rng);
  const Vec probe = rng.uniform_vector(10);
  for (auto _ : state) {
    const auto aug = gp.with_hallucinated(pending);
    benchmark::DoNotOptimize(aug.predict(probe).var);
  }
}
BENCHMARK(BM_HallucinateDeepCopy)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(2048)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

// The zero-copy overlay: borrow the base factor, append k rows.
void BM_HallucinateOverlay(benchmark::State& state) {
  Rng rng(13);  // identical setup to the deep copy for a fair ratio
  const auto gp = fitted_gp(static_cast<std::size_t>(state.range(0)), 10,
                            rng);
  const auto pending = pending_batch(8, rng);
  const Vec probe = rng.uniform_vector(10);
  for (auto _ : state) {
    const auto aug = gp.hallucinate(pending, /*pin_mean=*/false);
    benchmark::DoNotOptimize(aug->predict(probe).var);
  }
}
BENCHMARK(BM_HallucinateOverlay)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(2048)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_RffHallucinate(benchmark::State& state) {
  Rng rng(14);
  const auto rff = fitted_rff(static_cast<std::size_t>(state.range(0)), 10,
                              128, rng);
  const auto pending = pending_batch(8, rng);
  const Vec probe = rng.uniform_vector(10);
  for (auto _ : state) {
    const auto aug = rff.hallucinate(pending, /*pin_mean=*/false);
    benchmark::DoNotOptimize(aug->predict(probe).var);
  }
}
BENCHMARK(BM_RffHallucinate)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

void BM_RffPredict(benchmark::State& state) {
  Rng rng(15);
  const auto rff = fitted_rff(static_cast<std::size_t>(state.range(0)), 10,
                              128, rng);
  const Vec x = rng.uniform_vector(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rff.predict(x).mean);
  }
}
BENCHMARK(BM_RffPredict)->Arg(256)->Arg(4096);

void BM_AcquisitionMaximize(benchmark::State& state) {
  Rng rng(6);
  const auto gp = fitted_gp(150, 10, rng);
  const easybo::acq::WeightedUcb fn(&gp, &gp, 0.7);
  easybo::acq::AcqOptOptions opt;
  opt.sobol_candidates = 256;
  opt.random_candidates = 64;
  opt.refine_top_k = 2;
  opt.refine_evals = 80;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        easybo::acq::maximize_acquisition(fn, 10, rng, {}, opt).best_value);
  }
}
BENCHMARK(BM_AcquisitionMaximize);

void BM_OpampEvaluation(benchmark::State& state) {
  Rng rng(7);
  const auto bounds = easybo::circuit::opamp_bounds();
  Vec x(bounds.dim());
  for (std::size_t j = 0; j < x.size(); ++j) {
    x[j] = 0.5 * (bounds.lower[j] + bounds.upper[j]);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(easybo::circuit::evaluate_opamp(x).fom);
  }
}
BENCHMARK(BM_OpampEvaluation);

void BM_ClasseEvaluation(benchmark::State& state) {
  const auto bounds = easybo::circuit::classe_bounds();
  Vec x(bounds.dim());
  for (std::size_t j = 0; j < x.size(); ++j) {
    x[j] = 0.5 * (bounds.lower[j] + bounds.upper[j]);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(easybo::circuit::evaluate_classe(x).fom);
  }
}
BENCHMARK(BM_ClasseEvaluation);

// --- src/obs instrumentation overhead --------------------------------------

// The null-sink configuration every production run uses: the span must
// compile down to a null check, no clock reads.
void BM_NullSinkSpanAndCounter(benchmark::State& state) {
  easybo::obs::TraceSink* sink = nullptr;
  for (auto _ : state) {
    easybo::obs::ScopedTimer span(sink, easybo::obs::Phase::ModelFit);
    easybo::obs::count(sink, "gp.chol_extend");
    benchmark::DoNotOptimize(sink);
  }
}
BENCHMARK(BM_NullSinkSpanAndCounter);

void BM_RecordingSpanAndCounter(benchmark::State& state) {
  easybo::obs::RecordingSink sink;
  for (auto _ : state) {
    easybo::obs::ScopedTimer span(&sink, easybo::obs::Phase::ModelFit);
    easybo::obs::count(&sink, "gp.chol_extend");
  }
  benchmark::DoNotOptimize(sink.counter("gp.chol_extend"));
}
BENCHMARK(BM_RecordingSpanAndCounter);

// Live streaming (obs/stream.h): the hot-path cost of a span + counter
// with the bounded queue and drainer thread armed, frames going to
// /dev/null. This is the number docs/telemetry.md quotes for the
// "never blocks the BO hot path" contract — expect roughly clock-read
// plus short-critical-section cost, orders of magnitude under one
// objective evaluation.
void BM_StreamSpanAndCounter(benchmark::State& state) {
  easybo::obs::StreamOptions opt;
  opt.source = "bench:micro_gp";
  easybo::obs::StreamSink sink("/dev/null", opt);
  for (auto _ : state) {
    easybo::obs::ScopedTimer span(&sink, easybo::obs::Phase::ModelFit);
    easybo::obs::count(&sink, "gp.chol_extend");
  }
  state.counters["dropped"] =
      static_cast<double>(sink.stats().dropped);
}
BENCHMARK(BM_StreamSpanAndCounter);

// End-to-end check that fit() is not measurably slower when traced.
void BM_GpFitRecorded(benchmark::State& state) {
  Rng rng(8);
  auto gp = fitted_gp(static_cast<std::size_t>(state.range(0)), 10, rng);
  easybo::obs::RecordingSink sink;
  gp.set_trace(&sink);
  for (auto _ : state) {
    gp.fit();
    benchmark::DoNotOptimize(gp.log_marginal_likelihood());
  }
}
BENCHMARK(BM_GpFitRecorded)->Arg(150);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): default the output to
// BENCH_micro_gp.json (JSON format) unless the caller chose a file.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  std::string out = "--benchmark_out=BENCH_micro_gp.json";
  std::string fmt = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out.data());
    args.push_back(fmt.data());
  }
  int count = static_cast<int>(args.size());
  benchmark::Initialize(&count, args.data());
  if (benchmark::ReportUnrecognizedArguments(count, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
