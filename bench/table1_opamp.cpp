/// \file table1_opamp.cpp
/// \brief Reproduces Table I: optimization results and simulation time of
/// the operational amplifier circuit (paper §IV-A).
///
/// Rows: DE, LCB, EI, EasyBO (sequential), then pBO / pHCBO / EasyBO-S /
/// EasyBO-A / EasyBO-SP / EasyBO at batch sizes 5, 10, 15. Columns:
/// Best / Worst / Mean / Std of the final FOM over repeated runs, and the
/// mean virtual simulation wall-clock in the paper's time format.
///
/// Also prints the §IV-A claim check: the async-vs-sync time reduction at
/// a fixed number of simulations for each batch size (paper: 9.2% / 12.7%
/// / 13.7% for B = 5 / 10 / 15).
///
/// Environment: EASYBO_RUNS (default 3; paper used 20), EASYBO_SIMS
/// (default 150), EASYBO_DE (default 20000).
///
/// Also writes the per-algorithm observability reports (src/obs: phase
/// timers, Cholesky refactor/extend counters, per-worker busy/idle) to
/// BENCH_table1_opamp.json; EASYBO_METRICS_JSON overrides the path.

#include <cstdio>
#include <map>

#include "harness.h"

int main() {
  using namespace easybo;
  using namespace easybo::bench;

  const auto circuit_bench = circuit::make_opamp_benchmark();
  const std::size_t runs = env_size("EASYBO_RUNS", 3);
  const std::size_t sims = env_size("EASYBO_SIMS", circuit_bench.max_sims);
  const std::size_t de_evals = env_size("EASYBO_DE", circuit_bench.de_sims);

  std::printf(
      "=== Table I: operational amplifier (10-D), %zu runs/algorithm, "
      "%zu sims (DE: %zu) ===\n",
      runs, sims, de_evals);
  std::printf("FOM = 1.2*GAIN(dB) + 10*UGF(100MHz) + 1.6*min(PM,90)(deg)\n\n");

  AsciiTable table({"Algo", "Best", "Worst", "Mean", "Std", "Time"});

  const auto de = run_de_repeated(circuit_bench, de_evals, runs);
  add_table_row(table, de, 2);

  // makespans per (mode-label, batch) for the async-saving summary.
  std::map<std::pair<std::string, std::size_t>, double> makespan;
  std::vector<AlgoStats> all_stats;
  all_stats.push_back(de);

  for (const auto& config : paper_roster(circuit_bench.init_points, sims)) {
    auto stats = run_bo_repeated(circuit_bench, config, runs);
    add_table_row(table, stats, 2);
    if (config.acq == bo::AcqKind::EasyBo && config.penalize &&
        config.mode != bo::Mode::Sequential) {
      const std::string kind =
          config.mode == bo::Mode::SyncBatch ? "sync" : "async";
      makespan[{kind, config.batch}] = stats.mean_makespan;
    }
    all_stats.push_back(std::move(stats));
    std::fflush(stdout);
  }

  std::printf("%s\n", table.str().c_str());

  std::printf(
      "Async time reduction at fixed #sims (EasyBO vs EasyBO-SP), paper "
      "reports 9.2%% / 12.7%% / 13.7%%:\n");
  for (std::size_t b : {5u, 10u, 15u}) {
    const auto sync_it = makespan.find({"sync", b});
    const auto async_it = makespan.find({"async", b});
    if (sync_it == makespan.end() || async_it == makespan.end()) continue;
    const double saving = 1.0 - async_it->second / sync_it->second;
    std::printf("  B=%-2zu : %5.1f%%  (sync %s -> async %s)\n", b,
                100.0 * saving,
                format_duration(sync_it->second).c_str(),
                format_duration(async_it->second).c_str());
  }

  const double de_time = de.mean_makespan;
  const auto easybo15 = makespan.find({"async", 15});
  if (easybo15 != makespan.end() && easybo15->second > 0.0) {
    std::printf(
        "\nSpeed-up of EasyBO-15 over DE: %.0fx (paper: up to 1935x with "
        "DE at 20000 sims)\n",
        de_time / easybo15->second);
  }

  // Engine-room observability (src/obs), merged over the repeats: where
  // the modeling time went and how often the hot paths fired.
  const std::string written =
      write_bench_metrics_json("BENCH_table1_opamp.json", all_stats);
  if (!written.empty()) {
    std::printf("\nPer-algorithm metrics written to %s\n", written.c_str());
  } else {
    std::printf("\nwarning: could not write the metrics JSON\n");
  }
  return 0;
}
