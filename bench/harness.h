#pragma once
/// \file harness.h
/// \brief Shared experiment harness for the paper-reproduction benches.
///
/// Every table/figure binary uses this: algorithm roster construction,
/// repeated runs with per-run seeds, Best/Worst/Mean/Std summaries, the
/// paper's time format, and environment-variable controls:
///
///   EASYBO_RUNS   repeats per algorithm            (default 3; paper: 20)
///   EASYBO_SIMS   BO simulation budget override    (default: paper's)
///   EASYBO_DE     DE evaluation budget override    (default: paper's)

#include <string>
#include <vector>

#include "bo/engine.h"
#include "circuit/benchmark.h"
#include "common/format.h"
#include "common/stats.h"
#include "opt/de.h"

namespace easybo::bench {

/// Reads a positive integer environment override, or returns fallback.
std::size_t env_size(const char* name, std::size_t fallback);

/// Aggregated statistics of repeated runs of one algorithm.
struct AlgoStats {
  std::string label;
  Summary fom;                 ///< over the per-run best FOMs
  double mean_makespan = 0.0;  ///< virtual seconds
  double mean_utilization = 0.0;
  std::vector<bo::BoResult> runs;
  /// Observability report merged over the repeats (BO algorithms only):
  /// per-phase timers, engine-room counters, per-worker busy/idle.
  obs::MetricsReport metrics;
};

/// Runs `runs` repetitions of one BO configuration on a benchmark; run r
/// uses seed base_seed + r so repetitions are independent but reproducible.
AlgoStats run_bo_repeated(const circuit::SizingBenchmark& bench,
                          bo::BoConfig config, std::size_t runs,
                          std::uint64_t base_seed = 1000);

/// Runs DE with virtual-time accounting (sequential evaluation: the DE
/// makespan is the sum of simulation durations, as in the paper's Table
/// I/II time column for DE).
AlgoStats run_de_repeated(const circuit::SizingBenchmark& bench,
                          std::size_t de_evals, std::size_t runs,
                          std::uint64_t base_seed = 2000);

/// Slims the inner loops for the experiment regime: tuned so the full
/// Table II reproduces in minutes on one core without changing the
/// algorithms' relative behaviour.
void apply_bench_budgets(bo::BoConfig& config);

/// The paper's full roster for one circuit: DE, LCB, EI, EasyBO (seq), and
/// {pBO, pHCBO, EasyBO-S, EasyBO-A, EasyBO-SP, EasyBO} x batch sizes.
std::vector<bo::BoConfig> paper_roster(std::size_t init_points,
                                       std::size_t max_sims,
                                       const std::vector<std::size_t>&
                                           batch_sizes = {5, 10, 15});

/// Adds one Table-I/II-style row: label, best, worst, mean, std, time.
void add_table_row(AsciiTable& table, const AlgoStats& stats,
                   int precision);

/// Writes the per-algorithm observability reports as one JSON document:
///   {"schema": "easybo.bench-metrics.v1",
///    "algos": {"<label>": <easybo.metrics.v1 object>, ...}}
/// The EASYBO_METRICS_JSON environment variable overrides \p default_path;
/// algorithms with an empty report (e.g. DE) are skipped. Returns the
/// path written, or an empty string when writing failed.
std::string write_bench_metrics_json(const std::string& default_path,
                                     const std::vector<AlgoStats>& algos);

}  // namespace easybo::bench
