/// \file ext_baselines.cpp
/// \brief Extension comparison beyond the paper's roster: EasyBO vs BUCB
/// (hallucinated-variance UCB [32]) and LP (local penalization [33]) — the
/// two penalization strategies §III-C discusses — plus PSO and SA from the
/// intro's prior-art list, all on the op-amp benchmark at B = 10.
///
/// Environment: EASYBO_RUNS (default 3), EASYBO_SIMS (default 150).

#include <cstdio>

#include "common/rng.h"
#include "harness.h"
#include "opt/pso.h"
#include "opt/sa.h"

int main() {
  using namespace easybo;
  using namespace easybo::bench;

  const auto circuit_bench = circuit::make_opamp_benchmark();
  const std::size_t runs = env_size("EASYBO_RUNS", 3);
  const std::size_t sims = env_size("EASYBO_SIMS", circuit_bench.max_sims);

  std::printf("=== Extension baselines (op-amp, B = 10, %zu runs, %zu "
              "sims) ===\n\n",
              runs, sims);

  AsciiTable table({"Algo", "Best", "Worst", "Mean", "Std", "Time"});

  auto make = [&](bo::Mode mode, bo::AcqKind acq, bool penalize) {
    bo::BoConfig c;
    c.mode = mode;
    c.acq = acq;
    c.penalize = penalize;
    c.batch = 10;
    c.init_points = circuit_bench.init_points;
    c.max_sims = sims;
    apply_bench_budgets(c);
    return c;
  };

  for (const auto& config :
       {make(bo::Mode::AsyncBatch, bo::AcqKind::EasyBo, true),
        make(bo::Mode::AsyncBatch, bo::AcqKind::Bucb, false),
        make(bo::Mode::AsyncBatch, bo::AcqKind::Lp, false),
        make(bo::Mode::SyncBatch, bo::AcqKind::Bucb, false)}) {
    auto stats = run_bo_repeated(circuit_bench, config, runs);
    // The engine label does not encode sync/async for the extensions.
    if (config.mode == bo::Mode::SyncBatch) stats.label += " (sync)";
    add_table_row(table, stats, 2);
    std::fflush(stdout);
  }

  // Swarm / annealing baselines at the same simulation budget (sequential
  // evaluation; their wall-clock is the sum of simulation durations).
  for (const char* name : {"PSO", "SA"}) {
    std::vector<double> bests;
    double time_sum = 0.0;
    for (std::size_t r = 0; r < runs; ++r) {
      Rng rng(3000 + r);
      double virtual_time = 0.0;
      opt::EvalObserver observer = [&](const linalg::Vec& x, double,
                                       std::size_t) {
        virtual_time += circuit_bench.sim_time(x);
      };
      opt::OptResult result;
      if (std::string(name) == "PSO") {
        opt::PsoOptions o;
        o.max_evals = sims;
        o.swarm = 20;
        result = opt::pso_maximize(circuit_bench.fom, circuit_bench.bounds,
                                   rng, o, observer);
      } else {
        opt::SaOptions o;
        o.max_evals = sims;
        result = opt::sa_maximize(circuit_bench.fom, circuit_bench.bounds,
                                  rng, o, observer);
      }
      bests.push_back(result.best_y);
      time_sum += virtual_time;
    }
    AlgoStats stats;
    stats.label = name;
    stats.fom = summarize(bests);
    stats.mean_makespan = time_sum / static_cast<double>(runs);
    add_table_row(table, stats, 2);
  }

  std::printf("%s\n", table.str().c_str());
  std::printf("(EasyBO's sigma-hat penalization generalizes BUCB's "
              "hallucination to the randomized-weight acquisition; LP "
              "penalizes multiplicatively around busy points instead)\n");
  return 0;
}
