/// \file serve_load.cpp
/// \brief Load generator for the session host (src/serve): many
/// interleaved named sessions through one SessionHost, verified
/// bit-for-bit against standalone engine runs.
///
/// Drives EASYBO_SESSIONS (default 100) sequential-mode sessions with
/// distinct seeds round-robin through a host whose live-object cache is
/// deliberately too small (EASYBO_MAX_LIVE, default 32), so most turns
/// hit a session that was LRU-evicted and must resume from its journal +
/// snapshot. One session is additionally CLOSEd explicitly mid-run and
/// driven on afterwards. When every session has exhausted its budget,
/// each proposal stream is compared element-for-element against a
/// standalone seeded BoEngine::run of the identical (wire-round-tripped)
/// config — the acceptance check for the multi-session server.
///
/// A second phase re-runs the exercise over real sockets: an in-process
/// TcpServer with EASYBO_CLIENTS (default 8) concurrent client threads,
/// each owning a disjoint partition of EASYBO_TCP_SESSIONS (default 56)
/// sessions and driving them round-robin over its own connection. Every
/// stream is again verified bit-for-bit against a standalone engine run
/// — concurrency and the transport must not perturb a single proposal.
///
/// Exit codes: 0 all streams bit-identical, 1 any mismatch or error.
///
/// Environment: EASYBO_SESSIONS, EASYBO_MAX_LIVE, EASYBO_SIMS
/// (default 16), EASYBO_CLIENTS, EASYBO_TCP_SESSIONS, EASYBO_STATE_DIR
/// (default under the system temp dir).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bo/engine.h"
#include "circuit/testfunc.h"
#include "harness.h"
#include "io/json.h"
#include "serve/host.h"
#include "serve/session_config.h"
#include "serve/tcp_server.h"

namespace {

using easybo::linalg::Vec;

std::string config_json(std::uint64_t seed, std::size_t max_sims) {
  easybo::bo::BoConfig c;
  c.mode = easybo::bo::Mode::Sequential;
  c.acq = easybo::bo::AcqKind::EasyBo;
  c.penalize = true;
  c.batch = 1;
  c.init_points = 6;
  c.max_sims = max_sims;
  c.seed = seed;
  c.on_eval_failure = easybo::bo::EvalFailurePolicy::Discard;
  c.acq_opt.sobol_candidates = 64;
  c.acq_opt.random_candidates = 32;
  c.acq_opt.refine_evals = 30;
  c.trainer.max_iters = 10;
  c.trainer.restarts = 1;
  easybo::opt::Bounds b;
  b.lower.assign(3, -2.0);
  b.upper.assign(3, 2.0);
  return easybo::serve::session_config_json(c, b);
}

struct Turn {
  std::size_t tag = 0;
  Vec x;
};

/// Parses one SUGGEST reply into tag + point; empty x means budget
/// exhausted; any other ERR aborts the run.
Turn parse_suggest(const std::string& name, const std::string& reply) {
  Turn t;
  if (reply.rfind("ERR ", 0) == 0) {
    if (reply.find("budget exhausted") == std::string::npos) {
      std::fprintf(stderr, "serve_load: %s: %s\n", name.c_str(),
                   reply.c_str());
      std::exit(1);
    }
    return t;
  }
  const easybo::io::JsonValue j = easybo::io::parse_json(reply.substr(3));
  t.tag = static_cast<std::size_t>(j.at("tag").as_double());
  for (const auto& v : j.at("x").as_array()) t.x.push_back(v.as_double());
  return t;
}

Turn suggest(easybo::serve::SessionHost& host, const std::string& name) {
  return parse_suggest(name, host.handle_line("SUGGEST " + name));
}

/// Minimal blocking TCP line client for the concurrent phase.
class LineClient {
 public:
  explicit LineClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
      std::perror("serve_load: socket");
      std::exit(1);
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      std::perror("serve_load: connect");
      std::exit(1);
    }
  }
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  std::string request(const std::string& line) {
    const std::string framed = line + "\n";
    std::size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n = ::send(fd_, framed.data() + off,
                               framed.size() - off, MSG_NOSIGNAL);
      if (n <= 0) {
        std::fprintf(stderr, "serve_load: send failed\n");
        std::exit(1);
      }
      off += static_cast<std::size_t>(n);
    }
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        std::string reply = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return reply;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        std::fprintf(stderr, "serve_load: connection lost mid-reply\n");
        std::exit(1);
      }
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

}  // namespace

int main() {
  using namespace easybo;
  using namespace easybo::bench;

  const std::size_t sessions = env_size("EASYBO_SESSIONS", 100);
  const std::size_t max_live = env_size("EASYBO_MAX_LIVE", 32);
  const std::size_t sims = env_size("EASYBO_SIMS", 16);
  std::string state_dir;
  if (const char* dir = std::getenv("EASYBO_STATE_DIR")) {
    state_dir = dir;
  } else {
    state_dir =
        (std::filesystem::temp_directory_path() / "easybo_serve_load")
            .string();
  }
  std::filesystem::remove_all(state_dir);

  const auto tf = circuit::sphere(3);
  std::printf(
      "=== Session-host load generator (%zu sessions, max_live %zu, "
      "%zu sims each, state under %s) ===\n",
      sessions, max_live, sims, state_dir.c_str());

  serve::SessionHost host(state_dir, max_live);
  std::vector<std::string> configs(sessions);
  std::vector<std::vector<Vec>> streams(sessions);
  std::vector<bool> done(sessions, false);

  for (std::size_t i = 0; i < sessions; ++i) {
    configs[i] = config_json(1000 + i, sims);
    const std::string name = "load" + std::to_string(i);
    const std::string reply =
        host.handle_line("NEW " + name + " " + configs[i]);
    if (reply != "OK created " + name) {
      std::fprintf(stderr, "serve_load: %s\n", reply.c_str());
      return 1;
    }
  }

  // Round-robin: one suggest/observe turn per session per sweep. With
  // max_live << sessions every sweep churns the LRU cache end to end.
  std::size_t turns = 0;
  std::size_t remaining = sessions;
  std::size_t sweep = 0;
  while (remaining > 0) {
    for (std::size_t i = 0; i < sessions; ++i) {
      if (done[i]) continue;
      const std::string name = "load" + std::to_string(i);
      // Session 0 gets the harshest treatment: an explicit mid-run CLOSE
      // every sweep, so each of its turns resumes from checkpoint.
      if (i == 0 && sweep > 0) host.handle_line("CLOSE " + name);
      const Turn t = suggest(host, name);
      if (t.x.empty()) {
        done[i] = true;
        --remaining;
        continue;
      }
      streams[i].push_back(t.x);
      const std::string ob = host.handle_line(
          "OBSERVE " + name + " " + std::to_string(t.tag) + " " +
          io::json_number(tf.fn(t.x)));
      if (ob.rfind("OK ", 0) != 0) {
        std::fprintf(stderr, "serve_load: %s: %s\n", name.c_str(),
                     ob.c_str());
        return 1;
      }
      ++turns;
    }
    ++sweep;
  }
  std::printf("drove %zu suggest/observe turns in %zu sweeps (%zu live "
              "of %zu sessions at the end)\n",
              turns, sweep, host.live_count(), sessions);

  // Verification: every stream must match a standalone engine run of the
  // round-tripped config, element for element.
  auto verify_streams = [&tf](const char* phase,
                              const std::vector<std::string>& cfgs,
                              const std::vector<std::vector<Vec>>& got) {
    std::size_t mismatches = 0;
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
      const serve::SessionSpec spec = serve::parse_session_config(cfgs[i]);
      bo::BoEngine engine(spec.config, spec.bounds, tf.fn);
      const bo::BoResult result = engine.run();
      bool ok = result.evals.size() == got[i].size();
      for (std::size_t k = 0; ok && k < result.evals.size(); ++k) {
        ok = result.evals[k].x == got[i][k];
      }
      if (!ok) {
        ++mismatches;
        std::fprintf(stderr,
                     "serve_load: %s session %zu diverged from the "
                     "standalone run (%zu vs %zu proposals)\n",
                     phase, i, got[i].size(), result.evals.size());
      }
    }
    if (mismatches > 0) {
      std::fprintf(stderr, "serve_load: %s: %zu of %zu sessions diverged\n",
                   phase, mismatches, cfgs.size());
      return false;
    }
    std::printf("%s: all %zu session streams bit-identical to standalone "
                "BoEngine runs\n",
                phase, cfgs.size());
    return true;
  };

  if (!verify_streams("sequential", configs, streams)) return 1;

  // === Phase 2: the same exercise over real sockets, concurrently. ===
  const std::size_t clients = env_size("EASYBO_CLIENTS", 8);
  const std::size_t tcp_sessions = env_size("EASYBO_TCP_SESSIONS", 56);
  const std::string tcp_dir = state_dir + "_tcp";
  std::filesystem::remove_all(tcp_dir);
  std::printf(
      "=== Concurrent TCP phase (%zu clients, %zu sessions, max_live %zu) "
      "===\n",
      clients, tcp_sessions, max_live);

  serve::SessionHost tcp_host(tcp_dir, max_live);
  serve::TcpServer server(tcp_host, serve::TcpOptions{});
  server.start();

  std::vector<std::string> tcp_configs(tcp_sessions);
  for (std::size_t i = 0; i < tcp_sessions; ++i) {
    tcp_configs[i] = config_json(5000 + i, sims);
  }
  std::vector<std::vector<Vec>> tcp_streams(tcp_sessions);
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      LineClient client(server.port());
      // This client's partition: sessions c, c+clients, c+2*clients, ...
      std::vector<std::size_t> mine;
      for (std::size_t i = c; i < tcp_sessions; i += clients) {
        mine.push_back(i);
        const std::string name = "tcp" + std::to_string(i);
        const std::string reply =
            client.request("NEW " + name + " " + tcp_configs[i]);
        if (reply != "OK created " + name) {
          std::fprintf(stderr, "serve_load: %s\n", reply.c_str());
          failed.store(true);
          return;
        }
      }
      // Round-robin within the partition, one turn per session, until
      // every one is exhausted — maximal LRU churn under contention.
      std::vector<bool> exhausted(mine.size(), false);
      std::size_t remaining = mine.size();
      while (remaining > 0) {
        for (std::size_t k = 0; k < mine.size(); ++k) {
          if (exhausted[k]) continue;
          const std::size_t i = mine[k];
          const std::string name = "tcp" + std::to_string(i);
          const Turn t =
              parse_suggest(name, client.request("SUGGEST " + name));
          if (t.x.empty()) {
            exhausted[k] = true;
            --remaining;
            continue;
          }
          tcp_streams[i].push_back(t.x);
          const std::string ob = client.request(
              "OBSERVE " + name + " " + std::to_string(t.tag) + " " +
              io::json_number(tf.fn(t.x)));
          if (ob.rfind("OK ", 0) != 0) {
            std::fprintf(stderr, "serve_load: %s: %s\n", name.c_str(),
                         ob.c_str());
            failed.store(true);
            return;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  server.stop();
  if (failed.load()) return 1;
  std::printf("tcp phase done (%zu live of %zu sessions at the end, "
              "%zu connections accepted)\n",
              tcp_host.live_count(), tcp_sessions,
              server.stats().accepted);
  if (!verify_streams("tcp", tcp_configs, tcp_streams)) return 1;

  // === Phase 3: worker pool with one slow session among fast ones. ===
  // The same socket exercise through a 4-worker pool, with one session
  // carrying an injected 50 ms SUGGEST slowdown (cooperative, well under
  // the deadline — nothing is cut; the deadline-cut paths are pinned in
  // test_serve_deadline.cpp and scripts/serve_chaos.sh). What this phase
  // measures: the pool keeps fast sessions' turnaround decoupled from
  // the slow one, queue-wait shows up on the health plane, and pooled
  // execution still reproduces every stream bit-for-bit.
  const std::size_t pool_sessions = env_size("EASYBO_POOL_SESSIONS", 16);
  const std::string pool_dir = state_dir + "_pool";
  std::filesystem::remove_all(pool_dir);
  std::printf(
      "=== Worker-pool phase (%zu clients, %zu sessions, 4 workers, "
      "pool0 slowed 50ms) ===\n",
      clients, pool_sessions);

  serve::HostLimits pool_limits;
  pool_limits.serve_workers = 4;
  pool_limits.request_deadline_s = 30.0;  // generous: a load run, not a cut run
  pool_limits.queue_wait_s = 0.0;         // no shedding; every turn completes
  serve::SessionHost pool_host(pool_dir, max_live, pool_limits);
  serve::SessionHost::DebugSlowdown slow;
  slow.session = "pool0";
  slow.sleep_s = 0.05;
  pool_host.set_debug_slowdown(slow);
  serve::TcpServer pool_server(pool_host, serve::TcpOptions{});
  pool_server.start();

  std::vector<std::string> pool_configs(pool_sessions);
  for (std::size_t i = 0; i < pool_sessions; ++i) {
    pool_configs[i] = config_json(9000 + i, sims);
  }
  std::vector<std::vector<Vec>> pool_streams(pool_sessions);
  // SUGGEST turnaround seconds, split slow session vs the rest; each
  // client thread appends to its own slot, merged after the join.
  std::vector<std::vector<double>> fast_lat(clients), slow_lat(clients);
  std::atomic<bool> pool_failed{false};
  std::vector<std::thread> pool_threads;
  for (std::size_t c = 0; c < clients; ++c) {
    pool_threads.emplace_back([&, c] {
      LineClient client(pool_server.port());
      std::vector<std::size_t> mine;
      for (std::size_t i = c; i < pool_sessions; i += clients) {
        mine.push_back(i);
        const std::string name = "pool" + std::to_string(i);
        const std::string reply =
            client.request("NEW " + name + " " + pool_configs[i]);
        if (reply != "OK created " + name) {
          std::fprintf(stderr, "serve_load: %s\n", reply.c_str());
          pool_failed.store(true);
          return;
        }
      }
      std::vector<bool> exhausted(mine.size(), false);
      std::size_t remaining = mine.size();
      while (remaining > 0) {
        for (std::size_t k = 0; k < mine.size(); ++k) {
          if (exhausted[k]) continue;
          const std::size_t i = mine[k];
          const std::string name = "pool" + std::to_string(i);
          const auto t0 = std::chrono::steady_clock::now();
          const Turn t =
              parse_suggest(name, client.request("SUGGEST " + name));
          const double secs =
              std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            t0)
                  .count();
          (i == 0 ? slow_lat : fast_lat)[c].push_back(secs);
          if (t.x.empty()) {
            exhausted[k] = true;
            --remaining;
            continue;
          }
          pool_streams[i].push_back(t.x);
          const std::string ob = client.request(
              "OBSERVE " + name + " " + std::to_string(t.tag) + " " +
              io::json_number(tf.fn(t.x)));
          if (ob.rfind("OK ", 0) != 0) {
            std::fprintf(stderr, "serve_load: %s: %s\n", name.c_str(),
                         ob.c_str());
            pool_failed.store(true);
            return;
          }
        }
      }
    });
  }
  for (auto& t : pool_threads) t.join();

  // Queue-wait and execution stats straight off the health plane while
  // the host is still up (the stream/health contract is reconciled in
  // scripts/serve_chaos.sh; here we report the numbers under load).
  const std::string health = pool_host.handle_line("STATUS");
  pool_server.stop();
  if (pool_failed.load()) return 1;

  auto percentile = [](std::vector<double> xs, double q) {
    if (xs.empty()) return 0.0;
    std::sort(xs.begin(), xs.end());
    const std::size_t idx = std::min(
        xs.size() - 1, static_cast<std::size_t>(q * (xs.size() - 1) + 0.5));
    return xs[idx];
  };
  std::vector<double> fast_all, slow_all;
  for (std::size_t c = 0; c < clients; ++c) {
    fast_all.insert(fast_all.end(), fast_lat[c].begin(), fast_lat[c].end());
    slow_all.insert(slow_all.end(), slow_lat[c].begin(), slow_lat[c].end());
  }
  std::printf(
      "pool turnaround: fast n=%zu p50=%.1fms p99=%.1fms | slow n=%zu "
      "p50=%.1fms p99=%.1fms\n",
      fast_all.size(), percentile(fast_all, 0.5) * 1e3,
      percentile(fast_all, 0.99) * 1e3, slow_all.size(),
      percentile(slow_all, 0.5) * 1e3, percentile(slow_all, 0.99) * 1e3);
  const io::JsonValue hj = io::parse_json(health.substr(3));
  const io::JsonValue& qw = hj.at("queue_wait");
  std::printf(
      "pool health: queue_wait n=%.0f cema=%.3fms p90=%.3fms | exec "
      "cema=%.1fms | deadline_cut=%.0f queue_shed=%.0f watchdog_trips=%.0f\n",
      qw.at("count").as_double(), qw.at("cema").as_double() * 1e3,
      qw.at("p90").as_double() * 1e3,
      hj.at("exec").at("cema").as_double() * 1e3,
      hj.at("deadline_cut").as_double(), hj.at("queue_shed").as_double(),
      hj.at("watchdog_trips").as_double());

  // Loose sanity bounds only (a CI machine under load is not a latency
  // lab): the slow session really was slowed, nothing was cut or shed,
  // every request's wait was measured, and fast p99 stays far below the
  // deadline — the slow session did not convoy the pool.
  bool pool_ok = true;
  auto expect = [&pool_ok](bool cond, const char* what) {
    if (!cond) {
      std::fprintf(stderr, "serve_load: pool phase: %s\n", what);
      pool_ok = false;
    }
  };
  expect(percentile(slow_all, 0.5) >= 0.05,
         "slow session p50 below the injected 50ms sleep");
  expect(percentile(fast_all, 0.99) < 10.0, "fast p99 implausibly large");
  expect(pool_host.deadline_cut_count() == 0, "unexpected deadline cuts");
  expect(pool_host.queue_shed_count() == 0, "unexpected queue sheds");
  expect(pool_host.watchdog_trip_count() == 0, "unexpected watchdog trips");
  expect(qw.at("count").as_double() >= static_cast<double>(fast_all.size()),
         "queue-wait stats missed requests");
  if (!pool_ok) return 1;

  if (!verify_streams("pool", pool_configs, pool_streams)) return 1;
  return 0;
}
