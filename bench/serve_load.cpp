/// \file serve_load.cpp
/// \brief Load generator for the session host (src/serve): many
/// interleaved named sessions through one SessionHost, verified
/// bit-for-bit against standalone engine runs.
///
/// Drives EASYBO_SESSIONS (default 100) sequential-mode sessions with
/// distinct seeds round-robin through a host whose live-object cache is
/// deliberately too small (EASYBO_MAX_LIVE, default 32), so most turns
/// hit a session that was LRU-evicted and must resume from its journal +
/// snapshot. One session is additionally CLOSEd explicitly mid-run and
/// driven on afterwards. When every session has exhausted its budget,
/// each proposal stream is compared element-for-element against a
/// standalone seeded BoEngine::run of the identical (wire-round-tripped)
/// config — the acceptance check for the multi-session server.
///
/// Exit codes: 0 all streams bit-identical, 1 any mismatch or error.
///
/// Environment: EASYBO_SESSIONS, EASYBO_MAX_LIVE, EASYBO_SIMS
/// (default 16), EASYBO_STATE_DIR (default under the system temp dir).

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bo/engine.h"
#include "circuit/testfunc.h"
#include "harness.h"
#include "io/json.h"
#include "serve/host.h"
#include "serve/session_config.h"

namespace {

using easybo::linalg::Vec;

std::string config_json(std::uint64_t seed, std::size_t max_sims) {
  easybo::bo::BoConfig c;
  c.mode = easybo::bo::Mode::Sequential;
  c.acq = easybo::bo::AcqKind::EasyBo;
  c.penalize = true;
  c.batch = 1;
  c.init_points = 6;
  c.max_sims = max_sims;
  c.seed = seed;
  c.on_eval_failure = easybo::bo::EvalFailurePolicy::Discard;
  c.acq_opt.sobol_candidates = 64;
  c.acq_opt.random_candidates = 32;
  c.acq_opt.refine_evals = 30;
  c.trainer.max_iters = 10;
  c.trainer.restarts = 1;
  easybo::opt::Bounds b;
  b.lower.assign(3, -2.0);
  b.upper.assign(3, 2.0);
  return easybo::serve::session_config_json(c, b);
}

struct Turn {
  std::size_t tag = 0;
  Vec x;
};

/// One SUGGEST reply → tag + point; empty x means budget exhausted.
Turn suggest(easybo::serve::SessionHost& host, const std::string& name) {
  const std::string reply = host.handle_line("SUGGEST " + name);
  Turn t;
  if (reply.rfind("ERR ", 0) == 0) {
    if (reply.find("budget exhausted") == std::string::npos) {
      std::fprintf(stderr, "serve_load: %s: %s\n", name.c_str(),
                   reply.c_str());
      std::exit(1);
    }
    return t;
  }
  const easybo::io::JsonValue j = easybo::io::parse_json(reply.substr(3));
  t.tag = static_cast<std::size_t>(j.at("tag").as_double());
  for (const auto& v : j.at("x").as_array()) t.x.push_back(v.as_double());
  return t;
}

}  // namespace

int main() {
  using namespace easybo;
  using namespace easybo::bench;

  const std::size_t sessions = env_size("EASYBO_SESSIONS", 100);
  const std::size_t max_live = env_size("EASYBO_MAX_LIVE", 32);
  const std::size_t sims = env_size("EASYBO_SIMS", 16);
  std::string state_dir;
  if (const char* dir = std::getenv("EASYBO_STATE_DIR")) {
    state_dir = dir;
  } else {
    state_dir =
        (std::filesystem::temp_directory_path() / "easybo_serve_load")
            .string();
  }
  std::filesystem::remove_all(state_dir);

  const auto tf = circuit::sphere(3);
  std::printf(
      "=== Session-host load generator (%zu sessions, max_live %zu, "
      "%zu sims each, state under %s) ===\n",
      sessions, max_live, sims, state_dir.c_str());

  serve::SessionHost host(state_dir, max_live);
  std::vector<std::string> configs(sessions);
  std::vector<std::vector<Vec>> streams(sessions);
  std::vector<bool> done(sessions, false);

  for (std::size_t i = 0; i < sessions; ++i) {
    configs[i] = config_json(1000 + i, sims);
    const std::string name = "load" + std::to_string(i);
    const std::string reply =
        host.handle_line("NEW " + name + " " + configs[i]);
    if (reply != "OK created " + name) {
      std::fprintf(stderr, "serve_load: %s\n", reply.c_str());
      return 1;
    }
  }

  // Round-robin: one suggest/observe turn per session per sweep. With
  // max_live << sessions every sweep churns the LRU cache end to end.
  std::size_t turns = 0;
  std::size_t remaining = sessions;
  std::size_t sweep = 0;
  while (remaining > 0) {
    for (std::size_t i = 0; i < sessions; ++i) {
      if (done[i]) continue;
      const std::string name = "load" + std::to_string(i);
      // Session 0 gets the harshest treatment: an explicit mid-run CLOSE
      // every sweep, so each of its turns resumes from checkpoint.
      if (i == 0 && sweep > 0) host.handle_line("CLOSE " + name);
      const Turn t = suggest(host, name);
      if (t.x.empty()) {
        done[i] = true;
        --remaining;
        continue;
      }
      streams[i].push_back(t.x);
      const std::string ob = host.handle_line(
          "OBSERVE " + name + " " + std::to_string(t.tag) + " " +
          io::json_number(tf.fn(t.x)));
      if (ob.rfind("OK ", 0) != 0) {
        std::fprintf(stderr, "serve_load: %s: %s\n", name.c_str(),
                     ob.c_str());
        return 1;
      }
      ++turns;
    }
    ++sweep;
  }
  std::printf("drove %zu suggest/observe turns in %zu sweeps (%zu live "
              "of %zu sessions at the end)\n",
              turns, sweep, host.live_count(), sessions);

  // Verification: every stream must match a standalone engine run of the
  // round-tripped config, element for element.
  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < sessions; ++i) {
    const serve::SessionSpec spec =
        serve::parse_session_config(configs[i]);
    bo::BoEngine engine(spec.config, spec.bounds, tf.fn);
    const bo::BoResult result = engine.run();
    bool ok = result.evals.size() == streams[i].size();
    for (std::size_t k = 0; ok && k < result.evals.size(); ++k) {
      ok = result.evals[k].x == streams[i][k];
    }
    if (!ok) {
      ++mismatches;
      std::fprintf(stderr,
                   "serve_load: session load%zu diverged from the "
                   "standalone run (%zu vs %zu proposals)\n",
                   i, streams[i].size(), result.evals.size());
    }
  }

  if (mismatches > 0) {
    std::fprintf(stderr, "serve_load: %zu of %zu sessions diverged\n",
                 mismatches, sessions);
    return 1;
  }
  std::printf("all %zu session streams bit-identical to standalone "
              "BoEngine runs\n",
              sessions);
  return 0;
}
