#include "harness.h"

#include <cstdlib>
#include <fstream>

#include "common/rng.h"

namespace easybo::bench {

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  const long long parsed = std::atoll(value);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

void apply_bench_budgets(bo::BoConfig& config) {
  config.acq_opt.sobol_candidates = 256;
  config.acq_opt.random_candidates = 64;
  config.acq_opt.refine_top_k = 3;
  config.acq_opt.refine_evals = 120;
  config.acq_opt.anchor_jitter = 16;
  config.acq_opt.jitter_scale = 0.03;
  config.trainer.max_iters = 30;
  config.trainer.restarts = 1;
  // Matern-5/2 models the benchmarks' ridge-shaped landscapes better than
  // the paper's SE kernel does on our analytic substitutes; see
  // EXPERIMENTS.md ("kernel choice") for the measured comparison.
  config.kernel = "matern52";
}

AlgoStats run_bo_repeated(const circuit::SizingBenchmark& bench,
                          bo::BoConfig config, std::size_t runs,
                          std::uint64_t base_seed) {
  AlgoStats stats;
  stats.label = config.label();
  std::vector<double> bests;
  double makespan_sum = 0.0;
  double util_sum = 0.0;
  const std::size_t workers =
      (config.mode == bo::Mode::Sequential) ? 1 : config.batch;
  // Recording is behaviorally inert (same proposals either way) and cheap
  // next to the runs themselves, so the bench always keeps the report.
  config.collect_metrics = true;
  for (std::size_t r = 0; r < runs; ++r) {
    config.seed = base_seed + r;
    auto result = bo::run_bo(
        config, bench.bounds, bench.fom,
        [&bench](const linalg::Vec& x) { return bench.sim_time(x); });
    bests.push_back(result.best_y);
    makespan_sum += result.makespan;
    util_sum += result.utilization(workers);
    stats.metrics.merge(result.metrics);
    stats.runs.push_back(std::move(result));
  }
  stats.fom = summarize(bests);
  stats.mean_makespan = makespan_sum / static_cast<double>(runs);
  stats.mean_utilization = util_sum / static_cast<double>(runs);
  return stats;
}

AlgoStats run_de_repeated(const circuit::SizingBenchmark& bench,
                          std::size_t de_evals, std::size_t runs,
                          std::uint64_t base_seed) {
  AlgoStats stats;
  stats.label = "DE";
  std::vector<double> bests;
  double makespan_sum = 0.0;
  for (std::size_t r = 0; r < runs; ++r) {
    Rng rng(base_seed + r);
    double virtual_time = 0.0;
    opt::DeOptions opt;
    opt.max_evals = de_evals;
    const auto result = opt::de_maximize(
        bench.fom, bench.bounds, rng, opt,
        [&](const linalg::Vec& x, double, std::size_t) {
          virtual_time += bench.sim_time(x);
        });
    bests.push_back(result.best_y);
    makespan_sum += virtual_time;
  }
  stats.fom = summarize(bests);
  stats.mean_makespan = makespan_sum / static_cast<double>(runs);
  stats.mean_utilization = 1.0;
  return stats;
}

std::vector<bo::BoConfig> paper_roster(
    std::size_t init_points, std::size_t max_sims,
    const std::vector<std::size_t>& batch_sizes) {
  std::vector<bo::BoConfig> roster;
  auto base = [&] {
    bo::BoConfig c;
    c.init_points = init_points;
    c.max_sims = max_sims;
    apply_bench_budgets(c);
    return c;
  };

  // Sequential block: LCB, EI, EasyBO.
  for (bo::AcqKind acq :
       {bo::AcqKind::Lcb, bo::AcqKind::Ei, bo::AcqKind::EasyBo}) {
    auto c = base();
    c.mode = bo::Mode::Sequential;
    c.acq = acq;
    c.penalize = false;
    c.batch = 1;
    roster.push_back(c);
  }

  // Batch blocks, in the paper's row order per batch size.
  for (std::size_t b : batch_sizes) {
    struct Row {
      bo::Mode mode;
      bo::AcqKind acq;
      bool penalize;
    };
    const Row rows[] = {
        {bo::Mode::SyncBatch, bo::AcqKind::Pbo, false},
        {bo::Mode::SyncBatch, bo::AcqKind::Phcbo, false},
        {bo::Mode::SyncBatch, bo::AcqKind::EasyBo, false},   // EasyBO-S
        {bo::Mode::AsyncBatch, bo::AcqKind::EasyBo, false},  // EasyBO-A
        {bo::Mode::SyncBatch, bo::AcqKind::EasyBo, true},    // EasyBO-SP
        {bo::Mode::AsyncBatch, bo::AcqKind::EasyBo, true},   // EasyBO
    };
    for (const Row& row : rows) {
      auto c = base();
      c.mode = row.mode;
      c.acq = row.acq;
      c.penalize = row.penalize;
      c.batch = b;
      roster.push_back(c);
    }
  }
  return roster;
}

void add_table_row(AsciiTable& table, const AlgoStats& stats,
                   int precision) {
  table.add_row({stats.label, format_double(stats.fom.best, precision),
                 format_double(stats.fom.worst, precision),
                 format_double(stats.fom.mean, precision),
                 format_double(stats.fom.stddev, precision),
                 format_duration(stats.mean_makespan)});
}

namespace {

// Minimal JSON string escape for algorithm labels (ASCII, as produced by
// BoConfig::label(); mirrors the escaping in obs/metrics.cpp).
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string write_bench_metrics_json(const std::string& default_path,
                                     const std::vector<AlgoStats>& algos) {
  const char* env = std::getenv("EASYBO_METRICS_JSON");
  const std::string path =
      (env != nullptr && *env != '\0') ? env : default_path;

  std::string doc = "{\"schema\":\"easybo.bench-metrics.v1\",\"algos\":{";
  bool first = true;
  for (const auto& stats : algos) {
    if (stats.metrics.empty()) continue;  // non-BO rows (e.g. DE)
    if (!first) doc += ',';
    first = false;
    doc += '"';
    doc += json_escape(stats.label);
    doc += "\":";
    doc += stats.metrics.to_json();
  }
  doc += "}}";

  std::ofstream out(path);
  if (!out) return {};
  out << doc << '\n';
  return out ? path : std::string{};
}

}  // namespace easybo::bench
