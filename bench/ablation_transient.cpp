/// \file ablation_transient.cpp
/// \brief Validates the analytic class-E benchmark model against the
/// time-domain transient simulator (circuit/classe_transient.h).
///
/// The Table II objective uses the fast analytic Sokal-style model; HSPICE
/// (the paper) integrates the switching waveforms. This bench runs both on
/// the same power-stage parameters across a tuning sweep and reports how
/// well the analytic model tracks the "ground truth" transient:
///   * drain efficiency along a shunt-capacitance detuning sweep,
///   * the ZVS sweet spot location,
///   * Ron and duty sensitivity.
/// The two need not match in absolute value — the optimizer only needs the
/// analytic model to rank designs the same way the transient sim does,
/// which is what the rank-correlation summary checks.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numbers>
#include <vector>

#include "circuit/classe_transient.h"
#include "common/format.h"

namespace {

using easybo::circuit::ClassETransientParams;
using easybo::circuit::simulate_classe_transient;

/// The analytic drain-efficiency factors of the benchmark model, for the
/// same bare power stage (no matching network, no driver losses).
double analytic_drain_eff(const ClassETransientParams& p) {
  const double w = 2.0 * std::numbers::pi * p.freq;
  const double c_opt = 0.1836 / (w * p.r_load);
  const double x_opt = 1.1525 * p.r_load;
  const double x_net = w * p.l0 - 1.0 / (w * p.c0);
  const double dc1 = (p.c1 - c_opt) / c_opt;
  const double dx = (x_net - x_opt) / p.r_load;
  const double eta_tune =
      1.0 / ((1.0 + 0.9 * dc1 * dc1) * (1.0 + 0.3 * dx * dx));
  const double eta_cond = 1.0 / (1.0 + 1.365 * p.ron / p.r_load);
  const double dd = (p.duty - 0.5) / 0.19;
  const double eta_duty = 1.0 / (1.0 + dd * dd);
  const double choke_ratio = w * p.lc / (10.0 * p.r_load);
  const double eta_choke = choke_ratio / (choke_ratio + 0.35);
  return eta_tune * eta_cond * eta_duty * eta_choke;
}

ClassETransientParams base_stage() {
  ClassETransientParams p;
  p.vdd = 2.5;
  p.ron = 0.08;
  p.r_load = 1.5;
  p.freq = 900e6;
  const double w = 2.0 * std::numbers::pi * p.freq;
  p.c1 = 0.1836 / (w * p.r_load);
  p.l0 = 8.0 * p.r_load / w;
  p.c0 = 1.0 / (w * (w * p.l0 - 1.1525 * p.r_load));
  p.lc = 300.0 * p.r_load / w;
  p.duty = 0.5;
  return p;
}

double spearman_rank_correlation(std::vector<double> a,
                                 std::vector<double> b) {
  auto ranks = [](std::vector<double> v) {
    std::vector<std::size_t> idx(v.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t x, std::size_t y) { return v[x] < v[y]; });
    std::vector<double> r(v.size());
    for (std::size_t i = 0; i < idx.size(); ++i) {
      r[idx[i]] = static_cast<double>(i);
    }
    return r;
  };
  const auto ra = ranks(std::move(a));
  const auto rb = ranks(std::move(b));
  const double n = static_cast<double>(ra.size());
  double d2 = 0.0;
  for (std::size_t i = 0; i < ra.size(); ++i) {
    d2 += (ra[i] - rb[i]) * (ra[i] - rb[i]);
  }
  return 1.0 - 6.0 * d2 / (n * (n * n - 1.0));
}

}  // namespace

int main() {
  std::printf("=== Analytic class-E model vs transient simulation ===\n\n");

  std::vector<double> analytic_all, transient_all;

  std::printf("(a) shunt capacitance sweep (C1 / C1_sokal):\n");
  std::printf("  %-8s %-12s %-12s %-12s\n", "ratio", "transient",
              "analytic", "Vsw@on [V]");
  for (double ratio : {0.4, 0.6, 0.8, 1.0, 1.3, 1.8, 2.5}) {
    auto p = base_stage();
    p.c1 *= ratio;
    const auto t = simulate_classe_transient(p);
    const double a = analytic_drain_eff(p);
    std::printf("  %-8.2f %-12.3f %-12.3f %-12.2f\n", ratio, t.drain_eff, a,
                t.v_switch_at_on);
    analytic_all.push_back(a);
    transient_all.push_back(t.drain_eff);
  }

  std::printf("\n(b) switch on-resistance sweep (Ron [ohm]):\n");
  std::printf("  %-8s %-12s %-12s\n", "Ron", "transient", "analytic");
  for (double ron : {0.02, 0.08, 0.2, 0.4, 0.8}) {
    auto p = base_stage();
    p.ron = ron;
    const auto t = simulate_classe_transient(p);
    const double a = analytic_drain_eff(p);
    std::printf("  %-8.2f %-12.3f %-12.3f\n", ron, t.drain_eff, a);
    analytic_all.push_back(a);
    transient_all.push_back(t.drain_eff);
  }

  std::printf("\n(c) duty-cycle sweep:\n");
  std::printf("  %-8s %-12s %-12s\n", "duty", "transient", "analytic");
  for (double duty : {0.35, 0.42, 0.5, 0.58, 0.65}) {
    auto p = base_stage();
    p.duty = duty;
    const auto t = simulate_classe_transient(p);
    const double a = analytic_drain_eff(p);
    std::printf("  %-8.2f %-12.3f %-12.3f\n", duty, t.drain_eff, a);
    analytic_all.push_back(a);
    transient_all.push_back(t.drain_eff);
  }

  const double rho =
      spearman_rank_correlation(analytic_all, transient_all);
  std::printf("\nSpearman rank correlation (analytic vs transient) over "
              "all %zu sweep points: %.3f\n",
              analytic_all.size(), rho);
  std::printf("(the optimizer only needs the analytic Table II objective "
              "to RANK designs like the transient ground truth)\n");
  return 0;
}
