file(REMOVE_RECURSE
  "CMakeFiles/table1_opamp.dir/table1_opamp.cpp.o"
  "CMakeFiles/table1_opamp.dir/table1_opamp.cpp.o.d"
  "table1_opamp"
  "table1_opamp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_opamp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
