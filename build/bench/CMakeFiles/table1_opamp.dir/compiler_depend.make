# Empty compiler generated dependencies file for table1_opamp.
# This may be replaced when dependencies are built.
