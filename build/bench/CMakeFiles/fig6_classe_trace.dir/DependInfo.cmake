
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig6_classe_trace.cpp" "bench/CMakeFiles/fig6_classe_trace.dir/fig6_classe_trace.cpp.o" "gcc" "bench/CMakeFiles/fig6_classe_trace.dir/fig6_classe_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/easybo_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/easybo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bo/CMakeFiles/easybo_bo.dir/DependInfo.cmake"
  "/root/repo/build/src/circuit/CMakeFiles/easybo_circuit.dir/DependInfo.cmake"
  "/root/repo/build/src/acq/CMakeFiles/easybo_acq.dir/DependInfo.cmake"
  "/root/repo/build/src/gp/CMakeFiles/easybo_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/easybo_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/easybo_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/spice/CMakeFiles/easybo_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/easybo_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/easybo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
