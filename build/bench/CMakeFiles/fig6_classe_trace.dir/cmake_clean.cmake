file(REMOVE_RECURSE
  "CMakeFiles/fig6_classe_trace.dir/fig6_classe_trace.cpp.o"
  "CMakeFiles/fig6_classe_trace.dir/fig6_classe_trace.cpp.o.d"
  "fig6_classe_trace"
  "fig6_classe_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_classe_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
