# Empty dependencies file for fig6_classe_trace.
# This may be replaced when dependencies are built.
