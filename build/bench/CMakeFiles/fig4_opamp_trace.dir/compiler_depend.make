# Empty compiler generated dependencies file for fig4_opamp_trace.
# This may be replaced when dependencies are built.
