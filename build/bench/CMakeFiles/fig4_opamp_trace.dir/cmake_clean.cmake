file(REMOVE_RECURSE
  "CMakeFiles/fig4_opamp_trace.dir/fig4_opamp_trace.cpp.o"
  "CMakeFiles/fig4_opamp_trace.dir/fig4_opamp_trace.cpp.o.d"
  "fig4_opamp_trace"
  "fig4_opamp_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_opamp_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
