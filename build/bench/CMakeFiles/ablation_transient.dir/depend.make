# Empty dependencies file for ablation_transient.
# This may be replaced when dependencies are built.
