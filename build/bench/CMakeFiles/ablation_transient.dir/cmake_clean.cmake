file(REMOVE_RECURSE
  "CMakeFiles/ablation_transient.dir/ablation_transient.cpp.o"
  "CMakeFiles/ablation_transient.dir/ablation_transient.cpp.o.d"
  "ablation_transient"
  "ablation_transient.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_transient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
