file(REMOVE_RECURSE
  "CMakeFiles/easybo_bench_harness.dir/harness.cpp.o"
  "CMakeFiles/easybo_bench_harness.dir/harness.cpp.o.d"
  "libeasybo_bench_harness.a"
  "libeasybo_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easybo_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
