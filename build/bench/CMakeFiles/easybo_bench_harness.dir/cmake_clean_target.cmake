file(REMOVE_RECURSE
  "libeasybo_bench_harness.a"
)
