# Empty compiler generated dependencies file for easybo_bench_harness.
# This may be replaced when dependencies are built.
