file(REMOVE_RECURSE
  "CMakeFiles/fig2_acquisition.dir/fig2_acquisition.cpp.o"
  "CMakeFiles/fig2_acquisition.dir/fig2_acquisition.cpp.o.d"
  "fig2_acquisition"
  "fig2_acquisition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_acquisition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
