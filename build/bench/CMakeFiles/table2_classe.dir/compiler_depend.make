# Empty compiler generated dependencies file for table2_classe.
# This may be replaced when dependencies are built.
