file(REMOVE_RECURSE
  "CMakeFiles/table2_classe.dir/table2_classe.cpp.o"
  "CMakeFiles/table2_classe.dir/table2_classe.cpp.o.d"
  "table2_classe"
  "table2_classe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_classe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
