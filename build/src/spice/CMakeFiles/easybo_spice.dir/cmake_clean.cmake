file(REMOVE_RECURSE
  "CMakeFiles/easybo_spice.dir/dc.cpp.o"
  "CMakeFiles/easybo_spice.dir/dc.cpp.o.d"
  "CMakeFiles/easybo_spice.dir/measure.cpp.o"
  "CMakeFiles/easybo_spice.dir/measure.cpp.o.d"
  "CMakeFiles/easybo_spice.dir/mna.cpp.o"
  "CMakeFiles/easybo_spice.dir/mna.cpp.o.d"
  "CMakeFiles/easybo_spice.dir/netlist.cpp.o"
  "CMakeFiles/easybo_spice.dir/netlist.cpp.o.d"
  "libeasybo_spice.a"
  "libeasybo_spice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easybo_spice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
