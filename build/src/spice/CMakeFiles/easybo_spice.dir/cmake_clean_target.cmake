file(REMOVE_RECURSE
  "libeasybo_spice.a"
)
