
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/spice/dc.cpp" "src/spice/CMakeFiles/easybo_spice.dir/dc.cpp.o" "gcc" "src/spice/CMakeFiles/easybo_spice.dir/dc.cpp.o.d"
  "/root/repo/src/spice/measure.cpp" "src/spice/CMakeFiles/easybo_spice.dir/measure.cpp.o" "gcc" "src/spice/CMakeFiles/easybo_spice.dir/measure.cpp.o.d"
  "/root/repo/src/spice/mna.cpp" "src/spice/CMakeFiles/easybo_spice.dir/mna.cpp.o" "gcc" "src/spice/CMakeFiles/easybo_spice.dir/mna.cpp.o.d"
  "/root/repo/src/spice/netlist.cpp" "src/spice/CMakeFiles/easybo_spice.dir/netlist.cpp.o" "gcc" "src/spice/CMakeFiles/easybo_spice.dir/netlist.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/easybo_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/easybo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
