# Empty compiler generated dependencies file for easybo_spice.
# This may be replaced when dependencies are built.
