file(REMOVE_RECURSE
  "CMakeFiles/easybo_opt.dir/de.cpp.o"
  "CMakeFiles/easybo_opt.dir/de.cpp.o.d"
  "CMakeFiles/easybo_opt.dir/nelder_mead.cpp.o"
  "CMakeFiles/easybo_opt.dir/nelder_mead.cpp.o.d"
  "CMakeFiles/easybo_opt.dir/objective.cpp.o"
  "CMakeFiles/easybo_opt.dir/objective.cpp.o.d"
  "CMakeFiles/easybo_opt.dir/pso.cpp.o"
  "CMakeFiles/easybo_opt.dir/pso.cpp.o.d"
  "CMakeFiles/easybo_opt.dir/random_search.cpp.o"
  "CMakeFiles/easybo_opt.dir/random_search.cpp.o.d"
  "CMakeFiles/easybo_opt.dir/sa.cpp.o"
  "CMakeFiles/easybo_opt.dir/sa.cpp.o.d"
  "libeasybo_opt.a"
  "libeasybo_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easybo_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
