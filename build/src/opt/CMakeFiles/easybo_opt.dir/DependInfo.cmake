
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/de.cpp" "src/opt/CMakeFiles/easybo_opt.dir/de.cpp.o" "gcc" "src/opt/CMakeFiles/easybo_opt.dir/de.cpp.o.d"
  "/root/repo/src/opt/nelder_mead.cpp" "src/opt/CMakeFiles/easybo_opt.dir/nelder_mead.cpp.o" "gcc" "src/opt/CMakeFiles/easybo_opt.dir/nelder_mead.cpp.o.d"
  "/root/repo/src/opt/objective.cpp" "src/opt/CMakeFiles/easybo_opt.dir/objective.cpp.o" "gcc" "src/opt/CMakeFiles/easybo_opt.dir/objective.cpp.o.d"
  "/root/repo/src/opt/pso.cpp" "src/opt/CMakeFiles/easybo_opt.dir/pso.cpp.o" "gcc" "src/opt/CMakeFiles/easybo_opt.dir/pso.cpp.o.d"
  "/root/repo/src/opt/random_search.cpp" "src/opt/CMakeFiles/easybo_opt.dir/random_search.cpp.o" "gcc" "src/opt/CMakeFiles/easybo_opt.dir/random_search.cpp.o.d"
  "/root/repo/src/opt/sa.cpp" "src/opt/CMakeFiles/easybo_opt.dir/sa.cpp.o" "gcc" "src/opt/CMakeFiles/easybo_opt.dir/sa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/easybo_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/easybo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
