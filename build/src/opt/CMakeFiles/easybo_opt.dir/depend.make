# Empty dependencies file for easybo_opt.
# This may be replaced when dependencies are built.
