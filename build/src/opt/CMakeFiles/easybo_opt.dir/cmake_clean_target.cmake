file(REMOVE_RECURSE
  "libeasybo_opt.a"
)
