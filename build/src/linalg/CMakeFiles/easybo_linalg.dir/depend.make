# Empty dependencies file for easybo_linalg.
# This may be replaced when dependencies are built.
