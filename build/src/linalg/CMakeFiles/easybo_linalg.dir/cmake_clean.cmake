file(REMOVE_RECURSE
  "CMakeFiles/easybo_linalg.dir/cholesky.cpp.o"
  "CMakeFiles/easybo_linalg.dir/cholesky.cpp.o.d"
  "CMakeFiles/easybo_linalg.dir/matrix.cpp.o"
  "CMakeFiles/easybo_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/easybo_linalg.dir/vec.cpp.o"
  "CMakeFiles/easybo_linalg.dir/vec.cpp.o.d"
  "libeasybo_linalg.a"
  "libeasybo_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easybo_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
