file(REMOVE_RECURSE
  "libeasybo_linalg.a"
)
