file(REMOVE_RECURSE
  "libeasybo_sched.a"
)
