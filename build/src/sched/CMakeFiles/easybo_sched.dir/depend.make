# Empty dependencies file for easybo_sched.
# This may be replaced when dependencies are built.
