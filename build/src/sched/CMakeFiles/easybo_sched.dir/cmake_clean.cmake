file(REMOVE_RECURSE
  "CMakeFiles/easybo_sched.dir/event_sim.cpp.o"
  "CMakeFiles/easybo_sched.dir/event_sim.cpp.o.d"
  "libeasybo_sched.a"
  "libeasybo_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easybo_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
