file(REMOVE_RECURSE
  "CMakeFiles/easybo_bo.dir/config.cpp.o"
  "CMakeFiles/easybo_bo.dir/config.cpp.o.d"
  "CMakeFiles/easybo_bo.dir/constrained.cpp.o"
  "CMakeFiles/easybo_bo.dir/constrained.cpp.o.d"
  "CMakeFiles/easybo_bo.dir/engine.cpp.o"
  "CMakeFiles/easybo_bo.dir/engine.cpp.o.d"
  "CMakeFiles/easybo_bo.dir/result.cpp.o"
  "CMakeFiles/easybo_bo.dir/result.cpp.o.d"
  "libeasybo_bo.a"
  "libeasybo_bo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easybo_bo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
