# Empty dependencies file for easybo_bo.
# This may be replaced when dependencies are built.
