file(REMOVE_RECURSE
  "libeasybo_bo.a"
)
