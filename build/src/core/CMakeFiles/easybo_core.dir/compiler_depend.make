# Empty compiler generated dependencies file for easybo_core.
# This may be replaced when dependencies are built.
