file(REMOVE_RECURSE
  "libeasybo_core.a"
)
