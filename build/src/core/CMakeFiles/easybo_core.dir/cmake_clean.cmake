file(REMOVE_RECURSE
  "CMakeFiles/easybo_core.dir/optimizer.cpp.o"
  "CMakeFiles/easybo_core.dir/optimizer.cpp.o.d"
  "CMakeFiles/easybo_core.dir/problem.cpp.o"
  "CMakeFiles/easybo_core.dir/problem.cpp.o.d"
  "libeasybo_core.a"
  "libeasybo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easybo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
