
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/acq/acq_optimizer.cpp" "src/acq/CMakeFiles/easybo_acq.dir/acq_optimizer.cpp.o" "gcc" "src/acq/CMakeFiles/easybo_acq.dir/acq_optimizer.cpp.o.d"
  "/root/repo/src/acq/acquisition.cpp" "src/acq/CMakeFiles/easybo_acq.dir/acquisition.cpp.o" "gcc" "src/acq/CMakeFiles/easybo_acq.dir/acquisition.cpp.o.d"
  "/root/repo/src/acq/thompson.cpp" "src/acq/CMakeFiles/easybo_acq.dir/thompson.cpp.o" "gcc" "src/acq/CMakeFiles/easybo_acq.dir/thompson.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/gp/CMakeFiles/easybo_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/easybo_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/easybo_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/easybo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
