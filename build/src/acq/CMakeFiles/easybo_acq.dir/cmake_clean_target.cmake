file(REMOVE_RECURSE
  "libeasybo_acq.a"
)
