file(REMOVE_RECURSE
  "CMakeFiles/easybo_acq.dir/acq_optimizer.cpp.o"
  "CMakeFiles/easybo_acq.dir/acq_optimizer.cpp.o.d"
  "CMakeFiles/easybo_acq.dir/acquisition.cpp.o"
  "CMakeFiles/easybo_acq.dir/acquisition.cpp.o.d"
  "CMakeFiles/easybo_acq.dir/thompson.cpp.o"
  "CMakeFiles/easybo_acq.dir/thompson.cpp.o.d"
  "libeasybo_acq.a"
  "libeasybo_acq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easybo_acq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
