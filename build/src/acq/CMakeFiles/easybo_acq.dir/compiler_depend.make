# Empty compiler generated dependencies file for easybo_acq.
# This may be replaced when dependencies are built.
