# Empty dependencies file for easybo_gp.
# This may be replaced when dependencies are built.
