file(REMOVE_RECURSE
  "libeasybo_gp.a"
)
