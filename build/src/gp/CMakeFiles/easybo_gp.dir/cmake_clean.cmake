file(REMOVE_RECURSE
  "CMakeFiles/easybo_gp.dir/gp.cpp.o"
  "CMakeFiles/easybo_gp.dir/gp.cpp.o.d"
  "CMakeFiles/easybo_gp.dir/kernel.cpp.o"
  "CMakeFiles/easybo_gp.dir/kernel.cpp.o.d"
  "CMakeFiles/easybo_gp.dir/normalizer.cpp.o"
  "CMakeFiles/easybo_gp.dir/normalizer.cpp.o.d"
  "CMakeFiles/easybo_gp.dir/trainer.cpp.o"
  "CMakeFiles/easybo_gp.dir/trainer.cpp.o.d"
  "libeasybo_gp.a"
  "libeasybo_gp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easybo_gp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
