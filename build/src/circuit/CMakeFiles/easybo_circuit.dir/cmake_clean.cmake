file(REMOVE_RECURSE
  "CMakeFiles/easybo_circuit.dir/benchmark.cpp.o"
  "CMakeFiles/easybo_circuit.dir/benchmark.cpp.o.d"
  "CMakeFiles/easybo_circuit.dir/classe.cpp.o"
  "CMakeFiles/easybo_circuit.dir/classe.cpp.o.d"
  "CMakeFiles/easybo_circuit.dir/classe_transient.cpp.o"
  "CMakeFiles/easybo_circuit.dir/classe_transient.cpp.o.d"
  "CMakeFiles/easybo_circuit.dir/mosfet.cpp.o"
  "CMakeFiles/easybo_circuit.dir/mosfet.cpp.o.d"
  "CMakeFiles/easybo_circuit.dir/opamp.cpp.o"
  "CMakeFiles/easybo_circuit.dir/opamp.cpp.o.d"
  "CMakeFiles/easybo_circuit.dir/sim_time_model.cpp.o"
  "CMakeFiles/easybo_circuit.dir/sim_time_model.cpp.o.d"
  "CMakeFiles/easybo_circuit.dir/testfunc.cpp.o"
  "CMakeFiles/easybo_circuit.dir/testfunc.cpp.o.d"
  "libeasybo_circuit.a"
  "libeasybo_circuit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easybo_circuit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
