# Empty dependencies file for easybo_circuit.
# This may be replaced when dependencies are built.
