file(REMOVE_RECURSE
  "libeasybo_circuit.a"
)
