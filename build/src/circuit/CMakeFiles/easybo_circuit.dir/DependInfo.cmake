
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/circuit/benchmark.cpp" "src/circuit/CMakeFiles/easybo_circuit.dir/benchmark.cpp.o" "gcc" "src/circuit/CMakeFiles/easybo_circuit.dir/benchmark.cpp.o.d"
  "/root/repo/src/circuit/classe.cpp" "src/circuit/CMakeFiles/easybo_circuit.dir/classe.cpp.o" "gcc" "src/circuit/CMakeFiles/easybo_circuit.dir/classe.cpp.o.d"
  "/root/repo/src/circuit/classe_transient.cpp" "src/circuit/CMakeFiles/easybo_circuit.dir/classe_transient.cpp.o" "gcc" "src/circuit/CMakeFiles/easybo_circuit.dir/classe_transient.cpp.o.d"
  "/root/repo/src/circuit/mosfet.cpp" "src/circuit/CMakeFiles/easybo_circuit.dir/mosfet.cpp.o" "gcc" "src/circuit/CMakeFiles/easybo_circuit.dir/mosfet.cpp.o.d"
  "/root/repo/src/circuit/opamp.cpp" "src/circuit/CMakeFiles/easybo_circuit.dir/opamp.cpp.o" "gcc" "src/circuit/CMakeFiles/easybo_circuit.dir/opamp.cpp.o.d"
  "/root/repo/src/circuit/sim_time_model.cpp" "src/circuit/CMakeFiles/easybo_circuit.dir/sim_time_model.cpp.o" "gcc" "src/circuit/CMakeFiles/easybo_circuit.dir/sim_time_model.cpp.o.d"
  "/root/repo/src/circuit/testfunc.cpp" "src/circuit/CMakeFiles/easybo_circuit.dir/testfunc.cpp.o" "gcc" "src/circuit/CMakeFiles/easybo_circuit.dir/testfunc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/spice/CMakeFiles/easybo_spice.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/easybo_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/easybo_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/easybo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
