file(REMOVE_RECURSE
  "libeasybo_common.a"
)
