file(REMOVE_RECURSE
  "CMakeFiles/easybo_common.dir/error.cpp.o"
  "CMakeFiles/easybo_common.dir/error.cpp.o.d"
  "CMakeFiles/easybo_common.dir/format.cpp.o"
  "CMakeFiles/easybo_common.dir/format.cpp.o.d"
  "CMakeFiles/easybo_common.dir/rng.cpp.o"
  "CMakeFiles/easybo_common.dir/rng.cpp.o.d"
  "CMakeFiles/easybo_common.dir/sampling.cpp.o"
  "CMakeFiles/easybo_common.dir/sampling.cpp.o.d"
  "CMakeFiles/easybo_common.dir/stats.cpp.o"
  "CMakeFiles/easybo_common.dir/stats.cpp.o.d"
  "CMakeFiles/easybo_common.dir/thread_pool.cpp.o"
  "CMakeFiles/easybo_common.dir/thread_pool.cpp.o.d"
  "libeasybo_common.a"
  "libeasybo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easybo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
