# Empty compiler generated dependencies file for easybo_common.
# This may be replaced when dependencies are built.
