# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_sampling[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_format[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_lu[1]_include.cmake")
include("/root/repo/build/tests/test_gp[1]_include.cmake")
include("/root/repo/build/tests/test_gp_trainer[1]_include.cmake")
include("/root/repo/build/tests/test_gp_incremental[1]_include.cmake")
include("/root/repo/build/tests/test_acq[1]_include.cmake")
include("/root/repo/build/tests/test_acq_optimizer[1]_include.cmake")
include("/root/repo/build/tests/test_thompson[1]_include.cmake")
include("/root/repo/build/tests/test_opt[1]_include.cmake")
include("/root/repo/build/tests/test_sched[1]_include.cmake")
include("/root/repo/build/tests/test_spice[1]_include.cmake")
include("/root/repo/build/tests/test_dc[1]_include.cmake")
include("/root/repo/build/tests/test_mosfet[1]_include.cmake")
include("/root/repo/build/tests/test_opamp[1]_include.cmake")
include("/root/repo/build/tests/test_classe[1]_include.cmake")
include("/root/repo/build/tests/test_classe_transient[1]_include.cmake")
include("/root/repo/build/tests/test_sim_time[1]_include.cmake")
include("/root/repo/build/tests/test_testfunc[1]_include.cmake")
include("/root/repo/build/tests/test_bo_config[1]_include.cmake")
include("/root/repo/build/tests/test_bo_engine[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_thread_pool[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_constrained[1]_include.cmake")
