# Empty compiler generated dependencies file for test_bo_engine.
# This may be replaced when dependencies are built.
