file(REMOVE_RECURSE
  "CMakeFiles/test_bo_engine.dir/test_bo_engine.cpp.o"
  "CMakeFiles/test_bo_engine.dir/test_bo_engine.cpp.o.d"
  "test_bo_engine"
  "test_bo_engine.pdb"
  "test_bo_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bo_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
