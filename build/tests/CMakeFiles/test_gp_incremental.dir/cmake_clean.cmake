file(REMOVE_RECURSE
  "CMakeFiles/test_gp_incremental.dir/test_gp_incremental.cpp.o"
  "CMakeFiles/test_gp_incremental.dir/test_gp_incremental.cpp.o.d"
  "test_gp_incremental"
  "test_gp_incremental.pdb"
  "test_gp_incremental[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gp_incremental.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
