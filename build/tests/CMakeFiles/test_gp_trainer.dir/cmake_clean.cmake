file(REMOVE_RECURSE
  "CMakeFiles/test_gp_trainer.dir/test_gp_trainer.cpp.o"
  "CMakeFiles/test_gp_trainer.dir/test_gp_trainer.cpp.o.d"
  "test_gp_trainer"
  "test_gp_trainer.pdb"
  "test_gp_trainer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gp_trainer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
