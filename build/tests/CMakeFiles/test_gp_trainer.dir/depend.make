# Empty dependencies file for test_gp_trainer.
# This may be replaced when dependencies are built.
