# Empty dependencies file for test_classe_transient.
# This may be replaced when dependencies are built.
