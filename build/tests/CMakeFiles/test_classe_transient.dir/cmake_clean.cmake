file(REMOVE_RECURSE
  "CMakeFiles/test_classe_transient.dir/test_classe_transient.cpp.o"
  "CMakeFiles/test_classe_transient.dir/test_classe_transient.cpp.o.d"
  "test_classe_transient"
  "test_classe_transient.pdb"
  "test_classe_transient[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_classe_transient.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
