# Empty dependencies file for test_classe.
# This may be replaced when dependencies are built.
