file(REMOVE_RECURSE
  "CMakeFiles/test_classe.dir/test_classe.cpp.o"
  "CMakeFiles/test_classe.dir/test_classe.cpp.o.d"
  "test_classe"
  "test_classe.pdb"
  "test_classe[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_classe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
