# Empty compiler generated dependencies file for test_acq_optimizer.
# This may be replaced when dependencies are built.
