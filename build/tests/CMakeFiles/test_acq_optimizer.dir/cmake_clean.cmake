file(REMOVE_RECURSE
  "CMakeFiles/test_acq_optimizer.dir/test_acq_optimizer.cpp.o"
  "CMakeFiles/test_acq_optimizer.dir/test_acq_optimizer.cpp.o.d"
  "test_acq_optimizer"
  "test_acq_optimizer.pdb"
  "test_acq_optimizer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_acq_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
