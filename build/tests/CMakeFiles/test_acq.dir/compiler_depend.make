# Empty compiler generated dependencies file for test_acq.
# This may be replaced when dependencies are built.
