file(REMOVE_RECURSE
  "CMakeFiles/test_acq.dir/test_acq.cpp.o"
  "CMakeFiles/test_acq.dir/test_acq.cpp.o.d"
  "test_acq"
  "test_acq.pdb"
  "test_acq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_acq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
