file(REMOVE_RECURSE
  "CMakeFiles/test_thompson.dir/test_thompson.cpp.o"
  "CMakeFiles/test_thompson.dir/test_thompson.cpp.o.d"
  "test_thompson"
  "test_thompson.pdb"
  "test_thompson[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thompson.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
