# Empty dependencies file for test_thompson.
# This may be replaced when dependencies are built.
