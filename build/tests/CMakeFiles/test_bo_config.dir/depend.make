# Empty dependencies file for test_bo_config.
# This may be replaced when dependencies are built.
