file(REMOVE_RECURSE
  "CMakeFiles/test_bo_config.dir/test_bo_config.cpp.o"
  "CMakeFiles/test_bo_config.dir/test_bo_config.cpp.o.d"
  "test_bo_config"
  "test_bo_config.pdb"
  "test_bo_config[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bo_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
