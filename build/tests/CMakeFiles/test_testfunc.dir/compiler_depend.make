# Empty compiler generated dependencies file for test_testfunc.
# This may be replaced when dependencies are built.
