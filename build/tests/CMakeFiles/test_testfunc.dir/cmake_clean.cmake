file(REMOVE_RECURSE
  "CMakeFiles/test_testfunc.dir/test_testfunc.cpp.o"
  "CMakeFiles/test_testfunc.dir/test_testfunc.cpp.o.d"
  "test_testfunc"
  "test_testfunc.pdb"
  "test_testfunc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_testfunc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
