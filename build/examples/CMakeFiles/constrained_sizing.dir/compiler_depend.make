# Empty compiler generated dependencies file for constrained_sizing.
# This may be replaced when dependencies are built.
