file(REMOVE_RECURSE
  "CMakeFiles/constrained_sizing.dir/constrained_sizing.cpp.o"
  "CMakeFiles/constrained_sizing.dir/constrained_sizing.cpp.o.d"
  "constrained_sizing"
  "constrained_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/constrained_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
