# Empty compiler generated dependencies file for opamp_sizing.
# This may be replaced when dependencies are built.
