file(REMOVE_RECURSE
  "CMakeFiles/opamp_sizing.dir/opamp_sizing.cpp.o"
  "CMakeFiles/opamp_sizing.dir/opamp_sizing.cpp.o.d"
  "opamp_sizing"
  "opamp_sizing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/opamp_sizing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
