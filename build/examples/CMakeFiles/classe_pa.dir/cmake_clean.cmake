file(REMOVE_RECURSE
  "CMakeFiles/classe_pa.dir/classe_pa.cpp.o"
  "CMakeFiles/classe_pa.dir/classe_pa.cpp.o.d"
  "classe_pa"
  "classe_pa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/classe_pa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
