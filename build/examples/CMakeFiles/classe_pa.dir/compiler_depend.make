# Empty compiler generated dependencies file for classe_pa.
# This may be replaced when dependencies are built.
