file(REMOVE_RECURSE
  "CMakeFiles/easybo_cli.dir/easybo_cli.cpp.o"
  "CMakeFiles/easybo_cli.dir/easybo_cli.cpp.o.d"
  "easybo_cli"
  "easybo_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/easybo_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
