# Empty dependencies file for easybo_cli.
# This may be replaced when dependencies are built.
