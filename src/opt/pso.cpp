#include "opt/pso.h"

#include <algorithm>

#include "common/error.h"

namespace easybo::opt {

OptResult pso_maximize(const Objective& fn, const Bounds& bounds, Rng& rng,
                       const PsoOptions& opt, const EvalObserver& observer) {
  bounds.validate();
  EASYBO_REQUIRE(opt.swarm >= 2, "PSO needs at least two particles");
  EASYBO_REQUIRE(opt.max_evals >= opt.swarm,
                 "PSO budget must cover the initial swarm");
  const std::size_t d = bounds.dim();
  const std::size_t n = opt.swarm;

  OptResult result;
  auto evaluate = [&](const Vec& x) {
    const double y = fn(x);
    if (observer) observer(x, y, result.num_evals);
    ++result.num_evals;
    if (result.history.empty() || y > result.best_y) {
      result.best_y = y;
      result.best_x = x;
    }
    result.history.push_back(result.best_y);
    return y;
  };

  std::vector<Vec> pos(n, Vec(d)), vel(n, Vec(d)), pbest(n, Vec(d));
  Vec pbest_val(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      const double width = bounds.upper[j] - bounds.lower[j];
      pos[i][j] = rng.uniform(bounds.lower[j], bounds.upper[j]);
      vel[i][j] = rng.uniform(-0.5, 0.5) * opt.max_velocity * width;
    }
    pbest[i] = pos[i];
    pbest_val[i] = evaluate(pos[i]);
  }
  std::size_t gbest = linalg::argmax(pbest_val);

  while (result.num_evals < opt.max_evals) {
    for (std::size_t i = 0; i < n && result.num_evals < opt.max_evals; ++i) {
      for (std::size_t j = 0; j < d; ++j) {
        const double width = bounds.upper[j] - bounds.lower[j];
        const double vmax = opt.max_velocity * width;
        const double r1 = rng.uniform();
        const double r2 = rng.uniform();
        double v = opt.inertia * vel[i][j] +
                   opt.cognitive * r1 * (pbest[i][j] - pos[i][j]) +
                   opt.social * r2 * (pbest[gbest][j] - pos[i][j]);
        v = std::clamp(v, -vmax, vmax);
        vel[i][j] = v;
        pos[i][j] = std::clamp(pos[i][j] + v, bounds.lower[j], bounds.upper[j]);
      }
      const double y = evaluate(pos[i]);
      if (y > pbest_val[i]) {
        pbest_val[i] = y;
        pbest[i] = pos[i];
        if (y > pbest_val[gbest]) gbest = i;
      }
    }
  }
  return result;
}

}  // namespace easybo::opt
