#pragma once
/// \file nelder_mead.h
/// \brief Nelder–Mead simplex maximization inside a box.
///
/// Used in two roles: (a) the local refinement stage of the acquisition
/// maximizer (src/acq/acq_optimizer.h) — acquisition surfaces are cheap but
/// their gradients are awkward, exactly the "acquisition optimization
/// awkward" issue the reproduction-banding calls out, and a derivative-free
/// simplex sidesteps it; (b) a general-purpose local optimizer exposed to
/// library users.

#include "common/rng.h"
#include "opt/objective.h"

namespace easybo::opt {

struct NelderMeadOptions {
  std::size_t max_evals = 200;
  double initial_step = 0.1;  ///< simplex edge, as a fraction of box width
  double x_tol = 1e-7;        ///< stop when the simplex collapses
  double f_tol = 1e-10;       ///< stop when f-spread collapses
  // Standard coefficients (reflection/expansion/contraction/shrink).
  double alpha = 1.0;
  double gamma = 2.0;
  double rho = 0.5;
  double sigma = 0.5;
};

/// Maximizes \p fn from \p start (must lie in the box; points are clamped
/// to the box throughout).
OptResult nelder_mead_maximize(const Objective& fn, const Bounds& bounds,
                               const Vec& start,
                               const NelderMeadOptions& options = {});

}  // namespace easybo::opt
