#pragma once
/// \file de.h
/// \brief Differential Evolution, the paper's evolutionary baseline [13].
///
/// The paper runs DE with 20000 (op-amp) / 15000 (class-E) simulations and
/// reports that EasyBO reaches better FOM with orders of magnitude fewer
/// evaluations. This implementation provides the classic strategies; the
/// experiment harness uses DE/best/1/bin, matching the exploitative hybrid
/// of [13] more closely than pure rand/1.

#include "common/rng.h"
#include "opt/objective.h"

namespace easybo::opt {

enum class DeStrategy {
  Rand1Bin,  ///< v = a + F (b - c)
  Best1Bin,  ///< v = best + F (a - b)
};

struct DeOptions {
  std::size_t population = 50;
  std::size_t max_evals = 20000;  ///< total objective evaluations
  double weight = 0.6;            ///< differential weight F
  double crossover = 0.9;         ///< crossover probability CR
  DeStrategy strategy = DeStrategy::Best1Bin;
};

/// Maximizes \p fn over the box. Evaluation order: the initial population
/// first (population evals), then one trial vector per population slot per
/// generation; the observer sees every evaluation in order.
OptResult de_maximize(const Objective& fn, const Bounds& bounds, Rng& rng,
                      const DeOptions& options = {},
                      const EvalObserver& observer = nullptr);

}  // namespace easybo::opt
