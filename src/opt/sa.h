#pragma once
/// \file sa.h
/// \brief Simulated annealing (extension baseline, paper refs [10]-[12]).

#include "common/rng.h"
#include "opt/objective.h"

namespace easybo::opt {

struct SaOptions {
  std::size_t max_evals = 4000;
  double initial_temp = 1.0;    ///< in units of the objective's scale
  double cooling = 0.995;       ///< geometric cooling per evaluation
  double initial_step = 0.25;   ///< proposal stddev, fraction of box width
  double final_step = 0.01;     ///< step shrinks geometrically toward this
};

/// Maximizes \p fn with Metropolis acceptance and geometric cooling.
OptResult sa_maximize(const Objective& fn, const Bounds& bounds, Rng& rng,
                      const SaOptions& options = {},
                      const EvalObserver& observer = nullptr);

}  // namespace easybo::opt
