#include "opt/de.h"

#include <algorithm>

#include "common/error.h"

namespace easybo::opt {

OptResult de_maximize(const Objective& fn, const Bounds& bounds, Rng& rng,
                      const DeOptions& opt, const EvalObserver& observer) {
  bounds.validate();
  EASYBO_REQUIRE(opt.population >= 4,
                 "DE needs a population of at least 4 for mutation");
  EASYBO_REQUIRE(opt.max_evals >= opt.population,
                 "DE budget must cover the initial population");
  const std::size_t d = bounds.dim();
  const std::size_t np = opt.population;

  OptResult result;
  auto evaluate = [&](const Vec& x) {
    const double y = fn(x);
    if (observer) observer(x, y, result.num_evals);
    ++result.num_evals;
    if (result.history.empty() || y > result.best_y) {
      result.best_y = y;
      result.best_x = x;
    }
    result.history.push_back(result.best_y);
    return y;
  };

  // Initial population: uniform random in the box.
  std::vector<Vec> pop(np, Vec(d));
  Vec fitness(np);
  for (std::size_t i = 0; i < np; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      pop[i][j] = rng.uniform(bounds.lower[j], bounds.upper[j]);
    }
    fitness[i] = evaluate(pop[i]);
  }

  std::size_t best_idx = linalg::argmax(fitness);
  while (result.num_evals < opt.max_evals) {
    for (std::size_t i = 0; i < np && result.num_evals < opt.max_evals; ++i) {
      // Pick distinct donors, all different from i.
      std::size_t a, b, c;
      do { a = rng.index(np); } while (a == i);
      do { b = rng.index(np); } while (b == i || b == a);
      do { c = rng.index(np); } while (c == i || c == a || c == b);

      Vec trial = pop[i];
      const std::size_t forced = rng.index(d);  // at least one gene crosses
      for (std::size_t j = 0; j < d; ++j) {
        if (j != forced && !rng.bernoulli(opt.crossover)) continue;
        double v = 0.0;
        switch (opt.strategy) {
          case DeStrategy::Rand1Bin:
            v = pop[a][j] + opt.weight * (pop[b][j] - pop[c][j]);
            break;
          case DeStrategy::Best1Bin:
            v = pop[best_idx][j] + opt.weight * (pop[a][j] - pop[b][j]);
            break;
        }
        trial[j] = std::clamp(v, bounds.lower[j], bounds.upper[j]);
      }

      const double trial_fitness = evaluate(trial);
      if (trial_fitness >= fitness[i]) {
        pop[i] = std::move(trial);
        fitness[i] = trial_fitness;
        if (trial_fitness > fitness[best_idx]) best_idx = i;
      }
    }
  }
  return result;
}

}  // namespace easybo::opt
