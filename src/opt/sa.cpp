#include "opt/sa.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace easybo::opt {

OptResult sa_maximize(const Objective& fn, const Bounds& bounds, Rng& rng,
                      const SaOptions& opt, const EvalObserver& observer) {
  bounds.validate();
  EASYBO_REQUIRE(opt.max_evals >= 2, "SA needs at least two evaluations");
  EASYBO_REQUIRE(opt.cooling > 0.0 && opt.cooling < 1.0,
                 "SA cooling factor must be in (0,1)");
  const std::size_t d = bounds.dim();

  OptResult result;
  auto evaluate = [&](const Vec& x) {
    const double y = fn(x);
    if (observer) observer(x, y, result.num_evals);
    ++result.num_evals;
    if (result.history.empty() || y > result.best_y) {
      result.best_y = y;
      result.best_x = x;
    }
    result.history.push_back(result.best_y);
    return y;
  };

  Vec current(d);
  for (std::size_t j = 0; j < d; ++j) {
    current[j] = rng.uniform(bounds.lower[j], bounds.upper[j]);
  }
  double current_y = evaluate(current);

  double temp = opt.initial_temp;
  // Geometric step-size schedule synced to the evaluation budget.
  const double steps = static_cast<double>(opt.max_evals);
  const double step_decay =
      std::pow(opt.final_step / opt.initial_step, 1.0 / steps);
  double step = opt.initial_step;

  while (result.num_evals < opt.max_evals) {
    Vec proposal = current;
    for (std::size_t j = 0; j < d; ++j) {
      const double width = bounds.upper[j] - bounds.lower[j];
      proposal[j] = std::clamp(proposal[j] + rng.normal(0.0, step * width),
                               bounds.lower[j], bounds.upper[j]);
    }
    const double y = evaluate(proposal);
    const double delta = y - current_y;  // maximization: positive is better
    if (delta >= 0.0 || rng.uniform() < std::exp(delta / std::max(temp, 1e-12))) {
      current = std::move(proposal);
      current_y = y;
    }
    temp *= opt.cooling;
    step *= step_decay;
  }
  return result;
}

}  // namespace easybo::opt
