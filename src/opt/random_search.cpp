#include "opt/random_search.h"

#include "common/error.h"

namespace easybo::opt {

OptResult random_search_maximize(const Objective& fn, const Bounds& bounds,
                                 Rng& rng, std::size_t max_evals,
                                 const EvalObserver& observer) {
  bounds.validate();
  EASYBO_REQUIRE(max_evals >= 1, "random search needs a positive budget");
  const std::size_t d = bounds.dim();

  OptResult result;
  for (std::size_t e = 0; e < max_evals; ++e) {
    Vec x(d);
    for (std::size_t j = 0; j < d; ++j) {
      x[j] = rng.uniform(bounds.lower[j], bounds.upper[j]);
    }
    const double y = fn(x);
    if (observer) observer(x, y, result.num_evals);
    ++result.num_evals;
    if (result.history.empty() || y > result.best_y) {
      result.best_y = y;
      result.best_x = std::move(x);
    }
    result.history.push_back(result.best_y);
  }
  return result;
}

}  // namespace easybo::opt
