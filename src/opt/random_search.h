#pragma once
/// \file random_search.h
/// \brief Pure random search — the sanity-check floor every smarter
/// optimizer must beat.

#include "common/rng.h"
#include "opt/objective.h"

namespace easybo::opt {

/// Maximizes \p fn with \p max_evals iid uniform samples in the box.
OptResult random_search_maximize(const Objective& fn, const Bounds& bounds,
                                 Rng& rng, std::size_t max_evals,
                                 const EvalObserver& observer = nullptr);

}  // namespace easybo::opt
