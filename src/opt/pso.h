#pragma once
/// \file pso.h
/// \brief Particle swarm optimization (extension baseline, paper refs
/// [14]-[17]).

#include "common/rng.h"
#include "opt/objective.h"

namespace easybo::opt {

struct PsoOptions {
  std::size_t swarm = 40;
  std::size_t max_evals = 4000;
  double inertia = 0.729;       ///< Clerc constriction defaults
  double cognitive = 1.49445;
  double social = 1.49445;
  double max_velocity = 0.2;    ///< per-dimension cap, fraction of box width
};

/// Maximizes \p fn over the box with a global-best topology swarm.
OptResult pso_maximize(const Objective& fn, const Bounds& bounds, Rng& rng,
                       const PsoOptions& options = {},
                       const EvalObserver& observer = nullptr);

}  // namespace easybo::opt
