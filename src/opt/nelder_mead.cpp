#include "opt/nelder_mead.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace easybo::opt {

OptResult nelder_mead_maximize(const Objective& fn, const Bounds& bounds,
                               const Vec& start,
                               const NelderMeadOptions& opt) {
  bounds.validate();
  const std::size_t d = bounds.dim();
  EASYBO_REQUIRE(start.size() == d, "nelder_mead: start dim mismatch");
  EASYBO_REQUIRE(opt.max_evals >= d + 2,
                 "nelder_mead: budget too small for the initial simplex");

  OptResult result;
  auto evaluate = [&](const Vec& x) {
    const double y = fn(x);
    ++result.num_evals;
    if (result.history.empty()) {
      result.history.push_back(y);
      result.best_x = x;
      result.best_y = y;
    } else {
      const double best = std::max(result.history.back(), y);
      result.history.push_back(best);
      if (y > result.best_y) {
        result.best_y = y;
        result.best_x = x;
      }
    }
    return y;
  };
  auto clamp = [&](Vec x) {
    return linalg::clamp_to_box(std::move(x), bounds.lower, bounds.upper);
  };

  // Initial simplex: start plus a step along each coordinate.
  std::vector<Vec> simplex;
  Vec values;
  simplex.reserve(d + 1);
  simplex.push_back(clamp(start));
  for (std::size_t i = 0; i < d; ++i) {
    Vec v = simplex.front();
    const double width = bounds.upper[i] - bounds.lower[i];
    double step = opt.initial_step * width;
    // Flip direction if the step would leave the box entirely.
    if (v[i] + step > bounds.upper[i]) step = -step;
    v[i] += step;
    simplex.push_back(clamp(std::move(v)));
  }
  values.resize(d + 1);
  for (std::size_t i = 0; i <= d; ++i) values[i] = evaluate(simplex[i]);

  std::vector<std::size_t> order(d + 1);
  while (result.num_evals < opt.max_evals) {
    // Sort indices: order[0] = best (largest), order[d] = worst.
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return values[a] > values[b]; });

    // Convergence checks on the sorted simplex.
    const double f_spread = values[order[0]] - values[order[d]];
    double x_spread = 0.0;
    for (std::size_t i = 0; i < d; ++i) {
      double lo = simplex[order[0]][i], hi = lo;
      for (std::size_t v = 1; v <= d; ++v) {
        lo = std::min(lo, simplex[order[v]][i]);
        hi = std::max(hi, simplex[order[v]][i]);
      }
      x_spread = std::max(x_spread, hi - lo);
    }
    if (f_spread < opt.f_tol || x_spread < opt.x_tol) break;

    // Centroid of all but the worst vertex.
    Vec centroid(d, 0.0);
    for (std::size_t v = 0; v < d; ++v) {
      linalg::axpy(1.0 / static_cast<double>(d), simplex[order[v]], centroid);
    }
    const std::size_t worst = order[d];

    auto affine = [&](double coeff) {
      Vec x(d);
      for (std::size_t i = 0; i < d; ++i) {
        x[i] = centroid[i] + coeff * (centroid[i] - simplex[worst][i]);
      }
      return clamp(std::move(x));
    };

    const Vec reflected = affine(opt.alpha);
    const double fr = evaluate(reflected);

    if (fr > values[order[0]]) {
      // Try to expand further in the same direction.
      if (result.num_evals >= opt.max_evals) break;
      const Vec expanded = affine(opt.alpha * opt.gamma);
      const double fe = evaluate(expanded);
      if (fe > fr) {
        simplex[worst] = expanded;
        values[worst] = fe;
      } else {
        simplex[worst] = reflected;
        values[worst] = fr;
      }
      continue;
    }
    if (fr > values[order[d - 1]]) {
      simplex[worst] = reflected;
      values[worst] = fr;
      continue;
    }

    // Contraction (outside if reflection improved on worst, else inside).
    if (result.num_evals >= opt.max_evals) break;
    const bool outside = fr > values[worst];
    const Vec contracted = affine(outside ? opt.alpha * opt.rho : -opt.rho);
    const double fc = evaluate(contracted);
    if (fc > (outside ? fr : values[worst])) {
      simplex[worst] = contracted;
      values[worst] = fc;
      continue;
    }

    // Shrink toward the best vertex.
    const Vec& best_vertex = simplex[order[0]];
    for (std::size_t v = 1; v <= d; ++v) {
      const std::size_t idx = order[v];
      for (std::size_t i = 0; i < d; ++i) {
        simplex[idx][i] =
            best_vertex[i] + opt.sigma * (simplex[idx][i] - best_vertex[i]);
      }
      if (result.num_evals >= opt.max_evals) break;
      values[idx] = evaluate(simplex[idx]);
    }
  }

  return result;
}

}  // namespace easybo::opt
