#pragma once
/// \file objective.h
/// \brief Common types for the black-box optimizers in src/opt.
///
/// Everything in this library MAXIMIZES, matching the paper's formulation
/// (Eq. 1: maximize FOM). Minimize by negating the objective.

#include <functional>

#include "linalg/vec.h"

namespace easybo::opt {

using linalg::Vec;

/// Black-box objective: higher is better.
using Objective = std::function<double(const Vec&)>;

/// Rectangular search domain.
struct Bounds {
  Vec lower;
  Vec upper;

  std::size_t dim() const { return lower.size(); }

  /// Validates lower < upper element-wise; throws InvalidArgument otherwise.
  void validate() const;
};

/// Shared result shape for all src/opt optimizers.
struct OptResult {
  Vec best_x;
  double best_y = 0.0;
  std::size_t num_evals = 0;
  /// best-so-far objective after each evaluation (length == num_evals);
  /// the convergence curves in the benches are drawn from this.
  Vec history;
};

/// Optional per-evaluation observer: (x, y, eval_index). The experiment
/// harness uses it to account virtual simulation time for baselines.
using EvalObserver = std::function<void(const Vec&, double, std::size_t)>;

}  // namespace easybo::opt
