#include "opt/objective.h"

#include "common/error.h"

namespace easybo::opt {

void Bounds::validate() const {
  EASYBO_REQUIRE(!lower.empty(), "Bounds: empty domain");
  EASYBO_REQUIRE(lower.size() == upper.size(), "Bounds: size mismatch");
  for (std::size_t i = 0; i < lower.size(); ++i) {
    EASYBO_REQUIRE(lower[i] < upper[i],
                   "Bounds: requires lower < upper in every dimension");
  }
}

}  // namespace easybo::opt
