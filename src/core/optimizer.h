#pragma once
/// \file optimizer.h
/// \brief The EasyBO public optimizer facade.
///
/// Quickstart:
///   easybo::Problem problem{"my-circuit", bounds, fom, sim_time};
///   easybo::bo::BoConfig config;           // defaults = EasyBO, async, B=5
///   config.max_sims = 150;
///   easybo::Optimizer opt(problem, config);
///   auto result = opt.optimize();           // virtual-time execution
///   // result.best_x / result.best_y / result.evals / result.makespan
///
/// For genuinely parallel evaluation of an expensive objective on this
/// machine, use optimize_parallel(threads): the same BoEngine (any batch
/// mode, any acquisition) drives a real std::thread pool through the
/// sched::Executor seam and wall-clock times are measured with a
/// monotonic clock.
///
/// Set config.collect_metrics = true to get the run's observability
/// report (src/obs: per-phase timers, Cholesky refactor/extend counters,
/// per-worker busy/idle) on result.metrics — works on both backends and
/// never changes the proposal sequence.

#include "bo/engine.h"
#include "core/problem.h"

namespace easybo {

using bo::BoConfig;
using bo::BoResult;

/// Facade tying a Problem to a BoConfig.
class Optimizer {
 public:
  /// Validates both arguments eagerly.
  Optimizer(Problem problem, BoConfig config);

  const Problem& problem() const { return problem_; }
  const BoConfig& config() const { return config_; }

  /// Runs the configured algorithm on the virtual-time scheduler
  /// (deterministic; reproduces the paper's experiment regime).
  BoResult optimize() const;

  /// Runs the configured batch algorithm with real threads: `threads`
  /// workers evaluate the objective concurrently; in AsyncBatch mode a
  /// new proposal is issued the moment any worker finishes. Requires a
  /// batch mode (Sync or Async); the worker count is `threads`, not
  /// config().batch. Times in the result are real seconds since the run
  /// started. A throwing objective aborts the run and the exception
  /// propagates out of this call.
  BoResult optimize_parallel(std::size_t threads) const;

 private:
  Problem problem_;
  BoConfig config_;
};

}  // namespace easybo
