#include "core/optimizer.h"

#include "common/error.h"
#include "sched/executor.h"

namespace easybo {

Optimizer::Optimizer(Problem problem, BoConfig config)
    : problem_(std::move(problem)), config_(std::move(config)) {
  problem_.validate();
  config_.validate();
}

BoResult Optimizer::optimize() const {
  return bo::run_bo(config_, problem_.bounds, problem_.objective,
                    problem_.sim_time);
}

BoResult Optimizer::optimize_parallel(std::size_t threads) const {
  EASYBO_REQUIRE(threads >= 1, "optimize_parallel: threads must be >= 1");
  EASYBO_REQUIRE(config_.mode != bo::Mode::Sequential,
                 "optimize_parallel runs the batch algorithms; set mode = "
                 "AsyncBatch (or SyncBatch)");
  // Same engine, same algorithm; only the executor differs from
  // optimize(). The executor's worker count is the effective degree of
  // parallelism, so config().batch does not limit concurrency here.
  // The engine must outlive the executor: the executor's destructor joins
  // workers that still reference the engine's objective when an exception
  // aborts the run mid-flight.
  bo::BoEngine engine(config_, problem_.bounds, problem_.objective,
                      problem_.sim_time);
  sched::ThreadExecutor executor(threads);
  return engine.run(executor);
}

}  // namespace easybo
