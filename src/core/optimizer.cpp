#include "core/optimizer.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>

#include "acq/acq_optimizer.h"
#include "acq/acquisition.h"
#include "common/error.h"
#include "common/thread_pool.h"
#include "gp/kernel.h"
#include "gp/normalizer.h"
#include "gp/trainer.h"

namespace easybo {

Optimizer::Optimizer(Problem problem, BoConfig config)
    : problem_(std::move(problem)), config_(std::move(config)) {
  problem_.validate();
  config_.validate();
}

BoResult Optimizer::optimize() const {
  return bo::run_bo(config_, problem_.bounds, problem_.objective,
                    problem_.sim_time);
}

namespace {

/// Completion message from a worker thread to the proposer loop.
struct Completion {
  std::size_t tag;
  double y;
  double start;   // seconds since run start
  double finish;
  std::size_t slot;
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

BoResult Optimizer::optimize_parallel(std::size_t threads) const {
  EASYBO_REQUIRE(threads >= 1, "optimize_parallel: threads must be >= 1");
  EASYBO_REQUIRE(config_.mode == bo::Mode::AsyncBatch,
                 "optimize_parallel runs the asynchronous algorithm; set "
                 "mode = AsyncBatch");
  EASYBO_REQUIRE(config_.acq == bo::AcqKind::EasyBo,
                 "optimize_parallel supports the EasyBO acquisition");

  const auto& bounds = problem_.bounds;
  const std::size_t dim = bounds.dim();
  Rng rng(config_.seed);
  gp::BoxNormalizer box(bounds.lower, bounds.upper);
  gp::ZScore zscore;
  auto kernel = gp::make_kernel(config_.kernel, dim);
  gp::GpRegressor model(std::move(kernel), 1e-6);

  std::vector<linalg::Vec> obs_x;  // unit space
  linalg::Vec obs_y;
  std::size_t next_refit = config_.init_points;
  std::size_t refits = 0;

  auto update_model = [&](bool force) {
    zscore.refit(obs_y);
    model.set_data(obs_x, zscore.transform(obs_y));
    if (force || obs_x.size() >= next_refit) {
      gp::train_mle(model, rng, config_.trainer);
      ++refits;
      next_refit = std::max(
          obs_x.size() + config_.refit_every,
          static_cast<std::size_t>(static_cast<double>(obs_x.size()) * 1.5));
    } else {
      model.fit();
    }
  };

  auto propose = [&](const std::vector<linalg::Vec>& pending) {
    const std::size_t inc = linalg::argmax(obs_y);
    const std::vector<linalg::Vec> anchors = {obs_x[inc]};
    const double w = acq::sample_easybo_weight(rng, config_.lambda);
    std::unique_ptr<gp::GpRegressor> hallucinated;
    std::unique_ptr<acq::AcquisitionFn> fn;
    if (config_.penalize && !pending.empty()) {
      hallucinated =
          std::make_unique<gp::GpRegressor>(model.with_hallucinated(pending));
      fn = std::make_unique<acq::WeightedUcb>(&model, hallucinated.get(), w);
    } else {
      fn = std::make_unique<acq::WeightedUcb>(&model, &model, w);
    }
    return acq::maximize_acquisition(*fn, dim, rng, anchors, config_.acq_opt)
        .best_x;
  };

  // --- Real-threads plumbing. ---
  const auto t0 = std::chrono::steady_clock::now();
  ThreadPool pool(threads);
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Completion> done;
  std::vector<std::size_t> free_slots(threads);
  for (std::size_t i = 0; i < threads; ++i) free_slots[i] = i;

  std::vector<linalg::Vec> prop_unit;  // by tag
  BoResult result;

  auto submit = [&](linalg::Vec unit_x) {
    const std::size_t tag = prop_unit.size();
    prop_unit.push_back(unit_x);
    const linalg::Vec x_design = box.from_unit(prop_unit.back());
    pool.submit([&, tag, x_design] {
      std::size_t slot;
      {
        std::lock_guard lock(mutex);
        slot = free_slots.back();
        free_slots.pop_back();
      }
      const double start = seconds_since(t0);
      const double y = problem_.objective(x_design);
      const double finish = seconds_since(t0);
      {
        std::lock_guard lock(mutex);
        free_slots.push_back(slot);
        done.push_back({tag, y, start, finish, slot});
      }
      cv.notify_one();
    });
  };
  auto wait_completion = [&] {
    std::unique_lock lock(mutex);
    cv.wait(lock, [&] { return !done.empty(); });
    const Completion c = done.front();
    done.pop_front();
    return c;
  };
  auto absorb = [&](const Completion& c, bool is_init) {
    obs_x.push_back(prop_unit[c.tag]);
    obs_y.push_back(c.y);
    bo::EvalRecord rec;
    rec.x = box.from_unit(prop_unit[c.tag]);
    rec.y = c.y;
    rec.start = c.start;
    rec.finish = c.finish;
    rec.worker = c.slot;
    rec.is_init = is_init;
    result.evals.push_back(std::move(rec));
    result.total_sim_time += c.finish - c.start;
  };

  // Initial design, streamed through the pool.
  std::size_t issued = 0;
  std::size_t in_flight = 0;
  while (obs_x.size() < config_.init_points) {
    while (in_flight < threads && issued < config_.init_points) {
      submit(rng.uniform_vector(dim));
      ++issued;
      ++in_flight;
    }
    absorb(wait_completion(), /*is_init=*/true);
    --in_flight;
  }
  update_model(/*force=*/true);

  // Asynchronous main loop (Algorithm 1) on real workers.
  std::vector<linalg::Vec> pending;
  while (in_flight < threads && issued < config_.max_sims) {
    auto x = propose(pending);
    pending.push_back(x);
    submit(std::move(x));
    ++issued;
    ++in_flight;
  }
  while (in_flight > 0) {
    const Completion c = wait_completion();
    --in_flight;
    const auto it = std::find(pending.begin(), pending.end(),
                              prop_unit[c.tag]);
    if (it != pending.end()) pending.erase(it);
    absorb(c, /*is_init=*/false);
    update_model(false);
    if (issued < config_.max_sims) {
      auto x = propose(pending);
      pending.push_back(x);
      submit(std::move(x));
      ++issued;
      ++in_flight;
    }
  }

  result.makespan = seconds_since(t0);
  result.hyper_refits = refits;
  const std::size_t inc = linalg::argmax(obs_y);
  result.best_x = box.from_unit(obs_x[inc]);
  result.best_y = obs_y[inc];
  return result;
}

}  // namespace easybo
