#pragma once
/// \file problem.h
/// \brief Public problem description for the EasyBO optimizer facade.

#include <functional>
#include <string>

#include "opt/objective.h"

namespace easybo {

/// A black-box maximization problem over a rectangular design space.
///
/// This is how a user hands their circuit (or any expensive function) to
/// the optimizer: a FOM callable (paper Eq. 1 — fold your metric weights in
/// yourself, or use make_weighted_fom) and bounds. The optional sim_time
/// hook tells the virtual-time scheduler how long each evaluation takes;
/// leave it null for real-threads execution or pure sample-efficiency
/// studies (all evaluations then cost 1 virtual second).
struct Problem {
  std::string name;
  opt::Bounds bounds;
  opt::Objective objective;  ///< maximize
  std::function<double(const linalg::Vec&)> sim_time;  ///< optional

  /// Throws InvalidArgument when bounds/objective are unusable.
  void validate() const;
};

/// Builds a weighted-sum FOM (paper Eq. 1): sum_i alpha_i * f_i(x).
/// Metrics and weights must have equal, non-zero size.
opt::Objective make_weighted_fom(std::vector<opt::Objective> metrics,
                                 std::vector<double> weights);

}  // namespace easybo
