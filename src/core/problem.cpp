#include "core/problem.h"

#include <memory>

#include "common/error.h"

namespace easybo {

void Problem::validate() const {
  bounds.validate();
  EASYBO_REQUIRE(static_cast<bool>(objective), "Problem: null objective");
}

opt::Objective make_weighted_fom(std::vector<opt::Objective> metrics,
                                 std::vector<double> weights) {
  EASYBO_REQUIRE(!metrics.empty(), "weighted FOM needs at least one metric");
  EASYBO_REQUIRE(metrics.size() == weights.size(),
                 "weighted FOM: one weight per metric");
  for (const auto& m : metrics) {
    EASYBO_REQUIRE(static_cast<bool>(m), "weighted FOM: null metric");
  }
  // Shared state so the returned callable is cheaply copyable.
  auto shared = std::make_shared<
      std::pair<std::vector<opt::Objective>, std::vector<double>>>(
      std::move(metrics), std::move(weights));
  return [shared](const linalg::Vec& x) {
    double fom = 0.0;
    for (std::size_t i = 0; i < shared->first.size(); ++i) {
      fom += shared->second[i] * shared->first[i](x);
    }
    return fom;
  };
}

}  // namespace easybo
