#pragma once
/// \file easybo.h
/// \brief Umbrella public header for the EasyBO library.
///
/// Pulls in the full public API:
///   - easybo::Problem / easybo::Optimizer / easybo::make_weighted_fom
///   - easybo::bo::BoConfig (algorithm selection) and bo::BoResult
///   - the circuit benchmarks of the paper (easybo::circuit::*)
///   - the classical baselines (easybo::opt::*)
///
/// See README.md for a guided tour and examples/ for runnable programs.

#include "bo/config.h"      // IWYU pragma: export
#include "bo/engine.h"      // IWYU pragma: export
#include "bo/result.h"      // IWYU pragma: export
#include "circuit/benchmark.h"  // IWYU pragma: export
#include "circuit/classe.h"     // IWYU pragma: export
#include "circuit/opamp.h"      // IWYU pragma: export
#include "circuit/testfunc.h"   // IWYU pragma: export
#include "core/optimizer.h"     // IWYU pragma: export
#include "core/problem.h"       // IWYU pragma: export
#include "opt/de.h"             // IWYU pragma: export
#include "opt/pso.h"            // IWYU pragma: export
#include "opt/random_search.h"  // IWYU pragma: export
#include "opt/sa.h"             // IWYU pragma: export
