#include "spice/mna.h"

#include <cmath>
#include <numbers>

#include "common/error.h"
#include "linalg/lu.h"

namespace easybo::spice {

namespace {

/// Dense complex MNA assembler. Unknown ordering: non-ground node voltages
/// (node k maps to row k-1), then group-2 branch currents.
class Assembler {
 public:
  Assembler(const Circuit& c, double omega)
      : num_nodes_(c.num_nodes()),
        n_(c.num_nodes() - 1 + c.num_branch_unknowns()),
        a_(n_ * n_, Complex(0.0, 0.0)),
        rhs_(n_, Complex(0.0, 0.0)) {
    const Complex jw(0.0, omega);

    for (const auto& p : c.passives()) {
      Complex y;
      switch (p.kind) {
        case PassiveKind::Resistor:
          y = Complex(1.0 / p.value, 0.0);
          break;
        case PassiveKind::Capacitor:
          y = jw * p.value;
          break;
        case PassiveKind::Inductor:
          EASYBO_REQUIRE(omega > 0.0,
                         "inductor admittance stamp needs freq > 0");
          y = 1.0 / (jw * p.value);
          break;
      }
      stamp_admittance(p.a, p.b, y);
    }

    for (const auto& g : c.vccs()) {
      stamp_vccs(g.out_p, g.out_n, g.ctrl_p, g.ctrl_n, g.gm);
    }

    std::size_t branch = num_nodes_ - 1;  // first group-2 row
    for (const auto& v : c.voltage_sources()) {
      stamp_branch_kcl(v.p, v.n, branch);
      stamp_branch_voltage(branch, v.p, v.n);
      rhs_[branch] = v.value;
      ++branch;
    }
    for (const auto& e : c.vcvs()) {
      stamp_branch_kcl(e.out_p, e.out_n, branch);
      stamp_branch_voltage(branch, e.out_p, e.out_n);
      // v(out) - gain * v(ctrl) = 0
      if (e.ctrl_p != kGround) {
        add(branch, node_row(e.ctrl_p), Complex(-e.gain, 0.0));
      }
      if (e.ctrl_n != kGround) {
        add(branch, node_row(e.ctrl_n), Complex(e.gain, 0.0));
      }
      ++branch;
    }

    for (const auto& s : c.current_sources()) {
      if (s.p != kGround) rhs_[node_row(s.p)] += s.value;
      if (s.n != kGround) rhs_[node_row(s.n)] -= s.value;
    }
  }

  AcSolution solve() && {
    linalg::LuComplex lu(std::move(a_), n_);
    const auto x = lu.solve(rhs_);
    AcSolution sol;
    sol.node_voltage.assign(num_nodes_, Complex(0.0, 0.0));
    for (NodeId k = 1; k < num_nodes_; ++k) sol.node_voltage[k] = x[k - 1];
    sol.branch_current.assign(x.begin() + static_cast<std::ptrdiff_t>(
                                              num_nodes_ - 1),
                              x.end());
    return sol;
  }

 private:
  // Row index of a non-ground node. Must not be called with kGround.
  std::size_t node_row(NodeId n) const { return n - 1; }

  void add(std::size_t r, std::size_t c, Complex v) {
    a_[r * n_ + c] += v;
  }

  void stamp_admittance(NodeId a, NodeId b, Complex y) {
    if (a != kGround) add(node_row(a), node_row(a), y);
    if (b != kGround) add(node_row(b), node_row(b), y);
    if (a != kGround && b != kGround) {
      add(node_row(a), node_row(b), -y);
      add(node_row(b), node_row(a), -y);
    }
  }

  void stamp_vccs(NodeId op, NodeId on, NodeId cp, NodeId cn, double gm) {
    const Complex g(gm, 0.0);
    if (op != kGround && cp != kGround) add(node_row(op), node_row(cp), g);
    if (op != kGround && cn != kGround) add(node_row(op), node_row(cn), -g);
    if (on != kGround && cp != kGround) add(node_row(on), node_row(cp), -g);
    if (on != kGround && cn != kGround) add(node_row(on), node_row(cn), g);
  }

  // KCL contribution of a branch current flowing p -> n through the element.
  void stamp_branch_kcl(NodeId p, NodeId n, std::size_t branch) {
    if (p != kGround) add(node_row(p), branch, Complex(1.0, 0.0));
    if (n != kGround) add(node_row(n), branch, Complex(-1.0, 0.0));
  }

  // Branch voltage equation row: +v(p) - v(n) [+ controlled terms] = rhs.
  void stamp_branch_voltage(std::size_t branch, NodeId p, NodeId n) {
    if (p != kGround) add(branch, node_row(p), Complex(1.0, 0.0));
    if (n != kGround) add(branch, node_row(n), Complex(-1.0, 0.0));
  }

  std::size_t num_nodes_;
  std::size_t n_;
  std::vector<Complex> a_;
  std::vector<Complex> rhs_;
};

}  // namespace

AcSolution solve_ac(const Circuit& circuit, double freq_hz) {
  EASYBO_REQUIRE(freq_hz >= 0.0, "frequency must be non-negative");
  EASYBO_REQUIRE(circuit.num_nodes() > 1, "circuit has no non-ground nodes");
  const double omega = 2.0 * std::numbers::pi * freq_hz;
  return Assembler(circuit, omega).solve();
}

double AcPoint::magnitude_db() const {
  return 20.0 * std::log10(std::max(std::abs(value), 1e-300));
}

double AcPoint::phase_deg() const {
  return std::arg(value) * 180.0 / std::numbers::pi;
}

std::vector<double> log_frequency_grid(double f_start, double f_stop,
                                       std::size_t points_per_decade) {
  EASYBO_REQUIRE(f_start > 0.0 && f_stop > f_start,
                 "log grid requires 0 < f_start < f_stop");
  EASYBO_REQUIRE(points_per_decade >= 1, "need at least one point per decade");
  const double decades = std::log10(f_stop / f_start);
  const auto n = static_cast<std::size_t>(
      std::ceil(decades * static_cast<double>(points_per_decade))) + 1;
  std::vector<double> freqs(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double frac = static_cast<double>(i) / static_cast<double>(n - 1);
    freqs[i] = f_start * std::pow(10.0, frac * decades);
  }
  freqs.back() = f_stop;
  return freqs;
}

AcSweep sweep_ac(const Circuit& circuit, const std::vector<double>& freqs,
                 NodeId probe_p, NodeId probe_n) {
  AcSweep sweep;
  sweep.points.reserve(freqs.size());
  for (double f : freqs) {
    const AcSolution sol = solve_ac(circuit, f);
    sweep.points.push_back({f, sol.v(probe_p, probe_n)});
  }
  return sweep;
}

}  // namespace easybo::spice
