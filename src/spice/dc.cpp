#include "spice/dc.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "linalg/lu.h"

namespace easybo::spice {

DcCircuit::DcCircuit() {
  names_["0"] = kGround;
  names_["gnd"] = kGround;
}

NodeId DcCircuit::node(const std::string& name) {
  auto [it, inserted] = names_.try_emplace(name, num_nodes_);
  if (inserted) ++num_nodes_;
  return it->second;
}

void DcCircuit::add_resistor(NodeId a, NodeId b, double ohms) {
  EASYBO_REQUIRE(ohms > 0.0, "DC resistor must be positive");
  EASYBO_REQUIRE(a < num_nodes_ && b < num_nodes_, "unknown node");
  resistors_.push_back({a, b, ohms});
}

void DcCircuit::add_vsource(NodeId p, NodeId n, double volts) {
  EASYBO_REQUIRE(p < num_nodes_ && n < num_nodes_, "unknown node");
  vsources_.push_back({p, n, volts});
}

void DcCircuit::add_isource(NodeId p, NodeId n, double amps) {
  EASYBO_REQUIRE(p < num_nodes_ && n < num_nodes_, "unknown node");
  isources_.push_back({p, n, amps});
}

void DcCircuit::add_mosfet(circuit::MosType type, NodeId d, NodeId g,
                           NodeId s, double w_um, double l_um) {
  EASYBO_REQUIRE(d < num_nodes_ && g < num_nodes_ && s < num_nodes_,
                 "unknown node");
  EASYBO_REQUIRE(w_um > 0.0 && l_um > 0.0, "MOSFET W, L must be positive");
  mosfets_.push_back({type, d, g, s, w_um, l_um});
}

/// Friend accessor so the solver can read the private element lists
/// without widening the public surface of DcCircuit.
struct DcSolverAccess {
  static const auto& resistors(const DcCircuit& c) { return c.resistors_; }
  static const auto& vsources(const DcCircuit& c) { return c.vsources_; }
  static const auto& isources(const DcCircuit& c) { return c.isources_; }
};

namespace {

/// Drain current into the drain terminal plus its partial derivatives with
/// respect to the three PHYSICAL terminal voltages. Handles polarity and
/// the reverse (vds < 0) region by terminal exchange.
struct MosEval {
  double id = 0.0;   // current into the drain node
  double d_vg = 0.0;
  double d_vd = 0.0;
  double d_vs = 0.0;
};

MosEval eval_mosfet(const DcMosfet& m, double vg, double vd, double vs,
                    int depth = 0) {
  const auto proc = (m.type == circuit::MosType::Nmos)
                        ? circuit::MosProcess::nmos_180()
                        : circuit::MosProcess::pmos_180();
  const double sign = (m.type == circuit::MosType::Nmos) ? 1.0 : -1.0;
  const double vgs = sign * (vg - vs);
  const double vds = sign * (vd - vs);

  if (vds < 0.0 && depth == 0) {
    // Symmetric device: exchange drain and source and negate the current.
    const MosEval swapped = eval_mosfet(m, vg, vs, vd, 1);
    MosEval out;
    out.id = -swapped.id;
    out.d_vg = -swapped.d_vg;
    out.d_vd = -swapped.d_vs;  // original drain is the swapped source
    out.d_vs = -swapped.d_vd;
    return out;
  }

  const double beta = proc.kp * (m.w_um / m.l_um);
  const double lambda = proc.lambda0 / m.l_um;
  const double vov = vgs - proc.vth;

  // Derivatives with respect to the EFFECTIVE (polarity-folded) vgs/vds.
  double id_eff = 0.0, gm = 0.0, gds = 0.0;
  if (vov <= 0.0) {
    // Cut off; gmin (added globally) keeps the Jacobian regular.
  } else if (vds < vov) {
    id_eff = beta * (vov * vds - 0.5 * vds * vds);
    gm = beta * vds;
    gds = beta * (vov - vds);
  } else {
    id_eff = 0.5 * beta * vov * vov * (1.0 + lambda * vds);
    gm = beta * vov * (1.0 + lambda * vds);
    gds = 0.5 * beta * vov * vov * lambda;
  }

  // Chain rule back to physical voltages:
  //   id_phys = sign * id_eff(vgs, vds), vgs = sign (vg - vs), ...
  MosEval out;
  out.id = sign * id_eff;
  out.d_vg = gm;                 // sign * gm * sign
  out.d_vd = gds;
  out.d_vs = -(gm + gds);
  return out;
}

}  // namespace

DcSolution solve_dc(const DcCircuit& circuit, const DcOptions& opt) {
  EASYBO_REQUIRE(circuit.num_nodes() > 1, "DC circuit has no nodes");
  EASYBO_REQUIRE(opt.max_iters >= 1 && opt.tol > 0.0 && opt.damping > 0.0,
                 "invalid DC options");
  const std::size_t nodes = circuit.num_nodes() - 1;  // unknown voltages
  const std::size_t branches = DcSolverAccess::vsources(circuit).size();
  const std::size_t n = nodes + branches;

  auto row = [](NodeId k) { return static_cast<std::size_t>(k - 1); };

  std::vector<double> v(circuit.num_nodes(), 0.0);  // by NodeId
  DcSolution sol;

  for (std::size_t iter = 0; iter < opt.max_iters; ++iter) {
    std::vector<double> a(n * n, 0.0);
    std::vector<double> rhs(n, 0.0);
    auto add = [&](std::size_t r, std::size_t c, double val) {
      a[r * n + c] += val;
    };

    // gmin to ground on every node.
    for (std::size_t k = 0; k < nodes; ++k) add(k, k, opt.gmin);

    for (const auto& r : DcSolverAccess::resistors(circuit)) {
      const double g = 1.0 / r.ohms;
      if (r.a != kGround) add(row(r.a), row(r.a), g);
      if (r.b != kGround) add(row(r.b), row(r.b), g);
      if (r.a != kGround && r.b != kGround) {
        add(row(r.a), row(r.b), -g);
        add(row(r.b), row(r.a), -g);
      }
    }
    for (const auto& s : DcSolverAccess::isources(circuit)) {
      if (s.p != kGround) rhs[row(s.p)] += s.amps;
      if (s.n != kGround) rhs[row(s.n)] -= s.amps;
    }
    std::size_t branch = nodes;
    for (const auto& src : DcSolverAccess::vsources(circuit)) {
      if (src.p != kGround) {
        add(row(src.p), branch, 1.0);
        add(branch, row(src.p), 1.0);
      }
      if (src.n != kGround) {
        add(row(src.n), branch, -1.0);
        add(branch, row(src.n), -1.0);
      }
      rhs[branch] = src.volts;
      ++branch;
    }

    // MOSFET companion models at the current voltage estimate.
    for (const auto& m : circuit.mosfets()) {
      const MosEval e =
          eval_mosfet(m, v[m.gate], v[m.drain], v[m.source]);
      const double ieq = e.id - e.d_vg * v[m.gate] - e.d_vd * v[m.drain] -
                         e.d_vs * v[m.source];
      if (m.drain != kGround) {
        if (m.gate != kGround) add(row(m.drain), row(m.gate), e.d_vg);
        add(row(m.drain), row(m.drain), e.d_vd);
        if (m.source != kGround) add(row(m.drain), row(m.source), e.d_vs);
        rhs[row(m.drain)] -= ieq;
      }
      if (m.source != kGround) {
        if (m.gate != kGround) add(row(m.source), row(m.gate), -e.d_vg);
        if (m.drain != kGround) add(row(m.source), row(m.drain), -e.d_vd);
        add(row(m.source), row(m.source), -e.d_vs);
        rhs[row(m.source)] += ieq;
      }
    }

    linalg::LuReal lu(std::move(a), n);
    const auto x = lu.solve(rhs);

    // Damped update; convergence on the undamped step size.
    double max_step = 0.0;
    for (std::size_t k = 0; k < nodes; ++k) {
      const double step = x[k] - v[k + 1];
      max_step = std::max(max_step, std::abs(step));
      v[k + 1] += std::clamp(step, -opt.damping, opt.damping);
    }
    ++sol.iterations;
    if (max_step < opt.tol) {
      sol.converged = true;
      break;
    }
  }

  sol.node_voltage = v;
  sol.drain_current.reserve(circuit.mosfets().size());
  for (const auto& m : circuit.mosfets()) {
    sol.drain_current.push_back(
        eval_mosfet(m, v[m.gate], v[m.drain], v[m.source]).id);
  }
  return sol;
}

}  // namespace easybo::spice
