#pragma once
/// \file netlist.h
/// \brief Small-signal netlist description for the MNA AC simulator.
///
/// This is the substrate that stands in for HSPICE in the reproduction: a
/// linear(ized) circuit made of resistors, capacitors, inductors, controlled
/// sources and independent sources, analyzed in the frequency domain via
/// modified nodal analysis (see mna.h). It is deliberately small-signal
/// only — the op-amp benchmark linearizes its transistors around a DC
/// operating point computed analytically in src/circuit.

#include <complex>
#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

namespace easybo::spice {

/// Node identifier; kGround (node 0) is the reference node.
using NodeId = std::size_t;
inline constexpr NodeId kGround = 0;

/// Two-terminal passive element kinds.
enum class PassiveKind { Resistor, Capacitor, Inductor };

struct Passive {
  PassiveKind kind;
  NodeId a;
  NodeId b;
  double value;  ///< ohms / farads / henries
};

/// Voltage-controlled current source: i(out_p -> out_n) = gm * v(ctrl_p,
/// ctrl_n). This is the element that carries transistor transconductance.
struct Vccs {
  NodeId out_p;
  NodeId out_n;
  NodeId ctrl_p;
  NodeId ctrl_n;
  double gm;  ///< siemens
};

/// Voltage-controlled voltage source (ideal gain block), group-2 element.
struct Vcvs {
  NodeId out_p;
  NodeId out_n;
  NodeId ctrl_p;
  NodeId ctrl_n;
  double gain;
};

/// Independent AC current source injecting `magnitude` amps into node p
/// (and drawing from node n).
struct CurrentSource {
  NodeId p;
  NodeId n;
  std::complex<double> value;
};

/// Independent AC voltage source (group-2 element).
struct VoltageSource {
  NodeId p;
  NodeId n;
  std::complex<double> value;
};

/// A linear small-signal circuit under construction.
///
/// Typical use:
///   Circuit c;
///   auto in  = c.node("in");
///   auto out = c.node("out");
///   c.add_resistor(out, kGround, 10e3);
///   c.add_vccs(out, kGround, in, kGround, 1e-3);
///   c.add_voltage_source(in, kGround, 1.0);
///   AcSweep sweep = analyze_ac(c, frequencies, out);
class Circuit {
 public:
  Circuit();

  /// Returns the id for a named node, creating it on first use.
  /// The name "0" (and "gnd") maps to the ground node.
  NodeId node(const std::string& name);

  /// Creates a fresh anonymous internal node.
  NodeId internal_node();

  /// Number of nodes including ground.
  std::size_t num_nodes() const { return num_nodes_; }

  void add_resistor(NodeId a, NodeId b, double ohms);
  void add_capacitor(NodeId a, NodeId b, double farads);
  void add_inductor(NodeId a, NodeId b, double henries);
  void add_vccs(NodeId out_p, NodeId out_n, NodeId ctrl_p, NodeId ctrl_n,
                double gm);
  void add_vcvs(NodeId out_p, NodeId out_n, NodeId ctrl_p, NodeId ctrl_n,
                double gain);
  void add_current_source(NodeId p, NodeId n, std::complex<double> amps);
  void add_voltage_source(NodeId p, NodeId n, std::complex<double> volts);

  const std::vector<Passive>& passives() const { return passives_; }
  const std::vector<Vccs>& vccs() const { return vccs_; }
  const std::vector<Vcvs>& vcvs() const { return vcvs_; }
  const std::vector<CurrentSource>& current_sources() const {
    return isources_;
  }
  const std::vector<VoltageSource>& voltage_sources() const {
    return vsources_;
  }

  /// Number of group-2 (branch-current) unknowns: V sources + VCVS.
  std::size_t num_branch_unknowns() const {
    return vsources_.size() + vcvs_.size();
  }

 private:
  NodeId check_node(NodeId n) const;

  std::size_t num_nodes_ = 1;  // ground pre-exists
  std::unordered_map<std::string, NodeId> names_;
  std::vector<Passive> passives_;
  std::vector<Vccs> vccs_;
  std::vector<Vcvs> vcvs_;
  std::vector<CurrentSource> isources_;
  std::vector<VoltageSource> vsources_;
};

}  // namespace easybo::spice
