#pragma once
/// \file dc.h
/// \brief Nonlinear DC operating-point analysis (Newton-Raphson MNA).
///
/// Completes the mini-SPICE substrate: the AC machinery (mna.h) analyzes a
/// circuit LINEARIZED around a bias point; this module computes that bias
/// point for circuits containing square-law MOSFETs, resistors and DC
/// sources. Each Newton iteration stamps the device companion models
/// (conductances + equivalent current sources from the first-order Taylor
/// expansion at the present voltage estimate) into a real MNA matrix and
/// solves with LU; voltage updates are damped for robustness from a cold
/// start. A gmin conductance to ground on every node keeps the Jacobian
/// nonsingular when devices are cut off.
///
/// Device model (same square law as circuit/mosfet.h):
///   cutoff   vgs <= vth            id = 0
///   triode   vds <  vgs - vth      id = kp (W/L) ((vgs-vth) vds - vds^2/2)
///   sat.     vds >= vgs - vth      id = kp/2 (W/L) (vgs-vth)^2 (1 + lam vds)
/// (NMOS shown; PMOS mirrors all polarities.)

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "circuit/mosfet.h"
#include "spice/netlist.h"

namespace easybo::spice {

/// A MOSFET instance in the DC netlist.
struct DcMosfet {
  circuit::MosType type;
  NodeId drain;
  NodeId gate;
  NodeId source;
  double w_um;
  double l_um;
};

/// A DC circuit under construction. Node ids are shared with the naming
/// convention of Circuit (0 = ground), but this container is independent
/// so DC and AC netlists can be built separately from one topology.
class DcCircuit {
 public:
  DcCircuit();

  NodeId node(const std::string& name);
  std::size_t num_nodes() const { return num_nodes_; }

  void add_resistor(NodeId a, NodeId b, double ohms);
  void add_vsource(NodeId p, NodeId n, double volts);
  void add_isource(NodeId p, NodeId n, double amps);  ///< injects into p
  void add_mosfet(circuit::MosType type, NodeId d, NodeId g, NodeId s,
                  double w_um, double l_um);

  const std::vector<DcMosfet>& mosfets() const { return mosfets_; }

 private:
  friend struct DcSolverAccess;
  std::size_t num_nodes_ = 1;
  std::unordered_map<std::string, NodeId> names_;
  struct R { NodeId a, b; double ohms; };
  struct V { NodeId p, n; double volts; };
  struct I { NodeId p, n; double amps; };
  std::vector<R> resistors_;
  std::vector<V> vsources_;
  std::vector<I> isources_;
  std::vector<DcMosfet> mosfets_;
};

/// Solver options.
struct DcOptions {
  std::size_t max_iters = 200;
  double tol = 1e-9;        ///< convergence on max |delta v|
  double damping = 0.5;     ///< max voltage change per Newton step [V]
  double gmin = 1e-9;       ///< conductance to ground on every node [S]
};

/// Solution: node voltages and per-MOSFET drain currents.
struct DcSolution {
  std::vector<double> node_voltage;   ///< indexed by NodeId, [kGround] = 0
  std::vector<double> drain_current;  ///< per mosfet, positive into drain
                                      ///< (NMOS) / out of drain (PMOS mag)
  std::size_t iterations = 0;
  bool converged = false;

  double v(NodeId n) const { return node_voltage[n]; }
};

/// Runs Newton-Raphson to the DC operating point. Throws NumericalError
/// when the Jacobian becomes singular; returns converged=false when the
/// iteration limit is reached (caller decides whether to accept).
DcSolution solve_dc(const DcCircuit& circuit, const DcOptions& options = {});

}  // namespace easybo::spice
