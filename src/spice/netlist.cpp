#include "spice/netlist.h"

#include "common/error.h"

namespace easybo::spice {

Circuit::Circuit() {
  names_["0"] = kGround;
  names_["gnd"] = kGround;
}

NodeId Circuit::node(const std::string& name) {
  auto [it, inserted] = names_.try_emplace(name, num_nodes_);
  if (inserted) ++num_nodes_;
  return it->second;
}

NodeId Circuit::internal_node() { return num_nodes_++; }

NodeId Circuit::check_node(NodeId n) const {
  EASYBO_REQUIRE(n < num_nodes_, "element references unknown node");
  return n;
}

void Circuit::add_resistor(NodeId a, NodeId b, double ohms) {
  EASYBO_REQUIRE(ohms > 0.0, "resistance must be positive");
  passives_.push_back({PassiveKind::Resistor, check_node(a), check_node(b),
                       ohms});
}

void Circuit::add_capacitor(NodeId a, NodeId b, double farads) {
  EASYBO_REQUIRE(farads >= 0.0, "capacitance must be non-negative");
  passives_.push_back({PassiveKind::Capacitor, check_node(a), check_node(b),
                       farads});
}

void Circuit::add_inductor(NodeId a, NodeId b, double henries) {
  EASYBO_REQUIRE(henries > 0.0, "inductance must be positive");
  passives_.push_back({PassiveKind::Inductor, check_node(a), check_node(b),
                       henries});
}

void Circuit::add_vccs(NodeId out_p, NodeId out_n, NodeId ctrl_p,
                       NodeId ctrl_n, double gm) {
  vccs_.push_back({check_node(out_p), check_node(out_n), check_node(ctrl_p),
                   check_node(ctrl_n), gm});
}

void Circuit::add_vcvs(NodeId out_p, NodeId out_n, NodeId ctrl_p,
                       NodeId ctrl_n, double gain) {
  vcvs_.push_back({check_node(out_p), check_node(out_n), check_node(ctrl_p),
                   check_node(ctrl_n), gain});
}

void Circuit::add_current_source(NodeId p, NodeId n,
                                 std::complex<double> amps) {
  isources_.push_back({check_node(p), check_node(n), amps});
}

void Circuit::add_voltage_source(NodeId p, NodeId n,
                                 std::complex<double> volts) {
  vsources_.push_back({check_node(p), check_node(n), volts});
}

}  // namespace easybo::spice
