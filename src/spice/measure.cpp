#include "spice/measure.h"

#include <cmath>

#include "common/error.h"

namespace easybo::spice {

double dc_gain_db(const AcSweep& sweep) {
  EASYBO_REQUIRE(!sweep.empty(), "dc_gain_db of empty sweep");
  return sweep.points.front().magnitude_db();
}

std::vector<double> unwrapped_phase_deg(const AcSweep& sweep) {
  std::vector<double> phase(sweep.size());
  double offset = 0.0;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const double raw = sweep.points[i].phase_deg();
    if (i > 0) {
      const double prev = phase[i - 1];
      double candidate = raw + offset;
      // Remove +-360 jumps relative to the previous unwrapped value.
      while (candidate - prev > 180.0) {
        candidate -= 360.0;
        offset -= 360.0;
      }
      while (candidate - prev < -180.0) {
        candidate += 360.0;
        offset += 360.0;
      }
      phase[i] = candidate;
    } else {
      phase[i] = raw;
    }
  }
  return phase;
}

std::optional<double> unity_gain_frequency(const AcSweep& sweep) {
  EASYBO_REQUIRE(sweep.size() >= 2, "UGF needs at least two sweep points");
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    const double m0 = sweep.points[i - 1].magnitude_db();
    const double m1 = sweep.points[i].magnitude_db();
    if (m0 >= 0.0 && m1 < 0.0) {
      // Interpolate the 0 dB crossing in log-frequency.
      const double f0 = sweep.points[i - 1].freq_hz;
      const double f1 = sweep.points[i].freq_hz;
      const double t = m0 / (m0 - m1);  // fraction from point i-1 to i
      return f0 * std::pow(f1 / f0, t);
    }
  }
  return std::nullopt;
}

OpenLoopMetrics measure_open_loop(const AcSweep& sweep) {
  EASYBO_REQUIRE(sweep.size() >= 2, "measure_open_loop needs >= 2 points");
  OpenLoopMetrics m;
  m.dc_gain_db = dc_gain_db(sweep);

  const auto ugf = unity_gain_frequency(sweep);
  if (!ugf) return m;  // has_ugf stays false, UGF/PM stay 0

  m.has_ugf = true;
  m.ugf_hz = *ugf;

  // Phase at the UGF, linearly interpolated on the unwrapped series in
  // log-frequency, measured relative to the low-frequency phase so that
  // inverting amplifiers (DC phase = 180 deg) are handled uniformly.
  const auto phase = unwrapped_phase_deg(sweep);
  double phase_at_ugf = phase.back();
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    const double f0 = sweep.points[i - 1].freq_hz;
    const double f1 = sweep.points[i].freq_hz;
    if (*ugf >= f0 && *ugf <= f1) {
      const double t = std::log(*ugf / f0) / std::log(f1 / f0);
      phase_at_ugf = phase[i - 1] + t * (phase[i] - phase[i - 1]);
      break;
    }
  }
  // Reference phase: the nearest multiple of 180 deg to the low-frequency
  // phase. This cancels the inversion of inverting amplifiers without
  // also subtracting genuine early roll-off (the first sweep point need
  // not be far below the dominant pole).
  const double ref = 180.0 * std::round(phase.front() / 180.0);
  const double phase_drop = phase_at_ugf - ref;
  m.phase_margin_deg = 180.0 + phase_drop;
  return m;
}

}  // namespace easybo::spice
