#pragma once
/// \file measure.h
/// \brief Transfer-function measurements: gain, UGF, phase margin.
///
/// These mirror the .measure statements an HSPICE deck would use for the
/// op-amp benchmark: low-frequency gain in dB, unity-gain frequency (0 dB
/// crossing, log-interpolated), and phase margin computed from the
/// unwrapped phase *relative to the low-frequency phase* — which makes the
/// measurement independent of whether the amplifier is inverting.

#include <optional>

#include "spice/mna.h"

namespace easybo::spice {

/// Measurement bundle for one AC sweep.
struct OpenLoopMetrics {
  double dc_gain_db = 0.0;   ///< |H| at the lowest swept frequency, in dB
  double ugf_hz = 0.0;       ///< unity-gain frequency; 0 when |H| never
                             ///< crosses 1 inside the sweep
  double phase_margin_deg = 0.0;  ///< 180 + (phase(UGF) - phase(DC)),
                                  ///< unwrapped; 0 when no UGF exists
  bool has_ugf = false;
};

/// Low-frequency gain in dB (value at the first sweep point).
double dc_gain_db(const AcSweep& sweep);

/// Unwrapped phase series in degrees (no +-360 jumps between points).
std::vector<double> unwrapped_phase_deg(const AcSweep& sweep);

/// Unity-gain frequency via log-magnitude interpolation between the
/// bracketing sweep points; std::nullopt when the magnitude never crosses
/// 1 from above within the sweep.
std::optional<double> unity_gain_frequency(const AcSweep& sweep);

/// Full measurement bundle. Requires a sweep with at least two points.
OpenLoopMetrics measure_open_loop(const AcSweep& sweep);

}  // namespace easybo::spice
