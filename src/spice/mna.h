#pragma once
/// \file mna.h
/// \brief Modified nodal analysis: single-frequency solve and AC sweeps.
///
/// For a circuit with N-1 non-ground nodes and M group-2 branches (voltage
/// sources and VCVS), the MNA system at angular frequency w is the
/// (N-1+M) x (N-1+M) complex linear system
///     [ G + jwC   B ] [ v ]   [ i_src ]
///     [ D         0 ] [ i ] = [ v_src ]
/// assembled by stamping each element, then solved by complex LU with
/// partial pivoting (linalg/lu.h). Inductors are stamped as admittances
/// 1/(jwL), so sweeps must use strictly positive frequencies when inductors
/// are present.

#include <complex>
#include <vector>

#include "spice/netlist.h"

namespace easybo::spice {

using Complex = std::complex<double>;

/// Solution of one frequency point: node voltages indexed by NodeId
/// (entry [kGround] is always 0) and group-2 branch currents.
struct AcSolution {
  std::vector<Complex> node_voltage;
  std::vector<Complex> branch_current;

  Complex v(NodeId n) const { return node_voltage[n]; }

  /// Differential voltage v(p) - v(n).
  Complex v(NodeId p, NodeId n) const {
    return node_voltage[p] - node_voltage[n];
  }
};

/// Solves the circuit at one frequency (hertz). Throws NumericalError when
/// the MNA matrix is singular (e.g. a floating node).
AcSolution solve_ac(const Circuit& circuit, double freq_hz);

/// One probed transfer-function point.
struct AcPoint {
  double freq_hz;
  Complex value;

  double magnitude() const { return std::abs(value); }
  double magnitude_db() const;
  /// Phase in degrees, principal value (-180, 180].
  double phase_deg() const;
};

/// A swept transfer function at a probe node (or differential pair).
struct AcSweep {
  std::vector<AcPoint> points;

  bool empty() const { return points.empty(); }
  std::size_t size() const { return points.size(); }
};

/// Logarithmically spaced frequency grid from f_start to f_stop (inclusive)
/// with points_per_decade points per decade. Requires 0 < f_start < f_stop.
std::vector<double> log_frequency_grid(double f_start, double f_stop,
                                       std::size_t points_per_decade);

/// Runs a sweep probing v(probe_p) - v(probe_n) at each frequency.
AcSweep sweep_ac(const Circuit& circuit, const std::vector<double>& freqs,
                 NodeId probe_p, NodeId probe_n = kGround);

}  // namespace easybo::spice
