#pragma once
/// \file thread_pool.h
/// \brief Fixed-size worker pool used by the real-threads execution mode.
///
/// The experiment harness normally runs on the virtual-time discrete-event
/// scheduler (src/sched), but the public API also offers genuine parallel
/// evaluation of expensive objectives; this pool backs that mode.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace easybo {

/// A plain fixed-size thread pool with a FIFO task queue.
///
/// Tasks must not throw out of the packaged callable's future unless the
/// caller retrieves it; exceptions propagate through the returned future.
class ThreadPool {
 public:
  /// Spawns \p num_threads workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains remaining tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a nullary callable; the result (or exception) is delivered via
  /// the returned future.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Blocks until the queue is empty and all in-flight tasks finished.
  void wait_idle();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

}  // namespace easybo
