#pragma once
/// \file sampling.h
/// \brief Space-filling designs: Latin hypercube and Sobol sequences.
///
/// Bayesian optimization needs an initial design that covers the search box
/// (the paper samples 20 random initial points); acquisition maximization
/// needs dense low-discrepancy screening candidates. Both live here and
/// produce points in the unit hypercube [0,1)^d; callers scale to bounds.

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace easybo {

/// A set of n points in [0,1)^d, row-major: points[i*dim + j].
struct UnitSample {
  std::size_t n = 0;
  std::size_t dim = 0;
  std::vector<double> points;

  /// Value of coordinate j of point i.
  double at(std::size_t i, std::size_t j) const { return points[i * dim + j]; }

  /// Copy of point i as a vector of length dim.
  std::vector<double> row(std::size_t i) const;
};

/// Pure iid uniform sampling (the paper's "randomly sample 20 initial data
/// points").
UnitSample random_design(std::size_t n, std::size_t dim, Rng& rng);

/// Latin hypercube design: each of the d one-dimensional projections is
/// stratified into n equal bins with exactly one point per bin, at a uniform
/// random location inside its bin.
UnitSample latin_hypercube(std::size_t n, std::size_t dim, Rng& rng);

/// Maximin-improved Latin hypercube: builds `restarts` independent LHS
/// designs and returns the one with the largest minimum pairwise distance.
UnitSample maximin_latin_hypercube(std::size_t n, std::size_t dim, Rng& rng,
                                   std::size_t restarts = 8);

/// Gray-code Sobol sequence generator supporting up to kMaxDim dimensions
/// (direction numbers from the Joe–Kuo D6 table). Skips the all-zeros first
/// point by default, which otherwise degrades GP conditioning at the corner.
class SobolSequence {
 public:
  static constexpr std::size_t kMaxDim = 21;

  /// \param dim   number of dimensions, 1..kMaxDim.
  /// \param skip  number of initial points to discard (default 1: the origin).
  explicit SobolSequence(std::size_t dim, std::uint32_t skip = 1);

  std::size_t dim() const { return dim_; }

  /// Next point of the sequence, length dim, each coordinate in [0,1).
  std::vector<double> next();

  /// Convenience: the next n points as a UnitSample.
  UnitSample take(std::size_t n);

 private:
  std::size_t dim_;
  std::uint32_t index_ = 0;  // zero-based index of the NEXT point
  // direction numbers v_[j][k], scaled by 2^-32 on output
  std::vector<std::vector<std::uint32_t>> v_;
  std::vector<std::uint32_t> x_;  // current Gray-code state per dimension
};

/// Scales a unit-cube point into a box: out[j] = lo[j] + u[j]*(hi[j]-lo[j]).
std::vector<double> scale_to_box(const std::vector<double>& unit,
                                 const std::vector<double>& lower,
                                 const std::vector<double>& upper);

}  // namespace easybo
