#pragma once
/// \file format.h
/// \brief Duration formatting and ASCII/CSV table rendering.
///
/// The experiment harness reproduces the paper's tables, including its
/// "216h40m51s" / "21m19s" time format; both live here so benches and
/// examples print consistently.

#include <iosfwd>
#include <string>
#include <vector>

namespace easybo {

/// Formats a duration in seconds in the paper's style:
///   90261.0  -> "25h4m21s"
///   1279.0   -> "21m19s"
///   42.5     -> "42s"   (sub-minute durations are rounded to whole seconds)
/// Negative durations are clamped to "0s".
std::string format_duration(double seconds);

/// Parses "HhMmSs"-style strings back to seconds (inverse of
/// format_duration); accepts any subset of the h/m/s fields.
/// Throws InvalidArgument on malformed input.
double parse_duration(const std::string& text);

/// Fixed-precision float formatting (std::to_string has fixed 6 digits and
/// no rounding control; this wraps snprintf).
std::string format_double(double value, int precision = 2);

/// Minimal ASCII table with a header row, used for the Table I/II replicas.
class AsciiTable {
 public:
  explicit AsciiTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Renders with column alignment:
  ///   | Algo     | Best   | ... |
  ///   |----------|--------|-----|
  std::string str() const;

  /// Comma-separated rendering with the same content (for post-processing).
  std::string csv() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

std::ostream& operator<<(std::ostream& os, const AsciiTable& table);

}  // namespace easybo
