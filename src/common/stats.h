#pragma once
/// \file stats.h
/// \brief Small statistics helpers for experiment summaries.

#include <cstddef>
#include <vector>

namespace easybo {

/// Numerically stable (Welford) running mean / variance / extrema.
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Five-number style summary used for the paper's Best/Worst/Mean/Std rows.
struct Summary {
  double best = 0.0;   ///< maximum (the paper maximizes FOM)
  double worst = 0.0;  ///< minimum
  double mean = 0.0;
  double stddev = 0.0;
  std::size_t n = 0;
};

/// Summary of a non-empty vector of values. Throws InvalidArgument if empty.
Summary summarize(const std::vector<double>& values);

/// Arithmetic mean; throws if empty.
double mean_of(const std::vector<double>& values);

/// Sample standard deviation (n-1); 0 for fewer than two values.
double stddev_of(const std::vector<double>& values);

/// Median (averages the middle pair for even sizes); throws if empty.
double median_of(std::vector<double> values);

/// Linear-interpolation quantile, q in [0,1]; throws if empty.
double quantile_of(std::vector<double> values, double q);

}  // namespace easybo
