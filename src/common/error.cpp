#include "common/error.h"

#include <sstream>

namespace easybo::detail {

void throw_invalid_argument(const char* cond, const char* file, int line,
                            const std::string& msg) {
  std::ostringstream oss;
  oss << "precondition failed: (" << cond << ") at " << file << ":" << line;
  if (!msg.empty()) oss << " — " << msg;
  throw InvalidArgument(oss.str());
}

}  // namespace easybo::detail
