#pragma once
/// \file error.h
/// \brief Exception types and precondition-checking helpers used across EasyBO.

#include <stdexcept>
#include <string>

namespace easybo {

/// Base exception for all errors raised by the EasyBO library.
///
/// Thrown for programming errors (dimension mismatch, invalid configuration,
/// numerically impossible requests). Simulator-level "this design point is
/// non-physical" conditions are NOT exceptions; they are reported as large
/// negative figures of merit so that optimization loops never unwind.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a matrix factorization fails (e.g. Cholesky of a matrix that
/// is not positive definite even after the maximum jitter was added).
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// Thrown when an argument violates a documented precondition.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_invalid_argument(const char* cond, const char* file,
                                         int line, const std::string& msg);
}  // namespace detail

/// Precondition check: throws easybo::InvalidArgument with location info when
/// \p cond is false. Always active (not compiled out in release builds) —
/// these guard the public API surface, not inner loops.
#define EASYBO_REQUIRE(cond, msg)                                       \
  do {                                                                  \
    if (!(cond)) {                                                      \
      ::easybo::detail::throw_invalid_argument(#cond, __FILE__, __LINE__, \
                                               (msg));                  \
    }                                                                   \
  } while (false)

}  // namespace easybo
