#include "common/format.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace easybo {

std::string format_duration(double seconds) {
  if (!(seconds > 0.0)) return "0s";
  auto total = static_cast<long long>(std::llround(seconds));
  const long long h = total / 3600;
  const long long m = (total % 3600) / 60;
  const long long s = total % 60;
  std::ostringstream oss;
  if (h > 0) {
    oss << h << 'h' << m << 'm' << s << 's';
  } else if (m > 0) {
    oss << m << 'm' << s << 's';
  } else {
    oss << s << 's';
  }
  return oss.str();
}

double parse_duration(const std::string& text) {
  EASYBO_REQUIRE(!text.empty(), "parse_duration: empty string");
  double seconds = 0.0;
  std::size_t pos = 0;
  bool any_field = false;
  while (pos < text.size()) {
    std::size_t end = pos;
    while (end < text.size() &&
           (std::isdigit(static_cast<unsigned char>(text[end])) ||
            text[end] == '.')) {
      ++end;
    }
    EASYBO_REQUIRE(end > pos && end < text.size(),
                   "parse_duration: expected <number><h|m|s> fields");
    const double value = std::stod(text.substr(pos, end - pos));
    const char unit = text[end];
    switch (unit) {
      case 'h': seconds += value * 3600.0; break;
      case 'm': seconds += value * 60.0; break;
      case 's': seconds += value; break;
      default:
        throw InvalidArgument("parse_duration: unknown unit '" +
                              std::string(1, unit) + "' in \"" + text + "\"");
    }
    any_field = true;
    pos = end + 1;
  }
  EASYBO_REQUIRE(any_field, "parse_duration: no fields found");
  return seconds;
}

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

AsciiTable::AsciiTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  EASYBO_REQUIRE(!header_.empty(), "AsciiTable needs at least one column");
}

void AsciiTable::add_row(std::vector<std::string> row) {
  EASYBO_REQUIRE(row.size() == header_.size(),
                 "AsciiTable row width must match header");
  rows_.push_back(std::move(row));
}

std::string AsciiTable::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream oss;
  auto emit_row = [&](const std::vector<std::string>& row) {
    oss << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      oss << ' ' << row[c] << std::string(width[c] - row[c].size(), ' ')
          << " |";
    }
    oss << '\n';
  };
  emit_row(header_);
  oss << '|';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    oss << std::string(width[c] + 2, '-') << '|';
  }
  oss << '\n';
  for (const auto& row : rows_) emit_row(row);
  return oss.str();
}

std::string AsciiTable::csv() const {
  std::ostringstream oss;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) oss << ',';
      oss << row[c];
    }
    oss << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return oss.str();
}

std::ostream& operator<<(std::ostream& os, const AsciiTable& table) {
  return os << table.str();
}

}  // namespace easybo
