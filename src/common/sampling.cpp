#include "common/sampling.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace easybo {

std::vector<double> UnitSample::row(std::size_t i) const {
  EASYBO_REQUIRE(i < n, "UnitSample::row index out of range");
  return {points.begin() + static_cast<std::ptrdiff_t>(i * dim),
          points.begin() + static_cast<std::ptrdiff_t>((i + 1) * dim)};
}

UnitSample random_design(std::size_t n, std::size_t dim, Rng& rng) {
  UnitSample s;
  s.n = n;
  s.dim = dim;
  s.points = rng.uniform_vector(n * dim);
  return s;
}

UnitSample latin_hypercube(std::size_t n, std::size_t dim, Rng& rng) {
  EASYBO_REQUIRE(n > 0 && dim > 0, "latin_hypercube requires n, dim > 0");
  UnitSample s;
  s.n = n;
  s.dim = dim;
  s.points.resize(n * dim);
  for (std::size_t j = 0; j < dim; ++j) {
    const auto perm = rng.permutation(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double u = rng.uniform();
      s.points[i * dim + j] =
          (static_cast<double>(perm[i]) + u) / static_cast<double>(n);
    }
  }
  return s;
}

namespace {
double min_pairwise_distance_sq(const UnitSample& s) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t a = 0; a < s.n; ++a) {
    for (std::size_t b = a + 1; b < s.n; ++b) {
      double d2 = 0.0;
      for (std::size_t j = 0; j < s.dim; ++j) {
        const double diff = s.at(a, j) - s.at(b, j);
        d2 += diff * diff;
      }
      best = std::min(best, d2);
    }
  }
  return best;
}
}  // namespace

UnitSample maximin_latin_hypercube(std::size_t n, std::size_t dim, Rng& rng,
                                   std::size_t restarts) {
  EASYBO_REQUIRE(restarts > 0, "maximin LHS needs at least one restart");
  UnitSample best = latin_hypercube(n, dim, rng);
  if (n < 2) return best;
  double best_d2 = min_pairwise_distance_sq(best);
  for (std::size_t r = 1; r < restarts; ++r) {
    UnitSample cand = latin_hypercube(n, dim, rng);
    const double d2 = min_pairwise_distance_sq(cand);
    if (d2 > best_d2) {
      best_d2 = d2;
      best = std::move(cand);
    }
  }
  return best;
}

namespace {

// Joe–Kuo D6 direction-number table for dimensions 2..21 (dimension 1 is the
// van der Corput sequence in base 2 and needs no table entry).
struct JoeKuoEntry {
  unsigned s;                 // degree of the primitive polynomial
  unsigned a;                 // polynomial coefficients (encoded)
  std::uint32_t m[7];         // initial direction numbers m_1..m_s
};

constexpr JoeKuoEntry kJoeKuo[] = {
    {1, 0, {1, 0, 0, 0, 0, 0, 0}},        // d = 2
    {2, 1, {1, 3, 0, 0, 0, 0, 0}},        // d = 3
    {3, 1, {1, 3, 1, 0, 0, 0, 0}},        // d = 4
    {3, 2, {1, 1, 1, 0, 0, 0, 0}},        // d = 5
    {4, 1, {1, 1, 3, 3, 0, 0, 0}},        // d = 6
    {4, 4, {1, 3, 5, 13, 0, 0, 0}},       // d = 7
    {5, 2, {1, 1, 5, 5, 17, 0, 0}},       // d = 8
    {5, 4, {1, 1, 5, 5, 5, 0, 0}},        // d = 9
    {5, 7, {1, 1, 7, 11, 19, 0, 0}},      // d = 10
    {5, 11, {1, 1, 5, 1, 1, 0, 0}},       // d = 11
    {5, 13, {1, 1, 1, 3, 11, 0, 0}},      // d = 12
    {5, 14, {1, 3, 5, 5, 31, 0, 0}},      // d = 13
    {6, 1, {1, 3, 3, 9, 7, 49, 0}},       // d = 14
    {6, 13, {1, 1, 1, 15, 21, 21, 0}},    // d = 15
    {6, 16, {1, 3, 1, 13, 27, 49, 0}},    // d = 16
    {6, 19, {1, 1, 1, 15, 7, 5, 0}},      // d = 17
    {6, 22, {1, 3, 1, 15, 13, 25, 0}},    // d = 18
    {6, 25, {1, 1, 5, 5, 19, 61, 0}},     // d = 19
    {7, 1, {1, 3, 7, 11, 23, 15, 103}},   // d = 20
    {7, 4, {1, 3, 7, 13, 13, 15, 69}},    // d = 21
};

constexpr unsigned kBits = 32;

}  // namespace

SobolSequence::SobolSequence(std::size_t dim, std::uint32_t skip) : dim_(dim) {
  EASYBO_REQUIRE(dim >= 1 && dim <= kMaxDim,
                 "SobolSequence supports 1..21 dimensions");
  v_.assign(dim_, std::vector<std::uint32_t>(kBits, 0));
  x_.assign(dim_, 0);

  // Dimension 1: van der Corput, v_k = 2^(32-k).
  for (unsigned k = 0; k < kBits; ++k) v_[0][k] = 1u << (kBits - 1 - k);

  for (std::size_t j = 1; j < dim_; ++j) {
    const JoeKuoEntry& e = kJoeKuo[j - 1];
    const unsigned s = e.s;
    for (unsigned k = 0; k < s; ++k) {
      v_[j][k] = e.m[k] << (kBits - 1 - k);
    }
    for (unsigned k = s; k < kBits; ++k) {
      std::uint32_t value = v_[j][k - s] ^ (v_[j][k - s] >> s);
      for (unsigned q = 1; q < s; ++q) {
        if ((e.a >> (s - 1 - q)) & 1u) value ^= v_[j][k - q];
      }
      v_[j][k] = value;
    }
  }

  for (std::uint32_t i = 0; i < skip; ++i) (void)next();
}

std::vector<double> SobolSequence::next() {
  std::vector<double> point(dim_);
  for (std::size_t j = 0; j < dim_; ++j) {
    point[j] = static_cast<double>(x_[j]) * 0x1.0p-32;
  }
  // Gray-code update: flip direction number of the lowest zero bit of index.
  std::uint32_t c = 0;
  std::uint32_t value = index_;
  while (value & 1u) {
    value >>= 1;
    ++c;
  }
  EASYBO_REQUIRE(c < kBits, "Sobol sequence exhausted (2^32 points)");
  for (std::size_t j = 0; j < dim_; ++j) x_[j] ^= v_[j][c];
  ++index_;
  return point;
}

UnitSample SobolSequence::take(std::size_t n) {
  UnitSample s;
  s.n = n;
  s.dim = dim_;
  s.points.reserve(n * dim_);
  for (std::size_t i = 0; i < n; ++i) {
    const auto p = next();
    s.points.insert(s.points.end(), p.begin(), p.end());
  }
  return s;
}

std::vector<double> scale_to_box(const std::vector<double>& unit,
                                 const std::vector<double>& lower,
                                 const std::vector<double>& upper) {
  EASYBO_REQUIRE(unit.size() == lower.size() && unit.size() == upper.size(),
                 "scale_to_box: dimension mismatch");
  std::vector<double> out(unit.size());
  for (std::size_t j = 0; j < unit.size(); ++j) {
    out[j] = lower[j] + unit[j] * (upper[j] - lower[j]);
  }
  return out;
}

}  // namespace easybo
