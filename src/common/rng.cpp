#include "common/rng.h"

#include <cmath>
#include <numbers>

#include "common/error.h"

namespace easybo {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // All-zero state is the one forbidden state of xoshiro; splitmix64 cannot
  // produce four zero words from any seed, but guard anyway.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // Top 53 bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  EASYBO_REQUIRE(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; reject u1 == 0 so log() is finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

std::size_t Rng::index(std::size_t n) {
  EASYBO_REQUIRE(n > 0, "index(n) requires n > 0");
  // Bounded rejection to avoid modulo bias.
  const std::uint64_t bound = n;
  const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod n
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return static_cast<std::size_t>(r % bound);
  }
}

int Rng::integer(int lo, int hi) {
  EASYBO_REQUIRE(lo <= hi, "integer(lo, hi) requires lo <= hi");
  const auto span =
      static_cast<std::size_t>(static_cast<long long>(hi) - lo + 1);
  return lo + static_cast<int>(index(span));
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::vector<double> Rng::uniform_vector(std::size_t n) {
  std::vector<double> v(n);
  for (auto& x : v) x = uniform();
  return v;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    std::swap(p[i - 1], p[index(i)]);
  }
  return p;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  EASYBO_REQUIRE(k <= n, "cannot sample more indices than the population");
  // Partial Fisher–Yates over an index vector: O(n) memory, O(n + k) time.
  std::vector<std::size_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i;
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + index(n - i);
    std::swap(pool[i], pool[j]);
    out.push_back(pool[i]);
  }
  return out;
}

RngState Rng::save() const {
  RngState state;
  state.s = s_;
  state.cached_normal = cached_normal_;
  state.has_cached_normal = has_cached_normal_;
  return state;
}

void Rng::load(const RngState& state) {
  EASYBO_REQUIRE(
      state.s[0] != 0 || state.s[1] != 0 || state.s[2] != 0 || state.s[3] != 0,
      "Rng::load: all-zero state is invalid for xoshiro256++");
  s_ = state.s;
  cached_normal_ = state.cached_normal;
  has_cached_normal_ = state.has_cached_normal;
}

Rng Rng::spawn() {
  // Child seeded from two fresh draws folded together; the parent state
  // advances, so successive spawns are independent streams.
  const std::uint64_t a = (*this)();
  const std::uint64_t b = (*this)();
  return Rng(a ^ rotl(b, 32));
}

}  // namespace easybo
