#pragma once
/// \file rng.h
/// \brief Deterministic, seedable random number generation for EasyBO.
///
/// All stochastic components of the library (initial designs, DE mutation,
/// acquisition κ-sampling, Nelder–Mead restarts, ...) draw from easybo::Rng
/// so that every experiment is reproducible from a single 64-bit seed.
///
/// The engine is xoshiro256++ (Blackman & Vigna, 2019): 256-bit state,
/// excellent statistical quality, trivially fast, and — unlike
/// std::mt19937 — identical output on every platform/standard library.

#include <array>
#include <cstdint>
#include <vector>

namespace easybo {

/// SplitMix64 step, used to expand a 64-bit seed into engine state and to
/// derive independent child seeds. Public because the deterministic
/// simulation-time model reuses it as a hash.
std::uint64_t splitmix64(std::uint64_t& state);

/// Complete serializable state of an Rng. The cached Box–Muller deviate is
/// part of the stream position: normal() consumes two uniforms and yields
/// two deviates, so dropping the cache would shift every draw after an odd
/// number of normal() calls. Checkpoint/resume (docs/checkpoint-format.md)
/// round-trips this struct; restoring it reproduces the remaining stream
/// bit for bit.
struct RngState {
  std::array<std::uint64_t, 4> s{};
  double cached_normal = 0.0;
  bool has_cached_normal = false;

  bool operator==(const RngState&) const = default;
};

/// xoshiro256++ engine with convenience distributions.
///
/// Satisfies the essentials of UniformRandomBitGenerator so it can also be
/// handed to <random> distributions if ever needed, but the built-in
/// distribution helpers below are preferred (they are platform-stable).
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the 256-bit state from \p seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0xEA5B0DEFu);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  /// Next raw 64 random bits.
  result_type operator()();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box–Muller (cached second deviate).
  double normal();

  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev);

  /// Uniform integer in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int integer(int lo, int hi);

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p);

  /// Vector of n iid uniform [0,1) values.
  std::vector<double> uniform_vector(std::size_t n);

  /// Fisher–Yates shuffle of indices 0..n-1.
  std::vector<std::size_t> permutation(std::size_t n);

  /// k distinct indices drawn from 0..n-1 (k <= n), order random.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// Derives an independent child generator; the i-th child of a given
  /// parent state is deterministic. Used to give each repeated experiment
  /// run its own stream.
  Rng spawn();

  /// Snapshot of the full generator state (engine words + normal cache).
  RngState save() const;

  /// Restores a state captured by save(); subsequent draws are
  /// bit-identical to the generator the state came from. Rejects the
  /// all-zero engine state (invalid for xoshiro).
  void load(const RngState& state);

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace easybo
