#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace easybo {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::mean() const {
  EASYBO_REQUIRE(n_ > 0, "mean of empty sample");
  return mean_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  EASYBO_REQUIRE(n_ > 0, "min of empty sample");
  return min_;
}

double RunningStats::max() const {
  EASYBO_REQUIRE(n_ > 0, "max of empty sample");
  return max_;
}

Summary summarize(const std::vector<double>& values) {
  EASYBO_REQUIRE(!values.empty(), "summarize of empty vector");
  RunningStats rs;
  for (double v : values) rs.add(v);
  Summary s;
  s.best = rs.max();
  s.worst = rs.min();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.n = rs.count();
  return s;
}

double mean_of(const std::vector<double>& values) {
  return summarize(values).mean;
}

double stddev_of(const std::vector<double>& values) {
  return summarize(values).stddev;
}

double median_of(std::vector<double> values) {
  return quantile_of(std::move(values), 0.5);
}

double quantile_of(std::vector<double> values, double q) {
  EASYBO_REQUIRE(!values.empty(), "quantile of empty vector");
  EASYBO_REQUIRE(q >= 0.0 && q <= 1.0, "quantile level must be in [0,1]");
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

}  // namespace easybo
