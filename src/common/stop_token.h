#pragma once
/// \file stop_token.h
/// \brief Cooperative cancellation for long-running computations.
///
/// A StopToken is a polling-side view of "should this work stop now?".
/// Long computations (acquisition maximization, GP hyperparameter
/// training, a full suggest) accept an optional `const StopToken*` and
/// call check() at their safe checkpoints; when the token has fired,
/// check() throws Cancelled and the computation unwinds without having
/// committed anything. Three sources can fire a token:
///
///  - an external flag: the `const std::atomic<bool>*` graceful-stop
///    seam BoEngine::set_stop_token has always taken (signal handlers
///    flip it);
///  - a wall-clock deadline: the serving layer's per-request budget
///    (docs/service-protocol.md § Deadlines);
///  - a deterministic countdown: fire on the Nth poll. Time-based cuts
///    land at nondeterministic checkpoints, so the seeded parity tests
///    (tests/test_serve_deadline.cpp) use this source to cut the same
///    computation at the same checkpoint on every run.
///
/// Polling NEVER consumes RNG state and never mutates the computation —
/// that is what makes a cancelled suggest invisible to the proposal
/// stream: the caller discards the unwound object, and a retry replays
/// the identical sequence (the determinism contract of bo/ask_tell.h).
///
/// The token is immutable after construction except for the countdown
/// counter, which only the polling thread touches — a token handed to a
/// worker thread is safe to observe from there while the submitting
/// thread merely waits.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

#include "common/error.h"

namespace easybo::common {

/// Thrown by StopToken::check() when the token has fired. Derives
/// easybo::Error so generic catch sites keep working, but callers that
/// must distinguish "cancelled at a safe checkpoint, nothing committed"
/// from a real failure (the serve layer's deadline rollback) catch this
/// type specifically.
class Cancelled : public Error {
 public:
  explicit Cancelled(const std::string& what) : Error(what) {}
};

class StopToken {
 public:
  /// A token that never fires (the default for every stop-aware API).
  StopToken() = default;

  /// Fires while \p flag (owned by the caller, may be null = never)
  /// holds true. The relaxed load matches the historical
  /// BoEngine::set_stop_token semantics.
  static StopToken from_flag(const std::atomic<bool>* flag) {
    StopToken t;
    t.flag_ = flag;
    return t;
  }

  /// Fires once steady_clock::now() reaches \p deadline.
  static StopToken after_deadline(
      std::chrono::steady_clock::time_point deadline) {
    StopToken t;
    t.use_deadline_ = true;
    t.deadline_ = deadline;
    return t;
  }

  /// Deterministic source: the first \p polls calls to stop_requested()
  /// return false, every later one returns true (polls == 0 fires
  /// immediately). For seeded cancellation-parity tests.
  static StopToken after_polls(std::uint64_t polls) {
    StopToken t;
    t.use_countdown_ = true;
    t.polls_left_ = polls;
    return t;
  }

  /// True when any source has fired. Counts down the deterministic
  /// source, so only the thread running the cancellable computation may
  /// call this (the usual ownership anyway).
  bool stop_requested() const {
    if (flag_ != nullptr && flag_->load(std::memory_order_relaxed)) {
      return true;
    }
    if (use_countdown_) {
      if (polls_left_ == 0) return true;
      --polls_left_;
    }
    if (use_deadline_ &&
        std::chrono::steady_clock::now() >= deadline_) {
      return true;
    }
    return false;
  }

  /// Throws Cancelled naming the checkpoint when the token has fired.
  void check(const char* where) const {
    if (stop_requested()) {
      throw Cancelled(std::string("cancelled during ") + where);
    }
  }

  bool has_deadline() const { return use_deadline_; }
  std::chrono::steady_clock::time_point deadline() const { return deadline_; }

 private:
  const std::atomic<bool>* flag_ = nullptr;
  bool use_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
  bool use_countdown_ = false;
  /// Touched only by the polling thread; mutable so a const token (the
  /// natural way to hand one down a call chain) still counts down.
  mutable std::uint64_t polls_left_ = 0;
};

}  // namespace easybo::common
