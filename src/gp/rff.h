#pragma once
/// \file rff.h
/// \brief Random-Fourier-feature GP approximation (Rahimi & Recht, 2007).
///
/// The exact GP's O(n^3) fit and O(n^2) predict cap the training-set size
/// the asynchronous loop can afford. This backend approximates the SE-ARD
/// kernel by its Monte-Carlo spectral expansion
///   k(x, x') ~= phi(x)^T phi(x'),
///   phi(x)[2m]   = s * cos(w_m . x),    phi(x)[2m+1] = s * sin(w_m . x),
///   w_m ~ N(0, diag(l)^{-2}),           s = sqrt(sf^2 / M),
/// and runs exact Bayesian linear regression in the 2M-dimensional feature
/// space: fit is O(n M^2 + M^3), predict O(M^2), independent of how the
/// training set grows past M. The approximation error decays as
/// O(1/sqrt(M)) (tested in test_rff.cpp's convergence sweep).
///
/// Determinism: the spectral directions are drawn once at construction from
/// a dedicated seed, then rescaled (not redrawn) when lengthscales change —
/// so the model is a deterministic function of (seed, data,
/// hyperparameters), which checkpoint/resume relies on. Incremental fits
/// absorb only appended rows into the feature Gram and are bit-identical to
/// a from-scratch rebuild.
///
/// Select with BoConfig::gp_backend = "rff"; feature count M via
/// BoConfig::rff_features. SE-ARD kernels only (the spectral density of
/// Matern kernels is a Student-t; not implemented).

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "gp/kernel.h"
#include "gp/regressor.h"
#include "linalg/cholesky.h"
#include "obs/trace.h"

namespace easybo::gp {

/// Random-Fourier-feature regressor: approximate GP posterior via Bayesian
/// linear regression on 2M random cosine/sine features of an SE-ARD kernel.
class RffRegressor final : public TrainableRegressor {
 public:
  /// \param kernel          SE-ARD kernel (ownership transferred; other
  ///                        kernel families are rejected)
  /// \param noise_variance  sn^2, must be positive
  /// \param num_features    M, the number of spectral frequencies (feature
  ///                        dimension is 2M), must be >= 1
  /// \param feature_seed    seed for the one-time spectral draw
  RffRegressor(std::unique_ptr<Kernel> kernel, double noise_variance,
               std::size_t num_features, std::uint64_t feature_seed);

  RffRegressor(const RffRegressor& other);
  RffRegressor& operator=(const RffRegressor& other);
  RffRegressor(RffRegressor&&) noexcept = default;
  RffRegressor& operator=(RffRegressor&&) noexcept = default;

  void set_data(std::vector<Vec> xs, Vec ys) override;
  void add_point(Vec x, double y) override;

  /// Rebuilds the feature-space posterior: w_mean = (Phi^T Phi + sn^2
  /// I)^{-1} Phi^T (y - mean). When points were only appended and the
  /// hyperparameters are unchanged, only the new rows are absorbed into
  /// the feature Gram (O(k M^2) instead of O(n M^2)); the M x M Cholesky
  /// is redone either way.
  void fit() override;

  bool fitted() const override;
  std::size_t num_points() const override { return xs_.size(); }
  std::size_t dim() const override { return kernel_->dim(); }
  std::size_t num_features() const { return num_features_; }
  const std::vector<Vec>& inputs() const { return xs_; }
  const Vec& targets() const { return ys_; }
  const Kernel& kernel() const { return *kernel_; }

  /// Approximate posterior mean phi^T w_mean + mean and weight-space
  /// latent variance sn^2 ||L^{-1} phi||^2. Requires fitted().
  Prediction predict(const Vec& x) const override;
  double predict_observation_var(const Vec& x) const override;

  /// Exact LML of the degenerate (rank-2M) GP prior K = Phi Phi^T, via the
  /// Woodbury identity — O(M) given the fit. Requires fitted().
  double log_marginal_likelihood() const override;

  /// Not available: the features depend non-linearly on the lengthscales
  /// and the Monte-Carlo LML surface is not worth differentiating. Always
  /// throws; train through an exact-GP proxy instead (see
  /// AskTellCore::update_model).
  Vec lml_gradient() const override;
  bool supports_lml_gradient() const override { return false; }

  Vec log_hyperparams() const override;
  void set_log_hyperparams(const Vec& lp) override;
  double noise_variance() const override { return noise_var_; }

  /// One joint posterior sample: draws w = w_mean + sn L^{-T} zeta with
  /// zeta ~ N(0, I_2M) — exactly 2M normals regardless of the candidate
  /// count — and evaluates f_i = mean + phi(c_i)^T w.
  Vec sample_posterior(const std::vector<Vec>& candidates,
                       Rng& rng) const override;

  /// Hallucinated posterior (paper §III-C): pending points conditioned at
  /// their current predictive mean. Copies the model and absorbs the
  /// pseudo rows incrementally — O(n M + k M^2 + M^3), no O(n^3) anywhere.
  std::unique_ptr<Regressor> hallucinate(const std::vector<Vec>& pending,
                                         bool pin_mean) const override;

  /// Counts "gp.rff_refactor" (from-scratch feature Gram rebuilds),
  /// "gp.rff_extend" (appended rows absorbed incrementally) and
  /// "gp.hallucinate".
  void set_trace(obs::TraceSink* sink) override { trace_ = sink; }
  obs::TraceSink* trace() const { return trace_; }

  const char* backend_name() const override { return "rff"; }

  /// The feature map phi(x) in R^{2M} for the current hyperparameters
  /// (exposed for tests).
  Vec features(const Vec& x) const;

 private:
  /// fit() with an optionally pinned constant mean (hallucination's
  /// pin_mean semantics); nullptr recomputes the empirical mean.
  void fit_impl(const double* pinned_mean);

  /// Rescales the spectral directions by the current lengthscales and
  /// signal variance.
  void refresh_frequencies();

  std::unique_ptr<Kernel> kernel_;  // SE-ARD (enforced at construction)
  double noise_var_;
  std::size_t num_features_;        // M; feature dimension is 2M
  std::uint64_t feature_seed_;
  Matrix eps_;                      // M x d standard-normal spectral draws

  std::vector<Vec> xs_;
  Vec ys_;

  // Feature state for the hyperparameters in fitted_params_.
  std::vector<Vec> omega_;   // scaled frequencies, omega_[m] = eps_m / l
  double feat_scale_ = 1.0;  // sqrt(sf^2 / M)
  std::vector<Vec> phis_;    // cached phi(x_i), one per absorbed point
  Matrix a_;                 // lower triangle of Phi^T Phi over phis_

  // Fit state.
  std::optional<linalg::Cholesky> chol_;  // factor of A + sn^2 I
  Vec w_mean_;                            // posterior mean weights
  Vec b_;                                 // Phi^T (y - mean), kept for LML
  double y_mean_ = 0.0;
  double ycty_ = 0.0;                     // (y - mean)^T (y - mean)
  Vec fitted_params_;  // hyperparameters the feature state was built with

  obs::TraceSink* trace_ = nullptr;
};

}  // namespace easybo::gp
