#include "gp/normalizer.h"

#include <cmath>

#include "common/error.h"
#include "common/stats.h"

namespace easybo::gp {

BoxNormalizer::BoxNormalizer(Vec lower, Vec upper)
    : lower_(std::move(lower)), upper_(std::move(upper)) {
  EASYBO_REQUIRE(lower_.size() == upper_.size(),
                 "BoxNormalizer: bound size mismatch");
  EASYBO_REQUIRE(!lower_.empty(), "BoxNormalizer: empty bounds");
  for (std::size_t i = 0; i < lower_.size(); ++i) {
    EASYBO_REQUIRE(lower_[i] < upper_[i],
                   "BoxNormalizer: requires lower < upper per dimension");
  }
}

Vec BoxNormalizer::to_unit(const Vec& x) const {
  EASYBO_REQUIRE(x.size() == dim(), "BoxNormalizer::to_unit dim mismatch");
  Vec u(dim());
  for (std::size_t i = 0; i < dim(); ++i) {
    u[i] = (x[i] - lower_[i]) / (upper_[i] - lower_[i]);
  }
  return u;
}

Vec BoxNormalizer::from_unit(const Vec& u) const {
  EASYBO_REQUIRE(u.size() == dim(), "BoxNormalizer::from_unit dim mismatch");
  Vec x(dim());
  for (std::size_t i = 0; i < dim(); ++i) {
    x[i] = lower_[i] + u[i] * (upper_[i] - lower_[i]);
  }
  return x;
}

void ZScore::refit(const Vec& ys) {
  if (ys.empty()) {
    mean_ = 0.0;
    scale_ = 1.0;
    return;
  }
  RunningStats rs;
  for (double y : ys) rs.add(y);
  mean_ = rs.mean();
  const double sd = rs.stddev();
  // Constant samples (or a single point) would make the transform singular.
  scale_ = (sd > 1e-12) ? sd : 1.0;
}

Vec ZScore::transform(const Vec& ys) const {
  Vec out(ys.size());
  for (std::size_t i = 0; i < ys.size(); ++i) out[i] = transform(ys[i]);
  return out;
}

}  // namespace easybo::gp
