#include "gp/kernel.h"

#include <cmath>

#include "common/error.h"

namespace easybo::gp {

Matrix Kernel::gram(const std::vector<Vec>& xs) const {
  const std::size_t n = xs.size();
  Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = (*this)(xs[i], xs[j]);
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  return k;
}

Vec Kernel::cross(const Vec& x, const std::vector<Vec>& xs) const {
  Vec out(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = (*this)(x, xs[i]);
  return out;
}

// ---------------------------------------------------------------------------
// SquaredExponentialArd
// ---------------------------------------------------------------------------

SquaredExponentialArd::SquaredExponentialArd(std::size_t dim)
    : sf2_(1.0), lengthscales_(dim, 1.0) {
  EASYBO_REQUIRE(dim > 0, "kernel dimension must be positive");
}

SquaredExponentialArd::SquaredExponentialArd(double sf2, Vec lengthscales)
    : sf2_(sf2), lengthscales_(std::move(lengthscales)) {
  EASYBO_REQUIRE(sf2_ > 0.0, "signal variance must be positive");
  EASYBO_REQUIRE(!lengthscales_.empty(), "need at least one lengthscale");
  for (double l : lengthscales_) {
    EASYBO_REQUIRE(l > 0.0, "lengthscales must be positive");
  }
}

Vec SquaredExponentialArd::log_params() const {
  Vec lp(num_params());
  lp[0] = std::log(sf2_);
  for (std::size_t i = 0; i < dim(); ++i) lp[i + 1] = std::log(lengthscales_[i]);
  return lp;
}

void SquaredExponentialArd::set_log_params(const Vec& lp) {
  EASYBO_REQUIRE(lp.size() == num_params(), "wrong hyperparameter count");
  sf2_ = std::exp(lp[0]);
  for (std::size_t i = 0; i < dim(); ++i) lengthscales_[i] = std::exp(lp[i + 1]);
}

double SquaredExponentialArd::operator()(const Vec& a, const Vec& b) const {
  EASYBO_REQUIRE(a.size() == dim() && b.size() == dim(),
                 "kernel input dimension mismatch");
  double q = 0.0;
  for (std::size_t i = 0; i < dim(); ++i) {
    const double d = (a[i] - b[i]) / lengthscales_[i];
    q += d * d;
  }
  return sf2_ * std::exp(-0.5 * q);
}

std::vector<Matrix> SquaredExponentialArd::gram_gradients(
    const std::vector<Vec>& xs) const {
  const std::size_t n = xs.size();
  const std::size_t d = dim();
  std::vector<Matrix> grads(num_params(), Matrix(n, n));
  // dK/dlog sf2 = K; dK/dlog l_i = K .* (delta_i / l_i)^2.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double kij = (*this)(xs[i], xs[j]);
      grads[0](i, j) = kij;
      grads[0](j, i) = kij;
      for (std::size_t p = 0; p < d; ++p) {
        const double z = (xs[i][p] - xs[j][p]) / lengthscales_[p];
        const double g = kij * z * z;
        grads[p + 1](i, j) = g;
        grads[p + 1](j, i) = g;
      }
    }
  }
  return grads;
}

std::unique_ptr<Kernel> SquaredExponentialArd::clone() const {
  return std::make_unique<SquaredExponentialArd>(*this);
}

// ---------------------------------------------------------------------------
// Matern52Ard
// ---------------------------------------------------------------------------

Matern52Ard::Matern52Ard(std::size_t dim)
    : sf2_(1.0), lengthscales_(dim, 1.0) {
  EASYBO_REQUIRE(dim > 0, "kernel dimension must be positive");
}

Matern52Ard::Matern52Ard(double sf2, Vec lengthscales)
    : sf2_(sf2), lengthscales_(std::move(lengthscales)) {
  EASYBO_REQUIRE(sf2_ > 0.0, "signal variance must be positive");
  EASYBO_REQUIRE(!lengthscales_.empty(), "need at least one lengthscale");
  for (double l : lengthscales_) {
    EASYBO_REQUIRE(l > 0.0, "lengthscales must be positive");
  }
}

Vec Matern52Ard::log_params() const {
  Vec lp(num_params());
  lp[0] = std::log(sf2_);
  for (std::size_t i = 0; i < dim(); ++i) lp[i + 1] = std::log(lengthscales_[i]);
  return lp;
}

void Matern52Ard::set_log_params(const Vec& lp) {
  EASYBO_REQUIRE(lp.size() == num_params(), "wrong hyperparameter count");
  sf2_ = std::exp(lp[0]);
  for (std::size_t i = 0; i < dim(); ++i) lengthscales_[i] = std::exp(lp[i + 1]);
}

namespace {
constexpr double kSqrt5 = 2.23606797749978969;
}

double Matern52Ard::operator()(const Vec& a, const Vec& b) const {
  EASYBO_REQUIRE(a.size() == dim() && b.size() == dim(),
                 "kernel input dimension mismatch");
  double r2 = 0.0;
  for (std::size_t i = 0; i < dim(); ++i) {
    const double d = (a[i] - b[i]) / lengthscales_[i];
    r2 += d * d;
  }
  const double r = std::sqrt(r2);
  return sf2_ * (1.0 + kSqrt5 * r + (5.0 / 3.0) * r2) * std::exp(-kSqrt5 * r);
}

std::vector<Matrix> Matern52Ard::gram_gradients(
    const std::vector<Vec>& xs) const {
  const std::size_t n = xs.size();
  const std::size_t d = dim();
  std::vector<Matrix> grads(num_params(), Matrix(n, n));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      double r2 = 0.0;
      for (std::size_t p = 0; p < d; ++p) {
        const double z = (xs[i][p] - xs[j][p]) / lengthscales_[p];
        r2 += z * z;
      }
      const double r = std::sqrt(r2);
      const double e = std::exp(-kSqrt5 * r);
      const double kij = sf2_ * (1.0 + kSqrt5 * r + (5.0 / 3.0) * r2) * e;
      grads[0](i, j) = kij;
      grads[0](j, i) = kij;
      // dk/dlog l_p = sf2 * e * (5/3) * (1 + sqrt5 * r) * z_p^2
      // (the apparent 1/r singularity cancels analytically).
      const double common = sf2_ * e * (5.0 / 3.0) * (1.0 + kSqrt5 * r);
      for (std::size_t p = 0; p < d; ++p) {
        const double z = (xs[i][p] - xs[j][p]) / lengthscales_[p];
        const double g = common * z * z;
        grads[p + 1](i, j) = g;
        grads[p + 1](j, i) = g;
      }
    }
  }
  return grads;
}

std::unique_ptr<Kernel> Matern52Ard::clone() const {
  return std::make_unique<Matern52Ard>(*this);
}

std::unique_ptr<Kernel> make_kernel(const std::string& name, std::size_t dim) {
  if (name == "se" || name == "SE" || name == "rbf") {
    return std::make_unique<SquaredExponentialArd>(dim);
  }
  if (name == "matern52" || name == "matern") {
    return std::make_unique<Matern52Ard>(dim);
  }
  throw InvalidArgument("unknown kernel name: " + name);
}

}  // namespace easybo::gp
