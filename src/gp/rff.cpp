#include "gp/rff.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <utility>

#include "common/error.h"
#include "common/rng.h"

namespace easybo::gp {

RffRegressor::RffRegressor(std::unique_ptr<Kernel> kernel,
                           double noise_variance, std::size_t num_features,
                           std::uint64_t feature_seed)
    : kernel_(std::move(kernel)),
      noise_var_(noise_variance),
      num_features_(num_features),
      feature_seed_(feature_seed) {
  EASYBO_REQUIRE(kernel_ != nullptr, "RffRegressor needs a kernel");
  EASYBO_REQUIRE(noise_var_ > 0.0, "noise variance must be positive");
  EASYBO_REQUIRE(num_features_ >= 1, "RffRegressor needs >= 1 feature");
  EASYBO_REQUIRE(dynamic_cast<const SquaredExponentialArd*>(kernel_.get()) !=
                     nullptr,
                 "RffRegressor supports only the SE-ARD kernel (its spectral "
                 "density is Gaussian); got a different kernel family");
  // One-time spectral draw: M x d standard normals. Rescaled — never
  // redrawn — when lengthscales change, so the approximation is a smooth
  // deterministic function of the hyperparameters.
  Rng rng(feature_seed_);
  eps_ = Matrix(num_features_, kernel_->dim());
  for (std::size_t m = 0; m < num_features_; ++m) {
    for (std::size_t d = 0; d < kernel_->dim(); ++d) {
      eps_(m, d) = rng.normal();
    }
  }
}

RffRegressor::RffRegressor(const RffRegressor& other)
    : kernel_(other.kernel_->clone()),
      noise_var_(other.noise_var_),
      num_features_(other.num_features_),
      feature_seed_(other.feature_seed_),
      eps_(other.eps_),
      xs_(other.xs_),
      ys_(other.ys_),
      omega_(other.omega_),
      feat_scale_(other.feat_scale_),
      phis_(other.phis_),
      a_(other.a_),
      chol_(other.chol_),
      w_mean_(other.w_mean_),
      b_(other.b_),
      y_mean_(other.y_mean_),
      ycty_(other.ycty_),
      fitted_params_(other.fitted_params_),
      trace_(other.trace_) {}

RffRegressor& RffRegressor::operator=(const RffRegressor& other) {
  if (this == &other) return *this;
  kernel_ = other.kernel_->clone();
  noise_var_ = other.noise_var_;
  num_features_ = other.num_features_;
  feature_seed_ = other.feature_seed_;
  eps_ = other.eps_;
  xs_ = other.xs_;
  ys_ = other.ys_;
  omega_ = other.omega_;
  feat_scale_ = other.feat_scale_;
  phis_ = other.phis_;
  a_ = other.a_;
  chol_ = other.chol_;
  w_mean_ = other.w_mean_;
  b_ = other.b_;
  y_mean_ = other.y_mean_;
  ycty_ = other.ycty_;
  fitted_params_ = other.fitted_params_;
  trace_ = other.trace_;
  return *this;
}

void RffRegressor::set_data(std::vector<Vec> xs, Vec ys) {
  EASYBO_REQUIRE(xs.size() == ys.size(),
                 "RffRegressor::set_data: |X| must equal |y|");
  for (const auto& x : xs) {
    EASYBO_REQUIRE(x.size() == dim(), "RffRegressor: input dim mismatch");
  }
  // Keep the absorbed feature Gram when the new inputs are the old ones
  // plus appended points; fit() then absorbs only the new rows.
  const bool appended = xs.size() >= xs_.size() &&
                        std::equal(xs_.begin(), xs_.end(), xs.begin());
  xs_ = std::move(xs);
  ys_ = std::move(ys);
  if (!appended) {
    phis_.clear();
    a_ = Matrix();
    chol_.reset();
  }
}

void RffRegressor::add_point(Vec x, double y) {
  EASYBO_REQUIRE(x.size() == dim(), "RffRegressor: input dim mismatch");
  xs_.push_back(std::move(x));
  ys_.push_back(y);
}

void RffRegressor::refresh_frequencies() {
  const auto* se = static_cast<const SquaredExponentialArd*>(kernel_.get());
  const Vec& ls = se->lengthscales();
  omega_.assign(num_features_, Vec(dim()));
  for (std::size_t m = 0; m < num_features_; ++m) {
    for (std::size_t d = 0; d < dim(); ++d) {
      omega_[m][d] = eps_(m, d) / ls[d];
    }
  }
  feat_scale_ =
      std::sqrt(se->signal_variance() / static_cast<double>(num_features_));
}

Vec RffRegressor::features(const Vec& x) const {
  EASYBO_REQUIRE(x.size() == dim(), "RffRegressor::features dim mismatch");
  EASYBO_REQUIRE(omega_.size() == num_features_,
                 "RffRegressor::features before any fit");
  Vec phi(2 * num_features_);
  for (std::size_t m = 0; m < num_features_; ++m) {
    const double t = linalg::dot(omega_[m], x);
    phi[2 * m] = feat_scale_ * std::cos(t);
    phi[2 * m + 1] = feat_scale_ * std::sin(t);
  }
  return phi;
}

void RffRegressor::fit() { fit_impl(nullptr); }

void RffRegressor::fit_impl(const double* pinned_mean) {
  EASYBO_REQUIRE(!xs_.empty(), "RffRegressor::fit: no training data");
  if (pinned_mean != nullptr) {
    y_mean_ = *pinned_mean;
  } else {
    y_mean_ = 0.0;
    for (double y : ys_) y_mean_ += y;
    y_mean_ /= static_cast<double>(ys_.size());
  }

  const std::size_t m2 = 2 * num_features_;
  // Hyperparameter change (or a non-append data replacement, which cleared
  // phis_) invalidates the cached features: rebuild from scratch. Both
  // paths absorb points in index order, one at a time, so incremental and
  // scratch builds produce bit-identical Grams.
  const bool fresh = phis_.empty() || log_hyperparams() != fitted_params_;
  if (fresh) {
    refresh_frequencies();
    phis_.clear();
    a_ = Matrix(m2, m2, 0.0);
    fitted_params_ = log_hyperparams();
    obs::count(trace_, "gp.rff_refactor");
  }
  const std::size_t absorbed_before = phis_.size();
  while (phis_.size() < xs_.size()) {
    Vec phi = features(xs_[phis_.size()]);
    // Lower triangle only: the Cholesky reads nothing above the diagonal.
    for (std::size_t i = 0; i < m2; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        a_(i, j) += phi[i] * phi[j];
      }
    }
    phis_.push_back(std::move(phi));
  }
  if (!fresh && phis_.size() > absorbed_before) {
    obs::count(trace_, "gp.rff_extend",
               static_cast<std::uint64_t>(phis_.size() - absorbed_before));
  }

  // Posterior weights: (A + sn^2 I) w_mean = Phi^T (y - mean). A + sn^2 I
  // is positive definite by construction, so the factorization is clean.
  Matrix reg = a_;
  reg.add_diagonal(noise_var_);
  chol_.emplace(reg);

  b_.assign(m2, 0.0);
  ycty_ = 0.0;
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    const double yc = ys_[i] - y_mean_;
    ycty_ += yc * yc;
    const Vec& phi = phis_[i];
    for (std::size_t j = 0; j < m2; ++j) b_[j] += phi[j] * yc;
  }
  w_mean_ = chol_->solve(b_);
}

bool RffRegressor::fitted() const {
  return chol_.has_value() && phis_.size() == xs_.size() && !xs_.empty() &&
         w_mean_.size() == 2 * num_features_;
}

Prediction RffRegressor::predict(const Vec& x) const {
  EASYBO_REQUIRE(fitted(), "RffRegressor::predict before fit()");
  const Vec phi = features(x);
  const double mean = y_mean_ + linalg::dot(phi, w_mean_);
  // Weight-space posterior: var = sn^2 phi^T (A + sn^2 I)^{-1} phi
  //                             = sn^2 ||L^{-1} phi||^2.
  const Vec z = chol_->solve_lower(phi);
  const double var = noise_var_ * linalg::dot(z, z);
  return {mean, std::max(var, 0.0)};
}

double RffRegressor::predict_observation_var(const Vec& x) const {
  return predict(x).var + noise_var_;
}

double RffRegressor::log_marginal_likelihood() const {
  EASYBO_REQUIRE(fitted(), "log_marginal_likelihood before fit()");
  const auto n = static_cast<double>(xs_.size());
  const auto m2 = static_cast<double>(2 * num_features_);
  // Woodbury/Sylvester on the degenerate prior K = Phi Phi^T:
  //   log|K + sn^2 I_n| = log|A + sn^2 I_2M| + (n - 2M) log sn^2
  //   y_c^T (K + sn^2 I)^{-1} y_c = (y_c^T y_c - b^T w_mean) / sn^2.
  const double log_det =
      chol_->log_det() + (n - m2) * std::log(noise_var_);
  const double quad = (ycty_ - linalg::dot(b_, w_mean_)) / noise_var_;
  return -0.5 * quad - 0.5 * log_det -
         0.5 * n * std::log(2.0 * std::numbers::pi);
}

Vec RffRegressor::lml_gradient() const {
  EASYBO_REQUIRE(false,
                 "RffRegressor has no analytic LML gradient; train via an "
                 "exact-GP proxy (supports_lml_gradient() is false)");
  return {};
}

Vec RffRegressor::log_hyperparams() const {
  Vec lp = kernel_->log_params();
  lp.push_back(std::log(noise_var_));
  return lp;
}

void RffRegressor::set_log_hyperparams(const Vec& lp) {
  EASYBO_REQUIRE(lp.size() == kernel_->num_params() + 1,
                 "set_log_hyperparams: wrong parameter count");
  Vec kernel_lp(lp.begin(), lp.end() - 1);
  kernel_->set_log_params(kernel_lp);
  noise_var_ = std::exp(lp.back());
  chol_.reset();  // fit() notices the parameter change and rebuilds
}

Vec RffRegressor::sample_posterior(const std::vector<Vec>& candidates,
                                   Rng& rng) const {
  EASYBO_REQUIRE(fitted(), "sample_posterior before fit()");
  EASYBO_REQUIRE(!candidates.empty(), "sample_posterior: no candidates");
  // Weight-space sampling: w ~ N(w_mean, sn^2 (A + sn^2 I)^{-1}), i.e.
  // w = w_mean + sn L^{-T} zeta. One weight draw serves every candidate —
  // this is what makes RFF Thompson sampling O(M) per candidate.
  const std::size_t m2 = 2 * num_features_;
  Vec zeta(m2);
  for (auto& v : zeta) v = rng.normal();
  Vec w = chol_->solve_upper(zeta);
  const double sn = std::sqrt(noise_var_);
  Vec f(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const Vec phi = features(candidates[i]);
    double acc = y_mean_ + linalg::dot(phi, w_mean_);
    acc += sn * linalg::dot(phi, w);
    f[i] = acc;
  }
  return f;
}

std::unique_ptr<Regressor> RffRegressor::hallucinate(
    const std::vector<Vec>& pending, bool pin_mean) const {
  EASYBO_REQUIRE(fitted(), "hallucinate requires a fitted model");
  obs::count(trace_, "gp.hallucinate");
  auto augmented = std::make_unique<RffRegressor>(*this);
  for (const auto& x : pending) {
    const double mu = predict(x).mean;
    augmented->add_point(x, mu);
  }
  const double base_mean = y_mean_;
  // The copy shares this model's hyperparameters, so the pseudo rows are
  // absorbed incrementally: O(k M^2 + M^3), never O(n^3).
  augmented->fit_impl(pin_mean ? &base_mean : nullptr);
  return augmented;
}

}  // namespace easybo::gp
