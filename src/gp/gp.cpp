#include "gp/gp.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <utility>

#include "common/error.h"

namespace easybo::gp {

namespace {

/// One joint posterior sample over \p candidates for an exact GP with
/// training inputs \p xs and observation noise \p noise_var:
///   mu_i     = model.predict(c_i).mean
///   Sigma_ij = k(c_i, c_j) - q_i^T q_j,   q_i = L^{-1} k(X, c_i)
///   f        = mu + L_Sigma z,            z ~ N(0, I_m).
/// Shared by GpRegressor and its hallucination overlay: passing the
/// overlay's combined inputs and its predict() reproduces the sample a
/// materialized augmented model would draw, bit for bit. Rebuilds a local
/// Cholesky of the training covariance (O(n^3) once per call) so the
/// routine only needs the public surface.
Vec exact_joint_sample(const Kernel& kernel, const std::vector<Vec>& xs,
                       double noise_var, const Regressor& model,
                       const std::vector<Vec>& candidates, Rng& rng) {
  const std::size_t m = candidates.size();
  std::vector<Vec> q(m);
  Vec mu(m);
  for (std::size_t i = 0; i < m; ++i) {
    mu[i] = model.predict(candidates[i]).mean;
  }
  linalg::Matrix ktrain = kernel.gram(xs);
  ktrain.add_diagonal(noise_var);
  const linalg::Cholesky chol(ktrain);
  for (std::size_t i = 0; i < m; ++i) {
    q[i] = chol.solve_lower(kernel.cross(candidates[i], xs));
  }

  linalg::Matrix sigma(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = i; j < m; ++j) {
      const double v =
          kernel(candidates[i], candidates[j]) - linalg::dot(q[i], q[j]);
      sigma(i, j) = v;
      sigma(j, i) = v;
    }
  }

  const linalg::Cholesky sig_chol(sigma, /*initial_jitter=*/1e-8);
  Vec z(m);
  for (auto& v : z) v = rng.normal();
  const auto& l = sig_chol.factor();
  Vec f(m);
  for (std::size_t i = 0; i < m; ++i) {
    double v = mu[i];
    for (std::size_t jj = 0; jj <= i; ++jj) v += l(i, jj) * z[jj];
    f[i] = v;
  }
  return f;
}

}  // namespace

GpRegressor::GpRegressor(std::unique_ptr<Kernel> kernel, double noise_variance)
    : kernel_(std::move(kernel)), noise_var_(noise_variance) {
  EASYBO_REQUIRE(kernel_ != nullptr, "GpRegressor needs a kernel");
  EASYBO_REQUIRE(noise_var_ > 0.0, "noise variance must be positive");
}

GpRegressor::GpRegressor(const GpRegressor& other)
    : kernel_(other.kernel_->clone()),
      noise_var_(other.noise_var_),
      xs_(other.xs_),
      ys_(other.ys_),
      chol_(other.chol_),
      alpha_(other.alpha_),
      y_mean_(other.y_mean_),
      fitted_params_(other.fitted_params_),
      trace_(other.trace_) {}

GpRegressor& GpRegressor::operator=(const GpRegressor& other) {
  if (this == &other) return *this;
  kernel_ = other.kernel_->clone();
  noise_var_ = other.noise_var_;
  xs_ = other.xs_;
  ys_ = other.ys_;
  chol_ = other.chol_;
  alpha_ = other.alpha_;
  y_mean_ = other.y_mean_;
  fitted_params_ = other.fitted_params_;
  trace_ = other.trace_;
  return *this;
}

void GpRegressor::set_data(std::vector<Vec> xs, Vec ys) {
  EASYBO_REQUIRE(xs.size() == ys.size(),
                 "GpRegressor::set_data: |X| must equal |y|");
  for (const auto& x : xs) {
    EASYBO_REQUIRE(x.size() == dim(), "GpRegressor: input dim mismatch");
  }
  // Keep the factor when the new inputs are the old ones plus appended
  // points (the common BO case); fit() then extends incrementally.
  const bool appended =
      chol_.has_value() && xs.size() >= xs_.size() &&
      std::equal(xs_.begin(), xs_.end(), xs.begin());
  xs_ = std::move(xs);
  ys_ = std::move(ys);
  if (!appended) chol_.reset();
}

void GpRegressor::add_point(Vec x, double y) {
  EASYBO_REQUIRE(x.size() == dim(), "GpRegressor: input dim mismatch");
  xs_.push_back(std::move(x));
  ys_.push_back(y);
  // The factor (if any) still covers the first n-1 points; fit() extends.
}

void GpRegressor::fit() { fit_impl(nullptr); }

void GpRegressor::fit_impl(const double* pinned_mean) {
  EASYBO_REQUIRE(!xs_.empty(), "GpRegressor::fit: no training data");
  if (pinned_mean != nullptr) {
    y_mean_ = *pinned_mean;
  } else {
    y_mean_ = 0.0;
    for (double y : ys_) y_mean_ += y;
    y_mean_ /= static_cast<double>(ys_.size());
  }

  // Incremental fast path: extend the existing factor row by row while the
  // hyperparameters are unchanged and only appended points are missing.
  bool extended = chol_.has_value() && chol_->size() <= xs_.size() &&
                  chol_->size() > 0 && log_hyperparams() == fitted_params_;
  std::size_t extended_rows = 0;
  if (extended) {
    // The factor covers gram + (noise + jitter) I: appended diagonals must
    // carry the escalated jitter too, or incremental and full fits would
    // factor different matrices and log_det/LML would drift.
    const double diag_shift = noise_var_ + chol_->jitter_used();
    while (chol_->size() < xs_.size()) {
      const std::size_t n = chol_->size();
      const Vec& x_new = xs_[n];
      Vec column(n + 1);
      for (std::size_t i = 0; i < n; ++i) {
        column[i] = (*kernel_)(x_new, xs_[i]);
      }
      column[n] = (*kernel_)(x_new, x_new) + diag_shift;
      if (!chol_->extend(column)) {
        extended = false;  // lost positive definiteness: full refactor
        break;
      }
      ++extended_rows;
    }
  }
  if (!extended || chol_->size() != xs_.size()) {
    // Rows extended before a mid-loop failure are discarded by the
    // refactor below: they were work, not progress.
    if (extended_rows > 0) {
      obs::count(trace_, "gp.chol_extend_abandoned",
                 static_cast<std::uint64_t>(extended_rows));
    }
    Matrix k = kernel_->gram(xs_);
    k.add_diagonal(noise_var_);
    chol_.emplace(k);
    fitted_params_ = log_hyperparams();
    obs::count(trace_, "gp.chol_refactor");
    if (chol_->attempts() > 1) {
      obs::count(trace_, "gp.jitter_escalation",
                 static_cast<std::uint64_t>(chol_->attempts() - 1));
    }
  } else if (extended_rows > 0) {
    obs::count(trace_, "gp.chol_extend",
               static_cast<std::uint64_t>(extended_rows));
  }

  Vec centered(ys_.size());
  for (std::size_t i = 0; i < ys_.size(); ++i) centered[i] = ys_[i] - y_mean_;
  alpha_ = chol_->solve(centered);
}

Prediction GpRegressor::predict(const Vec& x) const {
  EASYBO_REQUIRE(fitted(), "GpRegressor::predict before fit()");
  EASYBO_REQUIRE(x.size() == dim(), "GpRegressor::predict dim mismatch");
  const Vec kstar = kernel_->cross(x, xs_);
  const double mean = y_mean_ + linalg::dot(kstar, alpha_);
  // var = k(x,x) - ||L^{-1} k*||^2, clamped: round-off can push it below 0
  // when x coincides with a training point.
  const Vec z = chol_->solve_lower(kstar);
  const double var = (*kernel_)(x, x) - linalg::dot(z, z);
  return {mean, std::max(var, 0.0)};
}

double GpRegressor::predict_mean(const Vec& x) const {
  EASYBO_REQUIRE(fitted(), "GpRegressor::predict_mean before fit()");
  EASYBO_REQUIRE(x.size() == dim(), "GpRegressor::predict_mean dim mismatch");
  const Vec kstar = kernel_->cross(x, xs_);
  return y_mean_ + linalg::dot(kstar, alpha_);
}

double GpRegressor::predict_observation_var(const Vec& x) const {
  return predict(x).var + noise_var_;
}

double GpRegressor::log_marginal_likelihood() const {
  EASYBO_REQUIRE(fitted(), "log_marginal_likelihood before fit()");
  const auto n = static_cast<double>(xs_.size());
  double fit_term = 0.0;
  for (std::size_t i = 0; i < ys_.size(); ++i) {
    fit_term += (ys_[i] - y_mean_) * alpha_[i];
  }
  return -0.5 * fit_term - 0.5 * chol_->log_det() -
         0.5 * n * std::log(2.0 * std::numbers::pi);
}

Vec GpRegressor::lml_gradient() const {
  EASYBO_REQUIRE(fitted(), "lml_gradient before fit()");
  const std::size_t n = xs_.size();
  // W = alpha alpha^T - K^{-1}; dLML/dtheta = 0.5 tr(W dK/dtheta). The
  // inverse reuses the Cholesky factor (triangular inverse + symmetric
  // product) — this is the dominant cost of every trainer gradient step.
  const Matrix kinv = chol_->inverse();
  Matrix w(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      w(i, j) = alpha_[i] * alpha_[j] - kinv(i, j);
    }
  }
  const auto dks = kernel_->gram_gradients(xs_);
  Vec grad(kernel_->num_params() + 1, 0.0);
  for (std::size_t p = 0; p < dks.size(); ++p) {
    // Both W and dK/dtheta are symmetric: fold the off-diagonal half.
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += 0.5 * w(i, i) * dks[p](i, i);
      for (std::size_t j = 0; j < i; ++j) acc += w(i, j) * dks[p](i, j);
    }
    grad[p] = acc;
  }
  // Noise term: dK/dlog sn^2 = sn^2 I.
  double tr_w = 0.0;
  for (std::size_t i = 0; i < n; ++i) tr_w += w(i, i);
  grad.back() = 0.5 * noise_var_ * tr_w;
  return grad;
}

Vec GpRegressor::log_hyperparams() const {
  Vec lp = kernel_->log_params();
  lp.push_back(std::log(noise_var_));
  return lp;
}

void GpRegressor::set_log_hyperparams(const Vec& lp) {
  EASYBO_REQUIRE(lp.size() == kernel_->num_params() + 1,
                 "set_log_hyperparams: wrong parameter count");
  Vec kernel_lp(lp.begin(), lp.end() - 1);
  kernel_->set_log_params(kernel_lp);
  noise_var_ = std::exp(lp.back());
  chol_.reset();
}

Vec GpRegressor::sample_posterior(const std::vector<Vec>& candidates,
                                  Rng& rng) const {
  EASYBO_REQUIRE(fitted(), "sample_posterior before fit()");
  EASYBO_REQUIRE(!candidates.empty(), "sample_posterior: no candidates");
  return exact_joint_sample(*kernel_, xs_, noise_var_, *this, candidates,
                            rng);
}

GpRegressor GpRegressor::with_hallucinated(const std::vector<Vec>& pending,
                                           bool pin_mean) const {
  EASYBO_REQUIRE(fitted(), "with_hallucinated requires a fitted model");
  GpRegressor augmented(*this);
  for (const auto& x : pending) {
    augmented.add_point(x, predict_mean(x));
  }
  const double base_mean = y_mean_;
  augmented.fit_impl(pin_mean ? &base_mean : nullptr);
  return augmented;
}

// ---------------------------------------------------------------------------
// HallucinatedGp: the zero-copy penalization overlay
// ---------------------------------------------------------------------------

/// The posterior a materialized with_hallucinated() model serves, computed
/// without copying the base model: pseudo targets from the base posterior,
/// factor rows appended over the borrowed base factor (CholeskyExt), and a
/// combined alpha. Every arithmetic step replays the materialized path's
/// operation order, so predictions and posterior samples are bit-identical
/// — the property the proposal-stream compatibility tests pin down.
class HallucinatedGp final : public Regressor {
 public:
  HallucinatedGp(const GpRegressor* base, const std::vector<Vec>& pending,
                 bool pin_mean)
      : base_(base), pend_x_(pending), ext_(&base->factor()) {
    obs::TraceSink* trace = base_->trace_;
    obs::count(trace, "gp.hallucinate");
    const Kernel& kernel = *base_->kernel_;
    const std::size_t n0 = base_->xs_.size();

    // Pseudo targets: the BASE model's predictive means (§III-C), exactly
    // as with_hallucinated computes them before any pseudo point is added.
    // Mean-only: the variance solve would be dead work here.
    pend_y_.reserve(pend_x_.size());
    for (const Vec& x : pend_x_) pend_y_.push_back(base_->predict_mean(x));

    if (pin_mean) {
      y_mean_ = base_->y_mean_;
    } else {
      // The historical stream: empirical mean over data + pseudo targets,
      // in the materialized model's summation order.
      double acc = 0.0;
      for (double y : base_->ys_) acc += y;
      for (double y : pend_y_) acc += y;
      y_mean_ = acc / static_cast<double>(n0 + pend_y_.size());
    }

    // Append one factor row per pending point — the same columns fit()'s
    // incremental path builds, including the base factor's jitter.
    const double diag_shift = base_->noise_var_ + ext_.jitter_used();
    bool extended = true;
    std::size_t rows = 0;
    for (std::size_t p = 0; p < pend_x_.size(); ++p) {
      const Vec& x_new = pend_x_[p];
      Vec column(n0 + p + 1);
      for (std::size_t i = 0; i < n0; ++i) {
        column[i] = kernel(x_new, base_->xs_[i]);
      }
      for (std::size_t i = 0; i < p; ++i) {
        column[n0 + i] = kernel(x_new, pend_x_[i]);
      }
      column[n0 + p] = kernel(x_new, x_new) + diag_shift;
      if (!ext_.extend(column)) {
        extended = false;
        break;
      }
      ++rows;
    }
    if (extended) {
      if (rows > 0) {
        obs::count(trace, "gp.chol_extend",
                   static_cast<std::uint64_t>(rows));
      }
    } else {
      // Fall back to one full jittered factorization of the combined
      // matrix — the same escape hatch fit() takes when an extension
      // loses positive definiteness.
      if (rows > 0) {
        obs::count(trace, "gp.chol_extend_abandoned",
                   static_cast<std::uint64_t>(rows));
      }
      obs::count(trace, "gp.hallucinate_fallback");
      Matrix k = kernel.gram(combined_inputs());
      k.add_diagonal(base_->noise_var_);
      full_.emplace(k);
      obs::count(trace, "gp.chol_refactor");
      if (full_->attempts() > 1) {
        obs::count(trace, "gp.jitter_escalation",
                   static_cast<std::uint64_t>(full_->attempts() - 1));
      }
    }

    Vec centered(n0 + pend_y_.size());
    for (std::size_t i = 0; i < n0; ++i) {
      centered[i] = base_->ys_[i] - y_mean_;
    }
    for (std::size_t i = 0; i < pend_y_.size(); ++i) {
      centered[n0 + i] = pend_y_[i] - y_mean_;
    }
    alpha_ = full_ ? full_->solve(centered) : ext_.solve(centered);
  }

  std::size_t dim() const override { return base_->dim(); }
  std::size_t num_points() const override {
    return base_->xs_.size() + pend_x_.size();
  }
  bool fitted() const override { return true; }
  double noise_variance() const override { return base_->noise_var_; }

  Prediction predict(const Vec& x) const override {
    EASYBO_REQUIRE(x.size() == dim(),
                   "HallucinatedGp::predict dim mismatch");
    const Kernel& kernel = *base_->kernel_;
    const std::size_t n0 = base_->xs_.size();
    Vec kstar(num_points());
    for (std::size_t i = 0; i < n0; ++i) {
      kstar[i] = kernel(x, base_->xs_[i]);
    }
    for (std::size_t j = 0; j < pend_x_.size(); ++j) {
      kstar[n0 + j] = kernel(x, pend_x_[j]);
    }
    const double mean = y_mean_ + linalg::dot(kstar, alpha_);
    const Vec z = full_ ? full_->solve_lower(kstar) : ext_.solve_lower(kstar);
    const double var = kernel(x, x) - linalg::dot(z, z);
    return {mean, std::max(var, 0.0)};
  }

  double predict_observation_var(const Vec& x) const override {
    return predict(x).var + base_->noise_var_;
  }

  Vec sample_posterior(const std::vector<Vec>& candidates,
                       Rng& rng) const override {
    EASYBO_REQUIRE(!candidates.empty(), "sample_posterior: no candidates");
    return exact_joint_sample(*base_->kernel_, combined_inputs(),
                              base_->noise_var_, *this, candidates, rng);
  }

 private:
  std::vector<Vec> combined_inputs() const {
    std::vector<Vec> all = base_->xs_;
    all.insert(all.end(), pend_x_.begin(), pend_x_.end());
    return all;
  }

  const GpRegressor* base_;  // borrowed; must stay alive and fitted
  std::vector<Vec> pend_x_;
  Vec pend_y_;  // pseudo targets: base predictive means
  double y_mean_ = 0.0;
  linalg::CholeskyExt ext_;
  std::optional<linalg::Cholesky> full_;  // fallback factor (rare)
  Vec alpha_;  // combined K^{-1} (y - mean)
};

std::unique_ptr<Regressor> GpRegressor::hallucinate(
    const std::vector<Vec>& pending, bool pin_mean) const {
  EASYBO_REQUIRE(fitted(), "hallucinate requires a fitted model");
  return std::make_unique<HallucinatedGp>(this, pending, pin_mean);
}

}  // namespace easybo::gp
