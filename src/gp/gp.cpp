#include "gp/gp.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.h"

namespace easybo::gp {

double Prediction::stddev() const { return std::sqrt(std::max(var, 0.0)); }

GpRegressor::GpRegressor(std::unique_ptr<Kernel> kernel, double noise_variance)
    : kernel_(std::move(kernel)), noise_var_(noise_variance) {
  EASYBO_REQUIRE(kernel_ != nullptr, "GpRegressor needs a kernel");
  EASYBO_REQUIRE(noise_var_ > 0.0, "noise variance must be positive");
}

GpRegressor::GpRegressor(const GpRegressor& other)
    : kernel_(other.kernel_->clone()),
      noise_var_(other.noise_var_),
      xs_(other.xs_),
      ys_(other.ys_),
      chol_(other.chol_),
      alpha_(other.alpha_),
      y_mean_(other.y_mean_),
      fitted_params_(other.fitted_params_),
      trace_(other.trace_) {}

GpRegressor& GpRegressor::operator=(const GpRegressor& other) {
  if (this == &other) return *this;
  kernel_ = other.kernel_->clone();
  noise_var_ = other.noise_var_;
  xs_ = other.xs_;
  ys_ = other.ys_;
  chol_ = other.chol_;
  alpha_ = other.alpha_;
  y_mean_ = other.y_mean_;
  fitted_params_ = other.fitted_params_;
  trace_ = other.trace_;
  return *this;
}

void GpRegressor::set_data(std::vector<Vec> xs, Vec ys) {
  EASYBO_REQUIRE(xs.size() == ys.size(),
                 "GpRegressor::set_data: |X| must equal |y|");
  for (const auto& x : xs) {
    EASYBO_REQUIRE(x.size() == dim(), "GpRegressor: input dim mismatch");
  }
  // Keep the factor when the new inputs are the old ones plus appended
  // points (the common BO case); fit() then extends incrementally.
  const bool appended =
      chol_.has_value() && xs.size() >= xs_.size() &&
      std::equal(xs_.begin(), xs_.end(), xs.begin());
  xs_ = std::move(xs);
  ys_ = std::move(ys);
  if (!appended) chol_.reset();
}

void GpRegressor::add_point(Vec x, double y) {
  EASYBO_REQUIRE(x.size() == dim(), "GpRegressor: input dim mismatch");
  xs_.push_back(std::move(x));
  ys_.push_back(y);
  // The factor (if any) still covers the first n-1 points; fit() extends.
}

void GpRegressor::fit() {
  EASYBO_REQUIRE(!xs_.empty(), "GpRegressor::fit: no training data");
  y_mean_ = 0.0;
  for (double y : ys_) y_mean_ += y;
  y_mean_ /= static_cast<double>(ys_.size());

  // Incremental fast path: extend the existing factor row by row while the
  // hyperparameters are unchanged and only appended points are missing.
  bool extended = chol_.has_value() && chol_->size() <= xs_.size() &&
                  chol_->size() > 0 && log_hyperparams() == fitted_params_;
  if (extended) {
    while (chol_->size() < xs_.size()) {
      const std::size_t n = chol_->size();
      const Vec& x_new = xs_[n];
      Vec column(n + 1);
      for (std::size_t i = 0; i < n; ++i) {
        column[i] = (*kernel_)(x_new, xs_[i]);
      }
      column[n] = (*kernel_)(x_new, x_new) + noise_var_;
      if (!chol_->extend(column)) {
        extended = false;  // lost positive definiteness: full refactor
        break;
      }
      obs::count(trace_, "gp.chol_extend");
    }
  }
  if (!extended || chol_->size() != xs_.size()) {
    Matrix k = kernel_->gram(xs_);
    k.add_diagonal(noise_var_);
    chol_.emplace(k);
    fitted_params_ = log_hyperparams();
    obs::count(trace_, "gp.chol_refactor");
    if (chol_->attempts() > 1) {
      obs::count(trace_, "gp.jitter_escalation",
                 static_cast<std::uint64_t>(chol_->attempts() - 1));
    }
  }

  Vec centered(ys_.size());
  for (std::size_t i = 0; i < ys_.size(); ++i) centered[i] = ys_[i] - y_mean_;
  alpha_ = chol_->solve(centered);
}

Prediction GpRegressor::predict(const Vec& x) const {
  EASYBO_REQUIRE(fitted(), "GpRegressor::predict before fit()");
  EASYBO_REQUIRE(x.size() == dim(), "GpRegressor::predict dim mismatch");
  const Vec kstar = kernel_->cross(x, xs_);
  const double mean = y_mean_ + linalg::dot(kstar, alpha_);
  // var = k(x,x) - ||L^{-1} k*||^2, clamped: round-off can push it below 0
  // when x coincides with a training point.
  const Vec z = chol_->solve_lower(kstar);
  const double var = (*kernel_)(x, x) - linalg::dot(z, z);
  return {mean, std::max(var, 0.0)};
}

double GpRegressor::predict_observation_var(const Vec& x) const {
  return predict(x).var + noise_var_;
}

double GpRegressor::log_marginal_likelihood() const {
  EASYBO_REQUIRE(fitted(), "log_marginal_likelihood before fit()");
  const auto n = static_cast<double>(xs_.size());
  double fit_term = 0.0;
  for (std::size_t i = 0; i < ys_.size(); ++i) {
    fit_term += (ys_[i] - y_mean_) * alpha_[i];
  }
  return -0.5 * fit_term - 0.5 * chol_->log_det() -
         0.5 * n * std::log(2.0 * std::numbers::pi);
}

Vec GpRegressor::lml_gradient() const {
  EASYBO_REQUIRE(fitted(), "lml_gradient before fit()");
  const std::size_t n = xs_.size();
  // W = alpha alpha^T - K^{-1}; dLML/dtheta = 0.5 tr(W dK/dtheta). The
  // inverse reuses the Cholesky factor (triangular inverse + symmetric
  // product) — this is the dominant cost of every trainer gradient step.
  const Matrix kinv = chol_->inverse();
  Matrix w(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      w(i, j) = alpha_[i] * alpha_[j] - kinv(i, j);
    }
  }
  const auto dks = kernel_->gram_gradients(xs_);
  Vec grad(kernel_->num_params() + 1, 0.0);
  for (std::size_t p = 0; p < dks.size(); ++p) {
    // Both W and dK/dtheta are symmetric: fold the off-diagonal half.
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += 0.5 * w(i, i) * dks[p](i, i);
      for (std::size_t j = 0; j < i; ++j) acc += w(i, j) * dks[p](i, j);
    }
    grad[p] = acc;
  }
  // Noise term: dK/dlog sn^2 = sn^2 I.
  double tr_w = 0.0;
  for (std::size_t i = 0; i < n; ++i) tr_w += w(i, i);
  grad.back() = 0.5 * noise_var_ * tr_w;
  return grad;
}

Vec GpRegressor::log_hyperparams() const {
  Vec lp = kernel_->log_params();
  lp.push_back(std::log(noise_var_));
  return lp;
}

void GpRegressor::set_log_hyperparams(const Vec& lp) {
  EASYBO_REQUIRE(lp.size() == kernel_->num_params() + 1,
                 "set_log_hyperparams: wrong parameter count");
  Vec kernel_lp(lp.begin(), lp.end() - 1);
  kernel_->set_log_params(kernel_lp);
  noise_var_ = std::exp(lp.back());
  chol_.reset();
}

GpRegressor GpRegressor::with_hallucinated(
    const std::vector<Vec>& pending) const {
  EASYBO_REQUIRE(fitted(), "with_hallucinated requires a fitted model");
  GpRegressor augmented(*this);
  for (const auto& x : pending) {
    const double mu = predict(x).mean;
    augmented.add_point(x, mu);
  }
  augmented.fit();
  return augmented;
}

}  // namespace easybo::gp
