#pragma once
/// \file gp.h
/// \brief Gaussian process regression (paper §II-B, Eq. 2).
///
/// The regressor implements the standard zero/constant-mean GP posterior
///   mu(x*)     = m + k(x*, X) K^{-1} (y - m)
///   sigma2(x*) = k(x*, x*) - k(x*, X) K^{-1} k(X, x*)
/// with K = k(X, X) + sn^2 I, via a jittered Cholesky factorization.
///
/// It also provides the hallucinated posterior used by EasyBO's
/// penalization scheme (paper §III-C): pending query points are appended to
/// the training set with their current predictive mean as pseudo
/// observations; the shrunken predictive deviation of the augmented model is
/// what Eq. 9 calls sigma-hat.

#include <memory>
#include <optional>
#include <vector>

#include "gp/kernel.h"
#include "linalg/cholesky.h"
#include "obs/trace.h"

namespace easybo::gp {

/// Posterior moments at a test point.
struct Prediction {
  double mean = 0.0;
  double var = 0.0;  ///< latent variance, >= 0

  double stddev() const;
};

/// Exact GP regressor with owned kernel and Gaussian observation noise.
///
/// Usage: construct with a kernel, set_data(), fit(), then predict().
/// Hyperparameters (kernel log-params + log noise variance) can be read and
/// written as one flat vector for maximum-likelihood training (see
/// gp/trainer.h). The model uses an empirical constant mean (the sample mean
/// of y) so callers need not pre-center observations.
class GpRegressor {
 public:
  /// \param kernel          covariance function (ownership transferred)
  /// \param noise_variance  sn^2, must be positive
  explicit GpRegressor(std::unique_ptr<Kernel> kernel,
                       double noise_variance = 1e-6);

  GpRegressor(const GpRegressor& other);
  GpRegressor& operator=(const GpRegressor& other);
  GpRegressor(GpRegressor&&) noexcept = default;
  GpRegressor& operator=(GpRegressor&&) noexcept = default;

  /// Replaces the training set. Invalidates any previous fit.
  void set_data(std::vector<Vec> xs, Vec ys);

  /// Appends one observation. Invalidates any previous fit.
  void add_point(Vec x, double y);

  /// Factorizes the covariance matrix with the current hyperparameters.
  /// Must be called after data or hyperparameter changes, before predict().
  ///
  /// Incremental fast path: when points were only APPENDED since the last
  /// fit and the hyperparameters are unchanged, the existing Cholesky
  /// factor is extended one row at a time (O(n^2) per point instead of the
  /// O(n^3) refactorization) — this is what keeps the asynchronous loop's
  /// per-observation model refresh and the hallucinated batch posteriors
  /// cheap. Falls back to the full factorization automatically when the
  /// extension would lose positive definiteness.
  void fit();

  bool fitted() const {
    return chol_.has_value() && chol_->size() == xs_.size() &&
           alpha_.size() == xs_.size();
  }
  std::size_t num_points() const { return xs_.size(); }
  std::size_t dim() const { return kernel_->dim(); }
  const std::vector<Vec>& inputs() const { return xs_; }
  const Vec& targets() const { return ys_; }
  const Kernel& kernel() const { return *kernel_; }

  /// Posterior mean and latent variance at x (Eq. 2). Requires fitted().
  Prediction predict(const Vec& x) const;

  /// Variance including observation noise (for posterior sampling of y).
  double predict_observation_var(const Vec& x) const;

  /// Log marginal likelihood of the training data under the current
  /// hyperparameters. Requires fitted().
  double log_marginal_likelihood() const;

  /// Gradient of the log marginal likelihood w.r.t. the flat log
  /// hyperparameter vector [kernel params..., log sn^2]. Requires fitted().
  /// O(n^3) — used only during hyperparameter training.
  Vec lml_gradient() const;

  /// Flat hyperparameters: kernel log-params followed by log noise variance.
  Vec log_hyperparams() const;

  /// Sets the flat hyperparameters. Invalidates any previous fit.
  void set_log_hyperparams(const Vec& lp);

  double noise_variance() const { return noise_var_; }

  /// Hallucinated model for batch penalization: returns a copy whose
  /// training set is D ∪ {pending, mu(pending)} (pseudo observations at the
  /// current predictive mean), already fitted. Hyperparameters are copied,
  /// NOT re-optimized (paper §III-C / Algorithm 1 line 6).
  GpRegressor with_hallucinated(const std::vector<Vec>& pending) const;

  /// Installs a non-owning trace sink (nullptr = off, the default).
  /// fit() then counts "gp.chol_refactor" (full O(n^3) factorizations),
  /// "gp.chol_extend" (O(n^2) incremental rows) and
  /// "gp.jitter_escalation" (jitter retries inside a refactorization).
  /// Copies — including the hallucinated posteriors — inherit the sink,
  /// so their Cholesky work is counted too.
  void set_trace(obs::TraceSink* sink) { trace_ = sink; }
  obs::TraceSink* trace() const { return trace_; }

 private:
  std::unique_ptr<Kernel> kernel_;
  double noise_var_;
  std::vector<Vec> xs_;
  Vec ys_;

  // Fit state.
  std::optional<linalg::Cholesky> chol_;
  Vec alpha_;       // K^{-1} (y - mean)
  double y_mean_ = 0.0;
  Vec fitted_params_;  // hyperparameters the factor was built with

  obs::TraceSink* trace_ = nullptr;  // non-owning; nullptr = no tracing
};

}  // namespace easybo::gp
