#pragma once
/// \file gp.h
/// \brief Exact Gaussian process regression (paper §II-B, Eq. 2).
///
/// The regressor implements the standard zero/constant-mean GP posterior
///   mu(x*)     = m + k(x*, X) K^{-1} (y - m)
///   sigma2(x*) = k(x*, x*) - k(x*, X) K^{-1} k(X, x*)
/// with K = k(X, X) + sn^2 I, via a jittered Cholesky factorization.
///
/// It also provides the hallucinated posterior used by EasyBO's
/// penalization scheme (paper §III-C): pending query points are appended to
/// the training set with their current predictive mean as pseudo
/// observations; the shrunken predictive deviation of the augmented model is
/// what Eq. 9 calls sigma-hat. hallucinate() serves it as a zero-copy
/// overlay over the base factor; with_hallucinated() is the materialized
/// deep-copy reference the overlay is proven bit-identical against.

#include <memory>
#include <optional>
#include <vector>

#include "gp/kernel.h"
#include "gp/regressor.h"
#include "linalg/cholesky.h"
#include "obs/trace.h"

namespace easybo::gp {

/// Exact GP regressor with owned kernel and Gaussian observation noise.
///
/// Usage: construct with a kernel, set_data(), fit(), then predict().
/// Hyperparameters (kernel log-params + log noise variance) can be read and
/// written as one flat vector for maximum-likelihood training (see
/// gp/trainer.h). The model uses an empirical constant mean (the sample mean
/// of y) so callers need not pre-center observations.
class GpRegressor final : public TrainableRegressor {
 public:
  /// \param kernel          covariance function (ownership transferred)
  /// \param noise_variance  sn^2, must be positive
  explicit GpRegressor(std::unique_ptr<Kernel> kernel,
                       double noise_variance = 1e-6);

  GpRegressor(const GpRegressor& other);
  GpRegressor& operator=(const GpRegressor& other);
  GpRegressor(GpRegressor&&) noexcept = default;
  GpRegressor& operator=(GpRegressor&&) noexcept = default;

  /// Replaces the training set. Invalidates any previous fit.
  void set_data(std::vector<Vec> xs, Vec ys) override;

  /// Appends one observation. Invalidates any previous fit.
  void add_point(Vec x, double y) override;

  /// Factorizes the covariance matrix with the current hyperparameters.
  /// Must be called after data or hyperparameter changes, before predict().
  ///
  /// Incremental fast path: when points were only APPENDED since the last
  /// fit and the hyperparameters are unchanged, the existing Cholesky
  /// factor is extended one row at a time (O(n^2) per point instead of the
  /// O(n^3) refactorization) — this is what keeps the asynchronous loop's
  /// per-observation model refresh and the hallucinated batch posteriors
  /// cheap. Extended diagonal entries include the base factor's jitter so
  /// incremental and full fits factor the same matrix. Falls back to the
  /// full factorization automatically when the extension would lose
  /// positive definiteness.
  void fit() override;

  bool fitted() const override {
    return chol_.has_value() && chol_->size() == xs_.size() &&
           alpha_.size() == xs_.size();
  }
  std::size_t num_points() const override { return xs_.size(); }
  std::size_t dim() const override { return kernel_->dim(); }
  const std::vector<Vec>& inputs() const { return xs_; }
  const Vec& targets() const { return ys_; }
  const Kernel& kernel() const { return *kernel_; }

  /// Posterior mean and latent variance at x (Eq. 2). Requires fitted().
  Prediction predict(const Vec& x) const override;

  /// Posterior mean only — O(n) against the cached alpha, skipping the
  /// O(n^2) variance solve. Bit-identical to predict(x).mean.
  double predict_mean(const Vec& x) const;

  /// Variance including observation noise (for posterior sampling of y).
  double predict_observation_var(const Vec& x) const override;

  /// Log marginal likelihood of the training data under the current
  /// hyperparameters. Requires fitted().
  double log_marginal_likelihood() const override;

  /// Gradient of the log marginal likelihood w.r.t. the flat log
  /// hyperparameter vector [kernel params..., log sn^2]. Requires fitted().
  /// O(n^3) — used only during hyperparameter training.
  Vec lml_gradient() const override;
  bool supports_lml_gradient() const override { return true; }

  /// Flat hyperparameters: kernel log-params followed by log noise variance.
  Vec log_hyperparams() const override;

  /// Sets the flat hyperparameters. Invalidates any previous fit.
  void set_log_hyperparams(const Vec& lp) override;

  double noise_variance() const override { return noise_var_; }

  /// One joint posterior sample over \p candidates: O(m^2 n + m^3) for m
  /// candidates (cross covariances + a Cholesky of the m x m posterior
  /// covariance). Draws exactly m normals from \p rng.
  Vec sample_posterior(const std::vector<Vec>& candidates,
                       Rng& rng) const override;

  /// Hallucinated posterior for batch penalization (paper §III-C /
  /// Algorithm 1 line 6) as a zero-copy overlay: the pending points'
  /// factor rows are appended over the base factor (linalg::CholeskyExt),
  /// no training data or O(n^2) triangle is copied. Predictions and
  /// posterior samples are bit-identical to with_hallucinated(). This
  /// model must stay alive, unmodified and fitted while the overlay is in
  /// use.
  std::unique_ptr<Regressor> hallucinate(const std::vector<Vec>& pending,
                                         bool pin_mean) const override;

  /// Materialized hallucinated model: a full copy whose training set is
  /// D ∪ {pending, mu(pending)} (pseudo observations at the current
  /// predictive mean), already fitted. Hyperparameters are copied, NOT
  /// re-optimized. Kept as the reference implementation hallucinate() is
  /// tested bit-identical against — production paths use the overlay.
  ///
  /// \param pin_mean  keep this model's empirical mean instead of
  ///                  recomputing it over data + pseudo observations.
  GpRegressor with_hallucinated(const std::vector<Vec>& pending,
                                bool pin_mean = false) const;

  /// Installs a non-owning trace sink (nullptr = off, the default).
  /// fit() then counts "gp.chol_refactor" (full O(n^3) factorizations),
  /// "gp.chol_extend" (O(n^2) incremental rows that made it into the
  /// final factor), "gp.chol_extend_abandoned" (rows extended but
  /// discarded by a mid-extension fallback) and "gp.jitter_escalation"
  /// (jitter retries inside a refactorization). Copies — including the
  /// hallucinated posteriors — inherit the sink, so their Cholesky work
  /// is counted too.
  void set_trace(obs::TraceSink* sink) override { trace_ = sink; }
  obs::TraceSink* trace() const { return trace_; }

  const char* backend_name() const override { return "exact"; }

  /// The current factor (requires fitted()); read by the hallucination
  /// overlay and by tests asserting jitter behaviour.
  const linalg::Cholesky& factor() const { return *chol_; }

  /// The empirical constant mean of the current fit.
  double empirical_mean() const { return y_mean_; }

 private:
  friend class HallucinatedGp;

  /// fit() with an optionally pinned constant mean (hallucination's
  /// pin_mean semantics); nullptr recomputes the empirical mean.
  void fit_impl(const double* pinned_mean);

  std::unique_ptr<Kernel> kernel_;
  double noise_var_;
  std::vector<Vec> xs_;
  Vec ys_;

  // Fit state.
  std::optional<linalg::Cholesky> chol_;
  Vec alpha_;       // K^{-1} (y - mean)
  double y_mean_ = 0.0;
  Vec fitted_params_;  // hyperparameters the factor was built with

  obs::TraceSink* trace_ = nullptr;  // non-owning; nullptr = no tracing
};

}  // namespace easybo::gp
