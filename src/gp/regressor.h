#pragma once
/// \file regressor.h
/// \brief The regressor seam: every surrogate model the BO loop can run on.
///
/// Two interfaces, split by who consumes them:
///
///  - Regressor: the read-only posterior surface the acquisition layer
///    needs — predict(), joint posterior sampling, and the few scalars
///    acquisitions read. Hallucinated overlays implement exactly this
///    (they are immutable views, never refit).
///  - TrainableRegressor: what the BO core owns — data mutation, fitting,
///    flat log-hyperparameter access for MLE training and checkpointing,
///    and hallucinate(), which produces the penalization posterior
///    (paper §III-C) as a cheap Regressor without copying the model.
///
/// Backends: gp/gp.h (GpRegressor, the exact jittered-Cholesky GP) and
/// gp/rff.h (RffRegressor, the random-Fourier-feature approximation for
/// n >> 1000). Select per run via BoConfig::gp_backend.

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "linalg/vec.h"
#include "obs/trace.h"

namespace easybo::gp {

using linalg::Vec;

/// Posterior moments at a test point.
struct Prediction {
  double mean = 0.0;
  double var = 0.0;  ///< latent variance, >= 0

  double stddev() const { return std::sqrt(std::max(var, 0.0)); }
};

/// Read-only posterior surface consumed by the acquisition layer. The
/// owner must keep the model alive and fitted while acquisitions
/// referencing it are in use.
class Regressor {
 public:
  virtual ~Regressor() = default;

  virtual std::size_t dim() const = 0;
  virtual std::size_t num_points() const = 0;
  virtual bool fitted() const = 0;

  /// Posterior mean and latent variance at x (Eq. 2). Requires fitted().
  virtual Prediction predict(const Vec& x) const = 0;

  /// Variance including observation noise (for posterior sampling of y).
  virtual double predict_observation_var(const Vec& x) const = 0;

  virtual double noise_variance() const = 0;

  /// One joint sample of the posterior over \p candidates (Thompson
  /// sampling). Returns the sampled latent values, one per candidate.
  /// Consumes \p rng; the draw count is backend-specific but deterministic
  /// for a given backend + candidate count.
  virtual Vec sample_posterior(const std::vector<Vec>& candidates,
                               Rng& rng) const = 0;
};

/// A regressor the BO core can feed, fit, train and checkpoint.
class TrainableRegressor : public Regressor {
 public:
  /// Replaces the training set. Invalidates any previous fit.
  virtual void set_data(std::vector<Vec> xs, Vec ys) = 0;

  /// Appends one observation. Invalidates any previous fit.
  virtual void add_point(Vec x, double y) = 0;

  /// (Re)builds the fit state for the current data + hyperparameters.
  /// Backends keep this incremental when only appends happened.
  virtual void fit() = 0;

  /// Log marginal likelihood of the training data. Requires fitted().
  virtual double log_marginal_likelihood() const = 0;

  /// Analytic LML gradient w.r.t. the flat log hyperparameters. Only
  /// valid when supports_lml_gradient(); gp::train_mle requires it —
  /// backends without it are trained through an exact-GP proxy on a
  /// data subset (see AskTellCore::update_model).
  virtual Vec lml_gradient() const = 0;
  virtual bool supports_lml_gradient() const = 0;

  /// Flat hyperparameters: kernel log-params followed by log noise
  /// variance. The layout is shared across backends so checkpoints can
  /// restore either one.
  virtual Vec log_hyperparams() const = 0;
  virtual void set_log_hyperparams(const Vec& lp) = 0;

  /// The hallucinated posterior for batch penalization (paper §III-C):
  /// pending points conditioned at their current predictive mean, so the
  /// returned model's stddev is Eq. 9's sigma-hat. The view borrows this
  /// model — it must stay alive, unmodified and fitted while the overlay
  /// is in use (one proposal's acquisition maximization).
  ///
  /// \param pin_mean  keep the base model's empirical constant mean
  ///                  instead of recomputing it over data + pseudo
  ///                  observations (BoConfig::pin_hallucinated_mean).
  virtual std::unique_ptr<Regressor> hallucinate(
      const std::vector<Vec>& pending, bool pin_mean) const = 0;

  /// Installs a non-owning trace sink (nullptr = off, the default).
  virtual void set_trace(obs::TraceSink* sink) = 0;

  /// Stable backend identifier ("exact" | "rff") for logs and errors.
  virtual const char* backend_name() const = 0;
};

}  // namespace easybo::gp
