#pragma once
/// \file kernel.h
/// \brief Covariance kernels for Gaussian process regression.
///
/// The paper uses the squared-exponential ARD kernel (§II-B):
///   k_SE(xi, xj) = sf^2 * exp(-1/2 (xi-xj)^T diag(l)^-2 (xi-xj)).
/// A Matérn-5/2 ARD alternative is provided as an extension (selectable via
/// easybo::Config::kernel).
///
/// Hyperparameters are exposed as a flat vector of LOG values
/// [log sf^2, log l_1, ..., log l_d] so that unconstrained gradient-based
/// maximum-likelihood training is straightforward; the observation noise
/// log sn^2 lives in the regressor, not the kernel.

#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/vec.h"

namespace easybo::gp {

using linalg::Matrix;
using linalg::Vec;

/// Abstract stationary ARD kernel.
class Kernel {
 public:
  virtual ~Kernel() = default;

  /// Input dimensionality d.
  virtual std::size_t dim() const = 0;

  /// Number of hyperparameters (d + 1 for the ARD kernels here).
  virtual std::size_t num_params() const = 0;

  /// Current hyperparameters in log space.
  virtual Vec log_params() const = 0;

  /// Replaces hyperparameters (log space); size must equal num_params().
  virtual void set_log_params(const Vec& lp) = 0;

  /// k(a, b) for two points of dimension dim().
  virtual double operator()(const Vec& a, const Vec& b) const = 0;

  /// Gram matrix K(X, X) for rows of X (n x d).
  virtual Matrix gram(const std::vector<Vec>& xs) const;

  /// Cross-covariance vector k(x*, X).
  virtual Vec cross(const Vec& x, const std::vector<Vec>& xs) const;

  /// Partial derivatives of the Gram matrix w.r.t. each log-hyperparameter:
  /// out[p](i, j) = d K_ij / d log_params[p]. Used by the LML gradient.
  virtual std::vector<Matrix> gram_gradients(
      const std::vector<Vec>& xs) const = 0;

  /// Deep copy (regressors own their kernel).
  virtual std::unique_ptr<Kernel> clone() const = 0;

  virtual std::string name() const = 0;
};

/// Squared-exponential (RBF) kernel with automatic relevance determination.
class SquaredExponentialArd final : public Kernel {
 public:
  /// d-dimensional kernel with unit signal variance and lengthscales.
  explicit SquaredExponentialArd(std::size_t dim);

  /// Explicit hyperparameters: signal variance sf2 and per-dimension
  /// lengthscales (both in linear space, must be positive).
  SquaredExponentialArd(double sf2, Vec lengthscales);

  std::size_t dim() const override { return lengthscales_.size(); }
  std::size_t num_params() const override { return dim() + 1; }
  Vec log_params() const override;
  void set_log_params(const Vec& lp) override;
  double operator()(const Vec& a, const Vec& b) const override;
  std::vector<Matrix> gram_gradients(
      const std::vector<Vec>& xs) const override;
  std::unique_ptr<Kernel> clone() const override;
  std::string name() const override { return "SE-ARD"; }

  double signal_variance() const { return sf2_; }
  const Vec& lengthscales() const { return lengthscales_; }

 private:
  double sf2_ = 1.0;
  Vec lengthscales_;
};

/// Matérn-5/2 kernel with ARD lengthscales (extension beyond the paper).
class Matern52Ard final : public Kernel {
 public:
  explicit Matern52Ard(std::size_t dim);
  Matern52Ard(double sf2, Vec lengthscales);

  std::size_t dim() const override { return lengthscales_.size(); }
  std::size_t num_params() const override { return dim() + 1; }
  Vec log_params() const override;
  void set_log_params(const Vec& lp) override;
  double operator()(const Vec& a, const Vec& b) const override;
  std::vector<Matrix> gram_gradients(
      const std::vector<Vec>& xs) const override;
  std::unique_ptr<Kernel> clone() const override;
  std::string name() const override { return "Matern52-ARD"; }

  double signal_variance() const { return sf2_; }
  const Vec& lengthscales() const { return lengthscales_; }

 private:
  double sf2_ = 1.0;
  Vec lengthscales_;
};

/// Factory by name ("se" | "matern52"), used by easybo::Config.
std::unique_ptr<Kernel> make_kernel(const std::string& name, std::size_t dim);

}  // namespace easybo::gp
