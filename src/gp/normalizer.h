#pragma once
/// \file normalizer.h
/// \brief Input box-normalization and target standardization.
///
/// The BO stack always models in normalized coordinates: design points are
/// mapped into [0,1]^d (so one set of lengthscale priors fits every circuit)
/// and observed FOM values are z-scored (so the mu/sigma balance in the UCB
/// family of acquisitions is scale-free). These helpers are the single
/// source of truth for those transforms.

#include "linalg/vec.h"

namespace easybo::gp {

using linalg::Vec;

/// Affine map between a design box [lo, hi] and the unit cube [0,1]^d.
class BoxNormalizer {
 public:
  BoxNormalizer() = default;

  /// Requires lo[i] < hi[i] for every dimension.
  BoxNormalizer(Vec lower, Vec upper);

  std::size_t dim() const { return lower_.size(); }
  const Vec& lower() const { return lower_; }
  const Vec& upper() const { return upper_; }

  /// Design space -> unit cube.
  Vec to_unit(const Vec& x) const;

  /// Unit cube -> design space.
  Vec from_unit(const Vec& u) const;

 private:
  Vec lower_;
  Vec upper_;
};

/// Online z-score transform for observations.
///
/// refit() recomputes mean/std from the full current sample (the BO loop
/// refits whenever the GP is refit). Degenerate samples (constant y) fall
/// back to unit scale so the transform stays invertible.
class ZScore {
 public:
  /// Recomputes the transform from the given sample (may be empty: identity).
  void refit(const Vec& ys);

  double mean() const { return mean_; }
  double scale() const { return scale_; }

  double transform(double y) const { return (y - mean_) / scale_; }
  Vec transform(const Vec& ys) const;

  double inverse(double z) const { return z * scale_ + mean_; }

  /// Standard deviations transform multiplicatively (no shift).
  double inverse_stddev(double sd) const { return sd * scale_; }

 private:
  double mean_ = 0.0;
  double scale_ = 1.0;
};

}  // namespace easybo::gp
