#pragma once
/// \file trainer.h
/// \brief Maximum-likelihood hyperparameter training for GP regressors.
///
/// Maximizes the log marginal likelihood over the flat log-hyperparameter
/// vector with Adam (analytic gradients from lml_gradient()), multi-started
/// from the current parameters plus random restarts. Box constraints in log
/// space keep lengthscales/noise in sane ranges for inputs normalized to
/// [0,1]^d and standardized targets.
///
/// Works on any TrainableRegressor with supports_lml_gradient(); backends
/// without an analytic gradient (gp/rff.h) are trained through an exact-GP
/// proxy on a data subset instead (see AskTellCore::update_model).

#include <cmath>

#include "common/rng.h"
#include "common/stop_token.h"
#include "gp/regressor.h"

namespace easybo::gp {

/// Options for the MLE trainer; defaults are tuned for the experiment
/// regime of the paper (n <= ~500, d <= ~16, normalized inputs).
struct TrainerOptions {
  int max_iters = 40;          ///< Adam steps per start
  int restarts = 2;            ///< random restarts in addition to warm start
  double learning_rate = 0.1;  ///< Adam step size in log space
  double tol = 1e-5;           ///< stop when |grad|_inf < tol

  // Box constraints (log space). Defaults assume x in [0,1]^d, y z-scored.
  double log_sf2_min = std::log(1e-4);
  double log_sf2_max = std::log(1e4);
  double log_len_min = std::log(5e-3);
  double log_len_max = std::log(1e2);
  double log_noise_min = std::log(1e-8);
  double log_noise_max = std::log(1e-1);
};

/// Result of one training call.
struct TrainResult {
  double log_marginal_likelihood = 0.0;
  int iterations = 0;   ///< total Adam steps across all starts
  int starts = 0;       ///< number of starts actually run
};

/// Trains \p model in place: on return the model holds the best
/// hyperparameters found and is fitted. The warm start (current parameters)
/// is always one of the candidates — and is fitted and scored exactly once
/// — so training can never make the stored likelihood worse. Requires
/// model.supports_lml_gradient().
///
/// \p stop is polled between Adam iterations and between restarts;
/// common::Cancelled unwinds mid-training with the model left at
/// whatever hyperparameters the last evaluate() set — callers must
/// treat the model as dirty and discard or refit it (the serve layer
/// drops the whole session object). Polls consume no RNG.
TrainResult train_mle(TrainableRegressor& model, Rng& rng,
                      const TrainerOptions& options = {},
                      const common::StopToken* stop = nullptr);

}  // namespace easybo::gp
