#include "gp/trainer.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.h"

namespace easybo::gp {

namespace {

/// Clamps the flat log-hyperparameter vector into the trainer's box.
/// Layout: [log sf2, log l_1..log l_d, log sn2].
void clamp_params(Vec& lp, const TrainerOptions& opt) {
  lp.front() = std::clamp(lp.front(), opt.log_sf2_min, opt.log_sf2_max);
  for (std::size_t i = 1; i + 1 < lp.size(); ++i) {
    lp[i] = std::clamp(lp[i], opt.log_len_min, opt.log_len_max);
  }
  lp.back() = std::clamp(lp.back(), opt.log_noise_min, opt.log_noise_max);
}

/// Random start: unit signal variance, lengthscales log-uniform in a
/// moderate band, small noise.
Vec random_start(std::size_t num_params, Rng& rng,
                 const TrainerOptions& opt) {
  Vec lp(num_params);
  lp.front() = rng.uniform(std::log(0.5), std::log(4.0));
  for (std::size_t i = 1; i + 1 < num_params; ++i) {
    lp[i] = rng.uniform(std::log(0.05), std::log(2.0));
  }
  lp.back() = rng.uniform(opt.log_noise_min, std::log(1e-3));
  clamp_params(lp, opt);
  return lp;
}

/// Fits the model at lp and returns the LML, or -inf when the covariance is
/// numerically hopeless at these hyperparameters.
double evaluate(TrainableRegressor& model, const Vec& lp) {
  model.set_log_hyperparams(lp);
  try {
    model.fit();
    const double lml = model.log_marginal_likelihood();
    return std::isfinite(lml) ? lml
                              : -std::numeric_limits<double>::infinity();
  } catch (const NumericalError&) {
    return -std::numeric_limits<double>::infinity();
  }
}

}  // namespace

TrainResult train_mle(TrainableRegressor& model, Rng& rng,
                      const TrainerOptions& opt,
                      const common::StopToken* stop) {
  EASYBO_REQUIRE(model.num_points() > 0, "train_mle: model has no data");
  EASYBO_REQUIRE(opt.max_iters >= 1 && opt.restarts >= 0,
                 "train_mle: invalid options");
  EASYBO_REQUIRE(model.supports_lml_gradient(),
                 "train_mle needs an analytic LML gradient; train this "
                 "backend through an exact-GP proxy instead");

  const std::size_t p = model.log_hyperparams().size();
  TrainResult result;

  Vec best_lp = model.log_hyperparams();
  clamp_params(best_lp, opt);
  double best_lml = evaluate(model, best_lp);

  constexpr double kBeta1 = 0.9;
  constexpr double kBeta2 = 0.999;
  constexpr double kEps = 1e-8;

  // Runs Adam from `start`, whose fit and likelihood `start_lml` the caller
  // already computed — the model must currently be fitted at `start`. This
  // shape lets the warm start reuse its baseline evaluation instead of
  // refitting the same O(n^3) covariance twice.
  const auto descend = [&](const Vec& start, double start_lml) {
    ++result.starts;
    if (!std::isfinite(start_lml)) return;
    Vec lp = start;
    double lml = start_lml;

    Vec m(p, 0.0), v(p, 0.0);
    for (int it = 1; it <= opt.max_iters; ++it) {
      if (stop != nullptr) stop->check("hyperparameter training");
      ++result.iterations;
      const Vec grad = model.lml_gradient();
      double gmax = 0.0;
      for (double g : grad) gmax = std::max(gmax, std::abs(g));
      if (gmax < opt.tol) break;

      // Adam ascent step in log space.
      Vec next = lp;
      for (std::size_t i = 0; i < p; ++i) {
        m[i] = kBeta1 * m[i] + (1.0 - kBeta1) * grad[i];
        v[i] = kBeta2 * v[i] + (1.0 - kBeta2) * grad[i] * grad[i];
        const double mhat = m[i] / (1.0 - std::pow(kBeta1, it));
        const double vhat = v[i] / (1.0 - std::pow(kBeta2, it));
        next[i] += opt.learning_rate * mhat / (std::sqrt(vhat) + kEps);
      }
      clamp_params(next, opt);

      const double next_lml = evaluate(model, next);
      if (!std::isfinite(next_lml)) break;  // stepped into a bad region
      lp = next;
      lml = next_lml;
    }

    if (lml > best_lml) {
      best_lml = lml;
      best_lp = lp;
    }
  };

  descend(best_lp, best_lml);  // warm start, already evaluated above
  for (int r = 0; r < opt.restarts; ++r) {
    if (stop != nullptr) stop->check("hyperparameter training restart");
    const Vec start = random_start(p, rng, opt);
    descend(start, evaluate(model, start));
  }

  // Leave the model fitted at the best hyperparameters found.
  model.set_log_hyperparams(best_lp);
  model.fit();
  result.log_marginal_likelihood = model.log_marginal_likelihood();
  return result;
}

}  // namespace easybo::gp
