#pragma once
/// \file engine.h
/// \brief The BO engine: sequential, synchronous-batch and asynchronous-
/// batch Bayesian optimization drivers over a pluggable executor.
///
/// This implements the paper's Algorithm 1 (EasyBO) plus every comparison
/// algorithm of §IV, all sharing one GP stack, one acquisition maximizer
/// and one execution seam (sched::Executor) so that measured differences
/// come from the algorithm design (issue policy, weight distribution,
/// penalization), not from implementation asymmetries. The same code path
/// drives the virtual-time scheduler (experiments) and a real std::thread
/// pool (production use) — see sched/executor.h.
///
/// The engine models in normalized space: inputs are mapped to [0,1]^d and
/// observations are z-scored before GP fitting, so mu and sigma in the
/// weighted acquisitions are commensurate regardless of the circuit's FOM
/// scale. Hyperparameters are re-trained on a geometrically thinning
/// schedule (every refit_every observations early on, stretching by 1.5x
/// as the dataset grows), warm-started from the previous optimum.

#include <functional>
#include <memory>
#include <string>

#include "acq/thompson.h"
#include "bo/config.h"
#include "bo/result.h"
#include "common/rng.h"
#include "gp/gp.h"
#include "gp/normalizer.h"
#include "obs/recording.h"
#include "opt/objective.h"
#include "sched/executor.h"
#include "sched/supervisor.h"

namespace easybo::bo {

/// One optimization run of one algorithm configuration on one problem.
///
/// The objective is evaluated through an executor: on the default
/// VirtualExecutor each evaluation costs sim_time(x) virtual seconds on
/// one of `batch` workers; on a ThreadExecutor it runs for real on a
/// worker thread. The issue policy is the configured Mode. Construct,
/// call run(), read the BoResult.
class BoEngine {
 public:
  /// \param config     algorithm configuration (validated here)
  /// \param bounds     design box (the engine normalizes internally)
  /// \param objective  the FOM to maximize (paper Eq. 1)
  /// \param sim_time   virtual duration of one evaluation; defaults to a
  ///                   constant 1s when null (pure sample-efficiency runs)
  BoEngine(BoConfig config, opt::Bounds bounds, opt::Objective objective,
           std::function<double(const Vec&)> sim_time = nullptr);

  /// Executes the full run on a VirtualExecutor with `batch` workers
  /// (one in Sequential mode). Call once per engine instance.
  BoResult run();

  /// Executes the full run on the given executor; its worker count is the
  /// effective degree of parallelism (Sequential mode still issues one
  /// point at a time). Call once per engine instance. Every evaluation is
  /// supervised (sched::EvalSupervisor, configured from the BoConfig
  /// eval_* knobs); what happens when one ultimately fails is
  /// BoConfig::on_eval_failure — under the default Abort policy worker
  /// exceptions propagate out of this call with the run aborted, exactly
  /// the pre-supervision behavior.
  BoResult run(sched::Executor& exec);

  /// Installs a non-owning trace sink for the run (call before run();
  /// nullptr restores the zero-cost null default). When the sink is an
  /// obs::RecordingSink, run() additionally assembles its contents — plus
  /// the executor's per-worker busy/idle — into BoResult::metrics.
  /// BoConfig::collect_metrics is the self-contained variant: the engine
  /// then owns a RecordingSink and installs it here itself.
  void set_trace(obs::TraceSink* sink);

 private:
  // --- model management -------------------------------------------------
  /// Re-standardizes y, re-fits the GP; trains hyperparameters when the
  /// thinning schedule says so (or when force_train).
  void update_model(bool force_train);

  /// Index of the incumbent (max observed y).
  std::size_t incumbent_index() const;

  // --- proposal ---------------------------------------------------------
  /// Proposes the next query point (unit space). \p pending holds the
  /// unit-space points currently under evaluation (for hallucination);
  /// \p slot is the batch slot index (selects the pBO/pHCBO weight).
  Vec propose(const std::vector<Vec>& pending, std::size_t slot);

  /// Thompson-sampling proposal (AcqKind::Ts).
  Vec propose_thompson(const std::vector<Vec>& pending);

  /// GP-Hedge portfolio proposal (AcqKind::Hedge).
  Vec propose_hedge(const std::vector<Vec>& pending);

  /// Nudges a proposal that collides with an observed, pending, or
  /// previously-failed point.
  Vec dedup(Vec x, const std::vector<Vec>& pending);

  // --- run phases ---------------------------------------------------------
  void run_init_phase(sched::EvalSupervisor& sup, BoResult& result);
  void run_sequential(sched::EvalSupervisor& sup, BoResult& result);
  void run_sync_batch(sched::EvalSupervisor& sup, BoResult& result);
  void run_async_batch(sched::EvalSupervisor& sup, BoResult& result);

  /// Submits proposal (unit space) to the supervisor, bookkeeping the tag
  /// and counting it against the simulation budget (issued_).
  void submit(sched::EvalSupervisor& sup, Vec unit_x, bool is_init);

  /// Handles one supervised outcome: records an observation on success,
  /// applies cfg_.on_eval_failure otherwise (Abort rethrows out of run()).
  /// Returns whether the model's dataset changed (real or pseudo
  /// observation added).
  bool handle(const sched::SupervisedCompletion& sc, BoResult& result);

  /// Appends one entry to the per-eval outcome log (metrics "evals").
  void log_eval(const sched::SupervisedCompletion& sc, const char* action);

  /// wait_next()/wait_all() wrapped in a Phase::ExecutorWait span.
  sched::SupervisedCompletion timed_wait(sched::EvalSupervisor& sup);
  std::vector<sched::SupervisedCompletion> timed_wait_all(
      sched::EvalSupervisor& sup);

  /// Copies the recording sink (when one is installed) into
  /// result.metrics, grafting on the executor's worker stats.
  void finalize_metrics(sched::Executor& exec, BoResult& result);

  BoConfig cfg_;
  opt::Bounds bounds_;
  opt::Objective objective_;
  std::function<double(const Vec&)> sim_time_;
  Rng rng_;
  gp::BoxNormalizer box_;
  gp::ZScore zscore_;
  gp::GpRegressor model_;

  // Observations (unit space + raw y). Penalized failures appear here as
  // pseudo-observations; discarded failures do not.
  std::vector<Vec> obs_x_;
  Vec obs_y_;
  std::vector<bool> obs_is_init_;

  // Discarded failure locations (unit space), kept so dedup never
  // re-proposes a crashing point verbatim.
  std::vector<Vec> failed_x_;

  // Evaluations issued so far (submissions, not observations): the
  // simulation-budget clock. With no failures this equals the observation
  // count, preserving the pre-supervision schedules bit for bit.
  std::size_t issued_ = 0;

  // Proposals by tag: the executor's completion tag indexes these.
  std::vector<Vec> prop_x_;       // unit space
  std::vector<bool> prop_init_;

  // pHCBO per-weight-slot penalty history.
  std::vector<acq::HighCoveragePenalty> hc_penalties_;

  // GP-Hedge state (AcqKind::Hedge): portfolio gains and the members'
  // last nominees awaiting their reward.
  acq::HedgePortfolio hedge_;
  std::vector<Vec> hedge_nominees_;

  std::size_t next_hyper_refit_ = 0;
  std::size_t hyper_refits_ = 0;

  // Observability (src/obs). trace_ is non-owning and nullptr by default
  // (the zero-cost null sink); owned_recorder_ backs it only when
  // cfg_.collect_metrics asked the engine to record itself.
  obs::TraceSink* trace_ = nullptr;
  std::unique_ptr<obs::RecordingSink> owned_recorder_;
  std::string proposal_counter_;  // "bo.proposals.<acq>", built once
  std::vector<obs::EvalLogEntry> eval_log_;  // built when trace_ != nullptr
};

/// Resolves a proposal that collides (squared distance < 1e-12) with an
/// observed or pending point: Gaussian nudges (sigma 0.01, clamped to the
/// unit cube) retried until the point clears, with a uniform resample
/// fallback — a nudge clamped on the cube boundary can land right back on
/// the duplicate, which is exactly the case the retries exist for. Counts
/// "bo.dedup_nudge" / "bo.dedup_resample" on \p trace. Exposed as a free
/// function for direct testing; BoEngine routes every proposal through it.
Vec dedup_proposal(Vec x, const std::vector<Vec>& observed,
                   const std::vector<Vec>& pending, Rng& rng,
                   obs::TraceSink* trace = nullptr);

/// Convenience wrapper: configure, run, return.
BoResult run_bo(const BoConfig& config, const opt::Bounds& bounds,
                const opt::Objective& objective,
                const std::function<double(const Vec&)>& sim_time = nullptr);

}  // namespace easybo::bo
