#pragma once
/// \file engine.h
/// \brief The BO engine: sequential, synchronous-batch and asynchronous-
/// batch Bayesian optimization drivers over a virtual-time worker pool.
///
/// This implements the paper's Algorithm 1 (EasyBO) plus every comparison
/// algorithm of §IV, all sharing one GP stack, one acquisition maximizer
/// and one scheduler so that measured differences come from the algorithm
/// design (issue policy, weight distribution, penalization), not from
/// implementation asymmetries.
///
/// The engine models in normalized space: inputs are mapped to [0,1]^d and
/// observations are z-scored before GP fitting, so mu and sigma in the
/// weighted acquisitions are commensurate regardless of the circuit's FOM
/// scale. Hyperparameters are re-trained on a geometrically thinning
/// schedule (every refit_every observations early on, stretching by 1.5x
/// as the dataset grows), warm-started from the previous optimum.

#include <functional>

#include "acq/thompson.h"
#include "bo/config.h"
#include "bo/result.h"
#include "common/rng.h"
#include "gp/gp.h"
#include "gp/normalizer.h"
#include "opt/objective.h"
#include "sched/event_sim.h"

namespace easybo::bo {

/// One optimization run of one algorithm configuration on one problem.
///
/// The objective is evaluated "inside" a virtual-time scheduler: each
/// evaluation costs sim_time(x) virtual seconds on one of `batch` workers,
/// and the issue policy is the configured Mode. Construct, call run(),
/// read the BoResult.
class BoEngine {
 public:
  /// \param config     algorithm configuration (validated here)
  /// \param bounds     design box (the engine normalizes internally)
  /// \param objective  the FOM to maximize (paper Eq. 1)
  /// \param sim_time   virtual duration of one evaluation; defaults to a
  ///                   constant 1s when null (pure sample-efficiency runs)
  BoEngine(BoConfig config, opt::Bounds bounds, opt::Objective objective,
           std::function<double(const Vec&)> sim_time = nullptr);

  /// Executes the full run. Call once per engine instance.
  BoResult run();

 private:
  // --- model management -------------------------------------------------
  /// Re-standardizes y, re-fits the GP; trains hyperparameters when the
  /// thinning schedule says so (or when force_train).
  void update_model(bool force_train);

  /// Index of the incumbent (max observed y).
  std::size_t incumbent_index() const;

  // --- proposal ---------------------------------------------------------
  /// Proposes the next query point (unit space). \p pending holds the
  /// unit-space points currently under evaluation (for hallucination);
  /// \p slot is the batch slot index (selects the pBO/pHCBO weight).
  Vec propose(const std::vector<Vec>& pending, std::size_t slot);

  /// Thompson-sampling proposal (AcqKind::Ts).
  Vec propose_thompson(const std::vector<Vec>& pending);

  /// GP-Hedge portfolio proposal (AcqKind::Hedge).
  Vec propose_hedge(const std::vector<Vec>& pending);

  /// Nudges a proposal that collides with an existing/pending point.
  Vec dedup(Vec x, const std::vector<Vec>& pending);

  // --- run phases ---------------------------------------------------------
  void run_init_phase(sched::VirtualScheduler& pool, BoResult& result);
  void run_sequential(sched::VirtualScheduler& pool, BoResult& result);
  void run_sync_batch(sched::VirtualScheduler& pool, BoResult& result);
  void run_async_batch(sched::VirtualScheduler& pool, BoResult& result);

  /// Submits proposal (unit space) to the pool, bookkeeping the tag.
  void submit(sched::VirtualScheduler& pool, Vec unit_x, bool is_init);

  /// Handles one completion: evaluates nothing (the objective was already
  /// evaluated at submit time — see note in engine.cpp), records the
  /// result, returns the observed y.
  void absorb(const sched::JobRecord& job, BoResult& result);

  BoConfig cfg_;
  opt::Bounds bounds_;
  opt::Objective objective_;
  std::function<double(const Vec&)> sim_time_;
  Rng rng_;
  gp::BoxNormalizer box_;
  gp::ZScore zscore_;
  gp::GpRegressor model_;

  // Observations (unit space + raw y).
  std::vector<Vec> obs_x_;
  Vec obs_y_;
  std::vector<bool> obs_is_init_;

  // Proposals by tag: the scheduler's job tag indexes these.
  std::vector<Vec> prop_x_;       // unit space
  Vec prop_y_;                    // objective value (computed at submit)
  std::vector<bool> prop_init_;

  // pHCBO per-weight-slot penalty history.
  std::vector<acq::HighCoveragePenalty> hc_penalties_;

  // GP-Hedge state (AcqKind::Hedge): portfolio gains and the members'
  // last nominees awaiting their reward.
  acq::HedgePortfolio hedge_;
  std::vector<Vec> hedge_nominees_;

  std::size_t next_hyper_refit_ = 0;
  std::size_t hyper_refits_ = 0;
};

/// Convenience wrapper: configure, run, return.
BoResult run_bo(const BoConfig& config, const opt::Bounds& bounds,
                const opt::Objective& objective,
                const std::function<double(const Vec&)>& sim_time = nullptr);

}  // namespace easybo::bo
