#pragma once
/// \file engine.h
/// \brief The BO engine: sequential, synchronous-batch and asynchronous-
/// batch Bayesian optimization drivers over a pluggable executor.
///
/// This implements the paper's Algorithm 1 (EasyBO) plus every comparison
/// algorithm of §IV. The algorithm itself — model state, pending-point
/// bookkeeping, proposal RNG, dedup, failure policies, checkpoint hooks —
/// lives in AskTellCore (bo/ask_tell.h) behind its suggest()/observe()
/// interface; BoEngine is the loop driver that pumps the core against an
/// executor. Each issue policy (sequential / sync batch / async batch) is
/// one pump schedule, and the same schedules drive the virtual-time
/// scheduler (experiments) and a real std::thread pool (production use) —
/// see sched/executor.h — so measured differences come from the algorithm
/// design, not from implementation asymmetries.
///
/// The core models in normalized space: inputs are mapped to [0,1]^d and
/// observations are z-scored before GP fitting, so mu and sigma in the
/// weighted acquisitions are commensurate regardless of the circuit's FOM
/// scale. Hyperparameters are re-trained on a geometrically thinning
/// schedule (every refit_every observations early on, stretching by 1.5x
/// as the dataset grows), warm-started from the previous optimum.

#include <algorithm>
#include <atomic>
#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <unordered_set>

#include "bo/ask_tell.h"
#include "bo/checkpoint.h"
#include "bo/config.h"
#include "bo/result.h"
#include "common/rng.h"
#include "obs/recording.h"
#include "opt/objective.h"
#include "sched/executor.h"
#include "sched/supervisor.h"

namespace easybo::bo {

/// One optimization run of one algorithm configuration on one problem.
///
/// The objective is evaluated through an executor: on the default
/// VirtualExecutor each evaluation costs sim_time(x) virtual seconds on
/// one of `batch` workers; on a ThreadExecutor it runs for real on a
/// worker thread. The issue policy is the configured Mode. Construct,
/// call run(), read the BoResult.
class BoEngine {
 public:
  /// \param config     algorithm configuration (validated here)
  /// \param bounds     design box (the engine normalizes internally)
  /// \param objective  the FOM to maximize (paper Eq. 1)
  /// \param sim_time   virtual duration of one evaluation; defaults to a
  ///                   constant 1s when null (pure sample-efficiency runs)
  BoEngine(BoConfig config, opt::Bounds bounds, opt::Objective objective,
           std::function<double(const Vec&)> sim_time = nullptr);

  /// Executes the full run on a VirtualExecutor with `batch` workers
  /// (one in Sequential mode). Call once per engine instance.
  BoResult run();

  /// Executes the full run on the given executor; its worker count is the
  /// effective degree of parallelism (Sequential mode still issues one
  /// point at a time). Call once per engine instance. Every evaluation is
  /// supervised (sched::EvalSupervisor, configured from the BoConfig
  /// eval_* knobs); what happens when one ultimately fails is
  /// BoConfig::on_eval_failure — under the default Abort policy worker
  /// exceptions propagate out of this call with the run aborted, exactly
  /// the pre-supervision behavior.
  BoResult run(sched::Executor& exec);

  /// Continues a run whose durable state lives under checkpoint base
  /// \p path (BoConfig::checkpoint_path semantics: "<path>.journal" +
  /// "<path>.snapshot", docs/checkpoint-format.md). The engine must be
  /// freshly constructed with the SAME configuration and bounds as the
  /// interrupted run — a config-fingerprint mismatch refuses to resume
  /// (io::CheckpointError). Restores the snapshot, replays the journal
  /// tail through the normal loop (journaled outcomes substituted for
  /// re-evaluation), re-submits work that was in flight at the kill, and
  /// continues — producing the same remaining proposal sequence as the
  /// uninterrupted run. Journaling continues on the same files. Call once
  /// per engine instance, instead of run().
  BoResult resume(const std::string& path);
  BoResult resume(const std::string& path, sched::Executor& exec);

  /// Installs a cooperative stop flag (e.g. set from a SIGINT handler).
  /// Checked at loop boundaries: once true, the engine stops proposing,
  /// drains the evaluations already in flight, writes a final snapshot
  /// (when journaling) and returns with BoResult::interrupted set. The
  /// pointee must outlive the run; nullptr (the default) disables it.
  /// Internally this is the flag source of common::StopToken — the same
  /// machinery the serve layer's request deadlines ride
  /// (common/stop_token.h) — but the engine only ever polls it at loop
  /// boundaries: a mid-suggest cut would need the caller to discard the
  /// core, which a graceful drain precisely must not do.
  void set_stop_token(const std::atomic<bool>* stop) {
    stop_token_ = common::StopToken::from_flag(stop);
  }

  /// Installs a non-owning trace sink for the run (call before run();
  /// nullptr restores the zero-cost null default). When the sink is an
  /// obs::RecordingSink, run() additionally assembles its contents — plus
  /// the executor's per-worker busy/idle — into BoResult::metrics.
  /// BoConfig::collect_metrics is the self-contained variant: the engine
  /// then owns a RecordingSink and installs it here itself. A decorator
  /// whose recording_sink() chases its forward pointer (obs::StreamSink)
  /// keeps the metrics assembly working through the chain.
  void set_trace(obs::TraceSink* sink);

  /// The currently installed sink (nullptr = the null default). Lets a
  /// caller wrap whatever the engine installed for itself:
  ///   obs::StreamSink stream(path, {}, engine.trace());
  ///   engine.set_trace(&stream);
  obs::TraceSink* trace() const { return trace_; }

 private:
  /// One terminal evaluation outcome as delivered to observe_arrival():
  /// either a real supervised completion or a journaled one re-enacted
  /// during resume replay. start_abs/finish_abs are on the run's logical
  /// clock — for replayed records the exact original times from the
  /// journal, so no floating-point round trip can perturb them.
  struct Arrived {
    sched::SupervisedCompletion sc;
    bool replayed = false;
    double start_abs = 0.0;
    double finish_abs = 0.0;
  };

  const BoConfig& cfg() const { return core_.config(); }

  // --- run phases ---------------------------------------------------------
  void run_init_phase(sched::EvalSupervisor& sup, BoResult& result);
  void run_sequential(sched::EvalSupervisor& sup, BoResult& result);
  void run_sync_batch(sched::EvalSupervisor& sup, BoResult& result);
  void run_async_batch(sched::EvalSupervisor& sup, BoResult& result);

  /// Pulls the next suggestion out of the core and hands it to the
  /// supervisor — unless its tag is covered by resume replay, in which
  /// case the already-durable outcome will be delivered by await_one()
  /// and only the logical worker-slot accounting happens here.
  void submit(sched::EvalSupervisor& sup);

  /// Feeds one arrival into the core (books the ObjectiveEval span and
  /// the per-eval log around it). Abort policy rethrows out of here.
  void observe_arrival(const Arrived& a, BoResult& result,
                       bool draining = false);

  /// Appends one entry to the per-eval outcome log (metrics "evals").
  void log_eval(const sched::SupervisedCompletion& sc, const char* action);

  /// wait_next()/wait_all() wrapped in a Phase::ExecutorWait span.
  sched::SupervisedCompletion timed_wait(sched::EvalSupervisor& sup);
  std::vector<sched::SupervisedCompletion> timed_wait_all(
      sched::EvalSupervisor& sup);

  // --- durability (checkpoint/resume; docs/checkpoint-format.md) --------
  bool stop_requested() const { return stop_token_.stop_requested(); }

  /// Evaluations logically in flight: really running on the executor plus
  /// those whose journaled outcome is still queued for replay. Equals
  /// sup.num_running() outside resume replay — and always equals the
  /// core's pending-tag count.
  std::size_t num_outstanding(const sched::EvalSupervisor& sup) const {
    return sup.num_running() + replay_awaiting_.size();
  }

  /// Whether a new evaluation may be issued right now: a physically idle
  /// worker AND a logically free slot (replay-covered flights occupy
  /// their workers in the original timeline even though the executor
  /// never sees them). Equals sup.has_idle_worker() outside replay.
  bool can_submit(const sched::EvalSupervisor& sup) const {
    return sup.has_idle_worker() &&
           sup.num_workers() > num_outstanding(sup);
  }

  /// Logically idle workers (the sync-batch sizing rule under replay).
  std::size_t idle_for_submit(const sched::EvalSupervisor& sup) const {
    const std::size_t outstanding = num_outstanding(sup);
    const std::size_t logical = sup.num_workers() > outstanding
                                    ? sup.num_workers() - outstanding
                                    : 0;
    return std::min(sup.num_idle_workers(), logical);
  }

  /// The run's logical clock: the executor clock, never behind the last
  /// replayed completion.
  double logical_now(const sched::EvalSupervisor& sup) const {
    return std::max(sup.now(), last_replay_finish_);
  }

  /// Virtual-time occupancy of one evaluation: its duration, cut at the
  /// per-attempt deadline exactly as the supervisor cuts it.
  double effective_duration(double duration) const;

  /// Loads snapshot + journal, restores core state, stages the journal
  /// tail for replay and re-submits genuinely in-flight work.
  void restore(sched::EvalSupervisor& sup, BoResult& result);

  /// Next terminal outcome: the front of the replay queue while resume
  /// replay is in progress, a real supervised wait otherwise.
  Arrived await_one(sched::EvalSupervisor& sup);

  /// Drains every outstanding evaluation without model updates (the init
  /// phase / graceful-stop semantics).
  void drain_all(sched::EvalSupervisor& sup, BoResult& result);

  /// Writes a snapshot when the cadence says so (checkpoint_every new
  /// journal lines since the last one; never during replay).
  void maybe_checkpoint(sched::EvalSupervisor& sup);

  /// Unconditionally writes the snapshot atomically.
  void write_snapshot(sched::EvalSupervisor& sup);

  /// Copies the recording sink (when one is installed) into
  /// result.metrics, grafting on the executor's worker stats.
  void finalize_metrics(sched::Executor& exec, BoResult& result);

  AskTellCore core_;
  opt::Objective objective_;

  // --- resume replay (engine-side: it shadows the EXECUTION timeline) ---
  // Journal tail to re-enact on resume, in original completion order,
  // plus the tags it covers. A tag in replay_tags_ is never handed to the
  // executor — its outcome is already durable.
  std::deque<JournalRecord> replay_;
  std::unordered_set<std::size_t> replay_tags_;
  std::unordered_set<std::size_t> replay_awaiting_;  // covered AND issued
  // In-flight-at-kill tags re-submitted with their remaining duration;
  // their completion's start is the original submit time, not the
  // re-submit time.
  std::unordered_set<std::size_t> restored_real_;
  double busy_base_ = 0.0;          // restored busy the executor never saw
  double last_replay_finish_ = 0.0;
  bool resumed_ = false;
  common::StopToken stop_token_;  // default: never fires
  std::string resume_note_;

  // Observability (src/obs). trace_ is non-owning and nullptr by default
  // (the zero-cost null sink); owned_recorder_ backs it only when
  // cfg_.collect_metrics asked the engine to record itself.
  obs::TraceSink* trace_ = nullptr;
  std::unique_ptr<obs::RecordingSink> owned_recorder_;
  std::vector<obs::EvalLogEntry> eval_log_;  // built when trace_ != nullptr
};

/// Convenience wrapper: configure, run, return.
BoResult run_bo(const BoConfig& config, const opt::Bounds& bounds,
                const opt::Objective& objective,
                const std::function<double(const Vec&)>& sim_time = nullptr);

}  // namespace easybo::bo
