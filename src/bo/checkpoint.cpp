#include "bo/checkpoint.h"

#include <cmath>
#include <cstdio>
#include <limits>

#include "bo/config.h"
#include "common/error.h"
#include "io/journal.h"
#include "io/json.h"

namespace easybo::bo {

namespace {

using io::JsonValue;

constexpr const char* kJournalSchema = "easybo.journal.v1";
constexpr const char* kSnapshotSchema = "easybo.checkpoint.v1";

// --- JSON building blocks ------------------------------------------------

std::string vec_json(const Vec& v) {
  std::string out = "[";
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += io::json_number(v[i]);
  }
  out.push_back(']');
  return out;
}

std::string vecs_json(const std::vector<Vec>& vs) {
  std::string out = "[";
  for (std::size_t i = 0; i < vs.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += vec_json(vs[i]);
  }
  out.push_back(']');
  return out;
}

std::string bools_json(const std::vector<bool>& bs) {
  std::string out = "[";
  for (std::size_t i = 0; i < bs.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += bs[i] ? "1" : "0";
  }
  out.push_back(']');
  return out;
}

std::string sizes_json(const std::vector<std::size_t>& xs) {
  std::string out = "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += std::to_string(xs[i]);
  }
  out.push_back(']');
  return out;
}

std::string rng_json(const RngState& s) {
  std::string out = "{\"s\":[";
  for (std::size_t i = 0; i < 4; ++i) {
    if (i > 0) out.push_back(',');
    out += io::json_quote(io::json_u64(s.s[i]));
  }
  out += "],\"cached\":";
  out += io::json_number(s.cached_normal);
  out += ",\"has_cached\":";
  out += s.has_cached_normal ? "true" : "false";
  out.push_back('}');
  return out;
}

Vec vec_from(const JsonValue& j) {
  const auto& arr = j.as_array();
  Vec v(arr.size());
  for (std::size_t i = 0; i < arr.size(); ++i) v[i] = arr[i].as_double();
  return v;
}

std::vector<Vec> vecs_from(const JsonValue& j) {
  const auto& arr = j.as_array();
  std::vector<Vec> vs;
  vs.reserve(arr.size());
  for (const auto& item : arr) vs.push_back(vec_from(item));
  return vs;
}

std::vector<bool> bools_from(const JsonValue& j) {
  const auto& arr = j.as_array();
  std::vector<bool> bs(arr.size());
  for (std::size_t i = 0; i < arr.size(); ++i) {
    bs[i] = arr[i].as_double() != 0.0;
  }
  return bs;
}

std::vector<std::size_t> sizes_from(const JsonValue& j) {
  const auto& arr = j.as_array();
  std::vector<std::size_t> xs(arr.size());
  for (std::size_t i = 0; i < arr.size(); ++i) {
    xs[i] = static_cast<std::size_t>(arr[i].as_double());
  }
  return xs;
}

std::vector<double> doubles_from(const JsonValue& j) {
  const auto& arr = j.as_array();
  std::vector<double> xs(arr.size());
  for (std::size_t i = 0; i < arr.size(); ++i) xs[i] = arr[i].as_double();
  return xs;
}

std::string doubles_json(const std::vector<double>& xs) {
  std::string out = "[";
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += io::json_number(xs[i]);
  }
  out.push_back(']');
  return out;
}

RngState rng_from(const JsonValue& j) {
  RngState s;
  const auto& words = j.at("s").as_array();
  EASYBO_REQUIRE(words.size() == 4, "rng state needs four words");
  for (std::size_t i = 0; i < 4; ++i) {
    s.s[i] = io::parse_u64(words[i].as_string());
  }
  const JsonValue& cached = j.at("cached");
  s.cached_normal = cached.is_null()
                        ? std::numeric_limits<double>::quiet_NaN()
                        : cached.as_double();
  s.has_cached_normal = j.at("has_cached").as_bool();
  return s;
}

std::size_t size_from(const JsonValue& j) {
  return static_cast<std::size_t>(j.as_double());
}

/// FNV-1a 64-bit over the canonical config string.
std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

void put(std::string& s, std::string_view key, double v) {
  s.append(key);
  s.push_back('=');
  s += io::json_number(v);
  s.push_back(';');
}

void put(std::string& s, std::string_view key, std::string_view v) {
  s.append(key);
  s.push_back('=');
  s.append(v);
  s.push_back(';');
}

void put_u(std::string& s, std::string_view key, std::uint64_t v) {
  s.append(key);
  s.push_back('=');
  s += io::json_u64(v);
  s.push_back(';');
}

}  // namespace

// --- journal record ------------------------------------------------------

std::string JournalRecord::to_payload() const {
  std::string out = "{\"index\":" + std::to_string(index);
  out += ",\"tag\":" + std::to_string(tag);
  out += ",\"status\":" + io::json_quote(status);
  out += ",\"action\":" + io::json_quote(action);
  out += ",\"attempts\":" + std::to_string(attempts);
  out += ",\"worker\":" + std::to_string(worker);
  out += ",\"start\":" + io::json_number(start);
  out += ",\"finish\":" + io::json_number(finish);
  out += ",\"is_init\":";
  out += is_init ? "true" : "false";
  out += ",\"x\":" + vec_json(x);
  out += ",\"y\":" + io::json_number(y);  // null when NaN
  if (!error.empty()) out += ",\"error\":" + io::json_quote(error);
  out.push_back('}');
  return out;
}

JournalRecord JournalRecord::parse(const std::string& payload) {
  const JsonValue j = io::parse_json(payload);
  JournalRecord r;
  r.index = size_from(j.at("index"));
  r.tag = size_from(j.at("tag"));
  r.status = j.at("status").as_string();
  r.action = j.at("action").as_string();
  r.attempts = static_cast<std::uint32_t>(j.at("attempts").as_double());
  r.worker = size_from(j.at("worker"));
  r.start = j.at("start").as_double();
  r.finish = j.at("finish").as_double();
  r.is_init = j.at("is_init").as_bool();
  r.x = vec_from(j.at("x"));
  const JsonValue& y = j.at("y");
  r.y = y.is_null() ? std::numeric_limits<double>::quiet_NaN()
                    : y.as_double();
  if (const JsonValue* err = j.find("error")) r.error = err->as_string();
  return r;
}

// --- journal header ------------------------------------------------------

std::string JournalHeader::to_payload() const {
  std::string out = "{\"schema\":";
  out += io::json_quote(kJournalSchema);
  out += ",\"config_hash\":" + io::json_quote(io::json_u64(config_hash));
  out += ",\"seed\":" + io::json_quote(io::json_u64(seed));
  out.push_back('}');
  return out;
}

JournalHeader JournalHeader::parse(const std::string& payload) {
  const JsonValue j = io::parse_json(payload);
  JournalHeader h;
  h.schema = j.at("schema").as_string();
  if (h.schema != kJournalSchema) {
    throw io::CheckpointError("journal schema \"" + h.schema +
                              "\" is not the supported \"" + kJournalSchema +
                              "\"");
  }
  h.config_hash = io::parse_u64(j.at("config_hash").as_string());
  h.seed = io::parse_u64(j.at("seed").as_string());
  return h;
}

// --- snapshot ------------------------------------------------------------

std::string BoCheckpoint::to_payload() const {
  std::string out = "{\"schema\":";
  out += io::json_quote(kSnapshotSchema);
  out += ",\"config_hash\":" + io::json_quote(io::json_u64(config_hash));
  out += ",\"journal_count\":" + std::to_string(journal_count);
  out += ",\"now\":" + io::json_number(now);
  out += ",\"busy\":" + io::json_number(busy);
  out += ",\"init_done\":";
  out += init_done ? "true" : "false";
  out += ",\"sync_dirty\":";
  out += sync_dirty ? "true" : "false";
  out += ",\"issued\":" + std::to_string(issued);
  out += ",\"rng\":" + rng_json(rng);
  out += ",\"sup_rng\":" + rng_json(sup_rng);
  out += ",\"obs_x\":" + vecs_json(obs_x);
  out += ",\"obs_y\":" + vec_json(obs_y);
  out += ",\"obs_is_init\":" + bools_json(obs_is_init);
  out += ",\"failed_x\":" + vecs_json(failed_x);
  out += ",\"prop_x\":" + vecs_json(prop_x);
  out += ",\"prop_init\":" + bools_json(prop_init);
  out += ",\"prop_submit\":" + doubles_json(prop_submit);
  out += ",\"prop_duration\":" + doubles_json(prop_duration);
  out += ",\"pending\":" + sizes_json(pending);
  out += ",\"hc\":[";
  for (std::size_t i = 0; i < hc_histories.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += vecs_json(hc_histories[i]);
  }
  out += "],\"hedge_gains\":" + vec_json(hedge_gains);
  out += ",\"hedge_nominees\":" + vecs_json(hedge_nominees);
  out += ",\"next_hyper_refit\":" + std::to_string(next_hyper_refit);
  out += ",\"hyper_refits\":" + std::to_string(hyper_refits);
  out += ",\"gp_log_hyperparams\":" + vec_json(gp_log_hyperparams);
  out.push_back('}');
  return out;
}

BoCheckpoint BoCheckpoint::parse(const std::string& payload) {
  const JsonValue j = io::parse_json(payload);
  const std::string schema = j.at("schema").as_string();
  if (schema != kSnapshotSchema) {
    throw io::CheckpointError("snapshot schema \"" + schema +
                              "\" is not the supported \"" + kSnapshotSchema +
                              "\"");
  }
  BoCheckpoint c;
  c.config_hash = io::parse_u64(j.at("config_hash").as_string());
  c.journal_count = size_from(j.at("journal_count"));
  c.now = j.at("now").as_double();
  c.busy = j.at("busy").as_double();
  c.init_done = j.at("init_done").as_bool();
  // Absent in files written before the field existed: those snapshots
  // were all taken at batch barriers, where the flag is false.
  if (const JsonValue* sd = j.find("sync_dirty")) {
    c.sync_dirty = sd->as_bool();
  }
  c.issued = size_from(j.at("issued"));
  c.rng = rng_from(j.at("rng"));
  c.sup_rng = rng_from(j.at("sup_rng"));
  c.obs_x = vecs_from(j.at("obs_x"));
  c.obs_y = vec_from(j.at("obs_y"));
  c.obs_is_init = bools_from(j.at("obs_is_init"));
  c.failed_x = vecs_from(j.at("failed_x"));
  c.prop_x = vecs_from(j.at("prop_x"));
  c.prop_init = bools_from(j.at("prop_init"));
  c.prop_submit = doubles_from(j.at("prop_submit"));
  c.prop_duration = doubles_from(j.at("prop_duration"));
  c.pending = sizes_from(j.at("pending"));
  for (const auto& h : j.at("hc").as_array()) {
    c.hc_histories.push_back(vecs_from(h));
  }
  c.hedge_gains = vec_from(j.at("hedge_gains"));
  c.hedge_nominees = vecs_from(j.at("hedge_nominees"));
  c.next_hyper_refit = size_from(j.at("next_hyper_refit"));
  c.hyper_refits = size_from(j.at("hyper_refits"));
  c.gp_log_hyperparams = vec_from(j.at("gp_log_hyperparams"));
  return c;
}

// --- config fingerprint --------------------------------------------------

std::uint64_t config_fingerprint(const BoConfig& config,
                                 const opt::Bounds& bounds) {
  std::string s;
  s.reserve(768);
  put(s, "v", kSnapshotSchema);
  put(s, "mode", to_string(config.mode));
  put(s, "acq", to_string(config.acq));
  put(s, "penalize", config.penalize ? "1" : "0");
  put_u(s, "batch", config.batch);
  put_u(s, "init_points", config.init_points);
  put_u(s, "max_sims", config.max_sims);
  put(s, "lambda", config.lambda);
  put(s, "uniform_w", config.uniform_w ? "1" : "0");
  put(s, "lcb_kappa", config.lcb_kappa);
  put(s, "bucb_kappa", config.bucb_kappa);
  put_u(s, "ts_candidates", config.ts_candidates);
  put(s, "hedge_eta", config.hedge_eta);
  put(s, "ei_xi", config.ei_xi);
  put(s, "hc_d", config.hc_d);
  put(s, "hc_n", config.hc_n);
  put_u(s, "refit_every", config.refit_every);
  put(s, "async_slot_rotation", config.async_slot_rotation ? "1" : "0");
  put(s, "kernel", config.kernel);
  // The surrogate backend and its knobs shape every post-init proposal, so
  // a checkpoint taken under one backend refuses to resume under another.
  // (hallucinate_overlay is deliberately absent: both hallucination paths
  // produce bit-identical streams. adapt_refit_cadence/adapt_refit_budget
  // are absent too: the adaptive schedule is wall-clock driven — never
  // reproducible across machines anyway — and the schedule state itself
  // rides in snapshots via next_hyper_refit, so resume stays coherent.)
  put(s, "gp_backend", config.gp_backend);
  put_u(s, "rff_features", config.rff_features);
  put_u(s, "rff_train_subset", config.rff_train_subset);
  put(s, "pin_hallucinated_mean", config.pin_hallucinated_mean ? "1" : "0");
  put_u(s, "seed", config.seed);
  put(s, "on_eval_failure", to_string(config.on_eval_failure));
  put(s, "eval_timeout", config.eval_timeout);
  put_u(s, "eval_max_retries", config.eval_max_retries);
  put(s, "eval_backoff_init", config.eval_backoff_init);
  put(s, "eval_backoff_factor", config.eval_backoff_factor);
  put(s, "eval_backoff_max", config.eval_backoff_max);
  put(s, "eval_backoff_jitter", config.eval_backoff_jitter);
  put(s, "eval_retry_timeouts", config.eval_retry_timeouts ? "1" : "0");
  put(s, "eval_failure_quantile", config.eval_failure_quantile);
  put(s, "trainer.max_iters", static_cast<double>(config.trainer.max_iters));
  put(s, "trainer.restarts", static_cast<double>(config.trainer.restarts));
  put(s, "trainer.learning_rate", config.trainer.learning_rate);
  put(s, "trainer.tol", config.trainer.tol);
  put(s, "trainer.log_sf2_min", config.trainer.log_sf2_min);
  put(s, "trainer.log_sf2_max", config.trainer.log_sf2_max);
  put(s, "trainer.log_len_min", config.trainer.log_len_min);
  put(s, "trainer.log_len_max", config.trainer.log_len_max);
  put(s, "trainer.log_noise_min", config.trainer.log_noise_min);
  put(s, "trainer.log_noise_max", config.trainer.log_noise_max);
  put_u(s, "acq_opt.sobol_candidates", config.acq_opt.sobol_candidates);
  put_u(s, "acq_opt.random_candidates", config.acq_opt.random_candidates);
  put_u(s, "acq_opt.anchor_jitter", config.acq_opt.anchor_jitter);
  put(s, "acq_opt.jitter_scale", config.acq_opt.jitter_scale);
  put_u(s, "acq_opt.refine_top_k", config.acq_opt.refine_top_k);
  put_u(s, "acq_opt.refine_evals", config.acq_opt.refine_evals);
  put(s, "bounds.lower", vec_json(bounds.lower));
  put(s, "bounds.upper", vec_json(bounds.upper));
  return fnv1a(s);
}

std::string journal_file(const std::string& base) {
  return base + ".journal";
}

std::string snapshot_file(const std::string& base) {
  return base + ".snapshot";
}

}  // namespace easybo::bo
