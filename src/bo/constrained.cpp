#include "bo/constrained.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "acq/acq_optimizer.h"
#include "acq/acquisition.h"
#include "common/error.h"
#include "gp/gp.h"
#include "gp/kernel.h"
#include "gp/normalizer.h"
#include "gp/trainer.h"
#include "sched/event_sim.h"

namespace easybo::bo {

namespace {

using linalg::Vec;

/// Feasibility-weighted EasyBO acquisition:
///   [ (1-w) mu_f(x) + w sigma_hat_f(x) - floor ] * prod_i P(g_i(x) >= 0)
/// The floor shift keeps the weighted term positive so the probability
/// product acts as a pure down-weight (a negative acquisition times a
/// small probability would otherwise *reward* infeasibility).
class FeasibleEasyBo final : public acq::AcquisitionFn {
 public:
  FeasibleEasyBo(const gp::Regressor* mean_model,
                 const gp::Regressor* var_model, double w, double floor,
                 const std::vector<gp::GpRegressor>* constraint_models)
      : base_(mean_model, var_model, w),
        floor_(floor),
        constraint_models_(constraint_models) {}

  double operator()(const Vec& x) const override {
    double value = std::max(base_(x) - floor_, 0.0) + 1e-12;
    for (const auto& model : *constraint_models_) {
      const auto p = model.predict(x);
      const double sd = std::max(p.stddev(), 1e-9);
      value *= acq::norm_cdf(p.mean / sd);
    }
    return value;
  }

 private:
  acq::WeightedUcb base_;
  double floor_;
  const std::vector<gp::GpRegressor>* constraint_models_;
};

/// Total violation (sum of negative slacks); 0 when feasible.
double violation(const Vec& gs) {
  double acc = 0.0;
  for (double g : gs) acc += std::max(-g, 0.0);
  return acc;
}

}  // namespace

ConstrainedResult run_constrained_bo(
    const BoConfig& config, const opt::Bounds& bounds,
    const opt::Objective& objective,
    const std::vector<Constraint>& constraints,
    const std::function<double(const Vec&)>& sim_time) {
  config.validate();
  bounds.validate();
  EASYBO_REQUIRE(static_cast<bool>(objective), "null objective");
  EASYBO_REQUIRE(!constraints.empty(),
                 "run_constrained_bo needs at least one constraint; use the "
                 "plain engine otherwise");
  for (const auto& c : constraints) {
    EASYBO_REQUIRE(static_cast<bool>(c.fn), "null constraint function");
  }
  EASYBO_REQUIRE(config.acq == AcqKind::EasyBo,
                 "constrained mode supports the EasyBO acquisition");
  EASYBO_REQUIRE(config.mode != Mode::SyncBatch,
                 "constrained mode supports Sequential and AsyncBatch");

  const std::size_t dim = bounds.dim();
  const std::size_t workers =
      config.mode == Mode::Sequential ? 1 : config.batch;
  Rng rng(config.seed);
  gp::BoxNormalizer box(bounds.lower, bounds.upper);
  auto sim = sim_time ? sim_time : [](const Vec&) { return 1.0; };

  // Objective model + one model per constraint. Constraint observations
  // are z-scored independently so Phi(mu/sigma) is scale-free only through
  // the data (the feasibility threshold 0 must be transformed too — we
  // therefore model RAW constraint values with a plain mean offset, i.e.
  // no target scaling, which keeps "g >= 0" meaningful).
  gp::GpRegressor obj_model(gp::make_kernel(config.kernel, dim), 1e-6);
  std::vector<gp::GpRegressor> con_models;
  con_models.reserve(constraints.size());
  for (std::size_t i = 0; i < constraints.size(); ++i) {
    con_models.emplace_back(gp::make_kernel(config.kernel, dim), 1e-6);
  }

  std::vector<Vec> obs_x;   // unit space
  Vec obs_y;                // raw objective
  std::vector<Vec> obs_g;   // raw constraint vectors
  gp::ZScore zscore;
  std::size_t next_refit = config.init_points;
  std::size_t refits = 0;

  auto update_models = [&](bool force) {
    zscore.refit(obs_y);
    obj_model.set_data(obs_x, zscore.transform(obs_y));
    const bool train = force || obs_x.size() >= next_refit;
    for (std::size_t i = 0; i < con_models.size(); ++i) {
      Vec gi(obs_g.size());
      for (std::size_t k = 0; k < obs_g.size(); ++k) gi[k] = obs_g[k][i];
      con_models[i].set_data(obs_x, gi);
    }
    if (train) {
      gp::train_mle(obj_model, rng, config.trainer);
      for (auto& m : con_models) gp::train_mle(m, rng, config.trainer);
      ++refits;
      next_refit = std::max(
          obs_x.size() + config.refit_every,
          static_cast<std::size_t>(static_cast<double>(obs_x.size()) * 1.5));
    } else {
      obj_model.fit();
      for (auto& m : con_models) m.fit();
    }
  };

  // Incumbent: best feasible; fallback: least-infeasible.
  auto incumbent = [&]() -> std::size_t {
    std::size_t best_feasible = obs_x.size();
    std::size_t least_bad = 0;
    double best_y = -std::numeric_limits<double>::infinity();
    double least_violation = std::numeric_limits<double>::infinity();
    for (std::size_t k = 0; k < obs_x.size(); ++k) {
      const double v = violation(obs_g[k]);
      if (v == 0.0 && obs_y[k] > best_y) {
        best_y = obs_y[k];
        best_feasible = k;
      }
      if (v < least_violation) {
        least_violation = v;
        least_bad = k;
      }
    }
    return best_feasible < obs_x.size() ? best_feasible : least_bad;
  };

  auto propose = [&](const std::vector<Vec>& pending) {
    const double w = acq::sample_easybo_weight(rng, config.lambda);
    // Floor: minimum of the weighted term over the observed data keeps the
    // acquisition non-negative without distorting its ordering.
    double floor = std::numeric_limits<double>::infinity();
    for (const auto& x : obs_x) {
      const auto p = obj_model.predict(x);
      floor = std::min(floor, (1.0 - w) * p.mean + w * p.stddev());
    }
    std::unique_ptr<gp::Regressor> hallucinated;
    const gp::Regressor* var_model = &obj_model;
    if (config.penalize && !pending.empty()) {
      // Zero-copy overlay; historical unpinned-mean semantics (the
      // constrained runner predates BoConfig::pin_hallucinated_mean).
      hallucinated = obj_model.hallucinate(pending, /*pin_mean=*/false);
      var_model = hallucinated.get();
    }
    const FeasibleEasyBo fn(&obj_model, var_model, w, floor, &con_models);
    const std::vector<Vec> anchors = {obs_x[incumbent()]};
    return acq::maximize_acquisition(fn, dim, rng, anchors, config.acq_opt)
        .best_x;
  };

  // --- Run on the virtual scheduler (same structure as BoEngine). ---
  sched::VirtualScheduler pool(workers);
  ConstrainedResult result;
  std::vector<Vec> prop_x;
  Vec prop_y;
  std::vector<Vec> prop_g;
  std::vector<bool> prop_init;

  auto submit = [&](Vec unit_x, bool is_init) {
    const Vec x = box.from_unit(unit_x);
    const std::size_t tag = prop_x.size();
    prop_x.push_back(std::move(unit_x));
    prop_y.push_back(objective(x));
    Vec g(constraints.size());
    for (std::size_t i = 0; i < constraints.size(); ++i) {
      g[i] = constraints[i].fn(x);
    }
    prop_g.push_back(std::move(g));
    prop_init.push_back(is_init);
    pool.submit(tag, sim(x));
  };
  auto absorb = [&](const sched::JobRecord& job) {
    obs_x.push_back(prop_x[job.tag]);
    obs_y.push_back(prop_y[job.tag]);
    obs_g.push_back(prop_g[job.tag]);
    EvalRecord rec;
    rec.x = box.from_unit(prop_x[job.tag]);
    rec.y = prop_y[job.tag];
    rec.start = job.start;
    rec.finish = job.finish;
    rec.worker = job.worker;
    rec.is_init = prop_init[job.tag];
    result.evals.push_back(std::move(rec));
  };

  // Initial design.
  std::size_t issued = 0;
  while (obs_x.size() < config.init_points) {
    while (pool.has_idle_worker() && issued < config.init_points) {
      submit(rng.uniform_vector(dim), /*is_init=*/true);
      ++issued;
    }
    absorb(pool.wait_next());
  }
  update_models(/*force=*/true);

  // Asynchronous (or sequential, workers == 1) main loop.
  std::vector<Vec> pending;
  while (pool.has_idle_worker() && issued < config.max_sims) {
    Vec x = propose(pending);
    pending.push_back(x);
    submit(std::move(x), /*is_init=*/false);
    ++issued;
  }
  while (pool.num_running() > 0) {
    const auto job = pool.wait_next();
    const Vec finished = prop_x[job.tag];
    absorb(job);
    const auto it = std::find(pending.begin(), pending.end(), finished);
    if (it != pending.end()) pending.erase(it);
    update_models(false);
    if (issued < config.max_sims) {
      Vec x = propose(pending);
      pending.push_back(x);
      submit(std::move(x), /*is_init=*/false);
      ++issued;
    }
  }

  result.makespan = pool.now();
  result.total_sim_time = pool.total_busy_time();
  result.hyper_refits = refits;
  const std::size_t inc = incumbent();
  result.best_x = box.from_unit(obs_x[inc]);
  result.best_y = obs_y[inc];
  result.best_constraints = obs_g[inc];
  result.found_feasible = violation(obs_g[inc]) == 0.0;
  for (const auto& g : obs_g) {
    if (violation(g) == 0.0) ++result.num_feasible;
  }
  return result;
}

}  // namespace easybo::bo
