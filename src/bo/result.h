#pragma once
/// \file result.h
/// \brief Run records produced by the BO engine.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "linalg/vec.h"
#include "obs/metrics.h"

namespace easybo::bo {

using linalg::Vec;

/// One completed simulation (or one ultimately-failed evaluation when the
/// run used a non-aborting EvalFailurePolicy — see docs/failure-model.md).
struct EvalRecord {
  Vec x;                 ///< design-space point
  double y = 0.0;        ///< observed FOM; NaN for discarded failures
  double start = 0.0;    ///< virtual time the simulation started
  double finish = 0.0;   ///< virtual time it finished
  std::size_t worker = 0;
  bool is_init = false;  ///< part of the random initial design
  std::uint32_t attempts = 1;  ///< supervised attempts (1 + retries)
  bool failed = false;   ///< evaluation failed after every retry
  /// Empty for ok evals; otherwise "exception"|"timeout"|"non_finite".
  std::string failure;
};

/// Full result of one optimization run.
struct BoResult {
  Vec best_x;
  double best_y = 0.0;
  std::vector<EvalRecord> evals;  ///< in completion order
  double makespan = 0.0;          ///< virtual wall-clock of all simulation
  double total_sim_time = 0.0;    ///< sum of evaluation durations
  std::size_t hyper_refits = 0;   ///< MLE trainings performed

  /// The run stopped early on a cooperative stop token
  /// (BoEngine::set_stop_token) after draining in-flight evaluations.
  /// best_x/best_y are empty/0 when no evaluation had completed yet.
  bool interrupted = false;

  /// Human-readable note when the run was a resume (what was restored and
  /// replayed); empty for ordinary runs.
  std::string resume_note;

  /// Workers abandoned after a wall-clock timeout and never reclaimed —
  /// each one is a hung objective still occupying a pool slot (see
  /// docs/failure-model.md). Always 0 on virtual time.
  std::size_t orphaned_workers = 0;

  /// Observability report: per-phase timers, engine-room counters and
  /// per-worker busy/idle. Populated only when the run recorded metrics
  /// (BoConfig::collect_metrics, or a RecordingSink installed through
  /// BoEngine::set_trace); metrics.empty() otherwise.
  obs::MetricsReport metrics;

  std::size_t num_evals() const { return evals.size(); }

  /// Pool utilization: total_sim_time / (makespan * workers).
  double utilization(std::size_t workers) const;

  /// Best-so-far FOM sampled at the completion time of each successful
  /// evaluation: pairs (finish_time, best_y_up_to_that_time), in time
  /// order. Failed evaluations are skipped (their y is a pseudo value or
  /// NaN, not an observation). This is the series plotted in the paper's
  /// Fig. 4 / Fig. 6.
  std::vector<std::pair<double, double>> best_vs_time() const;

  /// Best-so-far FOM after each successful simulation (failed evaluations
  /// skipped; index = #successful sims).
  Vec best_vs_evals() const;

  /// Earliest virtual time at which best-so-far reached \p target;
  /// negative when the run never reached it.
  double time_to_target(double target) const;
};

}  // namespace easybo::bo
