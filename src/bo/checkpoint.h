#pragma once
/// \file checkpoint.h
/// \brief Durable run state: journal records and engine snapshots.
///
/// Serialization for the crash-safe run subsystem
/// (docs/checkpoint-format.md). A run with BoConfig::checkpoint_path set
/// produces two files under that base path:
///
///   <path>.journal   append-only JSONL, one checksummed line per
///                    terminal evaluation outcome (schema
///                    "easybo.journal.v1"; the eval fields reuse the
///                    easybo.metrics.v1 eval-record shape)
///   <path>.snapshot  one checksummed line holding the full engine state
///                    at a loop boundary (schema "easybo.checkpoint.v1"),
///                    rewritten atomically every checkpoint_every
///                    completions
///
/// Resume = restore the snapshot, then *replay* the journal tail through
/// the normal engine loop with journaled completions substituted for real
/// evaluations. Because the replay runs the very same propose/update
/// code, the RNG streams, GP refit schedule and hallucination set end up
/// bit-identical to the uninterrupted run — that is the headline
/// guarantee, enforced by tests/test_checkpoint.cpp.
///
/// This header is engine-internal plumbing (BoEngine is the public
/// surface); it is exposed for tests and tooling.

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "linalg/vec.h"
#include "opt/objective.h"

namespace easybo::bo {

struct BoConfig;  // bo/config.h
using linalg::Vec;

/// One journal line: the terminal outcome of one evaluation, everything
/// handle() needs to re-enact it during replay.
struct JournalRecord {
  std::size_t index = 0;    ///< completion order (journal line order)
  std::size_t tag = 0;      ///< proposal index (BoEngine prop table)
  std::string status;       ///< sched::to_string(EvalStatus)
  std::string action;       ///< observed | discarded | penalized | abort
  std::uint32_t attempts = 1;
  std::size_t worker = 0;
  double start = 0.0;       ///< executor seconds, original run's clock
  double finish = 0.0;
  bool is_init = false;
  Vec x;                    ///< unit-space proposal (replay cross-check)
  /// Observed value for ok evals; NaN otherwise (emitted as JSON null).
  double y = 0.0;
  std::string error;        ///< what() of the failure, when any

  std::string to_payload() const;
  static JournalRecord parse(const std::string& payload);
};

/// The journal's first line, binding the file to one run configuration.
struct JournalHeader {
  std::string schema;        ///< "easybo.journal.v1"
  std::uint64_t config_hash = 0;
  std::uint64_t seed = 0;

  std::string to_payload() const;
  static JournalHeader parse(const std::string& payload);
};

/// Full engine state at one loop boundary. Field-by-field mirror of
/// BoEngine's private state — see the member comments in engine.h for
/// semantics.
struct BoCheckpoint {
  std::uint64_t config_hash = 0;
  std::size_t journal_count = 0;  ///< journal lines absorbed in this state
  double now = 0.0;               ///< executor clock (original run)
  double busy = 0.0;              ///< executor total busy time (original)
  bool init_done = false;         ///< post-init force-train already ran
  /// SyncBatch's deferred-model-refresh flag: an in-flight batch already
  /// produced observations the barrier update has not absorbed. Engine
  /// snapshots always write false (they sit at batch barriers); session
  /// snapshots (src/serve) are taken after every mutation and need it.
  bool sync_dirty = false;
  std::size_t issued = 0;

  RngState rng;      ///< proposal stream
  RngState sup_rng;  ///< supervisor jitter stream

  std::vector<Vec> obs_x;  ///< unit space
  Vec obs_y;
  std::vector<bool> obs_is_init;
  std::vector<Vec> failed_x;

  // Proposal table by tag, including per-tag submit time and nominal
  // duration (needed to re-submit in-flight work with its remaining
  // duration).
  std::vector<Vec> prop_x;
  std::vector<bool> prop_init;
  std::vector<double> prop_submit;
  std::vector<double> prop_duration;

  std::vector<std::size_t> pending;  ///< tags submitted but unhandled

  std::vector<std::vector<Vec>> hc_histories;  ///< pHCBO, oldest first
  Vec hedge_gains;
  std::vector<Vec> hedge_nominees;

  std::size_t next_hyper_refit = 0;
  std::size_t hyper_refits = 0;
  Vec gp_log_hyperparams;

  std::string to_payload() const;
  static BoCheckpoint parse(const std::string& payload);
};

/// Canonical fingerprint of everything that shapes the proposal stream:
/// all behavioural BoConfig knobs (checkpoint_path/checkpoint_every and
/// collect_metrics excluded — they never change proposals), the trainer
/// and acquisition-optimizer options, and the design bounds. A resume
/// whose fingerprint differs from the files' refuses to run.
std::uint64_t config_fingerprint(const BoConfig& config,
                                 const opt::Bounds& bounds);

/// File layout under a BoConfig::checkpoint_path base.
std::string journal_file(const std::string& base);
std::string snapshot_file(const std::string& base);

}  // namespace easybo::bo
