#include "bo/config.h"

#include <cmath>

#include "common/error.h"
#include "gp/gp.h"
#include "gp/rff.h"

namespace easybo::bo {

std::unique_ptr<gp::Kernel> make_kernel(const BoConfig& config,
                                        std::size_t dim) {
  auto kernel = gp::make_kernel(config.kernel, dim);
  linalg::Vec lp = kernel->log_params();
  for (std::size_t i = 1; i < lp.size(); ++i) lp[i] = std::log(0.3);
  kernel->set_log_params(lp);
  return kernel;
}

std::unique_ptr<gp::TrainableRegressor> make_regressor(const BoConfig& config,
                                                       std::size_t dim) {
  if (config.gp_backend == "rff") {
    // Spectral draw seed: derived from the run seed but offset so it never
    // collides with the engine's own Rng stream.
    return std::make_unique<gp::RffRegressor>(
        make_kernel(config, dim), /*noise_variance=*/1e-6,
        config.rff_features, config.seed ^ 0x52FFB0C4D5E6F7A8ULL);
  }
  return std::make_unique<gp::GpRegressor>(make_kernel(config, dim),
                                           /*noise_variance=*/1e-6);
}

const char* to_string(Mode mode) {
  switch (mode) {
    case Mode::Sequential: return "sequential";
    case Mode::SyncBatch: return "sync";
    case Mode::AsyncBatch: return "async";
  }
  return "?";
}

const char* to_string(EvalFailurePolicy policy) {
  switch (policy) {
    case EvalFailurePolicy::Abort: return "abort";
    case EvalFailurePolicy::Discard: return "discard";
    case EvalFailurePolicy::Penalize: return "penalize";
  }
  return "?";
}

const char* to_string(AcqKind kind) {
  switch (kind) {
    case AcqKind::Ei: return "EI";
    case AcqKind::Lcb: return "LCB";
    case AcqKind::EasyBo: return "EasyBO";
    case AcqKind::Pbo: return "pBO";
    case AcqKind::Phcbo: return "pHCBO";
    case AcqKind::Bucb: return "BUCB";
    case AcqKind::Lp: return "LP";
    case AcqKind::Ts: return "TS";
    case AcqKind::Hedge: return "Hedge";
  }
  return "?";
}

std::string BoConfig::label() const {
  if (mode == Mode::Sequential) {
    return to_string(acq);  // "EI", "LCB", "EasyBO"
  }
  std::string name;
  switch (acq) {
    case AcqKind::Pbo: name = "pBO"; break;
    case AcqKind::Phcbo: name = "pHCBO"; break;
    case AcqKind::EasyBo:
      if (mode == Mode::SyncBatch) {
        name = penalize ? "EasyBO-SP" : "EasyBO-S";
      } else {
        name = penalize ? "EasyBO" : "EasyBO-A";
      }
      break;
    case AcqKind::Ei: name = "EI"; break;
    case AcqKind::Lcb: name = "LCB"; break;
    case AcqKind::Bucb: name = "BUCB"; break;
    case AcqKind::Lp: name = "LP"; break;
    case AcqKind::Ts: name = "TS"; break;
    case AcqKind::Hedge: name = "Hedge"; break;
  }
  return name + "-" + std::to_string(batch);
}

void BoConfig::validate() const {
  EASYBO_REQUIRE(init_points >= 2, "need at least two initial points");
  EASYBO_REQUIRE(max_sims > init_points,
                 "simulation budget must exceed the initial design");
  EASYBO_REQUIRE(lambda > 0.0, "lambda must be positive");
  EASYBO_REQUIRE(refit_every >= 1, "refit_every must be >= 1");
  if (mode != Mode::Sequential) {
    EASYBO_REQUIRE(batch >= 2, "batch modes need batch >= 2");
  }
  if (acq == AcqKind::Pbo || acq == AcqKind::Phcbo) {
    EASYBO_REQUIRE(mode != Mode::Sequential,
                   "pBO/pHCBO are batch algorithms (their weight grid "
                   "spans the batch slots)");
  }
  if (acq == AcqKind::Ei || acq == AcqKind::Lcb) {
    EASYBO_REQUIRE(mode == Mode::Sequential,
                   "EI/LCB baselines run in sequential mode only");
  }
  if (acq == AcqKind::Bucb || acq == AcqKind::Lp) {
    EASYBO_REQUIRE(mode != Mode::Sequential,
                   "BUCB/LP are batch algorithms (they penalize around "
                   "pending points)");
  }
  EASYBO_REQUIRE(eval_timeout >= 0.0, "eval_timeout must be >= 0");
  EASYBO_REQUIRE(eval_backoff_init >= 0.0,
                 "eval_backoff_init must be >= 0");
  EASYBO_REQUIRE(eval_backoff_factor >= 1.0,
                 "eval_backoff_factor must be >= 1");
  EASYBO_REQUIRE(eval_backoff_max >= 0.0, "eval_backoff_max must be >= 0");
  EASYBO_REQUIRE(eval_backoff_jitter >= 0.0 && eval_backoff_jitter <= 1.0,
                 "eval_backoff_jitter must be in [0, 1]");
  EASYBO_REQUIRE(
      eval_failure_quantile >= 0.0 && eval_failure_quantile <= 1.0,
      "eval_failure_quantile must be in [0, 1]");
  EASYBO_REQUIRE(adapt_refit_budget > 0.0,
                 "adapt_refit_budget must be > 0");
  EASYBO_REQUIRE(checkpoint_every >= 1, "checkpoint_every must be >= 1");
  EASYBO_REQUIRE(gp_backend == "exact" || gp_backend == "rff",
                 "gp_backend must be \"exact\" or \"rff\"");
  if (gp_backend == "rff") {
    EASYBO_REQUIRE(kernel == "se",
                   "the rff backend approximates the SE kernel only");
    EASYBO_REQUIRE(rff_features >= 4, "rff_features must be >= 4");
    EASYBO_REQUIRE(rff_train_subset >= 2, "rff_train_subset must be >= 2");
  }
}

}  // namespace easybo::bo
