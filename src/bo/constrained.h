#pragma once
/// \file constrained.h
/// \brief Constrained asynchronous EasyBO (the paper's stated future work).
///
/// The paper (§II-A): "Our proposed approach can also be easily extended to
/// handle constrained optimization problem, which will be discussed in
/// future work." This module supplies that extension in the standard
/// feasibility-weighted form (Gardner et al., ICML'14) merged with EasyBO's
/// asynchronous loop and penalization:
///
///   * the objective is modeled by the usual GP;
///   * each constraint g_i (feasible iff g_i(x) >= 0) gets its own GP;
///   * the acquisition is alpha_EasyBO(x, w) weighted by the probability of
///     feasibility  prod_i Phi(mu_i(x) / sigma_i(x));
///   * the incumbent used for reporting is the best FEASIBLE observation.
///
/// Typical analog-sizing use: maximize the FOM subject to PM >= 60 deg,
/// gain >= 60 dB, power <= budget (see examples/constrained_sizing.cpp).

#include <functional>
#include <string>
#include <vector>

#include "bo/config.h"
#include "bo/result.h"
#include "opt/objective.h"

namespace easybo::bo {

/// One inequality constraint: feasible iff fn(x) >= 0.
/// Express "metric >= spec" as fn = metric - spec, "metric <= spec" as
/// fn = spec - metric.
struct Constraint {
  std::string name;
  opt::Objective fn;
};

/// Result of a constrained run. `best_x`/`best_y` refer to the best
/// FEASIBLE point; `found_feasible` is false when no evaluation satisfied
/// all constraints (then best_x/best_y fall back to the least-infeasible
/// point by constraint slack).
struct ConstrainedResult : BoResult {
  bool found_feasible = false;
  std::size_t num_feasible = 0;
  /// Constraint values at best_x, in constraint order.
  linalg::Vec best_constraints;
};

/// Runs constrained asynchronous EasyBO. config.mode must be AsyncBatch or
/// Sequential (synchronous batching is orthogonal and not provided here);
/// config.acq must be EasyBo. Constraint evaluations are assumed to come
/// from the same simulation as the objective (no extra simulation cost).
ConstrainedResult run_constrained_bo(
    const BoConfig& config, const opt::Bounds& bounds,
    const opt::Objective& objective, const std::vector<Constraint>& constraints,
    const std::function<double(const linalg::Vec&)>& sim_time = nullptr);

}  // namespace easybo::bo
