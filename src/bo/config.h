#pragma once
/// \file config.h
/// \brief Configuration for the BO engine: every algorithm of the paper's
/// comparison is one BoConfig.
///
/// Paper algorithm -> configuration map:
///   LCB          Sequential + AcqKind::Lcb
///   EI           Sequential + AcqKind::Ei
///   EasyBO (seq) Sequential + AcqKind::EasyBo
///   pBO-B        SyncBatch  + AcqKind::Pbo,    batch B
///   pHCBO-B      SyncBatch  + AcqKind::Phcbo,  batch B
///   EasyBO-S-B   SyncBatch  + AcqKind::EasyBo, penalize=false
///   EasyBO-SP-B  SyncBatch  + AcqKind::EasyBo, penalize=true
///   EasyBO-A-B   AsyncBatch + AcqKind::EasyBo, penalize=false
///   EasyBO-B     AsyncBatch + AcqKind::EasyBo, penalize=true
/// Extension baselines beyond the paper's roster:
///   BUCB-B       Sync/AsyncBatch + AcqKind::Bucb (hallucinated UCB [32])
///   LP-B         Sync/AsyncBatch + AcqKind::Lp (local penalization [33])
///   TS(-B)       any mode + AcqKind::Ts (Thompson sampling [30])
///   Hedge(-B)    any mode + AcqKind::Hedge (GP-Hedge portfolio [31])

#include <cstdint>
#include <memory>
#include <string>

#include "acq/acq_optimizer.h"
#include "gp/kernel.h"
#include "gp/trainer.h"

namespace easybo::bo {

/// How query points are issued to the worker pool.
enum class Mode {
  Sequential,  ///< one worker, one point at a time
  SyncBatch,   ///< B points per iteration, barrier until all finish
  AsyncBatch,  ///< new point whenever a worker goes idle (Fig. 1, right)
};

/// Which acquisition proposes the next point.
enum class AcqKind {
  Ei,      ///< expected improvement (sequential baseline)
  Lcb,     ///< optimistic confidence bound, mu + kappa*sigma (baseline)
  EasyBo,  ///< randomized-weight UCB, Eq. 8 (Eq. 9 with penalize=true)
  Pbo,     ///< fixed uniform weight grid, Eq. 4 [23]
  Phcbo,   ///< pBO + high-coverage penalty, Eq. 5-6 [23]
  Bucb,    ///< batch UCB with hallucinated variance [32] (extension)
  Lp,      ///< EI with local penalization around busy points [33] (ext.)
  Ts,      ///< Thompson sampling over a candidate set [30] (extension)
  Hedge,   ///< GP-Hedge portfolio of EI/PI/UCB [31] (extension)
};

/// What the engine does when a supervised evaluation ultimately fails —
/// exception, deadline timeout, or non-finite value after every retry
/// (sched::EvalSupervisor). See docs/failure-model.md for the taxonomy
/// and guidance on choosing between the policies.
enum class EvalFailurePolicy {
  /// Rethrow out of run()/optimize_parallel() — the pre-supervision
  /// behavior and the default. Timeouts/non-finite values (which carry no
  /// exception) abort with an easybo::Error.
  Abort,
  /// Drop the point: no observation is added, but the point is remembered
  /// for proposal dedup so the crashing location is never re-proposed
  /// verbatim. The failed evaluation still consumes simulation budget.
  Discard,
  /// Absorb the point as a pseudo-observation at a low quantile of the
  /// observed FOMs (BoConfig::eval_failure_quantile; 0 = worst observed),
  /// so the GP's posterior mean drops around the crashing region and the
  /// acquisition stops re-proposing it — the same mechanism as the Eq. 9
  /// hallucination, but permanent. Falls back to Discard while no real
  /// observation exists yet (nothing to anchor the quantile on).
  Penalize,
};

const char* to_string(Mode mode);
const char* to_string(AcqKind kind);
const char* to_string(EvalFailurePolicy policy);

/// Full engine configuration. Defaults follow the paper (§III-B/§IV).
struct BoConfig {
  Mode mode = Mode::AsyncBatch;
  AcqKind acq = AcqKind::EasyBo;
  /// EasyBO hallucination penalization (§III-C). Only meaningful for
  /// AcqKind::EasyBo in batch modes; ignored elsewhere.
  bool penalize = true;
  std::size_t batch = 5;        ///< B; forced to 1 in Sequential mode
  std::size_t init_points = 20; ///< random initial design size
  std::size_t max_sims = 150;   ///< total simulations including the init
  double lambda = 6.0;          ///< EasyBO kappa range [0, lambda] (§III-B)
  /// Ablation switch: draw w ~ U[0,1] instead of w = kappa/(kappa+1).
  /// Isolates the value of EasyBO's nonlinear weight map (Fig. 2).
  bool uniform_w = false;
  double lcb_kappa = 2.0;       ///< kappa for the LCB baseline
  double bucb_kappa = 2.0;      ///< kappa for the BUCB extension baseline
  std::size_t ts_candidates = 192;  ///< Thompson-sampling candidate count
  double hedge_eta = 1.0;       ///< GP-Hedge softmax temperature
  double ei_xi = 0.0;           ///< EI exploration offset
  double hc_d = 0.1;            ///< pHCBO penalization radius (normalized)
  double hc_n = 1.0;            ///< pHCBO penalty magnitude N_HC
  std::size_t refit_every = 5;  ///< retrain hyperparameters every k obs
  /// AsyncBatch slot rotation for the per-slot weight schemes (pBO grid,
  /// pHCBO penalty histories): when true, an asynchronous proposal with
  /// tag t uses slot t % batch — the same spread synchronous batch mode
  /// gets from its position within the batch — instead of the historical
  /// behavior of always using slot 0 (every async pHCBO penalty landing
  /// in one shared history). Off by default: turning it on shifts the
  /// proposal stream of AsyncBatch + Pbo/Phcbo runs, so existing journals
  /// and golden sequences keep reproducing. Fingerprinted.
  bool async_slot_rotation = false;
  std::string kernel = "se";    ///< "se" (paper) or "matern52" (extension)
  /// Surrogate backend: "exact" (GpRegressor, the paper's jittered-
  /// Cholesky GP — O(n^3) fit) or "rff" (RffRegressor, random Fourier
  /// features — O(n M^2) fit, O(M^2) predict, for budgets the exact GP
  /// cannot afford). "rff" requires kernel == "se". Fingerprinted: a
  /// checkpoint taken under one backend refuses to resume under another.
  std::string gp_backend = "exact";
  /// RFF backend only: number of spectral frequencies M (feature
  /// dimension 2M). More features = tighter kernel approximation,
  /// O(1/sqrt(M)) error. Fingerprinted.
  std::size_t rff_features = 128;
  /// RFF backend only: hyperparameter training proxy size. Backends
  /// without an analytic LML gradient are trained by fitting an exact GP
  /// on an evenly strided subset of at most this many observations and
  /// copying the optimized hyperparameters over. Fingerprinted.
  std::size_t rff_train_subset = 512;
  /// Hallucinated posteriors (Eq. 9) keep the BASE model's empirical
  /// constant mean instead of recomputing it over data + pseudo
  /// observations. The historical stream recomputes (pseudo points drag
  /// the mean toward the model's own predictions — harmless but
  /// conceptually wrong, the pseudo targets carry no information);
  /// pinning is the principled choice for new runs. Off by default so
  /// existing journals and golden sequences keep reproducing.
  /// Fingerprinted.
  bool pin_hallucinated_mean = false;
  /// Serve hallucinated posteriors as zero-copy overlays over the base
  /// model's factor instead of deep-copied augmented models. Bit-identical
  /// proposal streams either way (the overlay replays the materialized
  /// arithmetic element for element) — this switch only exists so tests
  /// and benchmarks can pit the two paths against each other. Not
  /// fingerprinted: flipping it never changes a proposal.
  bool hallucinate_overlay = true;
  std::uint64_t seed = 1;
  /// Collect the observability report (src/obs) into BoResult::metrics:
  /// per-phase timers, Cholesky refactor/extend + dedup + refit counters,
  /// eval failure/retry/timeout counters + per-eval outcome log,
  /// per-worker busy/idle. Off by default — the null sink costs nothing
  /// and collection never changes the proposal sequence either way.
  bool collect_metrics = false;
  /// Adapt the hyper-refit cadence to measured cost mid-run: corrected
  /// EMAs of refit time and objective-eval time pick the next refit point
  /// so refitting stays near adapt_refit_budget of eval spend (see
  /// bo::adaptive_refit_gap and docs/telemetry.md). Wall-clock driven, so
  /// the proposal stream is NOT reproducible across machines with it on.
  /// Off by default — all seed streams stay bit-identical. Not
  /// fingerprinted: the chosen schedule rides in snapshots either way.
  bool adapt_refit_cadence = false;
  /// Target ratio of hyper-refit time to objective-eval time when
  /// adapt_refit_cadence is on. 0.1 = spend at most ~10% of eval time
  /// refitting. Not fingerprinted.
  double adapt_refit_budget = 0.1;

  // --- fault tolerance (sched::EvalSupervisor; docs/failure-model.md) ---
  /// Failure policy once supervision gives up on an evaluation.
  EvalFailurePolicy on_eval_failure = EvalFailurePolicy::Abort;
  /// Per-attempt evaluation deadline in executor seconds (virtual time on
  /// optimize(), wall clock on optimize_parallel()); 0 disables it.
  double eval_timeout = 0.0;
  /// Retries per evaluation for transient failures (exceptions and
  /// non-finite values), with capped exponential backoff.
  std::size_t eval_max_retries = 0;
  double eval_backoff_init = 0.5;    ///< backoff before the 1st retry (s)
  double eval_backoff_factor = 2.0;  ///< growth per further retry
  double eval_backoff_max = 30.0;    ///< backoff cap (s)
  double eval_backoff_jitter = 0.1;  ///< uniform +- fraction per delay
  /// Retry timed-out attempts too (each retry burns another deadline).
  bool eval_retry_timeouts = false;
  /// Penalize policy: the pseudo-observation is this quantile of the
  /// observed FOMs (0 = worst observed, 0.5 = median).
  double eval_failure_quantile = 0.0;

  // --- durability (checkpoint/resume; docs/checkpoint-format.md) --------
  /// Base path for crash-safe run state. Empty (the default) disables
  /// durability entirely and keeps every run bit-identical to earlier
  /// releases. Non-empty: the engine appends one fsync'd, checksummed
  /// line per completed/failed evaluation to "<path>.journal" and
  /// periodically rewrites "<path>.snapshot" atomically; a run killed at
  /// any point can then continue via BoEngine::resume(path) with the
  /// identical remaining proposal sequence.
  std::string checkpoint_path;
  /// Snapshot cadence: atomically rewrite the snapshot after this many
  /// journaled evaluations. The journal alone already makes resume exact
  /// (the snapshot only bounds replay cost), so large values are safe.
  std::size_t checkpoint_every = 1;

  gp::TrainerOptions trainer;   ///< hyperparameter MLE options
  acq::AcqOptOptions acq_opt;   ///< acquisition maximizer options

  /// Human-readable algorithm label in the paper's style, e.g.
  /// "EasyBO-SP-5", "pBO-10", "EI".
  std::string label() const;

  /// Throws InvalidArgument when the combination is inconsistent.
  void validate() const;
};

/// Builds the GP prior for a run: the configured kernel with lengthscales
/// started at 0.3 (moderate for unit-cube inputs). Every execution mode
/// must construct its model through this factory so the same BoConfig
/// yields the same prior whether it runs on virtual time or real threads.
std::unique_ptr<gp::Kernel> make_kernel(const BoConfig& config,
                                        std::size_t dim);

/// Builds the surrogate regressor for a run according to
/// BoConfig::gp_backend, with the make_kernel() prior. The RFF backend's
/// spectral draw is seeded from BoConfig::seed so the whole run stays a
/// deterministic function of the config.
std::unique_ptr<gp::TrainableRegressor> make_regressor(const BoConfig& config,
                                                       std::size_t dim);

}  // namespace easybo::bo
