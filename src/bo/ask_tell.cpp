#include "bo/ask_tell.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "acq/acquisition.h"
#include "common/error.h"
#include "common/sampling.h"
#include "common/stats.h"
#include "gp/trainer.h"
#include "io/json.h"

namespace easybo::bo {

std::size_t async_proposal_slot(const BoConfig& config, std::size_t tag) {
  if (!config.async_slot_rotation) return 0;  // historical behaviour
  return tag % config.batch;
}

std::size_t adaptive_refit_gap(double refit_seconds, double eval_seconds,
                               double budget, std::size_t refit_every) {
  const std::size_t lo = std::max<std::size_t>(refit_every, 1);
  const std::size_t hi = lo * 64;
  const double denom = budget * eval_seconds;
  if (!(denom > 0.0) || !std::isfinite(refit_seconds)) return hi;
  const double gap = std::ceil(refit_seconds / denom);
  if (!(gap > 0.0)) return lo;  // also catches NaN
  if (gap >= static_cast<double>(hi)) return hi;
  return std::max(lo, static_cast<std::size_t>(gap));
}

AskTellCore::AskTellCore(BoConfig config, opt::Bounds bounds,
                         std::function<double(const Vec&)> sim_time)
    : cfg_(std::move(config)),
      bounds_(std::move(bounds)),
      sim_time_(std::move(sim_time)),
      rng_(cfg_.seed),
      box_(bounds_.lower, bounds_.upper),
      model_(make_regressor(cfg_, bounds_.lower.size())) {
  cfg_.validate();
  bounds_.validate();
  if (!sim_time_) {
    sim_time_ = [](const Vec&) { return 1.0; };
  }
  if (cfg_.acq == AcqKind::Phcbo) {
    hc_penalties_.assign(cfg_.batch,
                         acq::HighCoveragePenalty(cfg_.hc_d, cfg_.hc_n));
  }
  next_hyper_refit_ = cfg_.init_points;
  proposal_counter_ = std::string("bo.proposals.") + to_string(cfg_.acq);
  config_hash_ = config_fingerprint(cfg_, bounds_);
}

void AskTellCore::set_trace(obs::TraceSink* sink) {
  trace_ = sink;
  model_->set_trace(sink);
}

// ---------------------------------------------------------------------------
// The two mutation points
// ---------------------------------------------------------------------------

namespace {

/// Clears AskTellCore::stop_ on every exit path of suggest(), thrown
/// Cancelled included — a dangling request-scoped token must never leak
/// into a later observe()'s model refresh.
class StopScope {
 public:
  StopScope(const common::StopToken*& slot, const common::StopToken* stop)
      : slot_(slot) {
    slot_ = stop;
  }
  ~StopScope() { slot_ = nullptr; }
  StopScope(const StopScope&) = delete;
  StopScope& operator=(const StopScope&) = delete;

 private:
  const common::StopToken*& slot_;
};

}  // namespace

Suggestion AskTellCore::suggest(double now, const common::StopToken* stop) {
  StopScope scope(stop_, stop);
  if (stop_ != nullptr) stop_->check("suggest admission");
  if (issued_ >= cfg_.max_sims) {
    throw Error("suggest: simulation budget exhausted (" +
                std::to_string(cfg_.max_sims) + " evaluations issued)");
  }
  Suggestion s;
  s.tag = prop_x_.size();
  if (!init_done_ &&
      obs_x_.size() + pending_tags_.size() < cfg_.init_points) {
    // Random initial design (the paper samples uniformly at random).
    // Counting pending points keeps exactly init_points anchors in flight;
    // a failed-and-discarded one frees its slot and is topped up here.
    s.is_init = true;
    s.unit_x = rng_.uniform_vector(bounds_.dim());
  } else {
    if (!init_done_) {
      if (obs_x_.size() < cfg_.init_points) {
        throw Error(
            "suggest: the initial design is still in flight; observe it "
            "before requesting a model-based proposal");
      }
      finish_init();  // just-in-time at the init/BO boundary
    }
    // Hallucinate everything in flight. Ascending tag order is suggestion
    // order — the same order the engine's loops historically grew their
    // pending vectors in.
    std::vector<Vec> pending;
    pending.reserve(pending_tags_.size());
    for (const std::size_t tag : pending_tags_) {
      pending.push_back(prop_x_[tag]);
    }
    std::size_t slot = 0;
    switch (cfg_.mode) {
      case Mode::Sequential:
        slot = 0;
        break;
      case Mode::SyncBatch:
        // Batches start against a drained pool, so the in-flight count IS
        // the position within the current batch: slots 0..k-1.
        slot = pending.size();
        break;
      case Mode::AsyncBatch:
        slot = async_proposal_slot(cfg_, s.tag);
        break;
    }
    s.unit_x = propose(pending, slot);
  }
  s.x = box_.from_unit(s.unit_x);
  s.duration = sim_time_(s.x);
  prop_x_.push_back(s.unit_x);
  prop_init_.push_back(s.is_init);
  prop_submit_.push_back(now);
  prop_duration_.push_back(s.duration);
  pending_tags_.insert(s.tag);
  ++issued_;
  return s;
}

Observed AskTellCore::observe(std::size_t tag, const Outcome& o,
                              bool draining) {
  if (tag >= prop_x_.size()) {
    throw Error("observe: evaluation " + std::to_string(tag) +
                " was never suggested (only " +
                std::to_string(prop_x_.size()) + " proposals issued)");
  }
  const auto it = pending_tags_.find(tag);
  if (it == pending_tags_.end()) {
    throw Error("observe: evaluation " + std::to_string(tag) +
                " is not pending (already observed, or never suggested)");
  }
  pending_tags_.erase(it);
  const bool was_init_done = init_done_;
  const Vec& unit_x = prop_x_[tag];

  EvalRecord rec;
  rec.x = box_.from_unit(unit_x);
  rec.start = o.start;
  rec.finish = o.finish;
  rec.worker = o.worker;
  rec.is_init = prop_init_[tag];
  rec.attempts = o.attempts;

  // Feed the adaptive cost model from the outcome's own clock (executor
  // time: virtual or wall, whichever the caller runs on). Replayed
  // outcomes are skipped — their durations belong to a previous process.
  if (cfg_.adapt_refit_cadence && !o.replayed && o.finish > o.start) {
    adapt_eval_cema_.add(o.finish - o.start);
  }

  Observed ob;
  if (o.status == sched::EvalStatus::Ok) {
    journal_eval(tag, o, "observed", o.value);  // durable before applied
    obs_x_.push_back(unit_x);
    obs_y_.push_back(o.value);
    obs_is_init_.push_back(prop_init_[tag]);
    rec.y = o.value;
    evals_.push_back(std::move(rec));
    ob.changed = true;
    ob.action = "observed";
  } else {
    if (!o.replayed) obs::count(trace_, "eval.failures");
    if (cfg_.on_eval_failure == EvalFailurePolicy::Abort) {
      journal_eval(tag, o, "abort", std::numeric_limits<double>::quiet_NaN());
      // Rethrow the objective's own exception so callers see exactly what
      // they saw before supervision existed; timeouts and non-finite
      // values never carried one, so they get a descriptive Error. A
      // replayed abort lost its exception_ptr with the original process
      // and always takes the descriptive path.
      if (o.exception) std::rethrow_exception(o.exception);
      throw Error(std::string("evaluation failed (") +
                  sched::to_string(o.status) +
                  ") and on_eval_failure is abort" +
                  (o.error.empty() ? "" : ": " + o.error));
    }

    rec.failed = true;
    rec.failure = sched::to_string(o.status);

    // Penalize needs at least one real observation to anchor the
    // quantile; until then it degrades to Discard.
    if (cfg_.on_eval_failure == EvalFailurePolicy::Penalize &&
        !obs_y_.empty()) {
      if (!o.replayed) obs::count(trace_, "eval.penalized");
      const double y_pen = quantile_of(obs_y_, cfg_.eval_failure_quantile);
      journal_eval(tag, o, "penalized", y_pen);
      obs_x_.push_back(unit_x);
      obs_y_.push_back(y_pen);
      obs_is_init_.push_back(prop_init_[tag]);
      rec.y = y_pen;
      evals_.push_back(std::move(rec));
      ob.changed = true;
      ob.action = "penalized";
    } else {
      if (!o.replayed) obs::count(trace_, "eval.discarded");
      journal_eval(tag, o, "discarded",
                   std::numeric_limits<double>::quiet_NaN());
      failed_x_.push_back(unit_x);  // dedup never re-proposes it verbatim
      rec.y = std::numeric_limits<double>::quiet_NaN();
      evals_.push_back(std::move(rec));
      ob.changed = false;
      ob.action = "discarded";
    }
  }

  // Model refresh, exactly where the engine's loops refreshed it: never
  // before finish_init() trained the first model, never while draining,
  // per observation in Sequential/AsyncBatch, and at the in-flight-batch
  // drain in SyncBatch (the old barrier's single post-drain update).
  if (was_init_done && !draining) {
    if (cfg_.mode == Mode::SyncBatch) {
      sync_dirty_ |= ob.changed;
      if (pending_tags_.empty() && sync_dirty_) {
        update_model(/*force_train=*/false);
        sync_dirty_ = false;
      }
    } else if (ob.changed) {
      update_model(/*force_train=*/false);
    }
  }
  return ob;
}

void AskTellCore::finish_init() {
  if (init_done_) return;
  if (obs_x_.empty()) {
    throw Error(
        "every initial evaluation failed; no observation to build a "
        "model from (see docs/failure-model.md)");
  }
  update_model(/*force_train=*/true);
  init_done_ = true;
}

// ---------------------------------------------------------------------------
// Proposal
// ---------------------------------------------------------------------------

Vec AskTellCore::propose(const std::vector<Vec>& pending, std::size_t slot) {
  const std::size_t dim = bounds_.dim();
  const std::vector<Vec> anchors = {obs_x_[incumbent_index()]};
  obs::count(trace_, proposal_counter_);

  // Thompson sampling picks from a sampled posterior path directly; it
  // never goes through the generic acquisition maximizer.
  if (cfg_.acq == AcqKind::Ts) {
    return propose_thompson(pending);
  }
  if (cfg_.acq == AcqKind::Hedge) {
    return propose_hedge(pending);
  }

  // The hallucinated posterior / base acquisition (when used) must
  // outlive the maximization.
  std::unique_ptr<gp::Regressor> hallucinated;
  std::unique_ptr<acq::AcquisitionFn> base_acq;
  std::unique_ptr<acq::AcquisitionFn> fn;

  switch (cfg_.acq) {
    case AcqKind::Lcb:
      fn = std::make_unique<acq::Ucb>(model_.get(), cfg_.lcb_kappa);
      break;
    case AcqKind::Ei: {
      const double best_z = zscore_.transform(obs_y_[incumbent_index()]);
      fn = std::make_unique<acq::Ei>(model_.get(), best_z, cfg_.ei_xi);
      break;
    }
    case AcqKind::EasyBo: {
      const double w = cfg_.uniform_w
                           ? rng_.uniform()
                           : acq::sample_easybo_weight(rng_, cfg_.lambda);
      if (cfg_.penalize && !pending.empty()) {
        hallucinated = hallucinate_pending(pending);
        fn = std::make_unique<acq::WeightedUcb>(model_.get(),
                                                hallucinated.get(), w);
      } else {
        fn = std::make_unique<acq::WeightedUcb>(model_.get(), model_.get(),
                                                w);
      }
      break;
    }
    case AcqKind::Pbo: {
      const Vec grid = acq::pbo_weight_grid(cfg_.batch);
      fn = std::make_unique<acq::WeightedUcb>(model_.get(), model_.get(),
                                              grid[slot % grid.size()]);
      break;
    }
    case AcqKind::Phcbo: {
      const Vec grid = acq::pbo_weight_grid(cfg_.batch);
      fn = std::make_unique<acq::PhcboAcquisition>(
          model_.get(), grid[slot % grid.size()],
          &hc_penalties_[slot % hc_penalties_.size()]);
      break;
    }
    case AcqKind::Bucb: {
      if (!pending.empty()) {
        hallucinated = hallucinate_pending(pending);
        fn = std::make_unique<acq::Bucb>(model_.get(), hallucinated.get(),
                                         cfg_.bucb_kappa);
      } else {
        fn = std::make_unique<acq::Bucb>(model_.get(), model_.get(),
                                         cfg_.bucb_kappa);
      }
      break;
    }
    case AcqKind::Lp: {
      const double best_z = zscore_.transform(obs_y_[incumbent_index()]);
      base_acq = std::make_unique<acq::Ei>(model_.get(), best_z, cfg_.ei_xi);
      const double lipschitz = acq::estimate_lipschitz(*model_, rng_);
      fn = std::make_unique<acq::LocalPenalization>(
          base_acq.get(), model_.get(), pending, lipschitz, best_z);
      break;
    }
    case AcqKind::Ts:
    case AcqKind::Hedge:
      break;  // handled above
  }

  auto best = acq::maximize_acquisition(*fn, dim, rng_, anchors,
                                        cfg_.acq_opt, trace_, stop_);
  Vec x = dedup(std::move(best.best_x), pending);
  if (cfg_.acq == AcqKind::Phcbo) {
    hc_penalties_[slot % hc_penalties_.size()].record(x);
  }
  return x;
}

Vec AskTellCore::propose_thompson(const std::vector<Vec>& pending) {
  // Candidate set: shifted Sobol + jittered incumbent copies. With
  // penalization, sample from the hallucinated posterior so pending
  // regions carry no leftover uncertainty to exploit. Candidate
  // generation through the posterior argmax is this algorithm's
  // acquisition maximization, hence the span over the whole body.
  obs::ScopedTimer span(trace_, obs::Phase::AcqMaximize);
  if (stop_ != nullptr) stop_->check("Thompson candidate generation");
  const std::size_t dim = bounds_.dim();
  std::vector<Vec> candidates;
  const std::size_t sobol_count =
      std::max<std::size_t>(cfg_.ts_candidates, 16);
  if (dim <= SobolSequence::kMaxDim) {
    SobolSequence sobol(dim);
    Vec shift = rng_.uniform_vector(dim);
    for (std::size_t i = 0; i < sobol_count; ++i) {
      Vec p = sobol.next();
      for (std::size_t j = 0; j < dim; ++j) {
        p[j] += shift[j];
        if (p[j] >= 1.0) p[j] -= 1.0;
      }
      candidates.push_back(std::move(p));
    }
  } else {
    for (std::size_t i = 0; i < sobol_count; ++i) {
      candidates.push_back(rng_.uniform_vector(dim));
    }
  }
  const Vec& incumbent = obs_x_[incumbent_index()];
  for (int k = 0; k < 8; ++k) {
    Vec p = incumbent;
    for (auto& v : p) v = std::clamp(v + rng_.normal(0.0, 0.05), 0.0, 1.0);
    candidates.push_back(std::move(p));
  }

  std::size_t pick;
  if (cfg_.penalize && !pending.empty()) {
    const auto augmented = hallucinate_pending(pending);
    pick = acq::thompson_sample_argmax(*augmented, candidates, rng_);
  } else {
    pick = acq::thompson_sample_argmax(*model_, candidates, rng_);
  }
  return dedup(std::move(candidates[pick]), pending);
}

std::unique_ptr<gp::Regressor> AskTellCore::hallucinate_pending(
    const std::vector<Vec>& pending) const {
  if (!cfg_.hallucinate_overlay) {
    // The materialized deep copy the overlay is proven bit-identical
    // against; kept reachable so tests and benchmarks can pit the two
    // paths against each other. Only the exact backend has one.
    if (const auto* exact =
            dynamic_cast<const gp::GpRegressor*>(model_.get())) {
      return std::make_unique<gp::GpRegressor>(
          exact->with_hallucinated(pending, cfg_.pin_hallucinated_mean));
    }
  }
  return model_->hallucinate(pending, cfg_.pin_hallucinated_mean);
}

Vec AskTellCore::propose_hedge(const std::vector<Vec>& pending) {
  const std::size_t dim = bounds_.dim();
  const std::vector<Vec> anchors = {obs_x_[incumbent_index()]};

  // Reward the previous nominees under the refreshed model first.
  if (!hedge_nominees_.empty()) {
    Vec means(acq::HedgePortfolio::kMembers);
    for (std::size_t i = 0; i < hedge_nominees_.size(); ++i) {
      means[i] = model_->predict(hedge_nominees_[i]).mean;
    }
    hedge_.reward(means);
  }

  // Each member nominates its own maximizer.
  const double best_z = zscore_.transform(obs_y_[incumbent_index()]);
  const acq::Ei ei(model_.get(), best_z, cfg_.ei_xi);
  const acq::Pi pi(model_.get(), best_z, cfg_.ei_xi);
  const acq::Ucb ucb(model_.get(), cfg_.lcb_kappa);
  const acq::AcquisitionFn* members[] = {&ei, &pi, &ucb};

  hedge_nominees_.clear();
  for (const auto* member : members) {
    hedge_nominees_.push_back(acq::maximize_acquisition(
                                  *member, dim, rng_, anchors, cfg_.acq_opt,
                                  trace_, stop_)
                                  .best_x);
  }
  const std::size_t choice = hedge_.choose(rng_);
  return dedup(hedge_nominees_[choice], pending);
}

Vec AskTellCore::dedup(Vec x, const std::vector<Vec>& pending) {
  if (failed_x_.empty()) {
    return dedup_proposal(std::move(x), obs_x_, pending, rng_, trace_);
  }
  // Discarded failure locations block proposals too: re-evaluating a point
  // that just crashed verbatim would burn budget on a known failure.
  std::vector<Vec> blocked = pending;
  blocked.insert(blocked.end(), failed_x_.begin(), failed_x_.end());
  return dedup_proposal(std::move(x), obs_x_, blocked, rng_, trace_);
}

Vec dedup_proposal(Vec x, const std::vector<Vec>& observed,
                   const std::vector<Vec>& pending, Rng& rng,
                   obs::TraceSink* trace) {
  auto collides = [&](const Vec& candidate) {
    auto too_close = [&](const Vec& other) {
      return linalg::dist_sq(candidate, other) < 1e-12;
    };
    return std::any_of(observed.begin(), observed.end(), too_close) ||
           std::any_of(pending.begin(), pending.end(), too_close);
  };
  if (!collides(x)) return x;

  // Nudge inside the cube; an exact duplicate adds no information and can
  // degrade the covariance conditioning. A single nudge is not enough: on
  // a boundary duplicate (e.g. the unit-cube corner the acquisition keeps
  // proposing) the clamp can put the point right back onto the duplicate,
  // so retry, then give up on locality and resample uniformly.
  constexpr int kNudges = 4;
  for (int attempt = 0; attempt < kNudges; ++attempt) {
    Vec nudged = x;
    for (auto& v : nudged) {
      v = std::clamp(v + rng.normal(0.0, 0.01), 0.0, 1.0);
    }
    obs::count(trace, "bo.dedup_nudge");
    if (!collides(nudged)) return nudged;
  }
  constexpr int kResamples = 16;
  Vec resampled = std::move(x);
  for (int attempt = 0; attempt < kResamples; ++attempt) {
    resampled = rng.uniform_vector(resampled.size());
    obs::count(trace, "bo.dedup_resample");
    if (!collides(resampled)) break;
  }
  return resampled;  // last candidate even if saturated: progress > purity
}

// ---------------------------------------------------------------------------
// Model management
// ---------------------------------------------------------------------------

void AskTellCore::update_model(bool force_train) {
  {
    obs::ScopedTimer span(trace_, obs::Phase::ModelFit);
    zscore_.refit(obs_y_);
    model_->set_data(obs_x_, zscore_.transform(obs_y_));
  }

  const bool train = force_train || obs_x_.size() >= next_hyper_refit_;
  if (train) {
    const auto refit_begin = cfg_.adapt_refit_cadence
                                 ? std::chrono::steady_clock::now()
                                 : std::chrono::steady_clock::time_point();
    {
      obs::ScopedTimer span(trace_, obs::Phase::HyperRefit);
      if (model_->supports_lml_gradient()) {
        gp::train_mle(*model_, rng_, cfg_.trainer, stop_);
      } else {
        train_model_via_proxy();
      }
    }
    obs::count(trace_, "bo.hyper_refit");
    ++hyper_refits_;
    const auto n = obs_x_.size();
    if (cfg_.adapt_refit_cadence) {
      adapt_refit_cema_.add(std::chrono::duration<double>(
                                std::chrono::steady_clock::now() -
                                refit_begin)
                                .count());
      if (adapt_eval_cema_.count() > 0) {
        // Cost-driven schedule: wait long enough that refitting stays
        // near adapt_refit_budget of measured eval spend.
        next_hyper_refit_ =
            n + adaptive_refit_gap(adapt_refit_cema_.value(),
                                   adapt_eval_cema_.value(),
                                   cfg_.adapt_refit_budget,
                                   cfg_.refit_every);
        obs::count(trace_, "bo.adapt_refit");
      } else {
        next_hyper_refit_ = n + cfg_.refit_every;
      }
    } else {
      // Geometrically thinning schedule: early observations shift the
      // hyperparameters a lot, late ones barely; this caps total O(n^3)
      // training cost without changing behaviour materially.
      next_hyper_refit_ = std::max(
          n + cfg_.refit_every,
          static_cast<std::size_t>(static_cast<double>(n) * 1.5));
    }
  } else {
    obs::ScopedTimer span(trace_, obs::Phase::ModelFit);
    model_->fit();
  }
}

void AskTellCore::train_model_via_proxy() {
  // Evenly strided subset (always includes index 0) of at most
  // rff_train_subset observations — cheap O(s^3) exact training whose
  // hyperparameters transfer to the approximate backend.
  const std::size_t n = obs_x_.size();
  const std::size_t cap = std::max<std::size_t>(cfg_.rff_train_subset, 2);
  const std::size_t stride = (n + cap - 1) / cap;
  const Vec ys_z = zscore_.transform(obs_y_);
  std::vector<Vec> xs;
  Vec ys;
  for (std::size_t i = 0; i < n; i += stride) {
    xs.push_back(obs_x_[i]);
    ys.push_back(ys_z[i]);
  }
  gp::GpRegressor proxy(make_kernel(cfg_, bounds_.dim()), 1e-6);
  proxy.set_log_hyperparams(model_->log_hyperparams());  // warm start
  proxy.set_data(std::move(xs), std::move(ys));
  gp::train_mle(proxy, rng_, cfg_.trainer, stop_);
  model_->set_log_hyperparams(proxy.log_hyperparams());
  model_->fit();
  obs::count(trace_, "bo.proxy_train");
}

std::size_t AskTellCore::incumbent_index() const {
  EASYBO_REQUIRE(!obs_y_.empty(), "incumbent of empty dataset");
  return linalg::argmax(obs_y_);
}

Vec AskTellCore::to_design(const Vec& unit_x) const {
  return box_.from_unit(unit_x);
}

double AskTellCore::best_y() const { return obs_y_[incumbent_index()]; }

Vec AskTellCore::best_x() const {
  return box_.from_unit(obs_x_[incumbent_index()]);
}

// ---------------------------------------------------------------------------
// Durability (docs/checkpoint-format.md)
// ---------------------------------------------------------------------------

void AskTellCore::set_checkpoint_path(const std::string& path) {
  EASYBO_REQUIRE(!journal_.is_open(),
                 "AskTellCore: checkpoint path cannot change after "
                 "journaling started");
  cfg_.checkpoint_path = path;
}

void AskTellCore::start_fresh_journal() {
  obs::ScopedTimer span(trace_, obs::Phase::Checkpoint);
  journal_.open(journal_file(cfg_.checkpoint_path), /*truncate_to=*/0);
  JournalHeader header;
  header.config_hash = config_hash_;
  header.seed = cfg_.seed;
  journal_.append(header.to_payload());
}

void AskTellCore::reopen_journal(std::size_t valid_bytes, std::size_t lines,
                                 std::size_t absorbed) {
  // Truncating to valid_bytes drops a torn tail: a record that never
  // became durable and will be rewritten when the caller's replay reaches
  // that evaluation again.
  journal_.open(journal_file(cfg_.checkpoint_path),
                static_cast<long>(valid_bytes));
  journal_lines_ = lines;
  lines_at_snapshot_ = absorbed;
}

void AskTellCore::journal_eval(std::size_t tag, const Outcome& o,
                               const char* action, double y) {
  if (!journal_.is_open() || o.replayed) return;
  JournalRecord rec;
  rec.index = journal_lines_;
  rec.tag = tag;
  rec.status = sched::to_string(o.status);
  rec.action = action;
  rec.attempts = o.attempts;
  rec.worker = o.worker;
  rec.start = o.start;
  rec.finish = o.finish;
  rec.is_init = prop_init_[tag];
  rec.x = prop_x_[tag];
  rec.y = y;
  rec.error = o.error;
  obs::ScopedTimer span(trace_, obs::Phase::Checkpoint);
  journal_.append(rec.to_payload());
  ++journal_lines_;
  obs::count(trace_, "ckpt.journal_appends");
}

BoCheckpoint AskTellCore::make_snapshot(double now, double busy,
                                        const RngState& sup_rng) const {
  BoCheckpoint snap;
  snap.config_hash = config_hash_;
  snap.journal_count = journal_lines_;
  snap.now = now;
  snap.busy = busy;
  snap.init_done = init_done_;
  snap.sync_dirty = sync_dirty_;
  snap.issued = issued_;
  snap.rng = rng_.save();
  snap.sup_rng = sup_rng;
  snap.obs_x = obs_x_;
  snap.obs_y = obs_y_;
  snap.obs_is_init = obs_is_init_;
  snap.failed_x = failed_x_;
  snap.prop_x = prop_x_;
  snap.prop_init = prop_init_;
  snap.prop_submit = prop_submit_;
  snap.prop_duration = prop_duration_;
  snap.pending.assign(pending_tags_.begin(), pending_tags_.end());
  snap.hc_histories.reserve(hc_penalties_.size());
  for (const auto& hc : hc_penalties_) {
    snap.hc_histories.emplace_back(hc.history().begin(), hc.history().end());
  }
  snap.hedge_gains = hedge_.gains();
  snap.hedge_nominees = hedge_nominees_;
  snap.next_hyper_refit = next_hyper_refit_;
  snap.hyper_refits = hyper_refits_;
  if (init_done_) snap.gp_log_hyperparams = model_->log_hyperparams();
  return snap;
}

void AskTellCore::write_snapshot(double now, double busy,
                                 const RngState& sup_rng) {
  obs::ScopedTimer span(trace_, obs::Phase::Checkpoint);
  const BoCheckpoint snap = make_snapshot(now, busy, sup_rng);
  io::atomic_write_file(snapshot_file(cfg_.checkpoint_path),
                        io::frame_line(snap.to_payload()) + "\n");
  lines_at_snapshot_ = journal_lines_;
  obs::count(trace_, "ckpt.snapshots");
}

void AskTellCore::restore_snapshot(const BoCheckpoint& snap,
                                   const std::string& origin) {
  rng_.load(snap.rng);
  obs_x_ = snap.obs_x;
  obs_y_ = snap.obs_y;
  obs_is_init_ = snap.obs_is_init;
  failed_x_ = snap.failed_x;
  prop_x_ = snap.prop_x;
  prop_init_ = snap.prop_init;
  prop_submit_ = snap.prop_submit;
  prop_duration_ = snap.prop_duration;
  issued_ = snap.issued;
  init_done_ = snap.init_done;
  next_hyper_refit_ = snap.next_hyper_refit;
  hyper_refits_ = snap.hyper_refits;
  if (cfg_.acq == AcqKind::Phcbo) {
    if (snap.hc_histories.size() != hc_penalties_.size()) {
      throw io::CheckpointError(
          "snapshot " + origin + " carries " +
          std::to_string(snap.hc_histories.size()) +
          " pHCBO penalty histories; this configuration needs " +
          std::to_string(hc_penalties_.size()));
    }
    for (std::size_t i = 0; i < hc_penalties_.size(); ++i) {
      hc_penalties_[i] = acq::HighCoveragePenalty(cfg_.hc_d, cfg_.hc_n);
      for (const Vec& x : snap.hc_histories[i]) hc_penalties_[i].record(x);
    }
  }
  if (snap.hedge_gains.size() == acq::HedgePortfolio::kMembers) {
    hedge_.set_gains(snap.hedge_gains);
  }
  hedge_nominees_ = snap.hedge_nominees;
  if (init_done_ && !obs_x_.empty()) {
    zscore_.refit(obs_y_);
    model_->set_data(obs_x_, zscore_.transform(obs_y_));
    if (!snap.gp_log_hyperparams.empty()) {
      model_->set_log_hyperparams(snap.gp_log_hyperparams);
    }
    model_->fit();
  }
  pending_tags_.clear();
  for (const std::size_t tag : snap.pending) {
    if (tag >= prop_x_.size()) {
      throw io::CheckpointError(
          "snapshot " + origin + " marks evaluation " + std::to_string(tag) +
          " in flight but records only " + std::to_string(prop_x_.size()) +
          " proposals");
    }
    pending_tags_.insert(tag);
  }
  sync_dirty_ = snap.sync_dirty;
}

}  // namespace easybo::bo
