#include "bo/result.h"

#include <algorithm>

#include "common/error.h"

namespace easybo::bo {

double BoResult::utilization(std::size_t workers) const {
  EASYBO_REQUIRE(workers >= 1, "utilization: workers must be >= 1");
  if (makespan <= 0.0) return 0.0;
  return total_sim_time / (makespan * static_cast<double>(workers));
}

std::vector<std::pair<double, double>> BoResult::best_vs_time() const {
  std::vector<const EvalRecord*> ordered;
  ordered.reserve(evals.size());
  for (const auto& e : evals) {
    if (!e.failed) ordered.push_back(&e);
  }
  std::sort(ordered.begin(), ordered.end(),
            [](const EvalRecord* a, const EvalRecord* b) {
              return a->finish < b->finish;
            });
  std::vector<std::pair<double, double>> series;
  series.reserve(ordered.size());
  double best = 0.0;
  bool first = true;
  for (const auto* e : ordered) {
    best = first ? e->y : std::max(best, e->y);
    first = false;
    series.emplace_back(e->finish, best);
  }
  return series;
}

Vec BoResult::best_vs_evals() const {
  Vec series;
  series.reserve(evals.size());
  double best = 0.0;
  bool first = true;
  for (const auto& e : evals) {
    if (e.failed) continue;  // pseudo/NaN values are not real observations
    best = first ? e.y : std::max(best, e.y);
    first = false;
    series.push_back(best);
  }
  return series;
}

double BoResult::time_to_target(double target) const {
  for (const auto& [time, best] : best_vs_time()) {
    if (best >= target) return time;
  }
  return -1.0;
}

}  // namespace easybo::bo
