#pragma once
/// \file ask_tell.h
/// \brief The ask/tell (suggest/observe) core of the BO engine.
///
/// AskTellCore is the proposal/observation state machine extracted from
/// BoEngine: it owns everything that shapes the proposal stream — the GP
/// model, normalizers, the proposal RNG stream, the dedup blocklists, the
/// pHCBO penalty slots, the GP-Hedge portfolio, the hyper-refit schedule,
/// the failure policies and the durability hooks (journal + snapshot) —
/// and exposes exactly two mutation points:
///
///   suggest()            -> {tag, x}   the next point to evaluate
///   observe(tag, outcome)              the terminal result of one tag
///
/// Nothing about *execution* lives here: no executor, no supervisor, no
/// clock, no objective. The core never evaluates anything — it hands out
/// proposals keyed by tag and absorbs outcomes keyed by tag, in whatever
/// order the caller delivers them. That inversion is what lets one engine
/// drive it over a virtual-time or thread executor (BoEngine::run is now a
/// thin driver) and what lets a long-lived server host many concurrent
/// cores across a process boundary (src/serve), per Nomura 2020's
/// suggest/observe scaling argument.
///
/// Pending-point bookkeeping follows Alvi et al. 2019: every suggestion is
/// pending (hallucinated by the penalizing acquisitions) from suggest()
/// until its observe(tag, ...). The pending set is keyed by tag — never by
/// point value — so two coincidentally equal pending points (a saturated
/// dedup resample, a replayed checkpoint) stay distinct, and observing a
/// tag twice is a loud error instead of silently erasing a neighbour.
///
/// Determinism contract: given the same BoConfig/Bounds and the same
/// interleaving of suggest/observe calls (same tags, same outcomes), the
/// core produces a bit-identical proposal sequence — including across a
/// snapshot/restore cut at any point between calls. BoEngine's drivers
/// call suggest/observe in exactly the order the old self-owned loops
/// proposed and handled, which keeps every pre-refactor run bit-identical
/// (tests/test_ask_tell.cpp pins this parity).

#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "acq/thompson.h"
#include "bo/checkpoint.h"
#include "bo/config.h"
#include "bo/result.h"
#include "common/rng.h"
#include "common/stop_token.h"
#include "gp/gp.h"
#include "gp/normalizer.h"
#include "io/journal.h"
#include "obs/online_stats.h"
#include "obs/trace.h"
#include "opt/objective.h"
#include "sched/supervisor.h"

namespace easybo::bo {

/// One proposal handed out by AskTellCore::suggest().
struct Suggestion {
  std::size_t tag = 0;   ///< identity: pass it back to observe()
  Vec unit_x;            ///< the proposal in normalized [0,1]^d space
  Vec x;                 ///< the same point in design space
  bool is_init = false;  ///< part of the random initial design
  /// Nominal duration from the sim-time model (1.0 when none was given):
  /// what a virtual-time executor should charge for the evaluation.
  double duration = 1.0;
};

/// The terminal result of one suggested evaluation, as told to observe().
struct Outcome {
  sched::EvalStatus status = sched::EvalStatus::Ok;
  double value = 0.0;            ///< observed FOM (ok outcomes only)
  std::uint32_t attempts = 1;    ///< supervised attempts (1 + retries)
  std::size_t worker = 0;        ///< worker slot attribution (bookkeeping)
  double start = 0.0;            ///< logical start time of the evaluation
  double finish = 0.0;           ///< logical finish time
  std::string error;             ///< what() of the failure, when any
  std::exception_ptr exception;  ///< original exception (Abort rethrow)
  /// A journaled outcome re-enacted during resume replay: already durable,
  /// so observe() must not journal it again nor count it in live metrics.
  bool replayed = false;
};

/// What observe() did with an outcome.
struct Observed {
  bool changed = false;  ///< the model's dataset gained a (pseudo) point
  /// "observed" | "penalized" | "discarded" — the journal action applied.
  const char* action = "";
};

/// Selects the pHCBO/pBO weight slot for an asynchronous proposal: slot 0
/// always (the historical behaviour, the default), or — with
/// BoConfig::async_slot_rotation — the proposal tag modulo the batch size,
/// which spreads async proposals across the per-slot weight grid and
/// penalty histories exactly as synchronous batch mode does (the paper's
/// per-slot scheme). Exposed as a free function so the rotation semantics
/// are directly testable.
std::size_t async_proposal_slot(const BoConfig& config, std::size_t tag);

/// The adaptive hyper-refit schedule (BoConfig::adapt_refit_cadence): how
/// many further observations to wait before the next hyperparameter MLE,
/// given corrected-EMA cost estimates. The policy amortizes one refit
/// over enough evaluations that refit time stays near \p budget (a ratio,
/// e.g. 0.1 = 10%) of evaluation time:
///
///   gap = ceil(refit_seconds / (budget * eval_seconds))
///
/// clamped to [refit_every, 64 * refit_every] so a degenerate estimate
/// (zero-cost evals, enormous refits) can neither refit every step nor
/// freeze the hyperparameters for the rest of the run. Pure — no clocks,
/// no state — so the policy is unit-testable; AskTellCore feeds it from
/// its internal CEMAs.
std::size_t adaptive_refit_gap(double refit_seconds, double eval_seconds,
                               double budget, std::size_t refit_every);

/// The suggest/observe core. Construct with the same arguments BoEngine
/// takes minus the objective (evaluating is the caller's job), then
/// alternate suggest() and observe() in any order that respects the
/// pending-set semantics documented above. See engine.h for the
/// loop-driver counterpart and src/serve for the multi-session host.
class AskTellCore {
 public:
  /// \param config    algorithm configuration (validated here)
  /// \param bounds    design box (the core normalizes internally)
  /// \param sim_time  nominal duration model for Suggestion::duration;
  ///                  defaults to a constant 1s when null
  AskTellCore(BoConfig config, opt::Bounds bounds,
              std::function<double(const Vec&)> sim_time = nullptr);

  /// Installs a non-owning trace sink (nullptr restores the zero-cost
  /// null default). Unlike BoEngine, the core never owns a recorder —
  /// BoConfig::collect_metrics is the engine's convenience, not the
  /// core's.
  void set_trace(obs::TraceSink* sink);
  obs::TraceSink* trace() const { return trace_; }

  // --- the two mutation points ------------------------------------------

  /// Proposes the next evaluation. While the initial design is incomplete
  /// (observed + pending < init_points) this returns a uniform random
  /// init point; afterwards it proposes through the configured
  /// acquisition, hallucinating every pending point, with the weight slot
  /// chosen by the mode (sync: position within the in-flight batch;
  /// async: async_proposal_slot()). The first post-init call trains the
  /// model (finish_init()) if the caller has not already.
  ///
  /// \param now  the caller's logical clock, recorded as the proposal's
  ///             submit time (snapshot re-anchoring); pass 0 when there
  ///             is no meaningful clock.
  /// \param stop optional cancellation token, polled at the safe
  ///             checkpoints inside model training and acquisition
  ///             maximization. When it fires, common::Cancelled unwinds
  ///             out of this call BEFORE the proposal is committed —
  ///             nothing was issued, no tag exists — but the in-memory
  ///             model/normalizer/RNG may have been touched mid-flight,
  ///             so a cancelled core must be discarded and rebuilt from
  ///             its snapshot (the serve layer drops the Session; the
  ///             disk still holds the pre-suggest state). Polls consume
  ///             no RNG: a call that survives its token returns the
  ///             bit-identical suggestion of a call without one.
  /// Throws easybo::Error when the simulation budget is exhausted, or
  /// when the initial design is fully in flight but not yet observed
  /// (a BO proposal needs a trained model; observe first).
  Suggestion suggest(double now = 0.0,
                     const common::StopToken* stop = nullptr);

  /// Absorbs the terminal outcome of suggestion \p tag: journals it
  /// (durable before applied), then records an observation (ok), or
  /// applies BoConfig::on_eval_failure — Abort rethrows the objective's
  /// failure out of this call. Removes \p tag from the pending set (by
  /// tag — see the header comment) and refreshes the model exactly when
  /// the engine's loops did: immediately in Sequential/AsyncBatch mode,
  /// at the in-flight-batch drain in SyncBatch mode, never while the
  /// initial design is still incomplete.
  ///
  /// \param draining  suppress model refreshes (the graceful-stop drain:
  ///                  outcomes are journaled and recorded but no longer
  ///                  steer proposals).
  /// Throws easybo::Error when \p tag is not pending (already observed,
  /// or never suggested).
  Observed observe(std::size_t tag, const Outcome& outcome,
                   bool draining = false);

  /// Ends the initial-design phase: z-scores the observations, fits the
  /// GP and force-trains hyperparameters. Idempotent. Called implicitly
  /// by the first post-init suggest(); BoEngine calls it explicitly at
  /// the init/BO phase boundary (also covering the budget-exhausted-
  /// during-init corner). Throws easybo::Error when there is not a
  /// single observation to build a model from.
  void finish_init();

  // --- read-only state ---------------------------------------------------

  const BoConfig& config() const { return cfg_; }
  const opt::Bounds& bounds() const { return bounds_; }
  std::size_t issued() const { return issued_; }
  bool init_done() const { return init_done_; }
  std::size_t num_observations() const { return obs_x_.size(); }
  std::size_t num_proposals() const { return prop_x_.size(); }
  std::size_t hyper_refits() const { return hyper_refits_; }

  /// Suggested-but-unobserved tags, ascending (= suggestion order).
  const std::set<std::size_t>& pending_tags() const { return pending_tags_; }

  /// Proposal table by tag.
  const Vec& proposal(std::size_t tag) const { return prop_x_[tag]; }
  bool proposal_is_init(std::size_t tag) const { return prop_init_[tag]; }
  double proposal_submit_time(std::size_t tag) const {
    return prop_submit_[tag];
  }
  double proposal_duration(std::size_t tag) const {
    return prop_duration_[tag];
  }

  /// Unit -> design space mapping for this core's bounds.
  Vec to_design(const Vec& unit_x) const;

  bool has_observations() const { return !obs_x_.empty(); }
  double best_y() const;  ///< incumbent FOM; requires has_observations()
  Vec best_x() const;     ///< incumbent point, design space

  /// Completed/failed evaluation records in observation order. Mutable so
  /// the engine's resume path can prepend the snapshot-absorbed prefix
  /// and the run driver can move them into BoResult at the end.
  std::vector<EvalRecord>& evals() { return evals_; }
  const std::vector<EvalRecord>& evals() const { return evals_; }

  // --- durability (docs/checkpoint-format.md) ---------------------------

  /// Fingerprint of everything that shapes this core's proposal stream.
  std::uint64_t config_hash() const { return config_hash_; }
  bool journaling() const { return !cfg_.checkpoint_path.empty(); }

  /// Re-bases the checkpoint files (BoEngine::resume semantics). Only
  /// valid before any journaling started.
  void set_checkpoint_path(const std::string& path);

  /// Truncates/creates the journal and writes its header line.
  void start_fresh_journal();

  /// Re-opens an existing journal for appending, truncating a torn tail
  /// to \p valid_bytes first. \p lines is the number of intact eval
  /// records it already holds, \p absorbed how many of those the restored
  /// snapshot has absorbed (the snapshot cadence baseline).
  void reopen_journal(std::size_t valid_bytes, std::size_t lines,
                      std::size_t absorbed);

  std::size_t journal_lines() const { return journal_lines_; }
  std::size_t lines_at_snapshot() const { return lines_at_snapshot_; }

  /// Assembles the full core state into a snapshot. The three execution-
  /// side fields the core cannot know — the logical clock, the total busy
  /// time, and the supervisor's jitter-stream state — are injected by the
  /// caller (the engine reads them off its executor; a server session
  /// passes its own bookkeeping).
  BoCheckpoint make_snapshot(double now, double busy,
                             const RngState& sup_rng) const;

  /// make_snapshot + atomic write to the snapshot file; re-bases the
  /// snapshot cadence.
  void write_snapshot(double now, double busy, const RngState& sup_rng);

  /// Restores every core-owned field from \p snap (the complement of
  /// make_snapshot): RNG, observations, proposal table, pending tags,
  /// penalty histories, hedge state, refit schedule, and the fitted model
  /// when the snapshot is post-init. \p origin names the snapshot in
  /// error messages. Throws io::CheckpointError on internal
  /// inconsistencies (e.g. a pending tag beyond the proposal table).
  void restore_snapshot(const BoCheckpoint& snap, const std::string& origin);

 private:
  // --- proposal (the pre-refactor BoEngine internals, verbatim) ---------
  Vec propose(const std::vector<Vec>& pending, std::size_t slot);
  Vec propose_thompson(const std::vector<Vec>& pending);
  Vec propose_hedge(const std::vector<Vec>& pending);
  Vec dedup(Vec x, const std::vector<Vec>& pending);

  /// The penalization posterior over \p pending: a zero-copy overlay by
  /// default, or the materialized deep copy when
  /// BoConfig::hallucinate_overlay is off (bit-identical either way).
  std::unique_ptr<gp::Regressor> hallucinate_pending(
      const std::vector<Vec>& pending) const;

  void update_model(bool force_train);

  /// Hyperparameter training for backends without an analytic LML
  /// gradient: optimize an exact GP on an evenly strided subset of at
  /// most BoConfig::rff_train_subset observations (warm-started from the
  /// model's current hyperparameters) and transplant the result.
  void train_model_via_proxy();
  std::size_t incumbent_index() const;

  /// Appends one eval record to the journal (fsync'd). No-op when
  /// journaling is off or the outcome is itself a replay.
  void journal_eval(std::size_t tag, const Outcome& outcome,
                    const char* action, double y);

  BoConfig cfg_;
  opt::Bounds bounds_;
  std::function<double(const Vec&)> sim_time_;
  Rng rng_;
  gp::BoxNormalizer box_;
  gp::ZScore zscore_;
  /// The surrogate, built by make_regressor() from BoConfig::gp_backend.
  /// Never null; always a TrainableRegressor (hallucinated posteriors are
  /// separate short-lived Regressor views, see hallucinate_pending()).
  std::unique_ptr<gp::TrainableRegressor> model_;

  // Observations (unit space + raw y). Penalized failures appear here as
  // pseudo-observations; discarded failures do not.
  std::vector<Vec> obs_x_;
  Vec obs_y_;
  std::vector<bool> obs_is_init_;

  // Discarded failure locations (unit space), kept so dedup never
  // re-proposes a crashing point verbatim.
  std::vector<Vec> failed_x_;

  // Suggestions issued so far: the simulation-budget clock.
  std::size_t issued_ = 0;

  // Proposals by tag. Submit time (caller's logical clock) and nominal
  // duration ride along so a snapshot can re-anchor in-flight work.
  std::vector<Vec> prop_x_;  // unit space
  std::vector<bool> prop_init_;
  std::vector<double> prop_submit_;
  std::vector<double> prop_duration_;

  // Suggested, not yet observed — keyed by tag (sorted = suggestion
  // order), the hallucination set and the snapshot pending set.
  std::set<std::size_t> pending_tags_;

  // SyncBatch mode defers the model refresh to the in-flight-batch drain
  // (the engine's old batch barrier); this accumulates "changed" until
  // the pending set empties. Always false at snapshot boundaries.
  bool sync_dirty_ = false;

  bool init_done_ = false;  // post-init force-train already ran

  // pHCBO per-weight-slot penalty history.
  std::vector<acq::HighCoveragePenalty> hc_penalties_;

  // GP-Hedge state (AcqKind::Hedge).
  acq::HedgePortfolio hedge_;
  std::vector<Vec> hedge_nominees_;

  std::size_t next_hyper_refit_ = 0;
  std::size_t hyper_refits_ = 0;

  // adapt_refit_cadence cost models (only touched when the knob is on):
  // eval durations settle slowly across many observations, refit cost
  // tracks the growing dataset so it gets a faster horizon.
  obs::Cema adapt_eval_cema_{0.05};
  obs::Cema adapt_refit_cema_{0.3};

  // Evaluation records in observation order (BoResult::evals).
  std::vector<EvalRecord> evals_;

  // Durability.
  io::JournalWriter journal_;
  std::uint64_t config_hash_ = 0;
  std::size_t journal_lines_ = 0;      // eval records written (no header)
  std::size_t lines_at_snapshot_ = 0;  // journal_lines_ at last snapshot

  obs::TraceSink* trace_ = nullptr;
  std::string proposal_counter_;  // "bo.proposals.<acq>", built once

  /// The cancellation token of the suggest() currently on the stack
  /// (null otherwise — observe-triggered model refreshes are never
  /// cancelled: once journaled the mutation must complete). Set/cleared
  /// by suggest() itself so propose/update_model need no parameter
  /// plumbing through every acquisition branch.
  const common::StopToken* stop_ = nullptr;
};

/// Resolves a proposal that collides (squared distance < 1e-12) with an
/// observed, pending, or blocked point: Gaussian nudges (sigma 0.01,
/// clamped to the unit cube) retried until the point clears, with a
/// uniform resample fallback — a nudge clamped on the cube boundary can
/// land right back on the duplicate, which is exactly the case the
/// retries exist for. Counts "bo.dedup_nudge" / "bo.dedup_resample" on
/// \p trace. Exposed as a free function for direct testing; AskTellCore
/// routes every proposal through it.
Vec dedup_proposal(Vec x, const std::vector<Vec>& observed,
                   const std::vector<Vec>& pending, Rng& rng,
                   obs::TraceSink* trace = nullptr);

}  // namespace easybo::bo
