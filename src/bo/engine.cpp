#include "bo/engine.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <utility>

#include "acq/acquisition.h"
#include "acq/thompson.h"
#include "common/error.h"
#include "common/sampling.h"
#include "common/stats.h"
#include "gp/trainer.h"
#include "io/json.h"

namespace easybo::bo {

namespace {

sched::EvalStatus eval_status_from(const std::string& name,
                                   std::size_t record_index) {
  if (name == "ok") return sched::EvalStatus::Ok;
  if (name == "exception") return sched::EvalStatus::Exception;
  if (name == "timeout") return sched::EvalStatus::Timeout;
  if (name == "non_finite") return sched::EvalStatus::NonFinite;
  throw io::CheckpointError("journal corrupted: record " +
                            std::to_string(record_index) +
                            " carries unknown eval status \"" + name + "\"");
}

bool same_point(const Vec& a, const Vec& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

}  // namespace

BoEngine::BoEngine(BoConfig config, opt::Bounds bounds,
                   opt::Objective objective,
                   std::function<double(const Vec&)> sim_time)
    : cfg_(std::move(config)),
      bounds_(std::move(bounds)),
      objective_(std::move(objective)),
      sim_time_(std::move(sim_time)),
      rng_(cfg_.seed),
      box_(bounds_.lower, bounds_.upper),
      model_(make_kernel(cfg_, bounds_.lower.size()), 1e-6) {
  cfg_.validate();
  bounds_.validate();
  EASYBO_REQUIRE(static_cast<bool>(objective_), "BoEngine: null objective");
  if (!sim_time_) {
    sim_time_ = [](const Vec&) { return 1.0; };
  }
  if (cfg_.acq == AcqKind::Phcbo) {
    hc_penalties_.assign(cfg_.batch,
                         acq::HighCoveragePenalty(cfg_.hc_d, cfg_.hc_n));
  }
  next_hyper_refit_ = cfg_.init_points;
  proposal_counter_ = std::string("bo.proposals.") + to_string(cfg_.acq);
  if (cfg_.collect_metrics) {
    owned_recorder_ = std::make_unique<obs::RecordingSink>();
    set_trace(owned_recorder_.get());
  }
}

void BoEngine::set_trace(obs::TraceSink* sink) {
  trace_ = sink;
  model_.set_trace(sink);
}

BoResult BoEngine::run() {
  const std::size_t workers =
      (cfg_.mode == Mode::Sequential) ? 1 : cfg_.batch;
  sched::VirtualExecutor exec(workers);
  return run(exec);
}

BoResult BoEngine::run(sched::Executor& exec) {
  EASYBO_REQUIRE(prop_x_.empty(), "BoEngine::run() may be called only once");
  // Every evaluation goes through the supervisor. With the default config
  // (no timeout, no retries) it is a transparent pass-through, so the
  // Abort policy reproduces the pre-supervision runs bit for bit.
  sched::SupervisorConfig scfg;
  scfg.timeout = cfg_.eval_timeout;
  scfg.max_retries = cfg_.eval_max_retries;
  scfg.backoff_init = cfg_.eval_backoff_init;
  scfg.backoff_factor = cfg_.eval_backoff_factor;
  scfg.backoff_max = cfg_.eval_backoff_max;
  scfg.backoff_jitter = cfg_.eval_backoff_jitter;
  scfg.retry_timeouts = cfg_.eval_retry_timeouts;
  // Decorrelated from rng_ so supervision never perturbs the proposal
  // stream; deterministic per seed so retried runs reproduce.
  scfg.seed = cfg_.seed ^ 0x5AFEB0FFu;
  sched::EvalSupervisor sup(exec, scfg, trace_);
  BoResult result;

  if (journaling()) {
    config_hash_ = config_fingerprint(cfg_, bounds_);
    if (resumed_) {
      restore(sup, result);
    } else {
      start_fresh_journal();
    }
  }

  if (!init_done_) {
    run_init_phase(sup, result);
    if (!stop_requested()) {
      if (obs_x_.empty()) {
        throw Error(
            "every initial evaluation failed; no observation to build a "
            "model from (see docs/failure-model.md)");
      }
      update_model(/*force_train=*/true);
      init_done_ = true;
    }
  }

  if (!stop_requested()) {
    switch (cfg_.mode) {
      case Mode::Sequential: run_sequential(sup, result); break;
      case Mode::SyncBatch: run_sync_batch(sup, result); break;
      case Mode::AsyncBatch: run_async_batch(sup, result); break;
    }
  }
  // A stop at a phase boundary can leave init evaluations in flight:
  // drain them so the journal is complete and the final snapshot carries
  // no pending work it does not have to.
  if (stop_requested()) drain_all(sup, result);

  result.makespan = std::max(exec.now(), last_replay_finish_);
  result.total_sim_time = busy_base_ + exec.total_busy_time();
  result.hyper_refits = hyper_refits_;
  result.interrupted = stop_requested();
  result.resume_note = resume_note_;
  result.orphaned_workers = sup.orphans();
  if (sup.orphans() > 0) {
    obs::count(trace_, "sched.orphaned_workers", sup.orphans());
  }
  if (!obs_x_.empty()) {
    const std::size_t inc = incumbent_index();
    result.best_x = box_.from_unit(obs_x_[inc]);
    result.best_y = obs_y_[inc];
  }
  if (journaling()) write_snapshot(sup);
  finalize_metrics(exec, result);
  return result;
}

BoResult BoEngine::resume(const std::string& path) {
  const std::size_t workers =
      (cfg_.mode == Mode::Sequential) ? 1 : cfg_.batch;
  sched::VirtualExecutor exec(workers);
  return resume(path, exec);
}

BoResult BoEngine::resume(const std::string& path, sched::Executor& exec) {
  EASYBO_REQUIRE(prop_x_.empty(),
                 "BoEngine::resume() must be the engine's only run");
  EASYBO_REQUIRE(!path.empty(), "BoEngine::resume: empty checkpoint path");
  cfg_.checkpoint_path = path;  // journaling continues on the same files
  resumed_ = true;
  return run(exec);
}

// ---------------------------------------------------------------------------
// Phases
// ---------------------------------------------------------------------------

void BoEngine::run_init_phase(sched::EvalSupervisor& sup, BoResult& result) {
  // Random initial design (the paper samples uniformly at random). All
  // modes push the init points through the executor greedily — identical
  // schedules keep the wall-clock comparison between algorithms fair.
  // The InitDesign span covers the whole phase, waits included. Failed
  // evaluations are topped up (the model needs its init_points anchors)
  // until the whole simulation budget would be burned on them.
  obs::ScopedTimer span(trace_, obs::Phase::InitDesign);
  while (obs_x_.size() < cfg_.init_points && !stop_requested()) {
    maybe_checkpoint(sup);
    while (can_submit(sup) && issued_ < cfg_.max_sims &&
           obs_x_.size() + num_outstanding(sup) < cfg_.init_points &&
           !stop_requested()) {
      submit(sup, rng_.uniform_vector(bounds_.dim()), /*is_init=*/true);
    }
    if (num_outstanding(sup) == 0) break;  // budget exhausted by failures
    handle(await_one(sup), result);
  }
}

void BoEngine::run_sequential(sched::EvalSupervisor& sup, BoResult& result) {
  while (issued_ < cfg_.max_sims && !stop_requested()) {
    maybe_checkpoint(sup);
    if (!can_submit(sup)) break;  // the only worker is hung
    submit(sup, propose(/*pending=*/{}, /*slot=*/0), /*is_init=*/false);
    if (handle(await_one(sup), result)) update_model(false);
  }
}

void BoEngine::run_sync_batch(sched::EvalSupervisor& sup, BoResult& result) {
  while (issued_ < cfg_.max_sims && !stop_requested()) {
    maybe_checkpoint(sup);
    const std::size_t remaining = cfg_.max_sims - issued_;
    // A real executor may expose fewer workers than cfg_.batch; a batch
    // larger than the pool could never be issued at once.
    // idle_for_submit (not num_workers): a wall-clock timeout can leave a
    // slot occupied by an abandoned hung objective. Identical when no
    // worker is abandoned — the barrier below drained the pool.
    const std::size_t k =
        std::min({cfg_.batch, remaining, idle_for_submit(sup)});
    if (k == 0) break;  // every worker is hung; cannot make progress
    // Select the whole batch against the current model, then submit and
    // barrier. For EasyBO-SP, each slot hallucinates on the batch points
    // selected so far (pending grows inside the loop).
    std::vector<Vec> batch;
    batch.reserve(k);
    for (std::size_t slot = 0; slot < k; ++slot) {
      batch.push_back(propose(batch, slot));
    }
    for (auto& x : batch) submit(sup, std::move(x), /*is_init=*/false);
    bool changed = false;
    while (num_outstanding(sup) > 0) {
      changed |= handle(await_one(sup), result);
    }
    if (changed) update_model(false);
  }
}

void BoEngine::run_async_batch(sched::EvalSupervisor& sup, BoResult& result) {
  std::vector<Vec> pending;  // unit points currently running
  // On resume the in-flight set is restored from the snapshot; tag order
  // is submission order, which is exactly the order this vector grew in
  // during the original run.
  for (const std::size_t tag : pending_tags_) {
    pending.push_back(prop_x_[tag]);
  }

  // Fill the pool (Algorithm 1 bootstraps with B in-flight points).
  while (can_submit(sup) && issued_ < cfg_.max_sims && !stop_requested()) {
    Vec x = propose(pending, /*slot=*/0);
    pending.push_back(x);
    submit(sup, std::move(x), /*is_init=*/false);
  }

  // Main loop (Algorithm 1): wait for a worker, absorb its observation,
  // refine the model, propose for the idle worker with the still-running
  // points as pseudo-observations.
  while (num_outstanding(sup) > 0) {
    maybe_checkpoint(sup);
    const Arrived a = await_one(sup);
    const Vec finished_x = prop_x_[a.sc.completion.tag];
    const bool changed = handle(a, result);
    // Remove the finished point from the pending set.
    const auto it = std::find(pending.begin(), pending.end(), finished_x);
    if (it != pending.end()) pending.erase(it);

    if (changed) update_model(false);
    // can_submit: a wall-clock timeout frees no slot (the hung objective
    // still occupies it), so its replacement waits for the next genuinely
    // idle worker. Always true when nothing timed out.
    if (issued_ < cfg_.max_sims && can_submit(sup) && !stop_requested()) {
      Vec x = propose(pending, /*slot=*/0);
      pending.push_back(x);
      submit(sup, std::move(x), /*is_init=*/false);
    }
  }
}

// ---------------------------------------------------------------------------
// Proposal
// ---------------------------------------------------------------------------

Vec BoEngine::propose(const std::vector<Vec>& pending, std::size_t slot) {
  const std::size_t dim = bounds_.dim();
  const std::vector<Vec> anchors = {obs_x_[incumbent_index()]};
  obs::count(trace_, proposal_counter_);

  // Thompson sampling picks from a sampled posterior path directly; it
  // never goes through the generic acquisition maximizer.
  if (cfg_.acq == AcqKind::Ts) {
    return propose_thompson(pending);
  }
  if (cfg_.acq == AcqKind::Hedge) {
    return propose_hedge(pending);
  }

  // The hallucinated model / base acquisition (when used) must outlive
  // the maximization.
  std::unique_ptr<gp::GpRegressor> hallucinated;
  std::unique_ptr<acq::AcquisitionFn> base_acq;
  std::unique_ptr<acq::AcquisitionFn> fn;

  switch (cfg_.acq) {
    case AcqKind::Lcb:
      fn = std::make_unique<acq::Ucb>(&model_, cfg_.lcb_kappa);
      break;
    case AcqKind::Ei: {
      const double best_z = zscore_.transform(obs_y_[incumbent_index()]);
      fn = std::make_unique<acq::Ei>(&model_, best_z, cfg_.ei_xi);
      break;
    }
    case AcqKind::EasyBo: {
      const double w = cfg_.uniform_w
                           ? rng_.uniform()
                           : acq::sample_easybo_weight(rng_, cfg_.lambda);
      if (cfg_.penalize && !pending.empty()) {
        hallucinated = std::make_unique<gp::GpRegressor>(
            model_.with_hallucinated(pending));
        fn = std::make_unique<acq::WeightedUcb>(&model_, hallucinated.get(),
                                                w);
      } else {
        fn = std::make_unique<acq::WeightedUcb>(&model_, &model_, w);
      }
      break;
    }
    case AcqKind::Pbo: {
      const Vec grid = acq::pbo_weight_grid(cfg_.batch);
      fn = std::make_unique<acq::WeightedUcb>(&model_, &model_,
                                              grid[slot % grid.size()]);
      break;
    }
    case AcqKind::Phcbo: {
      const Vec grid = acq::pbo_weight_grid(cfg_.batch);
      fn = std::make_unique<acq::PhcboAcquisition>(
          &model_, grid[slot % grid.size()],
          &hc_penalties_[slot % hc_penalties_.size()]);
      break;
    }
    case AcqKind::Bucb: {
      if (!pending.empty()) {
        hallucinated = std::make_unique<gp::GpRegressor>(
            model_.with_hallucinated(pending));
        fn = std::make_unique<acq::Bucb>(&model_, hallucinated.get(),
                                         cfg_.bucb_kappa);
      } else {
        fn = std::make_unique<acq::Bucb>(&model_, &model_, cfg_.bucb_kappa);
      }
      break;
    }
    case AcqKind::Lp: {
      const double best_z = zscore_.transform(obs_y_[incumbent_index()]);
      base_acq = std::make_unique<acq::Ei>(&model_, best_z, cfg_.ei_xi);
      const double lipschitz = acq::estimate_lipschitz(model_, rng_);
      fn = std::make_unique<acq::LocalPenalization>(
          base_acq.get(), &model_, pending, lipschitz, best_z);
      break;
    }
    case AcqKind::Ts:
    case AcqKind::Hedge:
      break;  // handled above
  }

  auto best = acq::maximize_acquisition(*fn, dim, rng_, anchors,
                                        cfg_.acq_opt, trace_);
  Vec x = dedup(std::move(best.best_x), pending);
  if (cfg_.acq == AcqKind::Phcbo) {
    hc_penalties_[slot % hc_penalties_.size()].record(x);
  }
  return x;
}

Vec BoEngine::propose_thompson(const std::vector<Vec>& pending) {
  // Candidate set: shifted Sobol + jittered incumbent copies. With
  // penalization, sample from the hallucinated posterior so pending
  // regions carry no leftover uncertainty to exploit. Candidate
  // generation through the posterior argmax is this algorithm's
  // acquisition maximization, hence the span over the whole body.
  obs::ScopedTimer span(trace_, obs::Phase::AcqMaximize);
  const std::size_t dim = bounds_.dim();
  std::vector<Vec> candidates;
  const std::size_t sobol_count =
      std::max<std::size_t>(cfg_.ts_candidates, 16);
  if (dim <= SobolSequence::kMaxDim) {
    SobolSequence sobol(dim);
    Vec shift = rng_.uniform_vector(dim);
    for (std::size_t i = 0; i < sobol_count; ++i) {
      Vec p = sobol.next();
      for (std::size_t j = 0; j < dim; ++j) {
        p[j] += shift[j];
        if (p[j] >= 1.0) p[j] -= 1.0;
      }
      candidates.push_back(std::move(p));
    }
  } else {
    for (std::size_t i = 0; i < sobol_count; ++i) {
      candidates.push_back(rng_.uniform_vector(dim));
    }
  }
  const Vec& incumbent = obs_x_[incumbent_index()];
  for (int k = 0; k < 8; ++k) {
    Vec p = incumbent;
    for (auto& v : p) v = std::clamp(v + rng_.normal(0.0, 0.05), 0.0, 1.0);
    candidates.push_back(std::move(p));
  }

  std::size_t pick;
  if (cfg_.penalize && !pending.empty()) {
    const auto augmented = model_.with_hallucinated(pending);
    pick = acq::thompson_sample_argmax(augmented, candidates, rng_);
  } else {
    pick = acq::thompson_sample_argmax(model_, candidates, rng_);
  }
  return dedup(std::move(candidates[pick]), pending);
}

Vec BoEngine::propose_hedge(const std::vector<Vec>& pending) {
  const std::size_t dim = bounds_.dim();
  const std::vector<Vec> anchors = {obs_x_[incumbent_index()]};

  // Reward the previous nominees under the refreshed model first.
  if (!hedge_nominees_.empty()) {
    Vec means(acq::HedgePortfolio::kMembers);
    for (std::size_t i = 0; i < hedge_nominees_.size(); ++i) {
      means[i] = model_.predict(hedge_nominees_[i]).mean;
    }
    hedge_.reward(means);
  }

  // Each member nominates its own maximizer.
  const double best_z = zscore_.transform(obs_y_[incumbent_index()]);
  const acq::Ei ei(&model_, best_z, cfg_.ei_xi);
  const acq::Pi pi(&model_, best_z, cfg_.ei_xi);
  const acq::Ucb ucb(&model_, cfg_.lcb_kappa);
  const acq::AcquisitionFn* members[] = {&ei, &pi, &ucb};

  hedge_nominees_.clear();
  for (const auto* member : members) {
    hedge_nominees_.push_back(acq::maximize_acquisition(
                                  *member, dim, rng_, anchors, cfg_.acq_opt,
                                  trace_)
                                  .best_x);
  }
  const std::size_t choice = hedge_.choose(rng_);
  return dedup(hedge_nominees_[choice], pending);
}

Vec BoEngine::dedup(Vec x, const std::vector<Vec>& pending) {
  if (failed_x_.empty()) {
    return dedup_proposal(std::move(x), obs_x_, pending, rng_, trace_);
  }
  // Discarded failure locations block proposals too: re-evaluating a point
  // that just crashed verbatim would burn budget on a known failure.
  std::vector<Vec> blocked = pending;
  blocked.insert(blocked.end(), failed_x_.begin(), failed_x_.end());
  return dedup_proposal(std::move(x), obs_x_, blocked, rng_, trace_);
}

Vec dedup_proposal(Vec x, const std::vector<Vec>& observed,
                   const std::vector<Vec>& pending, Rng& rng,
                   obs::TraceSink* trace) {
  auto collides = [&](const Vec& candidate) {
    auto too_close = [&](const Vec& other) {
      return linalg::dist_sq(candidate, other) < 1e-12;
    };
    return std::any_of(observed.begin(), observed.end(), too_close) ||
           std::any_of(pending.begin(), pending.end(), too_close);
  };
  if (!collides(x)) return x;

  // Nudge inside the cube; an exact duplicate adds no information and can
  // degrade the covariance conditioning. A single nudge is not enough: on
  // a boundary duplicate (e.g. the unit-cube corner the acquisition keeps
  // proposing) the clamp can put the point right back onto the duplicate,
  // so retry, then give up on locality and resample uniformly.
  constexpr int kNudges = 4;
  for (int attempt = 0; attempt < kNudges; ++attempt) {
    Vec nudged = x;
    for (auto& v : nudged) {
      v = std::clamp(v + rng.normal(0.0, 0.01), 0.0, 1.0);
    }
    obs::count(trace, "bo.dedup_nudge");
    if (!collides(nudged)) return nudged;
  }
  constexpr int kResamples = 16;
  Vec resampled = std::move(x);
  for (int attempt = 0; attempt < kResamples; ++attempt) {
    resampled = rng.uniform_vector(resampled.size());
    obs::count(trace, "bo.dedup_resample");
    if (!collides(resampled)) break;
  }
  return resampled;  // last candidate even if saturated: progress > purity
}

// ---------------------------------------------------------------------------
// Model management
// ---------------------------------------------------------------------------

void BoEngine::update_model(bool force_train) {
  {
    obs::ScopedTimer span(trace_, obs::Phase::ModelFit);
    zscore_.refit(obs_y_);
    model_.set_data(obs_x_, zscore_.transform(obs_y_));
  }

  const bool train = force_train || obs_x_.size() >= next_hyper_refit_;
  if (train) {
    obs::ScopedTimer span(trace_, obs::Phase::HyperRefit);
    gp::train_mle(model_, rng_, cfg_.trainer);
    obs::count(trace_, "bo.hyper_refit");
    ++hyper_refits_;
    // Geometrically thinning schedule: early observations shift the
    // hyperparameters a lot, late ones barely; this caps total O(n^3)
    // training cost without changing behaviour materially.
    const auto n = obs_x_.size();
    next_hyper_refit_ = std::max(
        n + cfg_.refit_every,
        static_cast<std::size_t>(static_cast<double>(n) * 1.5));
  } else {
    obs::ScopedTimer span(trace_, obs::Phase::ModelFit);
    model_.fit();
  }
}

std::size_t BoEngine::incumbent_index() const {
  EASYBO_REQUIRE(!obs_y_.empty(), "incumbent of empty dataset");
  return linalg::argmax(obs_y_);
}

// ---------------------------------------------------------------------------
// Executor plumbing
// ---------------------------------------------------------------------------

void BoEngine::submit(sched::EvalSupervisor& sup, Vec unit_x, bool is_init) {
  Vec x_design = box_.from_unit(unit_x);
  const double duration = sim_time_(x_design);
  const std::size_t tag = prop_x_.size();
  prop_x_.push_back(std::move(unit_x));
  prop_init_.push_back(is_init);
  prop_submit_.push_back(logical_now(sup));
  prop_duration_.push_back(duration);
  pending_tags_.insert(tag);
  ++issued_;
  if (replay_tags_.count(tag) != 0) {
    // The outcome of this evaluation is already durable in the journal:
    // the replay queue will deliver it. The worker slot it occupied in
    // the original timeline is accounted logically (num_outstanding), and
    // its busy time — which the executor will never see — here.
    replay_awaiting_.insert(tag);
    if (!sup.executor().wall_clock()) {
      busy_base_ += effective_duration(duration);
    }
    return;
  }
  if (resumed_) {
    // Mid-/post-replay real submission: line the virtual clock up with
    // the original timeline first, so this work starts — and therefore
    // finishes — at exactly the times the uninterrupted run produced.
    sup.advance_clock(last_replay_finish_);
  }
  // The executor decides where and when the objective runs (eagerly for
  // virtual time, on a worker thread for real threads); the engine only
  // sees the outcome at handle time.
  sup.submit(
      tag,
      [obj = &objective_, x = std::move(x_design)] { return (*obj)(x); },
      duration);
}

bool BoEngine::handle(const Arrived& a, BoResult& result) {
  const sched::SupervisedCompletion& sc = a.sc;
  const sched::Completion& c = sc.completion;
  pending_tags_.erase(c.tag);
  if (trace_ != nullptr && !a.replayed) {
    // Executor-clock duration: virtual seconds on a VirtualExecutor, wall
    // seconds on real threads; spans retries and backoff. Not a
    // ScopedTimer — the evaluation already happened inside the executor;
    // this books its reported span. Replayed completions book nothing:
    // this process never ran them (metrics cover the current process).
    trace_->add_time(obs::Phase::ObjectiveEval, c.finish - c.start);
  }
  const Vec& unit_x = prop_x_[c.tag];

  EvalRecord rec;
  rec.x = box_.from_unit(unit_x);
  rec.start = a.start_abs;
  rec.finish = a.finish_abs;
  rec.worker = c.worker;
  rec.is_init = prop_init_[c.tag];
  rec.attempts = sc.attempts;

  if (sc.ok()) {
    journal_eval(a, "observed", c.value);  // durable before applied
    obs_x_.push_back(unit_x);
    obs_y_.push_back(c.value);
    obs_is_init_.push_back(prop_init_[c.tag]);
    rec.y = c.value;
    result.evals.push_back(std::move(rec));
    if (!a.replayed) log_eval(sc, "observed");
    return true;
  }

  if (!a.replayed) obs::count(trace_, "eval.failures");
  if (cfg_.on_eval_failure == EvalFailurePolicy::Abort) {
    journal_eval(a, "abort", std::numeric_limits<double>::quiet_NaN());
    // Rethrow the objective's own exception so callers see exactly what
    // they saw before supervision existed; timeouts and non-finite values
    // never carried one, so they get a descriptive Error. A replayed
    // abort lost its exception_ptr with the original process and always
    // takes the descriptive path.
    if (sc.exception) std::rethrow_exception(sc.exception);
    throw Error(std::string("evaluation failed (") +
                sched::to_string(sc.status) +
                ") and on_eval_failure is abort" +
                (sc.error.empty() ? "" : ": " + sc.error));
  }

  rec.failed = true;
  rec.failure = sched::to_string(sc.status);

  // Penalize needs at least one real observation to anchor the quantile;
  // until then it degrades to Discard.
  if (cfg_.on_eval_failure == EvalFailurePolicy::Penalize &&
      !obs_y_.empty()) {
    if (!a.replayed) obs::count(trace_, "eval.penalized");
    const double y_pen =
        quantile_of(obs_y_, cfg_.eval_failure_quantile);
    journal_eval(a, "penalized", y_pen);
    obs_x_.push_back(unit_x);
    obs_y_.push_back(y_pen);
    obs_is_init_.push_back(prop_init_[c.tag]);
    rec.y = y_pen;
    result.evals.push_back(std::move(rec));
    if (!a.replayed) log_eval(sc, "penalized");
    return true;
  }

  if (!a.replayed) obs::count(trace_, "eval.discarded");
  journal_eval(a, "discarded", std::numeric_limits<double>::quiet_NaN());
  failed_x_.push_back(unit_x);  // dedup must never re-propose it verbatim
  rec.y = std::numeric_limits<double>::quiet_NaN();
  result.evals.push_back(std::move(rec));
  if (!a.replayed) log_eval(sc, "discarded");
  return false;
}

void BoEngine::log_eval(const sched::SupervisedCompletion& sc,
                        const char* action) {
  if (trace_ == nullptr) return;  // same zero-cost convention as counters
  obs::EvalLogEntry e;
  e.index = eval_log_.size();
  e.status = sched::to_string(sc.status);
  e.action = action;
  e.attempts = sc.attempts;
  e.worker = sc.completion.worker;
  e.start = sc.completion.start;
  e.finish = sc.completion.finish;
  eval_log_.push_back(std::move(e));
}

sched::SupervisedCompletion BoEngine::timed_wait(sched::EvalSupervisor& sup) {
  obs::ScopedTimer span(trace_, obs::Phase::ExecutorWait);
  return sup.wait_next();
}

std::vector<sched::SupervisedCompletion> BoEngine::timed_wait_all(
    sched::EvalSupervisor& sup) {
  obs::ScopedTimer span(trace_, obs::Phase::ExecutorWait);
  return sup.wait_all();
}

// ---------------------------------------------------------------------------
// Durability: journal, snapshot, resume replay (docs/checkpoint-format.md)
// ---------------------------------------------------------------------------

double BoEngine::effective_duration(double duration) const {
  if (cfg_.eval_timeout > 0.0 && duration > cfg_.eval_timeout) {
    return cfg_.eval_timeout;  // the supervisor cuts it there (virtual)
  }
  return duration;
}

void BoEngine::start_fresh_journal() {
  obs::ScopedTimer span(trace_, obs::Phase::Checkpoint);
  journal_.open(journal_file(cfg_.checkpoint_path), /*truncate_to=*/0);
  JournalHeader header;
  header.config_hash = config_hash_;
  header.seed = cfg_.seed;
  journal_.append(header.to_payload());
}

void BoEngine::restore(sched::EvalSupervisor& sup, BoResult& result) {
  const std::string jpath = journal_file(cfg_.checkpoint_path);
  const std::string spath = snapshot_file(cfg_.checkpoint_path);
  if (!io::file_exists(jpath)) {
    throw io::CheckpointError("cannot resume: no journal at " + jpath);
  }
  const io::JournalReadResult jr = io::read_journal(jpath);
  if (jr.payloads.empty()) {
    throw io::CheckpointError("cannot resume: journal at " + jpath +
                              " holds no intact header line");
  }
  const JournalHeader header = JournalHeader::parse(jr.payloads.front());
  if (header.config_hash != config_hash_) {
    throw io::CheckpointError(
        "checkpoint config mismatch: journal " + jpath +
        " was written with config fingerprint " +
        io::json_u64(header.config_hash) +
        " but this engine is configured with fingerprint " +
        io::json_u64(config_hash_) +
        "; resuming would splice two different proposal streams");
  }
  std::vector<JournalRecord> records;
  records.reserve(jr.payloads.size() - 1);
  for (std::size_t i = 1; i < jr.payloads.size(); ++i) {
    JournalRecord rec = JournalRecord::parse(jr.payloads[i]);
    if (rec.index != records.size()) {
      throw io::CheckpointError(
          "journal corrupted: line " + std::to_string(i + 1) + " of " +
          jpath + " carries record index " + std::to_string(rec.index) +
          " where " + std::to_string(records.size()) + " was expected");
    }
    records.push_back(std::move(rec));
  }

  BoCheckpoint snap;
  const bool have_snap = io::file_exists(spath);
  if (have_snap) {
    const io::JournalReadResult sr = io::read_journal(spath);
    if (sr.payloads.size() != 1 || sr.torn_tail) {
      throw io::CheckpointError(
          "snapshot " + spath +
          " is damaged (expected exactly one intact framed line)");
    }
    snap = BoCheckpoint::parse(sr.payloads.front());
    if (snap.config_hash != config_hash_) {
      throw io::CheckpointError(
          "checkpoint config mismatch: snapshot " + spath +
          " was written with config fingerprint " +
          io::json_u64(snap.config_hash) +
          " but this engine is configured with fingerprint " +
          io::json_u64(config_hash_));
    }
    if (snap.journal_count > records.size()) {
      throw io::CheckpointError(
          "snapshot " + spath + " absorbs " +
          std::to_string(snap.journal_count) + " evaluations but journal " +
          jpath + " holds only " + std::to_string(records.size()) +
          " — the files do not belong to the same run");
    }
  }

  // Re-open for appending, truncating any torn tail first: those bytes
  // are a record that never became durable and will be rewritten by the
  // replay when it reaches that evaluation again.
  journal_.open(jpath, static_cast<long>(jr.valid_bytes));
  journal_lines_ = records.size();
  lines_at_snapshot_ = have_snap ? snap.journal_count : 0;

  // Stage the journal tail — everything the snapshot has not absorbed —
  // for replay through the normal loop.
  for (std::size_t i = snap.journal_count; i < records.size(); ++i) {
    replay_tags_.insert(records[i].tag);
    replay_.push_back(std::move(records[i]));
  }

  // Rebuild the result prefix for the absorbed records (the replayed tail
  // re-enters result.evals through handle()).
  for (std::size_t i = 0; i < snap.journal_count; ++i) {
    const JournalRecord& jrec = records[i];
    if (jrec.action == "abort") continue;  // aborts never made an EvalRecord
    EvalRecord rec;
    rec.x = box_.from_unit(jrec.x);
    rec.y = jrec.y;
    rec.start = jrec.start;
    rec.finish = jrec.finish;
    rec.worker = jrec.worker;
    rec.is_init = jrec.is_init;
    rec.attempts = jrec.attempts;
    rec.failed = jrec.action != "observed";
    if (rec.failed) rec.failure = jrec.status;
    result.evals.push_back(std::move(rec));
  }

  std::size_t resubmitted = 0;
  if (have_snap) {
    rng_.load(snap.rng);
    sup.set_rng_state(snap.sup_rng);
    obs_x_ = snap.obs_x;
    obs_y_ = snap.obs_y;
    obs_is_init_ = snap.obs_is_init;
    failed_x_ = snap.failed_x;
    prop_x_ = snap.prop_x;
    prop_init_ = snap.prop_init;
    prop_submit_ = snap.prop_submit;
    prop_duration_ = snap.prop_duration;
    issued_ = snap.issued;
    init_done_ = snap.init_done;
    next_hyper_refit_ = snap.next_hyper_refit;
    hyper_refits_ = snap.hyper_refits;
    if (cfg_.acq == AcqKind::Phcbo) {
      if (snap.hc_histories.size() != hc_penalties_.size()) {
        throw io::CheckpointError(
            "snapshot " + spath + " carries " +
            std::to_string(snap.hc_histories.size()) +
            " pHCBO penalty histories; this configuration needs " +
            std::to_string(hc_penalties_.size()));
      }
      for (std::size_t i = 0; i < hc_penalties_.size(); ++i) {
        hc_penalties_[i] = acq::HighCoveragePenalty(cfg_.hc_d, cfg_.hc_n);
        for (const Vec& x : snap.hc_histories[i]) hc_penalties_[i].record(x);
      }
    }
    if (snap.hedge_gains.size() == acq::HedgePortfolio::kMembers) {
      hedge_.set_gains(snap.hedge_gains);
    }
    hedge_nominees_ = snap.hedge_nominees;
    if (init_done_ && !obs_x_.empty()) {
      zscore_.refit(obs_y_);
      model_.set_data(obs_x_, zscore_.transform(obs_y_));
      if (!snap.gp_log_hyperparams.empty()) {
        model_.set_log_hyperparams(snap.gp_log_hyperparams);
      }
      model_.fit();
    }
    last_replay_finish_ = snap.now;
    sup.advance_clock(snap.now);  // continue on the original clock
    busy_base_ = snap.busy;

    // In-flight work at snapshot time: a tag whose outcome is in the
    // journal tail is delivered by replay; anything else was genuinely in
    // flight at the kill and is re-submitted with its REMAINING duration,
    // so it finishes when the uninterrupted run finished it.
    for (const std::size_t tag : snap.pending) {
      if (tag >= prop_x_.size()) {
        throw io::CheckpointError(
            "snapshot " + spath + " marks evaluation " +
            std::to_string(tag) + " in flight but records only " +
            std::to_string(prop_x_.size()) + " proposals");
      }
      pending_tags_.insert(tag);
      if (replay_tags_.count(tag) != 0) {
        replay_awaiting_.insert(tag);
        continue;
      }
      double duration = prop_duration_[tag];
      if (!sup.executor().wall_clock()) {
        double remaining =
            prop_submit_[tag] + effective_duration(duration) - snap.now;
        if (!(remaining > 0.0)) remaining = 1e-9;
        busy_base_ -= remaining;  // the executor re-accounts exactly this
        duration = remaining;
      }
      restored_real_.insert(tag);
      Vec x_design = box_.from_unit(prop_x_[tag]);
      sup.submit(
          tag,
          [obj = &objective_, x = std::move(x_design)] { return (*obj)(x); },
          duration);
      ++resubmitted;
    }
  }

  resume_note_ =
      "resumed from " + cfg_.checkpoint_path + ": " +
      std::to_string(snap.journal_count) + " evaluations restored, " +
      std::to_string(replay_.size()) + " replayed from the journal, " +
      std::to_string(resubmitted) + " re-submitted" +
      (jr.torn_tail ? "; dropped a torn final journal line" : "");
  obs::count(trace_, "ckpt.resumes");
}

BoEngine::Arrived BoEngine::await_one(sched::EvalSupervisor& sup) {
  Arrived a;
  if (!replay_.empty()) {
    JournalRecord rec = std::move(replay_.front());
    replay_.pop_front();
    replay_tags_.erase(rec.tag);
    if (rec.tag >= prop_x_.size() || pending_tags_.count(rec.tag) == 0) {
      throw io::CheckpointError(
          "journal corrupted: record " + std::to_string(rec.index) +
          " completes evaluation " + std::to_string(rec.tag) +
          " which the deterministic replay never issued");
    }
    if (!same_point(rec.x, prop_x_[rec.tag])) {
      throw io::CheckpointError(
          "journal record " + std::to_string(rec.index) +
          " does not match this configuration's proposal stream "
          "(evaluation " + std::to_string(rec.tag) +
          " replays to a different point) — was the journal written by a "
          "different configuration or code version?");
    }
    replay_awaiting_.erase(rec.tag);
    a.replayed = true;
    a.start_abs = rec.start;
    a.finish_abs = rec.finish;
    last_replay_finish_ = rec.finish;
    a.sc.completion.tag = rec.tag;
    a.sc.completion.worker = rec.worker;
    a.sc.completion.start = rec.start;
    a.sc.completion.finish = rec.finish;
    a.sc.status = eval_status_from(rec.status, rec.index);
    a.sc.completion.value =
        a.sc.ok() ? rec.y : std::numeric_limits<double>::quiet_NaN();
    a.sc.attempts = rec.attempts;
    a.sc.error = std::move(rec.error);
    // The original run drew one backoff jitter per relaunch from the
    // supervisor's stream; consume the same draws so the stream position
    // stays aligned.
    sup.replay_retries(a.sc.attempts);
    obs::count(trace_, "ckpt.replayed");
    return a;
  }
  a.sc = timed_wait(sup);
  a.start_abs = a.sc.completion.start;
  a.finish_abs = a.sc.completion.finish;
  const auto it = restored_real_.find(a.sc.completion.tag);
  if (it != restored_real_.end()) {
    // Re-submitted in-flight work: the executor saw only its remainder;
    // its true start is the original submission time.
    a.start_abs = prop_submit_[a.sc.completion.tag];
    restored_real_.erase(it);
  }
  return a;
}

void BoEngine::drain_all(sched::EvalSupervisor& sup, BoResult& result) {
  while (num_outstanding(sup) > 0) handle(await_one(sup), result);
}

void BoEngine::journal_eval(const Arrived& a, const char* action, double y) {
  if (!journal_.is_open() || a.replayed) return;
  JournalRecord rec;
  rec.index = journal_lines_;
  rec.tag = a.sc.completion.tag;
  rec.status = sched::to_string(a.sc.status);
  rec.action = action;
  rec.attempts = a.sc.attempts;
  rec.worker = a.sc.completion.worker;
  rec.start = a.start_abs;
  rec.finish = a.finish_abs;
  rec.is_init = prop_init_[rec.tag];
  rec.x = prop_x_[rec.tag];
  rec.y = y;
  rec.error = a.sc.error;
  obs::ScopedTimer span(trace_, obs::Phase::Checkpoint);
  journal_.append(rec.to_payload());
  ++journal_lines_;
  obs::count(trace_, "ckpt.journal_appends");
}

void BoEngine::maybe_checkpoint(sched::EvalSupervisor& sup) {
  if (!journaling() || !replay_.empty()) return;
  if (journal_lines_ - lines_at_snapshot_ < cfg_.checkpoint_every) return;
  write_snapshot(sup);
}

void BoEngine::write_snapshot(sched::EvalSupervisor& sup) {
  obs::ScopedTimer span(trace_, obs::Phase::Checkpoint);
  BoCheckpoint snap;
  snap.config_hash = config_hash_;
  snap.journal_count = journal_lines_;
  snap.now = logical_now(sup);
  snap.busy = busy_base_ + sup.executor().total_busy_time();
  snap.init_done = init_done_;
  snap.issued = issued_;
  snap.rng = rng_.save();
  snap.sup_rng = sup.rng_state();
  snap.obs_x = obs_x_;
  snap.obs_y = obs_y_;
  snap.obs_is_init = obs_is_init_;
  snap.failed_x = failed_x_;
  snap.prop_x = prop_x_;
  snap.prop_init = prop_init_;
  snap.prop_submit = prop_submit_;
  snap.prop_duration = prop_duration_;
  snap.pending.assign(pending_tags_.begin(), pending_tags_.end());
  snap.hc_histories.reserve(hc_penalties_.size());
  for (const auto& hc : hc_penalties_) {
    snap.hc_histories.emplace_back(hc.history().begin(), hc.history().end());
  }
  snap.hedge_gains = hedge_.gains();
  snap.hedge_nominees = hedge_nominees_;
  snap.next_hyper_refit = next_hyper_refit_;
  snap.hyper_refits = hyper_refits_;
  if (init_done_) snap.gp_log_hyperparams = model_.log_hyperparams();
  io::atomic_write_file(snapshot_file(cfg_.checkpoint_path),
                        io::frame_line(snap.to_payload()) + "\n");
  lines_at_snapshot_ = journal_lines_;
  obs::count(trace_, "ckpt.snapshots");
}

void BoEngine::finalize_metrics(sched::Executor& exec, BoResult& result) {
  auto* recorder = dynamic_cast<obs::RecordingSink*>(trace_);
  if (recorder == nullptr) return;
  result.metrics = recorder->report();
  result.metrics.evals = std::move(eval_log_);
  result.metrics.makespan_seconds = exec.now();
  const std::vector<double> busy = exec.per_worker_busy();
  result.metrics.workers.reserve(busy.size());
  for (std::size_t w = 0; w < busy.size(); ++w) {
    obs::WorkerStat stat;
    stat.worker = w;
    stat.busy_seconds = busy[w];
    stat.idle_seconds = std::max(0.0, exec.now() - busy[w]);
    result.metrics.workers.push_back(stat);
  }
}

BoResult run_bo(const BoConfig& config, const opt::Bounds& bounds,
                const opt::Objective& objective,
                const std::function<double(const Vec&)>& sim_time) {
  BoEngine engine(config, bounds, objective, sim_time);
  return engine.run();
}

}  // namespace easybo::bo
