#include "bo/engine.h"

#include <algorithm>
#include <limits>
#include <memory>

#include "acq/acquisition.h"
#include "acq/thompson.h"
#include "common/error.h"
#include "common/sampling.h"
#include "common/stats.h"
#include "gp/trainer.h"

namespace easybo::bo {

BoEngine::BoEngine(BoConfig config, opt::Bounds bounds,
                   opt::Objective objective,
                   std::function<double(const Vec&)> sim_time)
    : cfg_(std::move(config)),
      bounds_(std::move(bounds)),
      objective_(std::move(objective)),
      sim_time_(std::move(sim_time)),
      rng_(cfg_.seed),
      box_(bounds_.lower, bounds_.upper),
      model_(make_kernel(cfg_, bounds_.lower.size()), 1e-6) {
  cfg_.validate();
  bounds_.validate();
  EASYBO_REQUIRE(static_cast<bool>(objective_), "BoEngine: null objective");
  if (!sim_time_) {
    sim_time_ = [](const Vec&) { return 1.0; };
  }
  if (cfg_.acq == AcqKind::Phcbo) {
    hc_penalties_.assign(cfg_.batch,
                         acq::HighCoveragePenalty(cfg_.hc_d, cfg_.hc_n));
  }
  next_hyper_refit_ = cfg_.init_points;
  proposal_counter_ = std::string("bo.proposals.") + to_string(cfg_.acq);
  if (cfg_.collect_metrics) {
    owned_recorder_ = std::make_unique<obs::RecordingSink>();
    set_trace(owned_recorder_.get());
  }
}

void BoEngine::set_trace(obs::TraceSink* sink) {
  trace_ = sink;
  model_.set_trace(sink);
}

BoResult BoEngine::run() {
  const std::size_t workers =
      (cfg_.mode == Mode::Sequential) ? 1 : cfg_.batch;
  sched::VirtualExecutor exec(workers);
  return run(exec);
}

BoResult BoEngine::run(sched::Executor& exec) {
  EASYBO_REQUIRE(prop_x_.empty(), "BoEngine::run() may be called only once");
  // Every evaluation goes through the supervisor. With the default config
  // (no timeout, no retries) it is a transparent pass-through, so the
  // Abort policy reproduces the pre-supervision runs bit for bit.
  sched::SupervisorConfig scfg;
  scfg.timeout = cfg_.eval_timeout;
  scfg.max_retries = cfg_.eval_max_retries;
  scfg.backoff_init = cfg_.eval_backoff_init;
  scfg.backoff_factor = cfg_.eval_backoff_factor;
  scfg.backoff_max = cfg_.eval_backoff_max;
  scfg.backoff_jitter = cfg_.eval_backoff_jitter;
  scfg.retry_timeouts = cfg_.eval_retry_timeouts;
  // Decorrelated from rng_ so supervision never perturbs the proposal
  // stream; deterministic per seed so retried runs reproduce.
  scfg.seed = cfg_.seed ^ 0x5AFEB0FFu;
  sched::EvalSupervisor sup(exec, scfg, trace_);
  BoResult result;

  run_init_phase(sup, result);
  if (obs_x_.empty()) {
    throw Error(
        "every initial evaluation failed; no observation to build a model "
        "from (see docs/failure-model.md)");
  }
  update_model(/*force_train=*/true);

  switch (cfg_.mode) {
    case Mode::Sequential: run_sequential(sup, result); break;
    case Mode::SyncBatch: run_sync_batch(sup, result); break;
    case Mode::AsyncBatch: run_async_batch(sup, result); break;
  }

  result.makespan = exec.now();
  result.total_sim_time = exec.total_busy_time();
  result.hyper_refits = hyper_refits_;
  const std::size_t inc = incumbent_index();
  result.best_x = box_.from_unit(obs_x_[inc]);
  result.best_y = obs_y_[inc];
  finalize_metrics(exec, result);
  return result;
}

// ---------------------------------------------------------------------------
// Phases
// ---------------------------------------------------------------------------

void BoEngine::run_init_phase(sched::EvalSupervisor& sup, BoResult& result) {
  // Random initial design (the paper samples uniformly at random). All
  // modes push the init points through the executor greedily — identical
  // schedules keep the wall-clock comparison between algorithms fair.
  // The InitDesign span covers the whole phase, waits included. Failed
  // evaluations are topped up (the model needs its init_points anchors)
  // until the whole simulation budget would be burned on them.
  obs::ScopedTimer span(trace_, obs::Phase::InitDesign);
  while (obs_x_.size() < cfg_.init_points) {
    while (sup.has_idle_worker() && issued_ < cfg_.max_sims &&
           obs_x_.size() + sup.num_running() < cfg_.init_points) {
      submit(sup, rng_.uniform_vector(bounds_.dim()), /*is_init=*/true);
    }
    if (sup.num_running() == 0) break;  // budget exhausted by failures
    handle(timed_wait(sup), result);
  }
}

void BoEngine::run_sequential(sched::EvalSupervisor& sup, BoResult& result) {
  while (issued_ < cfg_.max_sims) {
    if (!sup.has_idle_worker()) break;  // the only worker is hung
    submit(sup, propose(/*pending=*/{}, /*slot=*/0), /*is_init=*/false);
    if (handle(timed_wait(sup), result)) update_model(false);
  }
}

void BoEngine::run_sync_batch(sched::EvalSupervisor& sup, BoResult& result) {
  while (issued_ < cfg_.max_sims) {
    const std::size_t remaining = cfg_.max_sims - issued_;
    // A real executor may expose fewer workers than cfg_.batch; a batch
    // larger than the pool could never be issued at once.
    // num_idle_workers (not num_workers): a wall-clock timeout can leave a
    // slot occupied by an abandoned hung objective. Identical when no
    // worker is abandoned — the barrier below drained the pool.
    const std::size_t k =
        std::min({cfg_.batch, remaining, sup.num_idle_workers()});
    if (k == 0) break;  // every worker is hung; cannot make progress
    // Select the whole batch against the current model, then submit and
    // barrier. For EasyBO-SP, each slot hallucinates on the batch points
    // selected so far (pending grows inside the loop).
    std::vector<Vec> batch;
    batch.reserve(k);
    for (std::size_t slot = 0; slot < k; ++slot) {
      batch.push_back(propose(batch, slot));
    }
    for (auto& x : batch) submit(sup, std::move(x), /*is_init=*/false);
    bool changed = false;
    for (const auto& sc : timed_wait_all(sup)) changed |= handle(sc, result);
    if (changed) update_model(false);
  }
}

void BoEngine::run_async_batch(sched::EvalSupervisor& sup, BoResult& result) {
  std::vector<Vec> pending;  // unit points currently running

  // Fill the pool (Algorithm 1 bootstraps with B in-flight points).
  while (sup.has_idle_worker() && issued_ < cfg_.max_sims) {
    Vec x = propose(pending, /*slot=*/0);
    pending.push_back(x);
    submit(sup, std::move(x), /*is_init=*/false);
  }

  // Main loop (Algorithm 1): wait for a worker, absorb its observation,
  // refine the model, propose for the idle worker with the still-running
  // points as pseudo-observations.
  while (sup.num_running() > 0) {
    const auto sc = timed_wait(sup);
    const Vec finished_x = prop_x_[sc.completion.tag];
    const bool changed = handle(sc, result);
    // Remove the finished point from the pending set.
    const auto it = std::find(pending.begin(), pending.end(), finished_x);
    if (it != pending.end()) pending.erase(it);

    if (changed) update_model(false);
    // has_idle_worker: a wall-clock timeout frees no slot (the hung
    // objective still occupies it), so its replacement waits for the next
    // genuinely idle worker. Always true when nothing timed out.
    if (issued_ < cfg_.max_sims && sup.has_idle_worker()) {
      Vec x = propose(pending, /*slot=*/0);
      pending.push_back(x);
      submit(sup, std::move(x), /*is_init=*/false);
    }
  }
}

// ---------------------------------------------------------------------------
// Proposal
// ---------------------------------------------------------------------------

Vec BoEngine::propose(const std::vector<Vec>& pending, std::size_t slot) {
  const std::size_t dim = bounds_.dim();
  const std::vector<Vec> anchors = {obs_x_[incumbent_index()]};
  obs::count(trace_, proposal_counter_);

  // Thompson sampling picks from a sampled posterior path directly; it
  // never goes through the generic acquisition maximizer.
  if (cfg_.acq == AcqKind::Ts) {
    return propose_thompson(pending);
  }
  if (cfg_.acq == AcqKind::Hedge) {
    return propose_hedge(pending);
  }

  // The hallucinated model / base acquisition (when used) must outlive
  // the maximization.
  std::unique_ptr<gp::GpRegressor> hallucinated;
  std::unique_ptr<acq::AcquisitionFn> base_acq;
  std::unique_ptr<acq::AcquisitionFn> fn;

  switch (cfg_.acq) {
    case AcqKind::Lcb:
      fn = std::make_unique<acq::Ucb>(&model_, cfg_.lcb_kappa);
      break;
    case AcqKind::Ei: {
      const double best_z = zscore_.transform(obs_y_[incumbent_index()]);
      fn = std::make_unique<acq::Ei>(&model_, best_z, cfg_.ei_xi);
      break;
    }
    case AcqKind::EasyBo: {
      const double w = cfg_.uniform_w
                           ? rng_.uniform()
                           : acq::sample_easybo_weight(rng_, cfg_.lambda);
      if (cfg_.penalize && !pending.empty()) {
        hallucinated = std::make_unique<gp::GpRegressor>(
            model_.with_hallucinated(pending));
        fn = std::make_unique<acq::WeightedUcb>(&model_, hallucinated.get(),
                                                w);
      } else {
        fn = std::make_unique<acq::WeightedUcb>(&model_, &model_, w);
      }
      break;
    }
    case AcqKind::Pbo: {
      const Vec grid = acq::pbo_weight_grid(cfg_.batch);
      fn = std::make_unique<acq::WeightedUcb>(&model_, &model_,
                                              grid[slot % grid.size()]);
      break;
    }
    case AcqKind::Phcbo: {
      const Vec grid = acq::pbo_weight_grid(cfg_.batch);
      fn = std::make_unique<acq::PhcboAcquisition>(
          &model_, grid[slot % grid.size()],
          &hc_penalties_[slot % hc_penalties_.size()]);
      break;
    }
    case AcqKind::Bucb: {
      if (!pending.empty()) {
        hallucinated = std::make_unique<gp::GpRegressor>(
            model_.with_hallucinated(pending));
        fn = std::make_unique<acq::Bucb>(&model_, hallucinated.get(),
                                         cfg_.bucb_kappa);
      } else {
        fn = std::make_unique<acq::Bucb>(&model_, &model_, cfg_.bucb_kappa);
      }
      break;
    }
    case AcqKind::Lp: {
      const double best_z = zscore_.transform(obs_y_[incumbent_index()]);
      base_acq = std::make_unique<acq::Ei>(&model_, best_z, cfg_.ei_xi);
      const double lipschitz = acq::estimate_lipschitz(model_, rng_);
      fn = std::make_unique<acq::LocalPenalization>(
          base_acq.get(), &model_, pending, lipschitz, best_z);
      break;
    }
    case AcqKind::Ts:
    case AcqKind::Hedge:
      break;  // handled above
  }

  auto best = acq::maximize_acquisition(*fn, dim, rng_, anchors,
                                        cfg_.acq_opt, trace_);
  Vec x = dedup(std::move(best.best_x), pending);
  if (cfg_.acq == AcqKind::Phcbo) {
    hc_penalties_[slot % hc_penalties_.size()].record(x);
  }
  return x;
}

Vec BoEngine::propose_thompson(const std::vector<Vec>& pending) {
  // Candidate set: shifted Sobol + jittered incumbent copies. With
  // penalization, sample from the hallucinated posterior so pending
  // regions carry no leftover uncertainty to exploit. Candidate
  // generation through the posterior argmax is this algorithm's
  // acquisition maximization, hence the span over the whole body.
  obs::ScopedTimer span(trace_, obs::Phase::AcqMaximize);
  const std::size_t dim = bounds_.dim();
  std::vector<Vec> candidates;
  const std::size_t sobol_count =
      std::max<std::size_t>(cfg_.ts_candidates, 16);
  if (dim <= SobolSequence::kMaxDim) {
    SobolSequence sobol(dim);
    Vec shift = rng_.uniform_vector(dim);
    for (std::size_t i = 0; i < sobol_count; ++i) {
      Vec p = sobol.next();
      for (std::size_t j = 0; j < dim; ++j) {
        p[j] += shift[j];
        if (p[j] >= 1.0) p[j] -= 1.0;
      }
      candidates.push_back(std::move(p));
    }
  } else {
    for (std::size_t i = 0; i < sobol_count; ++i) {
      candidates.push_back(rng_.uniform_vector(dim));
    }
  }
  const Vec& incumbent = obs_x_[incumbent_index()];
  for (int k = 0; k < 8; ++k) {
    Vec p = incumbent;
    for (auto& v : p) v = std::clamp(v + rng_.normal(0.0, 0.05), 0.0, 1.0);
    candidates.push_back(std::move(p));
  }

  std::size_t pick;
  if (cfg_.penalize && !pending.empty()) {
    const auto augmented = model_.with_hallucinated(pending);
    pick = acq::thompson_sample_argmax(augmented, candidates, rng_);
  } else {
    pick = acq::thompson_sample_argmax(model_, candidates, rng_);
  }
  return dedup(std::move(candidates[pick]), pending);
}

Vec BoEngine::propose_hedge(const std::vector<Vec>& pending) {
  const std::size_t dim = bounds_.dim();
  const std::vector<Vec> anchors = {obs_x_[incumbent_index()]};

  // Reward the previous nominees under the refreshed model first.
  if (!hedge_nominees_.empty()) {
    Vec means(acq::HedgePortfolio::kMembers);
    for (std::size_t i = 0; i < hedge_nominees_.size(); ++i) {
      means[i] = model_.predict(hedge_nominees_[i]).mean;
    }
    hedge_.reward(means);
  }

  // Each member nominates its own maximizer.
  const double best_z = zscore_.transform(obs_y_[incumbent_index()]);
  const acq::Ei ei(&model_, best_z, cfg_.ei_xi);
  const acq::Pi pi(&model_, best_z, cfg_.ei_xi);
  const acq::Ucb ucb(&model_, cfg_.lcb_kappa);
  const acq::AcquisitionFn* members[] = {&ei, &pi, &ucb};

  hedge_nominees_.clear();
  for (const auto* member : members) {
    hedge_nominees_.push_back(acq::maximize_acquisition(
                                  *member, dim, rng_, anchors, cfg_.acq_opt,
                                  trace_)
                                  .best_x);
  }
  const std::size_t choice = hedge_.choose(rng_);
  return dedup(hedge_nominees_[choice], pending);
}

Vec BoEngine::dedup(Vec x, const std::vector<Vec>& pending) {
  if (failed_x_.empty()) {
    return dedup_proposal(std::move(x), obs_x_, pending, rng_, trace_);
  }
  // Discarded failure locations block proposals too: re-evaluating a point
  // that just crashed verbatim would burn budget on a known failure.
  std::vector<Vec> blocked = pending;
  blocked.insert(blocked.end(), failed_x_.begin(), failed_x_.end());
  return dedup_proposal(std::move(x), obs_x_, blocked, rng_, trace_);
}

Vec dedup_proposal(Vec x, const std::vector<Vec>& observed,
                   const std::vector<Vec>& pending, Rng& rng,
                   obs::TraceSink* trace) {
  auto collides = [&](const Vec& candidate) {
    auto too_close = [&](const Vec& other) {
      return linalg::dist_sq(candidate, other) < 1e-12;
    };
    return std::any_of(observed.begin(), observed.end(), too_close) ||
           std::any_of(pending.begin(), pending.end(), too_close);
  };
  if (!collides(x)) return x;

  // Nudge inside the cube; an exact duplicate adds no information and can
  // degrade the covariance conditioning. A single nudge is not enough: on
  // a boundary duplicate (e.g. the unit-cube corner the acquisition keeps
  // proposing) the clamp can put the point right back onto the duplicate,
  // so retry, then give up on locality and resample uniformly.
  constexpr int kNudges = 4;
  for (int attempt = 0; attempt < kNudges; ++attempt) {
    Vec nudged = x;
    for (auto& v : nudged) {
      v = std::clamp(v + rng.normal(0.0, 0.01), 0.0, 1.0);
    }
    obs::count(trace, "bo.dedup_nudge");
    if (!collides(nudged)) return nudged;
  }
  constexpr int kResamples = 16;
  Vec resampled = std::move(x);
  for (int attempt = 0; attempt < kResamples; ++attempt) {
    resampled = rng.uniform_vector(resampled.size());
    obs::count(trace, "bo.dedup_resample");
    if (!collides(resampled)) break;
  }
  return resampled;  // last candidate even if saturated: progress > purity
}

// ---------------------------------------------------------------------------
// Model management
// ---------------------------------------------------------------------------

void BoEngine::update_model(bool force_train) {
  {
    obs::ScopedTimer span(trace_, obs::Phase::ModelFit);
    zscore_.refit(obs_y_);
    model_.set_data(obs_x_, zscore_.transform(obs_y_));
  }

  const bool train = force_train || obs_x_.size() >= next_hyper_refit_;
  if (train) {
    obs::ScopedTimer span(trace_, obs::Phase::HyperRefit);
    gp::train_mle(model_, rng_, cfg_.trainer);
    obs::count(trace_, "bo.hyper_refit");
    ++hyper_refits_;
    // Geometrically thinning schedule: early observations shift the
    // hyperparameters a lot, late ones barely; this caps total O(n^3)
    // training cost without changing behaviour materially.
    const auto n = obs_x_.size();
    next_hyper_refit_ = std::max(
        n + cfg_.refit_every,
        static_cast<std::size_t>(static_cast<double>(n) * 1.5));
  } else {
    obs::ScopedTimer span(trace_, obs::Phase::ModelFit);
    model_.fit();
  }
}

std::size_t BoEngine::incumbent_index() const {
  EASYBO_REQUIRE(!obs_y_.empty(), "incumbent of empty dataset");
  return linalg::argmax(obs_y_);
}

// ---------------------------------------------------------------------------
// Executor plumbing
// ---------------------------------------------------------------------------

void BoEngine::submit(sched::EvalSupervisor& sup, Vec unit_x, bool is_init) {
  Vec x_design = box_.from_unit(unit_x);
  const double duration = sim_time_(x_design);
  const std::size_t tag = prop_x_.size();
  prop_x_.push_back(std::move(unit_x));
  prop_init_.push_back(is_init);
  ++issued_;
  // The executor decides where and when the objective runs (eagerly for
  // virtual time, on a worker thread for real threads); the engine only
  // sees the outcome at handle time.
  sup.submit(
      tag,
      [obj = &objective_, x = std::move(x_design)] { return (*obj)(x); },
      duration);
}

bool BoEngine::handle(const sched::SupervisedCompletion& sc,
                      BoResult& result) {
  const sched::Completion& c = sc.completion;
  if (trace_ != nullptr) {
    // Executor-clock duration: virtual seconds on a VirtualExecutor, wall
    // seconds on real threads; spans retries and backoff. Not a
    // ScopedTimer — the evaluation already happened inside the executor;
    // this books its reported span.
    trace_->add_time(obs::Phase::ObjectiveEval, c.finish - c.start);
  }
  const Vec& unit_x = prop_x_[c.tag];

  EvalRecord rec;
  rec.x = box_.from_unit(unit_x);
  rec.start = c.start;
  rec.finish = c.finish;
  rec.worker = c.worker;
  rec.is_init = prop_init_[c.tag];
  rec.attempts = sc.attempts;

  if (sc.ok()) {
    obs_x_.push_back(unit_x);
    obs_y_.push_back(c.value);
    obs_is_init_.push_back(prop_init_[c.tag]);
    rec.y = c.value;
    result.evals.push_back(std::move(rec));
    log_eval(sc, "observed");
    return true;
  }

  obs::count(trace_, "eval.failures");
  if (cfg_.on_eval_failure == EvalFailurePolicy::Abort) {
    // Rethrow the objective's own exception so callers see exactly what
    // they saw before supervision existed; timeouts and non-finite values
    // never carried one, so they get a descriptive Error.
    if (sc.exception) std::rethrow_exception(sc.exception);
    throw Error(std::string("evaluation failed (") +
                sched::to_string(sc.status) +
                ") and on_eval_failure is abort" +
                (sc.error.empty() ? "" : ": " + sc.error));
  }

  rec.failed = true;
  rec.failure = sched::to_string(sc.status);

  // Penalize needs at least one real observation to anchor the quantile;
  // until then it degrades to Discard.
  if (cfg_.on_eval_failure == EvalFailurePolicy::Penalize &&
      !obs_y_.empty()) {
    obs::count(trace_, "eval.penalized");
    const double y_pen =
        quantile_of(obs_y_, cfg_.eval_failure_quantile);
    obs_x_.push_back(unit_x);
    obs_y_.push_back(y_pen);
    obs_is_init_.push_back(prop_init_[c.tag]);
    rec.y = y_pen;
    result.evals.push_back(std::move(rec));
    log_eval(sc, "penalized");
    return true;
  }

  obs::count(trace_, "eval.discarded");
  failed_x_.push_back(unit_x);  // dedup must never re-propose it verbatim
  rec.y = std::numeric_limits<double>::quiet_NaN();
  result.evals.push_back(std::move(rec));
  log_eval(sc, "discarded");
  return false;
}

void BoEngine::log_eval(const sched::SupervisedCompletion& sc,
                        const char* action) {
  if (trace_ == nullptr) return;  // same zero-cost convention as counters
  obs::EvalLogEntry e;
  e.index = eval_log_.size();
  e.status = sched::to_string(sc.status);
  e.action = action;
  e.attempts = sc.attempts;
  e.worker = sc.completion.worker;
  e.start = sc.completion.start;
  e.finish = sc.completion.finish;
  eval_log_.push_back(std::move(e));
}

sched::SupervisedCompletion BoEngine::timed_wait(sched::EvalSupervisor& sup) {
  obs::ScopedTimer span(trace_, obs::Phase::ExecutorWait);
  return sup.wait_next();
}

std::vector<sched::SupervisedCompletion> BoEngine::timed_wait_all(
    sched::EvalSupervisor& sup) {
  obs::ScopedTimer span(trace_, obs::Phase::ExecutorWait);
  return sup.wait_all();
}

void BoEngine::finalize_metrics(sched::Executor& exec, BoResult& result) {
  auto* recorder = dynamic_cast<obs::RecordingSink*>(trace_);
  if (recorder == nullptr) return;
  result.metrics = recorder->report();
  result.metrics.evals = std::move(eval_log_);
  result.metrics.makespan_seconds = exec.now();
  const std::vector<double> busy = exec.per_worker_busy();
  result.metrics.workers.reserve(busy.size());
  for (std::size_t w = 0; w < busy.size(); ++w) {
    obs::WorkerStat stat;
    stat.worker = w;
    stat.busy_seconds = busy[w];
    stat.idle_seconds = std::max(0.0, exec.now() - busy[w]);
    result.metrics.workers.push_back(stat);
  }
}

BoResult run_bo(const BoConfig& config, const opt::Bounds& bounds,
                const opt::Objective& objective,
                const std::function<double(const Vec&)>& sim_time) {
  BoEngine engine(config, bounds, objective, sim_time);
  return engine.run();
}

}  // namespace easybo::bo
