#include "bo/engine.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <utility>

#include "common/error.h"
#include "io/json.h"

namespace easybo::bo {

namespace {

sched::EvalStatus eval_status_from(const std::string& name,
                                   std::size_t record_index) {
  if (name == "ok") return sched::EvalStatus::Ok;
  if (name == "exception") return sched::EvalStatus::Exception;
  if (name == "timeout") return sched::EvalStatus::Timeout;
  if (name == "non_finite") return sched::EvalStatus::NonFinite;
  throw io::CheckpointError("journal corrupted: record " +
                            std::to_string(record_index) +
                            " carries unknown eval status \"" + name + "\"");
}

bool same_point(const Vec& a, const Vec& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

}  // namespace

BoEngine::BoEngine(BoConfig config, opt::Bounds bounds,
                   opt::Objective objective,
                   std::function<double(const Vec&)> sim_time)
    : core_(std::move(config), std::move(bounds), std::move(sim_time)),
      objective_(std::move(objective)) {
  EASYBO_REQUIRE(static_cast<bool>(objective_), "BoEngine: null objective");
  if (cfg().collect_metrics) {
    owned_recorder_ = std::make_unique<obs::RecordingSink>();
    set_trace(owned_recorder_.get());
  }
}

void BoEngine::set_trace(obs::TraceSink* sink) {
  trace_ = sink;
  core_.set_trace(sink);
}

BoResult BoEngine::run() {
  const std::size_t workers =
      (cfg().mode == Mode::Sequential) ? 1 : cfg().batch;
  sched::VirtualExecutor exec(workers);
  return run(exec);
}

BoResult BoEngine::run(sched::Executor& exec) {
  EASYBO_REQUIRE(core_.num_proposals() == 0,
                 "BoEngine::run() may be called only once");
  // Every evaluation goes through the supervisor. With the default config
  // (no timeout, no retries) it is a transparent pass-through, so the
  // Abort policy reproduces the pre-supervision runs bit for bit.
  sched::SupervisorConfig scfg;
  scfg.timeout = cfg().eval_timeout;
  scfg.max_retries = cfg().eval_max_retries;
  scfg.backoff_init = cfg().eval_backoff_init;
  scfg.backoff_factor = cfg().eval_backoff_factor;
  scfg.backoff_max = cfg().eval_backoff_max;
  scfg.backoff_jitter = cfg().eval_backoff_jitter;
  scfg.retry_timeouts = cfg().eval_retry_timeouts;
  // Decorrelated from the proposal stream's RNG so supervision never
  // perturbs it; deterministic per seed so retried runs reproduce.
  scfg.seed = cfg().seed ^ 0x5AFEB0FFu;
  sched::EvalSupervisor sup(exec, scfg, trace_);
  BoResult result;

  if (core_.journaling()) {
    if (resumed_) {
      restore(sup, result);
    } else {
      core_.start_fresh_journal();
    }
  }

  if (!core_.init_done()) {
    run_init_phase(sup, result);
    if (!stop_requested()) {
      // Throws the all-initial-evaluations-failed error when there is
      // nothing to build a model from.
      core_.finish_init();
    }
  }

  if (!stop_requested()) {
    switch (cfg().mode) {
      case Mode::Sequential: run_sequential(sup, result); break;
      case Mode::SyncBatch: run_sync_batch(sup, result); break;
      case Mode::AsyncBatch: run_async_batch(sup, result); break;
    }
  }
  // A stop at a phase boundary can leave init evaluations in flight:
  // drain them so the journal is complete and the final snapshot carries
  // no pending work it does not have to.
  if (stop_requested()) drain_all(sup, result);

  result.evals = std::move(core_.evals());
  result.makespan = std::max(exec.now(), last_replay_finish_);
  result.total_sim_time = busy_base_ + exec.total_busy_time();
  result.hyper_refits = core_.hyper_refits();
  result.interrupted = stop_requested();
  result.resume_note = resume_note_;
  result.orphaned_workers = sup.orphans();
  if (sup.orphans() > 0) {
    obs::count(trace_, "sched.orphaned_workers", sup.orphans());
  }
  if (core_.has_observations()) {
    result.best_x = core_.best_x();
    result.best_y = core_.best_y();
  }
  if (core_.journaling()) write_snapshot(sup);
  finalize_metrics(exec, result);
  return result;
}

BoResult BoEngine::resume(const std::string& path) {
  const std::size_t workers =
      (cfg().mode == Mode::Sequential) ? 1 : cfg().batch;
  sched::VirtualExecutor exec(workers);
  return resume(path, exec);
}

BoResult BoEngine::resume(const std::string& path, sched::Executor& exec) {
  EASYBO_REQUIRE(core_.num_proposals() == 0,
                 "BoEngine::resume() must be the engine's only run");
  EASYBO_REQUIRE(!path.empty(), "BoEngine::resume: empty checkpoint path");
  core_.set_checkpoint_path(path);  // journaling continues on these files
  resumed_ = true;
  return run(exec);
}

// ---------------------------------------------------------------------------
// Phases: each is one pump schedule over the core's suggest/observe.
// ---------------------------------------------------------------------------

void BoEngine::run_init_phase(sched::EvalSupervisor& sup, BoResult& result) {
  // All modes push the init points through the executor greedily —
  // identical schedules keep the wall-clock comparison between algorithms
  // fair. The InitDesign span covers the whole phase, waits included.
  // Failed evaluations are topped up (the model needs its init_points
  // anchors) until the whole simulation budget would be burned on them.
  obs::ScopedTimer span(trace_, obs::Phase::InitDesign);
  while (core_.num_observations() < cfg().init_points && !stop_requested()) {
    maybe_checkpoint(sup);
    while (can_submit(sup) && core_.issued() < cfg().max_sims &&
           core_.num_observations() + num_outstanding(sup) <
               cfg().init_points &&
           !stop_requested()) {
      submit(sup);
    }
    if (num_outstanding(sup) == 0) break;  // budget exhausted by failures
    observe_arrival(await_one(sup), result);
  }
}

void BoEngine::run_sequential(sched::EvalSupervisor& sup, BoResult& result) {
  while (core_.issued() < cfg().max_sims && !stop_requested()) {
    maybe_checkpoint(sup);
    if (!can_submit(sup)) break;  // the only worker is hung
    submit(sup);
    observe_arrival(await_one(sup), result);
  }
}

void BoEngine::run_sync_batch(sched::EvalSupervisor& sup, BoResult& result) {
  while (core_.issued() < cfg().max_sims && !stop_requested()) {
    maybe_checkpoint(sup);
    const std::size_t remaining = cfg().max_sims - core_.issued();
    // A real executor may expose fewer workers than cfg().batch; a batch
    // larger than the pool could never be issued at once.
    // idle_for_submit (not num_workers): a wall-clock timeout can leave a
    // slot occupied by an abandoned hung objective. Identical when no
    // worker is abandoned — the barrier below drained the pool.
    const std::size_t k =
        std::min({cfg().batch, remaining, idle_for_submit(sup)});
    if (k == 0) break;  // every worker is hung; cannot make progress
    // The core selects each batch point against the pre-batch model,
    // hallucinating the slots selected so far (its pending set grows with
    // every suggestion), and defers the model refresh to the barrier.
    for (std::size_t slot = 0; slot < k; ++slot) submit(sup);
    while (num_outstanding(sup) > 0) {
      observe_arrival(await_one(sup), result);
    }
  }
}

void BoEngine::run_async_batch(sched::EvalSupervisor& sup, BoResult& result) {
  // Fill the pool (Algorithm 1 bootstraps with B in-flight points). On
  // resume the in-flight set restored from the snapshot already occupies
  // its logical worker slots.
  while (can_submit(sup) && core_.issued() < cfg().max_sims &&
         !stop_requested()) {
    submit(sup);
  }

  // Main loop (Algorithm 1): wait for a worker, absorb its observation
  // (the core refines the model inside observe), propose for the idle
  // worker with the still-running points as pseudo-observations.
  while (num_outstanding(sup) > 0) {
    maybe_checkpoint(sup);
    observe_arrival(await_one(sup), result);
    // can_submit: a wall-clock timeout frees no slot (the hung objective
    // still occupies it), so its replacement waits for the next genuinely
    // idle worker. Always true when nothing timed out.
    if (core_.issued() < cfg().max_sims && can_submit(sup) &&
        !stop_requested()) {
      submit(sup);
    }
  }
}

// ---------------------------------------------------------------------------
// Executor plumbing
// ---------------------------------------------------------------------------

void BoEngine::submit(sched::EvalSupervisor& sup) {
  Suggestion s = core_.suggest(logical_now(sup));
  if (replay_tags_.count(s.tag) != 0) {
    // The outcome of this evaluation is already durable in the journal:
    // the replay queue will deliver it. The worker slot it occupied in
    // the original timeline is accounted logically (num_outstanding), and
    // its busy time — which the executor will never see — here.
    replay_awaiting_.insert(s.tag);
    if (!sup.executor().wall_clock()) {
      busy_base_ += effective_duration(s.duration);
    }
    return;
  }
  if (resumed_) {
    // Mid-/post-replay real submission: line the virtual clock up with
    // the original timeline first, so this work starts — and therefore
    // finishes — at exactly the times the uninterrupted run produced.
    sup.advance_clock(last_replay_finish_);
  }
  // The executor decides where and when the objective runs (eagerly for
  // virtual time, on a worker thread for real threads); the engine only
  // sees the outcome at observe time.
  sup.submit(
      s.tag, [obj = &objective_, x = std::move(s.x)] { return (*obj)(x); },
      s.duration);
}

void BoEngine::observe_arrival(const Arrived& a, BoResult& result,
                               bool draining) {
  (void)result;  // records accumulate in the core; moved out at run() end
  const sched::SupervisedCompletion& sc = a.sc;
  const sched::Completion& c = sc.completion;
  if (trace_ != nullptr && !a.replayed) {
    // Executor-clock duration: virtual seconds on a VirtualExecutor, wall
    // seconds on real threads; spans retries and backoff. Not a
    // ScopedTimer — the evaluation already happened inside the executor;
    // this books its reported span. Replayed completions book nothing:
    // this process never ran them (metrics cover the current process).
    trace_->add_time(obs::Phase::ObjectiveEval, c.finish - c.start);
  }
  Outcome o;
  o.status = sc.status;
  o.value = c.value;
  o.attempts = sc.attempts;
  o.worker = c.worker;
  o.start = a.start_abs;
  o.finish = a.finish_abs;
  o.error = sc.error;
  o.exception = sc.exception;
  o.replayed = a.replayed;
  const Observed ob = core_.observe(c.tag, o, draining);
  if (!a.replayed) log_eval(sc, ob.action);
}

void BoEngine::log_eval(const sched::SupervisedCompletion& sc,
                        const char* action) {
  if (trace_ == nullptr) return;  // same zero-cost convention as counters
  obs::EvalLogEntry e;
  e.index = eval_log_.size();
  e.status = sched::to_string(sc.status);
  e.action = action;
  e.attempts = sc.attempts;
  e.worker = sc.completion.worker;
  e.start = sc.completion.start;
  e.finish = sc.completion.finish;
  eval_log_.push_back(std::move(e));
}

sched::SupervisedCompletion BoEngine::timed_wait(sched::EvalSupervisor& sup) {
  obs::ScopedTimer span(trace_, obs::Phase::ExecutorWait);
  return sup.wait_next();
}

std::vector<sched::SupervisedCompletion> BoEngine::timed_wait_all(
    sched::EvalSupervisor& sup) {
  obs::ScopedTimer span(trace_, obs::Phase::ExecutorWait);
  return sup.wait_all();
}

// ---------------------------------------------------------------------------
// Durability: journal, snapshot, resume replay (docs/checkpoint-format.md)
// ---------------------------------------------------------------------------

double BoEngine::effective_duration(double duration) const {
  if (cfg().eval_timeout > 0.0 && duration > cfg().eval_timeout) {
    return cfg().eval_timeout;  // the supervisor cuts it there (virtual)
  }
  return duration;
}

void BoEngine::restore(sched::EvalSupervisor& sup, BoResult& result) {
  (void)result;  // the eval prefix is rebuilt into the core's records
  const std::string jpath = journal_file(cfg().checkpoint_path);
  const std::string spath = snapshot_file(cfg().checkpoint_path);
  if (!io::file_exists(jpath)) {
    throw io::CheckpointError("cannot resume: no journal at " + jpath);
  }
  const io::JournalReadResult jr = io::read_journal(jpath);
  if (jr.payloads.empty()) {
    throw io::CheckpointError("cannot resume: journal at " + jpath +
                              " holds no intact header line");
  }
  const JournalHeader header = JournalHeader::parse(jr.payloads.front());
  if (header.config_hash != core_.config_hash()) {
    throw io::CheckpointError(
        "checkpoint config mismatch: journal " + jpath +
        " was written with config fingerprint " +
        io::json_u64(header.config_hash) +
        " but this engine is configured with fingerprint " +
        io::json_u64(core_.config_hash()) +
        "; resuming would splice two different proposal streams");
  }
  std::vector<JournalRecord> records;
  records.reserve(jr.payloads.size() - 1);
  for (std::size_t i = 1; i < jr.payloads.size(); ++i) {
    JournalRecord rec = JournalRecord::parse(jr.payloads[i]);
    if (rec.index != records.size()) {
      throw io::CheckpointError(
          "journal corrupted: line " + std::to_string(i + 1) + " of " +
          jpath + " carries record index " + std::to_string(rec.index) +
          " where " + std::to_string(records.size()) + " was expected");
    }
    records.push_back(std::move(rec));
  }

  BoCheckpoint snap;
  const bool have_snap = io::file_exists(spath);
  if (have_snap) {
    const io::JournalReadResult sr = io::read_journal(spath);
    if (sr.payloads.size() != 1 || sr.torn_tail) {
      throw io::CheckpointError(
          "snapshot " + spath +
          " is damaged (expected exactly one intact framed line)");
    }
    snap = BoCheckpoint::parse(sr.payloads.front());
    if (snap.config_hash != core_.config_hash()) {
      throw io::CheckpointError(
          "checkpoint config mismatch: snapshot " + spath +
          " was written with config fingerprint " +
          io::json_u64(snap.config_hash) +
          " but this engine is configured with fingerprint " +
          io::json_u64(core_.config_hash()));
    }
    if (snap.journal_count > records.size()) {
      throw io::CheckpointError(
          "snapshot " + spath + " absorbs " +
          std::to_string(snap.journal_count) + " evaluations but journal " +
          jpath + " holds only " + std::to_string(records.size()) +
          " — the files do not belong to the same run");
    }
  }

  // Re-open for appending, truncating any torn tail first: those bytes
  // are a record that never became durable and will be rewritten by the
  // replay when it reaches that evaluation again.
  core_.reopen_journal(jr.valid_bytes, records.size(),
                       have_snap ? snap.journal_count : 0);

  // Stage the journal tail — everything the snapshot has not absorbed —
  // for replay through the normal loop.
  for (std::size_t i = snap.journal_count; i < records.size(); ++i) {
    replay_tags_.insert(records[i].tag);
    replay_.push_back(std::move(records[i]));
  }

  // Rebuild the eval-record prefix for the absorbed records (the replayed
  // tail re-enters the core's records through observe).
  for (std::size_t i = 0; i < snap.journal_count; ++i) {
    const JournalRecord& jrec = records[i];
    if (jrec.action == "abort") continue;  // aborts never made an EvalRecord
    EvalRecord rec;
    rec.x = core_.to_design(jrec.x);
    rec.y = jrec.y;
    rec.start = jrec.start;
    rec.finish = jrec.finish;
    rec.worker = jrec.worker;
    rec.is_init = jrec.is_init;
    rec.attempts = jrec.attempts;
    rec.failed = jrec.action != "observed";
    if (rec.failed) rec.failure = jrec.status;
    core_.evals().push_back(std::move(rec));
  }

  std::size_t resubmitted = 0;
  if (have_snap) {
    sup.set_rng_state(snap.sup_rng);
    core_.restore_snapshot(snap, spath);
    last_replay_finish_ = snap.now;
    sup.advance_clock(snap.now);  // continue on the original clock
    busy_base_ = snap.busy;

    // In-flight work at snapshot time: a tag whose outcome is in the
    // journal tail is delivered by replay; anything else was genuinely in
    // flight at the kill and is re-submitted with its REMAINING duration,
    // so it finishes when the uninterrupted run finished it.
    for (const std::size_t tag : snap.pending) {
      if (replay_tags_.count(tag) != 0) {
        replay_awaiting_.insert(tag);
        continue;
      }
      double duration = core_.proposal_duration(tag);
      if (!sup.executor().wall_clock()) {
        double remaining = core_.proposal_submit_time(tag) +
                           effective_duration(duration) - snap.now;
        if (!(remaining > 0.0)) remaining = 1e-9;
        busy_base_ -= remaining;  // the executor re-accounts exactly this
        duration = remaining;
      }
      restored_real_.insert(tag);
      Vec x_design = core_.to_design(core_.proposal(tag));
      sup.submit(
          tag,
          [obj = &objective_, x = std::move(x_design)] { return (*obj)(x); },
          duration);
      ++resubmitted;
    }
  }

  resume_note_ =
      "resumed from " + cfg().checkpoint_path + ": " +
      std::to_string(snap.journal_count) + " evaluations restored, " +
      std::to_string(replay_.size()) + " replayed from the journal, " +
      std::to_string(resubmitted) + " re-submitted" +
      (jr.torn_tail ? "; dropped a torn final journal line" : "");
  obs::count(trace_, "ckpt.resumes");
}

BoEngine::Arrived BoEngine::await_one(sched::EvalSupervisor& sup) {
  Arrived a;
  if (!replay_.empty()) {
    JournalRecord rec = std::move(replay_.front());
    replay_.pop_front();
    replay_tags_.erase(rec.tag);
    if (rec.tag >= core_.num_proposals() ||
        core_.pending_tags().count(rec.tag) == 0) {
      throw io::CheckpointError(
          "journal corrupted: record " + std::to_string(rec.index) +
          " completes evaluation " + std::to_string(rec.tag) +
          " which the deterministic replay never issued");
    }
    if (!same_point(rec.x, core_.proposal(rec.tag))) {
      throw io::CheckpointError(
          "journal record " + std::to_string(rec.index) +
          " does not match this configuration's proposal stream "
          "(evaluation " + std::to_string(rec.tag) +
          " replays to a different point) — was the journal written by a "
          "different configuration or code version?");
    }
    replay_awaiting_.erase(rec.tag);
    a.replayed = true;
    a.start_abs = rec.start;
    a.finish_abs = rec.finish;
    last_replay_finish_ = rec.finish;
    a.sc.completion.tag = rec.tag;
    a.sc.completion.worker = rec.worker;
    a.sc.completion.start = rec.start;
    a.sc.completion.finish = rec.finish;
    a.sc.status = eval_status_from(rec.status, rec.index);
    a.sc.completion.value =
        a.sc.ok() ? rec.y : std::numeric_limits<double>::quiet_NaN();
    a.sc.attempts = rec.attempts;
    a.sc.error = std::move(rec.error);
    // The original run drew one backoff jitter per relaunch from the
    // supervisor's stream; consume the same draws so the stream position
    // stays aligned.
    sup.replay_retries(a.sc.attempts);
    obs::count(trace_, "ckpt.replayed");
    return a;
  }
  a.sc = timed_wait(sup);
  a.start_abs = a.sc.completion.start;
  a.finish_abs = a.sc.completion.finish;
  const auto it = restored_real_.find(a.sc.completion.tag);
  if (it != restored_real_.end()) {
    // Re-submitted in-flight work: the executor saw only its remainder;
    // its true start is the original submission time.
    a.start_abs = core_.proposal_submit_time(a.sc.completion.tag);
    restored_real_.erase(it);
  }
  return a;
}

void BoEngine::drain_all(sched::EvalSupervisor& sup, BoResult& result) {
  while (num_outstanding(sup) > 0) {
    observe_arrival(await_one(sup), result, /*draining=*/true);
  }
}

void BoEngine::maybe_checkpoint(sched::EvalSupervisor& sup) {
  if (!core_.journaling() || !replay_.empty()) return;
  if (core_.journal_lines() - core_.lines_at_snapshot() <
      cfg().checkpoint_every) {
    return;
  }
  write_snapshot(sup);
}

void BoEngine::write_snapshot(sched::EvalSupervisor& sup) {
  core_.write_snapshot(logical_now(sup),
                       busy_base_ + sup.executor().total_busy_time(),
                       sup.rng_state());
}

void BoEngine::finalize_metrics(sched::Executor& exec, BoResult& result) {
  obs::RecordingSink* recorder =
      trace_ == nullptr ? nullptr : trace_->recording_sink();
  if (recorder == nullptr) return;
  result.metrics = recorder->report();
  result.metrics.evals = std::move(eval_log_);
  result.metrics.makespan_seconds = exec.now();
  const std::vector<double> busy = exec.per_worker_busy();
  result.metrics.workers.reserve(busy.size());
  for (std::size_t w = 0; w < busy.size(); ++w) {
    obs::WorkerStat stat;
    stat.worker = w;
    stat.busy_seconds = busy[w];
    stat.idle_seconds = std::max(0.0, exec.now() - busy[w]);
    result.metrics.workers.push_back(stat);
  }
}

BoResult run_bo(const BoConfig& config, const opt::Bounds& bounds,
                const opt::Objective& objective,
                const std::function<double(const Vec&)>& sim_time) {
  BoEngine engine(config, bounds, objective, sim_time);
  return engine.run();
}

}  // namespace easybo::bo
