#pragma once
/// \file vec.h
/// \brief Free functions on std::vector<double> used as the vector type.
///
/// Design points, observations and GP intermediates are plain
/// std::vector<double>; these helpers keep inner loops readable without
/// introducing an expression-template vector class the project doesn't need.

#include <cstddef>
#include <vector>

namespace easybo::linalg {

using Vec = std::vector<double>;

/// Inner product; requires equal sizes.
double dot(const Vec& a, const Vec& b);

/// Euclidean norm.
double norm2(const Vec& a);

/// Squared Euclidean distance between two equally sized vectors.
double dist_sq(const Vec& a, const Vec& b);

/// Euclidean distance.
double dist(const Vec& a, const Vec& b);

/// y += alpha * x (sizes must match).
void axpy(double alpha, const Vec& x, Vec& y);

/// Element-wise sum / difference / scaling (value-returning).
Vec add(const Vec& a, const Vec& b);
Vec sub(const Vec& a, const Vec& b);
Vec scale(double alpha, const Vec& a);

/// Sum of elements.
double sum(const Vec& a);

/// Index of the maximum element; requires non-empty input.
std::size_t argmax(const Vec& a);

/// Index of the minimum element; requires non-empty input.
std::size_t argmin(const Vec& a);

/// Clamps each element into [lo[i], hi[i]] (box projection).
Vec clamp_to_box(Vec x, const Vec& lo, const Vec& hi);

/// True when every element of x lies inside the closed box [lo, hi].
bool inside_box(const Vec& x, const Vec& lo, const Vec& hi);

}  // namespace easybo::linalg
