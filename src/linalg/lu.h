#pragma once
/// \file lu.h
/// \brief LU factorization with partial pivoting, templated on the scalar.
///
/// The MNA circuit simulator (src/spice) solves complex linear systems
/// G(jw) v = i at every frequency point; the GP/opt stack occasionally needs
/// a real general solve. Both share this header-only implementation.

#include <cmath>
#include <complex>
#include <cstddef>
#include <vector>

#include "common/error.h"

namespace easybo::linalg {

namespace detail {
inline double abs_value(double x) { return std::abs(x); }
inline double abs_value(const std::complex<double>& x) { return std::abs(x); }
}  // namespace detail

/// Dense LU factorization P A = L U with partial (row) pivoting.
///
/// Scalar may be double or std::complex<double>. Storage is row-major,
/// packed (L below the diagonal with unit diagonal implied, U on and above).
template <typename Scalar>
class Lu {
 public:
  /// Factors the n x n matrix given as row-major data.
  /// Throws NumericalError when a pivot column is exactly singular.
  Lu(std::vector<Scalar> a, std::size_t n) : n_(n), lu_(std::move(a)) {
    EASYBO_REQUIRE(lu_.size() == n_ * n_, "Lu: data size must be n*n");
    perm_.resize(n_);
    for (std::size_t i = 0; i < n_; ++i) perm_[i] = i;
    factor();
  }

  std::size_t size() const { return n_; }

  /// Number of row swaps performed (determinant sign bookkeeping).
  int swap_count() const { return swaps_; }

  /// Solves A x = b.
  std::vector<Scalar> solve(const std::vector<Scalar>& b) const {
    EASYBO_REQUIRE(b.size() == n_, "Lu::solve size mismatch");
    // Apply permutation, then forward/back substitution.
    std::vector<Scalar> x(n_);
    for (std::size_t i = 0; i < n_; ++i) x[i] = b[perm_[i]];
    for (std::size_t i = 1; i < n_; ++i) {
      Scalar acc = x[i];
      for (std::size_t k = 0; k < i; ++k) acc -= lu_[i * n_ + k] * x[k];
      x[i] = acc;
    }
    for (std::size_t ii = n_; ii > 0; --ii) {
      const std::size_t i = ii - 1;
      Scalar acc = x[i];
      for (std::size_t k = i + 1; k < n_; ++k) acc -= lu_[i * n_ + k] * x[k];
      x[i] = acc / lu_[i * n_ + i];
    }
    return x;
  }

  /// Determinant (product of U diagonal, sign-adjusted for swaps).
  Scalar determinant() const {
    Scalar det = (swaps_ % 2 == 0) ? Scalar(1) : Scalar(-1);
    for (std::size_t i = 0; i < n_; ++i) det *= lu_[i * n_ + i];
    return det;
  }

 private:
  void factor() {
    for (std::size_t col = 0; col < n_; ++col) {
      // Partial pivot: largest magnitude in this column at/below diagonal.
      std::size_t pivot = col;
      double best = detail::abs_value(lu_[col * n_ + col]);
      for (std::size_t r = col + 1; r < n_; ++r) {
        const double mag = detail::abs_value(lu_[r * n_ + col]);
        if (mag > best) {
          best = mag;
          pivot = r;
        }
      }
      if (best == 0.0) {
        throw NumericalError("Lu: matrix is singular at column " +
                             std::to_string(col));
      }
      if (pivot != col) {
        for (std::size_t c = 0; c < n_; ++c) {
          std::swap(lu_[pivot * n_ + c], lu_[col * n_ + c]);
        }
        std::swap(perm_[pivot], perm_[col]);
        ++swaps_;
      }
      const Scalar inv_pivot = Scalar(1) / lu_[col * n_ + col];
      for (std::size_t r = col + 1; r < n_; ++r) {
        const Scalar mult = lu_[r * n_ + col] * inv_pivot;
        lu_[r * n_ + col] = mult;
        for (std::size_t c = col + 1; c < n_; ++c) {
          lu_[r * n_ + c] -= mult * lu_[col * n_ + c];
        }
      }
    }
  }

  std::size_t n_ = 0;
  std::vector<Scalar> lu_;
  std::vector<std::size_t> perm_;
  int swaps_ = 0;
};

using LuReal = Lu<double>;
using LuComplex = Lu<std::complex<double>>;

}  // namespace easybo::linalg
