#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace easybo::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    EASYBO_REQUIRE(r.size() == cols_, "ragged initializer list");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::from_rows(const std::vector<Vec>& rows) {
  if (rows.empty()) return {};
  const std::size_t cols = rows.front().size();
  Matrix m(rows.size(), cols);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    EASYBO_REQUIRE(rows[r].size() == cols, "from_rows: ragged input");
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  EASYBO_REQUIRE(r < rows_ && c < cols_, "Matrix::at out of range");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  EASYBO_REQUIRE(r < rows_ && c < cols_, "Matrix::at out of range");
  return (*this)(r, c);
}

Vec Matrix::row(std::size_t r) const {
  EASYBO_REQUIRE(r < rows_, "Matrix::row out of range");
  return Vec(data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
             data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_));
}

Vec Matrix::col(std::size_t c) const {
  EASYBO_REQUIRE(c < cols_, "Matrix::col out of range");
  Vec out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

void Matrix::set_row(std::size_t r, const Vec& values) {
  EASYBO_REQUIRE(r < rows_ && values.size() == cols_,
                 "Matrix::set_row shape mismatch");
  std::copy(values.begin(), values.end(),
            data_.begin() + static_cast<std::ptrdiff_t>(r * cols_));
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& other) const {
  EASYBO_REQUIRE(cols_ == other.rows_, "matmul: inner dimension mismatch");
  Matrix out(rows_, other.cols_, 0.0);
  // i-k-j loop order: streams through both operands row-major.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        out(i, j) += aik * other(k, j);
      }
    }
  }
  return out;
}

Vec Matrix::operator*(const Vec& x) const {
  EASYBO_REQUIRE(x.size() == cols_, "matvec: dimension mismatch");
  Vec out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row_ptr = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) acc += row_ptr[c] * x[c];
    out[r] = acc;
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& other) const {
  Matrix out = *this;
  out += other;
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  EASYBO_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
                 "matrix subtraction shape mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] -= other.data_[i];
  }
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  EASYBO_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
                 "matrix addition shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double alpha) {
  for (auto& v : data_) v *= alpha;
  return *this;
}

void Matrix::add_diagonal(double alpha) {
  EASYBO_REQUIRE(rows_ == cols_, "add_diagonal requires a square matrix");
  for (std::size_t i = 0; i < rows_; ++i) (*this)(i, i) += alpha;
}

double Matrix::max_abs() const {
  double best = 0.0;
  for (double v : data_) best = std::max(best, std::abs(v));
  return best;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

bool Matrix::approx_equal(const Matrix& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::abs(data_[i] - other.data_[i]) > tol) return false;
  }
  return true;
}

void Matrix::symmetrize() {
  EASYBO_REQUIRE(rows_ == cols_, "symmetrize requires a square matrix");
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = r + 1; c < cols_; ++c) {
      const double avg = 0.5 * ((*this)(r, c) + (*this)(c, r));
      (*this)(r, c) = avg;
      (*this)(c, r) = avg;
    }
  }
}

Vec transpose_times(const Matrix& a, const Vec& x) {
  EASYBO_REQUIRE(x.size() == a.rows(), "transpose_times: dimension mismatch");
  Vec out(a.cols(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t c = 0; c < a.cols(); ++c) out[c] += a(r, c) * xr;
  }
  return out;
}

Matrix gram(const Matrix& a) {
  Matrix g(a.cols(), a.cols(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t i = 0; i < a.cols(); ++i) {
      const double ari = a(r, i);
      if (ari == 0.0) continue;
      for (std::size_t j = i; j < a.cols(); ++j) {
        g(i, j) += ari * a(r, j);
      }
    }
  }
  for (std::size_t i = 0; i < a.cols(); ++i) {
    for (std::size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  }
  return g;
}

}  // namespace easybo::linalg
