#include "linalg/vec.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace easybo::linalg {

double dot(const Vec& a, const Vec& b) {
  EASYBO_REQUIRE(a.size() == b.size(), "dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(const Vec& a) { return std::sqrt(dot(a, a)); }

double dist_sq(const Vec& a, const Vec& b) {
  EASYBO_REQUIRE(a.size() == b.size(), "dist_sq: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

double dist(const Vec& a, const Vec& b) { return std::sqrt(dist_sq(a, b)); }

void axpy(double alpha, const Vec& x, Vec& y) {
  EASYBO_REQUIRE(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

Vec add(const Vec& a, const Vec& b) {
  EASYBO_REQUIRE(a.size() == b.size(), "add: size mismatch");
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

Vec sub(const Vec& a, const Vec& b) {
  EASYBO_REQUIRE(a.size() == b.size(), "sub: size mismatch");
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

Vec scale(double alpha, const Vec& a) {
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = alpha * a[i];
  return out;
}

double sum(const Vec& a) {
  double acc = 0.0;
  for (double v : a) acc += v;
  return acc;
}

std::size_t argmax(const Vec& a) {
  EASYBO_REQUIRE(!a.empty(), "argmax of empty vector");
  return static_cast<std::size_t>(
      std::max_element(a.begin(), a.end()) - a.begin());
}

std::size_t argmin(const Vec& a) {
  EASYBO_REQUIRE(!a.empty(), "argmin of empty vector");
  return static_cast<std::size_t>(
      std::min_element(a.begin(), a.end()) - a.begin());
}

Vec clamp_to_box(Vec x, const Vec& lo, const Vec& hi) {
  EASYBO_REQUIRE(x.size() == lo.size() && x.size() == hi.size(),
                 "clamp_to_box: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::clamp(x[i], lo[i], hi[i]);
  }
  return x;
}

bool inside_box(const Vec& x, const Vec& lo, const Vec& hi) {
  EASYBO_REQUIRE(x.size() == lo.size() && x.size() == hi.size(),
                 "inside_box: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] < lo[i] || x[i] > hi[i]) return false;
  }
  return true;
}

}  // namespace easybo::linalg
