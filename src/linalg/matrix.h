#pragma once
/// \file matrix.h
/// \brief Dense row-major matrix for GP covariance algebra.
///
/// Sized for this project's regime (GP training sets of a few hundred
/// points): straightforward cache-friendly triple loops, no blocking, no
/// expression templates. Correctness and clarity first; a 512x512 Cholesky
/// is well under a millisecond of work either way.

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "linalg/vec.h"

namespace easybo::linalg {

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, all elements set to \p fill.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Construction from nested initializer list (rows of equal length).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);

  /// Builds a matrix whose rows are the given equally sized vectors.
  static Matrix from_rows(const std::vector<Vec>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked element access; throws InvalidArgument out of range.
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  /// Raw storage (row-major), e.g. for tests.
  const std::vector<double>& data() const { return data_; }

  Vec row(std::size_t r) const;
  Vec col(std::size_t c) const;
  void set_row(std::size_t r, const Vec& values);

  Matrix transposed() const;

  /// this * other; inner dimensions must agree.
  Matrix operator*(const Matrix& other) const;

  /// Matrix-vector product; x.size() must equal cols().
  Vec operator*(const Vec& x) const;

  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix& operator+=(const Matrix& other);
  Matrix& operator*=(double alpha);

  /// Adds alpha to every diagonal element (jitter); requires square.
  void add_diagonal(double alpha);

  /// Maximum absolute element (infinity "norm" of entries), 0 if empty.
  double max_abs() const;

  /// Frobenius norm.
  double frobenius_norm() const;

  /// True when |(*this) - other| <= tol element-wise (same shape required).
  bool approx_equal(const Matrix& other, double tol) const;

  /// Symmetrizes in place: A <- (A + A^T)/2. Requires square.
  void symmetrize();

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// y = A^T * x convenience (avoids materializing the transpose).
Vec transpose_times(const Matrix& a, const Vec& x);

/// C = A^T * A (Gram matrix) without materializing A^T.
Matrix gram(const Matrix& a);

}  // namespace easybo::linalg
