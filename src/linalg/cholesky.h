#pragma once
/// \file cholesky.h
/// \brief Cholesky (LL^T) factorization with adaptive jitter.
///
/// The GP posterior (paper Eq. 2) needs K^{-1} y and K^{-1} k(X, x*); both
/// are computed through this factorization. GP covariance matrices become
/// near-singular when query points cluster (exactly what happens late in an
/// optimization run, and deliberately when hallucinated pseudo-points are
/// added), so the factorization retries with exponentially growing diagonal
/// jitter before giving up.

#include "linalg/matrix.h"

namespace easybo::linalg {

/// Lower-triangular Cholesky factor of a symmetric positive-definite matrix.
class Cholesky {
 public:
  /// Factors \p a (symmetric; only the lower triangle is read).
  ///
  /// If the factorization encounters a non-positive pivot, \p initial_jitter
  /// (times the mean diagonal) is added to the diagonal and the factorization
  /// restarts; the jitter grows 10x per retry up to \p max_tries attempts.
  /// Throws NumericalError when all retries fail.
  explicit Cholesky(const Matrix& a, double initial_jitter = 1e-10,
                    int max_tries = 10);

  std::size_t size() const { return l_.rows(); }

  /// The lower-triangular factor L with A + jitter*I = L L^T.
  const Matrix& factor() const { return l_; }

  /// Total jitter that was added to the diagonal (0 when none was needed).
  double jitter_used() const { return jitter_used_; }

  /// Factorization attempts performed (1 = clean, each jitter escalation
  /// adds one). Observability feed for the "gp.jitter_escalation" counter.
  int attempts() const { return attempts_; }

  /// Solves A x = b through forward/back substitution.
  Vec solve(const Vec& b) const;

  /// Solves A X = B column-by-column.
  Matrix solve(const Matrix& b) const;

  /// Solves L z = b (forward substitution only). Used for the GP variance
  /// term k** - ||L^{-1} k*||^2.
  Vec solve_lower(const Vec& b) const;

  /// Solves L^T x = b (back substitution only). Used for weight-space
  /// posterior sampling, w = w_mean + sigma * L^{-T} z.
  Vec solve_upper(const Vec& b) const;

  /// Extends the factorization of A (n x n) to that of the (n+1) x (n+1)
  /// matrix [[A, b], [b^T, c]] in O(n^2): the new bottom row of L is
  /// [L^{-1} b; sqrt(c - ||L^{-1} b||^2)].
  ///
  /// \param new_column  the n cross terms b followed by the diagonal c
  ///                    (size n + 1).
  /// \returns false (leaving the factor unchanged) when the extended
  ///          matrix is not positive definite; the caller should fall back
  ///          to a full, jittered factorization.
  bool extend(const Vec& new_column);

  /// log(det A) = 2 * sum_i log L_ii.
  double log_det() const;

  /// Explicit inverse (used only by tests and the LML gradient, where the
  /// full K^{-1} is genuinely required). Computed as L^{-T} L^{-1} with
  /// both steps exploiting the triangular structure — about 3x cheaper
  /// than back-solving dense identity columns, and the dominant cost of
  /// every train_mle gradient step.
  Matrix inverse() const;

 private:
  bool try_factor(const Matrix& a);

  Matrix l_;
  double jitter_used_ = 0.0;
  int attempts_ = 1;
};

/// Zero-copy extension of a borrowed Cholesky factor by appended rows.
///
/// Extending a factor of A to cover [[A, B], [B^T, C]] only ever ADDS rows
/// below the existing triangle — the base factor's entries are immutable.
/// Cholesky::extend still copies the whole O(n^2) factor per appended row,
/// which is exactly the cost that made hallucinated posteriors a deep copy
/// of the model. This view instead borrows the base factor and stores only
/// the appended rows (row i of the extension holds base_size + i + 1
/// entries), so k pseudo-observations cost O(k n^2) arithmetic and O(k n)
/// memory with no copy of the base triangle.
///
/// Arithmetic parity: every solve walks the combined factor in exactly the
/// element order the monolithic Cholesky routines use, so results are
/// bit-identical to extending a copied factor — the property the
/// hallucination overlay's stream-compatibility rests on.
///
/// The base factor must outlive the view and must not be mutated while the
/// view is alive.
class CholeskyExt {
 public:
  explicit CholeskyExt(const Cholesky* base);

  std::size_t base_size() const { return base_->size(); }
  std::size_t size() const { return base_->size() + rows_.size(); }
  std::size_t appended() const { return rows_.size(); }

  /// Jitter baked into the borrowed base factor's diagonal; callers
  /// extending a jittered factor must include it in new diagonals so the
  /// combined factor keeps factoring one consistent matrix.
  double jitter_used() const { return base_->jitter_used(); }

  /// Appends one row: \p new_column holds the size() cross terms followed
  /// by the diagonal entry (size() + 1 values). Returns false — leaving
  /// the view unchanged — when the extended matrix is not positive
  /// definite; the caller should fall back to a full factorization.
  bool extend(const Vec& new_column);

  /// Solves (combined A) x = b through forward/back substitution.
  Vec solve(const Vec& b) const;

  /// Solves (combined L) z = b, forward substitution only.
  Vec solve_lower(const Vec& b) const;

  /// log(det of the combined A) = 2 * sum_i log L_ii.
  double log_det() const;

 private:
  const Cholesky* base_;    // borrowed, immutable while this view lives
  std::vector<Vec> rows_;   // appended factor rows; row i has n0+i+1 entries
};

}  // namespace easybo::linalg
