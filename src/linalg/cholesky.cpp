#include "linalg/cholesky.h"

#include <cmath>
#include <sstream>

#include "common/error.h"

namespace easybo::linalg {

Cholesky::Cholesky(const Matrix& a, double initial_jitter, int max_tries) {
  EASYBO_REQUIRE(a.rows() == a.cols(), "Cholesky requires a square matrix");
  EASYBO_REQUIRE(max_tries >= 1, "Cholesky needs at least one attempt");

  if (try_factor(a)) return;

  // Scale jitter to the matrix: mean diagonal magnitude.
  double diag_mean = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) diag_mean += std::abs(a(i, i));
  diag_mean = a.rows() ? diag_mean / static_cast<double>(a.rows()) : 1.0;
  if (diag_mean == 0.0) diag_mean = 1.0;

  double jitter = initial_jitter * diag_mean;
  for (int attempt = 1; attempt < max_tries; ++attempt) {
    ++attempts_;
    Matrix jittered = a;
    jittered.add_diagonal(jitter);
    if (try_factor(jittered)) {
      jitter_used_ = jitter;
      return;
    }
    jitter *= 10.0;
  }
  std::ostringstream oss;
  oss << "Cholesky failed: matrix of size " << a.rows()
      << " is not positive definite even with jitter " << jitter;
  throw NumericalError(oss.str());
}

bool Cholesky::try_factor(const Matrix& a) {
  const std::size_t n = a.rows();
  l_ = Matrix(n, n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l_(j, k) * l_(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) return false;
    const double ljj = std::sqrt(diag);
    l_(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = a(i, j);
      for (std::size_t k = 0; k < j; ++k) v -= l_(i, k) * l_(j, k);
      l_(i, j) = v / ljj;
    }
  }
  return true;
}

Vec Cholesky::solve(const Vec& b) const {
  const std::size_t n = size();
  EASYBO_REQUIRE(b.size() == n, "Cholesky::solve size mismatch");
  // Forward substitution: L z = b.
  Vec z(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) acc -= l_(i, k) * z[k];
    z[i] = acc / l_(i, i);
  }
  // Back substitution: L^T x = z.
  Vec x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double acc = z[i];
    for (std::size_t k = i + 1; k < n; ++k) acc -= l_(k, i) * x[k];
    x[i] = acc / l_(i, i);
  }
  return x;
}

Matrix Cholesky::solve(const Matrix& b) const {
  EASYBO_REQUIRE(b.rows() == size(), "Cholesky::solve shape mismatch");
  Matrix x(b.rows(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    const Vec xc = solve(b.col(c));
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = xc[r];
  }
  return x;
}

Vec Cholesky::solve_lower(const Vec& b) const {
  const std::size_t n = size();
  EASYBO_REQUIRE(b.size() == n, "Cholesky::solve_lower size mismatch");
  Vec z(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) acc -= l_(i, k) * z[k];
    z[i] = acc / l_(i, i);
  }
  return z;
}

bool Cholesky::extend(const Vec& new_column) {
  const std::size_t n = size();
  EASYBO_REQUIRE(new_column.size() == n + 1,
                 "Cholesky::extend: need n cross terms plus the diagonal");
  const Vec b(new_column.begin(), new_column.end() - 1);
  const Vec head = solve_lower(b);
  const double d = new_column.back() - dot(head, head);
  if (!(d > 0.0) || !std::isfinite(d)) return false;

  Matrix grown(n + 1, n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) grown(i, j) = l_(i, j);
  }
  for (std::size_t j = 0; j < n; ++j) grown(n, j) = head[j];
  grown(n, n) = std::sqrt(d);
  l_ = std::move(grown);
  return true;
}

Vec Cholesky::solve_upper(const Vec& b) const {
  const std::size_t n = size();
  EASYBO_REQUIRE(b.size() == n, "Cholesky::solve_upper size mismatch");
  Vec x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double acc = b[i];
    for (std::size_t k = i + 1; k < n; ++k) acc -= l_(k, i) * x[k];
    x[i] = acc / l_(i, i);
  }
  return x;
}

double Cholesky::log_det() const {
  double acc = 0.0;
  for (std::size_t i = 0; i < size(); ++i) acc += std::log(l_(i, i));
  return 2.0 * acc;
}

Matrix Cholesky::inverse() const {
  const std::size_t n = size();
  // Column j of L^{-1} is zero above row j, so forward substitution on
  // the unit column starts at row j: ~n^3/6 flops for the whole factor
  // inverse instead of n^3 for dense identity-column solves.
  Matrix linv(n, n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    linv(j, j) = 1.0 / l_(j, j);
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = 0.0;
      for (std::size_t k = j; k < i; ++k) acc -= l_(i, k) * linv(k, j);
      linv(i, j) = acc / l_(i, i);
    }
  }
  // A^{-1} = L^{-T} L^{-1}; entry (i,j) only sums over k >= max(i,j), and
  // the result is symmetric, so compute the lower triangle and mirror.
  Matrix inv(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double acc = 0.0;
      for (std::size_t k = i; k < n; ++k) acc += linv(k, i) * linv(k, j);
      inv(i, j) = acc;
      inv(j, i) = acc;
    }
  }
  return inv;
}

// ---------------------------------------------------------------------------
// CholeskyExt
// ---------------------------------------------------------------------------

CholeskyExt::CholeskyExt(const Cholesky* base) : base_(base) {
  EASYBO_REQUIRE(base != nullptr, "CholeskyExt: null base factor");
  EASYBO_REQUIRE(base->size() > 0, "CholeskyExt: empty base factor");
}

bool CholeskyExt::extend(const Vec& new_column) {
  const std::size_t n = size();
  EASYBO_REQUIRE(new_column.size() == n + 1,
                 "CholeskyExt::extend: need n cross terms plus the diagonal");
  // Same algebra (and the same operation order) as Cholesky::extend, run
  // against the combined factor.
  const Vec b(new_column.begin(), new_column.end() - 1);
  Vec head = solve_lower(b);
  const double d = new_column.back() - dot(head, head);
  if (!(d > 0.0) || !std::isfinite(d)) return false;
  head.push_back(std::sqrt(d));
  rows_.push_back(std::move(head));
  return true;
}

Vec CholeskyExt::solve_lower(const Vec& b) const {
  const std::size_t n0 = base_->size();
  const std::size_t n = size();
  EASYBO_REQUIRE(b.size() == n, "CholeskyExt::solve_lower size mismatch");
  const Matrix& l = base_->factor();
  Vec z(n);
  // Rows of the base triangle, then the appended rows: together this is
  // the monolithic forward substitution, element for element.
  for (std::size_t i = 0; i < n0; ++i) {
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) acc -= l(i, k) * z[k];
    z[i] = acc / l(i, i);
  }
  for (std::size_t j = 0; j < rows_.size(); ++j) {
    const Vec& row = rows_[j];
    const std::size_t i = n0 + j;
    double acc = b[i];
    for (std::size_t k = 0; k < i; ++k) acc -= row[k] * z[k];
    z[i] = acc / row[i];
  }
  return z;
}

Vec CholeskyExt::solve(const Vec& b) const {
  const std::size_t n0 = base_->size();
  const std::size_t n = size();
  EASYBO_REQUIRE(b.size() == n, "CholeskyExt::solve size mismatch");
  Vec z = solve_lower(b);
  // Back substitution L^T x = z over the combined factor. For i >= n0
  // every sub-diagonal entry in column i lives in an appended row; for
  // i < n0 the column crosses from the base triangle into the appended
  // rows — accumulate base entries first, appended entries after, which
  // is exactly ascending-k order in the monolithic loop.
  const Matrix& l = base_->factor();
  Vec x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double acc = z[i];
    if (i >= n0) {
      for (std::size_t k = i + 1; k < n; ++k) acc -= rows_[k - n0][i] * x[k];
      x[i] = acc / rows_[i - n0][i];
    } else {
      for (std::size_t k = i + 1; k < n0; ++k) acc -= l(k, i) * x[k];
      for (std::size_t j = 0; j < rows_.size(); ++j) {
        acc -= rows_[j][i] * x[n0 + j];
      }
      x[i] = acc / l(i, i);
    }
  }
  return x;
}

double CholeskyExt::log_det() const {
  const Matrix& l = base_->factor();
  double acc = 0.0;
  for (std::size_t i = 0; i < base_->size(); ++i) acc += std::log(l(i, i));
  for (const Vec& row : rows_) acc += std::log(row.back());
  return 2.0 * acc;
}

}  // namespace easybo::linalg
