#pragma once
/// \file supervisor.h
/// \brief Fault-tolerant evaluation supervision over the Executor seam.
///
/// Real simulator farms crash, hang, and emit non-physical results for
/// unstable sizings; an async-batch BO loop built for heavy traffic has to
/// survive those stragglers instead of dying with them (Alvi et al. 2019;
/// Nomura 2020). EvalSupervisor wraps an Executor and classifies every
/// evaluation into ok / exception / timeout / non-finite, enforces a
/// per-attempt deadline, retries transient failures with capped
/// exponential backoff + deterministic jitter, and on exhaustion reports a
/// failed SupervisedCompletion instead of rethrowing.
///
/// Deadline mechanism per backend (keyed on Executor::wall_clock()):
///  - virtual time: the job's duration is known at submit, so an over-long
///    evaluation is cut there — it occupies its worker until exactly the
///    deadline (a simulator killed at its time limit) and completes with
///    status Timeout.
///  - wall clock: a watchdog around wait_next. When a job is overdue the
///    supervisor reports Timeout immediately and *abandons* the worker:
///    the hung objective cannot be killed safely in C++, so its slot stays
///    busy until the objective actually returns, at which point the stale
///    completion is swallowed and the slot rejoins the pool. Its worker id
///    is unknown at report time, so the synthesized completion carries
///    worker == num_workers() as a sentinel. A truly unbounded hang costs
///    one worker for the rest of the run (graceful degradation) and blocks
///    executor destruction — see docs/failure-model.md.
///
/// What the caller DOES with a failure — abort, discard, penalize — is
/// policy, and lives in BoEngine (BoConfig::on_eval_failure). This layer
/// only makes failures observable and survivable. With the default config
/// (no timeout, no retries) the supervisor is a transparent pass-through:
/// same schedule, same values, no RNG draws.
///
/// Counters reported to the trace sink: "eval.exceptions",
/// "eval.nonfinite", "eval.timeouts" (one per failed attempt) and
/// "eval.retries" (one per relaunch).

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "obs/trace.h"
#include "sched/executor.h"

namespace easybo::sched {

/// Terminal classification of one supervised evaluation.
enum class EvalStatus {
  Ok,         ///< finite value delivered
  Exception,  ///< the objective threw (every attempt)
  Timeout,    ///< the attempt exceeded its deadline
  NonFinite,  ///< the objective returned NaN or infinity
};

/// Stable snake_case name ("ok", "exception", "timeout", "non_finite");
/// also the status string in the metrics eval log.
const char* to_string(EvalStatus status);

/// Supervision knobs. The defaults make the supervisor a pass-through.
struct SupervisorConfig {
  /// Per-attempt deadline in executor seconds (virtual or wall);
  /// <= 0 disables deadlines.
  double timeout = 0.0;
  /// Retries after the first attempt, for transient failures
  /// (exceptions and non-finite values; timeouts only when
  /// retry_timeouts).
  std::size_t max_retries = 0;
  double backoff_init = 0.5;    ///< delay before the first retry (seconds)
  double backoff_factor = 2.0;  ///< exponential growth per further retry
  double backoff_max = 30.0;    ///< delay cap (seconds)
  double backoff_jitter = 0.1;  ///< uniform +- fraction on each delay
  /// Also retry timed-out attempts. Off by default: a timeout already
  /// burned a full deadline, and a deterministic over-long simulation
  /// will time out again.
  bool retry_timeouts = false;
  std::uint64_t seed = 0x5AFEB0FFu;  ///< jitter stream seed

  /// Throws InvalidArgument when a knob is out of range.
  void validate() const;
};

/// Deterministic backoff schedule: the delay before 1-based retry
/// \p retry, i.e. min(backoff_max, backoff_init * factor^(retry-1))
/// jittered by +- backoff_jitter (one rng.uniform() draw when jitter > 0).
double backoff_delay(const SupervisorConfig& config, std::size_t retry,
                     Rng& rng);

/// One supervised evaluation as seen by the algorithm: the final
/// completion plus its classification. start is the FIRST attempt's start
/// and finish the last attempt's finish, so finish - start spans retries
/// and backoff — the full latency the proposer experienced.
struct SupervisedCompletion {
  Completion completion;
  EvalStatus status = EvalStatus::Ok;
  std::uint32_t attempts = 1;    ///< attempts actually made (1 + retries)
  std::string error;             ///< what() of the last exception, if any
  std::exception_ptr exception;  ///< last exception (for abort rethrow)

  bool ok() const { return status == EvalStatus::Ok; }
};

/// Decorator over an Executor adding classification, deadlines, and
/// retries. Mirrors the Executor submit/wait surface so BoEngine drives it
/// exactly like the raw seam; work submitted here NEVER makes wait_next
/// throw — failures come back as data.
class EvalSupervisor {
 public:
  /// \p exec must outlive the supervisor. \p trace may be null (no
  /// counters recorded, zero cost — the library-wide obs convention).
  EvalSupervisor(Executor& exec, SupervisorConfig config,
                 obs::TraceSink* trace = nullptr);

  std::size_t num_workers() const { return exec_.num_workers(); }

  /// Supervised evaluations still outstanding. An abandoned hung worker
  /// (wall-clock timeout) no longer counts, even though its slot is still
  /// physically busy.
  std::size_t num_running() const;

  /// Physical idleness: whether submit() can start work right now. An
  /// abandoned worker is NOT idle until its objective actually returns.
  bool has_idle_worker() const { return exec_.has_idle_worker(); }

  /// Workers physically idle right now (abandoned hung workers are busy).
  std::size_t num_idle_workers() const {
    return exec_.num_workers() - exec_.num_running();
  }

  double now() const { return exec_.now(); }

  /// Starts a supervised evaluation. \p tag and \p duration as in
  /// Executor::submit; retries re-submit the same work with the same
  /// duration (plus backoff).
  void submit(std::size_t tag, std::function<double()> work,
              double duration);

  /// Blocks until the next supervised evaluation reaches a terminal
  /// outcome (retries happen internally) and returns it. Never rethrows
  /// objective exceptions. Throws InvalidArgument when nothing is running.
  SupervisedCompletion wait_next();

  /// Barrier: drains every outstanding supervised evaluation.
  std::vector<SupervisedCompletion> wait_all();

  const Executor& executor() const { return exec_; }

  /// Workers abandoned after a wall-clock timeout and never reclaimed:
  /// each one is a hung objective still occupying its slot. Exposed so
  /// the engine can emit the "sched.orphaned_workers" counter (and front
  /// ends can warn) — a permanently degraded pool is otherwise invisible
  /// outside this class.
  std::size_t orphans() const { return orphans_; }

  /// Clock passthrough for checkpoint resume (Executor::advance_to).
  void advance_clock(double t) { exec_.advance_to(t); }

  // --- retry/backoff state (checkpoint/resume) --------------------------
  // The jitter stream position is part of a run's durable state: replays
  // must consume the same draws the original run consumed or every delay
  // after the resume point would shift (docs/checkpoint-format.md).

  /// Snapshot of the jitter stream.
  RngState rng_state() const { return rng_.save(); }

  /// Restores a jitter stream captured by rng_state().
  void set_rng_state(const RngState& state) { rng_.load(state); }

  /// Fast-forwards the jitter stream past the retries of one journaled
  /// evaluation that made \p attempts attempts: draws (and discards)
  /// exactly the backoff delays its attempts-1 relaunches drew.
  void replay_retries(std::uint32_t attempts);

 private:
  /// Written on the worker thread before its completion is enqueued,
  /// read by the proposer after wait_next returns it — the executor's
  /// queue hand-off orders the two.
  struct AttemptSlot {
    bool threw = false;
    std::exception_ptr error;
    std::string what;
  };

  /// One in-flight attempt, keyed by the underlying executor tag.
  struct Flight {
    std::size_t tag = 0;       ///< caller's tag
    std::function<double()> work;
    double duration = 0.0;     ///< per-attempt virtual duration
    double first_start = 0.0;  ///< executor time of the first attempt
    double deadline = 0.0;     ///< absolute (wall watchdog only)
    std::uint32_t attempt = 1;
    bool cut_at_deadline = false;  ///< virtual: duration was capped
    bool orphaned = false;         ///< wall: reported, worker abandoned
    std::shared_ptr<AttemptSlot> slot;
  };

  /// Submits one attempt to the executor, delayed by \p delay seconds of
  /// backoff (added to the virtual duration, or slept on the worker).
  void launch(Flight flight, double delay);

  /// Classification of a finished, non-orphaned attempt.
  EvalStatus classify(const Flight& flight, const Completion& c) const;

  Executor& exec_;
  SupervisorConfig cfg_;
  obs::TraceSink* trace_;
  Rng rng_;
  std::unordered_map<std::size_t, Flight> inflight_;
  std::size_t next_id_ = 0;
  std::size_t orphans_ = 0;  ///< abandoned workers still physically busy
};

}  // namespace easybo::sched
