#pragma once
/// \file executor.h
/// \brief The execution seam between the BO algorithm and the machinery
/// that actually evaluates the objective.
///
/// The paper's Algorithm 1 ("propose on an idle worker, hallucinate the
/// pending points") is one algorithm; where an evaluation runs — a
/// virtual-time discrete-event scheduler for deterministic experiments, or
/// a real std::thread pool for genuinely expensive objectives — is an
/// execution concern. BoEngine speaks only this interface, so every issue
/// policy (sequential / sync batch / async batch) and every acquisition
/// runs identically on both backends; behaviour cannot drift between them.
///
///   while (exec.has_idle_worker()) exec.submit(tag, work, duration);
///   auto done = exec.wait_next();   // blocks; rethrows worker exceptions

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "common/thread_pool.h"
#include "sched/event_sim.h"

namespace easybo::sched {

/// One finished evaluation as seen by the algorithm.
struct Completion {
  std::size_t tag = 0;     ///< caller-defined payload (proposal index)
  double value = 0.0;      ///< result of the submitted work
  std::size_t worker = 0;  ///< worker slot that ran it
  double start = 0.0;      ///< seconds (virtual or wall) since run start
  double finish = 0.0;
};

/// Fixed pool of workers, virtual or real.
class Executor {
 public:
  virtual ~Executor() = default;

  virtual std::size_t num_workers() const = 0;
  virtual std::size_t num_running() const = 0;
  bool has_idle_worker() const { return num_running() < num_workers(); }

  /// Starts \p work on an idle worker. \p duration is the job's virtual
  /// duration; real executors ignore it and measure wall clock instead.
  /// Throws InvalidArgument when no worker is idle.
  virtual void submit(std::size_t tag, std::function<double()> work,
                      double duration) = 0;

  /// Blocks until the earliest completion and returns it. When the work
  /// threw, the exception is rethrown HERE — the waiter owns failure
  /// handling, a worker never swallows it. Throws InvalidArgument when
  /// nothing is running.
  virtual Completion wait_next() = 0;

  /// Bounded wait: like wait_next(), but gives up after \p timeout_seconds
  /// of real blocking and returns nullopt. Executors whose completions
  /// never require real waiting (virtual time: the next completion is
  /// always computable) return wait_next() directly and never time out.
  /// Worker exceptions are rethrown here exactly as in wait_next().
  /// Throws InvalidArgument when nothing is running.
  virtual std::optional<Completion> try_wait_next(double timeout_seconds) = 0;

  /// Clock discipline: true when start/finish/now() are wall-clock seconds
  /// measured by real execution, false when they are virtual seconds fixed
  /// at submit time. EvalSupervisor keys its deadline mechanism on this —
  /// on virtual time an over-long job is cut at submit (duration capped at
  /// the deadline); on a wall clock it arms a watchdog around wait_next.
  virtual bool wall_clock() const = 0;

  /// Barrier: drains every running job, in completion order.
  std::vector<Completion> wait_all();

  /// Seconds (virtual or wall) elapsed since the executor started.
  virtual double now() const = 0;

  /// Lower-bounds the executor clock at \p t. Meaningful only for virtual
  /// time (checkpoint resume re-anchors re-submitted work at its original
  /// submission time); wall-clock executors advance on their own and
  /// ignore it. Never moves time backward or past a running completion.
  virtual void advance_to(double /*t*/) {}

  /// Sum over workers of busy time accumulated so far.
  virtual double total_busy_time() const = 0;

  /// Busy seconds accumulated by each worker slot (virtual or wall),
  /// indexed by the Completion::worker ids. Idle time of slot w over a
  /// run is now() - per_worker_busy()[w] — the per-worker utilization
  /// split the observability layer exports.
  virtual std::vector<double> per_worker_busy() const = 0;
};

/// Virtual-time executor: wraps VirtualScheduler. Work is evaluated
/// eagerly at submit time (the objectives in the experiment regime are
/// deterministic); the scheduler controls WHEN the value becomes visible
/// to the caller (wait_next), which is all that matters for the
/// information flow of the algorithm. A throwing work item is captured at
/// submit time and rethrown when ITS completion is waited for — the same
/// call site where ThreadExecutor surfaces worker exceptions, preserving
/// the backend-parity guarantee (DESIGN.md §5.0).
class VirtualExecutor final : public Executor {
 public:
  explicit VirtualExecutor(std::size_t num_workers) : sched_(num_workers) {}

  std::size_t num_workers() const override { return sched_.num_workers(); }
  std::size_t num_running() const override { return sched_.num_running(); }
  void submit(std::size_t tag, std::function<double()> work,
              double duration) override;
  Completion wait_next() override;
  std::optional<Completion> try_wait_next(double /*timeout*/) override {
    return wait_next();  // virtual time never blocks for real
  }
  bool wall_clock() const override { return false; }
  double now() const override { return sched_.now(); }
  void advance_to(double t) override { sched_.advance_to(t); }
  double total_busy_time() const override {
    return sched_.total_busy_time();
  }
  std::vector<double> per_worker_busy() const override {
    return sched_.per_worker_busy();
  }

  /// The underlying scheduler, for schedule-trace inspection.
  const VirtualScheduler& scheduler() const { return sched_; }

 private:
  struct Outcome {
    double value = 0.0;
    std::exception_ptr error;
  };

  VirtualScheduler sched_;
  std::vector<Outcome> outcomes_;  // indexed by job id
};

/// Real-threads executor on the common ThreadPool. The objective runs on
/// the worker thread (deferred, unlike VirtualExecutor), start/finish are
/// wall-clock seconds since construction, and a throwing objective is
/// delivered to wait_next() instead of being dropped with its future —
/// dropping it would leave the proposer blocked forever.
class ThreadExecutor final : public Executor {
 public:
  explicit ThreadExecutor(std::size_t num_threads);

  std::size_t num_workers() const override { return free_slot_count_; }
  std::size_t num_running() const override;
  void submit(std::size_t tag, std::function<double()> work,
              double duration) override;
  Completion wait_next() override;
  std::optional<Completion> try_wait_next(double timeout_seconds) override;
  bool wall_clock() const override { return true; }
  double now() const override;
  double total_busy_time() const override;
  std::vector<double> per_worker_busy() const override;

 private:
  struct Outcome {
    Completion completion;
    std::exception_ptr error;
  };

  double elapsed() const;

  std::chrono::steady_clock::time_point t0_;
  std::size_t free_slot_count_ = 0;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Outcome> done_;
  std::vector<std::size_t> free_slots_;
  std::size_t in_flight_ = 0;
  double total_busy_ = 0.0;
  std::vector<double> busy_per_slot_;
  // Last member: its destructor joins the workers while the state above
  // (mutex, queues) is still alive — in-flight tasks touch both.
  ThreadPool pool_;
};

}  // namespace easybo::sched
