#include "sched/executor.h"

#include <utility>

#include "common/error.h"

namespace easybo::sched {

std::vector<Completion> Executor::wait_all() {
  std::vector<Completion> done;
  while (num_running() > 0) done.push_back(wait_next());
  return done;
}

// ---------------------------------------------------------------------------
// VirtualExecutor
// ---------------------------------------------------------------------------

void VirtualExecutor::submit(std::size_t tag, std::function<double()> work,
                             double duration) {
  const std::size_t job_id = sched_.submit(tag, duration);
  if (outcomes_.size() <= job_id) outcomes_.resize(job_id + 1);
  // Evaluate eagerly but deliver failures lazily: a throwing objective
  // must surface at wait_next(), exactly where ThreadExecutor rethrows
  // worker exceptions, so the engine sees one failure contract on both
  // backends.
  try {
    outcomes_[job_id].value = work();
  } catch (...) {
    outcomes_[job_id].error = std::current_exception();
  }
}

Completion VirtualExecutor::wait_next() {
  const JobRecord rec = sched_.wait_next();
  const Outcome& out = outcomes_[rec.job_id];
  if (out.error) std::rethrow_exception(out.error);
  Completion c;
  c.tag = rec.tag;
  c.value = out.value;
  c.worker = rec.worker;
  c.start = rec.start;
  c.finish = rec.finish;
  return c;
}

// ---------------------------------------------------------------------------
// ThreadExecutor
// ---------------------------------------------------------------------------

ThreadExecutor::ThreadExecutor(std::size_t num_threads)
    : t0_(std::chrono::steady_clock::now()),
      free_slot_count_(num_threads),
      pool_(num_threads) {
  free_slots_.resize(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) free_slots_[i] = i;
  busy_per_slot_.assign(num_threads, 0.0);
}

double ThreadExecutor::elapsed() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       t0_)
      .count();
}

std::size_t ThreadExecutor::num_running() const {
  std::lock_guard lock(mutex_);
  return in_flight_;
}

double ThreadExecutor::now() const { return elapsed(); }

double ThreadExecutor::total_busy_time() const {
  std::lock_guard lock(mutex_);
  return total_busy_;
}

std::vector<double> ThreadExecutor::per_worker_busy() const {
  std::lock_guard lock(mutex_);
  return busy_per_slot_;
}

void ThreadExecutor::submit(std::size_t tag, std::function<double()> work,
                            double /*duration: real executors measure*/) {
  {
    std::lock_guard lock(mutex_);
    EASYBO_REQUIRE(in_flight_ < free_slot_count_,
                   "submit with no idle worker");
    ++in_flight_;
  }
  pool_.submit([this, tag, work = std::move(work)] {
    std::size_t slot;
    {
      std::lock_guard lock(mutex_);
      slot = free_slots_.back();
      free_slots_.pop_back();
    }
    Outcome out;
    out.completion.tag = tag;
    out.completion.worker = slot;
    out.completion.start = elapsed();
    try {
      out.completion.value = work();
    } catch (...) {
      out.error = std::current_exception();
    }
    out.completion.finish = elapsed();
    {
      std::lock_guard lock(mutex_);
      free_slots_.push_back(slot);
      const double busy = out.completion.finish - out.completion.start;
      total_busy_ += busy;
      busy_per_slot_[slot] += busy;
      done_.push_back(std::move(out));
    }
    cv_.notify_one();
  });
}

Completion ThreadExecutor::wait_next() {
  std::unique_lock lock(mutex_);
  EASYBO_REQUIRE(in_flight_ > 0, "wait_next with no running job");
  cv_.wait(lock, [this] { return !done_.empty(); });
  Outcome out = std::move(done_.front());
  done_.pop_front();
  --in_flight_;
  if (out.error) std::rethrow_exception(out.error);
  return out.completion;
}

std::optional<Completion> ThreadExecutor::try_wait_next(
    double timeout_seconds) {
  std::unique_lock lock(mutex_);
  EASYBO_REQUIRE(in_flight_ > 0, "try_wait_next with no running job");
  const bool ready =
      cv_.wait_for(lock, std::chrono::duration<double>(timeout_seconds),
                   [this] { return !done_.empty(); });
  if (!ready) return std::nullopt;
  Outcome out = std::move(done_.front());
  done_.pop_front();
  --in_flight_;
  if (out.error) std::rethrow_exception(out.error);
  return out.completion;
}

}  // namespace easybo::sched
