#include "sched/event_sim.h"

#include <algorithm>

#include "common/error.h"

namespace easybo::sched {

VirtualScheduler::VirtualScheduler(std::size_t num_workers)
    : num_workers_(num_workers) {
  EASYBO_REQUIRE(num_workers >= 1, "scheduler needs at least one worker");
  busy_.assign(num_workers, 0.0);
  idle_.resize(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) idle_[i] = i;
}

std::size_t VirtualScheduler::submit(std::size_t tag, double duration) {
  EASYBO_REQUIRE(!idle_.empty(), "submit with no idle worker");
  EASYBO_REQUIRE(duration > 0.0, "job duration must be positive");
  const std::size_t worker = idle_.back();
  idle_.pop_back();

  JobRecord rec;
  rec.job_id = next_job_id_++;
  rec.tag = tag;
  rec.worker = worker;
  rec.start = now_;
  rec.finish = now_ + duration;
  trace_.push_back(rec);
  running_.push({rec.finish, trace_.size() - 1});
  total_busy_ += duration;
  busy_[worker] += duration;
  return rec.job_id;
}

JobRecord VirtualScheduler::wait_next() {
  EASYBO_REQUIRE(!running_.empty(), "wait_next with no running job");
  const Running top = running_.top();
  running_.pop();
  const JobRecord rec = trace_[top.trace_index];
  now_ = std::max(now_, rec.finish);
  idle_.push_back(rec.worker);
  return rec;
}

void VirtualScheduler::advance_to(double t) {
  if (!running_.empty()) {
    t = std::min(t, running_.top().finish);
  }
  now_ = std::max(now_, t);
}

std::vector<JobRecord> VirtualScheduler::wait_all() {
  std::vector<JobRecord> done;
  done.reserve(running_.size());
  while (!running_.empty()) done.push_back(wait_next());
  return done;
}

double VirtualScheduler::utilization() const {
  if (now_ <= 0.0) return 0.0;
  // Count only busy time that has already elapsed.
  double elapsed_busy = 0.0;
  for (const auto& rec : trace_) {
    elapsed_busy += std::min(rec.finish, now_) - std::min(rec.start, now_);
  }
  return elapsed_busy / (now_ * static_cast<double>(num_workers_));
}

PolicyComparison compare_policies(const std::vector<double>& durations,
                                  std::size_t workers) {
  EASYBO_REQUIRE(!durations.empty(), "compare_policies: no durations");
  PolicyComparison cmp;

  {
    // Synchronous: issue in batches of `workers`, barrier between batches.
    VirtualScheduler sync(workers);
    std::size_t next = 0;
    while (next < durations.size()) {
      for (std::size_t b = 0; b < workers && next < durations.size(); ++b) {
        sync.submit(next, durations[next]);
        ++next;
      }
      sync.wait_all();
    }
    cmp.sync_makespan = sync.now();
    cmp.sync_utilization =
        sync.total_busy_time() /
        (sync.now() * static_cast<double>(workers));
    cmp.sync_trace = sync.trace();
  }

  {
    // Asynchronous: keep every worker busy while jobs remain.
    VirtualScheduler async(workers);
    std::size_t next = 0;
    while (next < durations.size() || async.num_running() > 0) {
      while (async.has_idle_worker() && next < durations.size()) {
        async.submit(next, durations[next]);
        ++next;
      }
      if (async.num_running() > 0) async.wait_next();
    }
    cmp.async_makespan = async.now();
    cmp.async_utilization =
        async.total_busy_time() /
        (async.now() * static_cast<double>(workers));
    cmp.async_trace = async.trace();
  }

  return cmp;
}

}  // namespace easybo::sched
